#pragma once
//
// Synthetic traffic generation (paper §5.1): uniform, bit-reversal, and
// hot-spot destination distributions; Poisson (exponential interarrival)
// open-loop injection for latency curves; always-backlogged saturation mode
// for throughput measurement. Each packet is independently marked adaptive
// with probability `adaptiveFraction` — the paper's "percentage of adaptive
// traffic" knob.
//
#include <stdexcept>
#include <vector>

#include "fabric/interfaces.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ibadapt {

enum class TrafficPattern {
  kUniform,      // uniform over all other nodes
  kBitReversal,  // dst = bit-reverse(src); needs a power-of-two node count
  kHotspot,      // fraction of traffic to one randomly chosen node
  kTranspose,    // dst = swap the two halves of the index bits (needs 4^k)
  kShuffle,      // dst = rotate index bits left by one (perfect shuffle)
  kLocality,     // dst uniform within +-localityWindow node indices
  kIncast,       // every node bursts at one victim on synchronized epochs
  kPermStorm,    // random permutation rotated every stormPeriodNs
};

struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::kUniform;
  int numNodes = 0;
  int packetBytes = 32;
  /// Probability that a packet is marked adaptive (0 = pure deterministic).
  double adaptiveFraction = 1.0;
  /// Open-loop injection rate per node; ignored in saturation mode.
  double loadBytesPerNsPerNode = 0.05;
  bool saturation = false;
  int saturationQueueCap = 4;
  /// Hot-spot share of traffic (paper tried 5 %, 10 %, 20 %).
  double hotspotFraction = 0.1;
  /// Hot-spot node; kInvalidId picks one at random from `seed`.
  NodeId hotspotNode = kInvalidId;
  /// Service levels used round-robin (1 = everything on SL0/VL0).
  int numSls = 1;
  /// > 0: source-multipath baseline — every packet picks one of this many
  /// DLID planes uniformly at random (needs a subnet configured with
  /// SubnetParams::sourceMultipathPlanes). Overrides adaptiveFraction.
  int multipathPlanes = 0;
  /// APM: offset of the active path set's sub-block within each LID block
  /// (= set index * numOptions). 0 uses the primary set.
  int pathSetOffset = 0;
  /// kLocality: destinations land within src +- localityWindow (mod N).
  int localityWindow = 8;
  /// Compound-Poisson burst model for open-loop injection: with probability
  /// `burstiness` an interarrival gets an extra exponential pause of mean
  /// `burstGapMeanNs`; the base interarrival is shrunk so the average rate
  /// still matches `loadBytesPerNsPerNode`. 0 = plain Poisson.
  double burstiness = 0.0;
  double burstGapMeanNs = 20'000.0;
  /// kIncast: packets every sender fires back-to-back at the victim at each
  /// epoch boundary (epochs start at multiples of incastPeriodNs). The
  /// victim is `hotspotNode` (kInvalidId = picked at random from the seed)
  /// and generates nothing itself.
  int incastBurstPackets = 8;
  SimTime incastPeriodNs = 50'000;
  /// kPermStorm: number of precomputed fixed-point-free permutations the
  /// pattern rotates through, switching every stormPeriodNs — an adversarial
  /// workload whose congestion trees move before reaction settles.
  int stormEpochs = 4;
  SimTime stormPeriodNs = 100'000;
};

/// Bit reversal within ceil(log2(n)) bits (exposed for tests).
NodeId bitReverse(NodeId v, int bits);

/// Swap the low and high halves of an index of `bits` bits (bits even).
NodeId bitTranspose(NodeId v, int bits);

/// Rotate an index of `bits` bits left by one (perfect shuffle).
NodeId bitShuffle(NodeId v, int bits);

class SyntheticTraffic final : public ITrafficSource {
 public:
  SyntheticTraffic(const TrafficSpec& spec, std::uint64_t seed);

  Spec makePacket(NodeId src, Rng& rng) override;
  SimTime firstGenTime(NodeId node, Rng& rng) override;
  SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) override;
  bool saturationMode() const override { return spec_.saturation; }
  int saturationQueueCap() const override { return spec_.saturationQueueCap; }

  NodeId hotspotNode() const { return hotspot_; }
  double meanInterarrivalNs() const { return meanGapNs_; }

 private:
  NodeId pickDestination(NodeId src, Rng& rng) const;

  /// Per-node generation state for the epoch-clocked patterns. Each cell is
  /// touched only by its node's traffic-source calls, which always run on
  /// the shard owning that node (see ITrafficSource) — no cross-node races.
  struct NodeState {
    SimTime pendingWake = 0;  // the wake time makePacket will fire at
    int burstLeft = 0;        // kIncast: packets left in the current burst
  };

  TrafficSpec spec_;
  NodeId hotspot_ = kInvalidId;
  int addrBits_ = 0;
  double meanGapNs_ = 0.0;  // average interarrival (rate-defining)
  double baseGapNs_ = 0.0;  // Poisson component after burst compensation
  std::vector<NodeState> nodeState_;
  /// kPermStorm: stormEpochs fixed-point-free permutations over the nodes,
  /// precomputed from the setup seed (read-only after construction).
  std::vector<std::vector<NodeId>> storms_;
};

}  // namespace ibadapt
