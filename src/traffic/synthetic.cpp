#include "traffic/synthetic.hpp"

#include <cmath>

namespace ibadapt {

NodeId bitReverse(NodeId v, int bits) {
  NodeId out = 0;
  for (int b = 0; b < bits; ++b) {
    out = (out << 1) | ((v >> b) & 1);
  }
  return out;
}

NodeId bitTranspose(NodeId v, int bits) {
  const int half = bits / 2;
  const NodeId lowMask = (1 << half) - 1;
  return ((v & lowMask) << half) | ((v >> half) & lowMask);
}

NodeId bitShuffle(NodeId v, int bits) {
  const NodeId msb = (v >> (bits - 1)) & 1;
  return ((v << 1) | msb) & ((1 << bits) - 1);
}

SyntheticTraffic::SyntheticTraffic(const TrafficSpec& spec, std::uint64_t seed)
    : spec_(spec) {
  if (spec.numNodes < 2) {
    throw std::invalid_argument("SyntheticTraffic: need >= 2 nodes");
  }
  if (spec.packetBytes <= 0) {
    throw std::invalid_argument("SyntheticTraffic: packetBytes");
  }
  if (spec.adaptiveFraction < 0.0 || spec.adaptiveFraction > 1.0) {
    throw std::invalid_argument("SyntheticTraffic: adaptiveFraction");
  }
  if (spec.pattern == TrafficPattern::kBitReversal ||
      spec.pattern == TrafficPattern::kTranspose ||
      spec.pattern == TrafficPattern::kShuffle) {
    if ((spec.numNodes & (spec.numNodes - 1)) != 0) {
      throw std::invalid_argument(
          "SyntheticTraffic: bit-permutation patterns need a power-of-two "
          "node count");
    }
    while ((1 << addrBits_) < spec.numNodes) ++addrBits_;
    if (spec.pattern == TrafficPattern::kTranspose && addrBits_ % 2 != 0) {
      throw std::invalid_argument(
          "SyntheticTraffic: transpose needs an even number of index bits");
    }
  }
  if (spec.pattern == TrafficPattern::kLocality &&
      (spec.localityWindow < 1 || spec.localityWindow >= spec.numNodes)) {
    throw std::invalid_argument("SyntheticTraffic: localityWindow");
  }
  if (spec.burstiness < 0.0 || spec.burstiness >= 1.0) {
    throw std::invalid_argument("SyntheticTraffic: burstiness in [0,1)");
  }
  Rng setup(seed);
  if (spec.pattern == TrafficPattern::kHotspot) {
    hotspot_ = spec.hotspotNode != kInvalidId
                   ? spec.hotspotNode
                   : static_cast<NodeId>(setup.uniformIndex(
                         static_cast<std::uint64_t>(spec.numNodes)));
  }
  if (!spec.saturation) {
    if (spec.loadBytesPerNsPerNode <= 0.0) {
      throw std::invalid_argument("SyntheticTraffic: load must be > 0");
    }
    meanGapNs_ = spec.packetBytes / spec.loadBytesPerNsPerNode;
    if (spec.burstiness > 0.0) {
      // Keep the average rate: base gap + burstiness * pauseMean == meanGap.
      baseGapNs_ = meanGapNs_ - spec.burstiness * spec.burstGapMeanNs;
      if (baseGapNs_ <= 0.0) {
        throw std::invalid_argument(
            "SyntheticTraffic: burst pause too long for the offered load");
      }
    } else {
      baseGapNs_ = meanGapNs_;
    }
  }
}

NodeId SyntheticTraffic::pickDestination(NodeId src, Rng& rng) const {
  const int n = spec_.numNodes;
  auto uniformOther = [&]() {
    auto d = static_cast<NodeId>(rng.uniformIndex(
        static_cast<std::uint64_t>(n - 1)));
    if (d >= src) ++d;
    return d;
  };
  switch (spec_.pattern) {
    case TrafficPattern::kUniform:
      return uniformOther();
    case TrafficPattern::kBitReversal: {
      NodeId d = bitReverse(src, addrBits_);
      // Palindromic indices map to themselves; redirect across the machine
      // so every source still offers load.
      if (d == src) d = (src + n / 2) % n;
      return d;
    }
    case TrafficPattern::kHotspot: {
      if (src != hotspot_ && rng.uniformReal() < spec_.hotspotFraction) {
        return hotspot_;
      }
      return uniformOther();
    }
    case TrafficPattern::kTranspose: {
      NodeId d = bitTranspose(src, addrBits_);
      if (d == src) d = (src + n / 2) % n;  // diagonal fixed points
      return d;
    }
    case TrafficPattern::kShuffle: {
      NodeId d = bitShuffle(src, addrBits_);
      if (d == src) d = (src + n / 2) % n;  // all-0s / all-1s fixed points
      return d;
    }
    case TrafficPattern::kLocality: {
      const int w = spec_.localityWindow;
      int off = 1 + static_cast<int>(rng.uniformIndex(
                        static_cast<std::uint64_t>(2 * w)));
      if (off > w) off = w - off;  // -w .. -1
      return static_cast<NodeId>(((src + off) % n + n) % n);
    }
  }
  return uniformOther();
}

ITrafficSource::Spec SyntheticTraffic::makePacket(NodeId src, Rng& rng) {
  Spec s;
  s.dst = pickDestination(src, rng);
  s.sizeBytes = spec_.packetBytes;
  if (spec_.multipathPlanes > 0) {
    s.pathOffset = spec_.multipathPlanes == 1
                       ? 0
                       : static_cast<int>(rng.uniformIndex(
                             static_cast<std::uint64_t>(spec_.multipathPlanes)));
    s.adaptive = spec_.multipathPlanes > 1;  // no cross-plane ordering
    s.sl = 0;
    return s;
  }
  s.adaptive = spec_.adaptiveFraction > 0.0 &&
               (spec_.adaptiveFraction >= 1.0 ||
                rng.bernoulli(spec_.adaptiveFraction));
  if (spec_.pathSetOffset > 0) {
    // Alternate APM path set: pin the DLID inside that set's sub-block,
    // keeping the adaptive bit in the low address bit.
    s.pathOffset = spec_.pathSetOffset + (s.adaptive ? 1 : 0);
  }
  s.sl = spec_.numSls > 1
             ? static_cast<std::uint8_t>(rng.uniformIndex(
                   static_cast<std::uint64_t>(spec_.numSls)))
             : 0;
  return s;
}

SimTime SyntheticTraffic::firstGenTime(NodeId node, Rng& rng) {
  (void)node;
  if (spec_.saturation) {
    // meanGapNs_/baseGapNs_ are never assigned in saturation mode (the
    // constructor skips the rate computation); an exponential draw from a
    // zero mean would silently return 0 for every node. Backlogged sources
    // have no interarrival process — the kernel injects on credit
    // availability and must not ask for gaps.
    throw std::logic_error(
        "SyntheticTraffic::firstGenTime: no interarrival process in "
        "saturation mode");
  }
  // Mirror nextGenTime's draw (base gap plus optional burst pause) so the
  // first interarrival follows the same compound-Poisson law as the rest of
  // the stream; with burstiness == 0 this is the plain exponential of mean
  // meanGapNs_ as before.
  double gap = rng.exponential(baseGapNs_);
  if (spec_.burstiness > 0.0 && rng.uniformReal() < spec_.burstiness) {
    gap += rng.exponential(spec_.burstGapMeanNs);
  }
  return static_cast<SimTime>(gap);
}

SimTime SyntheticTraffic::nextGenTime(NodeId node, SimTime now, Rng& rng) {
  (void)node;
  if (spec_.saturation) {
    throw std::logic_error(
        "SyntheticTraffic::nextGenTime: no interarrival process in "
        "saturation mode");
  }
  double gap = rng.exponential(baseGapNs_);
  if (spec_.burstiness > 0.0 && rng.uniformReal() < spec_.burstiness) {
    gap += rng.exponential(spec_.burstGapMeanNs);
  }
  return now + 1 + static_cast<SimTime>(gap);
}

}  // namespace ibadapt
