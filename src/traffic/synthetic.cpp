#include "traffic/synthetic.hpp"

#include <cmath>
#include <utility>

namespace ibadapt {

NodeId bitReverse(NodeId v, int bits) {
  NodeId out = 0;
  for (int b = 0; b < bits; ++b) {
    out = (out << 1) | ((v >> b) & 1);
  }
  return out;
}

NodeId bitTranspose(NodeId v, int bits) {
  const int half = bits / 2;
  const NodeId lowMask = (1 << half) - 1;
  return ((v & lowMask) << half) | ((v >> half) & lowMask);
}

NodeId bitShuffle(NodeId v, int bits) {
  const NodeId msb = (v >> (bits - 1)) & 1;
  return ((v << 1) | msb) & ((1 << bits) - 1);
}

SyntheticTraffic::SyntheticTraffic(const TrafficSpec& spec, std::uint64_t seed)
    : spec_(spec) {
  if (spec.numNodes < 2) {
    throw std::invalid_argument("SyntheticTraffic: need >= 2 nodes");
  }
  if (spec.packetBytes <= 0) {
    throw std::invalid_argument("SyntheticTraffic: packetBytes");
  }
  if (spec.adaptiveFraction < 0.0 || spec.adaptiveFraction > 1.0) {
    throw std::invalid_argument("SyntheticTraffic: adaptiveFraction");
  }
  if (spec.pattern == TrafficPattern::kBitReversal ||
      spec.pattern == TrafficPattern::kTranspose ||
      spec.pattern == TrafficPattern::kShuffle) {
    if ((spec.numNodes & (spec.numNodes - 1)) != 0) {
      throw std::invalid_argument(
          "SyntheticTraffic: bit-permutation patterns need a power-of-two "
          "node count");
    }
    while ((1 << addrBits_) < spec.numNodes) ++addrBits_;
    if (spec.pattern == TrafficPattern::kTranspose && addrBits_ % 2 != 0) {
      throw std::invalid_argument(
          "SyntheticTraffic: transpose needs an even number of index bits");
    }
  }
  if (spec.pattern == TrafficPattern::kLocality &&
      (spec.localityWindow < 1 || spec.localityWindow >= spec.numNodes)) {
    throw std::invalid_argument("SyntheticTraffic: localityWindow");
  }
  if (spec.burstiness < 0.0 || spec.burstiness >= 1.0) {
    throw std::invalid_argument("SyntheticTraffic: burstiness in [0,1)");
  }
  if (spec.pattern == TrafficPattern::kIncast) {
    if (spec.incastBurstPackets < 1 || spec.incastPeriodNs <= 0) {
      throw std::invalid_argument("SyntheticTraffic: incast burst/period");
    }
    if (spec.saturation) {
      throw std::invalid_argument(
          "SyntheticTraffic: incast is epoch-clocked; saturation mode has "
          "no generation clock");
    }
  }
  if (spec.pattern == TrafficPattern::kPermStorm) {
    if (spec.stormEpochs < 1 || spec.stormPeriodNs <= 0) {
      throw std::invalid_argument("SyntheticTraffic: storm epochs/period");
    }
    if (spec.saturation) {
      throw std::invalid_argument(
          "SyntheticTraffic: permutation storms are epoch-clocked; "
          "saturation mode has no generation clock");
    }
  }
  Rng setup(seed);
  if (spec.pattern == TrafficPattern::kHotspot ||
      spec.pattern == TrafficPattern::kIncast) {
    hotspot_ = spec.hotspotNode != kInvalidId
                   ? spec.hotspotNode
                   : static_cast<NodeId>(setup.uniformIndex(
                         static_cast<std::uint64_t>(spec.numNodes)));
  }
  nodeState_.assign(static_cast<std::size_t>(spec.numNodes), NodeState{});
  if (spec.pattern == TrafficPattern::kPermStorm) {
    // Fixed-point-free permutations from the setup stream: Fisher-Yates,
    // then swap any self-mapping with its right neighbour (which cannot
    // create a new fixed point — the neighbour held a different value).
    storms_.resize(static_cast<std::size_t>(spec.stormEpochs));
    for (auto& perm : storms_) {
      perm.resize(static_cast<std::size_t>(spec.numNodes));
      for (NodeId i = 0; i < spec.numNodes; ++i) {
        perm[static_cast<std::size_t>(i)] = i;
      }
      for (int i = spec.numNodes - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            setup.uniformIndex(static_cast<std::uint64_t>(i + 1)));
        std::swap(perm[static_cast<std::size_t>(i)], perm[j]);
      }
      for (int i = 0; i < spec.numNodes; ++i) {
        if (perm[static_cast<std::size_t>(i)] == i) {
          std::swap(perm[static_cast<std::size_t>(i)],
                    perm[static_cast<std::size_t>((i + 1) % spec.numNodes)]);
        }
      }
    }
  }
  if (!spec.saturation) {
    if (spec.loadBytesPerNsPerNode <= 0.0) {
      throw std::invalid_argument("SyntheticTraffic: load must be > 0");
    }
    meanGapNs_ = spec.packetBytes / spec.loadBytesPerNsPerNode;
    if (spec.burstiness > 0.0) {
      // Keep the average rate: base gap + burstiness * pauseMean == meanGap.
      baseGapNs_ = meanGapNs_ - spec.burstiness * spec.burstGapMeanNs;
      if (baseGapNs_ <= 0.0) {
        throw std::invalid_argument(
            "SyntheticTraffic: burst pause too long for the offered load");
      }
    } else {
      baseGapNs_ = meanGapNs_;
    }
  }
}

NodeId SyntheticTraffic::pickDestination(NodeId src, Rng& rng) const {
  const int n = spec_.numNodes;
  auto uniformOther = [&]() {
    auto d = static_cast<NodeId>(rng.uniformIndex(
        static_cast<std::uint64_t>(n - 1)));
    if (d >= src) ++d;
    return d;
  };
  switch (spec_.pattern) {
    case TrafficPattern::kUniform:
      return uniformOther();
    case TrafficPattern::kBitReversal: {
      NodeId d = bitReverse(src, addrBits_);
      // Palindromic indices map to themselves; redirect across the machine
      // so every source still offers load.
      if (d == src) d = (src + n / 2) % n;
      return d;
    }
    case TrafficPattern::kHotspot: {
      if (src != hotspot_ && rng.uniformReal() < spec_.hotspotFraction) {
        return hotspot_;
      }
      return uniformOther();
    }
    case TrafficPattern::kTranspose: {
      NodeId d = bitTranspose(src, addrBits_);
      if (d == src) d = (src + n / 2) % n;  // diagonal fixed points
      return d;
    }
    case TrafficPattern::kShuffle: {
      NodeId d = bitShuffle(src, addrBits_);
      if (d == src) d = (src + n / 2) % n;  // all-0s / all-1s fixed points
      return d;
    }
    case TrafficPattern::kLocality: {
      const int w = spec_.localityWindow;
      int off = 1 + static_cast<int>(rng.uniformIndex(
                        static_cast<std::uint64_t>(2 * w)));
      if (off > w) off = w - off;  // -w .. -1
      return static_cast<NodeId>(((src + off) % n + n) % n);
    }
    case TrafficPattern::kIncast:
      return hotspot_;  // the victim itself never generates
    case TrafficPattern::kPermStorm: {
      // The active permutation is a pure function of the wake time this
      // packet generates at, recorded by first/nextGenTime — identical for
      // every kernel and thread count.
      const auto epoch = static_cast<std::size_t>(
          (nodeState_[static_cast<std::size_t>(src)].pendingWake /
           spec_.stormPeriodNs) %
          spec_.stormEpochs);
      return storms_[epoch][static_cast<std::size_t>(src)];
    }
  }
  return uniformOther();
}

ITrafficSource::Spec SyntheticTraffic::makePacket(NodeId src, Rng& rng) {
  Spec s;
  s.dst = pickDestination(src, rng);
  s.sizeBytes = spec_.packetBytes;
  if (spec_.multipathPlanes > 0) {
    s.pathOffset = spec_.multipathPlanes == 1
                       ? 0
                       : static_cast<int>(rng.uniformIndex(
                             static_cast<std::uint64_t>(spec_.multipathPlanes)));
    s.adaptive = spec_.multipathPlanes > 1;  // no cross-plane ordering
    s.sl = 0;
    return s;
  }
  s.adaptive = spec_.adaptiveFraction > 0.0 &&
               (spec_.adaptiveFraction >= 1.0 ||
                rng.bernoulli(spec_.adaptiveFraction));
  if (spec_.pathSetOffset > 0) {
    // Alternate APM path set: pin the DLID inside that set's sub-block,
    // keeping the adaptive bit in the low address bit.
    s.pathOffset = spec_.pathSetOffset + (s.adaptive ? 1 : 0);
  }
  s.sl = spec_.numSls > 1
             ? static_cast<std::uint8_t>(rng.uniformIndex(
                   static_cast<std::uint64_t>(spec_.numSls)))
             : 0;
  return s;
}

SimTime SyntheticTraffic::firstGenTime(NodeId node, Rng& rng) {
  if (spec_.saturation) {
    // meanGapNs_/baseGapNs_ are never assigned in saturation mode (the
    // constructor skips the rate computation); an exponential draw from a
    // zero mean would silently return 0 for every node. Backlogged sources
    // have no interarrival process — the kernel injects on credit
    // availability and must not ask for gaps.
    throw std::logic_error(
        "SyntheticTraffic::firstGenTime: no interarrival process in "
        "saturation mode");
  }
  NodeState& st = nodeState_[static_cast<std::size_t>(node)];
  if (spec_.pattern == TrafficPattern::kIncast) {
    // Senders open fire together at epoch 0; the victim stays silent.
    if (node == hotspot_) {
      st.pendingWake = kTimeNever;
      return kTimeNever;
    }
    st.burstLeft = spec_.incastBurstPackets - 1;
    st.pendingWake = 0;
    return 0;
  }
  // Mirror nextGenTime's draw (base gap plus optional burst pause) so the
  // first interarrival follows the same compound-Poisson law as the rest of
  // the stream; with burstiness == 0 this is the plain exponential of mean
  // meanGapNs_ as before.
  double gap = rng.exponential(baseGapNs_);
  if (spec_.burstiness > 0.0 && rng.uniformReal() < spec_.burstiness) {
    gap += rng.exponential(spec_.burstGapMeanNs);
  }
  st.pendingWake = static_cast<SimTime>(gap);
  return st.pendingWake;
}

SimTime SyntheticTraffic::nextGenTime(NodeId node, SimTime now, Rng& rng) {
  if (spec_.saturation) {
    throw std::logic_error(
        "SyntheticTraffic::nextGenTime: no interarrival process in "
        "saturation mode");
  }
  NodeState& st = nodeState_[static_cast<std::size_t>(node)];
  if (spec_.pattern == TrafficPattern::kIncast) {
    // Back-to-back within a burst, then sleep to the next epoch boundary.
    if (st.burstLeft > 0) {
      --st.burstLeft;
      st.pendingWake = now + 1;
    } else {
      st.burstLeft = spec_.incastBurstPackets - 1;
      st.pendingWake = (now / spec_.incastPeriodNs + 1) * spec_.incastPeriodNs;
    }
    return st.pendingWake;
  }
  double gap = rng.exponential(baseGapNs_);
  if (spec_.burstiness > 0.0 && rng.uniformReal() < spec_.burstiness) {
    gap += rng.exponential(spec_.burstGapMeanNs);
  }
  st.pendingWake = now + 1 + static_cast<SimTime>(gap);
  return st.pendingWake;
}

}  // namespace ibadapt
