#pragma once
//
// Trace-driven workloads: capture the packet stream of any run and replay
// it bit-exactly under a different fabric/routing configuration. This is
// how configurations are compared on *identical* offered traffic instead of
// merely identically-distributed traffic.
//
// Text format, one record per line, '#' comments allowed:
//     <genTimeNs> <src> <dst> <sizeBytes> <adaptive:0|1> <sl>
//
#include <iosfwd>
#include <map>
#include <vector>

#include "fabric/interfaces.hpp"
#include "util/types.hpp"

namespace ibadapt {

struct TraceRecord {
  SimTime genTime = 0;
  NodeId src = kInvalidId;
  NodeId dst = kInvalidId;
  std::int32_t sizeBytes = 0;
  bool adaptive = false;
  std::uint8_t sl = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

void writeTrace(std::ostream& os, const std::vector<TraceRecord>& records);

/// Throws std::runtime_error on malformed input.
std::vector<TraceRecord> readTrace(std::istream& is);

/// Replays a trace: each record is generated at its src node at its time.
/// Records are grouped per node and sorted by time on construction.
class TraceTraffic final : public ITrafficSource {
 public:
  explicit TraceTraffic(std::vector<TraceRecord> records);

  Spec makePacket(NodeId src, Rng& rng) override;
  SimTime firstGenTime(NodeId node, Rng& rng) override;
  SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) override;
  bool saturationMode() const override { return false; }

  std::size_t totalRecords() const { return total_; }

 private:
  std::map<NodeId, std::vector<TraceRecord>> perNode_;
  std::map<NodeId, std::size_t> cursor_;
  std::size_t total_ = 0;
};

/// Observer that records every generated packet as a trace (and forwards
/// nothing else). Attach via ObserverFanout to combine with measurement.
class TraceCapture final : public IDeliveryObserver {
 public:
  void onGenerated(const Packet& pkt, SimTime now) override;
  void onInjected(const Packet&, SimTime) override {}
  void onDelivered(const Packet&, SimTime) override {}

  const std::vector<TraceRecord>& records() const { return records_; }

 private:
  std::vector<TraceRecord> records_;
};

/// Broadcasts observer callbacks to several observers (capture + stats).
class ObserverFanout final : public IDeliveryObserver {
 public:
  void add(IDeliveryObserver* obs) { observers_.push_back(obs); }

  void onGenerated(const Packet& pkt, SimTime now) override {
    for (auto* o : observers_) o->onGenerated(pkt, now);
  }
  void onInjected(const Packet& pkt, SimTime now) override {
    for (auto* o : observers_) o->onInjected(pkt, now);
  }
  void onDelivered(const Packet& pkt, SimTime now) override {
    for (auto* o : observers_) o->onDelivered(pkt, now);
  }

 private:
  std::vector<IDeliveryObserver*> observers_;
};

}  // namespace ibadapt
