#include "traffic/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ibadapt {

void writeTrace(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "# ibadapt trace v1: genTimeNs src dst sizeBytes adaptive sl\n";
  for (const TraceRecord& r : records) {
    os << r.genTime << ' ' << r.src << ' ' << r.dst << ' ' << r.sizeBytes
       << ' ' << (r.adaptive ? 1 : 0) << ' ' << static_cast<int>(r.sl)
       << '\n';
  }
}

std::vector<TraceRecord> readTrace(std::istream& is) {
  std::vector<TraceRecord> out;
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    TraceRecord r;
    int adaptive = 0;
    int sl = 0;
    if (!(ls >> r.genTime)) continue;  // blank / comment-only line
    if (!(ls >> r.src >> r.dst >> r.sizeBytes >> adaptive >> sl)) {
      throw std::runtime_error("readTrace: malformed line " +
                               std::to_string(lineNo));
    }
    if (r.genTime < 0 || r.src < 0 || r.dst < 0 || r.sizeBytes <= 0 ||
        sl < 0 || sl >= 16) {
      throw std::runtime_error("readTrace: out-of-range field at line " +
                               std::to_string(lineNo));
    }
    r.adaptive = adaptive != 0;
    r.sl = static_cast<std::uint8_t>(sl);
    out.push_back(r);
  }
  return out;
}

TraceTraffic::TraceTraffic(std::vector<TraceRecord> records) {
  for (TraceRecord& r : records) {
    perNode_[r.src].push_back(r);
  }
  for (auto& [node, list] : perNode_) {
    (void)node;
    std::stable_sort(list.begin(), list.end(),
                     [](const TraceRecord& a, const TraceRecord& b) {
                       return a.genTime < b.genTime;
                     });
    total_ += list.size();
  }
}

ITrafficSource::Spec TraceTraffic::makePacket(NodeId src, Rng& rng) {
  (void)rng;
  auto& list = perNode_.at(src);
  const TraceRecord& r = list[cursor_[src]];
  ++cursor_[src];
  Spec s;
  s.dst = r.dst;
  s.sizeBytes = r.sizeBytes;
  s.adaptive = r.adaptive;
  s.sl = r.sl;
  return s;
}

SimTime TraceTraffic::firstGenTime(NodeId node, Rng& rng) {
  (void)rng;
  const auto it = perNode_.find(node);
  if (it == perNode_.end() || it->second.empty()) return kTimeNever;
  return it->second.front().genTime;
}

SimTime TraceTraffic::nextGenTime(NodeId node, SimTime now, Rng& rng) {
  (void)now;
  (void)rng;
  const auto& list = perNode_.at(node);
  const std::size_t next = cursor_[node];
  if (next >= list.size()) return kTimeNever;
  return list[next].genTime;
}

void TraceCapture::onGenerated(const Packet& pkt, SimTime now) {
  TraceRecord r;
  r.genTime = now;
  r.src = pkt.src;
  r.dst = pkt.dst;
  r.sizeBytes = pkt.sizeBytes;
  r.adaptive = pkt.adaptive;
  r.sl = pkt.sl;
  records_.push_back(r);
}

}  // namespace ibadapt
