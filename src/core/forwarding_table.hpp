#pragma once
//
// Interleaved linear forwarding table (paper §4.1, Figure 1).
//
// Externally this behaves exactly like an IBA linear forwarding table: the
// subnet manager writes one output port per LID through `setEntry`, and a
// linear read (`entry`) returns it — full IBA compatibility. Internally the
// table is organized as `numBanks` interleaved memory modules selected by
// the low bits of the LID, so a single `lookup` access returns all
// `numBanks` routing options of the addressed destination simultaneously:
//   bank 0 row = address d       -> escape / deterministic option
//   bank k row = address d + k   -> k-th adaptive (minimal) option
//
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

/// Compile-time cap on simultaneous routing options (paper: LMC allows up to
/// 128, "a low number is enough"; we cap generously at 8).
inline constexpr int kMaxRouteOptions = 8;

/// Result of one interleaved table access.
struct RouteOptions {
  /// From the DLID's least-significant bit: adaptive routing requested.
  bool adaptiveRequested = false;
  /// Escape / deterministic output port (bank 0). kInvalidPort when the
  /// entry was never programmed.
  PortIndex escapePort = kInvalidPort;
  /// Distinct adaptive output ports (banks 1..x-1, deduplicated, invalid
  /// entries dropped).
  int numAdaptive = 0;
  std::array<PortIndex, kMaxRouteOptions> adaptivePorts{};

  bool valid() const { return escapePort != kInvalidPort; }
};

class AdaptiveForwardingTable {
 public:
  /// `numBanks` must be a power of two in [1, kMaxRouteOptions];
  /// `lidLimit` is one past the largest LID the table must map.
  AdaptiveForwardingTable(int numBanks, Lid lidLimit);

  int numBanks() const { return numBanks_; }
  Lid lidLimit() const { return lidLimit_; }

  /// Linear SM-facing write: program the output port for one LID.
  void setEntry(Lid lid, PortIndex port);

  /// Bulk SM-facing write: program `count` consecutive entries starting at
  /// `start` from raw table bytes (the LFT image row format: one byte per
  /// LID, 0xff = not programmed). A 0xff byte *clears* its entry — on a
  /// fresh/cleared table this is exactly `setEntry` per non-0xff byte, but
  /// with a single bounds check and one memcpy instead of `count` checked
  /// stores.
  void setBlock(Lid start, const std::uint8_t* bytes, std::size_t count);

  /// Linear SM-facing read.
  PortIndex entry(Lid lid) const;

  /// Interleaved access: returns every option stored in the DLID's aligned
  /// block plus the decoded per-packet adaptive bit.
  RouteOptions lookup(Lid dlid) const;

  /// Reset every entry to "not programmed" (staging reuse).
  void clear();

 private:
  int numBanks_;
  int bankShift_;  // log2(numBanks_)
  Lid lidLimit_;
  // Interleaved banks stored as one flat row-major array: cells_[lid] is
  // bank (lid & (numBanks-1)), row (lid >> bankShift_) — i.e. exactly the
  // linear table layout, so a lookup reads the destination's whole aligned
  // block (escape + every adaptive option) from `numBanks` contiguous
  // bytes, one cache line, without re-deriving per-bank offsets.
  // 0xff encodes "not programmed".
  std::vector<std::uint8_t> cells_;
};

/// Epoch-versioned forwarding table: the dual-bank LFT a switch needs for
/// live reconfiguration. Two full interleaved tables are kept; one is
/// *active* (the table the current injection epoch routes on), the other is
/// the *shadow* that the subnet manager stages the next routing image into.
/// Committing the shadow tags it with the new epoch and makes it the active
/// buffer, but packets keep selecting by their own injection-epoch stamp:
/// a packet stamped at epoch e uses the newest table whose epoch is <= e,
/// so in-flight traffic finishes on the tables it started on and never
/// mixes old and new escape paths. The subnet manager guarantees at most
/// two epochs coexist in flight (it drains epoch e-1 before staging e+1
/// over its buffer), which is exactly what two banks can discriminate.
class VersionedForwardingTable {
 public:
  /// Only the primary bank is allocated up front; the shadow bank is
  /// created on the first `stageBegin()`. Runs that never reconfigure —
  /// the overwhelmingly common case — therefore pay exactly 1x LFT memory
  /// per switch, which at 1024 switches x multi-KB rows is the difference
  /// between linear and doubled fabric table memory.
  VersionedForwardingTable(int numBanks, Lid lidLimit)
      : primary_(numBanks, lidLimit) {}

  int numBanks() const { return primary_.numBanks(); }
  Lid lidLimit() const { return primary_.lidLimit(); }

  /// Epoch of the active table (what freshly injected packets route on).
  std::uint32_t epoch() const { return epochs_[active_]; }
  bool staging() const { return staging_; }
  /// True once the shadow bank exists (some reconfiguration was staged).
  bool shadowAllocated() const { return shadow_ != nullptr; }

  // --- active-table API: the classic single-table SM surface. ------------
  /// In-place write to the active table (instant stop-and-resweep path).
  void setEntry(Lid lid, PortIndex port) { bank(active_).setEntry(lid, port); }
  /// Bulk variant (see AdaptiveForwardingTable::setBlock).
  void setBlock(Lid start, const std::uint8_t* bytes, std::size_t count) {
    bank(active_).setBlock(start, bytes, count);
  }
  PortIndex entry(Lid lid) const { return bank(active_).entry(lid); }
  RouteOptions lookup(Lid dlid) const { return bank(active_).lookup(dlid); }

  // --- shadow staging (live epoch swap) -----------------------------------
  /// Open the shadow buffer for a new image (allocating it on first use);
  /// wipes whatever old-epoch table it held (caller must have drained that
  /// epoch first).
  void stageBegin();
  /// Program one entry of the staged image.
  void stageEntry(Lid lid, PortIndex port);
  /// Bulk staged write (see AdaptiveForwardingTable::setBlock).
  void stageBlock(Lid start, const std::uint8_t* bytes, std::size_t count);
  /// Tag the staged image with `newEpoch` (must be exactly epoch()+1) and
  /// make it the active buffer. The previous table stays readable for
  /// packets still stamped with the old epoch.
  void commitStaged(std::uint32_t newEpoch);

  /// Epoch-aware lookup: selects the table matching the packet's injection
  /// epoch (the newest table whose epoch is <= pktEpoch). Before any commit
  /// both epochs are 0, so the selection always lands on the (allocated)
  /// primary bank; the shadow index is reachable only after a commit, which
  /// requires the shadow to exist.
  RouteOptions lookup(Lid dlid, std::uint32_t pktEpoch) const {
    const int idx = epochs_[active_] <= pktEpoch ? active_ : (active_ ^ 1);
    return bank(idx).lookup(dlid);
  }
  /// Same selection, linear read (audits / tests).
  PortIndex entry(Lid lid, std::uint32_t pktEpoch) const {
    const int idx = epochs_[active_] <= pktEpoch ? active_ : (active_ ^ 1);
    return bank(idx).entry(lid);
  }

  /// Warm-fabric reset: back to the as-constructed epoch state (primary
  /// active at epoch 0, nothing staged). The primary's *contents* are not
  /// cleared — the caller reinstalls a full image row, which overwrites
  /// every entry anyway; the lazily allocated shadow stays allocated but
  /// unreachable until the next stageBegin() wipes it.
  void resetEpochs() {
    epochs_ = {{0, 0}};
    active_ = 0;
    staging_ = false;
  }

 private:
  // Bank 0 is the eagerly-allocated primary, bank 1 the lazy shadow. Using
  // a member reference (not cached pointers) keeps the object move-safe.
  AdaptiveForwardingTable& bank(int i) { return i == 0 ? primary_ : *shadow_; }
  const AdaptiveForwardingTable& bank(int i) const {
    return i == 0 ? primary_ : *shadow_;
  }

  AdaptiveForwardingTable primary_;
  std::unique_ptr<AdaptiveForwardingTable> shadow_;
  std::array<std::uint32_t, 2> epochs_{{0, 0}};
  int active_ = 0;
  bool staging_ = false;
};

}  // namespace ibadapt
