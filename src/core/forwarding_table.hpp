#pragma once
//
// Interleaved linear forwarding table (paper §4.1, Figure 1).
//
// Externally this behaves exactly like an IBA linear forwarding table: the
// subnet manager writes one output port per LID through `setEntry`, and a
// linear read (`entry`) returns it — full IBA compatibility. Internally the
// table is organized as `numBanks` interleaved memory modules selected by
// the low bits of the LID, so a single `lookup` access returns all
// `numBanks` routing options of the addressed destination simultaneously:
//   bank 0 row = address d       -> escape / deterministic option
//   bank k row = address d + k   -> k-th adaptive (minimal) option
//
#include <array>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

/// Compile-time cap on simultaneous routing options (paper: LMC allows up to
/// 128, "a low number is enough"; we cap generously at 8).
inline constexpr int kMaxRouteOptions = 8;

/// Result of one interleaved table access.
struct RouteOptions {
  /// From the DLID's least-significant bit: adaptive routing requested.
  bool adaptiveRequested = false;
  /// Escape / deterministic output port (bank 0). kInvalidPort when the
  /// entry was never programmed.
  PortIndex escapePort = kInvalidPort;
  /// Distinct adaptive output ports (banks 1..x-1, deduplicated, invalid
  /// entries dropped).
  int numAdaptive = 0;
  std::array<PortIndex, kMaxRouteOptions> adaptivePorts{};

  bool valid() const { return escapePort != kInvalidPort; }
};

class AdaptiveForwardingTable {
 public:
  /// `numBanks` must be a power of two in [1, kMaxRouteOptions];
  /// `lidLimit` is one past the largest LID the table must map.
  AdaptiveForwardingTable(int numBanks, Lid lidLimit);

  int numBanks() const { return numBanks_; }
  Lid lidLimit() const { return lidLimit_; }

  /// Linear SM-facing write: program the output port for one LID.
  void setEntry(Lid lid, PortIndex port);

  /// Linear SM-facing read.
  PortIndex entry(Lid lid) const;

  /// Interleaved access: returns every option stored in the DLID's aligned
  /// block plus the decoded per-packet adaptive bit.
  RouteOptions lookup(Lid dlid) const;

 private:
  int numBanks_;
  int bankShift_;  // log2(numBanks_)
  Lid lidLimit_;
  // Interleaved banks stored as one flat row-major array: cells_[lid] is
  // bank (lid & (numBanks-1)), row (lid >> bankShift_) — i.e. exactly the
  // linear table layout, so a lookup reads the destination's whole aligned
  // block (escape + every adaptive option) from `numBanks` contiguous
  // bytes, one cache line, without re-deriving per-bank offsets.
  // 0xff encodes "not programmed".
  std::vector<std::uint8_t> cells_;
};

}  // namespace ibadapt
