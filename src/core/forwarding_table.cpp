#include "core/forwarding_table.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ibadapt {

namespace {
constexpr std::uint8_t kUnprogrammed = 0xff;

bool isPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2OfPowerOfTwo(int v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}
}  // namespace

AdaptiveForwardingTable::AdaptiveForwardingTable(int numBanks, Lid lidLimit)
    : numBanks_(numBanks), lidLimit_(lidLimit) {
  if (!isPowerOfTwo(numBanks) || numBanks > kMaxRouteOptions) {
    throw std::invalid_argument(
        "AdaptiveForwardingTable: banks must be a power of two <= 8");
  }
  bankShift_ = log2OfPowerOfTwo(numBanks);
  const std::size_t rows = (static_cast<std::size_t>(lidLimit) + numBanks - 1) >>
                           bankShift_;
  cells_.assign(rows << bankShift_, kUnprogrammed);
}

void AdaptiveForwardingTable::setEntry(Lid lid, PortIndex port) {
  if (lid >= lidLimit_) {
    throw std::out_of_range("AdaptiveForwardingTable::setEntry: LID");
  }
  if (port < 0 || port >= 0xff) {
    throw std::invalid_argument("AdaptiveForwardingTable::setEntry: port");
  }
  cells_[static_cast<std::size_t>(lid)] = static_cast<std::uint8_t>(port);
}

void AdaptiveForwardingTable::setBlock(Lid start, const std::uint8_t* bytes,
                                       std::size_t count) {
  if (count == 0) return;
  if (start >= lidLimit_ ||
      count > static_cast<std::size_t>(lidLimit_) - start) {
    throw std::out_of_range("AdaptiveForwardingTable::setBlock: LID range");
  }
  // Raw row copy: bytes are already in cell encoding (port value, or 0xff
  // for "not programmed"), so no per-entry translation is needed.
  std::memcpy(cells_.data() + static_cast<std::size_t>(start), bytes, count);
}

PortIndex AdaptiveForwardingTable::entry(Lid lid) const {
  if (lid >= lidLimit_) {
    throw std::out_of_range("AdaptiveForwardingTable::entry: LID");
  }
  const std::uint8_t v = cells_[static_cast<std::size_t>(lid)];
  return v == kUnprogrammed ? kInvalidPort : static_cast<PortIndex>(v);
}

void AdaptiveForwardingTable::clear() {
  std::fill(cells_.begin(), cells_.end(), kUnprogrammed);
}

RouteOptions AdaptiveForwardingTable::lookup(Lid dlid) const {
  if (dlid >= lidLimit_) {
    throw std::out_of_range("AdaptiveForwardingTable::lookup: LID");
  }
  RouteOptions out;
  out.adaptiveRequested = (dlid & 1u) != 0;
  // The destination's aligned block: bank 0 (escape) through bank x-1, all
  // adjacent in memory — the single interleaved access of paper §4.1.
  const std::uint8_t* block =
      cells_.data() +
      (static_cast<std::size_t>(dlid) & ~static_cast<std::size_t>(numBanks_ - 1));
  const std::uint8_t esc = block[0];
  out.escapePort = esc == kUnprogrammed ? kInvalidPort
                                        : static_cast<PortIndex>(esc);
  for (int bank = 1; bank < numBanks_; ++bank) {
    const std::uint8_t v = block[bank];
    if (v == kUnprogrammed) continue;
    const auto port = static_cast<PortIndex>(v);
    bool dup = false;
    for (int i = 0; i < out.numAdaptive; ++i) {
      if (out.adaptivePorts[static_cast<std::size_t>(i)] == port) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.adaptivePorts[static_cast<std::size_t>(out.numAdaptive++)] = port;
    }
  }
  return out;
}

void VersionedForwardingTable::stageBegin() {
  if (!shadow_) {
    // First reconfiguration: bring the shadow bank into existence (already
    // all-unprogrammed, so no clear needed).
    shadow_ = std::make_unique<AdaptiveForwardingTable>(primary_.numBanks(),
                                                        primary_.lidLimit());
  } else {
    bank(active_ ^ 1).clear();
  }
  staging_ = true;
}

void VersionedForwardingTable::stageEntry(Lid lid, PortIndex port) {
  if (!staging_) {
    throw std::logic_error(
        "VersionedForwardingTable::stageEntry: no staging in progress");
  }
  bank(active_ ^ 1).setEntry(lid, port);
}

void VersionedForwardingTable::stageBlock(Lid start, const std::uint8_t* bytes,
                                          std::size_t count) {
  if (!staging_) {
    throw std::logic_error(
        "VersionedForwardingTable::stageBlock: no staging in progress");
  }
  bank(active_ ^ 1).setBlock(start, bytes, count);
}

void VersionedForwardingTable::commitStaged(std::uint32_t newEpoch) {
  if (!staging_) {
    throw std::logic_error(
        "VersionedForwardingTable::commitStaged: no staging in progress");
  }
  if (newEpoch != epochs_[static_cast<std::size_t>(active_)] + 1) {
    throw std::logic_error(
        "VersionedForwardingTable::commitStaged: epochs must advance by one");
  }
  epochs_[static_cast<std::size_t>(active_ ^ 1)] = newEpoch;
  active_ ^= 1;
  staging_ = false;
}

}  // namespace ibadapt
