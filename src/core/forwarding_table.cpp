#include "core/forwarding_table.hpp"

#include <stdexcept>

namespace ibadapt {

namespace {
constexpr std::uint8_t kUnprogrammed = 0xff;

bool isPowerOfTwo(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2OfPowerOfTwo(int v) {
  int s = 0;
  while ((1 << s) < v) ++s;
  return s;
}
}  // namespace

AdaptiveForwardingTable::AdaptiveForwardingTable(int numBanks, Lid lidLimit)
    : numBanks_(numBanks), lidLimit_(lidLimit) {
  if (!isPowerOfTwo(numBanks) || numBanks > kMaxRouteOptions) {
    throw std::invalid_argument(
        "AdaptiveForwardingTable: banks must be a power of two <= 8");
  }
  bankShift_ = log2OfPowerOfTwo(numBanks);
  const std::size_t rows = (static_cast<std::size_t>(lidLimit) + numBanks - 1) >>
                           bankShift_;
  banks_.assign(static_cast<std::size_t>(numBanks),
                std::vector<std::uint8_t>(rows, kUnprogrammed));
}

void AdaptiveForwardingTable::setEntry(Lid lid, PortIndex port) {
  if (lid >= lidLimit_) {
    throw std::out_of_range("AdaptiveForwardingTable::setEntry: LID");
  }
  if (port < 0 || port >= 0xff) {
    throw std::invalid_argument("AdaptiveForwardingTable::setEntry: port");
  }
  const std::size_t bank = lid & static_cast<Lid>(numBanks_ - 1);
  const std::size_t row = lid >> bankShift_;
  banks_[bank][row] = static_cast<std::uint8_t>(port);
}

PortIndex AdaptiveForwardingTable::entry(Lid lid) const {
  if (lid >= lidLimit_) {
    throw std::out_of_range("AdaptiveForwardingTable::entry: LID");
  }
  const std::size_t bank = lid & static_cast<Lid>(numBanks_ - 1);
  const std::size_t row = lid >> bankShift_;
  const std::uint8_t v = banks_[bank][row];
  return v == kUnprogrammed ? kInvalidPort : static_cast<PortIndex>(v);
}

RouteOptions AdaptiveForwardingTable::lookup(Lid dlid) const {
  if (dlid >= lidLimit_) {
    throw std::out_of_range("AdaptiveForwardingTable::lookup: LID");
  }
  RouteOptions out;
  out.adaptiveRequested = (dlid & 1u) != 0;
  const std::size_t row = dlid >> bankShift_;
  const std::uint8_t esc = banks_[0][row];
  out.escapePort = esc == kUnprogrammed ? kInvalidPort
                                        : static_cast<PortIndex>(esc);
  for (int bank = 1; bank < numBanks_; ++bank) {
    const std::uint8_t v = banks_[static_cast<std::size_t>(bank)][row];
    if (v == kUnprogrammed) continue;
    const auto port = static_cast<PortIndex>(v);
    bool dup = false;
    for (int i = 0; i < out.numAdaptive; ++i) {
      if (out.adaptivePorts[static_cast<std::size_t>(i)] == port) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.adaptivePorts[static_cast<std::size_t>(out.numAdaptive++)] = port;
    }
  }
  return out;
}

}  // namespace ibadapt
