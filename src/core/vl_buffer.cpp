#include "core/vl_buffer.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibadapt {

VlBuffer::VlBuffer(int capacityCredits, int escapeReserveCredits)
    : capacity_(capacityCredits), escapeReserve_(escapeReserveCredits) {
  if (capacityCredits <= 0 || escapeReserveCredits < 0 ||
      escapeReserveCredits > capacityCredits) {
    throw std::invalid_argument("VlBuffer: bad capacity/reserve");
  }
}

void VlBuffer::bind(BufferedPacket* slots) {
  if (count_ > 0) {
    throw std::logic_error("VlBuffer::bind: buffer not empty");
  }
  slots_ = slots;
  own_.reset();
}

void VlBuffer::push(const BufferedPacket& bp) {
  if (bp.credits <= 0) throw std::invalid_argument("VlBuffer::push: credits");
  if (occupied_ + bp.credits > capacity_) {
    throw std::logic_error("VlBuffer::push: overflow (credit protocol broken)");
  }
  if (slots_ == nullptr) {
    // Standalone (unbound) use: allocate the fixed slot array on first push.
    // Every packet occupies >= 1 credit, so capacity_ slots always suffice.
    own_ = std::make_unique<BufferedPacket[]>(
        static_cast<std::size_t>(capacity_));
    slots_ = own_.get();
  }
  slots_[count_++] = bp;
  occupied_ += bp.credits;
  cacheValid_ = false;
}

void VlBuffer::remove(int idx) {
  if (idx < 0 || idx >= count_) {
    throw std::out_of_range("VlBuffer::remove");
  }
  occupied_ -= slots_[idx].credits;
  std::copy(slots_ + idx + 1, slots_ + count_, slots_ + idx);
  --count_;
  cacheValid_ = false;
}

void VlBuffer::clear() {
  count_ = 0;
  occupied_ = 0;
  cacheValid_ = false;
}

int VlBuffer::escapeHeadIndex() const {
  const int boundary = adaptiveRegionCredits();
  int offset = 0;
  for (int i = 0; i < count_; ++i) {
    if (offset >= boundary) return i;
    offset += slots_[i].credits;
  }
  return -1;
}

VlBuffer::Candidates VlBuffer::candidateHeads(EscapeOrderRule rule) const {
  Candidates c;
  if (count_ == 0) return c;
  c.index[0] = 0;
  c.count = 1;
  const int esc = escapeHeadIndex();
  if (esc <= 0) return c;  // no distinct escape head

  // Deterministic-order pointer: the oldest deterministic packet stored
  // ahead of the escape head, i.e. inside the adaptive region.
  int firstDet = -1;
  for (int i = 0; i < esc; ++i) {
    if (slots_[i].deterministic) {
      firstDet = i;
      break;
    }
  }

  // Which packet does the escape-queue crossbar connection serve? The paper
  // requires the pointed-to deterministic packet to be forwarded before any
  // escape-queue packet; since the buffer is a RAM, that packet can be
  // selected from any location. Redirecting the connection (rather than
  // stalling it) is essential for deadlock freedom: the escape connection
  // must always serve a packet that is actually reachable.
  int escCandidate = esc;
  switch (rule) {
    case EscapeOrderRule::kPaperStrict:
      if (firstDet == 0) return c;  // front connection already serves it;
                                    // escape queue waits behind it
      if (firstDet > 0) escCandidate = firstDet;
      break;
    case EscapeOrderRule::kDeterministicOnly:
      if (slots_[esc].deterministic && firstDet >= 0) {
        if (firstDet == 0) return c;
        escCandidate = firstDet;  // keep det-det order, allow adaptive bypass
      }
      break;
  }
  c.index[1] = escCandidate;
  c.count = 2;
  return c;
}

}  // namespace ibadapt
