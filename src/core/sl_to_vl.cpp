#include "core/sl_to_vl.hpp"

#include <stdexcept>

namespace ibadapt {

SlToVlTable::SlToVlTable(int numPorts, int numVls)
    : numPorts_(numPorts), numVls_(numVls) {
  if (numPorts <= 0 || numVls <= 0 || numVls > 16) {
    throw std::invalid_argument("SlToVlTable: bad dimensions");
  }
  map_.resize(static_cast<std::size_t>(numPorts) * numPorts * kMaxServiceLevels);
  for (PortIndex in = 0; in < numPorts; ++in) {
    for (PortIndex out = 0; out < numPorts; ++out) {
      for (int sl = 0; sl < kMaxServiceLevels; ++sl) {
        map_[slot(in, out, sl)] = static_cast<std::uint8_t>(sl % numVls);
      }
    }
  }
}

std::size_t SlToVlTable::slot(PortIndex inPort, PortIndex outPort, int sl) const {
  if (inPort < 0 || inPort >= numPorts_ || outPort < 0 || outPort >= numPorts_ ||
      sl < 0 || sl >= kMaxServiceLevels) {
    throw std::out_of_range("SlToVlTable: slot");
  }
  return (static_cast<std::size_t>(inPort) * numPorts_ + outPort) *
             kMaxServiceLevels +
         static_cast<std::size_t>(sl);
}

void SlToVlTable::set(PortIndex inPort, PortIndex outPort, int sl, VlIndex vl) {
  if (vl < 0 || vl >= numVls_) {
    throw std::invalid_argument("SlToVlTable::set: VL out of range");
  }
  map_[slot(inPort, outPort, sl)] = static_cast<std::uint8_t>(vl);
}

VlIndex SlToVlTable::vl(PortIndex inPort, PortIndex outPort, int sl) const {
  return static_cast<VlIndex>(map_[slot(inPort, outPort, sl)]);
}

}  // namespace ibadapt
