#include "core/sl_to_vl.hpp"

#include <stdexcept>

namespace ibadapt {

SlToVlTable::SlToVlTable(int numPorts, int numVls)
    : numPorts_(numPorts), numVls_(numVls) {
  if (numPorts <= 0 || numVls <= 0 || numVls > 16) {
    throw std::invalid_argument("SlToVlTable: bad dimensions");
  }
  // Identity mode: no dense map until a non-identity entry is written.
}

std::size_t SlToVlTable::slot(PortIndex inPort, PortIndex outPort, int sl) const {
  if (inPort < 0 || inPort >= numPorts_ || outPort < 0 || outPort >= numPorts_ ||
      sl < 0 || sl >= kMaxServiceLevels) {
    throw std::out_of_range("SlToVlTable: slot");
  }
  return (static_cast<std::size_t>(inPort) * numPorts_ + outPort) *
             kMaxServiceLevels +
         static_cast<std::size_t>(sl);
}

bool SlToVlTable::set(PortIndex inPort, PortIndex outPort, int sl, VlIndex vl) {
  if (vl < 0 || vl >= numVls_) {
    throw std::invalid_argument("SlToVlTable::set: VL out of range");
  }
  const std::size_t s = slot(inPort, outPort, sl);
  const auto byte = static_cast<std::uint8_t>(vl);
  if (map_.empty()) {
    if (vl == static_cast<VlIndex>(sl % numVls_)) return false;
    // First deviation from identity: materialize the dense map at the
    // identity default, then fall through to the ordinary write.
    map_.resize(static_cast<std::size_t>(numPorts_) * numPorts_ *
                kMaxServiceLevels);
    for (PortIndex in = 0; in < numPorts_; ++in) {
      for (PortIndex out = 0; out < numPorts_; ++out) {
        for (int level = 0; level < kMaxServiceLevels; ++level) {
          map_[slot(in, out, level)] =
              static_cast<std::uint8_t>(level % numVls_);
        }
      }
    }
  }
  if (map_[s] == byte) return false;
  map_[s] = byte;
  return true;
}

}  // namespace ibadapt
