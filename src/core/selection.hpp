#pragma once
//
// Output-port selection policy knobs (paper §4.3).
//
// Timing: the final option can be chosen right after the forwarding-table
// access ("at routing", simpler hardware, staler status) or delayed until
// crossbar arbitration ("at arbitration", fresher status, needs to keep all
// options with the packet). Criterion: the choice can ignore port status
// (static / random) or prefer the option with the most free credits.
//
#include <cstdint>

namespace ibadapt {

enum class SelectionTiming : std::uint8_t {
  kAtArbitration,  // paper's evaluated configuration
  kAtRouting,
};

enum class SelectionCriterion : std::uint8_t {
  kCreditAware,  // pick the feasible option with the most free credits
  kStatic,       // first listed option
  kRandom,       // uniform among feasible options
};

/// How strictly the escape queue is blocked to preserve in-order delivery of
/// deterministic packets sharing a buffer (paper §4.4, last paragraph).
enum class EscapeOrderRule : std::uint8_t {
  /// Paper's rule: while a deterministic packet sits in the adaptive region,
  /// nothing may depart from the escape queue of that buffer.
  kPaperStrict,
  /// Relaxed: only deterministic packets are barred from overtaking older
  /// deterministic packets; adaptive packets may still use the escape head.
  kDeterministicOnly,
};

}  // namespace ibadapt
