#pragma once
//
// A virtual lane's physical buffer split into logical adaptive and escape
// queues (paper §4.4, Figure 2).
//
// The buffer is a single FIFO RAM of `capacityCredits` 64-byte credits. The
// first `capacityCredits - escapeReserve` credits form the adaptive region,
// the trailing `escapeReserve` credits the escape region. Two connections
// feed the crossbar: the head of the adaptive queue (the oldest packet) and
// the head of the escape queue (the first packet stored at or beyond the
// adaptive region boundary). Packets advance toward the front as space
// frees, which realizes the escape->adaptive queue transition the FA
// algorithm permits under virtual cut-through.
//
#include <array>
#include <deque>

#include "core/forwarding_table.hpp"
#include "core/selection.hpp"
#include "util/types.hpp"

namespace ibadapt {

/// Per-packet state kept while a packet sits in an input buffer. The routing
/// options are stored with the packet right after the table access, as the
/// paper's switch model prescribes.
struct BufferedPacket {
  std::uint32_t packet = 0;       // PacketPool index
  int credits = 0;                // buffer space the packet occupies
  SimTime routeReady = 0;         // header arrival + routing delay
  bool deterministic = false;     // DLID LSB clear
  RouteOptions options;           // result of the interleaved table access
  PortIndex committedPort = kInvalidPort;  // SelectionTiming::kAtRouting
};

class VlBuffer {
 public:
  VlBuffer(int capacityCredits, int escapeReserveCredits);

  int capacityCredits() const { return capacity_; }
  int escapeReserveCredits() const { return escapeReserve_; }
  int adaptiveRegionCredits() const { return capacity_ - escapeReserve_; }
  int occupiedCredits() const { return occupied_; }
  int freeCredits() const { return capacity_ - occupied_; }
  int size() const { return static_cast<int>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Append an arriving packet. Throws std::logic_error on overflow — the
  /// credit protocol must make overflow impossible, so this is an invariant
  /// check, not flow control.
  void push(const BufferedPacket& bp);

  const BufferedPacket& at(int idx) const { return entries_[static_cast<std::size_t>(idx)]; }
  BufferedPacket& at(int idx) { return entries_[static_cast<std::size_t>(idx)]; }

  /// Remove the packet at `idx` (it won arbitration and departs).
  void remove(int idx);

  /// Index of the escape-queue head: the first packet whose start offset
  /// lies at or beyond the adaptive region boundary. -1 when every stored
  /// packet fits inside the adaptive region.
  int escapeHeadIndex() const;

  /// Crossbar-visible candidates under the given ordering rule: the
  /// adaptive-queue head (index 0) plus the packet served by the escape
  /// connection. The deterministic-order pointer (§4.4) redirects the
  /// escape connection to the oldest deterministic packet in the adaptive
  /// region — it must depart before any escape-queue packet; when that
  /// packet is the front itself the escape connection idles. Redirecting
  /// instead of stalling keeps the escape network live (deadlock freedom).
  struct Candidates {
    int count = 0;
    std::array<int, 2> index{};
  };
  Candidates candidateHeads(EscapeOrderRule rule) const;

  /// Same result as candidateHeads, memoized until the next push/remove.
  /// Used by the fast kernel, whose arbitration passes re-examine unchanged
  /// buffers far more often than they mutate them; the legacy kernel keeps
  /// the seed's recompute-every-pass behavior.
  Candidates candidateHeadsCached(EscapeOrderRule rule) const {
    if (!cacheValid_ || cachedRule_ != rule) {
      cached_ = candidateHeads(rule);
      cachedRule_ = rule;
      cacheValid_ = true;
    }
    return cached_;
  }

 private:
  int capacity_;
  int escapeReserve_;
  int occupied_ = 0;
  std::deque<BufferedPacket> entries_;
  mutable Candidates cached_;
  mutable EscapeOrderRule cachedRule_ = EscapeOrderRule::kPaperStrict;
  mutable bool cacheValid_ = false;
};

}  // namespace ibadapt
