#pragma once
//
// A virtual lane's physical buffer split into logical adaptive and escape
// queues (paper §4.4, Figure 2).
//
// The buffer is a single FIFO RAM of `capacityCredits` 64-byte credits. The
// first `capacityCredits - escapeReserve` credits form the adaptive region,
// the trailing `escapeReserve` credits the escape region. Two connections
// feed the crossbar: the head of the adaptive queue (the oldest packet) and
// the head of the escape queue (the first packet stored at or beyond the
// adaptive region boundary). Packets advance toward the front as space
// frees, which realizes the escape->adaptive queue transition the FA
// algorithm permits under virtual cut-through.
//
// Storage is a fixed-capacity slot array, not a node container: a packet
// occupies at least one credit, so a buffer can never hold more than
// `capacityCredits` packets. The slots usually live in the fabric-wide
// SlabArena (`bind()`); a buffer that is pushed to before being bound
// allocates its own slots, which keeps standalone unit-test usage working.
//
#include <array>
#include <cstdint>
#include <memory>

#include "core/forwarding_table.hpp"
#include "core/selection.hpp"
#include "util/types.hpp"

namespace ibadapt {

/// RouteOptions compacted for in-buffer storage: same field names and
/// semantics, but ports narrowed to 16 bits (a switch has < 256 ports; -1
/// stays the invalid sentinel through sign extension). At 8 buffered-packet
/// slots per VL buffer the full-width struct is the dominant term of the
/// fabric's idle buffer footprint, so the narrowing is what lets the slab
/// arena actually shrink it.
struct PackedRouteOptions {
  std::int16_t escapePort = kInvalidPort;
  std::int8_t numAdaptive = 0;
  bool adaptiveRequested = false;
  std::array<std::int16_t, kMaxRouteOptions> adaptivePorts{};

  bool valid() const { return escapePort != kInvalidPort; }

  PackedRouteOptions() = default;
  PackedRouteOptions(const RouteOptions& o) {  // NOLINT(runtime/explicit)
    escapePort = static_cast<std::int16_t>(o.escapePort);
    numAdaptive = static_cast<std::int8_t>(o.numAdaptive);
    adaptiveRequested = o.adaptiveRequested;
    for (int i = 0; i < o.numAdaptive; ++i) {
      adaptivePorts[static_cast<std::size_t>(i)] =
          static_cast<std::int16_t>(o.adaptivePorts[static_cast<std::size_t>(i)]);
    }
  }
};

/// Per-packet state kept while a packet sits in an input buffer. The routing
/// options are stored with the packet right after the table access, as the
/// paper's switch model prescribes. Field order packs the struct to 40
/// bytes; with 8 slots per VL buffer that size is replicated ~135k times on
/// a 4096-switch dragonfly, so layout is load-bearing here.
struct BufferedPacket {
  SimTime routeReady = 0;    // header arrival + routing delay
  std::uint32_t packet = 0;  // PacketPool index
  int credits = 0;           // buffer space the packet occupies
  PackedRouteOptions options;              // interleaved table access result
  std::int16_t committedPort = kInvalidPort;  // SelectionTiming::kAtRouting
  bool deterministic = false;              // DLID LSB clear
};

class VlBuffer {
 public:
  VlBuffer(int capacityCredits, int escapeReserveCredits);

  /// Point the buffer at externally-owned slot storage (a SlabArena slice of
  /// at least `capacityCredits()` slots). Must happen before the first push;
  /// the buffer never frees bound storage.
  void bind(BufferedPacket* slots);
  bool bound() const { return slots_ != nullptr; }

  int capacityCredits() const { return capacity_; }
  int escapeReserveCredits() const { return escapeReserve_; }
  int adaptiveRegionCredits() const { return capacity_ - escapeReserve_; }
  int occupiedCredits() const { return occupied_; }
  int freeCredits() const { return capacity_ - occupied_; }
  int size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Append an arriving packet. Throws std::logic_error on overflow — the
  /// credit protocol must make overflow impossible, so this is an invariant
  /// check, not flow control.
  void push(const BufferedPacket& bp);

  const BufferedPacket& at(int idx) const { return slots_[idx]; }
  BufferedPacket& at(int idx) { return slots_[idx]; }

  /// Remove the packet at `idx` (it won arbitration and departs).
  void remove(int idx);

  /// Drop all contents and invalidate memos (warm-fabric reset). Bound
  /// storage stays bound.
  void clear();

  /// Index of the escape-queue head: the first packet whose start offset
  /// lies at or beyond the adaptive region boundary. -1 when every stored
  /// packet fits inside the adaptive region.
  int escapeHeadIndex() const;

  /// Crossbar-visible candidates under the given ordering rule: the
  /// adaptive-queue head (index 0) plus the packet served by the escape
  /// connection. The deterministic-order pointer (§4.4) redirects the
  /// escape connection to the oldest deterministic packet in the adaptive
  /// region — it must depart before any escape-queue packet; when that
  /// packet is the front itself the escape connection idles. Redirecting
  /// instead of stalling keeps the escape network live (deadlock freedom).
  struct Candidates {
    int count = 0;
    std::array<int, 2> index{};
  };
  Candidates candidateHeads(EscapeOrderRule rule) const;

  /// Same result as candidateHeads, memoized until the next push/remove.
  /// Used by the fast kernel, whose arbitration passes re-examine unchanged
  /// buffers far more often than they mutate them; the legacy kernel keeps
  /// the seed's recompute-every-pass behavior.
  Candidates candidateHeadsCached(EscapeOrderRule rule) const {
    if (!cacheValid_ || cachedRule_ != rule) {
      cached_ = candidateHeads(rule);
      cachedRule_ = rule;
      cacheValid_ = true;
    }
    return cached_;
  }

 private:
  int capacity_;
  int escapeReserve_;
  int occupied_ = 0;
  int count_ = 0;
  BufferedPacket* slots_ = nullptr;      // slot 0 = oldest (queue front)
  std::unique_ptr<BufferedPacket[]> own_;  // unbound standalone fallback
  mutable Candidates cached_;
  mutable EscapeOrderRule cachedRule_ = EscapeOrderRule::kPaperStrict;
  mutable bool cacheValid_ = false;
};

}  // namespace ibadapt
