#pragma once
//
// LMC-based virtual addressing (paper §4.1 / §4.2).
//
// Each CA port is assigned 2^LMC consecutive LIDs. The block is aligned to
// 2^LMC so an interleaved forwarding table can recover the whole option
// range from any DLID inside it by masking the low bits. Address `base`
// (LSB 0) requests deterministic routing; `base + 1` (LSB 1) requests
// adaptive routing; the remaining addresses carry additional routing
// options in the switch tables but are equivalent from the sender's view.
//
#include <stdexcept>

#include "util/types.hpp"

namespace ibadapt {

/// IBA caps LMC at 7 (max 128 addresses per port).
inline constexpr int kMaxLmc = 7;

class LidMapper {
 public:
  explicit LidMapper(int lmc) : lmc_(lmc) {
    if (lmc < 0 || lmc > kMaxLmc) {
      throw std::invalid_argument("LidMapper: LMC out of [0,7]");
    }
  }

  int lmc() const { return lmc_; }
  int lidsPerNode() const { return 1 << lmc_; }

  /// First (aligned) LID of node n's block. Node 0 starts at 2^LMC, so LID 0
  /// stays reserved as in IBA.
  Lid baseLid(NodeId n) const {
    return static_cast<Lid>((n + 1)) << lmc_;
  }

  /// LID encoding routing option slot `option` (0 <= option < 2^LMC).
  Lid lidForOption(NodeId n, int option) const {
    return baseLid(n) + static_cast<Lid>(option);
  }

  /// DLID a sender uses for deterministic (in-order) traffic to node n.
  Lid deterministicLid(NodeId n) const { return baseLid(n); }

  /// DLID a sender uses to enable adaptive routing to node n.
  /// Requires LMC >= 1 (otherwise there is only one address).
  Lid adaptiveLid(NodeId n) const {
    if (lmc_ == 0) {
      throw std::logic_error("LidMapper: adaptive LID needs LMC >= 1");
    }
    return baseLid(n) + 1;
  }

  /// Node that owns `lid` (any address within the block).
  NodeId nodeOfLid(Lid lid) const {
    return static_cast<NodeId>((lid >> lmc_)) - 1;
  }

  /// Aligned block base for any DLID within a node's range.
  Lid alignedBase(Lid lid) const {
    return lid & ~static_cast<Lid>((1u << lmc_) - 1);
  }

  /// The paper's per-packet switch: LSB set => adaptive routing requested.
  static bool adaptiveBit(Lid lid) { return (lid & 1u) != 0; }

  /// One-past-the-last LID used for `numNodes` nodes (LFT size).
  Lid lidLimit(int numNodes) const {
    return static_cast<Lid>((numNodes + 1)) << lmc_;
  }

 private:
  int lmc_;
};

}  // namespace ibadapt
