#pragma once
//
// IBA SLtoVL mapping table: the VL a packet uses on the next link is a
// function of (input port, output port, service level). Per the specs this
// is the only way VLs are assigned inside a switch — they cannot be chosen
// freely at routing time, which is exactly the limitation §4.4 of the paper
// works around with the split-buffer scheme.
//
// Storage note: the dense map is ports^2 x 16 bytes per switch — 17 KiB on
// a 33-port dragonfly router, ~71 MiB over a 4096-switch fabric — yet the
// subnet manager programs exactly the identity mapping (sl % numVls) in
// every sweep. The table therefore starts in *identity mode* with no
// backing storage; the dense map materializes only on the first write that
// actually differs from identity. `set` reports whether the mapping
// changed, so callers can skip change-driven work (memo invalidation) on
// the all-identity fast path.
//
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

inline constexpr int kMaxServiceLevels = 16;

class SlToVlTable {
 public:
  SlToVlTable() = default;

  /// Identity-style default: every (in, out, sl) maps to sl % numVls.
  SlToVlTable(int numPorts, int numVls);

  /// Program one entry. Returns true when the stored mapping changed.
  /// Identity-valued writes on a still-identity table are recognized as
  /// no-ops and never materialize the dense map.
  bool set(PortIndex inPort, PortIndex outPort, int sl, VlIndex vl);
  VlIndex vl(PortIndex inPort, PortIndex outPort, int sl) const {
    const std::size_t s = slot(inPort, outPort, sl);
    if (map_.empty()) return static_cast<VlIndex>(sl % numVls_);
    return static_cast<VlIndex>(map_[s]);
  }

  /// True while no entry deviates from the identity default (no dense map
  /// allocated).
  bool identity() const { return map_.empty(); }
  /// Drop every entry back to the identity default and release the dense
  /// map (warm-fabric reset).
  void resetIdentity() {
    map_.clear();
    map_.shrink_to_fit();
  }

  int numPorts() const { return numPorts_; }
  int numVls() const { return numVls_; }

 private:
  std::size_t slot(PortIndex inPort, PortIndex outPort, int sl) const;

  int numPorts_ = 0;
  int numVls_ = 1;
  std::vector<std::uint8_t> map_;  // empty = identity mode
};

}  // namespace ibadapt
