#pragma once
//
// IBA SLtoVL mapping table: the VL a packet uses on the next link is a
// function of (input port, output port, service level). Per the specs this
// is the only way VLs are assigned inside a switch — they cannot be chosen
// freely at routing time, which is exactly the limitation §4.4 of the paper
// works around with the split-buffer scheme.
//
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

inline constexpr int kMaxServiceLevels = 16;

class SlToVlTable {
 public:
  SlToVlTable() = default;

  /// Identity-style default: every (in, out, sl) maps to sl % numVls.
  SlToVlTable(int numPorts, int numVls);

  void set(PortIndex inPort, PortIndex outPort, int sl, VlIndex vl);
  VlIndex vl(PortIndex inPort, PortIndex outPort, int sl) const;

  int numPorts() const { return numPorts_; }
  int numVls() const { return numVls_; }

 private:
  std::size_t slot(PortIndex inPort, PortIndex outPort, int sl) const;

  int numPorts_ = 0;
  int numVls_ = 1;
  std::vector<std::uint8_t> map_;
};

}  // namespace ibadapt
