#pragma once
//
// Credit arithmetic for the split adaptive/escape queues (paper §4.4).
//
// IBA flow control counts credits per VL; the split into adaptive and escape
// queues is *not* visible on the wire. Given the credits available on a VL
// (C) and the escape reserve (C0, the escape queue's size in credits), the
// sender derives:
//     C_adaptive = max(0, C - C0)
//     C_escape   = min(C0, C)
// The adaptive routing option may only be taken when C_adaptive covers the
// whole packet (virtual cut-through needs the full packet buffered); the
// escape option may be taken whenever total credits cover the packet — the
// escape reserve can then never be starved by adaptive traffic, which is
// what makes the escape sub-network deadlock-free.
//
#include <algorithm>

namespace ibadapt {

/// Credits usable by the *adaptive* routing option.
constexpr int adaptiveCredits(int available, int escapeReserve) noexcept {
  return available > escapeReserve ? available - escapeReserve : 0;
}

/// Credits the escape queue still holds.
constexpr int escapeCredits(int available, int escapeReserve) noexcept {
  return available < escapeReserve ? available : escapeReserve;
}

/// Invariant used by the tests: the two views always partition C exactly.
constexpr bool creditsPartitionExactly(int available, int escapeReserve) noexcept {
  return adaptiveCredits(available, escapeReserve) +
             escapeCredits(available, escapeReserve) ==
         available;
}

}  // namespace ibadapt
