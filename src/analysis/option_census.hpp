#pragma once
//
// Static routing-option census (paper Table 2): for every
// (switch, remote destination) pair, count the distinct routing options a
// forwarding table with MR banks would return — the escape hop plus up to
// MR-1 minimal adaptive hops. Local destinations (the paper's "destination
// port at this switch") always have exactly one option and are excluded,
// matching the table's focus on inter-switch routing freedom.
//
// Unlike the simulated tables, MR here may be any value >= 1 (the paper's
// Table 2 includes MR = 3, which is not realizable as an interleaved table
// but is fine for a census).
//
#include <array>

#include "routing/route_set.hpp"
#include "topology/topology.hpp"

namespace ibadapt {

struct OptionCensus {
  int maxOptions = 0;
  /// pct[k] = percentage of (switch, destination-switch) pairs with exactly
  /// k distinct routing options, k in [1, kMaxCensusOptions].
  static constexpr int kMaxCensusOptions = 8;
  std::array<double, kMaxCensusOptions + 1> pct{};
  double avgOptions = 0.0;
  long pairs = 0;
};

OptionCensus routingOptionCensus(const Topology& topo, const RouteSet& routes,
                                 int maxOptions);

}  // namespace ibadapt
