#include "analysis/option_census.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ibadapt {

OptionCensus routingOptionCensus(const Topology& topo, const RouteSet& routes,
                                 int maxOptions) {
  if (maxOptions < 1 || maxOptions > OptionCensus::kMaxCensusOptions) {
    throw std::invalid_argument("routingOptionCensus: maxOptions");
  }
  OptionCensus out;
  out.maxOptions = maxOptions;
  std::array<long, OptionCensus::kMaxCensusOptions + 1> counts{};
  long total = 0;
  double optionSum = 0.0;

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (SwitchId destSw = 0; destSw < topo.numSwitches(); ++destSw) {
      if (destSw == sw) continue;
      // Only CA-bearing switches are destinations: hierarchical fabrics
      // (fat-tree upper tiers) have pure-transit switches whose nodeAt
      // would read past the node table.
      if (topo.nodeCount(destSw) == 0) continue;
      // All nodes on destSw share identical options; sample one.
      const NodeId dest = topo.nodeAt(destSw, 0);
      const RouteOptionsSpec& spec = routes.options(sw, dest);
      std::vector<PortIndex> distinct{spec.escapePort};
      for (PortIndex p : routes.cappedAdaptivePorts(sw, dest, maxOptions)) {
        if (std::find(distinct.begin(), distinct.end(), p) == distinct.end()) {
          distinct.push_back(p);
        }
      }
      const int k = static_cast<int>(distinct.size());
      ++counts[static_cast<std::size_t>(
          std::min(k, OptionCensus::kMaxCensusOptions))];
      optionSum += k;
      ++total;
    }
  }

  out.pairs = total;
  if (total > 0) {
    for (int k = 1; k <= OptionCensus::kMaxCensusOptions; ++k) {
      out.pct[static_cast<std::size_t>(k)] =
          100.0 * static_cast<double>(counts[static_cast<std::size_t>(k)]) /
          static_cast<double>(total);
    }
    out.avgOptions = optionSum / static_cast<double>(total);
  }
  return out;
}

}  // namespace ibadapt
