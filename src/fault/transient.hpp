#pragma once
//
// Transient link-fault classes: per-link bit errors that corrupt packets in
// flight, and flow-control corruption that loses credit-update tokens.
//
// Corruption is resolved the way a real IBA receiver resolves it: the
// packet's wire frame (LRH + BTH + payload + ICRC + VCRC, src/iba/headers)
// is materialized, a burst of 1..maxFlipsPerCorruption random bit flips is
// applied, and the frame is re-validated. If either CRC fails the receiver
// drops the frame silently — only end-to-end retransmission can recover
// it. If both CRCs still pass (possible only for >= 4-bit bursts with
// CRC-16/XMODEM at these frame lengths) the corruption is *silent* and the
// packet is delivered as-is; the model counts these separately because they
// are exactly the failures link-level protection cannot see.
//
// Credit-update loss uses whole-token semantics: a lost token leaks its
// credits at the receiving output port until the IBA-style periodic credit
// resync (flow-control packets carry absolute totals) detects the
// discrepancy after `resyncDetectPeriods` sync periods and repairs it.
//
// Randomness and counters are kept per receive *lane* (one per switch and
// one per CA — see ILinkFaultModel::bindLanes): each lane is consulted only
// by the event handlers of its owning entity, in handler order. That keeps
// fault runs bit-identical under SimKernel::kCalendar, kLegacyHeap, and
// kParallel at any thread count, with no synchronization in the model.
//
#include <cstdint>
#include <vector>

#include "fabric/interfaces.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ibadapt {

struct TransientFaultSpec {
  /// Per-bit error probability on every link hop (0 = no corruption).
  double berPerBit = 0.0;
  /// Probability that a credit-update token is lost (0 = lossless).
  double creditLossRate = 0.0;
  std::uint64_t seed = 0x7a11;
  /// Link-level credit-resync period; every `resyncDetectPeriods`-th old
  /// leak is repaired on the tick after its detection window passes.
  SimTime resyncPeriodNs = 100'000;
  int resyncDetectPeriods = 2;
  /// Corruption burst size: 1..maxFlipsPerCorruption uniformly random bit
  /// flips per corrupted frame.
  int maxFlipsPerCorruption = 4;

  bool enabled() const { return berPerBit > 0.0 || creditLossRate > 0.0; }
  void validate() const;
};

struct TransientFaultStats {
  std::uint64_t packetsCorrupted = 0;   // corruption events injected
  std::uint64_t crcDrops = 0;           // caught by VCRC/ICRC -> dropped
  std::uint64_t silentCorruptions = 0;  // both CRCs passed despite flips
  std::uint64_t creditUpdatesLost = 0;  // flow-control tokens lost
  std::uint64_t creditsLost = 0;        // credits those tokens carried
};

class TransientLinkFaults final : public ILinkFaultModel {
 public:
  explicit TransientLinkFaults(const TransientFaultSpec& spec);

  void bindLanes(int numLanes) override;
  RxVerdict onPacketRx(const Packet& pkt, VlIndex vl, SimTime now,
                       int lane) override;
  int onCreditUpdateRx(int credits, SimTime now, int lane) override;
  SimTime resyncPeriodNs() const override {
    return spec_.creditLossRate > 0.0 ? spec_.resyncPeriodNs : 0;
  }
  SimTime resyncDetectNs() const override {
    return spec_.resyncPeriodNs *
           static_cast<SimTime>(spec_.resyncDetectPeriods);
  }

  const TransientFaultSpec& spec() const { return spec_; }
  /// Merged over all lanes (by value: the per-lane cells stay private).
  TransientFaultStats stats() const;

 private:
  struct Lane {
    Rng rng{0};
    TransientFaultStats stats;
  };
  Lane& lane(int idx);

  TransientFaultSpec spec_;
  std::vector<Lane> lanes_;
  double logOneMinusBer_ = 0.0;  // precomputed for the per-frame probability
};

}  // namespace ibadapt
