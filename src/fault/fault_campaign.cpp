#include "fault/fault_campaign.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "fault/fault_audit.hpp"
#include "util/rng.hpp"

namespace ibadapt {

void FaultCampaignSpec::validate() const {
  if (mtbfNs < 0.0 || mttrNs < 0.0) {
    throw std::invalid_argument("FaultCampaignSpec: negative MTBF/MTTR");
  }
  if (maxStochasticFaults < 0) {
    throw std::invalid_argument("FaultCampaignSpec: maxStochasticFaults");
  }
  for (const ScriptedFault& f : scripted) {
    if (f.sw == kInvalidId || f.port == kInvalidPort) {
      throw std::invalid_argument("FaultCampaignSpec: scripted fault target");
    }
    if (f.recoverAtNs != kTimeNever && f.recoverAtNs <= f.failAtNs) {
      throw std::invalid_argument(
          "FaultCampaignSpec: recovery not after failure");
    }
  }
  transient.validate();
}

FaultCampaign::FaultCampaign(Fabric& fabric, SubnetManager& sm,
                             const FaultCampaignSpec& spec)
    : fabric_(&fabric), sm_(&sm), spec_(spec) {
  spec_.validate();
  if (spec_.transient.enabled()) {
    transient_ = std::make_unique<TransientLinkFaults>(spec_.transient);
    fabric_->attachLinkFaults(transient_.get());
  }
  buildTimeline();
}

namespace {

/// All live inter-switch links of `topo` as (sw, port) with sw < peer.
std::vector<std::pair<SwitchId, PortIndex>> liveLinks(const Topology& topo) {
  std::vector<std::pair<SwitchId, PortIndex>> links;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (const auto& [nb, port] : topo.switchNeighbors(sw)) {
      if (sw < nb) links.emplace_back(sw, port);
    }
  }
  return links;
}

}  // namespace

void FaultCampaign::buildTimeline() {
  // Evolve a private topology copy chronologically so stochastic link
  // choices and connectivity checks see the fabric exactly as it will be
  // at injection time (scripted faults included).
  Topology sim = fabric_->topology();
  Rng rng(spec_.seed);

  struct Pending {
    SimTime at;
    int order;  // tiebreak: recoveries before fails at the same instant
    TimelineEntry entry;
  };
  auto later = [](const Pending& x, const Pending& y) {
    if (x.at != y.at) return x.at > y.at;
    return x.order > y.order;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)> pending(
      later);
  int order = 0;
  for (const ScriptedFault& f : spec_.scripted) {
    pending.push({f.failAtNs, order++,
                  TimelineEntry{f.failAtNs, true, f.sw, f.port, kInvalidId}});
    if (f.recoverAtNs != kTimeNever) {
      pending.push(
          {f.recoverAtNs, order++,
           TimelineEntry{f.recoverAtNs, false, f.sw, f.port, kInvalidId}});
    }
  }

  SimTime nextStochastic = kTimeNever;
  int stochasticLeft = 0;
  if (spec_.mtbfNs > 0.0 && spec_.maxStochasticFaults > 0) {
    stochasticLeft = spec_.maxStochasticFaults;
    nextStochastic = static_cast<SimTime>(rng.exponential(spec_.mtbfNs));
  }

  // Failed links indexed by either endpoint so recovery entries resolve.
  struct Failed {
    SwitchId sw;
    PortIndex port;
    SwitchId peerSw;
    PortIndex peerPort;
  };
  std::vector<Failed> failed;
  auto findFailed = [&failed](SwitchId sw, PortIndex port) {
    return std::find_if(failed.begin(), failed.end(), [&](const Failed& f) {
      return (f.sw == sw && f.port == port) ||
             (f.peerSw == sw && f.peerPort == port);
    });
  };

  while (!pending.empty() || nextStochastic != kTimeNever) {
    const SimTime scriptedAt = pending.empty() ? kTimeNever : pending.top().at;
    if (nextStochastic < scriptedAt) {
      // Draw a stochastic fault against the current link population.
      const SimTime at = nextStochastic;
      nextStochastic =
          --stochasticLeft > 0
              ? at + static_cast<SimTime>(rng.exponential(spec_.mtbfNs))
              : kTimeNever;
      auto links = liveLinks(sim);
      // Reject choices that would split the switch graph; a few redraws
      // cover fabrics where only some links are critical.
      const int kTries = 8;
      bool injected = false;
      for (int t = 0; t < kTries && !links.empty() && !injected; ++t) {
        const std::size_t pick = rng.uniformIndex(links.size());
        const auto [sw, port] = links[static_cast<std::size_t>(pick)];
        const Peer peer = sim.peer(sw, port);
        sim.removeLink(sw, port);
        if (spec_.keepConnected && !sim.connectedSwitchGraph()) {
          sim.restoreLink(sw, port, peer.id, peer.port);
          links.erase(links.begin() + static_cast<std::ptrdiff_t>(pick));
          continue;
        }
        failed.push_back(Failed{sw, port, peer.id, peer.port});
        timeline_.push_back(TimelineEntry{at, true, sw, port, peer.id});
        if (spec_.mttrNs > 0.0) {
          const SimTime recoverAt =
              at + 1 + static_cast<SimTime>(rng.exponential(spec_.mttrNs));
          pending.push({recoverAt, order++,
                        TimelineEntry{recoverAt, false, sw, port, peer.id}});
        }
        injected = true;
      }
      continue;
    }

    const Pending p = pending.top();
    pending.pop();
    if (p.entry.fail) {
      const Peer peer = sim.peer(p.entry.sw, p.entry.port);
      if (peer.kind != PeerKind::kSwitch) {
        throw std::invalid_argument(
            "FaultCampaign: scripted fault targets a port with no live "
            "inter-switch link at its failure time");
      }
      sim.removeLink(p.entry.sw, p.entry.port);
      failed.push_back(Failed{p.entry.sw, p.entry.port, peer.id, peer.port});
      TimelineEntry e = p.entry;
      e.peerSw = peer.id;
      timeline_.push_back(e);
    } else {
      const auto it = findFailed(p.entry.sw, p.entry.port);
      if (it == failed.end()) {
        throw std::invalid_argument(
            "FaultCampaign: scripted recovery for a link that is not down");
      }
      sim.restoreLink(it->sw, it->port, it->peerSw, it->peerPort);
      TimelineEntry e = p.entry;
      e.peerSw = it->sw == p.entry.sw ? it->peerSw : it->sw;
      timeline_.push_back(e);
      failed.erase(it);
    }
  }

  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const TimelineEntry& x, const TimelineEntry& y) {
                     return x.at < y.at;
                   });
}

void FaultCampaign::run(const RunLimits& limits) {
  if (ran_) throw std::logic_error("FaultCampaign::run called twice");
  ran_ = true;

  if (spec_.reconfig.mode != ReconfigMode::kInstantSweep) {
    reconfig_ = std::make_unique<ReconfigManager>(*fabric_, *sm_,
                                                  spec_.reconfig, spec_.subnet);
  }

  // Action schedule: the precomputed timeline plus sweeps added on the fly.
  // At one instant sweeps apply before recoveries before fails — a sweep
  // completing the same nanosecond a fault hits cannot have seen it.
  enum : int { kSweep = 0, kRecover = 1, kFail = 2 };
  struct Action {
    SimTime at;
    int kind;
    int seq;
    std::size_t idx;  // timeline index for kFail/kRecover
  };
  auto later = [](const Action& x, const Action& y) {
    if (x.at != y.at) return x.at > y.at;
    if (x.kind != y.kind) return x.kind > y.kind;
    return x.seq > y.seq;
  };
  std::priority_queue<Action, std::vector<Action>, decltype(later)> actions(
      later);
  int seq = 0;
  for (std::size_t i = 0; i < timeline_.size(); ++i) {
    actions.push(Action{timeline_[i].at,
                        timeline_[i].fail ? kFail : kRecover, seq++, i});
  }

  const std::uint64_t droppedAtStart = fabric_->counters().dropped;
  std::vector<SimTime> openFaults;  // fail times not yet covered by a sweep
  DegradedWindowTracker degraded;

  auto runAudit = [this]() {
    ++stats_.auditsRun;
    const AuditReport audit = auditFabric(*fabric_);
    if (audit.ok()) {
      ++stats_.auditsPassed;
    } else if (stats_.firstAuditFailure.empty()) {
      stats_.firstAuditFailure = audit.detail;
    }
  };

  // Injection-gated time is degraded service too — the stop-and-resweep
  // baseline halts the whole fabric even for a recovery sweep with no
  // fault outstanding. Feeding pause transitions into the same tracker
  // unions them with the fault windows instead of double-counting overlap.
  bool wasPaused = fabric_->injectionPaused();
  auto trackPause = [&](SimTime at) {
    const bool paused = fabric_->injectionPaused();
    if (paused == wasPaused) return;
    if (paused) {
      degraded.open(at, fabric_->counters().dropped);
    } else {
      degraded.close(at, fabric_->counters().dropped);
    }
    wasPaused = paused;
  };

  // A completed sweep covers exactly the faults visible when its routing
  // plan was computed (coveredThrough); later faults stay open for the
  // follow-up cycle. The audit checks the active escape plane against the
  // *current* topology, so it is only meaningful once every open fault is
  // covered — auditing a half-converged fabric would report the expected
  // staleness as a violation.
  auto applyCompletions = [&]() {
    for (const auto& c : reconfig_->drainCompletions()) {
      ++stats_.smSweeps;
      for (auto it = openFaults.begin(); it != openFaults.end();) {
        if (*it <= c.coveredThrough) {
          stats_.timeToRecovery.add(c.at - *it);
          degraded.close(c.at, fabric_->counters().dropped);
          it = openFaults.erase(it);
        } else {
          ++it;
        }
      }
      if (spec_.auditAfterSweep && openFaults.empty()) runAudit();
    }
  };

  SimTime endedAt = limits.endTime;
  while (true) {
    SimTime next = actions.empty() ? kTimeNever : actions.top().at;
    if (reconfig_) next = std::min(next, reconfig_->nextActionAt());
    RunLimits slice = limits;
    slice.endTime = std::min(next, limits.endTime);
    fabric_->run(slice);
    if (fabric_->stopRequested() || fabric_->deadlockSuspected() ||
        fabric_->livePacketLimitHit()) {
      endedAt = fabric_->now();  // cut short of the horizon
      break;
    }
    if (next >= limits.endTime) break;
    // Protocol actions due now run before this instant's faults: an
    // install/activation completing at `next` cannot have seen a fault
    // that lands at `next`.
    if (reconfig_) {
      reconfig_->step(next);
      applyCompletions();
      trackPause(next);
    }
    while (!actions.empty() && actions.top().at == next) {
      const Action a = actions.top();
      actions.pop();
      switch (a.kind) {
        case kFail: {
          const TimelineEntry& e = timeline_[a.idx];
          fabric_->failLink(e.sw, e.port);
          ++stats_.faultsInjected;
          degraded.open(next, fabric_->counters().dropped);
          openFaults.push_back(next);
          if (spec_.sweepDelayNs >= 0) {
            actions.push(
                Action{next + spec_.sweepDelayNs, kSweep, seq++, 0});
          }
          break;
        }
        case kRecover: {
          const TimelineEntry& e = timeline_[a.idx];
          fabric_->recoverLink(e.sw, e.port);
          ++stats_.linksRecovered;
          if (spec_.sweepDelayNs >= 0) {
            actions.push(
                Action{next + spec_.sweepDelayNs, kSweep, seq++, 0});
          }
          break;
        }
        case kSweep: {
          if (reconfig_) {
            reconfig_->requestSweep(next);
            break;
          }
          sm_->configure(spec_.subnet);
          ++stats_.smSweeps;
          for (const SimTime failAt : openFaults) {
            stats_.timeToRecovery.add(next - failAt);
            degraded.close(next, fabric_->counters().dropped);
          }
          openFaults.clear();
          if (spec_.auditAfterSweep) runAudit();
          break;
        }
      }
    }
    // A request made this instant may resolve immediately under
    // zero-latency specs; collapse those transitions now.
    if (reconfig_) {
      reconfig_->step(next);
      applyCompletions();
      trackPause(next);
    }
  }

  // Close any uncovered degraded window at wherever the run actually ended.
  degraded.closeAll(endedAt, fabric_->counters().dropped);
  stats_.degradedTimeNs = degraded.degradedTimeNs();
  stats_.droppedWhileDegraded = degraded.droppedWhileDegraded();
  stats_.droppedWhileHealthy = fabric_->counters().dropped - droppedAtStart -
                               stats_.droppedWhileDegraded;

  if (reconfig_) {
    const ReconfigStats& r = reconfig_->stats();
    stats_.epochsInstalled = r.epochsInstalled;
    stats_.reconfigSmpsSent = r.smpsSent;
    stats_.installPhaseNs = r.installPhaseNsTotal;
    stats_.reconfigLatencyNs = r.reconfigLatencyNsTotal;
    stats_.injectionPausedNs = reconfig_->injectionPausedNs(endedAt);
    stats_.computeRestarts = r.computeRestarts;
  }

  if (transient_) {
    const TransientFaultStats& t = transient_->stats();
    stats_.packetsCorrupted = t.packetsCorrupted;
    stats_.crcDrops = t.crcDrops;
    stats_.silentCorruptions = t.silentCorruptions;
    stats_.creditUpdatesLost = t.creditUpdatesLost;
  }
  stats_.creditsLeaked = fabric_->creditsLeaked();
  stats_.creditsResynced = fabric_->creditsResynced();
}

}  // namespace ibadapt
