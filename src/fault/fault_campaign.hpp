#pragma once
//
// Fault-injection campaigns: scripted and stochastic link failures *and
// recoveries*, driven through the fabric as timed events, with automatic
// latency-modeled subnet-manager re-sweeps and post-sweep invariant audits.
//
// The campaign closes the loop the paper's §4.1 APM discussion leaves to
// the reader: a link dies, endpoints are exposed to stale forwarding
// tables for a configurable sweep delay (during which APM path sets and
// host retransmission carry the traffic), then the SM reprograms every
// switch around the fault; later the link may come back and a further
// sweep reclaims it. Everything — failure times, link choices, repair
// times — is deterministic in the campaign seed, so fault experiments are
// exactly reproducible and diffable.
//
// Usage:
//   Fabric fabric(topo, fp);
//   SubnetManager sm(fabric);
//   sm.configure(sp);                      // initial healthy tables
//   FaultCampaignSpec spec; ...
//   FaultCampaign campaign(fabric, sm, spec);
//   fabric.attachTraffic(...); fabric.start();
//   campaign.run(limits);                  // instead of fabric.run(limits)
//   campaign.stats();                      // resilience metrics
//
#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/fabric.hpp"
#include "fault/transient.hpp"
#include "stats/resilience.hpp"
#include "subnet/reconfig.hpp"
#include "subnet/subnet_manager.hpp"

namespace ibadapt {

/// One scripted link fault; the link is named by either endpoint.
struct ScriptedFault {
  SimTime failAtNs = 0;
  /// kTimeNever = the link never comes back.
  SimTime recoverAtNs = kTimeNever;
  SwitchId sw = kInvalidId;
  PortIndex port = kInvalidPort;
};

struct FaultCampaignSpec {
  std::vector<ScriptedFault> scripted;

  /// Stochastic fault layer, off when mtbfNs == 0: fabric-wide failure
  /// arrivals with exponential inter-arrival times of mean `mtbfNs`; each
  /// fault picks a live inter-switch link uniformly at random and repairs
  /// after an exponential `mttrNs` (mttrNs == 0 -> permanent faults).
  double mtbfNs = 0.0;
  double mttrNs = 0.0;
  std::uint64_t seed = 1;
  int maxStochasticFaults = 64;
  /// Skip stochastic faults that would disconnect the switch graph (the
  /// subnet manager cannot route a partitioned fabric).
  bool keepConnected = true;

  /// SM re-sweep latency after each fault/recovery — the window endpoints
  /// are exposed to stale LFTs. < 0 disables automatic re-sweeps entirely
  /// (then only APM migration / retransmission mask faults).
  SimTime sweepDelayNs = 50'000;
  /// Routing configuration the SM re-applies on every sweep.
  SubnetParams subnet;
  /// Audit escape connectivity + credit sanity after every sweep.
  bool auditAfterSweep = true;

  /// How each sweep is executed. kInstantSweep keeps the seed's in-place
  /// zero-cost rewrite; kDrainAndSweep and kLiveEpochSwap hand the sweep
  /// to a ReconfigManager that models the reconfiguration protocol (see
  /// subnet/reconfig.hpp). In managed modes, a sweep covers only the
  /// faults visible when its routing plan was computed; later faults keep
  /// their degraded window open until a follow-up sweep lands.
  ReconfigSpec reconfig;

  /// Transient fault layer (bit errors + credit-update loss); off by
  /// default. The campaign owns the model and attaches it to the fabric
  /// for the duration of the run.
  TransientFaultSpec transient;

  void validate() const;
};

class FaultCampaign {
 public:
  /// Builds the deterministic fault/recovery timeline up front (topology
  /// evolution is simulated on a copy; the fabric is not touched yet).
  FaultCampaign(Fabric& fabric, SubnetManager& sm,
                const FaultCampaignSpec& spec);

  struct TimelineEntry {
    SimTime at = 0;
    bool fail = true;  // false = recovery
    SwitchId sw = kInvalidId;
    PortIndex port = kInvalidPort;
    SwitchId peerSw = kInvalidId;  // informational (fail entries)
  };
  /// The full injection plan, time-ordered. Same spec -> same timeline.
  const std::vector<TimelineEntry>& timeline() const { return timeline_; }

  /// Drives the fabric to limits.endTime exactly like Fabric::run, but
  /// interleaves the fault timeline, delayed SM re-sweeps, and post-sweep
  /// audits. Returns when the horizon, a stop request (e.g. a stats
  /// budget), the watchdog, or the live-packet limit ends the run.
  void run(const RunLimits& limits);

  const ResilienceStats& stats() const { return stats_; }

  /// Non-null while running in a managed reconfiguration mode.
  const ReconfigManager* reconfigManager() const { return reconfig_.get(); }

 private:
  void buildTimeline();

  Fabric* fabric_;
  SubnetManager* sm_;
  FaultCampaignSpec spec_;
  std::vector<TimelineEntry> timeline_;
  std::unique_ptr<TransientLinkFaults> transient_;
  std::unique_ptr<ReconfigManager> reconfig_;
  ResilienceStats stats_;
  bool ran_ = false;
};

}  // namespace ibadapt
