#include "fault/transient.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "iba/headers.hpp"

namespace ibadapt {

void TransientFaultSpec::validate() const {
  if (berPerBit < 0.0 || berPerBit >= 1.0) {
    throw std::invalid_argument("TransientFaultSpec: berPerBit in [0,1)");
  }
  if (creditLossRate < 0.0 || creditLossRate > 1.0) {
    throw std::invalid_argument(
        "TransientFaultSpec: creditLossRate in [0,1]");
  }
  if (creditLossRate > 0.0 && resyncPeriodNs <= 0) {
    throw std::invalid_argument(
        "TransientFaultSpec: credit loss needs resyncPeriodNs > 0 (leaks "
        "would never heal)");
  }
  if (resyncDetectPeriods < 1) {
    throw std::invalid_argument(
        "TransientFaultSpec: resyncDetectPeriods >= 1");
  }
  if (maxFlipsPerCorruption < 1 || maxFlipsPerCorruption > 64) {
    throw std::invalid_argument(
        "TransientFaultSpec: maxFlipsPerCorruption in [1,64]");
  }
}

TransientLinkFaults::TransientLinkFaults(const TransientFaultSpec& spec)
    : spec_(spec) {
  spec_.validate();
  if (spec_.berPerBit > 0.0) {
    logOneMinusBer_ = std::log1p(-spec_.berPerBit);
  }
}

void TransientLinkFaults::bindLanes(int numLanes) {
  if (numLanes < 1) {
    throw std::invalid_argument("TransientLinkFaults: numLanes >= 1");
  }
  lanes_.clear();
  lanes_.resize(static_cast<std::size_t>(numLanes));
  // One splitmix64-derived stream per lane: the seeds depend only on
  // spec_.seed and the lane index, never on consult order, so every kernel
  // and thread count sees identical streams.
  std::uint64_t chain = spec_.seed;
  for (Lane& l : lanes_) {
    l.rng = Rng(splitmix64(chain));
  }
}

TransientLinkFaults::Lane& TransientLinkFaults::lane(int idx) {
  if (lanes_.empty()) {
    // Direct (non-Fabric) use without bindLanes: one lane covers everything.
    bindLanes(idx + 1);
  }
  return lanes_[static_cast<std::size_t>(idx) % lanes_.size()];
}

TransientFaultStats TransientLinkFaults::stats() const {
  TransientFaultStats total;
  for (const Lane& l : lanes_) {
    total.packetsCorrupted += l.stats.packetsCorrupted;
    total.crcDrops += l.stats.crcDrops;
    total.silentCorruptions += l.stats.silentCorruptions;
    total.creditUpdatesLost += l.stats.creditUpdatesLost;
    total.creditsLost += l.stats.creditsLost;
  }
  return total;
}

ILinkFaultModel::RxVerdict TransientLinkFaults::onPacketRx(const Packet& pkt,
                                                           VlIndex vl,
                                                           SimTime /*now*/,
                                                           int laneIdx) {
  if (spec_.berPerBit <= 0.0) return RxVerdict::kClean;
  Lane& ln = lane(laneIdx);
  // Wire frame size: LRH + BTH + word-aligned payload + ICRC + VCRC.
  const int payloadBytes = ((pkt.sizeBytes + 3) / 4) * 4;
  const int frameBytes =
      iba::kLrhBytes + iba::kBthBytes + payloadBytes + 4 + 2;
  // P(at least one flipped bit) = 1 - (1 - ber)^(8 * frameBytes).
  const double pCorrupt =
      -std::expm1(static_cast<double>(frameBytes) * 8.0 * logOneMinusBer_);
  if (!ln.rng.bernoulli(pCorrupt)) return RxVerdict::kClean;
  ++ln.stats.packetsCorrupted;

  // Materialize the frame the symbolic packet corresponds to. The payload
  // is a deterministic function of the packet identity so retransmitted
  // copies corrupt independently but encode identically.
  iba::Lrh lrh;
  lrh.vl = static_cast<std::uint8_t>(vl & 0xF);
  lrh.sl = static_cast<std::uint8_t>(pkt.sl & 0xF);
  lrh.dlid = static_cast<std::uint16_t>(pkt.dlid);
  lrh.slid = static_cast<std::uint16_t>((pkt.src + 1) & 0xFFFF);
  iba::Bth bth;
  bth.destQp = static_cast<std::uint32_t>(pkt.dst) & 0xFFFFFF;
  bth.psn = pkt.e2eSeq & 0xFFFFFF;
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payloadBytes));
  std::uint64_t state = (static_cast<std::uint64_t>(pkt.src) << 40) ^
                        (static_cast<std::uint64_t>(pkt.dst) << 20) ^
                        static_cast<std::uint64_t>(pkt.genTime) ^
                        (static_cast<std::uint64_t>(pkt.e2eSeq) << 32);
  for (std::size_t i = 0; i < payload.size(); i += 8) {
    const std::uint64_t word = splitmix64(state);
    const std::size_t n = std::min<std::size_t>(8, payload.size() - i);
    std::memcpy(payload.data() + i, &word, n);
  }
  std::vector<std::uint8_t> frame = iba::buildFrame(lrh, bth, payload);

  // Inject the burst and let the receiver's real CRC checks judge it.
  const int flips =
      1 + static_cast<int>(ln.rng.uniformIndex(
              static_cast<std::uint64_t>(spec_.maxFlipsPerCorruption)));
  for (int f = 0; f < flips; ++f) {
    const std::uint64_t bit = ln.rng.uniformIndex(frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  bool passes = false;
  try {
    const iba::ParsedFrame parsed = iba::parseFrame(frame);
    passes = parsed.icrcOk && parsed.vcrcOk;
  } catch (const std::exception&) {
    passes = false;  // header unparseable (reserved bits flipped): drop
  }
  if (!passes) {
    ++ln.stats.crcDrops;
    return RxVerdict::kCrcDrop;
  }
  ++ln.stats.silentCorruptions;
  return RxVerdict::kSilentCorrupt;
}

int TransientLinkFaults::onCreditUpdateRx(int credits, SimTime /*now*/,
                                          int laneIdx) {
  if (spec_.creditLossRate <= 0.0) return 0;
  Lane& ln = lane(laneIdx);
  if (!ln.rng.bernoulli(spec_.creditLossRate)) return 0;
  ++ln.stats.creditUpdatesLost;
  ln.stats.creditsLost += static_cast<std::uint64_t>(credits);
  return credits;  // whole-token loss
}

}  // namespace ibadapt
