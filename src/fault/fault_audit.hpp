#pragma once
//
// Degraded-mode invariant audits. After any fault, recovery, or SM sweep
// the fabric must still satisfy the properties the paper's deadlock
// argument rests on:
//
//   * escape connectivity — from every switch, following the deterministic
//     base-LID forwarding entry hop by hop reaches every live destination
//     over live links (the up*/down* escape plane is whole);
//   * credit sanity — every output port's per-VL credit count is within
//     [0, capacity]; on a quiescent (fully drained) fabric, every count is
//     back at capacity and every input buffer is empty ("zero stuck
//     credits": a fault that leaked credits would slowly strangle a VL).
//
// The audit only uses the Fabric's public management/introspection API, so
// it checks exactly what an external controller could check.
//
#include <string>

#include "fabric/fabric.hpp"

namespace ibadapt {

struct AuditReport {
  bool escapeReachable = true;
  bool creditsInRange = true;
  /// Only meaningful when the audit ran with expectQuiescent = true.
  bool quiescent = true;
  int unreachablePairs = 0;
  /// First violation, human readable; empty when the audit passed.
  std::string detail;

  bool ok() const { return escapeReachable && creditsInRange && quiescent; }
};

/// Audits the fabric's escape plane and credit state. With
/// `expectQuiescent` the fabric must also be fully drained: all credits
/// returned and all input buffers empty (run the fabric with generation
/// stopped first).
AuditReport auditFabric(const Fabric& fabric, bool expectQuiescent = false);

}  // namespace ibadapt
