#include "fault/fault_audit.hpp"

#include <sstream>

namespace ibadapt {

namespace {

void firstDetail(AuditReport& report, const std::string& msg) {
  if (report.detail.empty()) report.detail = msg;
}

void auditEscapePlane(const Fabric& fabric, AuditReport& report) {
  const Topology& topo = fabric.topology();
  const LidMapper& lids = fabric.lids();
  for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
    const SwitchId destSw = topo.switchOfNode(dst);
    const Lid dlid = lids.deterministicLid(dst);
    for (SwitchId start = 0; start < topo.numSwitches(); ++start) {
      SwitchId at = start;
      int hops = 0;
      bool reached = true;
      while (at != destSw) {
        if (++hops > topo.numSwitches()) {
          reached = false;  // forwarding loop
          break;
        }
        const PortIndex port = fabric.lftEntry(at, dlid);
        if (port == kInvalidPort) {
          reached = false;  // unprogrammed entry
          break;
        }
        const Peer& peer = fabric.managementPeer(at, port);
        if (peer.kind != PeerKind::kSwitch) {
          reached = false;  // escape hop crosses a failed link
          break;
        }
        at = peer.id;
      }
      if (!reached) {
        report.escapeReachable = false;
        ++report.unreachablePairs;
        if (report.detail.empty()) {
          std::ostringstream os;
          os << "escape plane: sw" << start << " cannot reach node " << dst
             << " (dead hop, loop, or unprogrammed LFT entry)";
          report.detail = os.str();
        }
      }
    }
  }
}

void auditCredits(const Fabric& fabric, AuditReport& report,
                  bool expectQuiescent) {
  const Topology& topo = fabric.topology();
  const int numVls = fabric.params().numVls;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (PortIndex port = 0; port < topo.portsPerSwitch(); ++port) {
      for (VlIndex vl = 0; vl < numVls; ++vl) {
        const int max = fabric.outputCreditsMax(sw, port, vl);
        if (max == 0) continue;  // port was never wired
        const int credits = fabric.outputCredits(sw, port, vl);
        if (credits < 0 || credits > max) {
          report.creditsInRange = false;
          std::ostringstream os;
          os << "credits: sw" << sw << " port " << port << " vl " << vl
             << " holds " << credits << " of " << max;
          firstDetail(report, os.str());
        } else if (expectQuiescent && credits != max) {
          report.quiescent = false;
          std::ostringstream os;
          os << "stuck credits: sw" << sw << " port " << port << " vl " << vl
             << " drained to " << credits << " of " << max;
          firstDetail(report, os.str());
        }
        if (expectQuiescent &&
            fabric.inputBufferOccupancy(sw, port, vl) != 0) {
          report.quiescent = false;
          std::ostringstream os;
          os << "stuck packet: sw" << sw << " input port " << port << " vl "
             << vl << " still occupied";
          firstDetail(report, os.str());
        }
      }
    }
  }
}

}  // namespace

AuditReport auditFabric(const Fabric& fabric, bool expectQuiescent) {
  AuditReport report;
  auditEscapePlane(fabric, report);
  auditCredits(fabric, report, expectQuiescent);
  return report;
}

}  // namespace ibadapt
