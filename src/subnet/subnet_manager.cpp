#include "subnet/subnet_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "routing/minimal.hpp"
#include "subnet/smp.hpp"

namespace ibadapt {

namespace {
constexpr std::uint8_t kUnset = 0xFF;
}

DiscoveredSubnet SubnetManager::discover() const {
  const Topology& topo = fabric_->topology();
  DiscoveredSubnet out;
  out.numSwitches = topo.numSwitches();
  out.nodeAttach.assign(static_cast<std::size_t>(topo.numNodes()),
                        {kInvalidId, kInvalidPort});
  out.consistent = true;

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      const Peer& peer = fabric_->managementPeer(sw, p);
      switch (peer.kind) {
        case PeerKind::kUnused:
          break;
        case PeerKind::kNode:
          out.nodeAttach[static_cast<std::size_t>(peer.id)] = {sw, p};
          ++out.numNodes;
          break;
        case PeerKind::kSwitch: {
          // Record each link once and verify the reverse view matches.
          const Peer& back = fabric_->managementPeer(peer.id, peer.port);
          if (back.kind != PeerKind::kSwitch || back.id != sw ||
              back.port != p) {
            out.consistent = false;
          }
          if (sw < peer.id) {
            out.links.emplace_back(sw, p, peer.id, peer.port);
          }
          break;
        }
      }
    }
  }
  for (const auto& [sw, p] : out.nodeAttach) {
    (void)p;
    if (sw == kInvalidId) out.consistent = false;
  }
  return out;
}

DiscoveredSubnet SubnetManager::discoverViaSmp() const {
  const Topology& topo = fabric_->topology();
  DiscoveredSubnet out;
  out.numSwitches = topo.numSwitches();
  out.nodeAttach.assign(static_cast<std::size_t>(topo.numNodes()),
                        {kInvalidId, kInvalidPort});
  out.consistent = true;

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    Smp nodeReq;
    nodeReq.method = SmpMethod::kGet;
    nodeReq.attr = SmpAttr::kNodeInfo;
    const Smp nodeResp = processSmp(*fabric_, sw, nodeReq);
    if (nodeResp.status != SmpStatus::kOk) {
      out.consistent = false;
      continue;
    }
    const NodeInfoAttr info = decodeNodeInfo(nodeResp.payload);
    for (PortIndex p = 0; p < info.numPorts; ++p) {
      Smp portReq;
      portReq.method = SmpMethod::kGet;
      portReq.attr = SmpAttr::kPortInfo;
      portReq.attrMod = static_cast<std::uint32_t>(p);
      const Smp portResp = processSmp(*fabric_, sw, portReq);
      if (portResp.status != SmpStatus::kOk) {
        out.consistent = false;
        continue;
      }
      const PortInfoAttr pi = decodePortInfo(portResp.payload);
      switch (static_cast<PeerKind>(pi.peerKind)) {
        case PeerKind::kUnused:
          break;
        case PeerKind::kNode:
          out.nodeAttach[static_cast<std::size_t>(pi.peerId)] = {sw, p};
          ++out.numNodes;
          break;
        case PeerKind::kSwitch:
          if (sw < pi.peerId) {
            out.links.emplace_back(sw, p, pi.peerId,
                                   static_cast<PortIndex>(pi.peerPort));
          }
          break;
      }
    }
  }
  for (const auto& [sw, p] : out.nodeAttach) {
    (void)p;
    if (sw == kInvalidId) out.consistent = false;
  }
  return out;
}

SubnetManager::LftImage SubnetManager::buildLftImage(
    const SubnetParams& params) const {
  const Topology& topo = fabric_->topology();
  const FabricParams& fp = fabric_->params();
  const LidMapper& lids = fabric_->lids();
  const Lid limit = lids.lidLimit(topo.numNodes());

  LftImage image;
  image.entries.assign(static_cast<std::size_t>(topo.numSwitches()),
                       std::vector<std::uint8_t>(limit, kUnset));
  auto set = [&image](SwitchId sw, Lid lid, PortIndex port) {
    image.entries[static_cast<std::size_t>(sw)][lid] =
        static_cast<std::uint8_t>(port);
  };

  if (params.sourceMultipathPlanes > 0) {
    if (fp.numOptions != 1) {
      throw std::invalid_argument(
          "SubnetManager: source multipath needs numOptions == 1");
    }
    const int planes = params.sourceMultipathPlanes;
    if (planes > lids.lidsPerNode()) {
      throw std::invalid_argument(
          "SubnetManager: more multipath planes than LIDs per node");
    }
    // One coherent up*/down* plane per address slot; plane 0 is the
    // canonical (lowest-port tie-break) table so address d behaves exactly
    // like the deterministic baseline.
    std::vector<UpDownRouting> tables;
    tables.reserve(static_cast<std::size_t>(planes));
    for (int k = 0; k < planes; ++k) {
      tables.emplace_back(topo, params.rootSelection,
                          static_cast<unsigned>(k));
    }
    image.root = tables.front().root();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
      for (NodeId n = 0; n < topo.numNodes(); ++n) {
        const Lid base = lids.baseLid(n);
        const SwitchId destSw = topo.switchOfNode(n);
        for (int k = 0; k < lids.lidsPerNode(); ++k) {
          const PortIndex port =
              destSw == sw
                  ? topo.portOfNode(n)
                  : tables[static_cast<std::size_t>(k % planes)].nextHopPort(
                        sw, destSw);
          set(sw, base + static_cast<Lid>(k), port);
        }
      }
    }
    return image;
  }

  const int x = fp.numOptions;
  const int lidsPerNode = lids.lidsPerNode();
  const int sets = params.apmPathSets;
  if (sets < 1 || sets * x > lidsPerNode) {
    throw std::invalid_argument(
        "SubnetManager: apmPathSets * numOptions exceeds the LID block");
  }

  // One escape plane per APM path set; all share one orientation (salt-only
  // variation), so any mixture of sets remains deadlock-free.
  std::vector<UpDownRouting> updowns;
  std::vector<RouteSet> routeSets;
  const MinimalAdaptiveRouting minimal(topo);
  updowns.reserve(static_cast<std::size_t>(sets));
  routeSets.reserve(static_cast<std::size_t>(sets));
  for (int j = 0; j < sets; ++j) {
    updowns.emplace_back(topo, params.rootSelection, static_cast<unsigned>(j));
  }
  for (int j = 0; j < sets; ++j) {
    routeSets.emplace_back(topo, updowns[static_cast<std::size_t>(j)], minimal);
  }
  image.root = updowns.front().root();

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const bool adaptiveCapable =
        fp.adaptiveSwitchMask.empty()
            ? fp.adaptiveSwitches
            : fp.adaptiveSwitchMask[static_cast<std::size_t>(sw)];
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = lids.baseLid(n);
      for (int j = 0; j < sets; ++j) {
        const RouteSet& routes = routeSets[static_cast<std::size_t>(j)];
        const RouteOptionsSpec& spec = routes.options(sw, n);
        const Lid sub = base + static_cast<Lid>(j * x);
        // Sub-block address 0: the deterministic / escape route of set j.
        set(sw, sub, spec.escapePort);
        // Addresses 1 .. x-1: adaptive minimal options (escape hop when
        // this switch is deterministic-only or the destination is local).
        auto capped = adaptiveCapable ? routes.cappedAdaptivePorts(sw, n, x)
                                      : std::vector<PortIndex>{};
        if (!capped.empty() && j > 0) {
          // Different sets lead with different minimal ports.
          std::rotate(capped.begin(),
                      capped.begin() + (j % static_cast<int>(capped.size())),
                      capped.end());
        }
        for (int k = 1; k < x; ++k) {
          const PortIndex port =
              capped.empty()
                  ? spec.escapePort
                  : capped[static_cast<std::size_t>((k - 1) % capped.size())];
          set(sw, sub + static_cast<Lid>(k), port);
        }
      }
      // Remaining block addresses: set-0 escape hop, so a stray DLID still
      // routes deterministically.
      const PortIndex esc0 = routeSets.front().options(sw, n).escapePort;
      for (int k = sets * x; k < lidsPerNode; ++k) {
        set(sw, base + static_cast<Lid>(k), esc0);
      }
    }
  }
  return image;
}

SubnetManager::Report SubnetManager::configure(const SubnetParams& params) {
  const Topology& topo = fabric_->topology();
  const FabricParams& fp = fabric_->params();

  Report report;
  report.discoveryConsistent = discover().consistent;
  report.lidsPerNode = fabric_->lids().lidsPerNode();

  const LftImage image = buildLftImage(params);
  report.root = image.root;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const auto& table = image.entries[static_cast<std::size_t>(sw)];
    for (Lid lid = 0; lid < table.size(); ++lid) {
      if (table[lid] == kUnset) continue;
      fabric_->setLftEntry(sw, lid, static_cast<PortIndex>(table[lid]));
      ++report.lftEntriesWritten;
    }
    // SLtoVL: identity mapping (SL modulo the number of data VLs), set
    // explicitly for every (input, output) pair as a real SM would.
    for (PortIndex in = 0; in < topo.portsPerSwitch(); ++in) {
      for (PortIndex outp = 0; outp < topo.portsPerSwitch(); ++outp) {
        for (int sl = 0; sl < kMaxServiceLevels; ++sl) {
          fabric_->setSlToVl(sw, in, outp, sl,
                             static_cast<VlIndex>(sl % fp.numVls));
        }
      }
    }
    ++report.switchesProgrammed;
  }
  return report;
}

SubnetManager::Report SubnetManager::configureViaSmp(
    const SubnetParams& params) {
  const Topology& topo = fabric_->topology();
  const FabricParams& fp = fabric_->params();

  Report report;
  report.discoveryConsistent = discoverViaSmp().consistent;
  report.lidsPerNode = fabric_->lids().lidsPerNode();

  const LftImage image = buildLftImage(params);
  report.root = image.root;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const auto& table = image.entries[static_cast<std::size_t>(sw)];
    const auto blocks =
        (table.size() + kLftBlockSize - 1) / kLftBlockSize;
    for (std::size_t b = 0; b < blocks; ++b) {
      Smp smp;
      smp.method = SmpMethod::kSet;
      smp.attr = SmpAttr::kLinearForwardingTable;
      smp.attrMod = static_cast<std::uint32_t>(b);
      smp.payload.fill(kLftNoPort);
      bool any = false;
      for (int i = 0; i < kLftBlockSize; ++i) {
        const std::size_t lid = b * kLftBlockSize + static_cast<std::size_t>(i);
        if (lid >= table.size()) break;
        if (table[lid] == kUnset) continue;
        smp.payload[static_cast<std::size_t>(i)] = table[lid];
        any = true;
        ++report.lftEntriesWritten;
      }
      if (!any) continue;
      const Smp resp = processSmp(*fabric_, sw, smp);
      ++report.smpsSent;
      if (resp.status != SmpStatus::kOk) {
        throw std::runtime_error("SubnetManager: LFT SMP rejected");
      }
    }
    for (PortIndex in = 0; in < topo.portsPerSwitch(); ++in) {
      for (PortIndex outp = 0; outp < topo.portsPerSwitch(); ++outp) {
        Smp smp;
        smp.method = SmpMethod::kSet;
        smp.attr = SmpAttr::kSlToVlTable;
        smp.attrMod = (static_cast<std::uint32_t>(in) << 8) |
                      static_cast<std::uint32_t>(outp);
        for (int sl = 0; sl < 16; ++sl) {
          smp.payload[static_cast<std::size_t>(sl)] =
              static_cast<std::uint8_t>(sl % fp.numVls);
        }
        const Smp resp = processSmp(*fabric_, sw, smp);
        ++report.smpsSent;
        if (resp.status != SmpStatus::kOk) {
          throw std::runtime_error("SubnetManager: SLtoVL SMP rejected");
        }
      }
    }
    ++report.switchesProgrammed;
  }
  return report;
}

}  // namespace ibadapt
