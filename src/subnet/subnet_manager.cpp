#include "subnet/subnet_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "routing/minimal.hpp"
#include "subnet/smp.hpp"
#include "util/thread_pool.hpp"

namespace ibadapt {

namespace {
constexpr std::uint8_t kUnset = kLftImageUnset;
}

DiscoveredSubnet SubnetManager::discover() const {
  const Topology& topo = fabric_->topology();
  DiscoveredSubnet out;
  out.numSwitches = topo.numSwitches();
  out.nodeAttach.assign(static_cast<std::size_t>(topo.numNodes()),
                        {kInvalidId, kInvalidPort});
  out.consistent = true;

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      const Peer& peer = fabric_->managementPeer(sw, p);
      switch (peer.kind) {
        case PeerKind::kUnused:
          break;
        case PeerKind::kNode:
          out.nodeAttach[static_cast<std::size_t>(peer.id)] = {sw, p};
          ++out.numNodes;
          break;
        case PeerKind::kSwitch: {
          // Record each link once and verify the reverse view matches.
          const Peer& back = fabric_->managementPeer(peer.id, peer.port);
          if (back.kind != PeerKind::kSwitch || back.id != sw ||
              back.port != p) {
            out.consistent = false;
          }
          if (sw < peer.id) {
            out.links.emplace_back(sw, p, peer.id, peer.port);
          }
          break;
        }
      }
    }
  }
  for (const auto& [sw, p] : out.nodeAttach) {
    (void)p;
    if (sw == kInvalidId) out.consistent = false;
  }
  return out;
}

DiscoveredSubnet SubnetManager::discoverViaSmp() const {
  const Topology& topo = fabric_->topology();
  DiscoveredSubnet out;
  out.numSwitches = topo.numSwitches();
  out.nodeAttach.assign(static_cast<std::size_t>(topo.numNodes()),
                        {kInvalidId, kInvalidPort});
  out.consistent = true;

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    Smp nodeReq;
    nodeReq.method = SmpMethod::kGet;
    nodeReq.attr = SmpAttr::kNodeInfo;
    const Smp nodeResp = processSmp(*fabric_, sw, nodeReq);
    if (nodeResp.status != SmpStatus::kOk) {
      out.consistent = false;
      continue;
    }
    const NodeInfoAttr info = decodeNodeInfo(nodeResp.payload);
    for (PortIndex p = 0; p < info.numPorts; ++p) {
      Smp portReq;
      portReq.method = SmpMethod::kGet;
      portReq.attr = SmpAttr::kPortInfo;
      portReq.attrMod = static_cast<std::uint32_t>(p);
      const Smp portResp = processSmp(*fabric_, sw, portReq);
      if (portResp.status != SmpStatus::kOk) {
        out.consistent = false;
        continue;
      }
      const PortInfoAttr pi = decodePortInfo(portResp.payload);
      switch (static_cast<PeerKind>(pi.peerKind)) {
        case PeerKind::kUnused:
          break;
        case PeerKind::kNode:
          out.nodeAttach[static_cast<std::size_t>(pi.peerId)] = {sw, p};
          ++out.numNodes;
          break;
        case PeerKind::kSwitch:
          if (sw < pi.peerId) {
            out.links.emplace_back(sw, p, pi.peerId,
                                   static_cast<PortIndex>(pi.peerPort));
          }
          break;
      }
    }
  }
  for (const auto& [sw, p] : out.nodeAttach) {
    (void)p;
    if (sw == kInvalidId) out.consistent = false;
  }
  return out;
}

LftPlanSpec SubnetManager::planSpec(const Fabric& fabric,
                                    const SubnetParams& params) {
  const FabricParams& fp = fabric.params();
  LftPlanSpec plan;
  plan.lmc = fabric.lids().lmc();
  plan.numOptions = fp.numOptions;
  plan.rootSelection = params.rootSelection;
  plan.sourceMultipathPlanes = params.sourceMultipathPlanes;
  plan.apmPathSets = params.apmPathSets;
  plan.adaptiveSwitches = fp.adaptiveSwitches;
  plan.adaptiveSwitchMask = fp.adaptiveSwitchMask;
  // The fabric's kernel thread budget doubles as the planner's: planning
  // happens strictly before the kernel runs, so the workers never compete,
  // and parallel planning is bit-identical to serial by construction.
  plan.threads = fp.threads;
  return plan;
}

LftImage SubnetManager::buildImage(const SubnetParams& params) const {
  return buildLftImage(fabric_->topology(), planSpec(*fabric_, params));
}

SubnetManager::Report SubnetManager::configure(const SubnetParams& params) {
  const Topology& topo = fabric_->topology();
  const FabricParams& fp = fabric_->params();

  Report report;
  report.discoveryConsistent = discover().consistent;
  report.lidsPerNode = fabric_->lids().lidsPerNode();

  // Streaming install: plan once, then compute table rows in small batches
  // (in parallel when the plan spec carries threads) and program each batch
  // before computing the next. The materialized-image path would hold the
  // full S x LIDs byte matrix next to the fabric's own tables — ~64 MiB of
  // transient double residency at 4096 switches; the batch window keeps
  // that overhead at a few rows.
  const LftPlanner planner(topo, planSpec(*fabric_, params));
  report.root = planner.root();
  ThreadPool* pool = planner.pool();
  const int batch =
      pool != nullptr ? static_cast<int>(pool->workerCount()) * 4 : 1;
  std::vector<std::vector<std::uint8_t>> rows(
      static_cast<std::size_t>(batch));
  for (SwitchId start = 0; start < topo.numSwitches(); start += batch) {
    const int count = std::min(batch, topo.numSwitches() - start);
    if (pool != nullptr) {
      parallelForIndex(*pool, static_cast<std::size_t>(count),
                       [&](std::size_t i) {
                         planner.fillRow(start + static_cast<SwitchId>(i),
                                         rows[i]);
                       });
    } else {
      for (int i = 0; i < count; ++i) {
        planner.fillRow(start + i, rows[static_cast<std::size_t>(i)]);
      }
    }
    for (int i = 0; i < count; ++i) {
      const SwitchId sw = start + i;
      const auto& table = rows[static_cast<std::size_t>(i)];
      // Whole-row block write: the image row is already in table encoding
      // (kUnset == the table's "not programmed" byte), so one memcpy-sized
      // call programs the switch instead of one checked call per LID — the
      // difference between O(S * LIDs) round trips and O(S) at 1024
      // switches.
      fabric_->setLftBlock(sw, 0, table.data(), table.size());
      for (std::size_t lid = 0; lid < table.size(); ++lid) {
        if (table[lid] != kUnset) ++report.lftEntriesWritten;
      }
      // SLtoVL: identity mapping (SL modulo the number of data VLs), set
      // explicitly for every (input, output) pair as a real SM would.
      for (PortIndex in = 0; in < topo.portsPerSwitch(); ++in) {
        for (PortIndex outp = 0; outp < topo.portsPerSwitch(); ++outp) {
          for (int sl = 0; sl < kMaxServiceLevels; ++sl) {
            fabric_->setSlToVl(sw, in, outp, sl,
                               static_cast<VlIndex>(sl % fp.numVls));
          }
        }
      }
      ++report.switchesProgrammed;
    }
  }
  return report;
}

SubnetManager::Report SubnetManager::configureViaSmp(
    const SubnetParams& params) {
  const Topology& topo = fabric_->topology();
  const FabricParams& fp = fabric_->params();

  Report report;
  report.discoveryConsistent = discoverViaSmp().consistent;
  report.lidsPerNode = fabric_->lids().lidsPerNode();

  const LftImage image = buildImage(params);
  report.root = image.root;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const auto& table = image.entries[static_cast<std::size_t>(sw)];
    const auto blocks =
        (table.size() + kLftBlockSize - 1) / kLftBlockSize;
    for (std::size_t b = 0; b < blocks; ++b) {
      Smp smp;
      smp.method = SmpMethod::kSet;
      smp.attr = SmpAttr::kLinearForwardingTable;
      smp.attrMod = static_cast<std::uint32_t>(b);
      smp.payload.fill(kLftNoPort);
      bool any = false;
      for (int i = 0; i < kLftBlockSize; ++i) {
        const std::size_t lid = b * kLftBlockSize + static_cast<std::size_t>(i);
        if (lid >= table.size()) break;
        if (table[lid] == kUnset) continue;
        smp.payload[static_cast<std::size_t>(i)] = table[lid];
        any = true;
        ++report.lftEntriesWritten;
      }
      if (!any) continue;
      const Smp resp = processSmp(*fabric_, sw, smp);
      ++report.smpsSent;
      if (resp.status != SmpStatus::kOk) {
        throw std::runtime_error("SubnetManager: LFT SMP rejected");
      }
    }
    for (PortIndex in = 0; in < topo.portsPerSwitch(); ++in) {
      for (PortIndex outp = 0; outp < topo.portsPerSwitch(); ++outp) {
        Smp smp;
        smp.method = SmpMethod::kSet;
        smp.attr = SmpAttr::kSlToVlTable;
        smp.attrMod = (static_cast<std::uint32_t>(in) << 8) |
                      static_cast<std::uint32_t>(outp);
        for (int sl = 0; sl < 16; ++sl) {
          smp.payload[static_cast<std::size_t>(sl)] =
              static_cast<std::uint8_t>(sl % fp.numVls);
        }
        const Smp resp = processSmp(*fabric_, sw, smp);
        ++report.smpsSent;
        if (resp.status != SmpStatus::kOk) {
          throw std::runtime_error("SubnetManager: SLtoVL SMP rejected");
        }
      }
    }
    ++report.switchesProgrammed;
  }
  return report;
}

}  // namespace ibadapt
