#pragma once
//
// Subnet Management Packets (SMPs) — the datagrams a real subnet manager
// uses to discover and program switches. The simulator's direct management
// API is convenient, but this layer proves the whole subnet bring-up also
// works through the spec's narrow waist: Get/Set of management attributes
// with 64-byte payload blocks.
//
// Implemented attributes (simplified encodings, faithful granularity):
//   * NodeInfo                — node type, port count
//   * PortInfo (attrMod=port) — peer kind/id/port of one switch port
//   * LinearForwardingTable   — 64 LFT entries per block (attrMod=block)
//   * SlToVlMappingTable      — (attrMod = inPort<<8 | outPort) 16 SLs
//
#include <array>
#include <cstdint>

#include "util/types.hpp"

namespace ibadapt {

class Fabric;

enum class SmpMethod : std::uint8_t {
  kGet = 0x01,
  kSet = 0x02,
  kGetResp = 0x81,
};

enum class SmpAttr : std::uint16_t {
  kNodeInfo = 0x0011,
  kPortInfo = 0x0015,
  kSlToVlTable = 0x0017,
  kLinearForwardingTable = 0x0019,
  /// Vendor-range attributes for the live-reconfiguration install flow
  /// (src/subnet/reconfig): same 64-entry block encoding as
  /// LinearForwardingTable, but writes land in the switch's *shadow* LFT
  /// bank instead of the active table.
  kStagedForwardingTable = 0xFF30,
  /// Set with attrMod = 0 opens the shadow bank for a new image; attrMod =
  /// 1 commits it under the epoch carried in payload[0..3] (big-endian).
  /// The GetResp is the switch's install ack.
  kStagedLftControl = 0xFF31,
};

enum class SmpStatus : std::uint8_t {
  kOk = 0,
  kBadMethod = 1,
  kBadAttr = 2,
  kBadModifier = 3,
  kBadField = 7,
};

/// Entries per LFT block, as in the IBA LinearForwardingTable attribute.
inline constexpr int kLftBlockSize = 64;
/// "Port not programmed" marker inside LFT blocks.
inline constexpr std::uint8_t kLftNoPort = 0xFF;

struct Smp {
  SmpMethod method = SmpMethod::kGet;
  SmpAttr attr = SmpAttr::kNodeInfo;
  std::uint32_t attrMod = 0;
  SmpStatus status = SmpStatus::kOk;
  std::array<std::uint8_t, 64> payload{};
};

/// Switch-side SMP agent: executes one SMP against a switch and returns the
/// GetResp. Lives beside the Fabric so the management plane has a single
/// authoritative implementation.
Smp processSmp(Fabric& fabric, SwitchId sw, const Smp& request);

// --- payload encodings (exposed for the subnet manager and tests) --------

struct NodeInfoAttr {
  std::uint8_t numPorts = 0;
  std::uint8_t nodeType = 2;  // 2 = switch, as in IBA
};
void encodeNodeInfo(const NodeInfoAttr& v, std::array<std::uint8_t, 64>& p);
NodeInfoAttr decodeNodeInfo(const std::array<std::uint8_t, 64>& p);

struct PortInfoAttr {
  std::uint8_t peerKind = 0;  // 0 unused, 1 node, 2 switch
  std::int32_t peerId = -1;
  std::int32_t peerPort = -1;
};
void encodePortInfo(const PortInfoAttr& v, std::array<std::uint8_t, 64>& p);
PortInfoAttr decodePortInfo(const std::array<std::uint8_t, 64>& p);

}  // namespace ibadapt
