#pragma once
//
// SM-driven live reconfiguration: the epoch-based two-phase LFT swap.
//
// When the fault campaign reports a link failure or recovery, the subnet
// manager no longer has to stop the world and rewrite tables in place.
// ReconfigManager runs the update as a protocol with modeled latency:
//
//   1. wait-retire — before the shadow LFT banks can be reused, every
//      packet of the *previous* epoch must have retired (delivered or
//      dropped); the fabric's per-epoch in-flight ledger gates this.
//   2. compute — the SM snapshots the topology and replans the complete
//      up*/down* escape trees + LFT image in the background
//      (routing/lft_image). Traffic keeps flowing on the old tables; a
//      request arriving mid-compute restarts the computation against a
//      fresh snapshot.
//   3. install — the image ships to each switch as SMP traffic with real
//      latency: a StagedLftControl(begin), one StagedForwardingTable Set
//      per non-empty 64-entry block, and a StagedLftControl(commit) that
//      tags the shadow bank with the next epoch. The switch's GetResp is
//      its install ack; the SM serializes SMPs, so ack times accumulate
//      across switches.
//   4. activate — one more SMP RTT after the last ack, the SM advances the
//      fabric injection epoch. Packets injected from that instant are
//      stamped with the new epoch and route on the new tables; packets
//      already in flight keep resolving the old bank at every remaining
//      hop. No packet ever mixes old and new escape paths, so each
//      packet's escape route stays inside one acyclic up*/down* tree and
//      deadlock freedom is preserved through the transition.
//
// The same manager also models the honest stop-and-resweep baseline
// (kDrainAndSweep): pause injection, wait for the fabric to drain, then pay
// the *same* compute and SMP install costs with the fabric stopped before
// rewriting tables in place and resuming. The fault campaign compares both.
//
// All manager actions run in coordinator context between Fabric::run
// slices at deterministic times, so results stay bit-identical across
// kernels and thread counts.
//
#include <cstdint>
#include <optional>
#include <vector>

#include "fabric/fabric.hpp"
#include "routing/lft_image.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/topology.hpp"

namespace ibadapt {

enum class ReconfigMode {
  /// Legacy behavior: the sweep rewrites the active tables in place, in
  /// zero simulated time (the seed's semantics; default).
  kInstantSweep,
  /// Stop-and-resweep baseline with honest cost: injection pauses, the
  /// fabric drains completely, the SM computes and installs the new tables
  /// while everything stands still, then injection resumes.
  kDrainAndSweep,
  /// The live protocol described above: traffic keeps flowing throughout.
  kLiveEpochSwap,
};

struct ReconfigSpec {
  ReconfigMode mode = ReconfigMode::kInstantSweep;
  /// Background path-computation time (topology snapshot -> full image).
  SimTime computeDelayNs = 20'000;
  /// Round-trip of one SMP (request + GetResp ack) between SM and switch.
  SimTime smpRttNs = 1'000;
  /// Poll period while waiting for the fabric to drain (kDrainAndSweep).
  SimTime drainPollNs = 5'000;
  /// Poll period while waiting for the previous epoch to retire
  /// (kLiveEpochSwap step 1).
  SimTime retirePollNs = 5'000;

  void validate() const;
};

struct ReconfigStats {
  std::uint32_t sweepsCompleted = 0;
  /// Epoch advances performed (kLiveEpochSwap only).
  std::uint32_t epochsInstalled = 0;
  /// SMPs carried by the install flow (begin + blocks + commit per switch).
  std::uint64_t smpsSent = 0;
  /// Total install-phase duration (compute done -> epoch advance).
  std::uint64_t installPhaseNsTotal = 0;
  /// Total request -> activation latency over completed live sweeps.
  std::uint64_t reconfigLatencyNsTotal = 0;
  /// Total time injection was gated (kDrainAndSweep only).
  std::uint64_t injectionPausedNs = 0;
  /// Computations thrown away because a new fault arrived mid-compute.
  std::uint32_t computeRestarts = 0;
};

class ReconfigManager {
 public:
  ReconfigManager(Fabric& fabric, SubnetManager& sm, const ReconfigSpec& spec,
                  const SubnetParams& subnet);

  /// The SM noticed a fault/recovery (campaign sweep-delay already
  /// elapsed): fold it into the running cycle or start one.
  void requestSweep(SimTime now);

  /// Next simulated time the protocol needs to act, kTimeNever when idle.
  /// The campaign bounds its run slices by this.
  SimTime nextActionAt() const { return nextAt_; }

  /// Perform every protocol action due at or before `now`. Coordinator
  /// context only (between run slices).
  void step(SimTime now);

  /// One record per finished sweep: when it took effect, and the fault
  /// horizon it covers (faults applied to the topology at or before
  /// `coveredThrough` are routed around by the installed tables).
  struct Completion {
    SimTime at = 0;
    SimTime coveredThrough = 0;
  };
  /// Completions since the last call (campaign closes fault windows with
  /// these).
  std::vector<Completion> drainCompletions();

  bool idle() const { return state_ == State::kIdle && !pending_; }
  const ReconfigStats& stats() const { return stats_; }

  /// Total injection-gated time as of `now`, including a drain still in
  /// progress (the accumulated stat only counts finished drains).
  std::uint64_t injectionPausedNs(SimTime now) const {
    std::uint64_t total = stats_.injectionPausedNs;
    if (state_ == State::kDraining && now > pausedAt_) {
      total += static_cast<std::uint64_t>(now - pausedAt_);
    }
    return total;
  }

 private:
  enum class State {
    kIdle,
    kDraining,    // kDrainAndSweep: injection paused, waiting for empty
    kWaitRetire,  // kLiveEpochSwap: waiting for the old epoch to retire
    kComputing,   // background image computation in progress
    kInstalling,  // SMP install flow, per-switch acks pending
    kActivating,  // all acks in, epoch-advance broadcast in flight
  };

  void startCompute(SimTime now);
  void finishCompute(SimTime now);
  void processInstalls(SimTime now);
  void installSwitch(SwitchId sw);
  void activate(SimTime now);

  Fabric* fabric_;
  SubnetManager* sm_;
  ReconfigSpec spec_;
  SubnetParams subnet_;

  State state_ = State::kIdle;
  SimTime nextAt_ = kTimeNever;
  /// Request arrived while installing/activating: run another cycle after.
  bool pending_ = false;
  SimTime pendingRequestAt_ = 0;

  SimTime cycleRequestAt_ = 0;
  SimTime computeStartAt_ = 0;
  SimTime computeDoneAt_ = 0;
  SimTime pausedAt_ = 0;
  std::optional<Topology> snapshot_;
  LftImage image_;
  std::uint32_t newEpoch_ = 0;
  /// (ack time, switch), ascending — the serialized SMP install schedule.
  std::vector<std::pair<SimTime, SwitchId>> installQueue_;
  std::size_t installPos_ = 0;
  SimTime activateAt_ = kTimeNever;

  std::vector<Completion> completions_;
  ReconfigStats stats_;
};

}  // namespace ibadapt
