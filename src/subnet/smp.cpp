#include "subnet/smp.hpp"

#include <cstring>

#include "fabric/fabric.hpp"

namespace ibadapt {

namespace {

void put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  p[3] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint32_t get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

Smp respond(Smp req, SmpStatus status) {
  req.method = SmpMethod::kGetResp;
  req.status = status;
  return req;
}

}  // namespace

void encodeNodeInfo(const NodeInfoAttr& v, std::array<std::uint8_t, 64>& p) {
  p.fill(0);
  p[0] = v.nodeType;
  p[1] = v.numPorts;
}

NodeInfoAttr decodeNodeInfo(const std::array<std::uint8_t, 64>& p) {
  NodeInfoAttr v;
  v.nodeType = p[0];
  v.numPorts = p[1];
  return v;
}

void encodePortInfo(const PortInfoAttr& v, std::array<std::uint8_t, 64>& p) {
  p.fill(0);
  p[0] = v.peerKind;
  put32(&p[4], static_cast<std::uint32_t>(v.peerId));
  put32(&p[8], static_cast<std::uint32_t>(v.peerPort));
}

PortInfoAttr decodePortInfo(const std::array<std::uint8_t, 64>& p) {
  PortInfoAttr v;
  v.peerKind = p[0];
  v.peerId = static_cast<std::int32_t>(get32(&p[4]));
  v.peerPort = static_cast<std::int32_t>(get32(&p[8]));
  return v;
}

Smp processSmp(Fabric& fabric, SwitchId sw, const Smp& request) {
  const Topology& topo = fabric.topology();
  switch (request.attr) {
    case SmpAttr::kNodeInfo: {
      if (request.method != SmpMethod::kGet) {
        return respond(request, SmpStatus::kBadMethod);
      }
      Smp resp = request;
      NodeInfoAttr info;
      info.numPorts = static_cast<std::uint8_t>(topo.portsPerSwitch());
      encodeNodeInfo(info, resp.payload);
      return respond(resp, SmpStatus::kOk);
    }

    case SmpAttr::kPortInfo: {
      if (request.method != SmpMethod::kGet) {
        return respond(request, SmpStatus::kBadMethod);
      }
      const auto port = static_cast<PortIndex>(request.attrMod);
      if (port < 0 || port >= topo.portsPerSwitch()) {
        return respond(request, SmpStatus::kBadModifier);
      }
      const Peer& peer = fabric.managementPeer(sw, port);
      PortInfoAttr info;
      info.peerKind = static_cast<std::uint8_t>(peer.kind);
      info.peerId = peer.id;
      info.peerPort = peer.port;
      Smp resp = request;
      encodePortInfo(info, resp.payload);
      return respond(resp, SmpStatus::kOk);
    }

    case SmpAttr::kLinearForwardingTable: {
      const Lid base = static_cast<Lid>(request.attrMod) * kLftBlockSize;
      const Lid limit = fabric.lids().lidLimit(topo.numNodes());
      if (base >= limit) return respond(request, SmpStatus::kBadModifier);
      Smp resp = request;
      if (request.method == SmpMethod::kSet) {
        for (int i = 0; i < kLftBlockSize; ++i) {
          const Lid lid = base + static_cast<Lid>(i);
          if (lid >= limit) break;
          const std::uint8_t v = request.payload[static_cast<std::size_t>(i)];
          if (v == kLftNoPort) continue;
          if (v >= topo.portsPerSwitch()) {
            return respond(request, SmpStatus::kBadField);
          }
          fabric.setLftEntry(sw, lid, static_cast<PortIndex>(v));
        }
        return respond(resp, SmpStatus::kOk);
      }
      if (request.method == SmpMethod::kGet) {
        resp.payload.fill(kLftNoPort);
        for (int i = 0; i < kLftBlockSize; ++i) {
          const Lid lid = base + static_cast<Lid>(i);
          if (lid >= limit) break;
          const PortIndex p = fabric.lftEntry(sw, lid);
          if (p != kInvalidPort) {
            resp.payload[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(p);
          }
        }
        return respond(resp, SmpStatus::kOk);
      }
      return respond(request, SmpStatus::kBadMethod);
    }

    case SmpAttr::kStagedForwardingTable: {
      if (request.method != SmpMethod::kSet) {
        return respond(request, SmpStatus::kBadMethod);
      }
      const Lid base = static_cast<Lid>(request.attrMod) * kLftBlockSize;
      const Lid limit = fabric.lids().lidLimit(topo.numNodes());
      if (base >= limit) return respond(request, SmpStatus::kBadModifier);
      for (int i = 0; i < kLftBlockSize; ++i) {
        const Lid lid = base + static_cast<Lid>(i);
        if (lid >= limit) break;
        const std::uint8_t v = request.payload[static_cast<std::size_t>(i)];
        if (v == kLftNoPort) continue;
        if (v >= topo.portsPerSwitch()) {
          return respond(request, SmpStatus::kBadField);
        }
        fabric.stageLftEntry(sw, lid, static_cast<PortIndex>(v));
      }
      return respond(request, SmpStatus::kOk);
    }

    case SmpAttr::kStagedLftControl: {
      if (request.method != SmpMethod::kSet) {
        return respond(request, SmpStatus::kBadMethod);
      }
      if (request.attrMod == 0) {
        fabric.stageLftBegin(sw);
        return respond(request, SmpStatus::kOk);
      }
      if (request.attrMod == 1) {
        fabric.commitStagedLft(sw, get32(request.payload.data()));
        return respond(request, SmpStatus::kOk);
      }
      return respond(request, SmpStatus::kBadModifier);
    }

    case SmpAttr::kSlToVlTable: {
      const auto inPort = static_cast<PortIndex>(request.attrMod >> 8);
      const auto outPort = static_cast<PortIndex>(request.attrMod & 0xFF);
      if (inPort < 0 || inPort >= topo.portsPerSwitch() || outPort < 0 ||
          outPort >= topo.portsPerSwitch()) {
        return respond(request, SmpStatus::kBadModifier);
      }
      if (request.method != SmpMethod::kSet) {
        return respond(request, SmpStatus::kBadMethod);
      }
      for (int sl = 0; sl < 16; ++sl) {
        const std::uint8_t vl = request.payload[static_cast<std::size_t>(sl)];
        if (vl >= static_cast<std::uint8_t>(fabric.params().numVls)) {
          return respond(request, SmpStatus::kBadField);
        }
        fabric.setSlToVl(sw, inPort, outPort, sl, static_cast<VlIndex>(vl));
      }
      return respond(request, SmpStatus::kOk);
    }
  }
  return respond(request, SmpStatus::kBadAttr);
}

}  // namespace ibadapt
