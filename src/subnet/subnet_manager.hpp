#pragma once
//
// Subnet manager: the entity that, in a real IBA subnet, sweeps the fabric
// with management datagrams, assigns LIDs, and programs forwarding and
// SLtoVL tables. Here it drives the Fabric's management plane:
//
//  * discovery — a port-walk sweep that rebuilds the connectivity graph and
//    cross-checks both directions of every link;
//  * LID assignment — every CA port gets an aligned block of 2^LMC LIDs
//    (paper §4.1), the whole block per destination is programmed in every
//    switch;
//  * route programming — address d gets the up*/down* escape hop, addresses
//    d+1..d+x-1 get minimal adaptive options (capped, rotation-balanced);
//    unused block addresses fall back to the escape hop. Switches flagged
//    non-adaptive get every address set to the escape hop (§4.2: mixed
//    fabrics).
//
// Programming can run through the direct management API (`configure`) or
// through encoded subnet-management packets (`configureViaSmp`) — the spec
// path with 64-entry LFT blocks; both produce identical tables (verified
// by the test suite).
//
#include <cstdint>
#include <tuple>
#include <vector>

#include "fabric/fabric.hpp"
#include "routing/lft_image.hpp"
#include "routing/route_set.hpp"
#include "routing/updown.hpp"

namespace ibadapt {

struct SubnetParams {
  RootSelection rootSelection = RootSelection::kHighestDegree;
  /// > 0 enables the *source-multipath baseline* the paper's introduction
  /// dismisses: each of the first `sourceMultipathPlanes` addresses of a
  /// destination block is programmed with an independent deterministic
  /// up*/down* plane (distinct tie-break salt); the sender spreads packets
  /// over the planes by DLID. Requires numOptions == 1 (plain linear
  /// tables, no switch adaptivity) and 2^lmc >= planes. Every plane is
  /// up*/down*-legal, so the union stays deadlock-free.
  int sourceMultipathPlanes = 0;
  /// Automatic Path Migration coexistence (paper §4.1): the LID block is
  /// divided into `apmPathSets` sub-blocks of numOptions addresses each.
  /// Sub-block j carries a complete routing configuration — escape plane
  /// with tie-break salt j plus adaptive options — so endpoints can migrate
  /// between path sets without SM involvement. All sets share the same
  /// up*/down* orientation, keeping their union deadlock-free. Requires
  /// 2^lmc >= apmPathSets * numOptions.
  int apmPathSets = 1;
};

struct DiscoveredSubnet {
  int numSwitches = 0;
  int numNodes = 0;
  /// (swA, portA, swB, portB) with swA < swB.
  std::vector<std::tuple<SwitchId, PortIndex, SwitchId, PortIndex>> links;
  /// nodeAttach[n] = (switch, port).
  std::vector<std::pair<SwitchId, PortIndex>> nodeAttach;
  /// Every link was seen identically from both ends.
  bool consistent = false;
};

class SubnetManager {
 public:
  explicit SubnetManager(Fabric& fabric) : fabric_(&fabric) {}

  struct Report {
    SwitchId root = kInvalidId;
    int switchesProgrammed = 0;
    std::size_t lftEntriesWritten = 0;
    int lidsPerNode = 0;
    bool discoveryConsistent = false;
    std::size_t smpsSent = 0;  // configureViaSmp only
  };

  /// Full subnet initialization through the direct management API; must
  /// run before Fabric::start().
  Report configure(const SubnetParams& params = {});

  /// Same result, but every table write travels as an encoded SMP
  /// (LinearForwardingTable blocks / SlToVlMappingTable attributes) and
  /// discovery uses NodeInfo/PortInfo Gets.
  Report configureViaSmp(const SubnetParams& params = {});

  /// Port-walk discovery sweep over the direct management plane.
  DiscoveredSubnet discover() const;

  /// Discovery through encoded NodeInfo / PortInfo SMPs.
  DiscoveredSubnet discoverViaSmp() const;

  /// Routing-plan spec for this fabric under `params` — the input
  /// routing/lft_image.hpp needs. Exposed so the live-reconfiguration
  /// manager can replan from a topology *snapshot* with identical settings.
  static LftPlanSpec planSpec(const Fabric& fabric, const SubnetParams& params);

 private:
  /// Full image for the fabric's current topology (both programming paths).
  LftImage buildImage(const SubnetParams& params) const;

  Fabric* fabric_;
};

}  // namespace ibadapt
