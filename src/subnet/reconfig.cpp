#include "subnet/reconfig.hpp"

#include <stdexcept>
#include <utility>

#include "subnet/smp.hpp"

namespace ibadapt {

namespace {

void put32be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  p[3] = static_cast<std::uint8_t>(v & 0xFF);
}

/// 64-entry LFT blocks of `table` that carry at least one programmed entry
/// (the unit of SMP install traffic in both managed modes).
std::uint64_t nonEmptyBlocks(const std::vector<std::uint8_t>& table) {
  std::uint64_t n = 0;
  const std::size_t bs = static_cast<std::size_t>(kLftBlockSize);
  const std::size_t blocks = (table.size() + bs - 1) / bs;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < bs; ++i) {
      const std::size_t lid = b * bs + i;
      if (lid >= table.size()) break;
      if (table[lid] != kLftImageUnset) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace

void ReconfigSpec::validate() const {
  if (computeDelayNs < 0) {
    throw std::invalid_argument("ReconfigSpec: computeDelayNs must be >= 0");
  }
  if (smpRttNs < 0) {
    throw std::invalid_argument("ReconfigSpec: smpRttNs must be >= 0");
  }
  if (drainPollNs <= 0 || retirePollNs <= 0) {
    throw std::invalid_argument("ReconfigSpec: poll periods must be > 0");
  }
}

ReconfigManager::ReconfigManager(Fabric& fabric, SubnetManager& sm,
                                 const ReconfigSpec& spec,
                                 const SubnetParams& subnet)
    : fabric_(&fabric), sm_(&sm), spec_(spec), subnet_(subnet) {
  spec_.validate();
}

void ReconfigManager::requestSweep(SimTime now) {
  switch (spec_.mode) {
    case ReconfigMode::kInstantSweep:
      // Seed semantics: rewrite in place, zero simulated cost.
      sm_->configure(subnet_);
      ++stats_.sweepsCompleted;
      completions_.push_back({now, now});
      return;

    case ReconfigMode::kDrainAndSweep:
      switch (state_) {
        case State::kIdle:
          fabric_->setInjectionPaused(true);
          pausedAt_ = now;
          cycleRequestAt_ = now;
          state_ = State::kDraining;
          nextAt_ = now;  // poll immediately; the fabric may be empty
          return;
        case State::kDraining:
          // The pending compute will snapshot after this fault: covered.
          return;
        case State::kComputing:
          ++stats_.computeRestarts;
          startCompute(now);
          return;
        case State::kActivating:
          // Tables already computed from an older snapshot — run a whole
          // new stop-and-resweep cycle afterwards.
          if (!pending_) pendingRequestAt_ = now;
          pending_ = true;
          return;
        case State::kWaitRetire:
        case State::kInstalling:
          break;  // unreachable in this mode
      }
      return;

    case ReconfigMode::kLiveEpochSwap:
      switch (state_) {
        case State::kIdle:
          cycleRequestAt_ = now;
          state_ = State::kWaitRetire;
          nextAt_ = now;
          return;
        case State::kWaitRetire:
          // The snapshot hasn't been taken yet; the pending compute will
          // see this fault.
          return;
        case State::kComputing:
          // The in-progress computation is stale: restart against a fresh
          // snapshot (cycleRequestAt_ keeps the first request's time so
          // latency accounting reflects the whole disruption).
          ++stats_.computeRestarts;
          startCompute(now);
          return;
        case State::kInstalling:
        case State::kActivating:
          // Too late to fold into this image — queue a follow-up cycle.
          if (!pending_) pendingRequestAt_ = now;
          pending_ = true;
          return;
        case State::kDraining:
          break;  // unreachable in this mode
      }
      return;
  }
}

void ReconfigManager::step(SimTime now) {
  // Collapse every transition due by `now` (zero-latency specs resolve in
  // one call instead of spinning the campaign loop).
  while (nextAt_ <= now) {
    switch (state_) {
      case State::kIdle:
        nextAt_ = kTimeNever;
        break;

      case State::kDraining:
        if (fabric_->inFlightPackets() == 0) {
          // Fabric empty and injection gated: the stop-the-world SM can
          // start computing; it stays stopped through compute + install.
          startCompute(now);
        } else {
          nextAt_ = now + spec_.drainPollNs;
        }
        break;

      case State::kWaitRetire:
        if (fabric_->oldEpochInFlight() == 0) {
          startCompute(now);
        } else {
          nextAt_ = now + spec_.retirePollNs;
        }
        break;

      case State::kComputing:
        finishCompute(computeDoneAt_);
        break;

      case State::kInstalling:
        processInstalls(now);
        break;

      case State::kActivating:
        activate(activateAt_);
        break;
    }
  }
}

void ReconfigManager::startCompute(SimTime now) {
  computeStartAt_ = now;
  // Deep copy: the plan is computed against the fabric as seen at this
  // instant, even if more faults land while the computation "runs".
  snapshot_ = fabric_->topology();
  computeDoneAt_ = now + spec_.computeDelayNs;
  state_ = State::kComputing;
  nextAt_ = computeDoneAt_;
}

void ReconfigManager::finishCompute(SimTime now) {
  image_ = buildLftImage(*snapshot_, SubnetManager::planSpec(*fabric_, subnet_));
  snapshot_.reset();

  if (spec_.mode == ReconfigMode::kDrainAndSweep) {
    // Stop-and-resweep pays the same install traffic, minus the staging
    // control SMPs — plain LinearForwardingTable writes suffice on an
    // empty, gated fabric. Nothing to do mid-install; the tables land at
    // activation.
    std::uint64_t smps = 0;
    for (const auto& table : image_.entries) smps += nonEmptyBlocks(table);
    stats_.smpsSent += smps;
    installQueue_.clear();
    installPos_ = 0;
    activateAt_ = now + static_cast<SimTime>(smps) * spec_.smpRttNs;
    state_ = State::kActivating;
    nextAt_ = activateAt_;
    return;
  }

  newEpoch_ = fabric_->injectionEpoch() + 1;
  // Serialized install flow: the SM works through the switches in id order,
  // one SMP at a time, each costing a full round trip. A switch's ack time
  // is therefore the cumulative SMP count so far times the RTT.
  installQueue_.clear();
  installPos_ = 0;
  std::uint64_t smpsSoFar = 0;
  for (SwitchId sw = 0; sw < fabric_->topology().numSwitches(); ++sw) {
    const auto& table = image_.entries[static_cast<std::size_t>(sw)];
    // StagedLftControl begin + block writes + commit.
    smpsSoFar += 2 + nonEmptyBlocks(table);
    installQueue_.emplace_back(
        now + static_cast<SimTime>(smpsSoFar) * spec_.smpRttNs, sw);
  }
  state_ = State::kInstalling;
  nextAt_ = installQueue_.empty() ? now : installQueue_.front().first;
}

void ReconfigManager::processInstalls(SimTime now) {
  while (installPos_ < installQueue_.size() &&
         installQueue_[installPos_].first <= now) {
    installSwitch(installQueue_[installPos_].second);
    ++installPos_;
  }
  if (installPos_ < installQueue_.size()) {
    nextAt_ = installQueue_[installPos_].first;
    return;
  }
  // All acks are in; the epoch-advance notification takes one more RTT.
  const SimTime lastAck =
      installQueue_.empty() ? now : installQueue_.back().first;
  activateAt_ = lastAck + spec_.smpRttNs;
  state_ = State::kActivating;
  nextAt_ = activateAt_;
}

void ReconfigManager::installSwitch(SwitchId sw) {
  const auto& table = image_.entries[static_cast<std::size_t>(sw)];

  Smp begin;
  begin.method = SmpMethod::kSet;
  begin.attr = SmpAttr::kStagedLftControl;
  begin.attrMod = 0;
  if (processSmp(*fabric_, sw, begin).status != SmpStatus::kOk) {
    throw std::runtime_error("ReconfigManager: stage-begin SMP rejected");
  }
  ++stats_.smpsSent;

  const std::size_t bs = static_cast<std::size_t>(kLftBlockSize);
  const std::size_t blocks = (table.size() + bs - 1) / bs;
  for (std::size_t b = 0; b < blocks; ++b) {
    Smp smp;
    smp.method = SmpMethod::kSet;
    smp.attr = SmpAttr::kStagedForwardingTable;
    smp.attrMod = static_cast<std::uint32_t>(b);
    smp.payload.fill(kLftNoPort);
    bool any = false;
    for (std::size_t i = 0; i < bs; ++i) {
      const std::size_t lid = b * bs + i;
      if (lid >= table.size()) break;
      if (table[lid] == kLftImageUnset) continue;
      smp.payload[i] = table[lid];
      any = true;
    }
    if (!any) continue;
    if (processSmp(*fabric_, sw, smp).status != SmpStatus::kOk) {
      throw std::runtime_error("ReconfigManager: staged-LFT SMP rejected");
    }
    ++stats_.smpsSent;
  }

  Smp commit;
  commit.method = SmpMethod::kSet;
  commit.attr = SmpAttr::kStagedLftControl;
  commit.attrMod = 1;
  put32be(commit.payload.data(), newEpoch_);
  if (processSmp(*fabric_, sw, commit).status != SmpStatus::kOk) {
    throw std::runtime_error("ReconfigManager: stage-commit SMP rejected");
  }
  ++stats_.smpsSent;
}

void ReconfigManager::activate(SimTime now) {
  if (spec_.mode == ReconfigMode::kDrainAndSweep) {
    // The fabric is empty and gated: write the snapshot's image straight
    // into the active tables. Deliberately NOT sm_->configure(): that
    // would replan from the *current* topology and silently cover faults
    // newer than the snapshot the modeled computation actually used.
    for (SwitchId sw = 0; sw < fabric_->topology().numSwitches(); ++sw) {
      const auto& table = image_.entries[static_cast<std::size_t>(sw)];
      // Row-at-a-time: image bytes are already in table encoding
      // (kLftImageUnset == "not programmed"), so a block write is exact.
      fabric_->setLftBlock(sw, 0, table.data(), table.size());
    }
    fabric_->setInjectionPaused(false);
    stats_.injectionPausedNs += static_cast<std::uint64_t>(now - pausedAt_);
  } else {
    fabric_->advanceInjectionEpoch(newEpoch_);
    ++stats_.epochsInstalled;
    stats_.installPhaseNsTotal +=
        static_cast<std::uint64_t>(now - computeDoneAt_);
  }
  ++stats_.sweepsCompleted;
  stats_.reconfigLatencyNsTotal +=
      static_cast<std::uint64_t>(now - cycleRequestAt_);
  // Faults applied after the snapshot are NOT healed by this image — they
  // stay open and, if queued, drive the follow-up cycle.
  completions_.push_back({now, computeStartAt_});
  state_ = State::kIdle;
  nextAt_ = kTimeNever;
  if (pending_) {
    pending_ = false;
    cycleRequestAt_ = pendingRequestAt_;
    if (spec_.mode == ReconfigMode::kDrainAndSweep) {
      fabric_->setInjectionPaused(true);
      pausedAt_ = now;
      state_ = State::kDraining;
    } else {
      state_ = State::kWaitRetire;
    }
    nextAt_ = now;
  }
}

std::vector<ReconfigManager::Completion> ReconfigManager::drainCompletions() {
  return std::exchange(completions_, {});
}

}  // namespace ibadapt
