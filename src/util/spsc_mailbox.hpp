#pragma once
//
// Single-producer / single-consumer mailbox for cross-shard event hand-off
// in the parallel kernel.
//
// One mailbox exists per (source shard, destination shard) edge. Access is
// *phase-disciplined* rather than lock-free: during an epoch only the
// source shard's thread pushes; at the epoch barrier only the coordinator
// drains. The EpochBarrier's release/acquire hand-off orders the two phases
// (every pre-barrier write happens-before every post-barrier read), so the
// storage can be a plain vector — no per-push atomics on the hot path, no
// false sharing beyond the vector header.
//
// The entry capacity is retained across epochs: steady-state traffic
// allocates nothing.
//
#include <cstddef>
#include <vector>

namespace ibadapt {

template <typename T>
class SpscMailbox {
 public:
  /// Producer phase (owning shard thread only).
  void push(const T& item) { items_.push_back(item); }
  template <typename... Args>
  void emplace(Args&&... args) {
    items_.emplace_back(static_cast<Args&&>(args)...);
  }

  /// Consumer phase (coordinator only, between barriers). The returned
  /// entries stay valid until reset().
  const std::vector<T>& entries() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Consumer phase: discard the drained entries, keeping capacity.
  void reset() { items_.clear(); }

 private:
  std::vector<T> items_;
};

}  // namespace ibadapt
