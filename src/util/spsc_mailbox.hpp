#pragma once
//
// Single-producer / single-consumer mailbox for cross-shard event hand-off
// in the parallel kernel.
//
// One mailbox exists per (source shard, destination shard) edge. Access is
// *phase-disciplined* rather than lock-free: during an epoch only the
// source shard's thread pushes; at the epoch barrier only the coordinator
// drains. The EpochBarrier's release/acquire hand-off orders the two phases
// (every pre-barrier write happens-before every post-barrier read), so the
// storage can be a plain vector — no per-push atomics on the hot path, no
// false sharing beyond the vector header.
//
// The entry capacity is retained across epochs, so steady-state traffic
// allocates nothing — but not unconditionally: endEpoch() watches the
// high-water mark over a fixed window of drains and releases burst capacity
// the traffic stopped using, the same policy the calendar queue applies to
// drained buckets (sim/event_queue.hpp kRetainEvents). At 4096 switches a
// fault storm can spike a single edge to thousands of entries; without the
// release every (src, dst) edge would pin its historic burst forever.
//
#include <cstddef>
#include <vector>

namespace ibadapt {

template <typename T>
class SpscMailbox {
 public:
  /// Drained mailboxes keep at least this capacity: large enough that
  /// ordinary per-window cohorts never reallocate.
  static constexpr std::size_t kRetainEntries = 16;
  /// Drains per capacity-policy window: long enough that a briefly idle
  /// edge keeps its warm capacity through ordinary traffic gaps.
  static constexpr std::size_t kPolicyWindow = 64;

  /// Producer phase (owning shard thread only).
  void push(const T& item) { items_.push_back(item); }
  template <typename... Args>
  void emplace(Args&&... args) {
    items_.emplace_back(static_cast<Args&&>(args)...);
  }

  /// Consumer phase (coordinator only, between barriers). The returned
  /// entries stay valid until reset() / endEpoch().
  const std::vector<T>& entries() const { return items_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return items_.capacity(); }

  /// Consumer phase: discard the drained entries, keeping capacity.
  void reset() { items_.clear(); }

  /// Consumer phase: reset() plus the capacity-release policy — call once
  /// per edge per barrier (empty edges too). When a whole policy window
  /// passes with the high-water mark far below the retained capacity, the
  /// dead burst capacity is released back to the allocator.
  void endEpoch() {
    if (items_.size() > highWater_) highWater_ = items_.size();
    items_.clear();
    if (++drains_ < kPolicyWindow) return;
    if (items_.capacity() > kRetainEntries &&
        highWater_ * 4 <= items_.capacity()) {
      const std::size_t keep =
          highWater_ * 2 > kRetainEntries ? highWater_ * 2 : kRetainEntries;
      std::vector<T> slim;
      slim.reserve(keep);
      items_.swap(slim);
    }
    drains_ = 0;
    highWater_ = 0;
  }

 private:
  std::vector<T> items_;
  std::size_t drains_ = 0;
  std::size_t highWater_ = 0;
};

}  // namespace ibadapt
