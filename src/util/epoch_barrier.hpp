#pragma once
//
// Sense-reversing spin barrier for the parallel event kernel's epoch loop.
//
// The kernel crosses two barriers per epoch (shards -> coordinator hand-off
// and back), typically every few microseconds of wall time, so the barrier
// must cost far less than a condition-variable round trip. Arrival is a
// single fetch_sub; waiters spin on the phase word with an acquire load and
// back off to yield() after a bounded number of polls, so an oversubscribed
// machine still makes progress.
//
// Memory ordering: the last arriver bumps `phase_` with release after every
// other party's acq_rel fetch_sub, and waiters leave only after an acquire
// load observes the bump — so all writes made by any party before the
// barrier happen-before all reads made by any party after it. That property
// is what lets the mailboxes (util/spsc_mailbox.hpp) and the shard state
// hand-off use plain unsynchronized accesses between barriers.
//
#include <atomic>
#include <cstdint>
#include <thread>

namespace ibadapt {

class EpochBarrier {
 public:
  explicit EpochBarrier(int parties)
      : parties_(parties),
        // Spinning only helps when every party can actually run at once;
        // on an oversubscribed machine the fastest way to let the laggard
        // arrive is to give up the core immediately.
        spinPolls_(std::thread::hardware_concurrency() >=
                           static_cast<unsigned>(parties)
                       ? kSpinPolls
                       : 1),
        remaining_(parties) {}

  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  /// Block (spin) until all `parties` threads have arrived.
  void arriveAndWait() {
    const std::uint64_t myPhase = phase_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Reset before releasing the others: they re-arm only after observing
      // the phase bump, so the store cannot race their next arrival.
      remaining_.store(parties_, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
      return;
    }
    int polls = 0;
    while (phase_.load(std::memory_order_acquire) == myPhase) {
      if (++polls >= spinPolls_) {
        polls = 0;
        std::this_thread::yield();
      }
    }
  }

  int parties() const { return parties_; }

 private:
  static constexpr int kSpinPolls = 4096;

  const int parties_;
  const int spinPolls_;
  std::atomic<int> remaining_;
  std::atomic<std::uint64_t> phase_{0};
};

}  // namespace ibadapt
