#pragma once
//
// Tiny key=value command-line parser shared by benches and examples.
//
// Usage:   ./bench_table1 --mode=paper sizes=8,16 seed=7
// Both "--key=value" and "key=value" forms are accepted.
//
#include <map>
#include <string>
#include <vector>

namespace ibadapt {

class Flags {
 public:
  Flags() = default;
  Flags(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string str(const std::string& key, const std::string& dflt) const;
  int integer(const std::string& key, int dflt) const;
  double real(const std::string& key, double dflt) const;
  bool boolean(const std::string& key, bool dflt) const;

  /// Comma-separated integer list, e.g. sizes=8,16,32.
  std::vector<int> intList(const std::string& key,
                           const std::vector<int>& dflt) const;

  /// Keys that were supplied but never queried — typo detection for benches.
  std::vector<std::string> unknownKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace ibadapt
