#pragma once
//
// Fabric-wide slab arena: one contiguous allocation carved into fixed-size
// slices at build time.
//
// The motivation is the per-port buffer storage at 4096-switch scale: a
// dragonfly-4096 fabric has ~135k wired input ports x VLs, and giving each
// its own individually-allocated container costs ~0.5 KiB of allocator
// overhead per buffer before a single packet arrives — tens of MiB of pure
// bookkeeping that dominated the heap curve in BENCH_scale.json. The arena
// replaces those allocations with one `reserve()` sized from the wired port
// count, and ports hold slices (pointer + implicit fixed capacity) instead
// of owning vectors.
//
// Allocation is bump-pointer only: slices are handed out once during fabric
// construction and live for the arena's lifetime. There is deliberately no
// per-slice free — resetting a warm fabric re-zeroes slice *contents*
// (VlBuffer::clear()), never the carving.
//
#include <cstddef>
#include <memory>
#include <stdexcept>

namespace ibadapt {

template <typename T>
class SlabArena {
 public:
  SlabArena() = default;

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;
  SlabArena(SlabArena&&) = default;
  SlabArena& operator=(SlabArena&&) = default;

  /// One-shot sizing: allocates `slots` value-initialized elements. Calling
  /// reserve again replaces the slab (any outstanding slices dangle), so the
  /// owner must do this exactly once, before carving.
  void reserve(std::size_t slots) {
    slab_ = slots > 0 ? std::make_unique<T[]>(slots) : nullptr;
    capacity_ = slots;
    used_ = 0;
  }

  /// Carve the next `count` slots. Throws when the slab was sized too small
  /// — a build-time accounting bug, not a runtime condition.
  T* allocate(std::size_t count) {
    if (count == 0) return nullptr;
    if (used_ + count > capacity_) {
      throw std::logic_error("SlabArena: slab exhausted (sizing bug)");
    }
    T* out = slab_.get() + used_;
    used_ += count;
    return out;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  bool contains(const T* p) const {
    return p != nullptr && p >= slab_.get() && p < slab_.get() + capacity_;
  }

 private:
  std::unique_ptr<T[]> slab_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace ibadapt
