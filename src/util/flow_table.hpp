#pragma once
//
// Per-flow counter table: a (src, dst)-keyed map of small trivially-copyable
// values (sequence counters, last-seen stamps) that behaves exactly like a
// zero-initialized dense src*N+dst array at every size.
//
// Dense N x N arrays are the natural layout at the paper's sizes (<= a few
// hundred nodes), but they are the dominant superlinear memory term at the
// 1024-switch scale: two such tables at 4096 hosts cost 128 MiB before the
// first packet moves, swamping every per-switch structure. Below
// kDenseCellLimit cells the table IS the flat array (identical layout and
// hot-path cost); above it, storage switches to one hash map per source, so
// memory tracks the flows actually touched instead of all N^2 pairs. Both
// layouts read 0 for untouched flows, so results are bit-identical across
// the switchover.
//
// Threading contract (parallel kernel): the outer per-source level is sized
// once and never reallocated, so concurrent access to *different* sources
// is safe — which is exactly how the fabric uses it (a flow's counter is
// only touched from its source node's owning shard, or from serialized
// observer drains).
//
#include <cstddef>
#include <unordered_map>
#include <vector>

namespace ibadapt {

template <typename T>
class FlowTable {
 public:
  /// Largest table kept fully dense: 2^20 cells (e.g. 1024 x 1024) — 4 MiB
  /// of uint32 counters, cheap at small scale, while 4096-host fabrics
  /// (16.8M cells) go sparse.
  static constexpr std::size_t kDenseCellLimit = std::size_t{1} << 20;

  FlowTable() = default;
  FlowTable(int sources, int dests) { reset(sources, dests); }

  /// (Re)sizes the table and zeroes every flow.
  void reset(int sources, int dests) {
    dests_ = dests;
    const std::size_t cells =
        static_cast<std::size_t>(sources) * static_cast<std::size_t>(dests);
    dense_ = cells <= kDenseCellLimit;
    if (dense_) {
      cells_.assign(cells, T{});
      sparse_.clear();
    } else {
      cells_.clear();
      cells_.shrink_to_fit();
      sparse_.assign(static_cast<std::size_t>(sources), {});
    }
  }

  bool dense() const { return dense_; }

  /// Mutable reference to the flow's value; a never-touched flow reads T{}.
  T& at(int src, int dst) {
    if (dense_) {
      return cells_[static_cast<std::size_t>(src) * dests_ +
                    static_cast<std::size_t>(dst)];
    }
    return sparse_[static_cast<std::size_t>(src)][dst];
  }

 private:
  std::size_t dests_ = 0;
  bool dense_ = true;
  std::vector<T> cells_;
  std::vector<std::unordered_map<int, T>> sparse_;
};

}  // namespace ibadapt
