#pragma once
//
// Deterministic random-number utilities.
//
// Every stochastic component (topology generation, traffic, selection
// policies) draws from an explicitly seeded Rng so that simulations are
// bit-reproducible: same seed => same event trace.
//
#include <cstdint>
#include <random>
#include <vector>

namespace ibadapt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform 64-bit integer in [0, n) — n must be > 0.
  std::uint64_t uniformIndex(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  double uniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniformIndex(i)]);
    }
  }

  /// Derive an independent child seed (for per-run / per-node streams).
  std::uint64_t fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step — used to derive well-separated seeds from one master seed.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace ibadapt
