#pragma once
//
// Minimal fixed-size thread pool with two users:
//
//  * sweeps run *independent* simulations (different topologies / load
//    points) as one task each;
//  * a SimKernel::kParallel fabric keeps a lazily created pool whose
//    workers run the shard epoch loops of fabric/fabric_run.cpp.
//
// Either way results are identical regardless of the worker count: sweep
// tasks don't share state, and the parallel kernel is bit-deterministic by
// construction (conservative lookahead epochs + canonical event stamps).
//
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ibadapt {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Safe from any thread. Throws std::logic_error once
  /// destruction has begun (a silently dropped task would deadlock wait()).
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed. If any task threw, the
  /// first captured exception is rethrown here (and cleared, so the pool
  /// stays usable for subsequent batches).
  void wait();

  std::size_t workerCount() const { return threads_.size(); }

 private:
  void workerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;  // first task exception, rethrown by wait()
};

/// Run fn(i) for i in [0, n) across the pool and wait for completion.
void parallelForIndex(ThreadPool& pool, std::size_t n,
                      const std::function<void(std::size_t)>& fn);

}  // namespace ibadapt
