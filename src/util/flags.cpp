#include "util/flags.hpp"

#include <cstdlib>
#include <sstream>

namespace ibadapt {

namespace {
std::string stripDashes(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && s[i] == '-') ++i;
  return s.substr(i);
}
}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = stripDashes(argv[i]);
    auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";  // bare flag
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) > 0;
}

std::string Flags::str(const std::string& key, const std::string& dflt) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? dflt : it->second;
}

int Flags::integer(const std::string& key, int dflt) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? dflt : std::atoi(it->second.c_str());
}

double Flags::real(const std::string& key, double dflt) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? dflt : std::atof(it->second.c_str());
}

bool Flags::boolean(const std::string& key, bool dflt) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

std::vector<int> Flags::intList(const std::string& key,
                                const std::vector<int>& dflt) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  std::vector<int> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::atoi(item.c_str()));
  }
  return out;
}

std::vector<std::string> Flags::unknownKeys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    (void)v;
    if (!queried_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace ibadapt
