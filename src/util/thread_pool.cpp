#include "util/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace ibadapt {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      // Failing loudly beats the alternative: a task queued after the
      // destructor has begun may never run (workers exit once the queue
      // drains), so a silent accept would deadlock a later wait().
      throw std::logic_error("ThreadPool::submit: pool is shutting down");
    }
    tasks_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
  if (firstError_) {
    std::rethrow_exception(std::exchange(firstError_, nullptr));
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not escape the worker (std::terminate) or skip
    // the inFlight_ decrement (wait() would deadlock). Capture the first
    // exception and surface it from wait().
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (err && !firstError_) firstError_ = std::move(err);
      if (--inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void parallelForIndex(ThreadPool& pool, std::size_t n,
                      const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait();
}

}  // namespace ibadapt
