#pragma once
//
// Fundamental identifier and time types shared across the library.
//
// The simulator models time as integer nanoseconds: every timing constant in
// the paper (100 ns routing delay, 4 ns/byte 1X serialization, 100 ns wire
// propagation) is an exact integer, so no floating-point clock is needed.
//
#include <cstdint>
#include <limits>

namespace ibadapt {

/// Simulation time in nanoseconds.
using SimTime = std::int64_t;

/// Sentinel "never" timestamp.
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/// Switch index within a subnet (0-based, dense).
using SwitchId = std::int32_t;

/// End-node (channel-adapter port) index within a subnet (0-based, dense).
using NodeId = std::int32_t;

/// Port index within a switch or CA.
using PortIndex = std::int32_t;

/// InfiniBand local identifier. Real IBA LIDs are 16-bit; LID 0 is reserved.
using Lid = std::uint32_t;

/// Virtual-lane index (IBA supports up to 16 VLs, VL15 is management-only).
using VlIndex = std::int32_t;

inline constexpr PortIndex kInvalidPort = -1;
inline constexpr Lid kInvalidLid = 0;
inline constexpr std::int32_t kInvalidId = -1;

/// 64-byte flow-control credit blocks (IBA: FCCL counts 64-byte units).
inline constexpr int kBytesPerCredit = 64;

/// Number of credits needed to buffer a packet of `bytes` bytes.
constexpr int creditsForBytes(int bytes) noexcept {
  return (bytes + kBytesPerCredit - 1) / kBytesPerCredit;
}

}  // namespace ibadapt
