#pragma once
//
// High-level experiment front-end: one struct of knobs in, one struct of
// results out. This is the public API the examples and benches use.
//
#include <cstdint>
#include <memory>
#include <string>

#include "check/invariant_watchdog.hpp"
#include "fabric/params.hpp"
#include "fault/fault_campaign.hpp"
#include "host/reliable_transport.hpp"
#include "routing/updown.hpp"
#include "stats/resilience.hpp"
#include "topology/generators.hpp"
#include "traffic/synthetic.hpp"
#include "util/types.hpp"

namespace ibadapt {

enum class TopologyKind {
  kIrregular,
  kRing,
  kMesh2D,
  kTorus2D,
  kHypercube,
  kFatTree,    // k-ary n-tree; hosts on leaf switches only
  kDragonfly,  // group cliques + seed-permuted global links
};

struct SimParams {
  // ---- topology ---------------------------------------------------------
  TopologyKind topoKind = TopologyKind::kIrregular;
  int numSwitches = 8;     // irregular / ring
  int linksPerSwitch = 4;  // irregular: inter-switch ports ("4/6 links")
  /// Nodes per switch (irregular/regular kinds); for kFatTree this is
  /// hosts per *leaf* switch and for kDragonfly hosts per router.
  int nodesPerSwitch = 4;
  int meshWidth = 4;   // mesh / torus
  int meshHeight = 4;  // mesh / torus
  int hypercubeDim = 3;
  int fatTreeArity = 4;   // k of the k-ary n-tree
  int fatTreeLevels = 3;  // n (switch tiers)
  int dragonflyRoutersPerGroup = 4;  // a
  int dragonflyGlobalPerRouter = 1;  // h
  int dragonflyGroups = 0;           // g; 0 = balanced maximum a*h+1
  std::uint64_t topoSeed = 1;

  // ---- fabric (paper defaults) -----------------------------------------
  FabricParams fabric;
  RootSelection rootSelection = RootSelection::kHighestDegree;
  /// > 0: replace switch adaptivity with the source-multipath baseline
  /// (paper §1 motivation): this many deterministic up*/down* planes per
  /// destination, chosen per packet at the source. Requires
  /// fabric.numOptions == 1 and 2^lmc >= planes.
  int sourceMultipathPlanes = 0;
  /// APM coexistence (paper §4.1): number of path sets programmed into each
  /// LID block (needs 2^lmc >= apmPathSets * numOptions) and the set the
  /// senders actually use.
  int apmPathSets = 1;
  int apmActiveSet = 0;

  // ---- traffic ----------------------------------------------------------
  TrafficPattern pattern = TrafficPattern::kUniform;
  int packetBytes = 32;
  double adaptiveFraction = 1.0;
  double loadBytesPerNsPerNode = 0.05;
  bool saturation = false;
  double hotspotFraction = 0.1;
  NodeId hotspotNode = kInvalidId;
  int localityWindow = 8;
  double burstiness = 0.0;
  double burstGapMeanNs = 20'000.0;
  /// kIncast: synchronized burst size / epoch period (see TrafficSpec).
  int incastBurstPackets = 8;
  SimTime incastPeriodNs = 50'000;
  /// kPermStorm: rotation schedule of fixed-point-free permutations.
  int stormEpochs = 4;
  SimTime stormPeriodNs = 100'000;
  /// Service levels used by traffic (uniformly at random); 0 = one per
  /// data VL, so multi-VL fabrics are actually exercised.
  int trafficSls = 0;
  std::uint64_t trafficSeed = 7;

  // ---- congestion management (src/congestion) ---------------------------
  /// Master switch for the full loop: switch-side hysteresis detection +
  /// FECN marking (per output port/VL), destination echo back to the source
  /// over the transport ack path, and source-side AIMD injection pacing.
  /// Implies the reliable transport (notifications ride its ack path), so
  /// it is incompatible with saturation mode. Detection knobs live in
  /// `congestion`; reaction knobs in `transport.throttle` (its `enabled`
  /// and `nsPerByte` are set automatically from this switch).
  bool congestionControl = false;
  CongestionDetectSpec congestion;

  // ---- measurement ------------------------------------------------------
  std::uint64_t warmupPackets = 5000;
  std::uint64_t measurePackets = 30000;
  SimTime maxSimTimeNs = 200'000'000;
  SimTime watchdogPeriodNs = 500'000;
  int watchdogStallLimit = 10;

  // ---- robustness (fault campaign + end-to-end reliability) -------------
  /// Scripted link faults/recoveries; non-empty (or faultMtbfNs > 0) runs
  /// the simulation under a FaultCampaign instead of a plain Fabric::run.
  std::vector<ScriptedFault> scriptedFaults;
  /// Stochastic fault layer (0 = off): mean time between link failures and
  /// mean time to repair, exponential, deterministic in faultSeed.
  double faultMtbfNs = 0.0;
  double faultMttrNs = 0.0;
  std::uint64_t faultSeed = 99;
  int maxStochasticFaults = 64;
  bool faultKeepConnected = true;
  /// SM re-sweep latency after each fault/recovery; < 0 disables automatic
  /// re-sweeps (stale tables persist; only APM/retransmission mask faults).
  SimTime sweepDelayNs = 50'000;
  /// Run the escape-plane/credit audit after every sweep.
  bool auditAfterSweep = true;
  /// How SM sweeps execute: kInstantSweep (seed semantics, zero-cost
  /// in-place rewrite), kDrainAndSweep (pause injection, drain, rewrite),
  /// or kLiveEpochSwap (background replan + staged SMP install + epoch
  /// swap under traffic). See subnet/reconfig.hpp.
  ReconfigSpec reconfig;
  /// Wrap traffic in the host-side retransmission layer (open-loop traffic
  /// only; incompatible with saturation mode).
  bool reliableTransport = false;
  ReliableTransportSpec transport;

  // ---- transient faults (corruption & credit loss) -----------------------
  /// Per-bit error rate on every link hop; corrupted frames are judged by
  /// the receiver's VCRC/ICRC and dropped when caught (end-to-end
  /// retransmission recovers them). > 0 routes the run through a
  /// FaultCampaign even with no link failures configured.
  double berPerBit = 0.0;
  /// Probability a credit-update token is lost; leaked credits heal via the
  /// periodic link-level credit resync. > 0 also routes through a campaign.
  double creditLossRate = 0.0;
  std::uint64_t transientFaultSeed = 0x7a11;
  SimTime creditResyncPeriodNs = 100'000;
  int creditResyncDetectPeriods = 2;

  // ---- invariant watchdog (always on by default) --------------------------
  /// Periodic runtime invariant checks: credit conservation, split-buffer
  /// bounds, and forward progress with wait-for-graph deadlock/livelock
  /// classification. On by default — the checks are pure reads under
  /// WatchdogPolicy::kRecord and never perturb the event trace.
  bool invariantChecks = true;
  SimTime invariantPeriodNs = 250'000;
  WatchdogPolicy invariantPolicy = WatchdogPolicy::kRecord;
  SimTime invariantMaxDrainAgeNs = 50'000'000;
};

struct SimResults {
  // Latency (measurement window), nanoseconds.
  double avgLatencyNs = 0.0;
  double minLatencyNs = 0.0;
  double maxLatencyNs = 0.0;
  double stddevLatencyNs = 0.0;
  double p50LatencyNs = 0.0;
  double p95LatencyNs = 0.0;
  double p99LatencyNs = 0.0;
  double p999LatencyNs = 0.0;
  double avgLatencyAdaptiveNs = 0.0;
  double avgLatencyDeterministicNs = 0.0;

  // Whole-message latency (first segment generated -> last delivered);
  // equals the packet distribution when traffic is unsegmented.
  double msgP50LatencyNs = 0.0;
  double msgP99LatencyNs = 0.0;
  double msgP999LatencyNs = 0.0;
  std::uint64_t messagesMeasured = 0;

  // Traffic, in the paper's units.
  double acceptedBytesPerNsPerSwitch = 0.0;
  double offeredBytesPerNsPerSwitch = 0.0;

  // Volumes.
  std::uint64_t generated = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t measured = 0;
  /// Discrete events processed by the kernel — the numerator of the
  /// events/sec figure the perf baseline reports. Identical across
  /// SimKernel choices (both kernels process the same event stream).
  std::uint64_t kernelEvents = 0;

  // Path behaviour.
  double avgHops = 0.0;
  double adaptiveForwardFraction = 0.0;  // switch forwards via adaptive options
  double escapeForwardFraction = 0.0;

  // Inter-switch link usage over the whole run (fraction of capacity).
  double maxLinkUtilization = 0.0;
  double meanLinkUtilization = 0.0;

  // Wall-clock phase breakdown (measurement metadata, NOT part of the
  // deterministic result: two bit-identical runs report different times).
  /// Fabric construction + attachments (topology build excluded).
  double setupWallMs = 0.0;
  /// Routing-table planning + installation (SubnetManager::configure on
  /// the fresh path; reset + image reinstall on the warm-session path).
  double planWallMs = 0.0;
  /// Event-loop execution (Fabric::run / FaultCampaign::run).
  double runWallMs = 0.0;

  // Health.
  bool measurementComplete = false;
  bool deadlockSuspected = false;
  bool livePacketLimitHit = false;
  std::uint64_t inOrderViolations = 0;
  SimTime simEndTimeNs = 0;
  /// Worker threads (shards) the engine actually used: fabric.threads
  /// clamped to the switch count; 1 for the sequential kernels. Results are
  /// bit-identical whatever this value — it only reports the parallelism.
  int threadsUsed = 1;

  // Parallel-kernel proxy metrics (deterministic for a fixed shard count
  // and partition strategy, so they gate partition quality on any host —
  // including 1-core CI boxes where wall-clock speedup is unmeasurable).
  // NOT part of the bit-identity contract: they legitimately differ across
  // thread counts (a 1-shard run has no cross-shard traffic at all).
  /// Events handed between shards through SPSC mailboxes over the run.
  std::uint64_t crossShardMessages = 0;
  /// Conservative-lookahead windows the engine executed.
  std::uint64_t windowsExecuted = 0;
  /// Inter-switch links whose endpoints landed in different shards.
  std::uint64_t shardCutLinks = 0;
  /// All inter-switch links in the topology (cut-fraction denominator).
  std::uint64_t shardTotalLinks = 0;
  /// Heaviest shard weight / ideal weight (1.0 = perfectly balanced).
  double shardImbalance = 1.0;

  // Resilience (fault campaign + reliable transport; zeros when neither
  // was configured).
  bool faultCampaignRan = false;
  ResilienceStats resilience;
  /// First-transmission-to-first-delivery mean of transport-tracked packets.
  double e2eLatencyNs = 0.0;

  /// Invariant watchdog verdict (zeros when invariantChecks was off).
  WatchdogStats invariants;

  /// Congestion-management counters (zeros when congestionControl was off).
  CongestionStats congestion;

  std::string summary() const;
};

/// Builds the topology described by `p` (deterministic in topoSeed).
Topology buildTopology(const SimParams& p);

/// Runs one simulation end to end: topology, subnet init, traffic, stats.
SimResults runSimulation(const SimParams& p);

/// Same, on a caller-provided topology (reused across parameter sweeps so
/// the paper's "same 10 topologies, different configs" method is exact).
SimResults runSimulationOn(const Topology& topo, const SimParams& p);

/// Saturation throughput (bytes/ns/switch): full-load injection, measured
/// over the packet budget in `p`.
double measureSaturationThroughput(const Topology& topo, SimParams p);

/// Warm-fabric session: pay the topology build, fabric construction, and
/// LFT planning cost once, then run many parameter points on the same
/// fabric. The first run() builds the fabric and plans/installs the routing
/// image; every later run() resets the fabric's dynamic state (drained
/// queues, zeroed stats and flow tables, recovered links, re-seeded RNG
/// streams) and reinstalls the kept image rows — no topology walk, no
/// routing computation. A warm run with the same parameters produces
/// SimResults bit-identical to a fresh build (the *WallMs fields are
/// measurement metadata and excepted), including after a fault campaign
/// mutated link state and tables.
///
/// The fabric/routing structure — `fabric`, `rootSelection`,
/// `sourceMultipathPlanes`, `apmPathSets`, `congestionControl`/`congestion`
/// — is fixed by the constructor's SimParams; run(p) takes those fields
/// from the session base and honors only p's traffic, measurement, fault,
/// and transport knobs. Needing a different kernel or buffer geometry means
/// a new session.
class SimSession {
 public:
  /// Builds the topology described by `p` and fixes the session structure.
  explicit SimSession(const SimParams& p);
  /// Same, on a caller-provided topology (sweep reuse).
  SimSession(Topology topo, const SimParams& p);
  ~SimSession();

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  /// Run one parameter point (see class comment for which fields of `p`
  /// are honored). First call = fresh build; later calls = warm reset.
  SimResults run(const SimParams& p);
  /// Run the session's base parameter point.
  SimResults run();

  const Topology& topology() const { return topo_; }
  /// Completed run() calls (0 = the next run is the fresh one).
  int runsCompleted() const { return runsCompleted_; }

 private:
  struct Impl;  // Fabric + LFT image (keeps fabric.hpp out of this header)
  Topology topo_;
  SimParams base_;
  std::unique_ptr<Impl> impl_;
  int runsCompleted_ = 0;
};

}  // namespace ibadapt
