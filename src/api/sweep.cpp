#include "api/sweep.hpp"

#include <algorithm>
#include <numeric>
#include <thread>

#include "util/thread_pool.hpp"

namespace ibadapt {

std::vector<SimResults> runSweep(const std::vector<SimParams>& params,
                                 int threads) {
  std::vector<SimResults> results(params.size());
  // Bounded oversubscription: a sweep worker running a kParallel simulation
  // spawns that simulation's shard threads itself, so divide the thread
  // budget by the widest simulation in the batch instead of letting the two
  // levels multiply. Purely a scheduling choice — per-simulation results
  // are identical for any worker count.
  int widest = 1;
  for (const SimParams& p : params) {
    if (p.fabric.kernel == SimKernel::kParallel) {
      widest = std::max(widest, std::max(1, p.fabric.threads));
    }
  }
  std::size_t budget = threads <= 0
                           ? std::max(1u, std::thread::hardware_concurrency())
                           : static_cast<std::size_t>(threads);
  ThreadPool pool(std::max<std::size_t>(
      1, budget / static_cast<std::size_t>(widest)));
  parallelForIndex(pool, params.size(), [&](std::size_t i) {
    results[i] = runSimulation(params[i]);
  });
  return results;
}

MinAvgMax summarize(const std::vector<double>& values) {
  MinAvgMax out;
  if (values.empty()) return out;
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  out.avg = std::accumulate(values.begin(), values.end(), 0.0) /
            static_cast<double>(values.size());
  return out;
}

PeakThroughput measurePeakThroughput(const Topology& topo, SimParams base,
                                     const RampOptions& ramp) {
  base.saturation = false;

  PeakThroughput out;
  auto probe = [&](double loadPerNode) {
    SimParams p = base;
    p.loadBytesPerNsPerNode = loadPerNode;
    const SimResults r = runSimulationOn(topo, p);
    ThroughputCurvePoint cp;
    cp.offeredBytesPerNsPerSwitch =
        loadPerNode * (static_cast<double>(topo.numNodes()) /
                       static_cast<double>(topo.numSwitches()));
    cp.acceptedBytesPerNsPerSwitch = r.acceptedBytesPerNsPerSwitch;
    cp.avgLatencyNs = r.avgLatencyNs;
    cp.saturated = r.acceptedBytesPerNsPerSwitch <
                       ramp.saturationRatio * cp.offeredBytesPerNsPerSwitch ||
                   !r.measurementComplete;
    out.curve.push_back(cp);
    return cp;
  };
  auto noteStable = [&](const ThroughputCurvePoint& cp) {
    if (!cp.saturated && cp.acceptedBytesPerNsPerSwitch > out.peakAccepted) {
      out.peakAccepted = cp.acceptedBytesPerNsPerSwitch;
      out.peakOffered = cp.offeredBytesPerNsPerSwitch;
    }
  };

  // Geometric ramp until saturation is confirmed.
  double load = ramp.startLoadPerNode;
  double lastStable = 0.0;
  double firstSaturated = 0.0;
  int saturatedStreak = 0;
  for (int point = 0; point < ramp.maxPoints; ++point) {
    const ThroughputCurvePoint cp = probe(load);
    noteStable(cp);
    if (cp.saturated) {
      if (firstSaturated == 0.0) firstSaturated = load;
      if (++saturatedStreak >= ramp.postPeakPoints) break;
    } else {
      lastStable = load;
      firstSaturated = 0.0;
      saturatedStreak = 0;
    }
    if (load >= ramp.maxLoadPerNode) break;
    load = std::min(load * ramp.growth, ramp.maxLoadPerNode);
  }

  // Bisection between the stable and saturated loads tightens the knee.
  if (lastStable > 0.0 && firstSaturated > lastStable) {
    double lo = lastStable;
    double hi = firstSaturated;
    for (int i = 0; i < ramp.bisectIterations; ++i) {
      const double mid = 0.5 * (lo + hi);
      const ThroughputCurvePoint cp = probe(mid);
      noteStable(cp);
      if (cp.saturated) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }

  std::sort(out.curve.begin(), out.curve.end(),
            [](const ThroughputCurvePoint& a, const ThroughputCurvePoint& b) {
              return a.offeredBytesPerNsPerSwitch < b.offeredBytesPerNsPerSwitch;
            });

  // Degenerate case: even the lowest load saturates (e.g. strong hot-spot).
  // Report the best accepted traffic observed.
  if (out.peakAccepted == 0.0) {
    for (const auto& cp : out.curve) {
      if (cp.acceptedBytesPerNsPerSwitch > out.peakAccepted) {
        out.peakAccepted = cp.acceptedBytesPerNsPerSwitch;
        out.peakOffered = cp.offeredBytesPerNsPerSwitch;
      }
    }
  }
  return out;
}

ThroughputFactors measureThroughputFactors(SimParams base, int numTopologies,
                                           std::uint64_t seedBase,
                                           const RampOptions& ramp,
                                           int threads) {
  ThroughputFactors out;
  out.adaptiveThroughput.resize(static_cast<std::size_t>(numTopologies));
  out.deterministicThroughput.resize(static_cast<std::size_t>(numTopologies));

  // Each (topology, mode) ramp is one task; ramps are sequential inside.
  ThreadPool pool(threads <= 0 ? 0 : static_cast<std::size_t>(threads));
  parallelForIndex(
      pool, static_cast<std::size_t>(numTopologies) * 2, [&](std::size_t i) {
        const int t = static_cast<int>(i / 2);
        const bool adaptive = (i % 2) == 0;
        SimParams p = base;
        p.topoSeed = seedBase + static_cast<std::uint64_t>(t);
        p.adaptiveFraction = adaptive ? 1.0 : 0.0;
        const Topology topo = buildTopology(p);
        const PeakThroughput peak = measurePeakThroughput(topo, p, ramp);
        if (adaptive) {
          out.adaptiveThroughput[static_cast<std::size_t>(t)] =
              peak.peakAccepted;
        } else {
          out.deterministicThroughput[static_cast<std::size_t>(t)] =
              peak.peakAccepted;
        }
      });

  std::vector<double> factors;
  for (int t = 0; t < numTopologies; ++t) {
    const double d = out.deterministicThroughput[static_cast<std::size_t>(t)];
    const double a = out.adaptiveThroughput[static_cast<std::size_t>(t)];
    if (d > 0.0) factors.push_back(a / d);
  }
  out.factor = summarize(factors);
  return out;
}

}  // namespace ibadapt
