#include "api/simulation.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <string>

#include "fabric/fabric.hpp"
#include "routing/lft_image.hpp"
#include "stats/collector.hpp"
#include "subnet/subnet_manager.hpp"

namespace ibadapt {

namespace {

using WallClock = std::chrono::steady_clock;

double wallMsSince(WallClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - t0)
      .count();
}

FabricParams effectiveFabricParams(const SimParams& p) {
  FabricParams fparams = p.fabric;
  if (p.congestionControl) {
    fparams.congestion = p.congestion;
    fparams.congestion.enabled = true;
  }
  return fparams;
}

SubnetParams subnetParamsOf(const SimParams& p) {
  SubnetParams sp;
  sp.rootSelection = p.rootSelection;
  sp.sourceMultipathPlanes = p.sourceMultipathPlanes;
  sp.apmPathSets = p.apmPathSets;
  return sp;
}

/// Traffic attach, execution, and results harvest on an already configured
/// fabric — everything after setup/planning, shared by the fresh
/// (runSimulationOn) and warm (SimSession) paths. Fills runWallMs; the
/// caller fills setupWallMs / planWallMs.
SimResults executeOn(Fabric& fabric, const Topology& topo, const SimParams& p,
                     const SubnetParams& sp) {
  TrafficSpec ts;
  ts.multipathPlanes = p.sourceMultipathPlanes;
  ts.pathSetOffset = p.apmActiveSet * p.fabric.numOptions;
  ts.pattern = p.pattern;
  ts.numNodes = topo.numNodes();
  ts.packetBytes = p.packetBytes;
  ts.adaptiveFraction = p.adaptiveFraction;
  ts.loadBytesPerNsPerNode = p.loadBytesPerNsPerNode;
  ts.saturation = p.saturation;
  ts.hotspotFraction = p.hotspotFraction;
  ts.hotspotNode = p.hotspotNode;
  ts.localityWindow = p.localityWindow;
  ts.burstiness = p.burstiness;
  ts.burstGapMeanNs = p.burstGapMeanNs;
  ts.incastBurstPackets = p.incastBurstPackets;
  ts.incastPeriodNs = p.incastPeriodNs;
  ts.stormEpochs = p.stormEpochs;
  ts.stormPeriodNs = p.stormPeriodNs;
  ts.numSls = p.trafficSls > 0 ? p.trafficSls : p.fabric.numVls;
  SyntheticTraffic traffic(ts, p.trafficSeed ^ 0xfeedULL);

  StatsCollector::Config sc;
  sc.warmupPackets = p.warmupPackets;
  sc.measurePackets = p.measurePackets;
  StatsCollector stats(sc, topo.numNodes());
  stats.bindFabric(&fabric);

  // With reliability enabled the transport interposes on both planes: it
  // is the fabric's traffic source (sequence stamping + retransmissions)
  // and its delivery observer (dedup before the stats collector).
  std::optional<ReliableTransport> transport;
  if (p.reliableTransport || p.congestionControl) {
    // Keep the out-of-band ack delay at or above the wire latency: acks are
    // then never visible inside the lookahead window that produced them,
    // which keeps transport runs bit-identical for every fabric.threads
    // value (see the threading note in host/reliable_transport.hpp).
    ReliableTransportSpec tspec = p.transport;
    if (tspec.ackDelayNs < p.fabric.linkPropagationNs) {
      tspec.ackDelayNs = p.fabric.linkPropagationNs;
    }
    if (p.congestionControl) {
      tspec.throttle.enabled = true;
      tspec.throttle.nsPerByte = p.fabric.nsPerByte;
    }
    // The ack deque is written from observer context at window barriers, so
    // no window may extend past the ack delay of the events it processes —
    // otherwise an ack could become visible inside the window that produced
    // it. Run-scoped: reset() restores the configured cap.
    fabric.limitWindowCap(tspec.ackDelayNs);
    transport.emplace(traffic, topo.numNodes(), tspec);
    transport->attachObserver(&stats);
    fabric.attachTraffic(&*transport, p.trafficSeed);
    fabric.attachObserver(&*transport);
  } else {
    fabric.attachTraffic(&traffic, p.trafficSeed);
    fabric.attachObserver(&stats);
  }
  std::optional<InvariantWatchdog> watchdog;
  if (p.invariantChecks) {
    WatchdogSpec ws;
    ws.periodNs = p.invariantPeriodNs;
    ws.policy = p.invariantPolicy;
    ws.maxDrainAgeNs = p.invariantMaxDrainAgeNs;
    watchdog.emplace(ws);
    watchdog->attachTo(fabric);
  }
  fabric.start();

  RunLimits limits;
  limits.endTime = p.maxSimTimeNs;
  limits.watchdogPeriodNs = p.watchdogPeriodNs;
  limits.watchdogStallLimit = p.watchdogStallLimit;

  const bool runCampaign = !p.scriptedFaults.empty() || p.faultMtbfNs > 0.0 ||
                           p.berPerBit > 0.0 || p.creditLossRate > 0.0;
  std::optional<FaultCampaign> campaign;
  const auto runStart = WallClock::now();
  // The campaign replans through the subnet manager; a fresh manager here is
  // a pointer wrapper over the fabric, not a reconfiguration.
  SubnetManager sm(fabric);
  if (runCampaign) {
    FaultCampaignSpec fc;
    fc.scripted = p.scriptedFaults;
    fc.mtbfNs = p.faultMtbfNs;
    fc.mttrNs = p.faultMttrNs;
    fc.seed = p.faultSeed;
    fc.maxStochasticFaults = p.maxStochasticFaults;
    fc.keepConnected = p.faultKeepConnected;
    fc.sweepDelayNs = p.sweepDelayNs;
    fc.subnet = sp;
    fc.auditAfterSweep = p.auditAfterSweep;
    fc.reconfig = p.reconfig;
    fc.transient.berPerBit = p.berPerBit;
    fc.transient.creditLossRate = p.creditLossRate;
    fc.transient.seed = p.transientFaultSeed;
    fc.transient.resyncPeriodNs = p.creditResyncPeriodNs;
    fc.transient.resyncDetectPeriods = p.creditResyncDetectPeriods;
    campaign.emplace(fabric, sm, fc);
    campaign->run(limits);
  } else {
    fabric.run(limits);
  }

  SimResults r;
  r.runWallMs = wallMsSince(runStart);
  if (campaign) {
    r.faultCampaignRan = true;
    r.resilience = campaign->stats();
  }
  if (transport) {
    r.resilience.retransmitsSent = transport->retransmitsSent();
    r.resilience.duplicatesSuppressed = transport->duplicatesSuppressed();
    r.resilience.abandonedPackets = transport->abandoned();
    r.resilience.uniqueSent = transport->uniqueSent();
    r.resilience.uniqueDelivered = transport->uniqueDelivered();
    r.e2eLatencyNs = transport->endToEndLatency().mean();
  }
  if (watchdog) r.invariants = watchdog->stats();
  const auto& lat = stats.latency();
  r.avgLatencyNs = lat.mean();
  r.minLatencyNs = static_cast<double>(lat.min());
  r.maxLatencyNs = static_cast<double>(lat.max());
  r.stddevLatencyNs = lat.stddev();
  r.p50LatencyNs = lat.quantile(0.50);
  r.p95LatencyNs = lat.quantile(0.95);
  r.p99LatencyNs = lat.quantile(0.99);
  r.p999LatencyNs = lat.quantile(0.999);
  r.avgLatencyAdaptiveNs = stats.latencyAdaptive().mean();
  r.avgLatencyDeterministicNs = stats.latencyDeterministic().mean();
  const auto& msgLat = stats.messageLatency();
  r.msgP50LatencyNs = msgLat.quantile(0.50);
  r.msgP99LatencyNs = msgLat.quantile(0.99);
  r.msgP999LatencyNs = msgLat.quantile(0.999);
  r.messagesMeasured = msgLat.count();

  r.acceptedBytesPerNsPerSwitch =
      stats.acceptedBytesPerNs() / topo.numSwitches();
  // Average nodes per switch, not nodesPerSwitch(): hierarchical topologies
  // (fat-tree) attach hosts to leaf switches only.
  r.offeredBytesPerNsPerSwitch =
      p.saturation ? 0.0
                   : p.loadBytesPerNsPerNode *
                         (static_cast<double>(topo.numNodes()) /
                          static_cast<double>(topo.numSwitches()));

  const auto& c = fabric.counters();
  if (p.congestionControl) {
    r.congestion.fecnMarked = c.fecnMarked;
    r.congestion.congOnsets = c.congOnsets;
    r.congestion.congestedPortNs = c.congestedPortNs;
    r.congestion.zeroCreditStallNs = c.zeroCreditNs;
    r.congestion.cnpsReceived = transport->cnpsReceived();
    r.congestion.rateDecreases = transport->rateDecreases();
    r.congestion.packetsThrottled = transport->packetsThrottled();
    r.congestion.heldAtEnd = transport->throttledHeld();
  }
  r.generated = c.generated;
  r.injected = c.injected;
  r.delivered = c.delivered;
  r.dropped = c.dropped;
  r.measured = stats.measuredPackets();
  r.kernelEvents = c.events;
  r.avgHops = c.delivered
                  ? static_cast<double>(c.hopSum) /
                        static_cast<double>(c.delivered)
                  : 0.0;
  const double forwards =
      static_cast<double>(c.adaptiveForwards + c.escapeForwards);
  if (forwards > 0) {
    r.adaptiveForwardFraction =
        static_cast<double>(c.adaptiveForwards) / forwards;
    r.escapeForwardFraction = static_cast<double>(c.escapeForwards) / forwards;
  }

  // Inter-switch link utilization over the whole run.
  if (fabric.now() > 0) {
    double sum = 0.0;
    int links = 0;
    const double capacityBytes =
        static_cast<double>(fabric.now()) / p.fabric.nsPerByte;
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
      // Scan from port 0: with per-switch node attachment the inter-switch
      // range starts at a per-switch offset; the PeerKind check filters.
      for (PortIndex port = 0; port < topo.portsPerSwitch(); ++port) {
        if (fabric.topology().peer(sw, port).kind != PeerKind::kSwitch) {
          continue;
        }
        const double u =
            static_cast<double>(fabric.outputBytesSent(sw, port)) /
            capacityBytes;
        sum += u;
        r.maxLinkUtilization = std::max(r.maxLinkUtilization, u);
        ++links;
      }
    }
    if (links > 0) r.meanLinkUtilization = sum / links;
  }

  r.measurementComplete = stats.measurementComplete();
  r.deadlockSuspected = fabric.deadlockSuspected();
  r.livePacketLimitHit = fabric.livePacketLimitHit();
  r.inOrderViolations = stats.inOrder().violations();
  r.simEndTimeNs = fabric.now();
  r.threadsUsed = fabric.shardCount();
  r.crossShardMessages = fabric.crossShardMessages();
  r.windowsExecuted = fabric.windowsExecuted();
  r.shardCutLinks = fabric.partitionCutLinks();
  r.shardTotalLinks = fabric.partitionTotalLinks();
  r.shardImbalance = fabric.partitionImbalance();
  return r;
}

void throwIfCongestionSaturation(const SimParams& p, const char* where) {
  if (p.congestionControl && p.saturation) {
    throw std::invalid_argument(
        std::string(where) +
        ": congestion control needs the reliable transport, "
        "which requires an open-loop (non-saturation) source");
  }
}

}  // namespace

Topology buildTopology(const SimParams& p) {
  switch (p.topoKind) {
    case TopologyKind::kIrregular: {
      Rng rng(p.topoSeed);
      IrregularSpec spec;
      spec.numSwitches = p.numSwitches;
      spec.linksPerSwitch = p.linksPerSwitch;
      spec.nodesPerSwitch = p.nodesPerSwitch;
      return makeIrregular(spec, rng);
    }
    case TopologyKind::kRing:
      return makeRing(p.numSwitches, p.nodesPerSwitch);
    case TopologyKind::kMesh2D:
      return makeMesh2D(p.meshWidth, p.meshHeight, p.nodesPerSwitch);
    case TopologyKind::kTorus2D:
      return makeTorus2D(p.meshWidth, p.meshHeight, p.nodesPerSwitch);
    case TopologyKind::kHypercube:
      return makeHypercube(p.hypercubeDim, p.nodesPerSwitch);
    case TopologyKind::kFatTree: {
      FatTreeSpec spec;
      spec.arity = p.fatTreeArity;
      spec.levels = p.fatTreeLevels;
      spec.hostsPerLeaf = p.nodesPerSwitch;
      return makeFatTree(spec);
    }
    case TopologyKind::kDragonfly: {
      DragonflySpec spec;
      spec.routersPerGroup = p.dragonflyRoutersPerGroup;
      spec.hostsPerRouter = p.nodesPerSwitch;
      spec.globalPerRouter = p.dragonflyGlobalPerRouter;
      spec.groups = p.dragonflyGroups;
      spec.seed = p.topoSeed;
      return makeDragonfly(spec);
    }
  }
  throw std::invalid_argument("buildTopology: unknown kind");
}

SimResults runSimulation(const SimParams& p) {
  const Topology topo = buildTopology(p);
  return runSimulationOn(topo, p);
}

SimResults runSimulationOn(const Topology& topo, const SimParams& p) {
  throwIfCongestionSaturation(p, "runSimulationOn");

  const auto setupStart = WallClock::now();
  Fabric fabric(topo, effectiveFabricParams(p));
  const double setupMs = wallMsSince(setupStart);

  const auto planStart = WallClock::now();
  SubnetManager sm(fabric);
  const SubnetParams sp = subnetParamsOf(p);
  sm.configure(sp);
  const double planMs = wallMsSince(planStart);

  SimResults r = executeOn(fabric, topo, p, sp);
  r.setupWallMs = setupMs;
  r.planWallMs = planMs;
  return r;
}

double measureSaturationThroughput(const Topology& topo, SimParams p) {
  p.saturation = true;
  const SimResults r = runSimulationOn(topo, p);
  return r.acceptedBytesPerNsPerSwitch;
}

// ---- SimSession: warm-fabric reuse across parameter points ----------------

struct SimSession::Impl {
  std::optional<Fabric> fabric;  // built on the first run()
  LftImage image;                // materialized plan, reinstalled per run
};

namespace {

/// Program every switch's full LFT row from the materialized image. A full
/// row covers [0, lidLimit), so kUnset bytes clear any stale entries a
/// previous run's fault sweep may have left behind.
void installImage(Fabric& fabric, const LftImage& image) {
  for (std::size_t sw = 0; sw < image.entries.size(); ++sw) {
    const auto& row = image.entries[sw];
    fabric.setLftBlock(static_cast<SwitchId>(sw), 0, row.data(), row.size());
  }
}

}  // namespace

SimSession::SimSession(const SimParams& p) : SimSession(buildTopology(p), p) {}

SimSession::SimSession(Topology topo, const SimParams& p)
    : topo_(std::move(topo)), base_(p), impl_(std::make_unique<Impl>()) {}

SimSession::~SimSession() = default;

SimResults SimSession::run() { return run(base_); }

SimResults SimSession::run(const SimParams& p) {
  // The session structure is fixed at construction: force every structural
  // knob back to the base point so a per-run params object can't silently
  // diverge from the fabric that was actually built.
  SimParams eff = p;
  eff.fabric = base_.fabric;
  eff.rootSelection = base_.rootSelection;
  eff.sourceMultipathPlanes = base_.sourceMultipathPlanes;
  eff.apmPathSets = base_.apmPathSets;
  eff.congestionControl = base_.congestionControl;
  eff.congestion = base_.congestion;
  throwIfCongestionSaturation(eff, "SimSession::run");
  const SubnetParams sp = subnetParamsOf(eff);

  double setupMs = 0.0;
  double planMs = 0.0;
  if (!impl_->fabric) {
    // Fresh path: pay topology wiring and route planning once. The image is
    // materialized (not streamed) because warm runs reinstall it from here.
    const auto setupStart = WallClock::now();
    impl_->fabric.emplace(topo_, effectiveFabricParams(eff));
    setupMs = wallMsSince(setupStart);
    const auto planStart = WallClock::now();
    impl_->image =
        buildLftImage(topo_, SubnetManager::planSpec(*impl_->fabric, sp));
    installImage(*impl_->fabric, impl_->image);
    planMs = wallMsSince(planStart);
  } else {
    // Warm path: zero dynamic state in place and reinstall the cached image
    // (fault campaigns in a previous run may have reswept the tables).
    const auto setupStart = WallClock::now();
    impl_->fabric->reset();
    setupMs = wallMsSince(setupStart);
    const auto planStart = WallClock::now();
    installImage(*impl_->fabric, impl_->image);
    planMs = wallMsSince(planStart);
  }

  SimResults r = executeOn(*impl_->fabric, topo_, eff, sp);
  r.setupWallMs = setupMs;
  r.planWallMs = planMs;
  ++runsCompleted_;
  return r;
}

std::string SimResults::summary() const {
  std::ostringstream os;
  os << "delivered=" << delivered << " measured=" << measured
     << " avgLat=" << avgLatencyNs << "ns"
     << " accepted=" << acceptedBytesPerNsPerSwitch << "B/ns/sw"
     << " avgHops=" << avgHops;
  if (deadlockSuspected) os << " [DEADLOCK]";
  if (!measurementComplete) os << " [incomplete]";
  if (inOrderViolations) os << " [OOO=" << inOrderViolations << "]";
  if (faultCampaignRan || resilience.uniqueSent > 0) {
    os << " | " << resilience.summary();
  }
  if (invariants.violations() > 0 || invariants.aborted) {
    os << " | " << invariants.summary();
  }
  if (congestion.fecnMarked > 0 || congestion.cnpsReceived > 0) {
    os << " | cc: fecn=" << congestion.fecnMarked
       << " cnp=" << congestion.cnpsReceived
       << " md=" << congestion.rateDecreases
       << " throttled=" << congestion.packetsThrottled;
  }
  return os.str();
}

}  // namespace ibadapt
