#pragma once
//
// Parameter-sweep helpers: run many independent simulations (optionally in
// parallel) and aggregate throughput factors the way the paper's Table 1
// does. Results are deterministic and independent of the worker count —
// every simulation is a pure function of its SimParams, including the
// in-simulation parallel kernel (SimKernel::kParallel is bit-identical for
// any fabric.threads). When the sweep batch contains parallel-kernel
// simulations, the pool is scaled down so pool workers times the widest
// simulation's shard threads stays within the requested thread budget
// (bounded oversubscription) — this changes only wall-clock, never output.
//
// Throughput is measured the way the paper reads it off its latency vs
// accepted-traffic curves: the knee — the largest accepted traffic at which
// the network is still *stable* (accepted ~= offered). Two naive
// alternatives fail: injecting at full overload under-reports adaptive
// routing (saturated buffers degrade traffic onto the non-minimal escape
// paths and throughput collapses), while "max accepted anywhere on the
// ramp" over-reports deterministic routing under non-uniform patterns
// (past saturation, cheap flows keep delivering at full rate while
// congested flows starve, so the accepted curve keeps creeping upward).
// The knee is found with a geometric ramp plus a short bisection.
//
#include <functional>
#include <vector>

#include "api/simulation.hpp"

namespace ibadapt {

/// Runs every SimParams (index-stable) using `threads` workers
/// (0 = hardware concurrency).
std::vector<SimResults> runSweep(const std::vector<SimParams>& params,
                                 int threads = 0);

/// min / avg / max summary over a set of per-topology values.
struct MinAvgMax {
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
};
MinAvgMax summarize(const std::vector<double>& values);

struct ThroughputCurvePoint {
  double offeredBytesPerNsPerSwitch = 0.0;
  double acceptedBytesPerNsPerSwitch = 0.0;
  double avgLatencyNs = 0.0;
  bool saturated = false;  // accepted fell measurably below offered
};

struct PeakThroughput {
  /// Knee throughput: largest stable accepted traffic, bytes/ns/switch.
  double peakAccepted = 0.0;
  /// Offered load (bytes/ns/switch) at which the knee was measured.
  double peakOffered = 0.0;
  std::vector<ThroughputCurvePoint> curve;
};

struct RampOptions {
  double startLoadPerNode = 0.01;  // bytes/ns/node
  double maxLoadPerNode = 0.25;    // 1X link data rate
  double growth = 1.3;             // multiplicative ramp step
  double saturationRatio = 0.93;   // accepted/offered below this = saturated
  int maxPoints = 24;
  /// Stop the ramp after this many consecutive saturated points.
  int postPeakPoints = 2;
  /// Bisection steps refining the knee between the last stable and the
  /// first saturated offered load.
  int bisectIterations = 3;
};

/// Load ramp on a fixed topology; returns the peak of the accepted curve.
PeakThroughput measurePeakThroughput(const Topology& topo, SimParams base,
                                     const RampOptions& ramp = {});

/// Throughput-increase factors (adaptive vs deterministic peak throughput)
/// over several random topologies generated from `base` with seeds
/// seedBase .. seedBase+numTopologies-1.
struct ThroughputFactors {
  MinAvgMax factor;
  std::vector<double> adaptiveThroughput;       // bytes/ns/switch
  std::vector<double> deterministicThroughput;  // bytes/ns/switch
};
ThroughputFactors measureThroughputFactors(SimParams base, int numTopologies,
                                           std::uint64_t seedBase,
                                           const RampOptions& ramp = {},
                                           int threads = 0);

}  // namespace ibadapt
