#pragma once
//
// Always-on runtime invariant watchdog: a periodic simulator event that
// audits the live fabric state against the properties the paper's design
// arguments rest on, and attributes any failure to a concrete culprit.
//
// Checked invariants (see EXPERIMENTS.md for the paper-section mapping):
//  * credit conservation — for every output port and VL, the downstream
//    credits the sender believes in, plus credits bound up in packets on
//    the wire, credit updates in flight back, credits stolen by a
//    transient-fault model awaiting resync, and the downstream buffer
//    occupancy must sum exactly to the buffer capacity (§3 credit-based
//    flow control); the CA injection path has the same ledger;
//  * split-buffer bounds — each VL buffer's occupancy equals the sum of
//    its stored packets' credits, never exceeds capacity, and the escape
//    head really is the first packet at or past the adaptive-region
//    boundary (§4.4 split buffer);
//  * forward progress — blocked buffer heads are explained: the
//    blocked-input -> awaited-output-credit wait-for graph is built, and a
//    cycle confined to escape resources is flagged as a deadlock (the
//    situation §4.4's up*/down* escape paths exist to preclude), while
//    cycle-free waiting is classified as congestion; an escape head older
//    than the drain-age bound is flagged as livelock (§4.3's preference
//    rule exists to bound escape service time).
//
// Because the checks run as simulator events, a run under
// SimKernel::kCalendar and one under kLegacyHeap see identical state at
// identical instants — the watchdog is itself part of the reproducible
// event trace.
//
#include <cstdint>
#include <string>

#include "fabric/interfaces.hpp"
#include "util/types.hpp"

namespace ibadapt {

/// What the watchdog does beyond counting when an invariant fails.
enum class WatchdogPolicy : std::uint8_t {
  kRecord,   // count + keep the first culprit trace, run on
  kAbort,    // additionally stop the simulation at the failing check
  kRecover,  // additionally repair credit books / force a credit resync
};

struct WatchdogSpec {
  /// Check period; also the granularity of deadlock/livelock detection.
  SimTime periodNs = 250'000;
  WatchdogPolicy policy = WatchdogPolicy::kRecord;
  bool checkCreditConservation = true;
  bool checkSplitBounds = true;
  bool checkProgress = true;
  /// Livelock bound: an escape-queue head that has been serviceable for
  /// longer than this without departing is flagged.
  SimTime maxDrainAgeNs = 50'000'000;

  void validate() const;
};

struct WatchdogStats {
  std::uint64_t checksRun = 0;
  std::uint64_t creditConservationViolations = 0;
  std::uint64_t splitBoundViolations = 0;
  std::uint64_t deadlocksDetected = 0;
  std::uint64_t livelocksDetected = 0;
  /// Blocked-but-cycle-free observations — congestion, not a violation.
  std::uint64_t congestionStalls = 0;
  /// Progress checks that ran while source throttles were holding packets
  /// back (src/congestion). A quiet fabric under these observations is
  /// throttle-induced idleness, not deadlock — never a violation.
  std::uint64_t throttleIdleObservations = 0;
  /// Escape wait-for edges whose two blocked heads carry different
  /// reconfiguration epochs — packets of the old and new routing coexisting
  /// on adjacent resources. Expected (and harmless) during a live LFT
  /// swap's transition window; recorded to make the window observable.
  std::uint64_t crossEpochWaitEdges = 0;
  /// Deadlock cycles whose members span more than one epoch. Per-packet
  /// route consistency (a packet resolves every hop in its injection
  /// epoch's table) keeps each epoch's escape tree acyclic, so any such
  /// cycle would break the live-reconfiguration deadlock argument.
  std::uint64_t crossEpochDeadlocks = 0;
  /// Credits restored under WatchdogPolicy::kRecover.
  std::uint64_t creditsRecovered = 0;
  bool aborted = false;
  /// Human-readable culprit trace of the first violation, empty when clean.
  std::string firstViolation;

  std::uint64_t violations() const {
    return creditConservationViolations + splitBoundViolations +
           deadlocksDetected + livelocksDetected;
  }
  std::string summary() const;
};

class InvariantWatchdog final : public IInvariantChecker {
 public:
  explicit InvariantWatchdog(const WatchdogSpec& spec);

  /// Attach shorthand: fabric.attachChecker(&dog, dog.spec().periodNs).
  void attachTo(Fabric& fabric);

  void check(Fabric& fabric, SimTime now) override;

  const WatchdogSpec& spec() const { return spec_; }
  const WatchdogStats& stats() const { return stats_; }

 private:
  void checkCredits(Fabric& fabric);
  void checkSplit(Fabric& fabric);
  void checkProgress(Fabric& fabric, SimTime now);
  void recordViolation(Fabric& fabric, std::uint64_t* counter,
                       const std::string& what);

  WatchdogSpec spec_;
  WatchdogStats stats_;
};

}  // namespace ibadapt
