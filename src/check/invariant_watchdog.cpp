#include "check/invariant_watchdog.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/credits.hpp"
#include "fabric/fabric.hpp"

namespace ibadapt {

void WatchdogSpec::validate() const {
  if (periodNs <= 0) {
    throw std::invalid_argument("WatchdogSpec: periodNs must be > 0");
  }
  if (maxDrainAgeNs <= 0) {
    throw std::invalid_argument("WatchdogSpec: maxDrainAgeNs must be > 0");
  }
}

std::string WatchdogStats::summary() const {
  std::ostringstream os;
  os << "checks=" << checksRun << " violations=" << violations()
     << " (credit=" << creditConservationViolations
     << " split=" << splitBoundViolations << " deadlock=" << deadlocksDetected
     << " livelock=" << livelocksDetected << ")"
     << " congestionStalls=" << congestionStalls;
  if (crossEpochWaitEdges > 0) {
    os << " crossEpochWaits=" << crossEpochWaitEdges
       << " crossEpochDeadlocks=" << crossEpochDeadlocks;
  }
  if (creditsRecovered > 0) os << " recovered=" << creditsRecovered;
  if (aborted) os << " [ABORTED]";
  if (!firstViolation.empty()) os << " first=[" << firstViolation << "]";
  return os.str();
}

InvariantWatchdog::InvariantWatchdog(const WatchdogSpec& spec) : spec_(spec) {
  spec_.validate();
}

void InvariantWatchdog::attachTo(Fabric& fabric) {
  fabric.attachChecker(this, spec_.periodNs);
}

void InvariantWatchdog::recordViolation(Fabric& fabric,
                                        std::uint64_t* counter,
                                        const std::string& what) {
  ++*counter;
  if (stats_.firstViolation.empty()) stats_.firstViolation = what;
  if (spec_.policy == WatchdogPolicy::kAbort && !stats_.aborted) {
    stats_.aborted = true;
    fabric.requestStop();
  }
}

void InvariantWatchdog::check(Fabric& fabric, SimTime now) {
  ++stats_.checksRun;
  if (spec_.checkCreditConservation) checkCredits(fabric);
  if (spec_.checkSplitBounds) checkSplit(fabric);
  if (spec_.checkProgress) checkProgress(fabric, now);
}

namespace {

/// Downstream input-buffer occupancy seen by output port (sw, port, vl).
/// Failed links keep their credit books (failLink leaves the input sides
/// wired), so the peer is resolved through the failed-link records.
/// Returns -1 when the port is wired but no peer can be found (itself a
/// bookkeeping violation).
int downstreamOccupancy(const Fabric& fabric, SwitchId sw, PortIndex port,
                        const SwitchOutputPort& op, VlIndex vl) {
  if (op.downKind == PeerKind::kNode) return 0;  // CA consumes on delivery
  if (op.downKind == PeerKind::kSwitch) {
    return fabric.switchModel(op.downId)
        .in[static_cast<std::size_t>(op.downPort)]
        .vls[static_cast<std::size_t>(vl)]
        .occupiedCredits();
  }
  for (const Fabric::FailedLink& fl : fabric.failedLinks()) {
    if (fl.swA == sw && fl.portA == port) {
      return fabric.switchModel(fl.swB)
          .in[static_cast<std::size_t>(fl.portB)]
          .vls[static_cast<std::size_t>(vl)]
          .occupiedCredits();
    }
    if (fl.swB == sw && fl.portB == port) {
      return fabric.switchModel(fl.swA)
          .in[static_cast<std::size_t>(fl.portA)]
          .vls[static_cast<std::size_t>(vl)]
          .occupiedCredits();
    }
  }
  return -1;
}

std::string bufName(const char* side, SwitchId sw, PortIndex port,
                    VlIndex vl) {
  std::ostringstream os;
  os << "sw" << sw << "." << side << port << ".vl" << vl;
  return os.str();
}

}  // namespace

void InvariantWatchdog::checkCredits(Fabric& fabric) {
  const FabricParams& fp = fabric.params();
  const Topology& topo = fabric.topology();

  for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
    const SwitchModel& sw = fabric.switchModel(s);
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      const SwitchOutputPort& op = sw.out[static_cast<std::size_t>(p)];
      if (op.credits.empty()) continue;  // never wired
      for (VlIndex vl = 0; vl < fp.numVls; ++vl) {
        const auto v = static_cast<std::size_t>(vl);
        const int occ = downstreamOccupancy(fabric, s, p, op, vl);
        if (occ < 0) {
          recordViolation(
              fabric, &stats_.creditConservationViolations,
              bufName("out", s, p, vl) +
                  ": wired port has no peer and no failed-link record");
          continue;
        }
        const int sum = op.credits[v] + op.wireCredits[v] +
                        op.pendingCredits[v] + op.lostCredits[v] + occ;
        if (sum == op.creditsMax[v]) continue;
        std::ostringstream os;
        os << bufName("out", s, p, vl) << ": credits " << op.credits[v]
           << " + wire " << op.wireCredits[v] << " + pending "
           << op.pendingCredits[v] << " + lost " << op.lostCredits[v]
           << " + downstream " << occ << " = " << sum << " != max "
           << op.creditsMax[v];
        recordViolation(fabric, &stats_.creditConservationViolations,
                        os.str());
        if (spec_.policy == WatchdogPolicy::kRecover) {
          const int delta = op.creditsMax[v] - sum;
          const int repaired = op.credits[v] + delta;
          if (repaired >= 0 && repaired <= op.creditsMax[v]) {
            fabric.repairOutputCredits(s, p, vl, delta);
            stats_.creditsRecovered +=
                static_cast<std::uint64_t>(delta > 0 ? delta : -delta);
          }
        }
      }
    }

    // CA injection path: the node-side ledger against this switch's input
    // buffer (each input buffer has exactly one upstream holder).
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      const SwitchInputPort& in = sw.in[static_cast<std::size_t>(p)];
      if (in.upKind != PeerKind::kNode) continue;
      const NodeModel& nd = fabric.nodeModel(in.upId);
      for (VlIndex vl = 0; vl < fp.numVls; ++vl) {
        const auto v = static_cast<std::size_t>(vl);
        const int occ = in.vls[v].occupiedCredits();
        const int sum =
            nd.txCredits[v] + nd.wireCredits[v] + nd.pendingCredits[v] + occ;
        if (sum == fp.bufferCredits) continue;
        std::ostringstream os;
        os << "node" << in.upId << "->" << bufName("in", s, p, vl)
           << ": tx " << nd.txCredits[v] << " + wire " << nd.wireCredits[v]
           << " + pending " << nd.pendingCredits[v] << " + buffered " << occ
           << " = " << sum << " != max " << fp.bufferCredits;
        recordViolation(fabric, &stats_.creditConservationViolations,
                        os.str());
      }
    }
  }
}

void InvariantWatchdog::checkSplit(Fabric& fabric) {
  const FabricParams& fp = fabric.params();
  const Topology& topo = fabric.topology();
  for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
    const SwitchModel& sw = fabric.switchModel(s);
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      const SwitchInputPort& in = sw.in[static_cast<std::size_t>(p)];
      if (in.upKind == PeerKind::kUnused) continue;
      for (VlIndex vl = 0; vl < fp.numVls; ++vl) {
        const VlBuffer& buf = in.vls[static_cast<std::size_t>(vl)];
        int sum = 0;
        int expectEscapeHead = -1;
        for (int i = 0; i < buf.size(); ++i) {
          if (expectEscapeHead < 0 && sum >= buf.adaptiveRegionCredits()) {
            expectEscapeHead = i;
          }
          sum += buf.at(i).credits;
        }
        const std::string name = bufName("in", s, p, vl);
        if (sum != buf.occupiedCredits() ||
            buf.occupiedCredits() > buf.capacityCredits()) {
          std::ostringstream os;
          os << name << ": stored packets occupy " << sum
             << " credits but the buffer reports " << buf.occupiedCredits()
             << " of " << buf.capacityCredits();
          recordViolation(fabric, &stats_.splitBoundViolations, os.str());
        }
        if (buf.escapeHeadIndex() != expectEscapeHead) {
          std::ostringstream os;
          os << name << ": escape head index " << buf.escapeHeadIndex()
             << " but the first packet past the adaptive region ("
             << buf.adaptiveRegionCredits() << " credits) is at "
             << expectEscapeHead;
          recordViolation(fabric, &stats_.splitBoundViolations, os.str());
        }
      }
    }
  }
}

void InvariantWatchdog::checkProgress(Fabric& fabric, SimTime now) {
  const FabricParams& fp = fabric.params();
  const Topology& topo = fabric.topology();
  const int numPorts = topo.portsPerSwitch();
  const int numVls = fp.numVls;

  // One node per input VL buffer whose crossbar-visible heads are all
  // blocked on downstream credits (waits bounded by time — routing delay,
  // link serialization — are progress, not blockage).
  struct BlockedBuf {
    SwitchId sw = kInvalidId;
    PortIndex ip = kInvalidPort;
    VlIndex vl = 0;
    int escapeEdge = -1;  // buffer id of the awaited escape-resource buffer
    bool escapeAged = false;  // escape head older than the drain-age bound
    SimTime escapeAge = 0;
    /// Reconfiguration epoch of the head that owns the escape wait —
    /// classifies wait-for edges/cycles as same-epoch or cross-epoch.
    std::uint32_t headEpoch = 0;
  };
  auto bufId = [numPorts, numVls](SwitchId s, PortIndex p, VlIndex v) {
    return (static_cast<int>(s) * numPorts + static_cast<int>(p)) * numVls +
           static_cast<int>(v);
  };
  std::vector<int> blockedAt(
      static_cast<std::size_t>(topo.numSwitches() * numPorts * numVls), -1);
  std::vector<BlockedBuf> blocked;

  for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
    const SwitchModel& sw = fabric.switchModel(s);
    for (PortIndex ip = 0; ip < numPorts; ++ip) {
      const SwitchInputPort& in = sw.in[static_cast<std::size_t>(ip)];
      if (in.upKind == PeerKind::kUnused) continue;
      if (in.busyUntil > now) continue;  // a transfer is departing: progress
      for (VlIndex vl = 0; vl < numVls; ++vl) {
        const VlBuffer& buf = in.vls[static_cast<std::size_t>(vl)];
        if (buf.empty()) continue;
        const VlBuffer::Candidates cands = buf.candidateHeads(fp.orderRule);
        bool creditBlocked = cands.count > 0;
        int escapeEdge = -1;
        std::uint32_t escapeEdgeEpoch = 0;
        for (int k = 0; k < cands.count && creditBlocked; ++k) {
          const BufferedPacket& bp =
              buf.at(cands.index[static_cast<std::size_t>(k)]);
          if (bp.routeReady > now) {
            creditBlocked = false;  // still routing: bounded wait
            break;
          }
          const Packet& pkt = fabric.packet(bp.packet);
          // Mirror of Fabric::feasibleOptions, read-only: any feasible or
          // merely-busy option means the head is not credit-blocked.
          const bool adaptiveEligible = bp.options.adaptiveRequested &&
                                        sw.adaptiveCapable &&
                                        bp.options.numAdaptive > 0;
          if (adaptiveEligible) {
            const bool committed = bp.committedPort != kInvalidPort;
            for (int i = 0; i < bp.options.numAdaptive && creditBlocked;
                 ++i) {
              const PortIndex p =
                  bp.options.adaptivePorts[static_cast<std::size_t>(i)];
              if (committed && p != bp.committedPort) continue;
              const SwitchOutputPort& op =
                  sw.out[static_cast<std::size_t>(p)];
              if (op.downKind == PeerKind::kUnused) continue;
              if (op.busyUntil > now) {
                creditBlocked = false;
                break;
              }
              const VlIndex ovl = sw.slToVl.vl(ip, p, pkt.sl);
              const int reserve = op.downKind == PeerKind::kNode
                                      ? 0
                                      : fp.escapeReserveCredits;
              if (adaptiveCredits(
                      op.credits[static_cast<std::size_t>(ovl)], reserve) >=
                  pkt.credits) {
                creditBlocked = false;
              }
            }
          }
          const PortIndex p0 = bp.options.escapePort;
          if (creditBlocked && p0 != kInvalidPort) {
            const SwitchOutputPort& op =
                sw.out[static_cast<std::size_t>(p0)];
            if (op.downKind != PeerKind::kUnused) {
              if (op.busyUntil > now) {
                creditBlocked = false;
              } else {
                const VlIndex ovl = sw.slToVl.vl(ip, p0, pkt.sl);
                if (op.credits[static_cast<std::size_t>(ovl)] >=
                    pkt.credits) {
                  creditBlocked = false;
                } else if (op.downKind == PeerKind::kSwitch &&
                           escapeEdge < 0) {
                  // The escape resource this head waits for: the
                  // downstream input buffer on the escape VL.
                  escapeEdge = bufId(op.downId, op.downPort, ovl);
                  escapeEdgeEpoch = pkt.epoch;
                }
              }
            }
          }
        }
        if (!creditBlocked) continue;
        BlockedBuf bb;
        bb.sw = s;
        bb.ip = ip;
        bb.vl = vl;
        bb.escapeEdge = escapeEdge;
        bb.headEpoch = escapeEdgeEpoch;
        const int ehi = buf.escapeHeadIndex();
        if (ehi >= 0) {
          const SimTime age = now - buf.at(ehi).routeReady;
          bb.escapeAge = age;
          bb.escapeAged = age > spec_.maxDrainAgeNs;
        }
        blockedAt[static_cast<std::size_t>(bufId(s, ip, vl))] =
            static_cast<int>(blocked.size());
        blocked.push_back(bb);
      }
    }
  }

  if (fabric.throttledHeldPackets() > 0) {
    // Source throttles are voluntarily pacing injection: an otherwise-quiet
    // fabric under this condition is throttle-induced idleness, not
    // deadlock. The wait-for analysis below still judges whatever is
    // genuinely credit-blocked.
    ++stats_.throttleIdleObservations;
  }

  if (blocked.empty()) return;

  // Walk the escape-resource wait-for edges (at most one per blocked
  // buffer) looking for a cycle: blocked escape waits chained back onto
  // themselves mean no escape resource in the loop can ever free — the
  // definition of deadlock. Edges into non-blocked buffers are dropped:
  // their owner is draining, so the wait is congestion.
  std::vector<int> next(blocked.size(), -1);
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    const int e = blocked[i].escapeEdge;
    if (e >= 0) next[i] = blockedAt[static_cast<std::size_t>(e)];
    if (next[i] >= 0 &&
        blocked[i].headEpoch !=
            blocked[static_cast<std::size_t>(next[i])].headEpoch) {
      // Old-epoch and new-epoch heads waiting on adjacent escape
      // resources: the live-swap transition window, observed.
      ++stats_.crossEpochWaitEdges;
    }
  }
  std::vector<int> color(blocked.size(), 0);  // 0 new, 1 on path, 2 done
  std::vector<bool> inCycle(blocked.size(), false);
  int cycleStart = -1;
  for (std::size_t r = 0; r < blocked.size() && cycleStart < 0; ++r) {
    if (color[r] != 0) continue;
    int u = static_cast<int>(r);
    std::vector<int> path;
    while (u >= 0 && color[static_cast<std::size_t>(u)] == 0) {
      color[static_cast<std::size_t>(u)] = 1;
      path.push_back(u);
      u = next[static_cast<std::size_t>(u)];
    }
    if (u >= 0 && color[static_cast<std::size_t>(u)] == 1) {
      cycleStart = u;
      bool tail = true;
      for (const int v : path) {
        if (v == cycleStart) tail = false;
        if (!tail) inCycle[static_cast<std::size_t>(v)] = true;
      }
    }
    for (const int v : path) color[static_cast<std::size_t>(v)] = 2;
  }

  if (cycleStart >= 0) {
    std::ostringstream os;
    bool crossEpoch = false;
    os << "deadlock cycle (escape-credit waits): ";
    int u = cycleStart;
    do {
      const BlockedBuf& bb = blocked[static_cast<std::size_t>(u)];
      os << bufName("in", bb.sw, bb.ip, bb.vl) << " -> ";
      if (bb.headEpoch !=
          blocked[static_cast<std::size_t>(cycleStart)].headEpoch) {
        crossEpoch = true;
      }
      u = next[static_cast<std::size_t>(u)];
    } while (u != cycleStart);
    const BlockedBuf& bb = blocked[static_cast<std::size_t>(cycleStart)];
    os << bufName("in", bb.sw, bb.ip, bb.vl);
    if (crossEpoch) {
      // A cycle mixing epochs would mean the two escape trees interlock —
      // exactly what per-packet route consistency is supposed to preclude.
      ++stats_.crossEpochDeadlocks;
      os << " [CROSS-EPOCH]";
    }
    recordViolation(fabric, &stats_.deadlocksDetected, os.str());
    if (spec_.policy == WatchdogPolicy::kRecover) {
      // Leaked credits are the one deadlock cause the model can undo.
      fabric.forceCreditResync();
    }
  }

  std::uint64_t stalls = 0;
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    if (inCycle[i]) continue;
    ++stalls;
    if (blocked[i].escapeAged) {
      std::ostringstream os;
      os << bufName("in", blocked[i].sw, blocked[i].ip, blocked[i].vl)
         << ": escape head blocked for " << blocked[i].escapeAge
         << "ns > maxDrainAge " << spec_.maxDrainAgeNs
         << "ns with no deadlock cycle (livelock)";
      recordViolation(fabric, &stats_.livelocksDetected, os.str());
    }
  }
  stats_.congestionStalls += stalls;
}

}  // namespace ibadapt
