#pragma once
//
// Streaming latency statistics: Welford mean/variance, min/max, and a
// log-spaced histogram for approximate percentiles without storing samples.
//
#include <array>
#include <cstdint>

#include "util/types.hpp"

namespace ibadapt {

class LatencyAccumulator {
 public:
  void add(SimTime latencyNs);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double stddev() const;
  SimTime min() const { return count_ ? min_ : 0; }
  SimTime max() const { return count_ ? max_ : 0; }

  /// Approximate p-quantile (p in [0,1]) from the log histogram. Buckets
  /// are ~7 % wide (16 per octave), so the answer is within a few percent.
  double quantile(double p) const;

 private:
  static constexpr int kBucketsPerOctave = 16;
  static constexpr int kOctaves = 40;  // covers 1 ns .. ~1e12 ns
  static constexpr int kNumBuckets = kBucketsPerOctave * kOctaves;

  static int bucketOf(SimTime v);
  static double bucketUpperEdge(int bucket);

  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  SimTime min_ = 0;
  SimTime max_ = 0;
  std::array<std::uint64_t, kNumBuckets> hist_{};
};

}  // namespace ibadapt
