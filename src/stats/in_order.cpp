#include "stats/in_order.hpp"

// Header-only logic; this TU anchors the library target.
