#pragma once
//
// In-order delivery checker for deterministic traffic. Deterministic packets
// between a (src, dst) pair carry a strictly increasing sequence stamp; IBA
// guarantees they arrive in that order, and the paper's mechanism must
// preserve the guarantee even though deterministic and adaptive packets
// share the split buffers (§4.4).
//
#include <cstdint>

#include "util/flow_table.hpp"
#include "util/types.hpp"

namespace ibadapt {

class InOrderChecker {
 public:
  explicit InOrderChecker(int numNodes) : lastSeq_(numNodes, numNodes) {}

  /// Records a deterministic delivery; returns false (and counts a
  /// violation) when the sequence went backwards.
  bool record(NodeId src, NodeId dst, std::uint32_t seq) {
    auto& last = lastSeq_.at(src, dst);
    if (seq <= last) {
      ++violations_;
      return false;
    }
    last = seq;
    return true;
  }

  std::uint64_t violations() const { return violations_; }

 private:
  // (src, dst)-keyed last stamps; called only from serialized observer
  // context, so the FlowTable threading contract is trivially met.
  FlowTable<std::uint32_t> lastSeq_;
  std::uint64_t violations_ = 0;
};

}  // namespace ibadapt
