#include "stats/collector.hpp"

namespace ibadapt {

void StatsCollector::onGenerated(const Packet& pkt, SimTime now) {
  (void)pkt;
  (void)now;
}

void StatsCollector::onInjected(const Packet& pkt, SimTime now) {
  (void)pkt;
  (void)now;
}

void StatsCollector::onDelivered(const Packet& pkt, SimTime now) {
  if (!pkt.adaptive) {
    inOrder_.record(pkt.src, pkt.dst, pkt.detSeq);
  }
  if (!measuring_) {
    // The first `warmupPackets` deliveries are skipped; measurement starts
    // with the next one (warmup of 0 measures from the first delivery).
    if (totalDelivered_ < cfg_.warmupPackets) {
      ++totalDelivered_;
      return;
    }
    measuring_ = true;
    windowStart_ = now;
  }
  ++totalDelivered_;
  if (complete_) return;

  // N measured deliveries bound N-1 inter-delivery spans. The delivery that
  // opens the window contributes its timestamp (windowStart_) but not its
  // bytes: counting them would credit traffic from before the window to the
  // window's span and overstate accepted throughput.
  const bool opensWindow = all_.count() == 0;
  all_.add(now - pkt.genTime);
  if (pkt.adaptive) {
    adaptive_.add(now - pkt.genTime);
  } else {
    det_.add(now - pkt.genTime);
  }
  if (!opensWindow) {
    bytes_ += static_cast<std::uint64_t>(pkt.sizeBytes);
  }
  hopSum_ += pkt.hops;
  lastDelivery_ = now;
  recordMessageSegment(pkt, now);

  if (all_.count() >= cfg_.measurePackets) {
    complete_ = true;
    if (fabric_ != nullptr) fabric_->requestStop();
  }
}

void StatsCollector::recordMessageSegment(const Packet& pkt, SimTime now) {
  if (pkt.segCount <= 1) {
    // Unsegmented traffic: every packet is a complete single-segment
    // message, so the message distribution degenerates to packet latency.
    msg_.add(now - pkt.genTime);
    return;
  }
  const std::uint64_t key =
      ((static_cast<std::uint64_t>(pkt.src) *
            static_cast<std::uint64_t>(numNodes_) +
        static_cast<std::uint64_t>(pkt.dst))
       << 32) |
      static_cast<std::uint64_t>(pkt.msgId);
  MsgTrack& m = msgs_[key];
  if (m.seen.empty()) {
    m.seen.assign(pkt.segCount, false);
    m.remaining = pkt.segCount;
    m.firstGen = pkt.genTime;
  }
  if (pkt.genTime < m.firstGen) m.firstGen = pkt.genTime;
  const auto idx = static_cast<std::size_t>(pkt.segIndex);
  if (idx >= m.seen.size() || m.seen[idx]) return;  // duplicate / stray copy
  m.seen[idx] = true;
  if (--m.remaining == 0) {
    msg_.add(now - m.firstGen);
    msgs_.erase(key);
  }
}

double StatsCollector::acceptedBytesPerNs() const {
  const SimTime span = lastDelivery_ - windowStart_;
  if (span <= 0 || all_.count() < 2) return 0.0;
  return static_cast<double>(bytes_) / static_cast<double>(span);
}

}  // namespace ibadapt
