#include "stats/collector.hpp"

namespace ibadapt {

void StatsCollector::onGenerated(const Packet& pkt, SimTime now) {
  (void)pkt;
  (void)now;
}

void StatsCollector::onInjected(const Packet& pkt, SimTime now) {
  (void)pkt;
  (void)now;
}

void StatsCollector::onDelivered(const Packet& pkt, SimTime now) {
  if (!pkt.adaptive) {
    inOrder_.record(pkt.src, pkt.dst, pkt.detSeq);
  }
  if (!measuring_) {
    // The first `warmupPackets` deliveries are skipped; measurement starts
    // with the next one (warmup of 0 measures from the first delivery).
    if (totalDelivered_ < cfg_.warmupPackets) {
      ++totalDelivered_;
      return;
    }
    measuring_ = true;
    windowStart_ = now;
  }
  ++totalDelivered_;
  if (complete_) return;

  // N measured deliveries bound N-1 inter-delivery spans. The delivery that
  // opens the window contributes its timestamp (windowStart_) but not its
  // bytes: counting them would credit traffic from before the window to the
  // window's span and overstate accepted throughput.
  const bool opensWindow = all_.count() == 0;
  all_.add(now - pkt.genTime);
  if (pkt.adaptive) {
    adaptive_.add(now - pkt.genTime);
  } else {
    det_.add(now - pkt.genTime);
  }
  if (!opensWindow) {
    bytes_ += static_cast<std::uint64_t>(pkt.sizeBytes);
  }
  hopSum_ += pkt.hops;
  lastDelivery_ = now;

  if (all_.count() >= cfg_.measurePackets) {
    complete_ = true;
    if (fabric_ != nullptr) fabric_->requestStop();
  }
}

double StatsCollector::acceptedBytesPerNs() const {
  const SimTime span = lastDelivery_ - windowStart_;
  if (span <= 0 || all_.count() < 2) return 0.0;
  return static_cast<double>(bytes_) / static_cast<double>(span);
}

}  // namespace ibadapt
