#pragma once
//
// Measurement harness: warms up by delivered-packet count, then measures a
// fixed packet budget. Counting packets instead of wall-clock windows makes
// run cost independent of network size and load, which keeps full sweeps
// tractable while leaving statistics stable.
//
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "stats/in_order.hpp"
#include "stats/latency.hpp"

namespace ibadapt {

class StatsCollector final : public IDeliveryObserver {
 public:
  struct Config {
    std::uint64_t warmupPackets = 5000;
    std::uint64_t measurePackets = 30000;
  };

  StatsCollector(const Config& cfg, int numNodes)
      : cfg_(cfg), numNodes_(numNodes), inOrder_(numNodes) {}

  /// Optional: lets the collector stop the run as soon as the measurement
  /// budget is reached.
  void bindFabric(Fabric* fabric) { fabric_ = fabric; }

  void onGenerated(const Packet& pkt, SimTime now) override;
  void onInjected(const Packet& pkt, SimTime now) override;
  void onDelivered(const Packet& pkt, SimTime now) override;

  bool measurementComplete() const { return complete_; }
  bool measuring() const { return measuring_; }
  SimTime windowStart() const { return windowStart_; }
  SimTime windowEnd() const { return lastDelivery_; }
  std::uint64_t measuredPackets() const { return all_.count(); }
  std::uint64_t measuredBytes() const { return bytes_; }
  std::uint64_t totalDelivered() const { return totalDelivered_; }

  const LatencyAccumulator& latency() const { return all_; }
  const LatencyAccumulator& latencyAdaptive() const { return adaptive_; }
  const LatencyAccumulator& latencyDeterministic() const { return det_; }
  /// Whole-message latency (first segment generated -> last segment
  /// delivered), measured at message completion inside the window.
  /// Unsegmented packets count as single-segment messages.
  const LatencyAccumulator& messageLatency() const { return msg_; }
  const InOrderChecker& inOrder() const { return inOrder_; }

  double measuredHopMean() const {
    return all_.count() ? static_cast<double>(hopSum_) /
                              static_cast<double>(all_.count())
                        : 0.0;
  }

  /// Accepted traffic over the measurement window, bytes/ns (whole subnet).
  double acceptedBytesPerNs() const;

 private:
  /// Reassembly record of one in-flight multi-segment message.
  struct MsgTrack {
    std::vector<bool> seen;  // segIndex -> delivered
    int remaining = 0;
    SimTime firstGen = 0;  // earliest genTime over the seen segments
  };

  void recordMessageSegment(const Packet& pkt, SimTime now);

  Config cfg_;
  int numNodes_ = 0;
  Fabric* fabric_ = nullptr;

  std::uint64_t totalDelivered_ = 0;
  bool measuring_ = false;
  bool complete_ = false;
  SimTime windowStart_ = 0;
  SimTime lastDelivery_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t hopSum_ = 0;

  LatencyAccumulator all_;
  LatencyAccumulator adaptive_;
  LatencyAccumulator det_;
  LatencyAccumulator msg_;
  /// In-flight messages keyed ((src * numNodes + dst) << 32) | msgId. The
  /// observer chain runs single-threaded (see IDeliveryObserver), and the
  /// map is never iterated, so unordered is deterministic here.
  std::unordered_map<std::uint64_t, MsgTrack> msgs_;
  InOrderChecker inOrder_;
};

}  // namespace ibadapt
