#include "stats/resilience.hpp"

#include <sstream>

namespace ibadapt {

std::string ResilienceStats::summary() const {
  std::ostringstream os;
  os << "faults=" << faultsInjected << " recovered=" << linksRecovered
     << " sweeps=" << smSweeps;
  if (timeToRecovery.count() > 0) {
    os << " ttrAvg=" << timeToRecovery.mean() << "ns";
  }
  os << " degraded=" << degradedTimeNs << "ns"
     << " droppedDegraded=" << droppedWhileDegraded;
  if (epochsInstalled > 0) {
    os << " epochs=" << epochsInstalled << " reconfigSmps=" << reconfigSmpsSent
       << " installNs=" << installPhaseNs
       << " reconfigLatencyNs=" << reconfigLatencyNs;
    if (computeRestarts > 0) os << " computeRestarts=" << computeRestarts;
  }
  if (injectionPausedNs > 0) os << " pausedNs=" << injectionPausedNs;
  if (packetsCorrupted > 0 || creditUpdatesLost > 0) {
    os << " corrupted=" << packetsCorrupted << " crcDrops=" << crcDrops
       << " silent=" << silentCorruptions
       << " creditsLeaked=" << creditsLeaked
       << " creditsResynced=" << creditsResynced;
  }
  if (uniqueSent > 0) {
    os << " delivered=" << uniqueDelivered << "/" << uniqueSent
       << " retx=" << retransmitsSent << " dups=" << duplicatesSuppressed;
  }
  if (auditsRun > 0) {
    os << " audits=" << auditsPassed << "/" << auditsRun;
    if (!allAuditsPassed()) os << " [AUDIT-FAIL: " << firstAuditFailure << "]";
  }
  return os.str();
}

}  // namespace ibadapt
