#include "stats/latency.hpp"

#include <cmath>

namespace ibadapt {

void LatencyAccumulator::add(SimTime latencyNs) {
  if (latencyNs < 1) latencyNs = 1;
  if (count_ == 0) {
    min_ = max_ = latencyNs;
  } else {
    if (latencyNs < min_) min_ = latencyNs;
    if (latencyNs > max_) max_ = latencyNs;
  }
  ++count_;
  const double delta = static_cast<double>(latencyNs) - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (static_cast<double>(latencyNs) - mean_);
  ++hist_[static_cast<std::size_t>(bucketOf(latencyNs))];
}

void LatencyAccumulator::reset() {
  *this = LatencyAccumulator{};
}

double LatencyAccumulator::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

int LatencyAccumulator::bucketOf(SimTime v) {
  const double lg = std::log2(static_cast<double>(v));
  int b = static_cast<int>(lg * kBucketsPerOctave);
  if (b < 0) b = 0;
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  return b;
}

double LatencyAccumulator::bucketUpperEdge(int bucket) {
  return std::exp2(static_cast<double>(bucket + 1) / kBucketsPerOctave);
}

double LatencyAccumulator::quantile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += hist_[static_cast<std::size_t>(b)];
    if (seen > target) return bucketUpperEdge(b);
  }
  return static_cast<double>(max_);
}

}  // namespace ibadapt
