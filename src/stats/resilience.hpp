#pragma once
//
// Resilience metrics: what a fault-injection campaign accumulates about how
// the fabric rode through link failures and recoveries. Filled in by
// fault::FaultCampaign and surfaced through SimResults.
//
#include <cstdint>
#include <string>
#include <vector>

#include "stats/latency.hpp"
#include "util/types.hpp"

namespace ibadapt {

struct ResilienceStats {
  // ---- event counts ------------------------------------------------------
  int faultsInjected = 0;
  int linksRecovered = 0;
  int smSweeps = 0;

  // ---- exposure ----------------------------------------------------------
  /// Per fault: time from the failure until the next completed SM sweep —
  /// the window endpoints were exposed to a stale LFT ("time-to-recovery").
  LatencyAccumulator timeToRecovery;
  /// Total simulated time during which at least one fault was not yet
  /// swept around (union of the degraded windows).
  SimTime degradedTimeNs = 0;
  /// Packets discarded at switches inside degraded windows.
  std::uint64_t droppedWhileDegraded = 0;
  /// ... and outside them (stale path sets, in-flight stragglers).
  std::uint64_t droppedWhileHealthy = 0;

  // ---- transient faults (zeros when no TransientLinkFaults) -------------
  /// Corruption events injected on link receive paths.
  std::uint64_t packetsCorrupted = 0;
  /// Corrupted frames the receiver's VCRC/ICRC caught and dropped.
  std::uint64_t crcDrops = 0;
  /// Corrupted frames both CRCs failed to catch (delivered corrupted).
  std::uint64_t silentCorruptions = 0;
  /// Flow-control tokens lost to corruption, and the credits they carried.
  std::uint64_t creditUpdatesLost = 0;
  std::uint64_t creditsLeaked = 0;
  /// Credits restored by the periodic link-level credit resync.
  std::uint64_t creditsResynced = 0;

  // ---- end-to-end reliability (zeros when no ReliableTransport) ---------
  std::uint64_t retransmitsSent = 0;
  std::uint64_t duplicatesSuppressed = 0;
  std::uint64_t abandonedPackets = 0;
  std::uint64_t uniqueSent = 0;
  std::uint64_t uniqueDelivered = 0;

  // ---- invariants --------------------------------------------------------
  /// Post-sweep audits that passed / total run.
  int auditsPassed = 0;
  int auditsRun = 0;
  /// First audit failure, empty when none (auditsPassed == auditsRun).
  std::string firstAuditFailure;

  bool allAuditsPassed() const { return auditsPassed == auditsRun; }

  /// Fraction of transport-tracked packets that were delivered (counts
  /// unique packets, not copies). Vacuously 1.0 when nothing was tracked —
  /// "all zero of them arrived" must read as success, not total loss.
  double deliveredFraction() const {
    return uniqueSent ? static_cast<double>(uniqueDelivered) /
                            static_cast<double>(uniqueSent)
                      : 1.0;
  }

  std::string summary() const;
};

}  // namespace ibadapt
