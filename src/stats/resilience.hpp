#pragma once
//
// Resilience metrics: what a fault-injection campaign accumulates about how
// the fabric rode through link failures and recoveries. Filled in by
// fault::FaultCampaign and surfaced through SimResults.
//
#include <cstdint>
#include <string>
#include <vector>

#include "stats/latency.hpp"
#include "util/types.hpp"

namespace ibadapt {

struct ResilienceStats {
  // ---- event counts ------------------------------------------------------
  int faultsInjected = 0;
  int linksRecovered = 0;
  int smSweeps = 0;

  // ---- exposure ----------------------------------------------------------
  /// Per fault: time from the failure until the next completed SM sweep —
  /// the window endpoints were exposed to a stale LFT ("time-to-recovery").
  LatencyAccumulator timeToRecovery;
  /// Total simulated time of degraded service: at least one fault not yet
  /// covered by an installed sweep, or injection gated by a
  /// stop-and-resweep reconfiguration. Union of the windows — overlapping
  /// per-fault (and pause) intervals are merged, never summed.
  SimTime degradedTimeNs = 0;
  /// Packets discarded at switches inside degraded windows.
  std::uint64_t droppedWhileDegraded = 0;
  /// ... and outside them (stale path sets, in-flight stragglers).
  std::uint64_t droppedWhileHealthy = 0;

  // ---- live reconfiguration (zeros in kInstantSweep mode) ---------------
  /// Epoch advances completed (live two-phase LFT swaps).
  std::uint32_t epochsInstalled = 0;
  /// SMPs carried by the staged-install flow.
  std::uint64_t reconfigSmpsSent = 0;
  /// Total install-phase time (image computed -> epoch advanced).
  std::uint64_t installPhaseNs = 0;
  /// Total fault-noticed -> new-routes-active latency over live sweeps.
  std::uint64_t reconfigLatencyNs = 0;
  /// Time injection was gated (stop-and-resweep baseline only).
  std::uint64_t injectionPausedNs = 0;
  /// Route computations restarted because another fault arrived mid-plan.
  std::uint32_t computeRestarts = 0;

  // ---- transient faults (zeros when no TransientLinkFaults) -------------
  /// Corruption events injected on link receive paths.
  std::uint64_t packetsCorrupted = 0;
  /// Corrupted frames the receiver's VCRC/ICRC caught and dropped.
  std::uint64_t crcDrops = 0;
  /// Corrupted frames both CRCs failed to catch (delivered corrupted).
  std::uint64_t silentCorruptions = 0;
  /// Flow-control tokens lost to corruption, and the credits they carried.
  std::uint64_t creditUpdatesLost = 0;
  std::uint64_t creditsLeaked = 0;
  /// Credits restored by the periodic link-level credit resync.
  std::uint64_t creditsResynced = 0;

  // ---- end-to-end reliability (zeros when no ReliableTransport) ---------
  std::uint64_t retransmitsSent = 0;
  std::uint64_t duplicatesSuppressed = 0;
  std::uint64_t abandonedPackets = 0;
  std::uint64_t uniqueSent = 0;
  std::uint64_t uniqueDelivered = 0;

  // ---- invariants --------------------------------------------------------
  /// Post-sweep audits that passed / total run.
  int auditsPassed = 0;
  int auditsRun = 0;
  /// First audit failure, empty when none (auditsPassed == auditsRun).
  std::string firstAuditFailure;

  bool allAuditsPassed() const { return auditsPassed == auditsRun; }

  /// Fraction of transport-tracked packets that were delivered (counts
  /// unique packets, not copies). Vacuously 1.0 when nothing was tracked —
  /// "all zero of them arrived" must read as success, not total loss.
  double deliveredFraction() const {
    return uniqueSent ? static_cast<double>(uniqueDelivered) /
                            static_cast<double>(uniqueSent)
                      : 1.0;
  }

  std::string summary() const;
};

/// Union-of-intervals accounting for degraded time: a window opens when the
/// first uncovered fault appears and closes when the *last* one is covered,
/// so overlapping per-fault windows are merged instead of summed. Partial
/// sweep coverage (live reconfiguration heals only faults older than its
/// topology snapshot) makes genuine overlap common; naive per-fault sums
/// would double-count it.
class DegradedWindowTracker {
 public:
  /// A fault became visible and is not yet routed around.
  void open(SimTime now, std::uint64_t droppedNow) {
    if (openCount_ == 0) {
      windowStart_ = now;
      droppedAtStart_ = droppedNow;
    }
    ++openCount_;
  }

  /// One open fault is now covered by an installed sweep.
  void close(SimTime now, std::uint64_t droppedNow) {
    --openCount_;
    if (openCount_ == 0) {
      degradedTimeNs_ += now - windowStart_;
      droppedWhileDegraded_ += droppedNow - droppedAtStart_;
    }
  }

  /// End of run: force any open window shut at `now`.
  void closeAll(SimTime now, std::uint64_t droppedNow) {
    if (openCount_ > 0) {
      degradedTimeNs_ += now - windowStart_;
      droppedWhileDegraded_ += droppedNow - droppedAtStart_;
      openCount_ = 0;
    }
  }

  int openCount() const { return openCount_; }
  SimTime degradedTimeNs() const { return degradedTimeNs_; }
  std::uint64_t droppedWhileDegraded() const { return droppedWhileDegraded_; }

 private:
  int openCount_ = 0;
  SimTime windowStart_ = 0;
  std::uint64_t droppedAtStart_ = 0;
  SimTime degradedTimeNs_ = 0;
  std::uint64_t droppedWhileDegraded_ = 0;
};

}  // namespace ibadapt
