#include "topology/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ibadapt {

namespace {

/// One attempt at a d-regular simple graph via random stub matching
/// (Steger-Wormald style): pick random remaining stub pairs, reject
/// self-loops and duplicate edges, fail when only invalid pairs remain.
bool tryMatchStubs(int numSwitches, int degree, Rng& rng,
                   std::vector<std::pair<SwitchId, SwitchId>>& edges) {
  edges.clear();
  std::vector<SwitchId> stubs;
  stubs.reserve(static_cast<std::size_t>(numSwitches) * degree);
  for (SwitchId sw = 0; sw < numSwitches; ++sw) {
    for (int k = 0; k < degree; ++k) stubs.push_back(sw);
  }
  std::vector<std::vector<bool>> adj(
      static_cast<std::size_t>(numSwitches),
      std::vector<bool>(static_cast<std::size_t>(numSwitches), false));

  while (stubs.size() >= 2) {
    bool placed = false;
    // A bounded number of random draws before declaring the attempt stuck.
    for (int tries = 0; tries < 64 && !placed; ++tries) {
      const auto i = rng.uniformIndex(stubs.size());
      auto j = rng.uniformIndex(stubs.size() - 1);
      if (j >= i) ++j;
      const SwitchId a = stubs[i];
      const SwitchId b = stubs[j];
      if (a == b || adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
        continue;
      }
      adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
      adj[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = true;
      edges.emplace_back(a, b);
      // Remove the two stubs (larger index first).
      const auto hi = std::max(i, j);
      const auto lo = std::min(i, j);
      stubs[hi] = stubs.back();
      stubs.pop_back();
      stubs[lo] = stubs.back();
      stubs.pop_back();
      placed = true;
    }
    if (!placed) return false;  // stuck: only invalid pairs remain
  }
  return stubs.empty();
}

}  // namespace

Topology makeIrregular(const IrregularSpec& spec, Rng& rng) {
  if (spec.numSwitches < 2) {
    throw std::invalid_argument("makeIrregular: need at least 2 switches");
  }
  if (spec.linksPerSwitch < 1) {
    throw std::invalid_argument("makeIrregular: need at least 1 link/switch");
  }
  if (spec.linksPerSwitch > spec.numSwitches - 1) {
    throw std::invalid_argument(
        "makeIrregular: degree exceeds simple-graph limit");
  }
  if ((spec.numSwitches * spec.linksPerSwitch) % 2 != 0) {
    throw std::invalid_argument(
        "makeIrregular: numSwitches*linksPerSwitch must be even");
  }

  std::vector<std::pair<SwitchId, SwitchId>> edges;
  for (int attempt = 0; attempt < spec.maxAttempts; ++attempt) {
    if (!tryMatchStubs(spec.numSwitches, spec.linksPerSwitch, rng, edges)) {
      continue;
    }
    Topology topo(spec.numSwitches, spec.nodesPerSwitch + spec.linksPerSwitch,
                  spec.nodesPerSwitch);
    bool ok = true;
    for (const auto& [a, b] : edges) {
      if (!topo.addLink(a, b)) {
        ok = false;
        break;
      }
    }
    if (ok && topo.connectedSwitchGraph()) return topo;
  }
  throw std::runtime_error("makeIrregular: no connected topology found");
}

Topology makeRing(int numSwitches, int nodesPerSwitch) {
  if (numSwitches < 3) throw std::invalid_argument("makeRing: need >= 3");
  Topology topo(numSwitches, nodesPerSwitch + 2, nodesPerSwitch);
  for (SwitchId sw = 0; sw < numSwitches; ++sw) {
    topo.addLink(sw, (sw + 1) % numSwitches);
  }
  return topo;
}

Topology makeMesh2D(int width, int height, int nodesPerSwitch) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("makeMesh2D: need width,height >= 2");
  }
  Topology topo(width * height, nodesPerSwitch + 4, nodesPerSwitch);
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) topo.addLink(id(x, y), id(x + 1, y));
      if (y + 1 < height) topo.addLink(id(x, y), id(x, y + 1));
    }
  }
  return topo;
}

Topology makeTorus2D(int width, int height, int nodesPerSwitch) {
  if (width < 3 || height < 3) {
    throw std::invalid_argument("makeTorus2D: need width,height >= 3");
  }
  Topology topo(width * height, nodesPerSwitch + 4, nodesPerSwitch);
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      topo.addLink(id(x, y), id((x + 1) % width, y));
      topo.addLink(id(x, y), id(x, (y + 1) % height));
    }
  }
  return topo;
}

Topology makeHypercube(int dim, int nodesPerSwitch) {
  if (dim < 1 || dim > 10) {
    throw std::invalid_argument("makeHypercube: dim in [1,10]");
  }
  const int n = 1 << dim;
  Topology topo(n, nodesPerSwitch + dim, nodesPerSwitch);
  for (SwitchId sw = 0; sw < n; ++sw) {
    for (int b = 0; b < dim; ++b) {
      const SwitchId nb = sw ^ (1 << b);
      if (sw < nb) topo.addLink(sw, nb);
    }
  }
  return topo;
}

}  // namespace ibadapt
