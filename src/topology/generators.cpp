#include "topology/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ibadapt {

namespace {

/// One attempt at a d-regular simple graph via random stub matching
/// (Steger-Wormald style): pick random remaining stub pairs, reject
/// self-loops and duplicate edges, fail when only invalid pairs remain.
bool tryMatchStubs(int numSwitches, int degree, Rng& rng,
                   std::vector<std::pair<SwitchId, SwitchId>>& edges) {
  edges.clear();
  std::vector<SwitchId> stubs;
  stubs.reserve(static_cast<std::size_t>(numSwitches) * degree);
  for (SwitchId sw = 0; sw < numSwitches; ++sw) {
    for (int k = 0; k < degree; ++k) stubs.push_back(sw);
  }
  std::vector<std::vector<bool>> adj(
      static_cast<std::size_t>(numSwitches),
      std::vector<bool>(static_cast<std::size_t>(numSwitches), false));

  while (stubs.size() >= 2) {
    bool placed = false;
    // A bounded number of random draws before declaring the attempt stuck.
    for (int tries = 0; tries < 64 && !placed; ++tries) {
      const auto i = rng.uniformIndex(stubs.size());
      auto j = rng.uniformIndex(stubs.size() - 1);
      if (j >= i) ++j;
      const SwitchId a = stubs[i];
      const SwitchId b = stubs[j];
      if (a == b || adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
        continue;
      }
      adj[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
      adj[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = true;
      edges.emplace_back(a, b);
      // Remove the two stubs (larger index first).
      const auto hi = std::max(i, j);
      const auto lo = std::min(i, j);
      stubs[hi] = stubs.back();
      stubs.pop_back();
      stubs[lo] = stubs.back();
      stubs.pop_back();
      placed = true;
    }
    if (!placed) return false;  // stuck: only invalid pairs remain
  }
  return stubs.empty();
}

}  // namespace

Topology makeIrregular(const IrregularSpec& spec, Rng& rng) {
  if (spec.numSwitches < 2) {
    throw std::invalid_argument("makeIrregular: need at least 2 switches");
  }
  if (spec.linksPerSwitch < 1) {
    throw std::invalid_argument("makeIrregular: need at least 1 link/switch");
  }
  if (spec.linksPerSwitch > spec.numSwitches - 1) {
    throw std::invalid_argument(
        "makeIrregular: degree exceeds simple-graph limit");
  }
  if ((spec.numSwitches * spec.linksPerSwitch) % 2 != 0) {
    throw std::invalid_argument(
        "makeIrregular: numSwitches*linksPerSwitch must be even");
  }

  std::vector<std::pair<SwitchId, SwitchId>> edges;
  for (int attempt = 0; attempt < spec.maxAttempts; ++attempt) {
    if (!tryMatchStubs(spec.numSwitches, spec.linksPerSwitch, rng, edges)) {
      continue;
    }
    Topology topo(spec.numSwitches, spec.nodesPerSwitch + spec.linksPerSwitch,
                  spec.nodesPerSwitch);
    bool ok = true;
    for (const auto& [a, b] : edges) {
      if (!topo.addLink(a, b)) {
        ok = false;
        break;
      }
    }
    if (ok && topo.connectedSwitchGraph()) return topo;
  }
  throw std::runtime_error("makeIrregular: no connected topology found");
}

Topology makeRing(int numSwitches, int nodesPerSwitch) {
  if (numSwitches < 3) throw std::invalid_argument("makeRing: need >= 3");
  Topology topo(numSwitches, nodesPerSwitch + 2, nodesPerSwitch);
  for (SwitchId sw = 0; sw < numSwitches; ++sw) {
    topo.addLink(sw, (sw + 1) % numSwitches);
  }
  return topo;
}

Topology makeMesh2D(int width, int height, int nodesPerSwitch) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("makeMesh2D: need width,height >= 2");
  }
  Topology topo(width * height, nodesPerSwitch + 4, nodesPerSwitch);
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) topo.addLink(id(x, y), id(x + 1, y));
      if (y + 1 < height) topo.addLink(id(x, y), id(x, y + 1));
    }
  }
  return topo;
}

Topology makeTorus2D(int width, int height, int nodesPerSwitch) {
  if (width < 3 || height < 3) {
    throw std::invalid_argument("makeTorus2D: need width,height >= 3");
  }
  Topology topo(width * height, nodesPerSwitch + 4, nodesPerSwitch);
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      topo.addLink(id(x, y), id((x + 1) % width, y));
      topo.addLink(id(x, y), id(x, (y + 1) % height));
    }
  }
  return topo;
}

Topology makeHypercube(int dim, int nodesPerSwitch) {
  if (dim < 1 || dim > 10) {
    throw std::invalid_argument("makeHypercube: dim in [1,10]");
  }
  const int n = 1 << dim;
  Topology topo(n, nodesPerSwitch + dim, nodesPerSwitch);
  for (SwitchId sw = 0; sw < n; ++sw) {
    for (int b = 0; b < dim; ++b) {
      const SwitchId nb = sw ^ (1 << b);
      if (sw < nb) topo.addLink(sw, nb);
    }
  }
  return topo;
}

Topology makeFatTree(const FatTreeSpec& spec) {
  const int k = spec.arity;
  const int n = spec.levels;
  if (k < 2) throw std::invalid_argument("makeFatTree: arity must be >= 2");
  if (n < 2) throw std::invalid_argument("makeFatTree: levels must be >= 2");
  const int hosts = spec.hostsPerLeaf < 0 ? k : spec.hostsPerLeaf;
  if (hosts < 1) {
    throw std::invalid_argument("makeFatTree: hostsPerLeaf must be >= 1");
  }
  // Switches per tier: k^(n-1); guard the whole fabric against overflow.
  std::int64_t perLevel = 1;
  for (int i = 0; i < n - 1; ++i) {
    perLevel *= k;
    if (perLevel * n > 1'000'000) {
      throw std::invalid_argument("makeFatTree: topology too large");
    }
  }
  const int m = static_cast<int>(perLevel);
  const int numSwitches = n * m;
  const int ports = std::max(2 * k, hosts + k);

  // Hosts hang off the leaf tier only; upper tiers are pure transit.
  std::vector<int> nodesAtSwitch(static_cast<std::size_t>(numSwitches), 0);
  for (int w = 0; w < m; ++w) nodesAtSwitch[static_cast<std::size_t>(w)] = hosts;
  Topology topo(ports, std::move(nodesAtSwitch));

  // Switch <l, w> (id = l*m + w) connects upward to the k switches at level
  // l+1 whose radix-k digit strings agree with w everywhere except digit l.
  std::int64_t digitStride = 1;  // k^l
  for (int l = 0; l < n - 1; ++l) {
    for (int w = 0; w < m; ++w) {
      const int digit = static_cast<int>((w / digitStride) % k);
      const int base = w - static_cast<int>(digit * digitStride);
      for (int c = 0; c < k; ++c) {
        const int v = base + static_cast<int>(c * digitStride);
        if (!topo.addLink(l * m + w, (l + 1) * m + v)) {
          throw std::logic_error("makeFatTree: wiring conflict (bug)");
        }
      }
    }
    digitStride *= k;
  }
  // Locality hint: group = position within the level (the "column" of one
  // switch per level sharing position w). A column is the unit a shard
  // partition should never split — its straight links run through every
  // level — and positions sharing high radix-k digits are numerically
  // adjacent, so contiguous column ranges cut only the top butterfly
  // stages, the ones the fewest source/destination pairs ever climb to.
  std::vector<std::int32_t> groups(static_cast<std::size_t>(numSwitches));
  for (int l = 0; l < n; ++l) {
    for (int w = 0; w < m; ++w) {
      groups[static_cast<std::size_t>(l * m + w)] =
          static_cast<std::int32_t>(w);
    }
  }
  topo.setLocalityGroups(std::move(groups));
  return topo;
}

Topology makeDragonfly(const DragonflySpec& spec) {
  const int a = spec.routersPerGroup;
  const int p = spec.hostsPerRouter;
  const int h = spec.globalPerRouter;
  const int g = spec.groups > 0 ? spec.groups : a * h + 1;
  if (a < 2) {
    throw std::invalid_argument("makeDragonfly: routersPerGroup must be >= 2");
  }
  if (p < 1) {
    throw std::invalid_argument("makeDragonfly: hostsPerRouter must be >= 1");
  }
  if (h < 1) {
    throw std::invalid_argument("makeDragonfly: globalPerRouter must be >= 1");
  }
  if (g < 2 || g > a * h + 1) {
    throw std::invalid_argument("makeDragonfly: groups must be in [2, a*h+1]");
  }
  if (g > 2 && a * h < 2) {
    throw std::invalid_argument(
        "makeDragonfly: need a*h >= 2 global ports per group to ring >2 groups");
  }
  const std::int64_t numSwitches64 = static_cast<std::int64_t>(a) * g;
  if (numSwitches64 > 1'000'000) {
    throw std::invalid_argument("makeDragonfly: topology too large");
  }
  const int numSwitches = static_cast<int>(numSwitches64);
  const int ports = p + (a - 1) + h;
  Topology topo(numSwitches, ports, p);

  // Intra-group: each group is a clique of `a` routers.
  for (int grp = 0; grp < g; ++grp) {
    const SwitchId base = grp * a;
    for (int i = 0; i < a; ++i) {
      for (int j = i + 1; j < a; ++j) {
        topo.addLink(base + i, base + j);
      }
    }
  }

  // Inter-group: every group owns a*h global attach points ("stubs", one
  // per router global port), listed round-robin across routers and then
  // seed-permuted so the seed varies which router carries which link.
  std::vector<std::vector<SwitchId>> stubs(static_cast<std::size_t>(g));
  {
    Rng rng(spec.seed);
    for (int grp = 0; grp < g; ++grp) {
      auto& s = stubs[static_cast<std::size_t>(grp)];
      s.reserve(static_cast<std::size_t>(a) * h);
      for (int j = 0; j < h; ++j) {
        for (int r = 0; r < a; ++r) s.push_back(grp * a + r);
      }
      rng.shuffle(s);
    }
  }
  // Pair stubs round-robin over group distances: sweep d = 1 .. g/2 placing
  // one link per (group, distance) visit, and repeat whole sweeps until no
  // stub pair can be placed. Nearest pairs land first, so the d=1 pass
  // alone rings every group together (connectivity), and later sweeps
  // spread the remaining global ports evenly over farther pairs.
  auto takePair = [&topo, &stubs](int grpA, int grpB) {
    auto& sa = stubs[static_cast<std::size_t>(grpA)];
    auto& sb = stubs[static_cast<std::size_t>(grpB)];
    for (std::size_t i = 0; i < sa.size(); ++i) {
      for (std::size_t j = 0; j < sb.size(); ++j) {
        if (topo.linked(sa[i], sb[j])) continue;  // at most one link per pair
        if (!topo.addLink(sa[i], sb[j])) continue;
        sa.erase(sa.begin() + static_cast<std::ptrdiff_t>(i));
        sb.erase(sb.begin() + static_cast<std::ptrdiff_t>(j));
        return true;
      }
    }
    return false;
  };
  bool placed = true;
  while (placed) {
    placed = false;
    for (int d = 1; d <= g / 2; ++d) {
      for (int grp = 0; grp < g; ++grp) {
        const int to = (grp + d) % g;
        // Even g, antipodal distance: each unordered pair shows up twice
        // per sweep; keep only the lower-id visit.
        if (2 * d == g && grp > to) continue;
        if (takePair(grp, to)) placed = true;
      }
    }
  }

  if (!topo.connectedSwitchGraph()) {
    throw std::runtime_error("makeDragonfly: disconnected wiring (bug)");
  }
  // Locality hint: group = dragonfly group. Keeping a group whole keeps its
  // entire clique internal, so a shard boundary can only ever cut the far
  // sparser global links.
  std::vector<std::int32_t> groups(static_cast<std::size_t>(numSwitches));
  for (SwitchId sw = 0; sw < numSwitches; ++sw) {
    groups[static_cast<std::size_t>(sw)] = static_cast<std::int32_t>(sw / a);
  }
  topo.setLocalityGroups(std::move(groups));
  return topo;
}

}  // namespace ibadapt
