#include "topology/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibadapt {

namespace {

/// Wired-port weight of every switch: attached CAs plus live inter-switch
/// links. Ports that were never wired own no buffers or credit state and
/// generate no events, so they carry no weight.
std::vector<std::int64_t> switchWeights(const Topology& topo) {
  const int numSwitches = topo.numSwitches();
  std::vector<std::int64_t> w(static_cast<std::size_t>(numSwitches), 0);
  for (SwitchId s = 0; s < numSwitches; ++s) {
    w[static_cast<std::size_t>(s)] =
        static_cast<std::int64_t>(topo.nodeCount(s)) +
        static_cast<std::int64_t>(topo.interSwitchDegree(s));
  }
  return w;
}

/// Fill the result's metrics from a finished shardOf assignment.
void finishMetrics(const Topology& topo, const SwitchAdjacency& adj,
                   int shards, PartitionResult& r) {
  const int numSwitches = topo.numSwitches();
  const std::vector<std::int64_t> w = switchWeights(topo);
  r.shardWeight.assign(static_cast<std::size_t>(shards), 0);
  r.totalWeight = 0;
  for (SwitchId s = 0; s < numSwitches; ++s) {
    r.shardWeight[static_cast<std::size_t>(
        r.shardOf[static_cast<std::size_t>(s)])] +=
        w[static_cast<std::size_t>(s)];
    r.totalWeight += w[static_cast<std::size_t>(s)];
  }
  r.maxWeight = 0;
  for (const std::int64_t sw : r.shardWeight) {
    r.maxWeight = std::max(r.maxWeight, sw);
  }
  // Count each undirected link once via the lower endpoint id. Parallel
  // links between the same switch pair each count (they each carry their
  // own mailbox traffic).
  r.cutLinks = 0;
  r.totalLinks = static_cast<std::uint64_t>(topo.numLinks());
  for (SwitchId s = 0; s < numSwitches; ++s) {
    const SwitchAdjacency::Span nb = adj.neighbors(s);
    for (int i = 0; i < nb.count; ++i) {
      if (nb.ids[i] < s) continue;
      if (nb.ids[i] == s) {
        // Self-loop halves count twice in the CSR; charge once, never cut.
        continue;
      }
      if (r.shardOf[static_cast<std::size_t>(s)] !=
          r.shardOf[static_cast<std::size_t>(nb.ids[i])]) {
        ++r.cutLinks;
      }
    }
  }
  const std::int64_t ideal =
      (r.totalWeight + shards - 1) / std::max(shards, 1);
  r.imbalance = ideal > 0 ? static_cast<double>(r.maxWeight) /
                                static_cast<double>(ideal)
                          : 1.0;
}

/// Per-endpoint traffic weight of a link for the grow/refine objective:
/// a link touching CA-bearing switches carries every packet those CAs
/// inject or eject (plus the matching credit returns), so cutting it costs
/// far more mailbox traffic than cutting an interior link. Weighting the
/// cut objective by 1 + CAs(u) + CAs(v) steers both passes toward keeping
/// the injection-adjacent boundary inside one shard — raw geometric cut is
/// reported as a diagnostic, but traffic is what the window barrier pays.
std::vector<std::int32_t> linkTrafficBias(const Topology& topo) {
  const int numSwitches = topo.numSwitches();
  std::vector<std::int32_t> bias(static_cast<std::size_t>(numSwitches), 0);
  for (SwitchId s = 0; s < numSwitches; ++s) {
    bias[static_cast<std::size_t>(s)] =
        static_cast<std::int32_t>(topo.nodeCount(s));
  }
  return bias;
}

/// Group-aware seeding for hierarchical fabrics: pack whole locality groups
/// (fat-tree position columns, dragonfly groups), in group-id order, into
/// shards with the per-shard target recomputed from the remaining weight —
/// the same policy as the greedy grower, one level up. Generators number
/// groups so that numerically adjacent ids are topologically close, so a
/// contiguous run of groups cuts only the boundaries the hierarchy itself
/// marks as cold (top butterfly stages, inter-group globals). Returns false
/// — leaving shardOf untouched — when the hint is absent or whole-group
/// packing cannot meet the balance cap (fewer populated groups than shards,
/// or a run that would overshoot); the greedy grower then takes over.
bool seedFromGroups(const Topology& topo, int shards, double epsilon,
                    std::vector<std::int32_t>& shardOf) {
  if (!topo.hasLocalityGroups()) return false;
  const int numSwitches = topo.numSwitches();
  const std::vector<std::int64_t> w = switchWeights(topo);
  std::vector<std::int64_t> groupW(static_cast<std::size_t>(numSwitches), 0);
  std::vector<std::int32_t> groupPop(static_cast<std::size_t>(numSwitches),
                                     0);
  std::int64_t totalW = 0;
  std::int64_t maxSwitchW = 0;
  for (SwitchId s = 0; s < numSwitches; ++s) {
    const auto g = static_cast<std::size_t>(topo.localityGroupOf(s));
    groupW[g] += w[static_cast<std::size_t>(s)];
    ++groupPop[g];
    totalW += w[static_cast<std::size_t>(s)];
    maxSwitchW = std::max(maxSwitchW, w[static_cast<std::size_t>(s)]);
  }
  std::vector<std::int32_t> order;  // populated group ids, ascending
  for (std::int32_t g = 0; g < numSwitches; ++g) {
    if (groupPop[static_cast<std::size_t>(g)] > 0) order.push_back(g);
  }
  if (static_cast<int>(order.size()) < shards) return false;

  const std::int64_t ideal = (totalW + shards - 1) / shards;
  const std::int64_t cap = std::max<std::int64_t>(
      static_cast<std::int64_t>(static_cast<double>(ideal) * (1.0 + epsilon)),
      maxSwitchW);
  std::vector<std::int32_t> shardOfGroup(static_cast<std::size_t>(numSwitches),
                                         -1);
  std::int64_t remainingW = totalW;
  std::size_t g = 0;
  for (int k = 0; k < shards; ++k) {
    const int reserve = shards - k - 1;
    const std::int64_t target = (remainingW + reserve) / (reserve + 1);
    std::int64_t weight = 0;
    while (g < order.size()) {
      // Take at least one group per shard; stop once the target is met or
      // only enough groups remain to keep the later shards non-empty.
      shardOfGroup[static_cast<std::size_t>(order[g])] = k;
      weight += groupW[static_cast<std::size_t>(order[g])];
      remainingW -= groupW[static_cast<std::size_t>(order[g])];
      ++g;
      if (static_cast<int>(order.size() - g) <= reserve) break;
      if (weight >= target) break;
    }
    if (weight > cap) return false;
  }

  shardOf.resize(static_cast<std::size_t>(numSwitches));
  for (SwitchId s = 0; s < numSwitches; ++s) {
    shardOf[static_cast<std::size_t>(s)] = shardOfGroup[static_cast<std::size_t>(
        topo.localityGroupOf(s))];
  }
  return true;
}

/// Greedy graph growing: seed at the lowest-id unassigned switch, then
/// repeatedly absorb the unassigned switch with the most (traffic-weighted)
/// links into the growing shard (ties to the lowest id). Per-shard targets
/// are recomputed from the remaining weight so early shards cannot starve
/// late ones.
void growShards(const Topology& topo, const SwitchAdjacency& adj, int shards,
                double epsilon, std::vector<std::int32_t>& shardOf) {
  const int numSwitches = topo.numSwitches();
  const std::vector<std::int64_t> w = switchWeights(topo);
  const std::vector<std::int32_t> bias = linkTrafficBias(topo);
  std::int64_t totalW = 0;
  std::int64_t maxSwitchW = 0;
  for (const std::int64_t x : w) {
    totalW += x;
    maxSwitchW = std::max(maxSwitchW, x);
  }
  const std::int64_t ideal = (totalW + shards - 1) / shards;
  const std::int64_t cap = std::max<std::int64_t>(
      static_cast<std::int64_t>(static_cast<double>(ideal) * (1.0 + epsilon)),
      maxSwitchW);

  shardOf.assign(static_cast<std::size_t>(numSwitches), -1);
  // gain[s] = links from unassigned switch s into the currently growing
  // shard; rebuilt from zero at each seed.
  std::vector<std::int32_t> gain(static_cast<std::size_t>(numSwitches), 0);
  std::int64_t remainingW = totalW;
  int assigned = 0;
  SwitchId seedScan = 0;

  for (int k = 0; k < shards && assigned < numSwitches; ++k) {
    // Never overshoot so far that the remaining shards cannot all be
    // non-empty: stop this shard while at least (shards - k - 1) switches
    // remain unassigned.
    const int reserve = shards - k - 1;
    const std::int64_t target =
        (remainingW + reserve) / (reserve + 1);  // ceil over remaining shards
    while (seedScan < numSwitches &&
           shardOf[static_cast<std::size_t>(seedScan)] >= 0) {
      ++seedScan;
    }
    std::fill(gain.begin(), gain.end(), 0);
    std::int64_t weight = 0;
    SwitchId next = seedScan;  // seed: lowest-id unassigned switch
    while (next >= 0) {
      shardOf[static_cast<std::size_t>(next)] = k;
      weight += w[static_cast<std::size_t>(next)];
      remainingW -= w[static_cast<std::size_t>(next)];
      ++assigned;
      const SwitchAdjacency::Span nb = adj.neighbors(next);
      for (int i = 0; i < nb.count; ++i) {
        if (shardOf[static_cast<std::size_t>(nb.ids[i])] < 0) {
          gain[static_cast<std::size_t>(nb.ids[i])] +=
              1 + bias[static_cast<std::size_t>(next)] +
              bias[static_cast<std::size_t>(nb.ids[i])];
        }
      }
      if (numSwitches - assigned <= reserve) break;
      if (weight >= target) break;
      // Best frontier candidate that still fits under the cap; when the
      // frontier is empty (disconnected component exhausted) fall back to
      // the lowest-id unassigned switch.
      next = -1;
      std::int32_t bestGain = 0;
      SwitchId fallback = -1;
      for (SwitchId s = 0; s < numSwitches; ++s) {
        if (shardOf[static_cast<std::size_t>(s)] >= 0) continue;
        if (weight + w[static_cast<std::size_t>(s)] > cap) continue;
        if (fallback < 0) fallback = s;
        if (gain[static_cast<std::size_t>(s)] > bestGain) {
          bestGain = gain[static_cast<std::size_t>(s)];
          next = s;
        }
      }
      if (next < 0) next = fallback;
    }
  }
  // Leftovers (cap pressure on the last shard): lightest shard wins, ties
  // to the lowest shard index — keeps the bound while staying deterministic.
  if (assigned < numSwitches) {
    std::vector<std::int64_t> sw(static_cast<std::size_t>(shards), 0);
    for (SwitchId s = 0; s < numSwitches; ++s) {
      if (shardOf[static_cast<std::size_t>(s)] >= 0) {
        sw[static_cast<std::size_t>(shardOf[static_cast<std::size_t>(s)])] +=
            w[static_cast<std::size_t>(s)];
      }
    }
    for (SwitchId s = 0; s < numSwitches; ++s) {
      if (shardOf[static_cast<std::size_t>(s)] >= 0) continue;
      int best = 0;
      for (int k = 1; k < shards; ++k) {
        if (sw[static_cast<std::size_t>(k)] < sw[static_cast<std::size_t>(best)]) {
          best = k;
        }
      }
      shardOf[static_cast<std::size_t>(s)] = best;
      sw[static_cast<std::size_t>(best)] += w[static_cast<std::size_t>(s)];
    }
  }
}

/// KL/FM-style polish: sweep switches in id order, moving a switch to the
/// neighboring shard holding most of its traffic-weighted links when that
/// strictly reduces the weighted cut, keeps every shard non-empty, and
/// respects the balance cap. First-improvement, fixed pass budget,
/// deterministic tie-breaks.
void refine(const Topology& topo, const SwitchAdjacency& adj, int shards,
            double epsilon, std::vector<std::int32_t>& shardOf) {
  const int numSwitches = topo.numSwitches();
  const std::vector<std::int64_t> w = switchWeights(topo);
  const std::vector<std::int32_t> bias = linkTrafficBias(topo);
  std::int64_t totalW = 0;
  std::int64_t maxSwitchW = 0;
  for (const std::int64_t x : w) {
    totalW += x;
    maxSwitchW = std::max(maxSwitchW, x);
  }
  const std::int64_t ideal = (totalW + shards - 1) / shards;
  const std::int64_t cap = std::max<std::int64_t>(
      static_cast<std::int64_t>(static_cast<double>(ideal) * (1.0 + epsilon)),
      maxSwitchW);

  std::vector<std::int64_t> shardW(static_cast<std::size_t>(shards), 0);
  std::vector<std::int32_t> shardPop(static_cast<std::size_t>(shards), 0);
  for (SwitchId s = 0; s < numSwitches; ++s) {
    shardW[static_cast<std::size_t>(shardOf[static_cast<std::size_t>(s)])] +=
        w[static_cast<std::size_t>(s)];
    ++shardPop[static_cast<std::size_t>(
        shardOf[static_cast<std::size_t>(s)])];
  }

  std::vector<std::int32_t> links(static_cast<std::size_t>(shards), 0);
  constexpr int kMaxPasses = 8;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    int moved = 0;
    for (SwitchId s = 0; s < numSwitches; ++s) {
      const int cur = shardOf[static_cast<std::size_t>(s)];
      if (shardPop[static_cast<std::size_t>(cur)] <= 1) continue;
      std::fill(links.begin(), links.end(), 0);
      const SwitchAdjacency::Span nb = adj.neighbors(s);
      for (int i = 0; i < nb.count; ++i) {
        links[static_cast<std::size_t>(
            shardOf[static_cast<std::size_t>(nb.ids[i])])] +=
            1 + bias[static_cast<std::size_t>(s)] +
            bias[static_cast<std::size_t>(nb.ids[i])];
      }
      int best = cur;
      for (int k = 0; k < shards; ++k) {
        if (k == cur) continue;
        if (links[static_cast<std::size_t>(k)] <=
            links[static_cast<std::size_t>(best)]) {
          continue;
        }
        if (shardW[static_cast<std::size_t>(k)] +
                w[static_cast<std::size_t>(s)] >
            cap) {
          continue;
        }
        best = k;
      }
      if (best != cur) {
        shardOf[static_cast<std::size_t>(s)] = best;
        shardW[static_cast<std::size_t>(cur)] -= w[static_cast<std::size_t>(s)];
        shardW[static_cast<std::size_t>(best)] += w[static_cast<std::size_t>(s)];
        --shardPop[static_cast<std::size_t>(cur)];
        ++shardPop[static_cast<std::size_t>(best)];
        ++moved;
      }
    }
    if (moved == 0) break;
  }
}

}  // namespace

const char* partitionStrategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kBlock:
      return "block";
    case PartitionStrategy::kRoundRobin:
      return "round-robin";
    case PartitionStrategy::kTopology:
      return "topology";
  }
  return "?";
}

PartitionResult partitionSwitches(const Topology& topo, int shards,
                                  PartitionStrategy strategy,
                                  double epsilon) {
  const int numSwitches = topo.numSwitches();
  if (shards < 1 || shards > numSwitches) {
    throw std::invalid_argument("partitionSwitches: shards in [1, switches]");
  }
  if (epsilon < 0.0) {
    throw std::invalid_argument("partitionSwitches: epsilon >= 0");
  }
  PartitionResult r;
  const SwitchAdjacency adj(topo);
  if (shards == 1) {
    r.shardOf.assign(static_cast<std::size_t>(numSwitches), 0);
    finishMetrics(topo, adj, shards, r);
    return r;
  }
  switch (strategy) {
    case PartitionStrategy::kBlock:
      r.shardOf.resize(static_cast<std::size_t>(numSwitches));
      for (SwitchId s = 0; s < numSwitches; ++s) {
        r.shardOf[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(s) * shards / numSwitches);
      }
      break;
    case PartitionStrategy::kRoundRobin:
      r.shardOf.resize(static_cast<std::size_t>(numSwitches));
      for (SwitchId s = 0; s < numSwitches; ++s) {
        r.shardOf[static_cast<std::size_t>(s)] =
            static_cast<std::int32_t>(s % shards);
      }
      break;
    case PartitionStrategy::kTopology:
      if (!seedFromGroups(topo, shards, epsilon, r.shardOf)) {
        growShards(topo, adj, shards, epsilon, r.shardOf);
      }
      refine(topo, adj, shards, epsilon, r.shardOf);
      break;
  }
  finishMetrics(topo, adj, shards, r);
  return r;
}

}  // namespace ibadapt
