#pragma once
//
// Subnet topology: switches with a fixed port count, end nodes (CA ports)
// attached to the low-numbered ports of their switch, and full-duplex
// inter-switch links on the remaining ports.
//
// Conventions (matching the paper's evaluation setup):
//   * every switch has the same number of ports,
//   * end nodes occupy the low ports of their switch,
//   * at most one link connects any pair of switches.
//
// Node attachment comes in two flavors:
//   * uniform (the paper's setup): the same number of end nodes hangs off
//     every switch, and node `n` attaches to switch `n / nodesPerSwitch` at
//     port `n % nodesPerSwitch` — pure arithmetic, no lookup tables;
//   * per-switch (hierarchical fabrics): each switch declares its own node
//     count — fat-trees attach hosts only to leaf switches — and the
//     node<->switch mapping goes through O(1) lookup arrays built once.
//
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

enum class PeerKind : std::uint8_t { kUnused, kNode, kSwitch };

/// What is on the far side of a switch port.
struct Peer {
  PeerKind kind = PeerKind::kUnused;
  std::int32_t id = kInvalidId;       // NodeId or SwitchId
  PortIndex port = kInvalidPort;      // peer's port (switch peers only)
};

class Topology {
 public:
  /// Creates `numSwitches` switches with `portsPerSwitch` ports each and
  /// attaches `nodesPerSwitch` end nodes per switch on the low ports.
  Topology(int numSwitches, int portsPerSwitch, int nodesPerSwitch);

  /// Per-switch node attachment: switch `sw` hosts `nodesAtSwitch[sw]` end
  /// nodes on its low ports; node ids run in switch order. Used by the
  /// hierarchical generators (fat-trees attach hosts only to leaves).
  Topology(int portsPerSwitch, std::vector<int> nodesAtSwitch);

  int numSwitches() const { return numSwitches_; }
  int portsPerSwitch() const { return portsPerSwitch_; }
  int numNodes() const { return numNodes_; }

  /// True when every switch hosts the same number of nodes (the arithmetic
  /// fast path; always true for the paper-style generators).
  bool uniformNodes() const { return uniformNodes_; }

  /// Uniform attachment count. For non-uniform topologies this is the
  /// maximum over switches — use nodeCount(sw) / numNodes() for exact
  /// per-switch or aggregate accounting.
  int nodesPerSwitch() const { return nodesPerSwitch_; }

  /// End nodes attached to `sw` (they occupy ports [0, nodeCount(sw))).
  int nodeCount(SwitchId sw) const {
    return uniformNodes_ ? nodesPerSwitch_
                         : nodeBase_[static_cast<std::size_t>(sw) + 1] -
                               nodeBase_[static_cast<std::size_t>(sw)];
  }

  SwitchId switchOfNode(NodeId n) const {
    return uniformNodes_ ? n / nodesPerSwitch_
                         : nodeSwitch_[static_cast<std::size_t>(n)];
  }
  PortIndex portOfNode(NodeId n) const {
    return uniformNodes_
               ? n % nodesPerSwitch_
               : n - nodeBase_[static_cast<std::size_t>(
                         nodeSwitch_[static_cast<std::size_t>(n)])];
  }

  /// Node attached at (sw, port); precondition: that port hosts a node.
  NodeId nodeAt(SwitchId sw, PortIndex port) const {
    return uniformNodes_ ? sw * nodesPerSwitch_ + port
                         : nodeBase_[static_cast<std::size_t>(sw)] + port;
  }

  const Peer& peer(SwitchId sw, PortIndex port) const {
    return ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(port)];
  }

  /// Connects switches a and b on their first free ports.
  /// Throws std::invalid_argument on self-link; returns false when the pair
  /// is already linked or either switch has no free port.
  bool addLink(SwitchId a, SwitchId b);

  /// Removes the inter-switch link attached at (sw, port); both endpoints
  /// become unused. Models a fail-stop link fault. Throws when the port
  /// does not host an inter-switch link.
  void removeLink(SwitchId sw, PortIndex port);

  /// Reconnects a specific port pair — the inverse of removeLink, used when
  /// a failed link comes back up. Unlike addLink the ports are explicit so
  /// the restored link occupies exactly the ports it had before the fault.
  /// Throws when either port is out of the inter-switch range, already
  /// wired, or the switches are already linked elsewhere.
  void restoreLink(SwitchId a, PortIndex portA, SwitchId b, PortIndex portB);

  bool linked(SwitchId a, SwitchId b) const;

  /// Number of inter-switch links on `sw`.
  int interSwitchDegree(SwitchId sw) const;

  /// Total number of inter-switch links in the subnet.
  int numLinks() const { return numLinks_; }

  /// Neighbor switches of `sw` as (neighbor, local port) pairs. Allocates
  /// per call — setup loops that walk the whole graph repeatedly should
  /// build a SwitchAdjacency snapshot instead.
  std::vector<std::pair<SwitchId, PortIndex>> switchNeighbors(SwitchId sw) const;

  /// True when the switch graph is connected (single switch counts as true).
  bool connectedSwitchGraph() const;

  /// Hop distances from `from` to every switch (-1 = unreachable).
  std::vector<int> bfsDistances(SwitchId from) const;

  /// Human-readable dump (for examples / debugging).
  std::string describe() const;

  /// Locality-group hint for the shard partitioner. Hierarchical generators
  /// label every switch with a group id such that (a) switches sharing an id
  /// are densely wired to each other, and (b) numerically adjacent ids are
  /// topologically close — so contiguous id ranges make good shards
  /// (fat-tree position columns, dragonfly groups). Absent (empty) when the
  /// topology has no known hierarchy. Ids must lie in [0, numSwitches()).
  void setLocalityGroups(std::vector<std::int32_t> groups);
  bool hasLocalityGroups() const { return !localityGroups_.empty(); }
  std::int32_t localityGroupOf(SwitchId sw) const {
    return localityGroups_[static_cast<std::size_t>(sw)];
  }

 private:
  PortIndex firstFreePort(SwitchId sw) const;

  int numSwitches_;
  int portsPerSwitch_;
  int nodesPerSwitch_;
  int numNodes_;
  int numLinks_ = 0;
  bool uniformNodes_ = true;
  // Non-uniform attachment lookups (empty on the uniform fast path):
  // nodeBase_[sw] = first node id on sw (size S+1, prefix sums);
  // nodeSwitch_[n] = owning switch (size N).
  std::vector<NodeId> nodeBase_;
  std::vector<SwitchId> nodeSwitch_;
  std::vector<std::vector<Peer>> ports_;
  std::vector<std::int32_t> localityGroups_;  // empty = no hint
};

/// Compact CSR snapshot of the inter-switch graph. The routing setup path
/// (root selection, up*/down* level + table builds, all-pairs distances)
/// walks switch neighbors millions of times at 1024+ switches; going through
/// Topology::switchNeighbors would allocate a fresh vector per visit. A
/// SwitchAdjacency is built once per topology snapshot and shared across
/// every BFS pass, and its bfsInto reuses caller-owned scratch buffers so
/// steady-state traversal allocates nothing.
class SwitchAdjacency {
 public:
  explicit SwitchAdjacency(const Topology& topo);

  int numSwitches() const { return numSwitches_; }

  struct Span {
    const SwitchId* ids;
    const PortIndex* ports;
    int count;
  };
  Span neighbors(SwitchId sw) const {
    const int b = offsets_[static_cast<std::size_t>(sw)];
    const int e = offsets_[static_cast<std::size_t>(sw) + 1];
    return {nbrIds_.data() + b, nbrPorts_.data() + b, e - b};
  }

  /// BFS hop distances from `from` into `dist` (resized and reset to -1);
  /// `queue` is caller-owned scratch. Equivalent to Topology::bfsDistances
  /// but allocation-free once the scratch buffers are warm.
  void bfsInto(SwitchId from, std::vector<int>& dist,
               std::vector<SwitchId>& queue) const;

 private:
  int numSwitches_;
  std::vector<int> offsets_;       // size S+1
  std::vector<SwitchId> nbrIds_;   // size 2*links
  std::vector<PortIndex> nbrPorts_;
};

/// All-pairs shortest switch-to-switch distances (BFS per switch).
std::vector<std::vector<int>> allPairsDistances(const Topology& topo);

}  // namespace ibadapt
