#pragma once
//
// Subnet topology: switches with a fixed port count, end nodes (CA ports)
// attached to the low-numbered switch ports, and full-duplex inter-switch
// links on the remaining ports.
//
// Conventions (matching the paper's evaluation setup):
//   * every switch has the same number of ports,
//   * the same number of end nodes hangs off every switch (default 4),
//   * at most one link connects any pair of switches,
//   * node `n` attaches to switch `n / nodesPerSwitch` at port
//     `n % nodesPerSwitch`.
//
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

enum class PeerKind : std::uint8_t { kUnused, kNode, kSwitch };

/// What is on the far side of a switch port.
struct Peer {
  PeerKind kind = PeerKind::kUnused;
  std::int32_t id = kInvalidId;       // NodeId or SwitchId
  PortIndex port = kInvalidPort;      // peer's port (switch peers only)
};

class Topology {
 public:
  /// Creates `numSwitches` switches with `portsPerSwitch` ports each and
  /// attaches `nodesPerSwitch` end nodes per switch on the low ports.
  Topology(int numSwitches, int portsPerSwitch, int nodesPerSwitch);

  int numSwitches() const { return numSwitches_; }
  int portsPerSwitch() const { return portsPerSwitch_; }
  int nodesPerSwitch() const { return nodesPerSwitch_; }
  int numNodes() const { return numSwitches_ * nodesPerSwitch_; }

  SwitchId switchOfNode(NodeId n) const { return n / nodesPerSwitch_; }
  PortIndex portOfNode(NodeId n) const { return n % nodesPerSwitch_; }

  /// Node attached at (sw, port); precondition: that port hosts a node.
  NodeId nodeAt(SwitchId sw, PortIndex port) const {
    return sw * nodesPerSwitch_ + port;
  }

  const Peer& peer(SwitchId sw, PortIndex port) const {
    return ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(port)];
  }

  /// Connects switches a and b on their first free ports.
  /// Throws std::invalid_argument on self-link; returns false when the pair
  /// is already linked or either switch has no free port.
  bool addLink(SwitchId a, SwitchId b);

  /// Removes the inter-switch link attached at (sw, port); both endpoints
  /// become unused. Models a fail-stop link fault. Throws when the port
  /// does not host an inter-switch link.
  void removeLink(SwitchId sw, PortIndex port);

  /// Reconnects a specific port pair — the inverse of removeLink, used when
  /// a failed link comes back up. Unlike addLink the ports are explicit so
  /// the restored link occupies exactly the ports it had before the fault.
  /// Throws when either port is out of the inter-switch range, already
  /// wired, or the switches are already linked elsewhere.
  void restoreLink(SwitchId a, PortIndex portA, SwitchId b, PortIndex portB);

  bool linked(SwitchId a, SwitchId b) const;

  /// Number of inter-switch links on `sw`.
  int interSwitchDegree(SwitchId sw) const;

  /// Total number of inter-switch links in the subnet.
  int numLinks() const { return numLinks_; }

  /// Neighbor switches of `sw` as (neighbor, local port) pairs.
  std::vector<std::pair<SwitchId, PortIndex>> switchNeighbors(SwitchId sw) const;

  /// True when the switch graph is connected (single switch counts as true).
  bool connectedSwitchGraph() const;

  /// Hop distances from `from` to every switch (-1 = unreachable).
  std::vector<int> bfsDistances(SwitchId from) const;

  /// Human-readable dump (for examples / debugging).
  std::string describe() const;

 private:
  PortIndex firstFreePort(SwitchId sw) const;

  int numSwitches_;
  int portsPerSwitch_;
  int nodesPerSwitch_;
  int numLinks_ = 0;
  std::vector<std::vector<Peer>> ports_;
};

/// All-pairs shortest switch-to-switch distances (BFS per switch).
std::vector<std::vector<int>> allPairsDistances(const Topology& topo);

}  // namespace ibadapt
