#pragma once
//
// Topology generators.
//
// `makeIrregular` follows the paper's generation rules (§5.1): every switch
// has the same total port count, the same number of end nodes (4) attaches
// to every switch, neighboring switches are connected by exactly one link,
// and the switch graph must be connected.
//
// The regular generators (ring / mesh / torus / hypercube) are not used by
// the paper's evaluation but serve as ground-truth fixtures for routing and
// deadlock tests: their distance functions and cycle structure are known
// analytically.
//
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace ibadapt {

struct IrregularSpec {
  int numSwitches = 8;
  /// Ports used for inter-switch links ("4 links" / "6 links" in the paper).
  int linksPerSwitch = 4;
  int nodesPerSwitch = 4;
  /// Restart budget for the stub-matching generator.
  int maxAttempts = 5000;
};

/// Random connected irregular topology per the paper's rules. Throws
/// std::runtime_error if no valid topology is found within maxAttempts
/// (e.g. infeasible parameter combinations).
Topology makeIrregular(const IrregularSpec& spec, Rng& rng);

/// Ring of `numSwitches` switches (degree 2).
Topology makeRing(int numSwitches, int nodesPerSwitch);

/// width x height mesh (no wraparound).
Topology makeMesh2D(int width, int height, int nodesPerSwitch);

/// width x height torus; requires width >= 3 and height >= 3 so that
/// wraparound links never duplicate direct links.
Topology makeTorus2D(int width, int height, int nodesPerSwitch);

/// dim-dimensional hypercube (2^dim switches).
Topology makeHypercube(int dim, int nodesPerSwitch);

}  // namespace ibadapt
