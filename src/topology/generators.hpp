#pragma once
//
// Topology generators.
//
// `makeIrregular` follows the paper's generation rules (§5.1): every switch
// has the same total port count, the same number of end nodes (4) attaches
// to every switch, neighboring switches are connected by exactly one link,
// and the switch graph must be connected.
//
// The regular generators (ring / mesh / torus / hypercube) are not used by
// the paper's evaluation but serve as ground-truth fixtures for routing and
// deadlock tests: their distance functions and cycle structure are known
// analytically.
//
// The hierarchical generators (fat-tree / dragonfly) scale the topology
// axis to production fabrics of 1024+ switches: k-ary n-trees and
// dragonflies are what 1k-4k switch installations actually look like
// (booksim models the same pair as its composite networks). Both are
// deterministic pure functions of their spec; the dragonfly's seed only
// permutes which router in a group carries which global link.
//
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace ibadapt {

struct IrregularSpec {
  int numSwitches = 8;
  /// Ports used for inter-switch links ("4 links" / "6 links" in the paper).
  int linksPerSwitch = 4;
  int nodesPerSwitch = 4;
  /// Restart budget for the stub-matching generator.
  int maxAttempts = 5000;
};

/// Random connected irregular topology per the paper's rules. Throws
/// std::runtime_error if no valid topology is found within maxAttempts
/// (e.g. infeasible parameter combinations).
Topology makeIrregular(const IrregularSpec& spec, Rng& rng);

/// Ring of `numSwitches` switches (degree 2).
Topology makeRing(int numSwitches, int nodesPerSwitch);

/// width x height mesh (no wraparound).
Topology makeMesh2D(int width, int height, int nodesPerSwitch);

/// width x height torus; requires width >= 3 and height >= 3 so that
/// wraparound links never duplicate direct links.
Topology makeTorus2D(int width, int height, int nodesPerSwitch);

/// dim-dimensional hypercube (2^dim switches).
Topology makeHypercube(int dim, int nodesPerSwitch);

/// k-ary n-tree fat-tree (Petrini/Vanneschi construction).
///
/// `levels` (= n) switch tiers of arity^(n-1) switches each — levels x
/// k^(n-1) switches total. A switch at level l connects to the k switches
/// one level up that agree with it in every radix-k digit except digit l,
/// so every tier pair forms a full butterfly stage. Hosts attach only to
/// the level-0 (leaf) switches; every other tier has zero CA ports — the
/// per-switch node-attachment Topology constructor exists for exactly this
/// shape. Ports per switch: max(2*arity, hostsPerLeaf + arity).
///
/// Familiar sizes: arity=4, levels=4 -> 256 switches / 256 hosts;
/// arity=2, levels=8 -> 1024 switches / 256 hosts (the scale gate).
struct FatTreeSpec {
  int arity = 4;   // k: up-links per switch and down-links per switch
  int levels = 3;  // n: switch tiers
  /// Hosts per leaf switch; -1 means `arity` (the canonical k^n hosts).
  int hostsPerLeaf = -1;
};

Topology makeFatTree(const FatTreeSpec& spec);

/// Dragonfly (Kim et al.): `groups` groups of `routersPerGroup` (a) fully
/// connected routers; every router carries `hostsPerRouter` (p) CAs and
/// `globalPerRouter` (h) global links to other groups. Global links are
/// distributed round-robin over group distances — nearest group pairs are
/// wired first, then farther pairs, sweeping until the global ports run
/// out — which keeps the inter-group graph connected and balanced for any
/// g <= a*h + 1. `seed` permutes which router inside each group carries
/// which global link (wiring stays deterministic for a fixed seed).
/// Ports per switch: p + (a-1) + h.
///
/// Familiar sizes: a=8,p=4,h=1,g=8 -> 64 switches / 256 hosts;
/// a=16,p=4,h=4,g=64 -> 1024 switches / 4096 hosts (the scale gate).
struct DragonflySpec {
  int routersPerGroup = 4;  // a
  int hostsPerRouter = 2;   // p
  int globalPerRouter = 1;  // h
  /// Group count g; 0 means the balanced maximum a*h + 1.
  int groups = 0;
  std::uint64_t seed = 1;
};

Topology makeDragonfly(const DragonflySpec& spec);

}  // namespace ibadapt
