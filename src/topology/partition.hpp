#pragma once
//
// Topology-aware shard partitioning for the parallel event kernel.
//
// The parallel kernel pays for every inter-switch link that crosses a shard
// boundary twice per window: the packet header rides an SPSC mailbox to the
// barrier, and the credit return rides one back. A partition that keeps the
// hierarchical families' locality structure — fat-tree pods, dragonfly
// groups — inside one shard therefore cuts the per-window synchronization
// traffic by the cut ratio, without touching simulation results at all: the
// (producer, counter) stamp machinery makes SimResults bit-identical for ANY
// partition, so the partitioner is free to optimize purely for cut.
//
// partitionSwitches is fully deterministic (no RNG, id-ordered tie breaks):
// repeated calls on the same topology return the same assignment, which the
// bit-identity suites and the committed proxy-metric baselines rely on.
//
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace ibadapt {

/// How the fabric maps switches (and their attached CAs) onto shards.
enum class PartitionStrategy : std::uint8_t {
  /// Contiguous id blocks (`s * T / S`) — the pre-partitioner legacy
  /// mapping, kept as a comparison baseline.
  kBlock = 0,
  /// Strided `s % T` — the worst-case baseline the proxy gate measures
  /// against: on the generated families it splits nearly every link.
  kRoundRobin = 1,
  /// Locality-aware partitioning under a balance cap (default). When the
  /// generator published a locality-group hint (fat-tree position columns,
  /// dragonfly groups), shards are seeded by packing whole groups in id
  /// order — the hierarchy's own cold boundaries become the shard
  /// boundaries. Irregular fabrics without a hint fall back to greedy graph
  /// growing by maximum traffic-weighted gain. Either seeding is polished by
  /// KL/FM-style first-improvement passes.
  kTopology = 2,
};

const char* partitionStrategyName(PartitionStrategy s);

/// A computed switch->shard assignment plus the deterministic quality
/// metrics the perf gate and SimResults report. Weight = wired ports
/// (CA-facing + live inter-switch), the unit that owns buffers, credit
/// state, and event traffic.
struct PartitionResult {
  std::vector<std::int32_t> shardOf;     // size numSwitches, values [0, T)
  std::vector<std::int64_t> shardWeight; // wired-port weight per shard
  std::int64_t totalWeight = 0;
  std::int64_t maxWeight = 0;
  /// Inter-switch links with endpoints in different shards / all links.
  std::uint64_t cutLinks = 0;
  std::uint64_t totalLinks = 0;
  /// maxWeight over the ideal ceil(totalWeight / shards); 1.0 = perfectly
  /// balanced. The kTopology strategy bounds this by 1 + epsilon.
  double imbalance = 1.0;
};

/// Partition the switch graph into `shards` parts under `strategy`.
/// `epsilon` is the balance slack for kTopology: every shard's weight stays
/// <= ceil(totalWeight / shards) * (1 + epsilon) (never below the heaviest
/// single switch, which must fit somewhere). Deterministic; throws
/// std::invalid_argument for shards < 1 or shards > numSwitches.
PartitionResult partitionSwitches(const Topology& topo, int shards,
                                  PartitionStrategy strategy,
                                  double epsilon = 0.10);

}  // namespace ibadapt
