#include "topology/topology.hpp"

#include <deque>
#include <sstream>

namespace ibadapt {

Topology::Topology(int numSwitches, int portsPerSwitch, int nodesPerSwitch)
    : numSwitches_(numSwitches),
      portsPerSwitch_(portsPerSwitch),
      nodesPerSwitch_(nodesPerSwitch) {
  if (numSwitches <= 0 || portsPerSwitch <= 0 || nodesPerSwitch < 0 ||
      nodesPerSwitch > portsPerSwitch) {
    throw std::invalid_argument("Topology: inconsistent dimensions");
  }
  ports_.assign(static_cast<std::size_t>(numSwitches),
                std::vector<Peer>(static_cast<std::size_t>(portsPerSwitch)));
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    for (PortIndex p = 0; p < nodesPerSwitch_; ++p) {
      auto& peer = ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(p)];
      peer.kind = PeerKind::kNode;
      peer.id = nodeAt(sw, p);
      peer.port = 0;
    }
  }
}

PortIndex Topology::firstFreePort(SwitchId sw) const {
  for (PortIndex p = nodesPerSwitch_; p < portsPerSwitch_; ++p) {
    if (peer(sw, p).kind == PeerKind::kUnused) return p;
  }
  return kInvalidPort;
}

bool Topology::addLink(SwitchId a, SwitchId b) {
  if (a == b) throw std::invalid_argument("Topology::addLink: self-link");
  if (a < 0 || b < 0 || a >= numSwitches_ || b >= numSwitches_) {
    throw std::invalid_argument("Topology::addLink: switch id out of range");
  }
  if (linked(a, b)) return false;
  const PortIndex pa = firstFreePort(a);
  const PortIndex pb = firstFreePort(b);
  if (pa == kInvalidPort || pb == kInvalidPort) return false;
  ports_[static_cast<std::size_t>(a)][static_cast<std::size_t>(pa)] =
      Peer{PeerKind::kSwitch, b, pb};
  ports_[static_cast<std::size_t>(b)][static_cast<std::size_t>(pb)] =
      Peer{PeerKind::kSwitch, a, pa};
  ++numLinks_;
  return true;
}

void Topology::removeLink(SwitchId sw, PortIndex port) {
  Peer& p = ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(port)];
  if (p.kind != PeerKind::kSwitch) {
    throw std::invalid_argument("Topology::removeLink: not an inter-switch port");
  }
  Peer& q = ports_[static_cast<std::size_t>(p.id)][static_cast<std::size_t>(p.port)];
  q = Peer{};
  p = Peer{};
  --numLinks_;
}

void Topology::restoreLink(SwitchId a, PortIndex portA, SwitchId b,
                           PortIndex portB) {
  if (a == b) throw std::invalid_argument("Topology::restoreLink: self-link");
  if (a < 0 || b < 0 || a >= numSwitches_ || b >= numSwitches_) {
    throw std::invalid_argument("Topology::restoreLink: switch id out of range");
  }
  if (portA < nodesPerSwitch_ || portA >= portsPerSwitch_ ||
      portB < nodesPerSwitch_ || portB >= portsPerSwitch_) {
    throw std::invalid_argument(
        "Topology::restoreLink: port outside the inter-switch range");
  }
  if (peer(a, portA).kind != PeerKind::kUnused ||
      peer(b, portB).kind != PeerKind::kUnused) {
    throw std::invalid_argument("Topology::restoreLink: port already wired");
  }
  if (linked(a, b)) {
    throw std::invalid_argument("Topology::restoreLink: pair already linked");
  }
  ports_[static_cast<std::size_t>(a)][static_cast<std::size_t>(portA)] =
      Peer{PeerKind::kSwitch, b, portB};
  ports_[static_cast<std::size_t>(b)][static_cast<std::size_t>(portB)] =
      Peer{PeerKind::kSwitch, a, portA};
  ++numLinks_;
}

bool Topology::linked(SwitchId a, SwitchId b) const {
  for (PortIndex p = nodesPerSwitch_; p < portsPerSwitch_; ++p) {
    const Peer& pe = peer(a, p);
    if (pe.kind == PeerKind::kSwitch && pe.id == b) return true;
  }
  return false;
}

int Topology::interSwitchDegree(SwitchId sw) const {
  int deg = 0;
  for (PortIndex p = nodesPerSwitch_; p < portsPerSwitch_; ++p) {
    if (peer(sw, p).kind == PeerKind::kSwitch) ++deg;
  }
  return deg;
}

std::vector<std::pair<SwitchId, PortIndex>> Topology::switchNeighbors(
    SwitchId sw) const {
  std::vector<std::pair<SwitchId, PortIndex>> out;
  for (PortIndex p = nodesPerSwitch_; p < portsPerSwitch_; ++p) {
    const Peer& pe = peer(sw, p);
    if (pe.kind == PeerKind::kSwitch) out.emplace_back(pe.id, p);
  }
  return out;
}

bool Topology::connectedSwitchGraph() const {
  const auto dist = bfsDistances(0);
  for (int d : dist) {
    if (d < 0) return false;
  }
  return true;
}

std::vector<int> Topology::bfsDistances(SwitchId from) const {
  std::vector<int> dist(static_cast<std::size_t>(numSwitches_), -1);
  std::deque<SwitchId> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const SwitchId sw = queue.front();
    queue.pop_front();
    for (const auto& [nb, port] : switchNeighbors(sw)) {
      (void)port;
      if (dist[static_cast<std::size_t>(nb)] < 0) {
        dist[static_cast<std::size_t>(nb)] = dist[static_cast<std::size_t>(sw)] + 1;
        queue.push_back(nb);
      }
    }
  }
  return dist;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "Topology: " << numSwitches_ << " switches x " << portsPerSwitch_
     << " ports, " << nodesPerSwitch_ << " nodes/switch, " << numLinks_
     << " inter-switch links\n";
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    os << "  sw" << sw << " ->";
    for (const auto& [nb, port] : switchNeighbors(sw)) {
      os << " sw" << nb << "(p" << port << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::vector<std::vector<int>> allPairsDistances(const Topology& topo) {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(topo.numSwitches()));
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    dist.push_back(topo.bfsDistances(sw));
  }
  return dist;
}

}  // namespace ibadapt
