#include "topology/topology.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace ibadapt {

Topology::Topology(int numSwitches, int portsPerSwitch, int nodesPerSwitch)
    : numSwitches_(numSwitches),
      portsPerSwitch_(portsPerSwitch),
      nodesPerSwitch_(nodesPerSwitch),
      numNodes_(numSwitches * nodesPerSwitch) {
  if (numSwitches <= 0 || portsPerSwitch <= 0 || nodesPerSwitch < 0 ||
      nodesPerSwitch > portsPerSwitch) {
    throw std::invalid_argument("Topology: inconsistent dimensions");
  }
  ports_.assign(static_cast<std::size_t>(numSwitches),
                std::vector<Peer>(static_cast<std::size_t>(portsPerSwitch)));
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    for (PortIndex p = 0; p < nodesPerSwitch_; ++p) {
      auto& peer = ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(p)];
      peer.kind = PeerKind::kNode;
      peer.id = nodeAt(sw, p);
      peer.port = 0;
    }
  }
}

Topology::Topology(int portsPerSwitch, std::vector<int> nodesAtSwitch)
    : numSwitches_(static_cast<int>(nodesAtSwitch.size())),
      portsPerSwitch_(portsPerSwitch),
      nodesPerSwitch_(0),
      numNodes_(0),
      uniformNodes_(false) {
  if (numSwitches_ <= 0 || portsPerSwitch <= 0) {
    throw std::invalid_argument("Topology: inconsistent dimensions");
  }
  for (int c : nodesAtSwitch) {
    if (c < 0 || c > portsPerSwitch) {
      throw std::invalid_argument("Topology: per-switch node count out of range");
    }
    nodesPerSwitch_ = std::max(nodesPerSwitch_, c);
  }
  nodeBase_.resize(static_cast<std::size_t>(numSwitches_) + 1);
  nodeBase_[0] = 0;
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    nodeBase_[static_cast<std::size_t>(sw) + 1] =
        nodeBase_[static_cast<std::size_t>(sw)] +
        nodesAtSwitch[static_cast<std::size_t>(sw)];
  }
  numNodes_ = nodeBase_.back();
  nodeSwitch_.resize(static_cast<std::size_t>(numNodes_));
  ports_.assign(static_cast<std::size_t>(numSwitches_),
                std::vector<Peer>(static_cast<std::size_t>(portsPerSwitch)));
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    const int count = nodesAtSwitch[static_cast<std::size_t>(sw)];
    for (PortIndex p = 0; p < count; ++p) {
      const NodeId n = nodeBase_[static_cast<std::size_t>(sw)] + p;
      nodeSwitch_[static_cast<std::size_t>(n)] = sw;
      auto& peer = ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(p)];
      peer.kind = PeerKind::kNode;
      peer.id = n;
      peer.port = 0;
    }
  }
}

PortIndex Topology::firstFreePort(SwitchId sw) const {
  for (PortIndex p = nodeCount(sw); p < portsPerSwitch_; ++p) {
    if (peer(sw, p).kind == PeerKind::kUnused) return p;
  }
  return kInvalidPort;
}

bool Topology::addLink(SwitchId a, SwitchId b) {
  if (a == b) throw std::invalid_argument("Topology::addLink: self-link");
  if (a < 0 || b < 0 || a >= numSwitches_ || b >= numSwitches_) {
    throw std::invalid_argument("Topology::addLink: switch id out of range");
  }
  if (linked(a, b)) return false;
  const PortIndex pa = firstFreePort(a);
  const PortIndex pb = firstFreePort(b);
  if (pa == kInvalidPort || pb == kInvalidPort) return false;
  ports_[static_cast<std::size_t>(a)][static_cast<std::size_t>(pa)] =
      Peer{PeerKind::kSwitch, b, pb};
  ports_[static_cast<std::size_t>(b)][static_cast<std::size_t>(pb)] =
      Peer{PeerKind::kSwitch, a, pa};
  ++numLinks_;
  return true;
}

void Topology::removeLink(SwitchId sw, PortIndex port) {
  Peer& p = ports_[static_cast<std::size_t>(sw)][static_cast<std::size_t>(port)];
  if (p.kind != PeerKind::kSwitch) {
    throw std::invalid_argument("Topology::removeLink: not an inter-switch port");
  }
  Peer& q = ports_[static_cast<std::size_t>(p.id)][static_cast<std::size_t>(p.port)];
  q = Peer{};
  p = Peer{};
  --numLinks_;
}

void Topology::restoreLink(SwitchId a, PortIndex portA, SwitchId b,
                           PortIndex portB) {
  if (a == b) throw std::invalid_argument("Topology::restoreLink: self-link");
  if (a < 0 || b < 0 || a >= numSwitches_ || b >= numSwitches_) {
    throw std::invalid_argument("Topology::restoreLink: switch id out of range");
  }
  if (portA < nodeCount(a) || portA >= portsPerSwitch_ ||
      portB < nodeCount(b) || portB >= portsPerSwitch_) {
    throw std::invalid_argument(
        "Topology::restoreLink: port outside the inter-switch range");
  }
  if (peer(a, portA).kind != PeerKind::kUnused ||
      peer(b, portB).kind != PeerKind::kUnused) {
    throw std::invalid_argument("Topology::restoreLink: port already wired");
  }
  if (linked(a, b)) {
    throw std::invalid_argument("Topology::restoreLink: pair already linked");
  }
  ports_[static_cast<std::size_t>(a)][static_cast<std::size_t>(portA)] =
      Peer{PeerKind::kSwitch, b, portB};
  ports_[static_cast<std::size_t>(b)][static_cast<std::size_t>(portB)] =
      Peer{PeerKind::kSwitch, a, portA};
  ++numLinks_;
}

bool Topology::linked(SwitchId a, SwitchId b) const {
  for (PortIndex p = nodeCount(a); p < portsPerSwitch_; ++p) {
    const Peer& pe = peer(a, p);
    if (pe.kind == PeerKind::kSwitch && pe.id == b) return true;
  }
  return false;
}

int Topology::interSwitchDegree(SwitchId sw) const {
  int deg = 0;
  for (PortIndex p = nodeCount(sw); p < portsPerSwitch_; ++p) {
    if (peer(sw, p).kind == PeerKind::kSwitch) ++deg;
  }
  return deg;
}

std::vector<std::pair<SwitchId, PortIndex>> Topology::switchNeighbors(
    SwitchId sw) const {
  std::vector<std::pair<SwitchId, PortIndex>> out;
  for (PortIndex p = nodeCount(sw); p < portsPerSwitch_; ++p) {
    const Peer& pe = peer(sw, p);
    if (pe.kind == PeerKind::kSwitch) out.emplace_back(pe.id, p);
  }
  return out;
}

bool Topology::connectedSwitchGraph() const {
  const auto dist = bfsDistances(0);
  for (int d : dist) {
    if (d < 0) return false;
  }
  return true;
}

void Topology::setLocalityGroups(std::vector<std::int32_t> groups) {
  if (groups.size() != static_cast<std::size_t>(numSwitches_)) {
    throw std::invalid_argument("setLocalityGroups: one id per switch");
  }
  for (const std::int32_t g : groups) {
    if (g < 0 || g >= numSwitches_) {
      throw std::invalid_argument(
          "setLocalityGroups: group ids must lie in [0, numSwitches)");
    }
  }
  localityGroups_ = std::move(groups);
}

std::vector<int> Topology::bfsDistances(SwitchId from) const {
  std::vector<int> dist;
  std::vector<SwitchId> queue;
  SwitchAdjacency(*this).bfsInto(from, dist, queue);
  return dist;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "Topology: " << numSwitches_ << " switches x " << portsPerSwitch_
     << " ports, ";
  if (uniformNodes_) {
    os << nodesPerSwitch_ << " nodes/switch, ";
  } else {
    os << numNodes_ << " nodes (per-switch attachment), ";
  }
  os << numLinks_ << " inter-switch links\n";
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    os << "  sw" << sw;
    if (!uniformNodes_ && nodeCount(sw) > 0) os << "[" << nodeCount(sw) << "n]";
    os << " ->";
    for (const auto& [nb, port] : switchNeighbors(sw)) {
      os << " sw" << nb << "(p" << port << ")";
    }
    os << "\n";
  }
  return os.str();
}

SwitchAdjacency::SwitchAdjacency(const Topology& topo)
    : numSwitches_(topo.numSwitches()) {
  offsets_.resize(static_cast<std::size_t>(numSwitches_) + 1);
  nbrIds_.reserve(static_cast<std::size_t>(topo.numLinks()) * 2);
  nbrPorts_.reserve(static_cast<std::size_t>(topo.numLinks()) * 2);
  offsets_[0] = 0;
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    for (PortIndex p = topo.nodeCount(sw); p < topo.portsPerSwitch(); ++p) {
      const Peer& pe = topo.peer(sw, p);
      if (pe.kind != PeerKind::kSwitch) continue;
      nbrIds_.push_back(pe.id);
      nbrPorts_.push_back(p);
    }
    offsets_[static_cast<std::size_t>(sw) + 1] =
        static_cast<int>(nbrIds_.size());
  }
}

void SwitchAdjacency::bfsInto(SwitchId from, std::vector<int>& dist,
                              std::vector<SwitchId>& queue) const {
  dist.assign(static_cast<std::size_t>(numSwitches_), -1);
  queue.clear();
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push_back(from);
  // Plain index cursor: the vector doubles as FIFO storage and visit log.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const SwitchId sw = queue[head];
    const int d = dist[static_cast<std::size_t>(sw)] + 1;
    const Span nb = neighbors(sw);
    for (int i = 0; i < nb.count; ++i) {
      const SwitchId v = nb.ids[i];
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = d;
        queue.push_back(v);
      }
    }
  }
}

std::vector<std::vector<int>> allPairsDistances(const Topology& topo) {
  const SwitchAdjacency adj(topo);
  std::vector<std::vector<int>> dist(static_cast<std::size_t>(topo.numSwitches()));
  std::vector<SwitchId> queue;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    adj.bfsInto(sw, dist[static_cast<std::size_t>(sw)], queue);
  }
  return dist;
}

}  // namespace ibadapt
