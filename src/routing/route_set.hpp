#pragma once
//
// Per-(switch, destination-node) routing options, ready to be programmed
// into forwarding tables by the subnet manager:
//   * escape port — the up*/down* next hop (or the CA port for local
//     destinations), stored at forwarding-table address `d`;
//   * adaptive ports — every minimal output port, stored (capped and
//     rotation-balanced) at addresses `d+1 .. d+x-1`.
//
#include <vector>

#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "topology/topology.hpp"

namespace ibadapt {

struct RouteOptionsSpec {
  PortIndex escapePort = kInvalidPort;
  /// Uncapped list of minimal adaptive ports; empty for local destinations.
  std::vector<PortIndex> adaptivePorts;
};

class RouteSet {
 public:
  RouteSet(const Topology& topo, const UpDownRouting& updown,
           const MinimalAdaptiveRouting& minimal);

  const RouteOptionsSpec& options(SwitchId sw, NodeId dest) const {
    return spec_[static_cast<std::size_t>(sw) * numNodes_ +
                 static_cast<std::size_t>(dest)];
  }

  /// Adaptive ports to program given x table banks (x-1 adaptive slots):
  /// a deterministic rotation spreads the capped subset across destinations
  /// so no single minimal port is systematically favored.
  std::vector<PortIndex> cappedAdaptivePorts(SwitchId sw, NodeId dest,
                                             int numOptions) const;

  int numNodes() const { return numNodes_; }
  int numSwitches() const { return numSwitches_; }

 private:
  int numSwitches_;
  int numNodes_;
  std::vector<RouteOptionsSpec> spec_;
};

}  // namespace ibadapt
