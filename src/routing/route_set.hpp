#pragma once
//
// Per-(switch, destination-node) routing options, ready to be programmed
// into forwarding tables by the subnet manager:
//   * escape port — the up*/down* next hop (or the CA port for local
//     destinations), stored at forwarding-table address `d`;
//   * adaptive ports — every minimal output port, stored (capped and
//     rotation-balanced) at addresses `d+1 .. d+x-1`.
//
// The set is a *view* over the routing layers, not a materialized table:
// options are derived per query from the up*/down* next-hop table and the
// minimal-distance matrix. An S x N array of port-list vectors is quadratic
// in fabric size (hundreds of MB at 1024 switches) while each query is an
// O(radix) scan — so nothing is cached. The referenced topology/routing
// objects must outlive the RouteSet.
//
#include <vector>

#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "topology/topology.hpp"

namespace ibadapt {

struct RouteOptionsSpec {
  PortIndex escapePort = kInvalidPort;
  /// Uncapped list of minimal adaptive ports; empty for local destinations.
  std::vector<PortIndex> adaptivePorts;
};

class RouteSet {
 public:
  RouteSet(const Topology& topo, const UpDownRouting& updown,
           const MinimalAdaptiveRouting& minimal);

  /// Routing options for (switch, destination node), computed per call.
  /// Callers may bind the result to a const reference (lifetime extension);
  /// per-packet hot paths should not re-query in a loop.
  RouteOptionsSpec options(SwitchId sw, NodeId dest) const;

  /// Adaptive ports to program given x table banks (x-1 adaptive slots):
  /// a deterministic rotation spreads the capped subset across destinations
  /// so no single minimal port is systematically favored.
  std::vector<PortIndex> cappedAdaptivePorts(SwitchId sw, NodeId dest,
                                             int numOptions) const;

  int numNodes() const { return numNodes_; }
  int numSwitches() const { return numSwitches_; }

 private:
  int numSwitches_;
  int numNodes_;
  const Topology* topo_;
  const UpDownRouting* updown_;
  const MinimalAdaptiveRouting* minimal_;
};

}  // namespace ibadapt
