#include "routing/updown.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace ibadapt {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 4;
}

SwitchId selectRoot(const SwitchAdjacency& adj, RootSelection sel) {
  const int s = adj.numSwitches();
  switch (sel) {
    case RootSelection::kLowestId:
      return 0;
    case RootSelection::kHighestDegree: {
      SwitchId best = 0;
      int bestDeg = adj.neighbors(0).count;
      for (SwitchId sw = 1; sw < s; ++sw) {
        const int deg = adj.neighbors(sw).count;
        if (deg > bestDeg) {
          best = sw;
          bestDeg = deg;
        }
      }
      return best;
    }
    case RootSelection::kMinEccentricity: {
      SwitchId best = 0;
      int bestEcc = kInf;
      // One BFS per candidate root over the shared scratch pair — the
      // buffers are sized once and reused for all S passes.
      std::vector<int> dist;
      std::vector<SwitchId> queue;
      for (SwitchId sw = 0; sw < s; ++sw) {
        adj.bfsInto(sw, dist, queue);
        int ecc = 0;
        for (int d : dist) ecc = std::max(ecc, d);
        if (ecc < bestEcc) {
          best = sw;
          bestEcc = ecc;
        }
      }
      return best;
    }
  }
  return 0;
}

SwitchId selectRoot(const Topology& topo, RootSelection sel) {
  if (sel == RootSelection::kLowestId) return 0;
  return selectRoot(SwitchAdjacency(topo), sel);
}

UpDownRouting::UpDownRouting(const Topology& topo, RootSelection rootSel,
                             unsigned tieBreakSalt)
    : topo_(&topo), salt_(tieBreakSalt) {
  build(SwitchAdjacency(topo), rootSel, {});
}

UpDownRouting::UpDownRouting(const Topology& topo, const SwitchAdjacency& adj,
                             RootSelection rootSel, unsigned tieBreakSalt,
                             const UpDownBuildOptions& opts)
    : topo_(&topo), salt_(tieBreakSalt) {
  build(adj, rootSel, opts);
}

void UpDownRouting::build(const SwitchAdjacency& adj, RootSelection rootSel,
                          const UpDownBuildOptions& opts) {
  std::vector<int> dist;
  std::vector<SwitchId> queue;
  adj.bfsInto(0, dist, queue);
  for (int d : dist) {
    if (d < 0) {
      throw std::invalid_argument("UpDownRouting: switch graph not connected");
    }
  }
  root_ = selectRoot(adj, rootSel);
  adj.bfsInto(root_, levels_, queue);
  computeTables(adj, opts);
}

bool UpDownRouting::isUp(SwitchId from, SwitchId to) const {
  const int lf = levels_[static_cast<std::size_t>(from)];
  const int lt = levels_[static_cast<std::size_t>(to)];
  if (lt != lf) return lt < lf;
  return to < from;  // deterministic tie-break on equal levels
}

void UpDownRouting::computeTables(const SwitchAdjacency& adj,
                                  const UpDownBuildOptions& opts) {
  const int s = topo_->numSwitches();
  // One byte per (dest, at) pair; the LFT image cells are uint8 too, so any
  // port a table could ever install already fits (kNoPort marks the
  // diagonal, mirroring kLftImageUnset).
  if (topo_->portsPerSwitch() >= static_cast<int>(kNoPort)) {
    throw std::invalid_argument(
        "UpDownRouting: port indices must fit one byte (LFT cell width)");
  }
  nextPort_.assign(static_cast<std::size_t>(s) * s, kNoPort);
  if (opts.keepDownDistances) {
    downDist_.assign(static_cast<std::size_t>(s) * s, -1);
  } else {
    downDist_.clear();
    downDist_.shrink_to_fit();
  }

  // Each destination pass writes only the dest-th slice of nextPort_ /
  // downDist_ and reads nothing another pass writes, so chunking the
  // destination range over pool workers produces the exact bytes the serial
  // loop would — the merge order is fixed by the output layout, not by task
  // completion order.
  if (opts.pool != nullptr && opts.pool->workerCount() > 1 && s > 1) {
    const int workers = static_cast<int>(opts.pool->workerCount());
    const int chunk = (s + workers - 1) / workers;
    for (int lo = 0; lo < s; lo += chunk) {
      const SwitchId destBegin = lo;
      const SwitchId destEnd = std::min(s, lo + chunk);
      opts.pool->submit([this, &adj, destBegin, destEnd, &opts] {
        computeDestRange(adj, destBegin, destEnd, opts.keepDownDistances);
      });
    }
    opts.pool->wait();  // rethrows "no legal next hop" from any chunk
    return;
  }
  computeDestRange(adj, 0, s, opts.keepDownDistances);
}

void UpDownRouting::computeDestRange(const SwitchAdjacency& adj,
                                     SwitchId destBegin, SwitchId destEnd,
                                     bool keepDownDistances) {
  const int s = topo_->numSwitches();

  // All scratch hoisted outside the destination loop: one BFS queue, one
  // distance pair, one Dijkstra heap, one candidate list — reused across
  // the range's destinations instead of reallocated per destination (and
  // the graph itself is walked through the shared CSR snapshot, not through
  // per-call neighbor vectors). Scratch is per-call, so parallel range
  // passes never share mutable state.
  std::vector<int> downDist(static_cast<std::size_t>(s));
  std::vector<int> anyDist(static_cast<std::size_t>(s));
  std::vector<SwitchId> queue;
  queue.reserve(static_cast<std::size_t>(s));
  using Item = std::pair<int, SwitchId>;
  std::vector<Item> heapStore;
  heapStore.reserve(static_cast<std::size_t>(s));
  std::vector<PortIndex> candidates;

  for (SwitchId dest = destBegin; dest < destEnd; ++dest) {
    // Phase 1: shortest all-down distances to dest. A hop sw -> nb counts
    // when it is a *down* hop (!isUp). BFS backward from dest: extend to a
    // predecessor `u` when u -> v is down.
    std::fill(downDist.begin(), downDist.end(), kInf);
    downDist[static_cast<std::size_t>(dest)] = 0;
    queue.clear();
    queue.push_back(dest);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SwitchId v = queue[head];
      const SwitchAdjacency::Span nb = adj.neighbors(v);
      for (int i = 0; i < nb.count; ++i) {
        const SwitchId u = nb.ids[i];
        if (downDist[static_cast<std::size_t>(u)] == kInf && !isUp(u, v)) {
          downDist[static_cast<std::size_t>(u)] =
              downDist[static_cast<std::size_t>(v)] + 1;
          queue.push_back(u);
        }
      }
    }

    // Phase 2: shortest legal distance assuming the packet may still go up.
    // anyDist[v] = min(downDist[v], 1 + min over up-neighbors u of anyDist[u])
    // solved with a Dijkstra-style relaxation (unit edges, heterogeneous
    // seeds).
    std::fill(anyDist.begin(), anyDist.end(), kInf);
    heapStore.clear();
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq(
        std::greater<Item>{}, std::move(heapStore));
    for (SwitchId v = 0; v < s; ++v) {
      if (downDist[static_cast<std::size_t>(v)] < kInf) {
        anyDist[static_cast<std::size_t>(v)] = downDist[static_cast<std::size_t>(v)];
        pq.emplace(anyDist[static_cast<std::size_t>(v)], v);
      }
    }
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > anyDist[static_cast<std::size_t>(u)]) continue;
      const SwitchAdjacency::Span nb = adj.neighbors(u);
      for (int i = 0; i < nb.count; ++i) {
        const SwitchId v = nb.ids[i];
        // Relax v -> u when that hop is "up" for the packet (v to u).
        if (isUp(v, u) && d + 1 < anyDist[static_cast<std::size_t>(v)]) {
          anyDist[static_cast<std::size_t>(v)] = d + 1;
          pq.emplace(d + 1, v);
        }
      }
    }

    // Phase 3: per-switch next hops — down-preferred for table coherence.
    // Among equally good candidates the tie-break salt rotates the choice,
    // producing distinct (but individually coherent) table planes.
    for (SwitchId at = 0; at < s; ++at) {
      if (keepDownDistances) {
        downDist_[static_cast<std::size_t>(dest) * s + at] =
            downDist[static_cast<std::size_t>(at)] == kInf
                ? static_cast<std::int16_t>(-1)
                : static_cast<std::int16_t>(
                      downDist[static_cast<std::size_t>(at)]);
      }
      if (at == dest) continue;
      candidates.clear();
      const SwitchAdjacency::Span nbrs = adj.neighbors(at);
      if (downDist[static_cast<std::size_t>(at)] < kInf) {
        for (int i = 0; i < nbrs.count; ++i) {
          const SwitchId nb = nbrs.ids[i];
          if (!isUp(at, nb) &&
              downDist[static_cast<std::size_t>(nb)] ==
                  downDist[static_cast<std::size_t>(at)] - 1) {
            candidates.push_back(nbrs.ports[i]);
          }
        }
      } else {
        for (int i = 0; i < nbrs.count; ++i) {
          const SwitchId nb = nbrs.ids[i];
          if (isUp(at, nb) &&
              anyDist[static_cast<std::size_t>(nb)] ==
                  anyDist[static_cast<std::size_t>(at)] - 1) {
            candidates.push_back(nbrs.ports[i]);
          }
        }
      }
      if (candidates.empty()) {
        throw std::logic_error("UpDownRouting: no legal next hop (bug)");
      }
      const std::size_t pick =
          (salt_ + static_cast<unsigned>(dest) * 7u + static_cast<unsigned>(at)) %
          candidates.size();
      nextPort_[static_cast<std::size_t>(dest) * s + at] =
          static_cast<std::uint8_t>(candidates[salt_ == 0 ? 0 : pick]);
    }
  }
}

PortIndex UpDownRouting::nextHopPort(SwitchId at, SwitchId dest) const {
  const std::uint8_t p =
      nextPort_[static_cast<std::size_t>(dest) * topo_->numSwitches() + at];
  return p == kNoPort ? kInvalidPort : static_cast<PortIndex>(p);
}

int UpDownRouting::downDistance(SwitchId sw, SwitchId dest) const {
  return downDist_[static_cast<std::size_t>(dest) * topo_->numSwitches() + sw];
}

std::vector<SwitchId> UpDownRouting::tableRoute(SwitchId from, SwitchId to) const {
  std::vector<SwitchId> path{from};
  SwitchId at = from;
  const int limit = 4 * topo_->numSwitches() + 8;
  while (at != to) {
    if (static_cast<int>(path.size()) > limit) return {};  // cycle
    const PortIndex p = nextHopPort(at, to);
    if (p == kInvalidPort) return {};
    at = topo_->peer(at, p).id;
    path.push_back(at);
  }
  return path;
}

int UpDownRouting::tableRouteHops(SwitchId from, SwitchId to) const {
  const auto path = tableRoute(from, to);
  if (path.empty() && from != to) return -1;
  return static_cast<int>(path.size()) - 1;
}

bool UpDownRouting::legalPath(const std::vector<SwitchId>& path) const {
  bool wentDown = false;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const bool up = isUp(path[i - 1], path[i]);
    if (up && wentDown) return false;
    if (!up) wentDown = true;
  }
  return true;
}

}  // namespace ibadapt
