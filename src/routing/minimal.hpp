#pragma once
//
// Fully adaptive *minimal* routing options (paper §3): at every switch, every
// output port whose neighbor lies on some shortest path to the destination
// is a legal adaptive choice. Combined with the up*/down* escape paths this
// forms the FA routing algorithm.
//
#include <vector>

#include "topology/topology.hpp"
#include "util/types.hpp"

namespace ibadapt {

class MinimalAdaptiveRouting {
 public:
  explicit MinimalAdaptiveRouting(const Topology& topo);

  /// Shortest switch-to-switch distance in hops.
  int distance(SwitchId from, SwitchId to) const {
    return dist_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }

  /// All minimal output ports at `at` toward `dest` (ascending port order).
  /// Empty when at == dest.
  const std::vector<PortIndex>& minimalPorts(SwitchId at, SwitchId dest) const {
    return ports_[static_cast<std::size_t>(at) * numSwitches_ +
                  static_cast<std::size_t>(dest)];
  }

 private:
  int numSwitches_;
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<PortIndex>> ports_;
};

}  // namespace ibadapt
