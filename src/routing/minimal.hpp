#pragma once
//
// Fully adaptive *minimal* routing options (paper §3): at every switch, every
// output port whose neighbor lies on some shortest path to the destination
// is a legal adaptive choice. Combined with the up*/down* escape paths this
// forms the FA routing algorithm.
//
// Storage is deliberately lean: only the flat S x S distance matrix is kept
// (4 bytes per pair); the per-(switch, dest) port lists are derived on demand
// from the distance matrix and the CSR adjacency snapshot. Materializing the
// lists -- the obvious alternative -- costs a vector object per pair, which
// at 1024 switches is ~25 MB of vector headers before a single port is
// stored. Deriving a list is a scan of one switch's neighbors (O(radix)).
//
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/types.hpp"

namespace ibadapt {

class ThreadPool;

class MinimalAdaptiveRouting {
 public:
  explicit MinimalAdaptiveRouting(const Topology& topo);

  /// Same, reusing a caller-built adjacency snapshot (see UpDownRouting's
  /// matching overload); the snapshot must describe `topo`. When `pool` is
  /// non-null the per-source BFS rows are distributed over its workers —
  /// each row is an independent write to a disjoint matrix slice, so the
  /// result is bit-identical to the serial build.
  MinimalAdaptiveRouting(const Topology& topo, const SwitchAdjacency& adj,
                         ThreadPool* pool = nullptr);

  /// Shortest switch-to-switch distance in hops.
  int distance(SwitchId from, SwitchId to) const {
    return dist_[static_cast<std::size_t>(from) * numSwitches_ +
                 static_cast<std::size_t>(to)];
  }

  /// All minimal output ports at `at` toward `dest` (ascending port order).
  /// Empty when at == dest. Computed per call; callers that loop over
  /// destinations should hold the result, not re-query per packet.
  std::vector<PortIndex> minimalPorts(SwitchId at, SwitchId dest) const;

 private:
  void build(ThreadPool* pool);
  void buildRange(SwitchId fromBegin, SwitchId fromEnd);

  int numSwitches_;
  SwitchAdjacency adj_;
  // dist_[from * S + to]; hop counts on any constructible fabric are tiny
  // (-1 = unreachable), so one signed byte per pair keeps the planner's
  // second-largest allocation at S^2 bytes — 16 MiB at 4096 switches. The
  // build throws if a shortest path somehow exceeded 126 hops.
  std::vector<std::int8_t> dist_;
};

}  // namespace ibadapt
