#include "routing/lft_image.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibadapt {

LftImage buildLftImage(const Topology& topo, const LftPlanSpec& spec) {
  if (spec.lmc < 0 || spec.lmc > 7) {
    throw std::invalid_argument("buildLftImage: LMC out of [0,7]");
  }
  if (!spec.adaptiveSwitchMask.empty() &&
      static_cast<int>(spec.adaptiveSwitchMask.size()) != topo.numSwitches()) {
    throw std::invalid_argument("buildLftImage: adaptiveSwitchMask size");
  }
  const int lidsPerNode = 1 << spec.lmc;
  const auto baseLid = [&spec](NodeId n) {
    return static_cast<Lid>(n + 1) << spec.lmc;
  };
  const Lid limit = static_cast<Lid>(topo.numNodes() + 1) << spec.lmc;

  LftImage image;
  image.entries.assign(static_cast<std::size_t>(topo.numSwitches()),
                       std::vector<std::uint8_t>(limit, kLftImageUnset));
  auto set = [&image](SwitchId sw, Lid lid, PortIndex port) {
    image.entries[static_cast<std::size_t>(sw)][lid] =
        static_cast<std::uint8_t>(port);
  };

  // One CSR adjacency snapshot shared by every routing pass below — each
  // up*/down* plane and the minimal-distance matrix walk the same graph.
  const SwitchAdjacency adj(topo);

  if (spec.sourceMultipathPlanes > 0) {
    if (spec.numOptions != 1) {
      throw std::invalid_argument(
          "buildLftImage: source multipath needs numOptions == 1");
    }
    const int planes = spec.sourceMultipathPlanes;
    if (planes > lidsPerNode) {
      throw std::invalid_argument(
          "buildLftImage: more multipath planes than LIDs per node");
    }
    // One coherent up*/down* plane per address slot; plane 0 is the
    // canonical (lowest-port tie-break) table so address d behaves exactly
    // like the deterministic baseline.
    std::vector<UpDownRouting> tables;
    tables.reserve(static_cast<std::size_t>(planes));
    for (int k = 0; k < planes; ++k) {
      tables.emplace_back(topo, adj, spec.rootSelection,
                          static_cast<unsigned>(k));
    }
    image.root = tables.front().root();
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
      for (NodeId n = 0; n < topo.numNodes(); ++n) {
        const Lid base = baseLid(n);
        const SwitchId destSw = topo.switchOfNode(n);
        for (int k = 0; k < lidsPerNode; ++k) {
          const PortIndex port =
              destSw == sw
                  ? topo.portOfNode(n)
                  : tables[static_cast<std::size_t>(k % planes)].nextHopPort(
                        sw, destSw);
          set(sw, base + static_cast<Lid>(k), port);
        }
      }
    }
    return image;
  }

  const int x = spec.numOptions;
  const int sets = spec.apmPathSets;
  if (sets < 1 || sets * x > lidsPerNode) {
    throw std::invalid_argument(
        "buildLftImage: apmPathSets * numOptions exceeds the LID block");
  }

  // One escape plane per APM path set; all share one orientation (salt-only
  // variation), so any mixture of sets remains deadlock-free.
  std::vector<UpDownRouting> updowns;
  std::vector<RouteSet> routeSets;
  const MinimalAdaptiveRouting minimal(topo, adj);
  updowns.reserve(static_cast<std::size_t>(sets));
  routeSets.reserve(static_cast<std::size_t>(sets));
  for (int j = 0; j < sets; ++j) {
    updowns.emplace_back(topo, adj, spec.rootSelection,
                         static_cast<unsigned>(j));
  }
  for (int j = 0; j < sets; ++j) {
    routeSets.emplace_back(topo, updowns[static_cast<std::size_t>(j)], minimal);
  }
  image.root = updowns.front().root();

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    const bool adaptiveCapable =
        spec.adaptiveSwitchMask.empty()
            ? spec.adaptiveSwitches
            : spec.adaptiveSwitchMask[static_cast<std::size_t>(sw)];
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = baseLid(n);
      for (int j = 0; j < sets; ++j) {
        const RouteSet& routes = routeSets[static_cast<std::size_t>(j)];
        const RouteOptionsSpec& rspec = routes.options(sw, n);
        const Lid sub = base + static_cast<Lid>(j * x);
        // Sub-block address 0: the deterministic / escape route of set j.
        set(sw, sub, rspec.escapePort);
        // Addresses 1 .. x-1: adaptive minimal options (escape hop when
        // this switch is deterministic-only or the destination is local).
        auto capped = adaptiveCapable ? routes.cappedAdaptivePorts(sw, n, x)
                                      : std::vector<PortIndex>{};
        if (!capped.empty() && j > 0) {
          // Different sets lead with different minimal ports.
          std::rotate(capped.begin(),
                      capped.begin() + (j % static_cast<int>(capped.size())),
                      capped.end());
        }
        for (int k = 1; k < x; ++k) {
          const PortIndex port =
              capped.empty()
                  ? rspec.escapePort
                  : capped[static_cast<std::size_t>((k - 1) % capped.size())];
          set(sw, sub + static_cast<Lid>(k), port);
        }
      }
      // Remaining block addresses: set-0 escape hop, so a stray DLID still
      // routes deterministically.
      if (sets * x < lidsPerNode) {
        const PortIndex esc0 = routeSets.front().options(sw, n).escapePort;
        for (int k = sets * x; k < lidsPerNode; ++k) {
          set(sw, base + static_cast<Lid>(k), esc0);
        }
      }
    }
  }
  return image;
}

}  // namespace ibadapt
