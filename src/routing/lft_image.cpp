#include "routing/lft_image.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace ibadapt {

LftPlanner::LftPlanner(const Topology& topo, const LftPlanSpec& spec)
    : topo_(&topo), spec_(spec) {
  if (spec.lmc < 0 || spec.lmc > 7) {
    throw std::invalid_argument("buildLftImage: LMC out of [0,7]");
  }
  if (!spec.adaptiveSwitchMask.empty() &&
      static_cast<int>(spec.adaptiveSwitchMask.size()) != topo.numSwitches()) {
    throw std::invalid_argument("buildLftImage: adaptiveSwitchMask size");
  }
  const int lidsPerNode = 1 << spec.lmc;
  limit_ = static_cast<Lid>(topo.numNodes() + 1) << spec.lmc;

  const std::size_t workers =
      spec.threads == 0
          ? static_cast<std::size_t>(
                std::max(1u, std::thread::hardware_concurrency()))
          : static_cast<std::size_t>(std::max(1, spec.threads));
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);

  // One CSR adjacency snapshot shared by every routing pass below — each
  // up*/down* plane and the minimal-distance matrix walk the same graph.
  // Image builds never query all-down distances (RouteSet reads next hops
  // only), so every plane skips that S^2 matrix.
  const SwitchAdjacency adj(topo);
  UpDownBuildOptions updownOpts;
  updownOpts.keepDownDistances = false;
  updownOpts.pool = pool_.get();

  if (spec.sourceMultipathPlanes > 0) {
    if (spec.numOptions != 1) {
      throw std::invalid_argument(
          "buildLftImage: source multipath needs numOptions == 1");
    }
    const int planes = spec.sourceMultipathPlanes;
    if (planes > lidsPerNode) {
      throw std::invalid_argument(
          "buildLftImage: more multipath planes than LIDs per node");
    }
    // One coherent up*/down* plane per address slot; plane 0 is the
    // canonical (lowest-port tie-break) table so address d behaves exactly
    // like the deterministic baseline.
    updowns_.reserve(static_cast<std::size_t>(planes));
    for (int k = 0; k < planes; ++k) {
      updowns_.emplace_back(topo, adj, spec.rootSelection,
                            static_cast<unsigned>(k), updownOpts);
    }
    root_ = updowns_.front().root();
    return;
  }

  const int x = spec.numOptions;
  const int sets = spec.apmPathSets;
  if (sets < 1 || sets * x > lidsPerNode) {
    throw std::invalid_argument(
        "buildLftImage: apmPathSets * numOptions exceeds the LID block");
  }

  // One escape plane per APM path set; all share one orientation (salt-only
  // variation), so any mixture of sets remains deadlock-free.
  minimal_ = std::make_unique<MinimalAdaptiveRouting>(topo, adj, pool_.get());
  updowns_.reserve(static_cast<std::size_t>(sets));
  routeSets_.reserve(static_cast<std::size_t>(sets));
  for (int j = 0; j < sets; ++j) {
    updowns_.emplace_back(topo, adj, spec.rootSelection,
                          static_cast<unsigned>(j), updownOpts);
  }
  for (int j = 0; j < sets; ++j) {
    routeSets_.emplace_back(topo, updowns_[static_cast<std::size_t>(j)],
                            *minimal_);
  }
  root_ = updowns_.front().root();
}

LftPlanner::~LftPlanner() = default;

void LftPlanner::fillRow(SwitchId sw, std::vector<std::uint8_t>& row) const {
  const Topology& topo = *topo_;
  const int lidsPerNode = 1 << spec_.lmc;
  const auto baseLid = [this](NodeId n) {
    return static_cast<Lid>(n + 1) << spec_.lmc;
  };
  row.assign(limit_, kLftImageUnset);
  const auto set = [&row](Lid lid, PortIndex port) {
    row[lid] = static_cast<std::uint8_t>(port);
  };

  if (spec_.sourceMultipathPlanes > 0) {
    const int planes = spec_.sourceMultipathPlanes;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = baseLid(n);
      const SwitchId destSw = topo.switchOfNode(n);
      for (int k = 0; k < lidsPerNode; ++k) {
        const PortIndex port =
            destSw == sw
                ? topo.portOfNode(n)
                : updowns_[static_cast<std::size_t>(k % planes)].nextHopPort(
                      sw, destSw);
        set(base + static_cast<Lid>(k), port);
      }
    }
    return;
  }

  const int x = spec_.numOptions;
  const int sets = spec_.apmPathSets;
  const bool adaptiveCapable =
      spec_.adaptiveSwitchMask.empty()
          ? spec_.adaptiveSwitches
          : spec_.adaptiveSwitchMask[static_cast<std::size_t>(sw)];
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    const Lid base = baseLid(n);
    for (int j = 0; j < sets; ++j) {
      const RouteSet& routes = routeSets_[static_cast<std::size_t>(j)];
      const RouteOptionsSpec& rspec = routes.options(sw, n);
      const Lid sub = base + static_cast<Lid>(j * x);
      // Sub-block address 0: the deterministic / escape route of set j.
      set(sub, rspec.escapePort);
      // Addresses 1 .. x-1: adaptive minimal options (escape hop when
      // this switch is deterministic-only or the destination is local).
      auto capped = adaptiveCapable ? routes.cappedAdaptivePorts(sw, n, x)
                                    : std::vector<PortIndex>{};
      if (!capped.empty() && j > 0) {
        // Different sets lead with different minimal ports.
        std::rotate(capped.begin(),
                    capped.begin() + (j % static_cast<int>(capped.size())),
                    capped.end());
      }
      for (int k = 1; k < x; ++k) {
        const PortIndex port =
            capped.empty()
                ? rspec.escapePort
                : capped[static_cast<std::size_t>((k - 1) % capped.size())];
        set(sub + static_cast<Lid>(k), port);
      }
    }
    // Remaining block addresses: set-0 escape hop, so a stray DLID still
    // routes deterministically.
    if (sets * x < lidsPerNode) {
      const PortIndex esc0 = routeSets_.front().options(sw, n).escapePort;
      for (int k = sets * x; k < lidsPerNode; ++k) {
        set(base + static_cast<Lid>(k), esc0);
      }
    }
  }
}

LftImage buildLftImage(const Topology& topo, const LftPlanSpec& spec) {
  const LftPlanner planner(topo, spec);
  LftImage image;
  image.root = planner.root();
  image.entries.assign(static_cast<std::size_t>(topo.numSwitches()), {});
  const auto fill = [&](std::size_t sw) {
    planner.fillRow(static_cast<SwitchId>(sw),
                    image.entries[static_cast<std::size_t>(sw)]);
  };
  if (planner.pool() != nullptr) {
    parallelForIndex(*planner.pool(),
                     static_cast<std::size_t>(topo.numSwitches()), fill);
  } else {
    for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
      fill(static_cast<std::size_t>(sw));
    }
  }
  return image;
}

}  // namespace ibadapt
