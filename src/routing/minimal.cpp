#include "routing/minimal.hpp"

namespace ibadapt {

MinimalAdaptiveRouting::MinimalAdaptiveRouting(const Topology& topo)
    : numSwitches_(topo.numSwitches()), dist_(allPairsDistances(topo)) {
  ports_.resize(static_cast<std::size_t>(numSwitches_) * numSwitches_);
  for (SwitchId at = 0; at < numSwitches_; ++at) {
    const auto neighbors = topo.switchNeighbors(at);
    for (SwitchId dest = 0; dest < numSwitches_; ++dest) {
      if (at == dest) continue;
      auto& list = ports_[static_cast<std::size_t>(at) * numSwitches_ +
                          static_cast<std::size_t>(dest)];
      const int d = distance(at, dest);
      for (const auto& [nb, port] : neighbors) {
        if (distance(nb, dest) == d - 1) list.push_back(port);
      }
    }
  }
}

}  // namespace ibadapt
