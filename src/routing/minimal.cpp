#include "routing/minimal.hpp"

#include <algorithm>

namespace ibadapt {

MinimalAdaptiveRouting::MinimalAdaptiveRouting(const Topology& topo)
    : numSwitches_(topo.numSwitches()), adj_(topo) {
  build();
}

MinimalAdaptiveRouting::MinimalAdaptiveRouting(const Topology& topo,
                                               const SwitchAdjacency& adj)
    : numSwitches_(topo.numSwitches()), adj_(adj) {
  build();
}

void MinimalAdaptiveRouting::build() {
  dist_.resize(static_cast<std::size_t>(numSwitches_) * numSwitches_);
  std::vector<int> row;
  std::vector<SwitchId> queue;
  for (SwitchId from = 0; from < numSwitches_; ++from) {
    adj_.bfsInto(from, row, queue);
    std::copy(row.begin(), row.end(),
              dist_.begin() + static_cast<std::size_t>(from) * numSwitches_);
  }
}

std::vector<PortIndex> MinimalAdaptiveRouting::minimalPorts(
    SwitchId at, SwitchId dest) const {
  std::vector<PortIndex> out;
  if (at == dest) return out;
  const int d = distance(at, dest);
  const SwitchAdjacency::Span nb = adj_.neighbors(at);
  for (int i = 0; i < nb.count; ++i) {
    if (distance(nb.ids[i], dest) == d - 1) out.push_back(nb.ports[i]);
  }
  return out;
}

}  // namespace ibadapt
