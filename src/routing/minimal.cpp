#include "routing/minimal.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace ibadapt {

MinimalAdaptiveRouting::MinimalAdaptiveRouting(const Topology& topo)
    : numSwitches_(topo.numSwitches()), adj_(topo) {
  build(nullptr);
}

MinimalAdaptiveRouting::MinimalAdaptiveRouting(const Topology& topo,
                                               const SwitchAdjacency& adj,
                                               ThreadPool* pool)
    : numSwitches_(topo.numSwitches()), adj_(adj) {
  build(pool);
}

void MinimalAdaptiveRouting::build(ThreadPool* pool) {
  dist_.resize(static_cast<std::size_t>(numSwitches_) * numSwitches_);
  if (pool != nullptr && pool->workerCount() > 1 && numSwitches_ > 1) {
    // One contiguous source range per worker; each range writes only its
    // own rows, so completion order cannot change the matrix bytes.
    const int workers = static_cast<int>(pool->workerCount());
    const int chunk = (numSwitches_ + workers - 1) / workers;
    for (int lo = 0; lo < numSwitches_; lo += chunk) {
      const SwitchId fromBegin = lo;
      const SwitchId fromEnd = std::min(numSwitches_, lo + chunk);
      pool->submit([this, fromBegin, fromEnd] { buildRange(fromBegin, fromEnd); });
    }
    pool->wait();
    return;
  }
  buildRange(0, numSwitches_);
}

void MinimalAdaptiveRouting::buildRange(SwitchId fromBegin, SwitchId fromEnd) {
  std::vector<int> row;
  std::vector<SwitchId> queue;
  for (SwitchId from = fromBegin; from < fromEnd; ++from) {
    adj_.bfsInto(from, row, queue);
    std::transform(row.begin(), row.end(),
                   dist_.begin() + static_cast<std::size_t>(from) * numSwitches_,
                   [](int d) {
                     if (d > 126) {
                       throw std::length_error(
                           "MinimalAdaptiveRouting: hop distance overflows "
                           "the one-byte matrix element");
                     }
                     return static_cast<std::int8_t>(d);
                   });
  }
}

std::vector<PortIndex> MinimalAdaptiveRouting::minimalPorts(
    SwitchId at, SwitchId dest) const {
  std::vector<PortIndex> out;
  if (at == dest) return out;
  const int d = distance(at, dest);
  const SwitchAdjacency::Span nb = adj_.neighbors(at);
  for (int i = 0; i < nb.count; ++i) {
    if (distance(nb.ids[i], dest) == d - 1) out.push_back(nb.ports[i]);
  }
  return out;
}

}  // namespace ibadapt
