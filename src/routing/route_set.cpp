#include "routing/route_set.hpp"

namespace ibadapt {

RouteSet::RouteSet(const Topology& topo, const UpDownRouting& updown,
                   const MinimalAdaptiveRouting& minimal)
    : numSwitches_(topo.numSwitches()),
      numNodes_(topo.numNodes()),
      topo_(&topo),
      updown_(&updown),
      minimal_(&minimal) {}

RouteOptionsSpec RouteSet::options(SwitchId sw, NodeId dest) const {
  RouteOptionsSpec s;
  const SwitchId destSw = topo_->switchOfNode(dest);
  if (destSw == sw) {
    s.escapePort = topo_->portOfNode(dest);
    // Local delivery: a single option; the adaptive list stays empty.
  } else {
    s.escapePort = updown_->nextHopPort(sw, destSw);
    s.adaptivePorts = minimal_->minimalPorts(sw, destSw);
  }
  return s;
}

std::vector<PortIndex> RouteSet::cappedAdaptivePorts(SwitchId sw, NodeId dest,
                                                     int numOptions) const {
  const int slots = numOptions - 1;  // bank 0 holds the escape port
  std::vector<PortIndex> out;
  if (slots <= 0) return out;
  const RouteOptionsSpec s = options(sw, dest);
  if (s.adaptivePorts.empty()) return out;
  const int n = static_cast<int>(s.adaptivePorts.size());
  const int take = slots < n ? slots : n;
  // Deterministic rotation keyed on (switch, destination) balances which
  // minimal ports land in the table when there are more than x-1 of them.
  const int start = (sw * 31 + dest) % n;
  out.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    out.push_back(s.adaptivePorts[static_cast<std::size_t>((start + i) % n)]);
  }
  return out;
}

}  // namespace ibadapt
