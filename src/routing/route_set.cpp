#include "routing/route_set.hpp"

namespace ibadapt {

RouteSet::RouteSet(const Topology& topo, const UpDownRouting& updown,
                   const MinimalAdaptiveRouting& minimal)
    : numSwitches_(topo.numSwitches()), numNodes_(topo.numNodes()) {
  spec_.resize(static_cast<std::size_t>(numSwitches_) * numNodes_);
  for (SwitchId sw = 0; sw < numSwitches_; ++sw) {
    for (NodeId n = 0; n < numNodes_; ++n) {
      auto& s = spec_[static_cast<std::size_t>(sw) * numNodes_ +
                      static_cast<std::size_t>(n)];
      const SwitchId destSw = topo.switchOfNode(n);
      if (destSw == sw) {
        s.escapePort = topo.portOfNode(n);
        // Local delivery: a single option; the adaptive list stays empty.
      } else {
        s.escapePort = updown.nextHopPort(sw, destSw);
        s.adaptivePorts = minimal.minimalPorts(sw, destSw);
      }
    }
  }
}

std::vector<PortIndex> RouteSet::cappedAdaptivePorts(SwitchId sw, NodeId dest,
                                                     int numOptions) const {
  const auto& s = options(sw, dest);
  const int slots = numOptions - 1;  // bank 0 holds the escape port
  std::vector<PortIndex> out;
  if (slots <= 0 || s.adaptivePorts.empty()) return out;
  const int n = static_cast<int>(s.adaptivePorts.size());
  const int take = slots < n ? slots : n;
  // Deterministic rotation keyed on (switch, destination) balances which
  // minimal ports land in the table when there are more than x-1 of them.
  const int start = (sw * 31 + dest) % n;
  out.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    out.push_back(s.adaptivePorts[static_cast<std::size_t>((start + i) % n)]);
  }
  return out;
}

}  // namespace ibadapt
