#pragma once
//
// up*/down* routing (Autonet-style) — the deadlock-free base routing the FA
// algorithm uses for its escape paths (paper §3).
//
// A BFS spanning tree is built from a root switch; every link gets an "up"
// direction (toward the root: lower BFS level wins, ties broken by lower
// switch id). A legal route is zero or more up hops followed by zero or
// more down hops — the up/down order makes the channel dependency graph
// acyclic, hence deadlock freedom.
//
// Distributed (table-based) routing needs one next hop per (switch, dest)
// with no packet state, so the per-destination tables must be *coherent*:
// any packet that was already sent downward must never be routed upward
// again. We realize this with the standard down-preferred rule: a switch
// with a pure-down path to the destination always takes it; only switches
// with no all-down path route upward. This yields coherent, loop-free,
// deadlock-free tables (verified exhaustively by the test suite).
//
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"
#include "util/types.hpp"

namespace ibadapt {

class ThreadPool;

enum class RootSelection {
  kLowestId,
  kHighestDegree,     // most inter-switch links, lowest id on ties (default)
  kMinEccentricity,   // most central switch
};

/// Build-time knobs for the table computation. The per-destination passes
/// are independent (each writes only its own table slice and uses no RNG),
/// so distributing destinations over a pool is bit-identical to the serial
/// order by construction — verified by the LFT-image hash regression.
struct UpDownBuildOptions {
  /// The all-down distance matrix is S^2 ints kept only for the tests and
  /// the routing-option census; LFT image builds never read it (RouteSet
  /// queries next hops only) and skip the allocation.
  bool keepDownDistances = true;
  /// Worker pool for the per-destination table passes (nullptr = serial).
  ThreadPool* pool = nullptr;
};

class UpDownRouting {
 public:
  /// `tieBreakSalt` varies which of several equally-good next hops the
  /// table stores (used to build distinct source-multipath planes; every
  /// salt yields legal, coherent, deadlock-free tables — the union of any
  /// set of salts stays deadlock-free because all paths are up*-then-down*).
  explicit UpDownRouting(const Topology& topo,
                         RootSelection rootSel = RootSelection::kHighestDegree,
                         unsigned tieBreakSalt = 0);

  /// Same, reusing a caller-built adjacency snapshot — the LFT image
  /// builder constructs several planes (and a minimal-routing pass) over
  /// one topology; sharing the snapshot means the graph is walked through
  /// one compact CSR instead of re-deriving neighbor lists per plane. The
  /// snapshot must describe `topo` and only needs to outlive construction.
  UpDownRouting(const Topology& topo, const SwitchAdjacency& adj,
                RootSelection rootSel, unsigned tieBreakSalt,
                const UpDownBuildOptions& opts = {});

  SwitchId root() const { return root_; }
  int level(SwitchId sw) const { return levels_[static_cast<std::size_t>(sw)]; }

  /// True when traversing the link from `from` to `to` is an "up" hop.
  bool isUp(SwitchId from, SwitchId to) const;

  /// Output port at `at` toward destination switch `dest`.
  /// Precondition: at != dest (local delivery is handled by the route set).
  PortIndex nextHopPort(SwitchId at, SwitchId dest) const;

  /// Table-route length in hops from `from` to `to` (follows nextHopPort);
  /// returns -1 if the table ever cycles (cannot happen for valid tables —
  /// used by the verification tests).
  int tableRouteHops(SwitchId from, SwitchId to) const;

  /// Full switch sequence of the table route (for legality verification).
  std::vector<SwitchId> tableRoute(SwitchId from, SwitchId to) const;

  /// Checks the up*-then-down* legality of an arbitrary switch path.
  bool legalPath(const std::vector<SwitchId>& path) const;

  /// Shortest all-down distance from `sw` to `dest` (-1 = none) — exposed
  /// for the tests and the routing-option census. Only valid when the table
  /// was built with keepDownDistances (the default).
  int downDistance(SwitchId sw, SwitchId dest) const;

 private:
  void build(const SwitchAdjacency& adj, RootSelection rootSel,
             const UpDownBuildOptions& opts);
  void computeTables(const SwitchAdjacency& adj,
                     const UpDownBuildOptions& opts);
  void computeDestRange(const SwitchAdjacency& adj, SwitchId destBegin,
                        SwitchId destEnd, bool keepDownDistances);

  const Topology* topo_;
  SwitchId root_ = 0;
  unsigned salt_ = 0;
  std::vector<int> levels_;
  // nextPort_[dest * S + at] = output port at `at` toward `dest`, 0xff for
  // the (unused) diagonal. One byte per pair — the same width the LFT image
  // cells impose on every port anyway — keeps the dominant planner
  // allocation at 16 MiB per plane at 4096 switches (int16 doubled it).
  static constexpr std::uint8_t kNoPort = 0xff;
  std::vector<std::uint8_t> nextPort_;
  // downDist_[dest * S + at] = all-down distance (or -1); empty when built
  // with keepDownDistances == false.
  std::vector<std::int16_t> downDist_;
};

/// Root choice helper (exposed for tests).
SwitchId selectRoot(const Topology& topo, RootSelection sel);

/// Same, over a prebuilt adjacency snapshot with reusable BFS scratch —
/// kMinEccentricity runs one BFS per switch, which at 1024+ switches must
/// not allocate per root.
SwitchId selectRoot(const SwitchAdjacency& adj, RootSelection sel);

}  // namespace ibadapt
