#pragma once
//
// Complete linear-forwarding-table images, computed away from the fabric.
//
// The subnet manager used to derive LFT contents inline while programming
// switches; live reconfiguration needs the same computation as a standalone
// step — the SM recomputes the whole image in the background (possibly from
// a *snapshot* of the topology, while the fabric keeps forwarding on the old
// tables) and only then ships it to the switches. So the image builder lives
// here in the routing layer, takes an explicit topology plus a plan spec,
// and returns plain bytes; both the classic one-shot configure path and the
// epoch-swap reconfiguration path (src/subnet/reconfig) feed from it.
//
#include <cstdint>
#include <vector>

#include "routing/minimal.hpp"
#include "routing/route_set.hpp"
#include "routing/updown.hpp"
#include "topology/topology.hpp"

namespace ibadapt {

/// "Entry not programmed" marker inside an LFT image.
inline constexpr std::uint8_t kLftImageUnset = 0xFF;

/// Everything the routing engines need to plan a full set of tables. The
/// LID layout is described by `lmc` alone: node n owns the aligned block of
/// 2^lmc LIDs starting at (n+1)<<lmc (the core/lid_map.hpp contract,
/// restated here so the routing layer stays below core in the build).
struct LftPlanSpec {
  int lmc = 1;
  /// Interleaved table banks (x): address d is the escape hop, d+1..d+x-1
  /// the adaptive options.
  int numOptions = 2;
  RootSelection rootSelection = RootSelection::kHighestDegree;
  /// See SubnetParams: > 0 programs one deterministic up*/down* plane per
  /// address slot instead of adaptive options (requires numOptions == 1).
  int sourceMultipathPlanes = 0;
  /// See SubnetParams: APM path sets, each a complete routing configuration
  /// in its own sub-block of the LID range.
  int apmPathSets = 1;
  /// Default adaptivity plus the optional per-switch override.
  bool adaptiveSwitches = true;
  std::vector<bool> adaptiveSwitchMask;
};

/// The complete LFT image: one byte per LID per switch (kLftImageUnset =
/// unused address) plus the escape-tree root it was planned around.
struct LftImage {
  std::vector<std::vector<std::uint8_t>> entries;  // [switch][lid]
  SwitchId root = kInvalidId;
};

/// Plan the full image for `topo`. Pure function of its arguments: feeding
/// it a topology snapshot yields the tables the SM would have computed at
/// snapshot time, regardless of what the live fabric has done since.
LftImage buildLftImage(const Topology& topo, const LftPlanSpec& spec);

}  // namespace ibadapt
