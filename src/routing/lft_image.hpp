#pragma once
//
// Complete linear-forwarding-table images, computed away from the fabric.
//
// The subnet manager used to derive LFT contents inline while programming
// switches; live reconfiguration needs the same computation as a standalone
// step — the SM recomputes the whole image in the background (possibly from
// a *snapshot* of the topology, while the fabric keeps forwarding on the old
// tables) and only then ships it to the switches. So the image builder lives
// here in the routing layer, takes an explicit topology plus a plan spec,
// and returns plain bytes; both the classic one-shot configure path and the
// epoch-swap reconfiguration path (src/subnet/reconfig) feed from it.
//
#include <cstdint>
#include <memory>
#include <vector>

#include "routing/minimal.hpp"
#include "routing/route_set.hpp"
#include "routing/updown.hpp"
#include "topology/topology.hpp"

namespace ibadapt {

class ThreadPool;

/// "Entry not programmed" marker inside an LFT image.
inline constexpr std::uint8_t kLftImageUnset = 0xFF;

/// Everything the routing engines need to plan a full set of tables. The
/// LID layout is described by `lmc` alone: node n owns the aligned block of
/// 2^lmc LIDs starting at (n+1)<<lmc (the core/lid_map.hpp contract,
/// restated here so the routing layer stays below core in the build).
struct LftPlanSpec {
  int lmc = 1;
  /// Interleaved table banks (x): address d is the escape hop, d+1..d+x-1
  /// the adaptive options.
  int numOptions = 2;
  RootSelection rootSelection = RootSelection::kHighestDegree;
  /// See SubnetParams: > 0 programs one deterministic up*/down* plane per
  /// address slot instead of adaptive options (requires numOptions == 1).
  int sourceMultipathPlanes = 0;
  /// See SubnetParams: APM path sets, each a complete routing configuration
  /// in its own sub-block of the LID range.
  int apmPathSets = 1;
  /// Default adaptivity plus the optional per-switch override.
  bool adaptiveSwitches = true;
  std::vector<bool> adaptiveSwitchMask;
  /// Planner worker threads: 1 = serial, 0 = hardware concurrency, N = N.
  /// Parallel planning is bit-identical to serial — the per-destination
  /// table passes and per-switch row fills write disjoint output slices
  /// (pinned by the FNV-1a LFT-image hash regression suite).
  int threads = 1;
};

/// The complete LFT image: one byte per LID per switch (kLftImageUnset =
/// unused address) plus the escape-tree root it was planned around.
struct LftImage {
  std::vector<std::vector<std::uint8_t>> entries;  // [switch][lid]
  SwitchId root = kInvalidId;
};

/// Plan the full image for `topo`. Pure function of its arguments: feeding
/// it a topology snapshot yields the tables the SM would have computed at
/// snapshot time, regardless of what the live fabric has done since.
LftImage buildLftImage(const Topology& topo, const LftPlanSpec& spec);

/// Streaming form of the image builder: construction runs every routing
/// pass (up*/down* planes, minimal distances), after which `fillRow`
/// produces any single switch's table row on demand. The one-shot
/// configure path uses this to program switches row by row instead of
/// materializing the full S x LIDs image next to the fabric's own tables —
/// at 4096 switches the image alone is ~64 MiB, briefly doubling table
/// residency. Warm-fabric sessions keep a planner's materialized image
/// instead (they re-install it on every reset), so both forms stay.
class LftPlanner {
 public:
  LftPlanner(const Topology& topo, const LftPlanSpec& spec);
  ~LftPlanner();

  LftPlanner(const LftPlanner&) = delete;
  LftPlanner& operator=(const LftPlanner&) = delete;

  SwitchId root() const { return root_; }
  /// One-past-the-last LID of the image rows ((numNodes+1) << lmc).
  Lid lidLimit() const { return limit_; }

  /// Fill `row` with switch `sw`'s complete LFT image row (lidLimit()
  /// bytes, kLftImageUnset for unprogrammed addresses). Const and
  /// scratch-free: safe to call concurrently for different switches.
  void fillRow(SwitchId sw, std::vector<std::uint8_t>& row) const;

  /// Worker pool sized by spec.threads (nullptr when planning serially);
  /// callers reuse it to parallelize their own fillRow batches.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  const Topology* topo_;
  LftPlanSpec spec_;
  Lid limit_ = 0;
  SwitchId root_ = kInvalidId;
  std::unique_ptr<ThreadPool> pool_;
  /// Multipath mode: one plane per LID slot. Main mode: one escape plane
  /// per APM path set.
  std::vector<UpDownRouting> updowns_;
  std::unique_ptr<MinimalAdaptiveRouting> minimal_;  // main mode only
  std::vector<RouteSet> routeSets_;                  // main mode only
};

}  // namespace ibadapt
