#include "host/reliable_transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ibadapt {

void ReliableTransportSpec::validate() const {
  if (baseRtoNs <= 0 || maxRtoNs < baseRtoNs) {
    throw std::invalid_argument("ReliableTransportSpec: RTO bounds");
  }
  if (backoffFactor < 1.0) {
    throw std::invalid_argument("ReliableTransportSpec: backoffFactor >= 1");
  }
  if (maxRetries < 0) {
    throw std::invalid_argument("ReliableTransportSpec: maxRetries");
  }
  if (ackDelayNs < 0) {
    throw std::invalid_argument("ReliableTransportSpec: ackDelayNs");
  }
  if (jitterFraction < 0.0 || jitterFraction > 1.0) {
    throw std::invalid_argument(
        "ReliableTransportSpec: jitterFraction must be in [0, 1]");
  }
}

ReliableTransport::ReliableTransport(ITrafficSource& inner, int numNodes,
                                     const ReliableTransportSpec& spec)
    : inner_(&inner), numNodes_(numNodes), spec_(spec) {
  spec_.validate();
  if (numNodes < 2) {
    throw std::invalid_argument("ReliableTransport: need >= 2 nodes");
  }
  if (inner.saturationMode()) {
    throw std::invalid_argument(
        "ReliableTransport: saturation sources are unsupported (retransmit "
        "timers need an open-loop generation clock)");
  }
  nodes_.resize(static_cast<std::size_t>(numNodes));
  const std::size_t flows =
      static_cast<std::size_t>(numNodes) * static_cast<std::size_t>(numNodes);
  nextSeq_.assign(flows, 1);
  recv_.assign(flows, FlowRecv{});
}

SimTime ReliableTransport::rtoFor(NodeId src, NodeId dst, std::uint32_t seq,
                                  int attempts) const {
  // Closed-form capped backoff; pow may overflow to inf for deep attempt
  // counts, which the !(x < max) clamp folds onto the ceiling.
  double rto =
      static_cast<double>(spec_.baseRtoNs) *
      std::pow(spec_.backoffFactor, static_cast<double>(attempts));
  if (!(rto < static_cast<double>(spec_.maxRtoNs))) {
    rto = static_cast<double>(spec_.maxRtoNs);
  }
  // Per-(flow, packet, attempt) jitter stretches the deadline by up to
  // jitterFraction of the RTO. Hashed, never drawn: the same copy backs
  // off identically in every kernel and at every thread count, and timers
  // never fire earlier than the unjittered schedule.
  if (spec_.jitterFraction > 0.0) {
    std::uint64_t h = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           src)) << 32) |
                      static_cast<std::uint32_t>(dst);
    h ^= (static_cast<std::uint64_t>(seq) << 16) ^
         static_cast<std::uint64_t>(attempts);
    const double u =
        static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;  // [0, 1)
    rto += rto * spec_.jitterFraction * u;
  }
  return static_cast<SimTime>(rto);
}

void ReliableTransport::drainAcks(NodeSend& st, SimTime now) {
  while (!st.acks.empty() && st.acks.front().learnAt <= now) {
    const Ack ack = st.acks.front();
    st.acks.pop_front();
    auto& outst = st.outstanding;
    for (std::size_t i = 0; i < outst.size(); ++i) {
      if (outst[i].spec.dst == ack.dst && outst[i].spec.e2eSeq == ack.seq) {
        outst[i] = outst.back();
        outst.pop_back();
        break;  // abandoned entries may already be gone: that's fine
      }
    }
  }
}

SimTime ReliableTransport::firstGenTime(NodeId node, Rng& rng) {
  NodeSend& st = nodes_[static_cast<std::size_t>(node)];
  st.innerNext = inner_->firstGenTime(node, rng);
  st.wakeAt = st.innerNext;
  return st.wakeAt;
}

ITrafficSource::Spec ReliableTransport::makePacket(NodeId src, Rng& rng) {
  NodeSend& st = nodes_[static_cast<std::size_t>(src)];
  const SimTime now = st.wakeAt;  // makePacket fires exactly at the wake we
                                  // returned from first/nextGenTime
  drainAcks(st, now);

  // Due retransmissions take priority over fresh generation: the flow's
  // oldest unacknowledged packet is what downstream reorder buffers wait on.
  while (true) {
    std::size_t due = st.outstanding.size();
    for (std::size_t i = 0; i < st.outstanding.size(); ++i) {
      if (st.outstanding[i].deadline > now) continue;
      if (due == st.outstanding.size() ||
          st.outstanding[i].deadline < st.outstanding[due].deadline) {
        due = i;
      }
    }
    if (due == st.outstanding.size()) break;
    OutPkt& op = st.outstanding[due];
    if (op.attempts >= spec_.maxRetries) {
      ++st.abandoned;
      st.outstanding[due] = st.outstanding.back();
      st.outstanding.pop_back();
      continue;
    }
    ++op.attempts;
    op.deadline =
        now + rtoFor(src, op.spec.dst, op.spec.e2eSeq, op.attempts);
    ++st.retransmitsSent;
    // The stored spec stays in fresh-copy form; only the emitted copy is
    // marked, so the packet itself tells the observer chain what it is.
    Spec s = op.spec;
    s.retransmit = true;
    return s;
  }

  if (!st.innerPending && st.innerNext <= now && st.innerNext != kTimeNever) {
    Spec s = inner_->makePacket(src, rng);
    st.innerPending = true;
    if (s.dst != kInvalidId) {
      s.e2eSeq = nextSeq_[flowIndex(src, s.dst)]++;
      s.retransmit = false;
      s.e2eFirstSent = now;
      st.outstanding.push_back(
          OutPkt{s, now + rtoFor(src, s.dst, s.e2eSeq, 0), 0});
      ++st.uniqueSent;
    }
    return s;
  }
  return Spec{};  // idle wake: a timer fired for an already-acked packet
}

SimTime ReliableTransport::nextGenTime(NodeId node, SimTime now, Rng& rng) {
  NodeSend& st = nodes_[static_cast<std::size_t>(node)];
  drainAcks(st, now);
  if (st.innerPending) {
    st.innerNext = inner_->nextGenTime(node, now, rng);
    st.innerPending = false;
  }
  SimTime wake = st.innerNext;
  for (const OutPkt& op : st.outstanding) {
    wake = std::min(wake, op.deadline);
  }
  st.wakeAt = wake;
  return wake;
}

void ReliableTransport::onGenerated(const Packet& pkt, SimTime now) {
  // Retransmitted copies are internal: the exactly-once observer chain sees
  // each application packet generated once. The marker travels in the
  // packet, so this classification is sound wherever the callback runs
  // (inline or replayed at a window barrier).
  if (!pkt.retransmit && chained_ != nullptr) {
    chained_->onGenerated(pkt, now);
  }
}

void ReliableTransport::onInjected(const Packet& pkt, SimTime now) {
  if (chained_ != nullptr) chained_->onInjected(pkt, now);
}

void ReliableTransport::onDelivered(const Packet& pkt, SimTime now) {
  if (pkt.e2eSeq == 0) {  // untracked (pre-transport or foreign) traffic
    if (chained_ != nullptr) chained_->onDelivered(pkt, now);
    return;
  }
  FlowRecv& flow = recv_[flowIndex(pkt.src, pkt.dst)];
  if (flowSeen(flow, pkt.e2eSeq)) {
    ++duplicatesSuppressed_;
    return;
  }
  flowMark(flow, pkt.e2eSeq);
  ++uniqueDelivered_;

  // End-to-end latency against the first transmission, carried in the
  // packet itself — no reach into the sender's ledger.
  e2eLatency_.add(now - pkt.e2eFirstSent);
  // Deliveries replay in nondecreasing `now`, so appending keeps the ack
  // inbox sorted by learnAt.
  nodes_[static_cast<std::size_t>(pkt.src)].acks.push_back(
      Ack{now + spec_.ackDelayNs, pkt.dst, pkt.e2eSeq});
  if (chained_ != nullptr) chained_->onDelivered(pkt, now);
}

bool ReliableTransport::flowSeen(const FlowRecv& flow,
                                 std::uint32_t seq) const {
  return seq <= flow.contiguous || flow.beyond.count(seq) != 0;
}

void ReliableTransport::flowMark(FlowRecv& flow, std::uint32_t seq) {
  if (seq != flow.contiguous + 1) {
    flow.beyond.insert(seq);
    return;
  }
  ++flow.contiguous;
  auto it = flow.beyond.begin();
  while (it != flow.beyond.end() && *it == flow.contiguous + 1) {
    ++flow.contiguous;
    it = flow.beyond.erase(it);
  }
}

std::uint64_t ReliableTransport::uniqueSent() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.uniqueSent;
  return n;
}

std::uint64_t ReliableTransport::retransmitsSent() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.retransmitsSent;
  return n;
}

std::uint64_t ReliableTransport::abandoned() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.abandoned;
  return n;
}

std::size_t ReliableTransport::outstanding() const {
  std::size_t n = 0;
  for (const NodeSend& st : nodes_) n += st.outstanding.size();
  return n;
}

}  // namespace ibadapt
