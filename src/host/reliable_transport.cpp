#include "host/reliable_transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ibadapt {

void ReliableTransportSpec::validate() const {
  if (baseRtoNs <= 0 || maxRtoNs < baseRtoNs) {
    throw std::invalid_argument("ReliableTransportSpec: RTO bounds");
  }
  if (backoffFactor < 1.0) {
    throw std::invalid_argument("ReliableTransportSpec: backoffFactor >= 1");
  }
  if (maxRetries < 0) {
    throw std::invalid_argument("ReliableTransportSpec: maxRetries");
  }
  if (ackDelayNs < 0) {
    throw std::invalid_argument("ReliableTransportSpec: ackDelayNs");
  }
  if (jitterFraction < 0.0 || jitterFraction > 1.0) {
    throw std::invalid_argument(
        "ReliableTransportSpec: jitterFraction must be in [0, 1]");
  }
  if (minRtoNs <= 0 || minRtoNs > maxRtoNs) {
    throw std::invalid_argument(
        "ReliableTransportSpec: minRtoNs must be in (0, maxRtoNs]");
  }
  throttle.validate();
}

ReliableTransport::ReliableTransport(ITrafficSource& inner, int numNodes,
                                     const ReliableTransportSpec& spec)
    : inner_(&inner), numNodes_(numNodes), spec_(spec) {
  spec_.validate();
  if (numNodes < 2) {
    throw std::invalid_argument("ReliableTransport: need >= 2 nodes");
  }
  if (inner.saturationMode()) {
    throw std::invalid_argument(
        "ReliableTransport: saturation sources are unsupported (retransmit "
        "timers need an open-loop generation clock)");
  }
  nodes_.resize(static_cast<std::size_t>(numNodes));
  for (NodeSend& st : nodes_) st.throttle = FlowThrottle(spec_.throttle);
  const std::size_t flows =
      static_cast<std::size_t>(numNodes) * static_cast<std::size_t>(numNodes);
  nextSeq_.assign(flows, 1);
  recv_.assign(flows, FlowRecv{});
}

SimTime ReliableTransport::rtoFor(const NodeSend& st, NodeId src, NodeId dst,
                                  std::uint32_t seq, int attempts) const {
  // Jacobson base once the node has an RTT sample; configured base until
  // then (and always when adaptation is off).
  double base = static_cast<double>(spec_.baseRtoNs);
  if (spec_.adaptiveRto && st.hasRtt) {
    base = st.srttNs + 4.0 * st.rttvarNs;
    if (base < static_cast<double>(spec_.minRtoNs)) {
      base = static_cast<double>(spec_.minRtoNs);
    }
    if (base > static_cast<double>(spec_.maxRtoNs)) {
      base = static_cast<double>(spec_.maxRtoNs);
    }
  }
  // Closed-form capped backoff; pow may overflow to inf for deep attempt
  // counts, which the !(x < max) clamp folds onto the ceiling.
  double rto =
      base * std::pow(spec_.backoffFactor, static_cast<double>(attempts));
  if (!(rto < static_cast<double>(spec_.maxRtoNs))) {
    rto = static_cast<double>(spec_.maxRtoNs);
  }
  // Per-(flow, packet, attempt) jitter stretches the deadline by up to
  // jitterFraction of the RTO. Hashed, never drawn: the same copy backs
  // off identically in every kernel and at every thread count, and timers
  // never fire earlier than the unjittered schedule.
  if (spec_.jitterFraction > 0.0) {
    std::uint64_t h = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           src)) << 32) |
                      static_cast<std::uint32_t>(dst);
    h ^= (static_cast<std::uint64_t>(seq) << 16) ^
         static_cast<std::uint64_t>(attempts);
    const double u =
        static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;  // [0, 1)
    rto += rto * spec_.jitterFraction * u;
  }
  return static_cast<SimTime>(rto);
}

void ReliableTransport::drainAcks(NodeSend& st, SimTime now) {
  while (!st.acks.empty() && st.acks.front().learnAt <= now) {
    const Ack ack = st.acks.front();
    st.acks.pop_front();
    // RTT sample (Karn: first-transmission copies only; rttSampleNs == 0
    // marks a retransmit-copy delivery). Standard Jacobson gains.
    if (spec_.adaptiveRto && ack.rttSampleNs > 0) {
      const double sample = static_cast<double>(ack.rttSampleNs);
      if (!st.hasRtt) {
        st.srttNs = sample;
        st.rttvarNs = sample / 2.0;
        st.hasRtt = true;
      } else {
        const double err = sample - st.srttNs;
        st.srttNs += err / 8.0;
        st.rttvarNs += (std::abs(err) - st.rttvarNs) / 4.0;
      }
    }
    // CNP-style congestion notification: the delivered copy carried the
    // fabric's FECN mark, so the destination's echo throttles this flow.
    // Processed at learnAt (the ack's own event time), which is identical
    // for every kernel and thread count.
    if (ack.congested) st.throttle.onCongestionNotice(ack.dst, ack.learnAt);
    auto& outst = st.outstanding;
    for (std::size_t i = 0; i < outst.size(); ++i) {
      if (outst[i].spec.dst == ack.dst && outst[i].spec.e2eSeq == ack.seq) {
        outst[i] = outst.back();
        outst.pop_back();
        break;  // abandoned entries may already be gone: that's fine
      }
    }
  }
}

SimTime ReliableTransport::firstGenTime(NodeId node, Rng& rng) {
  NodeSend& st = nodes_[static_cast<std::size_t>(node)];
  st.innerNext = inner_->firstGenTime(node, rng);
  st.wakeAt = st.innerNext;
  return st.wakeAt;
}

ITrafficSource::Spec ReliableTransport::makePacket(NodeId src, Rng& rng) {
  NodeSend& st = nodes_[static_cast<std::size_t>(src)];
  const SimTime now = st.wakeAt;  // makePacket fires exactly at the wake we
                                  // returned from first/nextGenTime
  drainAcks(st, now);

  // Due retransmissions take priority over fresh generation: the flow's
  // oldest unacknowledged packet is what downstream reorder buffers wait on.
  while (true) {
    std::size_t due = st.outstanding.size();
    for (std::size_t i = 0; i < st.outstanding.size(); ++i) {
      if (st.outstanding[i].deadline > now) continue;
      if (due == st.outstanding.size() ||
          st.outstanding[i].deadline < st.outstanding[due].deadline) {
        due = i;
      }
    }
    if (due == st.outstanding.size()) break;
    OutPkt& op = st.outstanding[due];
    if (op.attempts >= spec_.maxRetries) {
      ++st.abandoned;
      st.outstanding[due] = st.outstanding.back();
      st.outstanding.pop_back();
      continue;
    }
    // Retransmissions obey the flow's pacing too: an unpaced copy of a
    // throttled flow would re-congest the very port the loop is protecting.
    // Each attempt is charged against the pacer exactly once; the rate
    // floor keeps the release finite, so retries always make progress.
    if (!op.paced) {
      const SimTime releaseAt = st.throttle.planSend(
          op.spec.dst, static_cast<std::uint32_t>(op.spec.sizeBytes), now);
      if (releaseAt > now) {
        ++st.throttled;
        op.paced = true;
        op.deadline = releaseAt;
        continue;
      }
    }
    op.paced = false;
    ++op.attempts;
    op.deadline =
        now + rtoFor(st, src, op.spec.dst, op.spec.e2eSeq, op.attempts);
    ++st.retransmitsSent;
    // The stored spec stays in fresh-copy form; only the emitted copy is
    // marked, so the packet itself tells the observer chain what it is.
    Spec s = op.spec;
    s.retransmit = true;
    return s;
  }

  // Throttle hold queue next: the oldest held packet whose release time has
  // arrived is injected before any new generation (strict node FIFO).
  if (!st.held.empty() && st.held.front().releaseAt <= now) {
    Spec s = st.held.front().spec;
    st.held.pop_front();
    return emitFresh(st, src, s, now);
  }

  if (!st.innerPending && st.innerNext <= now && st.innerNext != kTimeNever) {
    Spec s = inner_->makePacket(src, rng);
    st.innerPending = true;
    if (s.dst == kInvalidId) return s;
    // Injection throttling: pace fresh packets of notified flows. A packet
    // that may not go out yet is parked in the hold queue (behind every
    // earlier held packet, whatever its flow) and this wake emits nothing.
    SimTime releaseAt = st.throttle.planSend(
        s.dst, static_cast<std::uint32_t>(s.sizeBytes), now);
    if (!st.held.empty()) {
      releaseAt = std::max(releaseAt, st.held.back().releaseAt);
    }
    if (releaseAt > now) {
      ++st.throttled;
      st.held.push_back(HeldPkt{s, releaseAt});
      return Spec{};
    }
    return emitFresh(st, src, s, now);
  }
  return Spec{};  // idle wake: a timer fired for an already-acked packet
}

ITrafficSource::Spec ReliableTransport::emitFresh(NodeSend& st, NodeId src,
                                                  Spec s, SimTime now) {
  s.e2eSeq = nextSeq_[flowIndex(src, s.dst)]++;
  s.retransmit = false;
  s.e2eFirstSent = now;
  st.outstanding.push_back(
      OutPkt{s, now + rtoFor(st, src, s.dst, s.e2eSeq, 0), 0});
  ++st.uniqueSent;
  return s;
}

SimTime ReliableTransport::nextGenTime(NodeId node, SimTime now, Rng& rng) {
  NodeSend& st = nodes_[static_cast<std::size_t>(node)];
  drainAcks(st, now);
  if (st.innerPending) {
    st.innerNext = inner_->nextGenTime(node, now, rng);
    st.innerPending = false;
  }
  SimTime wake = st.innerNext;
  for (const OutPkt& op : st.outstanding) {
    wake = std::min(wake, op.deadline);
  }
  if (!st.held.empty()) wake = std::min(wake, st.held.front().releaseAt);
  st.wakeAt = wake;
  return wake;
}

void ReliableTransport::onGenerated(const Packet& pkt, SimTime now) {
  // Retransmitted copies are internal: the exactly-once observer chain sees
  // each application packet generated once. The marker travels in the
  // packet, so this classification is sound wherever the callback runs
  // (inline or replayed at a window barrier).
  if (!pkt.retransmit && chained_ != nullptr) {
    chained_->onGenerated(pkt, now);
  }
}

void ReliableTransport::onInjected(const Packet& pkt, SimTime now) {
  if (chained_ != nullptr) chained_->onInjected(pkt, now);
}

void ReliableTransport::onDelivered(const Packet& pkt, SimTime now) {
  if (pkt.e2eSeq == 0) {  // untracked (pre-transport or foreign) traffic
    if (chained_ != nullptr) chained_->onDelivered(pkt, now);
    return;
  }
  FlowRecv& flow = recv_[flowIndex(pkt.src, pkt.dst)];
  if (flowSeen(flow, pkt.e2eSeq)) {
    ++duplicatesSuppressed_;
    return;
  }
  flowMark(flow, pkt.e2eSeq);
  ++uniqueDelivered_;

  // End-to-end latency against the first transmission, carried in the
  // packet itself — no reach into the sender's ledger.
  e2eLatency_.add(now - pkt.e2eFirstSent);
  // Deliveries replay in nondecreasing `now`, so appending keeps the ack
  // inbox sorted by learnAt. The ack echoes the FECN mark (congestion
  // notification) and carries an RTT sample for first-transmission copies.
  nodes_[static_cast<std::size_t>(pkt.src)].acks.push_back(
      Ack{now + spec_.ackDelayNs, pkt.dst, pkt.e2eSeq, pkt.fecn,
          pkt.retransmit ? 0 : (now + spec_.ackDelayNs) - pkt.e2eFirstSent});
  if (chained_ != nullptr) chained_->onDelivered(pkt, now);
}

bool ReliableTransport::flowSeen(const FlowRecv& flow,
                                 std::uint32_t seq) const {
  return seq <= flow.contiguous || flow.beyond.count(seq) != 0;
}

void ReliableTransport::flowMark(FlowRecv& flow, std::uint32_t seq) {
  if (seq != flow.contiguous + 1) {
    flow.beyond.insert(seq);
    return;
  }
  ++flow.contiguous;
  auto it = flow.beyond.begin();
  while (it != flow.beyond.end() && *it == flow.contiguous + 1) {
    ++flow.contiguous;
    it = flow.beyond.erase(it);
  }
}

std::uint64_t ReliableTransport::uniqueSent() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.uniqueSent;
  return n;
}

std::uint64_t ReliableTransport::retransmitsSent() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.retransmitsSent;
  return n;
}

std::uint64_t ReliableTransport::abandoned() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.abandoned;
  return n;
}

std::size_t ReliableTransport::outstanding() const {
  std::size_t n = 0;
  for (const NodeSend& st : nodes_) n += st.outstanding.size();
  return n;
}

std::uint64_t ReliableTransport::cnpsReceived() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.throttle.cnpsReceived();
  return n;
}

std::uint64_t ReliableTransport::rateDecreases() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.throttle.rateDecreases();
  return n;
}

std::uint64_t ReliableTransport::packetsThrottled() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.throttled;
  return n;
}

std::uint64_t ReliableTransport::throttledHeld() const {
  std::uint64_t n = 0;
  for (const NodeSend& st : nodes_) n += st.held.size();
  return n;
}

}  // namespace ibadapt
