#pragma once
//
// Host-side end-to-end reliability (the missing half of the paper's §4.1
// fault story): LMC/APM virtual addressing lets senders migrate around a
// dead link, but segments already stranded on it are discarded by the
// switches. This layer makes adaptive traffic survive that degraded
// window the way a real transport does:
//
//   * per-flow (src, dst) sequence numbers stamped into every packet,
//   * a retransmit timer per outstanding packet with exponential backoff,
//   * duplicate suppression at the receiver (a late original plus its
//     retransmitted copy deliver exactly once to the layers above).
//
// ReliableTransport sits between the fabric and both host endpoints of
// every flow: it wraps the application ITrafficSource (stamping sequence
// numbers, injecting retransmissions into the generation schedule) and
// interposes on the IDeliveryObserver chain (deduplicating before the
// stats / message-reassembly observers see the packet). Acknowledgements
// are modeled out of band with a configurable delay instead of as wire
// packets: the simulator's subject is the fabric, not the verbs layer,
// and out-of-band acks keep the offered load of every experiment
// comparable with and without reliability enabled.
//
// Threading (SimKernel::kParallel): the ITrafficSource half runs on the
// shard thread owning each source node, the IDeliveryObserver half on the
// coordinating thread at window barriers (see fabric/interfaces.hpp). All
// send-side state is therefore kept strictly per source node — retransmit
// ledger, ack inbox, sequence rows, counters — and the only cross-side
// hand-off is the per-node ack deque, written by the observer side between
// windows and drained by the owning shard inside them (the same barrier
// discipline that orders the fabric's own mailboxes). For the ack hand-off
// to be *bit-identical* across thread counts, ackDelayNs must be at least
// the fabric's conservative lookahead (linkPropagationNs), so an ack never
// becomes visible inside the window that generated it; the API layer
// clamps it accordingly. Receive-side state (dedup windows, latency) is
// touched only by the observer side and needs no partitioning.
//
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "congestion/throttle.hpp"
#include "fabric/interfaces.hpp"
#include "stats/latency.hpp"
#include "util/types.hpp"

namespace ibadapt {

struct ReliableTransportSpec {
  /// Retransmit timeout for the first attempt. Should comfortably exceed
  /// the uncongested round trip (packet latency + ackDelayNs).
  SimTime baseRtoNs = 50'000;
  /// Timeout multiplier per retransmission (exponential backoff).
  double backoffFactor = 2.0;
  /// Backoff ceiling — the closed-form RTO min(base * factor^attempts, max)
  /// is clamped here before jitter is added.
  SimTime maxRtoNs = 1'600'000;
  /// Deterministic timer desynchronization: each deadline is stretched by
  /// up to this fraction of the RTO, keyed by (src, dst, seq, attempt).
  /// After a fault kills many flows at once, their retransmissions would
  /// otherwise all fire in lockstep and re-congest the recovering fabric in
  /// synchronized bursts. Hash-derived (not drawn from the node RNGs), so
  /// enabling reliability never perturbs the traffic pattern's draws and
  /// results stay bit-identical across kernels and thread counts.
  double jitterFraction = 0.125;
  /// Retransmissions per packet before the transport gives up (counted in
  /// abandoned()); generous by default so recovered fabrics converge to
  /// exactly-once delivery.
  int maxRetries = 24;
  /// Delay from delivery at the destination CA until the source learns of
  /// it (out-of-band ack model). Keep >= the fabric's linkPropagationNs for
  /// thread-count-invariant results (see the threading note above).
  SimTime ackDelayNs = 2'000;

  /// Adapt the RTO from observed round trips (Jacobson: srtt + 4*rttvar,
  /// EWMA gains 1/8 and 1/4, samples from first-transmission copies only —
  /// Karn's rule). baseRtoNs then only seeds flows with no sample yet. The
  /// capped + hash-jittered backoff on top is unchanged either way.
  bool adaptiveRto = true;
  /// Floor for the adaptive RTO (the Jacobson estimate is clamped to
  /// [minRtoNs, maxRtoNs] before backoff).
  SimTime minRtoNs = 4'000;

  /// Source-side congestion reaction (src/congestion): per-destination
  /// injection pacing driven by CNP-style congestion notifications riding
  /// the ack path. Disabled by default.
  ThrottleSpec throttle;

  void validate() const;
};

/// Wraps an application traffic source with sequence tracking, timeout +
/// retransmit, and receive-side duplicate suppression. Attach to the
/// fabric as BOTH the traffic source and the delivery observer; chain the
/// measurement observer behind it with attachObserver().
class ReliableTransport final : public ITrafficSource,
                                public IDeliveryObserver {
 public:
  /// `inner` must be an open-loop source (saturation sources pull packets
  /// in bursts with no per-wake clock, which the retransmit timers need).
  ReliableTransport(ITrafficSource& inner, int numNodes,
                    const ReliableTransportSpec& spec);

  /// Observer that sees exactly-once traffic (stats collector, message
  /// reassembler, ...). Duplicate deliveries are suppressed before it.
  void attachObserver(IDeliveryObserver* observer) { chained_ = observer; }

  // ---- ITrafficSource ----------------------------------------------------
  Spec makePacket(NodeId src, Rng& rng) override;
  SimTime firstGenTime(NodeId node, Rng& rng) override;
  SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) override;
  bool saturationMode() const override { return false; }

  // ---- IDeliveryObserver -------------------------------------------------
  void onGenerated(const Packet& pkt, SimTime now) override;
  void onInjected(const Packet& pkt, SimTime now) override;
  void onDelivered(const Packet& pkt, SimTime now) override;

  // ---- reliability metrics ----------------------------------------------
  /// Application packets handed to the fabric for the first time.
  std::uint64_t uniqueSent() const;
  /// Distinct application packets delivered (first copy only).
  std::uint64_t uniqueDelivered() const { return uniqueDelivered_; }
  /// Retransmitted copies injected.
  std::uint64_t retransmitsSent() const;
  /// Deliveries suppressed as duplicates of an earlier copy.
  std::uint64_t duplicatesSuppressed() const { return duplicatesSuppressed_; }
  /// Packets the transport gave up on after maxRetries.
  std::uint64_t abandoned() const;
  /// Packets sent, unacknowledged, and not yet abandoned.
  std::size_t outstanding() const;
  /// First-transmission-to-first-delivery latency of tracked packets
  /// (computed from the packet's own e2eFirstSent stamp, so it includes
  /// packets delivered after the sender already abandoned them).
  const LatencyAccumulator& endToEndLatency() const { return e2eLatency_; }

  // ---- congestion-management metrics ------------------------------------
  /// Congestion notifications (FECN echoes) processed at sources.
  std::uint64_t cnpsReceived() const;
  /// Multiplicative rate decreases applied across all source throttles.
  std::uint64_t rateDecreases() const;
  /// Fresh packets whose injection the throttle delayed.
  std::uint64_t packetsThrottled() const;
  /// Packets currently held back by the throttle (ITrafficSource hook; the
  /// invariant watchdog uses it to tell throttling from deadlock).
  std::uint64_t throttledHeld() const override;
  /// Smoothed RTT estimate for `node` in ns (0 until the first sample).
  SimTime srttNs(NodeId node) const {
    return static_cast<SimTime>(nodes_[static_cast<std::size_t>(node)].srttNs);
  }

 private:
  struct OutPkt {
    Spec spec;            // verbatim respec for retransmission (fresh-copy
                          // form: retransmit=false, original e2eFirstSent)
    SimTime deadline = 0;  // next retransmit time
    int attempts = 0;      // retransmissions so far
    bool paced = false;    // deadline is a throttle release, already charged
  };
  struct Ack {
    SimTime learnAt = 0;  // when the source finds out
    NodeId dst = kInvalidId;
    std::uint32_t seq = 0;
    /// The delivered copy carried the FECN mark: process as a CNP.
    bool congested = false;
    /// RTT sample (first-transmission copies only; 0 = no sample).
    SimTime rttSampleNs = 0;
  };
  /// A fresh packet generated upstream but held back by the throttle. The
  /// e2e sequence / first-sent stamp are assigned at emission, not at hold,
  /// so in-fabric ordering and RTT samples see the real injection time.
  struct HeldPkt {
    Spec spec;
    SimTime releaseAt = 0;
  };
  /// All send-side state of one source node, touched only by that node's
  /// traffic-source calls — except `acks`, which the observer side appends
  /// to between windows. Deliveries replay in time order, so the deque is
  /// sorted by learnAt by construction and draining is a pop-front scan.
  struct NodeSend {
    SimTime innerNext = kTimeNever;  // inner source's next generation time
    bool innerPending = false;       // inner.makePacket consumed, next time
                                     // not yet asked for
    SimTime wakeAt = kTimeNever;     // the time we returned to the fabric;
                                     // equals `now` inside makePacket
    std::vector<OutPkt> outstanding;
    std::deque<Ack> acks;
    /// Throttle hold queue, strict node FIFO: once one packet is held,
    /// every later fresh packet queues behind it (releaseAt nondecreasing
    /// by construction). Retransmissions bypass the queue entirely.
    std::deque<HeldPkt> held;
    FlowThrottle throttle;
    std::uint64_t uniqueSent = 0;
    std::uint64_t retransmitsSent = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t throttled = 0;  ///< fresh packets delayed by the throttle
    // Jacobson RTT estimator (spec_.adaptiveRto).
    double srttNs = 0.0;
    double rttvarNs = 0.0;
    bool hasRtt = false;
  };
  struct FlowRecv {
    std::uint32_t contiguous = 0;        // every seq <= contiguous received
    std::set<std::uint32_t> beyond;      // received past the contiguous edge
  };

  std::size_t flowIndex(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(numNodes_) +
           static_cast<std::size_t>(dst);
  }
  SimTime rtoFor(const NodeSend& st, NodeId src, NodeId dst,
                 std::uint32_t seq, int attempts) const;
  void drainAcks(NodeSend& st, SimTime now);
  /// Assigns sequence/ledger state and returns the emit-ready spec for a
  /// fresh packet injected at `now` (shared by the direct and held paths).
  Spec emitFresh(NodeSend& st, NodeId src, Spec s, SimTime now);
  bool flowSeen(const FlowRecv& flow, std::uint32_t seq) const;
  void flowMark(FlowRecv& flow, std::uint32_t seq);

  ITrafficSource* inner_;
  IDeliveryObserver* chained_ = nullptr;
  int numNodes_;
  ReliableTransportSpec spec_;

  std::vector<NodeSend> nodes_;
  std::vector<std::uint32_t> nextSeq_;  // per flow, next seq to assign
                                        // (from 1; row src*N owned by src)
  // Receive side (observer-thread only).
  std::vector<FlowRecv> recv_;
  std::uint64_t uniqueDelivered_ = 0;
  std::uint64_t duplicatesSuppressed_ = 0;
  LatencyAccumulator e2eLatency_;
};

}  // namespace ibadapt
