#include "host/message_layer.hpp"

#include <stdexcept>

namespace ibadapt {

MessageTraffic::MessageTraffic(const MessageTrafficSpec& spec) : spec_(spec) {
  if (spec.numNodes < 2) {
    throw std::invalid_argument("MessageTraffic: need >= 2 nodes");
  }
  if (spec.messageBytes <= 0 || spec.mtuBytes <= 0) {
    throw std::invalid_argument("MessageTraffic: sizes");
  }
  if (spec.meanMessageGapNs <= 0.0) {
    throw std::invalid_argument("MessageTraffic: meanMessageGapNs");
  }
  segCount_ = (spec.messageBytes + spec.mtuBytes - 1) / spec.mtuBytes;
  tailBytes_ = spec.messageBytes - (segCount_ - 1) * spec.mtuBytes;
  if (segCount_ > 0xFFFF) {
    throw std::invalid_argument("MessageTraffic: message too large");
  }
  nodes_.resize(static_cast<std::size_t>(spec.numNodes));
  for (auto& n : nodes_) {
    n.nextMsgIdForDst.assign(static_cast<std::size_t>(spec.numNodes), 1);
  }
}

ITrafficSource::Spec MessageTraffic::makePacket(NodeId src, Rng& rng) {
  NodeState& st = nodes_[static_cast<std::size_t>(src)];
  if (st.segsLeft == 0) {
    // Start a new message.
    auto d = static_cast<NodeId>(rng.uniformIndex(
        static_cast<std::uint64_t>(spec_.numNodes - 1)));
    if (d >= src) ++d;
    st.dst = d;
    st.msgId = st.nextMsgIdForDst[static_cast<std::size_t>(d)]++;
    st.segsLeft = segCount_;
  }
  Spec s;
  s.dst = st.dst;
  s.adaptive = spec_.adaptive;
  s.msgId = st.msgId;
  s.segCount = static_cast<std::uint16_t>(segCount_);
  s.segIndex = static_cast<std::uint16_t>(segCount_ - st.segsLeft);
  s.sizeBytes = st.segsLeft == 1 ? tailBytes_ : spec_.mtuBytes;
  --st.segsLeft;
  return s;
}

SimTime MessageTraffic::firstGenTime(NodeId node, Rng& rng) {
  (void)node;
  return static_cast<SimTime>(rng.exponential(spec_.meanMessageGapNs));
}

SimTime MessageTraffic::nextGenTime(NodeId node, SimTime now, Rng& rng) {
  const NodeState& st = nodes_[static_cast<std::size_t>(node)];
  if (st.segsLeft > 0) {
    return now;  // remaining segments of the current message: back-to-back
  }
  return now + 1 + static_cast<SimTime>(rng.exponential(spec_.meanMessageGapNs));
}

// ---------------------------------------------------------------------------

void MessageReassembler::onGenerated(const Packet& pkt, SimTime now) {
  if (pkt.segCount == 0 || pkt.segIndex != 0) return;
  // First segment generated: remember the message birth time.
  const FlowKey key{pkt.src, pkt.dst};
  Assembly& a = assembling_[{key, pkt.msgId}];
  a.segCount = pkt.segCount;
  a.genTime = now;
}

void MessageReassembler::onDelivered(const Packet& pkt, SimTime now) {
  if (pkt.segCount == 0) return;
  const FlowKey key{pkt.src, pkt.dst};
  const auto mapKey = std::make_pair(key, pkt.msgId);
  const auto it = assembling_.find(mapKey);
  if (it == assembling_.end()) {
    ++staleSegments_;
    return;
  }
  Assembly& a = it->second;
  if (!a.seen.insert(pkt.segIndex).second) {
    ++staleSegments_;  // duplicate segment
    return;
  }
  if (a.seen.size() < a.segCount) return;

  // Message complete.
  ++completed_;
  completion_.add(now - a.genTime);
  Flow& flow = flows_[key];
  flow.held.emplace(pkt.msgId, std::make_pair(a.genTime, now));
  ++held_;
  maxHeld_ = std::max(maxHeld_, held_);
  assembling_.erase(it);

  // Release the in-order prefix to the application.
  while (!flow.held.empty() &&
         flow.held.begin()->first == flow.nextExpected) {
    const auto [gen, done] = flow.held.begin()->second;
    (void)done;
    app_.add(now - gen);  // released at `now`, when the head filled in
    ++appDelivered_;
    ++flow.nextExpected;
    flow.held.erase(flow.held.begin());
    --held_;
  }
}

}  // namespace ibadapt
