#pragma once
//
// Host-side message layer — the paper's §1 observation made concrete:
// "in-order packets could also use adaptive routing if packets were
// reordered at the destination host before being delivered."
//
// `MessageTraffic` generates multi-packet messages (MTU-sized segments,
// back-to-back from the source CA). `MessageReassembler` observes segment
// deliveries, completes messages, and hands them to the "application"
// either as they complete (unordered) or strictly in per-flow message order
// via a reorder buffer — so adaptive routing can carry traffic that the
// application still sees in order.
//
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "fabric/interfaces.hpp"
#include "stats/latency.hpp"
#include "util/types.hpp"

namespace ibadapt {

struct MessageTrafficSpec {
  int numNodes = 0;
  int messageBytes = 2048;  // segmented into MTU-sized packets
  int mtuBytes = 256;
  /// Message starts per node: exponential with this mean.
  double meanMessageGapNs = 20'000.0;
  /// Route the segments adaptively (true) or deterministically (false).
  bool adaptive = true;
};

/// Uniform-destination message workload; each message's segments are
/// offered back-to-back (the CA serializes them onto the first link).
class MessageTraffic final : public ITrafficSource {
 public:
  explicit MessageTraffic(const MessageTrafficSpec& spec);

  Spec makePacket(NodeId src, Rng& rng) override;
  SimTime firstGenTime(NodeId node, Rng& rng) override;
  SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) override;
  bool saturationMode() const override { return false; }

  int segmentsPerMessage() const { return segCount_; }

 private:
  struct NodeState {
    /// Per-destination message ids: ordering is a per-flow contract.
    std::vector<std::uint32_t> nextMsgIdForDst;
    int segsLeft = 0;  // segments of the current message still to offer
    NodeId dst = kInvalidId;
    std::uint32_t msgId = 0;
  };

  MessageTrafficSpec spec_;
  int segCount_ = 0;
  int tailBytes_ = 0;  // size of the last segment
  std::vector<NodeState> nodes_;
};

/// Completes messages from delivered segments and measures message latency
/// for both delivery disciplines.
class MessageReassembler final : public IDeliveryObserver {
 public:
  explicit MessageReassembler(int numNodes) : numNodes_(numNodes) {}

  void onGenerated(const Packet& pkt, SimTime now) override;
  void onInjected(const Packet&, SimTime) override {}
  void onDelivered(const Packet& pkt, SimTime now) override;

  std::uint64_t messagesCompleted() const { return completed_; }
  std::uint64_t messagesDeliveredInOrder() const { return appDelivered_; }

  /// Latency from message generation until its last segment arrived.
  const LatencyAccumulator& completionLatency() const { return completion_; }
  /// Latency until the in-order reorder buffer released the message to the
  /// application (>= completion latency; the reordering cost).
  const LatencyAccumulator& appLatency() const { return app_; }

  /// Largest number of completed-but-held messages across all flows — the
  /// reorder-buffer cost of adaptive routing.
  std::size_t maxReorderHeld() const { return maxHeld_; }

  /// Segments observed for a message that was already released (would
  /// indicate duplicate delivery — must stay 0).
  std::uint64_t staleSegments() const { return staleSegments_; }

 private:
  struct FlowKey {
    NodeId src;
    NodeId dst;
    auto operator<=>(const FlowKey&) const = default;
  };
  struct Assembly {
    std::set<std::uint16_t> seen;
    std::uint16_t segCount = 0;
    SimTime genTime = 0;
  };
  struct Flow {
    std::uint32_t nextExpected = 1;
    /// Completed messages waiting for earlier ones: msgId -> (gen, done).
    std::map<std::uint32_t, std::pair<SimTime, SimTime>> held;
  };

  int numNodes_;
  std::map<std::pair<FlowKey, std::uint32_t>, Assembly> assembling_;
  std::map<FlowKey, Flow> flows_;
  std::uint64_t completed_ = 0;
  std::uint64_t appDelivered_ = 0;
  std::uint64_t staleSegments_ = 0;
  std::size_t held_ = 0;
  std::size_t maxHeld_ = 0;
  LatencyAccumulator completion_;
  LatencyAccumulator app_;
};

}  // namespace ibadapt
