#pragma once
//
// Congestion-management knobs and counters shared by the fabric (detection),
// host transport (notification + reaction), and the API result surface.
//
// The scheme follows the IBA CCA / ECN shape evaluated for adaptively-routed
// fabrics by Rocher-Gonzalez et al. (arXiv:2502.00616, arXiv:2502.00597):
// switches watch per-output-port/VL free credits, mark forwarded packets
// FECN-style once a port crosses a hysteresis threshold, destination CAs
// echo the mark back to the source with the delivery ack (a CNP), and the
// source applies multiplicative-decrease / additive-increase pacing per
// destination flow. Detection state lives on the switch output port and is
// mutated only from handlers whose call sequence is identical across the
// calendar, legacy-heap, and parallel kernels, so enabling congestion
// control preserves bit-identical results for any kernel and thread count.
//
#include <stdexcept>

#include "util/types.hpp"

namespace ibadapt {

/// Switch-side detection knobs (hysteresis on free credits per port/VL).
struct CongestionDetectSpec {
  /// Master switch for detection; when false the fabric never marks packets
  /// and keeps zero per-port congestion state transitions.
  bool enabled = false;

  /// A port/VL enters the congested state when its free-credit fraction
  /// drops to or below this value (0.25 => mark when <= 25 % credits left).
  double enterFreeFraction = 0.25;

  /// It leaves the congested state when free credits recover to or above
  /// this fraction. Must be > enterFreeFraction for real hysteresis.
  double exitFreeFraction = 0.5;

  /// When true, the adaptive selection function skips output options whose
  /// port/VL is currently congested (falling back to the full option set
  /// when every candidate is congested), so fully-adaptive routing stops
  /// feeding an established congestion tree.
  bool demoteCongestedPorts = true;

  void validate() const {
    if (enterFreeFraction <= 0.0 || enterFreeFraction >= 1.0) {
      throw std::invalid_argument(
          "CongestionDetectSpec: enterFreeFraction must be in (0, 1)");
    }
    if (exitFreeFraction <= enterFreeFraction || exitFreeFraction > 1.0) {
      throw std::invalid_argument(
          "CongestionDetectSpec: exitFreeFraction must be in "
          "(enterFreeFraction, 1]");
    }
  }
};

/// End-to-end congestion-management observability, assembled by the API
/// layer from fabric counters (detection) and transport counters (reaction).
struct CongestionStats {
  /// Packets forwarded with the FECN mark set by a congested port.
  std::uint64_t fecnMarked = 0;
  /// Port/VL transitions into the congested state.
  std::uint64_t congOnsets = 0;
  /// Total simulated time ports spent in the congested state (summed over
  /// ports; completed congestion episodes only).
  std::uint64_t congestedPortNs = 0;
  /// Total simulated time ports spent at exactly zero free credits
  /// (completed stall episodes only).
  std::uint64_t zeroCreditStallNs = 0;
  /// Congestion notifications processed by source transports.
  std::uint64_t cnpsReceived = 0;
  /// Multiplicative rate decreases applied at sources.
  std::uint64_t rateDecreases = 0;
  /// Fresh packets whose injection was delayed by the throttle.
  std::uint64_t packetsThrottled = 0;
  /// Packets still held (throttled, not yet injected) when the run ended.
  std::uint64_t heldAtEnd = 0;
};

}  // namespace ibadapt
