#pragma once
//
// Source-side per-flow injection throttle: DCQCN-flavoured multiplicative
// decrease on congestion notifications, lazy additive recovery with time.
//
// One FlowThrottle instance lives inside each source node's transport state,
// so all mutation happens on that node's owning shard thread (or the
// coordinator between windows) — no locking, and the decision sequence is a
// pure function of (notifications seen, simulated time), which keeps runs
// bit-identical across kernels and thread counts.
//
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "util/types.hpp"

namespace ibadapt {

/// Reaction knobs for the source-side injection throttle.
struct ThrottleSpec {
  /// Master switch; when false planSend() never delays and notifications
  /// are counted but ignored.
  bool enabled = false;

  /// Rate multiplier applied on a congestion notification (0.5 = halve).
  double mdFactor = 0.5;

  /// Floor for the per-flow rate factor; decreases never go below this.
  /// Must sit near a flow's fair share of a hot port (~ wire rate divided
  /// by the number of contending hosts): a hotspot is many individually
  /// tiny flows, so a higher floor never binds, while a much lower one
  /// lets MD chains starve the victim link below its drain rate.
  double minRateFactor = 0.005;

  /// Additive-increase step applied once per recoveryPeriodNs of elapsed
  /// simulated time while a flow is throttled.
  double aiStep = 0.01;

  /// Period of one additive-recovery step.
  SimTime recoveryPeriodNs = 50'000;

  /// Minimum gap between successive multiplicative decreases on the same
  /// flow — a burst of marked packets from one congestion episode counts
  /// as a single notification, like the CNP timer in RoCE DCQCN.
  SimTime minCnpGapNs = 20'000;

  /// Wire serialization cost used to convert a rate factor into an
  /// inter-packet gap (copied from FabricParams::nsPerByte by the API).
  std::int64_t nsPerByte = 4;

  void validate() const {
    if (mdFactor <= 0.0 || mdFactor >= 1.0) {
      throw std::invalid_argument("ThrottleSpec: mdFactor must be in (0, 1)");
    }
    if (minRateFactor <= 0.0 || minRateFactor >= 1.0) {
      throw std::invalid_argument(
          "ThrottleSpec: minRateFactor must be in (0, 1)");
    }
    if (aiStep <= 0.0 || aiStep > 1.0) {
      throw std::invalid_argument("ThrottleSpec: aiStep must be in (0, 1]");
    }
    if (recoveryPeriodNs <= 0) {
      throw std::invalid_argument(
          "ThrottleSpec: recoveryPeriodNs must be positive");
    }
    if (minCnpGapNs < 0) {
      throw std::invalid_argument(
          "ThrottleSpec: minCnpGapNs must be non-negative");
    }
    if (nsPerByte <= 0) {
      throw std::invalid_argument("ThrottleSpec: nsPerByte must be positive");
    }
  }
};

/// Per-source-node throttle state: a sparse map of destination flows that
/// are currently below full rate. Flows at full rate carry no entry and
/// pay nothing on the send path.
class FlowThrottle {
 public:
  FlowThrottle() = default;
  explicit FlowThrottle(const ThrottleSpec& spec) : spec_(spec) {}

  /// Processes a congestion notification for flow `dst` observed at `now`.
  /// Applies at most one multiplicative decrease per minCnpGapNs.
  void onCongestionNotice(NodeId dst, SimTime now);

  /// Earliest time a fresh packet of `sizeBytes` for `dst` may be injected,
  /// given `now`. Advances the flow's pacing clock when throttled; returns
  /// `now` (and records nothing) for flows at full rate.
  SimTime planSend(NodeId dst, std::uint32_t sizeBytes, SimTime now);

  /// Current rate factor for a flow (1.0 when untracked / fully recovered).
  double rateFactor(NodeId dst, SimTime now);

  std::uint64_t cnpsReceived() const { return cnpsReceived_; }
  std::uint64_t rateDecreases() const { return rateDecreases_; }
  /// Number of flows currently tracked below full rate.
  std::size_t activeFlows() const { return flows_.size(); }

 private:
  struct Flow {
    double rate = 1.0;
    SimTime lastMdAt = -1;       ///< last multiplicative decrease
    SimTime lastRecoveryAt = 0;  ///< additive-recovery step clock
    SimTime nextAllowedAt = 0;   ///< pacing clock for fresh injections
  };

  /// Applies any additive-recovery steps earned since the last visit and
  /// erases the entry if the flow is back at full rate. Returns the entry
  /// (nullptr when erased or absent).
  Flow* recoverTo(NodeId dst, SimTime now);

  ThrottleSpec spec_;
  std::unordered_map<NodeId, Flow> flows_;
  std::uint64_t cnpsReceived_ = 0;
  std::uint64_t rateDecreases_ = 0;
};

}  // namespace ibadapt
