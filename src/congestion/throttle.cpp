#include "congestion/throttle.hpp"

#include <algorithm>

namespace ibadapt {

FlowThrottle::Flow* FlowThrottle::recoverTo(NodeId dst, SimTime now) {
  auto it = flows_.find(dst);
  if (it == flows_.end()) return nullptr;
  Flow& f = it->second;
  if (f.rate < 1.0 && now > f.lastRecoveryAt) {
    const SimTime steps = (now - f.lastRecoveryAt) / spec_.recoveryPeriodNs;
    if (steps > 0) {
      f.rate = std::min(1.0, f.rate + static_cast<double>(steps) * spec_.aiStep);
      f.lastRecoveryAt += steps * spec_.recoveryPeriodNs;
    }
  }
  // Fully recovered and not owing any pacing debt: drop the entry so the
  // flow pays nothing until the next notification.
  if (f.rate >= 1.0 && f.nextAllowedAt <= now) {
    flows_.erase(it);
    return nullptr;
  }
  return &f;
}

void FlowThrottle::onCongestionNotice(NodeId dst, SimTime now) {
  ++cnpsReceived_;
  if (!spec_.enabled) return;
  Flow* f = recoverTo(dst, now);
  if (f == nullptr) {
    Flow& fresh = flows_[dst];
    fresh.lastRecoveryAt = now;
    fresh.nextAllowedAt = now;
    f = &fresh;
  }
  if (f->lastMdAt >= 0 && now - f->lastMdAt < spec_.minCnpGapNs) return;
  f->rate = std::max(spec_.minRateFactor, f->rate * spec_.mdFactor);
  f->lastMdAt = now;
  // Recovery restarts from the decrease, so a flow being notified every
  // minCnpGapNs ratchets down instead of oscillating.
  f->lastRecoveryAt = now;
  ++rateDecreases_;
}

SimTime FlowThrottle::planSend(NodeId dst, std::uint32_t sizeBytes,
                               SimTime now) {
  if (!spec_.enabled) return now;
  Flow* f = recoverTo(dst, now);
  if (f == nullptr) return now;
  const SimTime wireNs = static_cast<SimTime>(sizeBytes) * spec_.nsPerByte;
  const SimTime gap = static_cast<SimTime>(
      static_cast<double>(wireNs) / std::max(f->rate, spec_.minRateFactor));
  const SimTime sendAt = std::max(now, f->nextAllowedAt);
  f->nextAllowedAt = sendAt + std::max<SimTime>(gap, 1);
  return sendAt;
}

double FlowThrottle::rateFactor(NodeId dst, SimTime now) {
  Flow* f = recoverTo(dst, now);
  return f == nullptr ? 1.0 : f->rate;
}

}  // namespace ibadapt
