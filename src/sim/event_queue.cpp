#include "sim/event_queue.hpp"

namespace ibadapt {

void EventQueue::push(Event ev) {
  ev.seq = nextSeq_++;
  heap_.push(ev);
}

Event EventQueue::pop() {
  Event ev = heap_.top();
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  heap_ = {};
  nextSeq_ = 0;
}

}  // namespace ibadapt
