#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibadapt {

EventQueue::EventQueue(SimKernel kind, int dayShift, int bucketShift)
    : kind_(kind),
      dayShift_(dayShift),
      bucketShift_(bucketShift),
      numBuckets_(std::size_t{1} << bucketShift),
      indexMask_(numBuckets_ - 1),
      bitmapWords_(numBuckets_ / 64) {
  if (dayShift < kMinDayShift || dayShift > kMaxDayShift) {
    throw std::invalid_argument("EventQueue: dayShift out of range");
  }
  if (bucketShift < kMinBucketShift || bucketShift > kMaxBucketShift) {
    throw std::invalid_argument("EventQueue: bucketShift out of range");
  }
  if (kind_ != SimKernel::kLegacyHeap) {
    buckets_.resize(numBuckets_);
    bitmap_.assign(bitmapWords_, 0);
  }
}

int EventQueue::suggestDayShift(SimTime meanHorizonNs) {
  if (meanHorizonNs <= 0) return kDefaultDayShift;
  // Smallest shift with 2^shift >= meanHorizon/2, i.e. a day holds roughly
  // one scheduling horizon: cohorts stay within a bucket or two and the
  // cursor rarely scans empty days.
  int shift = kMinDayShift;
  while (shift < kMaxDayShift &&
         (SimTime{1} << shift) < (meanHorizonNs + 1) / 2) {
    ++shift;
  }
  return shift;
}

int EventQueue::suggestDayShift(SimTime meanHorizonNs, double eventsPerNs) {
  const int horizonShift = suggestDayShift(meanHorizonNs);
  if (eventsPerNs <= 0.0) return horizonShift;
  // Target a handful of events per day: with ~eventsPerNs arrivals per
  // simulated ns, a day of 2^shift ns holds ~eventsPerNs * 2^shift events.
  // Keep that near 4 so the per-bucket sorted insert stays O(1)-ish even
  // when thousands of entities are live, but never widen past the
  // horizon-derived day (sparse fabrics would scan empty buckets).
  int shift = kMinDayShift;
  while (shift < horizonShift &&
         (static_cast<double>(SimTime{1} << (shift + 1)) * eventsPerNs) <= 4.0) {
    ++shift;
  }
  return shift;
}

int EventQueue::suggestBucketShift(std::size_t expectedLiveEvents) {
  // Classic calendar-queue sizing: about one bucket per live event keeps
  // the expected bucket chain length constant. Clamped so tiny fixtures
  // still get a bitmap-friendly wheel and huge fabrics don't overshoot.
  int shift = kMinBucketShift;
  while (shift < kMaxBucketShift &&
         (std::size_t{1} << shift) < expectedLiveEvents) {
    ++shift;
  }
  return shift;
}

void EventQueue::insertWheel(const Event& ev) {
  std::int64_t day = ev.time >> dayShift_;
  // Pushes at or before the last popped timestamp land in the cursor day so
  // they are (like in a heap) the very next events popped; the sorted
  // insert below keeps them ordered among themselves by (time, seq).
  if (day < baseDay_) day = baseDay_;
  const std::size_t idx = static_cast<std::size_t>(day) & indexMask_;
  Bucket& b = buckets_[idx];
  if (b.events.empty() || !EventLater{}(b.events.back(), ev)) {
    b.events.push_back(ev);  // common case: latest (time, seq) in its day
  } else {
    // EventLater(a, b) == "a pops after b", so ascending pop order is the
    // range partitioned by EventLater(ev, *it).
    const auto pos = std::upper_bound(
        b.events.begin() + static_cast<std::ptrdiff_t>(b.head),
        b.events.end(), ev,
        [](const Event& x, const Event& y) { return EventLater{}(y, x); });
    b.events.insert(pos, ev);
  }
  setBit(idx);
  ++wheelCount_;
}

void EventQueue::migrateOverflow() {
  const std::int64_t limit = baseDay_ + static_cast<std::int64_t>(numBuckets_);
  while (!overflow_.empty() && (overflow_.top().time >> dayShift_) < limit) {
    insertWheel(overflow_.top());
    overflow_.pop();
  }
}

std::size_t EventQueue::findOccupiedFrom(std::size_t startIdx) const {
  // First set bit at or after startIdx in circular index order. Wheel
  // events all lie within one window, so circular order == day order.
  // Precondition: wheelCount_ > 0, hence some bit is set.
  const std::size_t startWord = startIdx >> 6;
  std::uint64_t word = bitmap_[startWord] & (~0ULL << (startIdx & 63));
  if (word != 0) {
    return (startWord << 6) +
           static_cast<std::size_t>(__builtin_ctzll(word));
  }
  for (std::size_t w = 1; w <= bitmapWords_; ++w) {
    const std::size_t i = (startWord + w) & (bitmapWords_ - 1);
    if (bitmap_[i] != 0) {
      return (i << 6) + static_cast<std::size_t>(__builtin_ctzll(bitmap_[i]));
    }
  }
  return startIdx;  // unreachable under the precondition
}

void EventQueue::clear() {
  nextSeq_ = 0;
  size_ = 0;
  if (kind_ == SimKernel::kLegacyHeap) {
    heap_ = {};
    return;
  }
  for (Bucket& b : buckets_) {
    b.events.clear();
    b.head = 0;
    releaseBurst(b);
  }
  std::fill(bitmap_.begin(), bitmap_.end(), 0);
  baseDay_ = 0;
  wheelCount_ = 0;
  overflow_ = {};
}

}  // namespace ibadapt
