#pragma once
//
// POD event record for the discrete-event kernel.
//
// Events carry three opaque 32-bit payload words instead of closures: the
// hot loop pops millions of these per simulated second, so they must be
// trivially copyable and allocation-free. The fabric layer defines how the
// payload words are packed for each kind.
//
#include <cstdint>

#include "util/types.hpp"

namespace ibadapt {

enum class EventKind : std::uint8_t {
  kNone = 0,
  /// A packet's header reaches a switch input port. a=switch, b=port|vl, c=pkt.
  kHeaderArrive,
  /// Run the arbitration pass of a switch. a=switch.
  kArbitrate,
  /// Credit update arrives at a switch output port. a=switch, b=port|vl, c=credits.
  kCreditToSwitch,
  /// Credit update arrives at a node CA. a=node, b=vl, c=credits.
  kCreditToNode,
  /// A node CA may try to start transmitting the queued packet. a=node.
  kNodeTryTx,
  /// A node generates its next packet (open-loop traffic). a=node.
  kNodeGenerate,
  /// A packet's tail fully arrives at its destination node. a=node, c=pkt.
  kNodeDeliver,
  /// Periodic progress / deadlock watchdog tick.
  kWatchdog,
  /// Periodic link-level credit-resync tick (IBA flow-control packets carry
  /// absolute totals, so leaked credits heal after a few sync periods).
  /// a=epoch.
  kCreditResync,
  /// Periodic runtime invariant check (src/check). a=epoch.
  kInvariantCheck,
  /// A packet's tail has fully left the wire of a switch output port: debit
  /// the in-flight (wire) credits. Scheduled by the *granting* switch for
  /// itself at arrival time, so the bookkeeping write never crosses a shard
  /// boundary in the parallel kernel. a=switch, b=port|vl, c=credits.
  kWireDebit,
};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-breaker: FIFO among simultaneous events
  EventKind kind = EventKind::kNone;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

// --- canonical producer stamps ---------------------------------------------
//
// The fabric stamps every event it schedules with a *producer-local*
// sequence number instead of a queue-global one:
//
//     seq = (producer << kProducerShift) | perProducerCounter
//
// Producer 0 is the coordinator (start()/run() re-arms, watchdog chains,
// management actions); entity producers are 1+switchId and
// 1+numSwitches+nodeId. Each entity's handler executions occur in the same
// relative order whatever the thread count, so its counter sequence — and
// hence every stamp — is identical for the sequential and sharded kernels.
// The stamps form a total order (unique producer counters), which makes the
// (time, seq) dispatch order reproducible bit-for-bit across shardings; the
// coordinator's low producer id makes its events sort *first* among
// same-time events, mirroring its dispatch slot at the epoch boundary.
constexpr int kProducerShift = 40;
constexpr std::uint64_t kProducerCounterMask =
    (std::uint64_t{1} << kProducerShift) - 1;

constexpr std::uint64_t makeStamp(std::uint32_t producer,
                                  std::uint64_t counter) noexcept {
  return (static_cast<std::uint64_t>(producer) << kProducerShift) |
         (counter & kProducerCounterMask);
}

/// Strict weak ordering: earliest time first, then insertion order.
struct EventLater {
  bool operator()(const Event& x, const Event& y) const noexcept {
    if (x.time != y.time) return x.time > y.time;
    return x.seq > y.seq;
  }
};

/// Helpers for packing (port, vl) into one payload word.
constexpr std::uint32_t packPortVl(PortIndex port, VlIndex vl) noexcept {
  return (static_cast<std::uint32_t>(port) << 8) |
         static_cast<std::uint32_t>(vl);
}
constexpr PortIndex unpackPort(std::uint32_t w) noexcept {
  return static_cast<PortIndex>(w >> 8);
}
constexpr VlIndex unpackVl(std::uint32_t w) noexcept {
  return static_cast<VlIndex>(w & 0xff);
}

}  // namespace ibadapt
