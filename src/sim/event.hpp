#pragma once
//
// POD event record for the discrete-event kernel.
//
// Events carry three opaque 32-bit payload words instead of closures: the
// hot loop pops millions of these per simulated second, so they must be
// trivially copyable and allocation-free. The fabric layer defines how the
// payload words are packed for each kind.
//
#include <cstdint>

#include "util/types.hpp"

namespace ibadapt {

enum class EventKind : std::uint8_t {
  kNone = 0,
  /// A packet's header reaches a switch input port. a=switch, b=port|vl, c=pkt.
  kHeaderArrive,
  /// Run the arbitration pass of a switch. a=switch.
  kArbitrate,
  /// Credit update arrives at a switch output port. a=switch, b=port|vl, c=credits.
  kCreditToSwitch,
  /// Credit update arrives at a node CA. a=node, b=vl, c=credits.
  kCreditToNode,
  /// A node CA may try to start transmitting the queued packet. a=node.
  kNodeTryTx,
  /// A node generates its next packet (open-loop traffic). a=node.
  kNodeGenerate,
  /// A packet's tail fully arrives at its destination node. a=node, c=pkt.
  kNodeDeliver,
  /// Periodic progress / deadlock watchdog tick.
  kWatchdog,
  /// Periodic link-level credit-resync tick (IBA flow-control packets carry
  /// absolute totals, so leaked credits heal after a few sync periods).
  /// a=epoch.
  kCreditResync,
  /// Periodic runtime invariant check (src/check). a=epoch.
  kInvariantCheck,
};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-breaker: FIFO among simultaneous events
  EventKind kind = EventKind::kNone;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

/// Strict weak ordering: earliest time first, then insertion order.
struct EventLater {
  bool operator()(const Event& x, const Event& y) const noexcept {
    if (x.time != y.time) return x.time > y.time;
    return x.seq > y.seq;
  }
};

/// Helpers for packing (port, vl) into one payload word.
constexpr std::uint32_t packPortVl(PortIndex port, VlIndex vl) noexcept {
  return (static_cast<std::uint32_t>(port) << 8) |
         static_cast<std::uint32_t>(vl);
}
constexpr PortIndex unpackPort(std::uint32_t w) noexcept {
  return static_cast<PortIndex>(w >> 8);
}
constexpr VlIndex unpackVl(std::uint32_t w) noexcept {
  return static_cast<VlIndex>(w & 0xff);
}

}  // namespace ibadapt
