#pragma once
//
// Discrete-event queue with deterministic FIFO tie-breaking, in two
// implementations behind one interface:
//
//  * SimKernel::kCalendar (default) — an indexed bucket ("calendar") queue.
//    Integer-ns timestamps hash into fixed-width day buckets on a circular
//    wheel; pops advance a cursor over an occupancy bitmap instead of
//    sifting a heap, so push and pop are O(1) amortized for the near-future
//    events a fabric simulation generates. Events beyond the wheel horizon
//    wait in a small min-heap and migrate onto the wheel as it turns.
//
//  * SimKernel::kLegacyHeap — the seed's std::priority_queue binary heap,
//    kept verbatim as the bit-exact reference for old-vs-new equivalence
//    tests and for before/after perf baselines (bench/perf_baseline).
//
// SimKernel::kParallel shards the fabric across worker threads; each shard
// owns a private calendar queue (this class, calendar layout), so the queue
// itself has no third implementation.
//
// Both layouts realize the same strict weak order — earliest time first,
// then push sequence — for arbitrary push/pop interleavings (including
// pushes at or before the last popped timestamp), so a simulation's event
// trace is identical under either kernel.
//
#include <array>
#include <cstddef>
#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace ibadapt {

/// Which event-kernel implementation a simulation runs on. Selecting
/// kLegacyHeap also makes the Fabric use the seed's full-port arbitration
/// scans instead of the active-port/VL work lists, so the pair of modes
/// brackets the whole hot-path overhaul, not just the queue. kParallel is
/// the calendar kernel sharded across worker threads in conservative
/// lookahead epochs; it produces bit-identical results to kCalendar for any
/// thread count.
enum class SimKernel : std::uint8_t {
  kCalendar = 0,    // fast indexed bucket queue + arbitration work lists
  kLegacyHeap = 1,  // seed binary heap + full port scans (reference)
  kParallel = 2,    // sharded calendar queues, barrier-synchronized epochs
};

class EventQueue {
 public:
  /// Default day (bucket) width exponent: 128 ns days x 2048 buckets = a
  /// 262 us horizon. Fabric events are scheduled a few hundred ns out
  /// (routing delay, serialization, wire latency), so in practice only
  /// watchdog ticks and very light open-loop generation gaps overflow into
  /// the far heap.
  static constexpr int kDefaultDayShift = 7;
  static constexpr int kMinDayShift = 0;
  static constexpr int kMaxDayShift = 20;

  explicit EventQueue(SimKernel kind = SimKernel::kCalendar,
                      int dayShift = kDefaultDayShift);

  /// Pick a day width from the mean scheduling horizon (the typical gap
  /// between now and a pushed event's timestamp): a day about as wide as
  /// the horizon keeps each event's cohort in one or two buckets (O(1)
  /// pops) while the 2048-day wheel still spans thousands of horizons for
  /// stragglers. Any value in [kMinDayShift, kMaxDayShift] is *correct* —
  /// the bucket sort degrades gracefully — this only tunes constants.
  static int suggestDayShift(SimTime meanHorizonNs);

  /// Schedule `ev` at ev.time; the queue stamps the tie-break sequence.
  void push(Event ev);

  /// Schedule `ev` keeping the caller's seq stamp (canonical producer
  /// stamps, see sim/event.hpp). Stamps must be unique per queue or pop
  /// order among equal (time, seq) pairs is unspecified.
  void pushStamped(const Event& ev);

  /// Pop the earliest event. Precondition: !empty().
  Event pop();

  /// Earliest event without popping. Positions the wheel cursor, hence
  /// non-const. Precondition: !empty().
  const Event& top();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::uint64_t pushedTotal() const { return nextSeq_; }
  SimKernel kind() const { return kind_; }
  int dayShift() const { return dayShift_; }

  void clear();

 private:
  // --- wheel geometry ----------------------------------------------------
  static constexpr std::size_t kNumBuckets = 2048;  // power of two
  static constexpr std::size_t kIndexMask = kNumBuckets - 1;
  static constexpr std::size_t kBitmapWords = kNumBuckets / 64;

  // One wheel day. `head` indexes the first unpopped event; the vector is
  // kept sorted ascending by (time, seq) and cleared (capacity retained)
  // when drained, so steady-state operation allocates nothing.
  struct Bucket {
    std::vector<Event> events;
    std::size_t head = 0;
  };

  void insertWheel(const Event& ev);
  void migrateOverflow();
  /// Advance baseDay_ to the day of the earliest stored event and migrate
  /// any overflow events that the move pulled inside the horizon.
  void positionCursor();
  std::size_t findOccupiedFrom(std::size_t startIdx) const;

  void setBit(std::size_t idx) { bitmap_[idx >> 6] |= 1ULL << (idx & 63); }
  void clearBit(std::size_t idx) { bitmap_[idx >> 6] &= ~(1ULL << (idx & 63)); }

  SimKernel kind_;
  int dayShift_;
  std::uint64_t nextSeq_ = 0;
  std::size_t size_ = 0;

  // calendar state
  std::vector<Bucket> buckets_;
  std::array<std::uint64_t, kBitmapWords> bitmap_{};
  std::int64_t baseDay_ = 0;  // earliest day the wheel window covers
  std::size_t wheelCount_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> overflow_;

  // legacy-heap state
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
};

inline void EventQueue::pushStamped(const Event& ev) {
  ++size_;
  if (kind_ == SimKernel::kLegacyHeap) {
    heap_.push(ev);
    return;
  }
  const std::int64_t day = ev.time >> dayShift_;
  if (day < baseDay_ + static_cast<std::int64_t>(kNumBuckets)) {
    insertWheel(ev);
  } else {
    overflow_.push(ev);
  }
}

inline void EventQueue::push(Event ev) {
  ev.seq = nextSeq_++;
  pushStamped(ev);
}

inline Event EventQueue::pop() {
  --size_;
  if (kind_ == SimKernel::kLegacyHeap) {
    Event ev = heap_.top();
    heap_.pop();
    return ev;
  }
  positionCursor();
  const std::size_t idx = static_cast<std::size_t>(baseDay_) & kIndexMask;
  Bucket& b = buckets_[idx];
  const Event ev = b.events[b.head++];
  --wheelCount_;
  if (b.head == b.events.size()) {
    b.events.clear();
    b.head = 0;
    clearBit(idx);
  }
  return ev;
}

inline const Event& EventQueue::top() {
  if (kind_ == SimKernel::kLegacyHeap) return heap_.top();
  positionCursor();
  const Bucket& b = buckets_[static_cast<std::size_t>(baseDay_) & kIndexMask];
  return b.events[b.head];
}

inline void EventQueue::positionCursor() {
  if (wheelCount_ == 0) {
    // Everything lives beyond the horizon: jump the wheel to the earliest
    // far event and pull its cohort in.
    baseDay_ = overflow_.top().time >> dayShift_;
    migrateOverflow();
    return;
  }
  const std::size_t baseIdx = static_cast<std::size_t>(baseDay_) & kIndexMask;
  const std::size_t idx = findOccupiedFrom(baseIdx);
  const std::size_t delta = (idx - baseIdx) & kIndexMask;
  if (delta != 0) {
    baseDay_ += static_cast<std::int64_t>(delta);
    // Advancing the window may bring far events inside the horizon; they
    // are all later than the newly found day, so the cursor stays minimal.
    if (!overflow_.empty()) migrateOverflow();
  }
}

}  // namespace ibadapt
