#pragma once
//
// Discrete-event queue with deterministic FIFO tie-breaking, in two
// implementations behind one interface:
//
//  * SimKernel::kCalendar (default) — an indexed bucket ("calendar") queue.
//    Integer-ns timestamps hash into fixed-width day buckets on a circular
//    wheel; pops advance a cursor over an occupancy bitmap instead of
//    sifting a heap, so push and pop are O(1) amortized for the near-future
//    events a fabric simulation generates. Events beyond the wheel horizon
//    wait in a small min-heap and migrate onto the wheel as it turns.
//
//  * SimKernel::kLegacyHeap — the seed's std::priority_queue binary heap,
//    kept verbatim as the bit-exact reference for old-vs-new equivalence
//    tests and for before/after perf baselines (bench/perf_baseline).
//
// SimKernel::kParallel shards the fabric across worker threads; each shard
// owns a private calendar queue (this class, calendar layout), so the queue
// itself has no third implementation.
//
// Both layouts realize the same strict weak order — earliest time first,
// then push sequence — for arbitrary push/pop interleavings (including
// pushes at or before the last popped timestamp), so a simulation's event
// trace is identical under either kernel. The wheel geometry (day width,
// bucket count) tunes constants only: pop order is (time, seq) for every
// legal geometry, which is what lets the Fabric derive both knobs from
// fabric scale without perturbing bit-identity.
//
#include <cstddef>
#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace ibadapt {

/// Which event-kernel implementation a simulation runs on. Selecting
/// kLegacyHeap also makes the Fabric use the seed's full-port arbitration
/// scans instead of the active-port/VL work lists, so the pair of modes
/// brackets the whole hot-path overhaul, not just the queue. kParallel is
/// the calendar kernel sharded across worker threads in conservative
/// lookahead epochs; it produces bit-identical results to kCalendar for any
/// thread count.
enum class SimKernel : std::uint8_t {
  kCalendar = 0,    // fast indexed bucket queue + arbitration work lists
  kLegacyHeap = 1,  // seed binary heap + full port scans (reference)
  kParallel = 2,    // sharded calendar queues, barrier-synchronized epochs
};

class EventQueue {
 public:
  /// Default day (bucket) width exponent: 128 ns days x 2048 buckets = a
  /// 262 us horizon. Fabric events are scheduled a few hundred ns out
  /// (routing delay, serialization, wire latency), so in practice only
  /// watchdog ticks and very light open-loop generation gaps overflow into
  /// the far heap.
  static constexpr int kDefaultDayShift = 7;
  static constexpr int kMinDayShift = 0;
  static constexpr int kMaxDayShift = 20;

  /// Default wheel size exponent: 2^11 = 2048 day buckets. The wheel is a
  /// per-queue allocation (one Bucket + one bitmap bit per day), so small
  /// fixtures need not pay for a wheel sized for 1024-switch fabrics and
  /// vice versa; bucketShift makes it a runtime knob.
  static constexpr int kDefaultBucketShift = 11;
  /// >= 6 keeps the occupancy bitmap a whole number of 64-bit words (the
  /// cursor scan assumes a power-of-two word count).
  static constexpr int kMinBucketShift = 6;
  static constexpr int kMaxBucketShift = 16;

  explicit EventQueue(SimKernel kind = SimKernel::kCalendar,
                      int dayShift = kDefaultDayShift,
                      int bucketShift = kDefaultBucketShift);

  /// Pick a day width from the mean scheduling horizon (the typical gap
  /// between now and a pushed event's timestamp): a day about as wide as
  /// the horizon keeps each event's cohort in one or two buckets (O(1)
  /// pops) while the wheel still spans thousands of horizons for
  /// stragglers. Any value in [kMinDayShift, kMaxDayShift] is *correct* —
  /// the bucket sort degrades gracefully — this only tunes constants.
  static int suggestDayShift(SimTime meanHorizonNs);

  /// Density-aware variant: additionally caps the day width so a day holds
  /// only a handful of events when the fabric is dense (`eventsPerNs` =
  /// expected event arrivals per simulated ns on THIS queue). Wide days on
  /// a dense fabric turn each bucket into a large sorted insert; narrow
  /// days keep the per-bucket cohort near constant size, which is what
  /// makes pops O(1) at 1024 switches. Falls back to the horizon-only rule
  /// when the density is unknown (<= 0).
  static int suggestDayShift(SimTime meanHorizonNs, double eventsPerNs);

  /// Pick the wheel size from the expected live-event population: roughly
  /// one bucket per concurrently scheduled event, clamped to
  /// [kMinBucketShift, kMaxBucketShift]. Small fixtures get a small wheel;
  /// 1024-switch fabrics get one sized so bucket chains stay short.
  static int suggestBucketShift(std::size_t expectedLiveEvents);

  /// Schedule `ev` at ev.time; the queue stamps the tie-break sequence.
  void push(Event ev);

  /// Schedule `ev` keeping the caller's seq stamp (canonical producer
  /// stamps, see sim/event.hpp). Stamps must be unique per queue or pop
  /// order among equal (time, seq) pairs is unspecified.
  void pushStamped(const Event& ev);

  /// Batch pushStamped for a whole run of events (a drained mailbox edge):
  /// hoists the kernel-kind dispatch out of the per-event loop. Order and
  /// tie-breaking are identical to n individual pushStamped calls.
  void pushStampedBatch(const Event* evs, std::size_t n);

  /// Pop the earliest event. Precondition: !empty().
  Event pop();

  /// Pop the earliest event into `out` if one exists and is due strictly
  /// before `limit`; returns false otherwise. Equivalent to an empty() /
  /// top() / pop() sequence but positions the wheel cursor once — this is
  /// the windowed engine's per-event fast path.
  bool popBefore(SimTime limit, Event& out);

  /// Earliest event without popping. Positions the wheel cursor, hence
  /// non-const. Precondition: !empty().
  const Event& top();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::uint64_t pushedTotal() const { return nextSeq_; }
  SimKernel kind() const { return kind_; }
  int dayShift() const { return dayShift_; }
  int bucketShift() const { return bucketShift_; }
  std::size_t numBuckets() const { return numBuckets_; }

  void clear();

 private:
  // One wheel day. `head` indexes the first unpopped event; the vector is
  // kept sorted ascending by (time, seq) and cleared when drained. Typical
  // cohorts keep their capacity, so steady-state operation allocates
  // nothing; burst capacity beyond kRetainEvents is released on drain —
  // saturated big fabrics chain same-time cascades thousands of events deep
  // through the cursor day, and a wheel that kept every bucket at its
  // historic burst size would hold >100 MiB of dead capacity at 4096
  // switches (each day index eventually sees a burst as the wheel wraps).
  struct Bucket {
    std::vector<Event> events;
    std::size_t head = 0;
  };
  /// Drained buckets keep at most this capacity (32 B/event — 2 KiB): large
  /// enough that ordinary cohorts never reallocate, small enough that a
  /// 2^16-bucket wheel retains only a few MiB after bursts.
  static constexpr std::size_t kRetainEvents = 64;

  /// Drop a drained bucket's burst capacity back to kRetainEvents.
  static void releaseBurst(Bucket& b) {
    if (b.events.capacity() > kRetainEvents) {
      b.events.shrink_to_fit();
      b.events.reserve(kRetainEvents);
    }
  }

  void insertWheel(const Event& ev);
  void migrateOverflow();
  /// Advance baseDay_ to the day of the earliest stored event and migrate
  /// any overflow events that the move pulled inside the horizon.
  void positionCursor();
  std::size_t findOccupiedFrom(std::size_t startIdx) const;

  void setBit(std::size_t idx) { bitmap_[idx >> 6] |= 1ULL << (idx & 63); }
  void clearBit(std::size_t idx) { bitmap_[idx >> 6] &= ~(1ULL << (idx & 63)); }

  SimKernel kind_;
  int dayShift_;
  // --- wheel geometry (runtime; see suggestBucketShift) -------------------
  int bucketShift_;
  std::size_t numBuckets_;   // 1 << bucketShift_ (power of two)
  std::size_t indexMask_;    // numBuckets_ - 1
  std::size_t bitmapWords_;  // numBuckets_ / 64 (power of two)
  std::uint64_t nextSeq_ = 0;
  std::size_t size_ = 0;

  // calendar state
  std::vector<Bucket> buckets_;
  std::vector<std::uint64_t> bitmap_;
  std::int64_t baseDay_ = 0;  // earliest day the wheel window covers
  std::size_t wheelCount_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> overflow_;

  // legacy-heap state
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
};

inline void EventQueue::pushStamped(const Event& ev) {
  ++size_;
  if (kind_ == SimKernel::kLegacyHeap) {
    heap_.push(ev);
    return;
  }
  const std::int64_t day = ev.time >> dayShift_;
  if (day < baseDay_ + static_cast<std::int64_t>(numBuckets_)) {
    insertWheel(ev);
  } else {
    overflow_.push(ev);
  }
}

inline void EventQueue::push(Event ev) {
  ev.seq = nextSeq_++;
  pushStamped(ev);
}

inline void EventQueue::pushStampedBatch(const Event* evs, std::size_t n) {
  size_ += n;
  if (kind_ == SimKernel::kLegacyHeap) {
    for (std::size_t i = 0; i < n; ++i) heap_.push(evs[i]);
    return;
  }
  const std::int64_t horizonDay =
      baseDay_ + static_cast<std::int64_t>(numBuckets_);
  for (std::size_t i = 0; i < n; ++i) {
    const Event& ev = evs[i];
    if ((ev.time >> dayShift_) < horizonDay) {
      insertWheel(ev);
    } else {
      overflow_.push(ev);
    }
  }
}

inline Event EventQueue::pop() {
  --size_;
  if (kind_ == SimKernel::kLegacyHeap) {
    Event ev = heap_.top();
    heap_.pop();
    return ev;
  }
  positionCursor();
  const std::size_t idx = static_cast<std::size_t>(baseDay_) & indexMask_;
  Bucket& b = buckets_[idx];
  const Event ev = b.events[b.head++];
  --wheelCount_;
  if (b.head == b.events.size()) {
    b.events.clear();
    b.head = 0;
    releaseBurst(b);
    clearBit(idx);
  }
  return ev;
}

inline bool EventQueue::popBefore(SimTime limit, Event& out) {
  if (size_ == 0) return false;
  if (kind_ == SimKernel::kLegacyHeap) {
    const Event& ev = heap_.top();
    if (ev.time >= limit) return false;
    out = ev;
    heap_.pop();
    --size_;
    return true;
  }
  positionCursor();
  const std::size_t idx = static_cast<std::size_t>(baseDay_) & indexMask_;
  Bucket& b = buckets_[idx];
  const Event& ev = b.events[b.head];
  if (ev.time >= limit) return false;
  out = ev;
  ++b.head;
  --wheelCount_;
  --size_;
  if (b.head == b.events.size()) {
    b.events.clear();
    b.head = 0;
    releaseBurst(b);
    clearBit(idx);
  }
  return true;
}

inline const Event& EventQueue::top() {
  if (kind_ == SimKernel::kLegacyHeap) return heap_.top();
  positionCursor();
  const Bucket& b = buckets_[static_cast<std::size_t>(baseDay_) & indexMask_];
  return b.events[b.head];
}

inline void EventQueue::positionCursor() {
  if (wheelCount_ == 0) {
    // Everything lives beyond the horizon: jump the wheel to the earliest
    // far event and pull its cohort in.
    baseDay_ = overflow_.top().time >> dayShift_;
    migrateOverflow();
    return;
  }
  const std::size_t baseIdx = static_cast<std::size_t>(baseDay_) & indexMask_;
  const std::size_t idx = findOccupiedFrom(baseIdx);
  const std::size_t delta = (idx - baseIdx) & indexMask_;
  if (delta != 0) {
    baseDay_ += static_cast<std::int64_t>(delta);
    // Advancing the window may bring far events inside the horizon; they
    // are all later than the newly found day, so the cursor stays minimal.
    if (!overflow_.empty()) migrateOverflow();
  }
}

}  // namespace ibadapt
