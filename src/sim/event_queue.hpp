#pragma once
//
// Binary-heap event queue with deterministic FIFO tie-breaking.
//
#include <cstddef>
#include <queue>
#include <vector>

#include "sim/event.hpp"

namespace ibadapt {

class EventQueue {
 public:
  /// Schedule `ev` at ev.time; the queue stamps the tie-break sequence.
  void push(Event ev);

  /// Pop the earliest event. Precondition: !empty().
  Event pop();

  const Event& top() const { return heap_.top(); }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::uint64_t pushedTotal() const { return nextSeq_; }

  void clear();

 private:
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::uint64_t nextSeq_ = 0;
};

}  // namespace ibadapt
