#pragma once
//
// IBA link-layer wire format: the Local Route Header (LRH) that switches
// route on, the Base Transport Header (BTH), and whole-frame assembly with
// VCRC/ICRC. The simulator models packets symbolically for speed; this
// module provides the byte-exact encoding for trace export, interoperability
// tooling, and for tests proving the symbolic model and the wire format
// agree (the DLID a switch routes on is exactly the DLID on the wire).
//
// LRH (8 bytes, fields MSB-first as in the specification):
//   byte 0: VL[7:4] LVer[3:0]
//   byte 1: SL[7:4] rsvd[3:2] LNH[1:0]
//   bytes 2-3: DLID (big endian)
//   byte 4: rsvd[7:3] PktLen[10:8]
//   byte 5: PktLen[7:0]           (packet length in 4-byte words)
//   bytes 6-7: SLID (big endian)
//
// BTH (12 bytes):
//   byte 0: OpCode
//   byte 1: SE[7] M[6] PadCnt[5:4] TVer[3:0]
//   bytes 2-3: P_Key
//   byte 4: rsvd
//   bytes 5-7: DestQP
//   byte 8: A[7] rsvd[6:0]
//   bytes 9-11: PSN
//
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace ibadapt::iba {

inline constexpr int kLrhBytes = 8;
inline constexpr int kBthBytes = 12;

/// LNH: what follows the LRH.
enum class NextHeader : std::uint8_t {
  kRaw = 0,
  kIpv6 = 1,
  kBth = 2,       // IBA transport, no GRH
  kGrhThenBth = 3
};

struct Lrh {
  std::uint8_t vl = 0;       // 4 bits
  std::uint8_t lver = 0;     // 4 bits
  std::uint8_t sl = 0;       // 4 bits
  NextHeader lnh = NextHeader::kBth;
  std::uint16_t dlid = 0;
  std::uint16_t pktLenWords = 0;  // 11 bits, length in 4-byte words
  std::uint16_t slid = 0;

  friend bool operator==(const Lrh&, const Lrh&) = default;
};

struct Bth {
  std::uint8_t opCode = 0;
  bool solicitedEvent = false;
  bool migReq = false;
  std::uint8_t padCount = 0;  // 2 bits
  std::uint8_t tver = 0;      // 4 bits
  std::uint16_t pKey = 0xFFFF;
  std::uint32_t destQp = 0;  // 24 bits
  bool ackReq = false;
  std::uint32_t psn = 0;  // 24 bits

  friend bool operator==(const Bth&, const Bth&) = default;
};

std::array<std::uint8_t, kLrhBytes> encodeLrh(const Lrh& lrh);
/// Throws std::invalid_argument when reserved bits are set.
Lrh decodeLrh(std::span<const std::uint8_t> bytes);

std::array<std::uint8_t, kBthBytes> encodeBth(const Bth& bth);
Bth decodeBth(std::span<const std::uint8_t> bytes);

/// A complete local frame: LRH + BTH + payload + ICRC(4) + VCRC(2).
/// Payload must be 4-byte aligned (use padCount for the tail). pktLenWords
/// is filled in automatically.
std::vector<std::uint8_t> buildFrame(Lrh lrh, const Bth& bth,
                                     std::span<const std::uint8_t> payload);

struct ParsedFrame {
  Lrh lrh;
  Bth bth;
  std::vector<std::uint8_t> payload;
  bool icrcOk = false;
  bool vcrcOk = false;
};

/// Parses and checks both CRCs. Throws std::invalid_argument on frames too
/// short to contain the fixed headers and CRCs.
ParsedFrame parseFrame(std::span<const std::uint8_t> frame);

}  // namespace ibadapt::iba
