#include "iba/crc.hpp"

#include <array>

namespace ibadapt::iba {

namespace {

constexpr std::array<std::uint16_t, 256> makeCrc16Table() {
  std::array<std::uint16_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> makeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;  // reflected
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc16Table = makeCrc16Table();
constexpr auto kCrc32Table = makeCrc32Table();

}  // namespace

std::uint16_t crc16(std::span<const std::uint8_t> data, std::uint16_t init) {
  std::uint16_t crc = init;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>(
        (crc << 8) ^ kCrc16Table[static_cast<std::size_t>((crc >> 8) ^ byte)]);
  }
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ibadapt::iba
