#include "iba/headers.hpp"

#include <stdexcept>

#include "iba/crc.hpp"

namespace ibadapt::iba {

namespace {

void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

void put24(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  p[2] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint32_t get24(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 16) |
         (static_cast<std::uint32_t>(p[1]) << 8) | p[2];
}

}  // namespace

std::array<std::uint8_t, kLrhBytes> encodeLrh(const Lrh& lrh) {
  if (lrh.vl > 0xF || lrh.lver > 0xF || lrh.sl > 0xF ||
      lrh.pktLenWords > 0x7FF) {
    throw std::invalid_argument("encodeLrh: field out of range");
  }
  std::array<std::uint8_t, kLrhBytes> out{};
  out[0] = static_cast<std::uint8_t>((lrh.vl << 4) | lrh.lver);
  out[1] = static_cast<std::uint8_t>((lrh.sl << 4) |
                                     static_cast<std::uint8_t>(lrh.lnh));
  put16(&out[2], lrh.dlid);
  out[4] = static_cast<std::uint8_t>((lrh.pktLenWords >> 8) & 0x07);
  out[5] = static_cast<std::uint8_t>(lrh.pktLenWords & 0xFF);
  put16(&out[6], lrh.slid);
  return out;
}

Lrh decodeLrh(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kLrhBytes) {
    throw std::invalid_argument("decodeLrh: short buffer");
  }
  if ((bytes[1] & 0x0C) != 0 || (bytes[4] & 0xF8) != 0) {
    throw std::invalid_argument("decodeLrh: reserved bits set");
  }
  Lrh lrh;
  lrh.vl = bytes[0] >> 4;
  lrh.lver = bytes[0] & 0x0F;
  lrh.sl = bytes[1] >> 4;
  lrh.lnh = static_cast<NextHeader>(bytes[1] & 0x03);
  lrh.dlid = get16(&bytes[2]);
  lrh.pktLenWords =
      static_cast<std::uint16_t>(((bytes[4] & 0x07) << 8) | bytes[5]);
  lrh.slid = get16(&bytes[6]);
  return lrh;
}

std::array<std::uint8_t, kBthBytes> encodeBth(const Bth& bth) {
  if (bth.padCount > 3 || bth.tver > 0xF || bth.destQp > 0xFFFFFF ||
      bth.psn > 0xFFFFFF) {
    throw std::invalid_argument("encodeBth: field out of range");
  }
  std::array<std::uint8_t, kBthBytes> out{};
  out[0] = bth.opCode;
  out[1] = static_cast<std::uint8_t>((bth.solicitedEvent ? 0x80 : 0) |
                                     (bth.migReq ? 0x40 : 0) |
                                     (bth.padCount << 4) | bth.tver);
  put16(&out[2], bth.pKey);
  out[4] = 0;
  put24(&out[5], bth.destQp);
  out[8] = static_cast<std::uint8_t>(bth.ackReq ? 0x80 : 0);
  put24(&out[9], bth.psn);
  return out;
}

Bth decodeBth(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kBthBytes) {
    throw std::invalid_argument("decodeBth: short buffer");
  }
  Bth bth;
  bth.opCode = bytes[0];
  bth.solicitedEvent = (bytes[1] & 0x80) != 0;
  bth.migReq = (bytes[1] & 0x40) != 0;
  bth.padCount = (bytes[1] >> 4) & 0x03;
  bth.tver = bytes[1] & 0x0F;
  bth.pKey = get16(&bytes[2]);
  bth.destQp = get24(&bytes[5]);
  bth.ackReq = (bytes[8] & 0x80) != 0;
  bth.psn = get24(&bytes[9]);
  return bth;
}

std::vector<std::uint8_t> buildFrame(Lrh lrh, const Bth& bth,
                                     std::span<const std::uint8_t> payload) {
  if (payload.size() % 4 != 0) {
    throw std::invalid_argument("buildFrame: payload must be word aligned");
  }
  const std::size_t total =
      kLrhBytes + kBthBytes + payload.size() + 4 /*ICRC*/ + 2 /*VCRC*/;
  if (total % 4 != 2) {
    // LRH(8)+BTH(12)+payload(4k)+ICRC(4) is word aligned; VCRC adds 2.
    throw std::logic_error("buildFrame: alignment bug");
  }
  lrh.pktLenWords = static_cast<std::uint16_t>((total - 2) / 4);
  lrh.lnh = NextHeader::kBth;

  std::vector<std::uint8_t> frame;
  frame.reserve(total);
  const auto lrhBytes = encodeLrh(lrh);
  frame.insert(frame.end(), lrhBytes.begin(), lrhBytes.end());
  const auto bthBytes = encodeBth(bth);
  frame.insert(frame.end(), bthBytes.begin(), bthBytes.end());
  frame.insert(frame.end(), payload.begin(), payload.end());

  // ICRC over the transport-invariant region. (Simplification: the spec
  // masks a handful of mutable LRH/BTH bits; we cover BTH + payload, which
  // preserves the property the tests need — invariance across hops.)
  const std::uint32_t icrc = crc32(
      std::span<const std::uint8_t>(frame).subspan(kLrhBytes));
  frame.push_back(static_cast<std::uint8_t>(icrc >> 24));
  frame.push_back(static_cast<std::uint8_t>((icrc >> 16) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>((icrc >> 8) & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(icrc & 0xFF));

  // VCRC over everything so far (LRH .. ICRC), per link.
  const std::uint16_t vcrc = crc16(frame);
  frame.push_back(static_cast<std::uint8_t>(vcrc >> 8));
  frame.push_back(static_cast<std::uint8_t>(vcrc & 0xFF));
  return frame;
}

ParsedFrame parseFrame(std::span<const std::uint8_t> frame) {
  constexpr std::size_t kMin = kLrhBytes + kBthBytes + 4 + 2;
  if (frame.size() < kMin) {
    throw std::invalid_argument("parseFrame: frame too short");
  }
  ParsedFrame out;
  out.lrh = decodeLrh(frame);
  out.bth = decodeBth(frame.subspan(kLrhBytes));
  const std::size_t payloadLen = frame.size() - kMin;
  out.payload.assign(frame.begin() + kLrhBytes + kBthBytes,
                     frame.begin() + static_cast<std::ptrdiff_t>(
                                         kLrhBytes + kBthBytes + payloadLen));

  const std::size_t icrcPos = frame.size() - 6;
  const std::uint32_t icrcStored =
      (static_cast<std::uint32_t>(frame[icrcPos]) << 24) |
      (static_cast<std::uint32_t>(frame[icrcPos + 1]) << 16) |
      (static_cast<std::uint32_t>(frame[icrcPos + 2]) << 8) |
      frame[icrcPos + 3];
  out.icrcOk = icrcStored == crc32(frame.subspan(kLrhBytes,
                                                 kBthBytes + payloadLen));

  const std::size_t vcrcPos = frame.size() - 2;
  const std::uint16_t vcrcStored =
      static_cast<std::uint16_t>((frame[vcrcPos] << 8) | frame[vcrcPos + 1]);
  out.vcrcOk = vcrcStored == crc16(frame.first(vcrcPos));
  return out;
}

}  // namespace ibadapt::iba
