#pragma once
//
// CRCs used by the InfiniBand link layer:
//   * VCRC — variant CRC, 16 bits, CCITT polynomial x^16+x^12+x^5+1,
//     covering the whole packet, recomputed per link;
//   * ICRC — invariant CRC, 32 bits, IEEE 802.3 polynomial, covering the
//     fields that do not change in flight.
// Table-driven implementations; check values validated against the
// standard "123456789" test vectors in the unit tests.
//
#include <cstdint>
#include <span>

namespace ibadapt::iba {

/// CRC-16/XMODEM (CCITT polynomial 0x1021, init 0, MSB-first) — the
/// polynomial IBA specifies for the VCRC.
std::uint16_t crc16(std::span<const std::uint8_t> data,
                    std::uint16_t init = 0);

/// CRC-32 (IEEE 802.3, reflected, init 0xFFFFFFFF, final xor 0xFFFFFFFF) —
/// the polynomial IBA specifies for the ICRC.
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace ibadapt::iba
