//
// Event loop, traffic bootstrap, and all non-arbitration event handlers.
//
#include <stdexcept>

#include "fabric/fabric.hpp"

namespace ibadapt {

void Fabric::start() {
  if (started_) throw std::logic_error("Fabric::start called twice");
  if (traffic_ == nullptr) throw std::logic_error("Fabric: no traffic source");
  started_ = true;

  if (traffic_->saturationMode()) {
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
      refillSaturationQueue(n);
      scheduleNodeTryTx(n, 0);
    }
  } else {
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
      const SimTime t = traffic_->firstGenTime(n, trafficRng_);
      if (t != kTimeNever) {
        queue_.push(Event{t, 0, EventKind::kNodeGenerate,
                          static_cast<std::uint32_t>(n), 0, 0});
      }
    }
  }
}

void Fabric::run(const RunLimits& limits) {
  if (!started_) throw std::logic_error("Fabric::run before start");
  generationEnd_ = limits.generationEndTime >= 0 ? limits.generationEndTime
                                                 : limits.endTime;
  // Re-arm generation chains parked past an earlier, shorter run.
  for (NodeId n = 0; n < topo_.numNodes(); ++n) {
    NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pendingGenTime != kTimeNever &&
        nd.pendingGenTime <= generationEnd_) {
      queue_.push(Event{nd.pendingGenTime, 0, EventKind::kNodeGenerate,
                        static_cast<std::uint32_t>(n), 0, 0});
      nd.pendingGenTime = kTimeNever;
    }
  }
  watchdogPeriod_ = limits.watchdogPeriodNs;
  watchdogStallLimit_ = limits.watchdogStallLimit;
  watchdogLastDelivered_ =
      counters_.delivered + counters_.dropped + counters_.crcDropped;
  watchdogStallCount_ = 0;
  // A fresh epoch orphans watchdog chains queued by earlier run() calls
  // (multi-phase runs would otherwise stack one chain per phase and count
  // stalls several times per period).
  ++watchdogEpoch_;
  if (watchdogPeriod_ > 0) {
    queue_.push(Event{now_ + watchdogPeriod_, 0, EventKind::kWatchdog,
                      watchdogEpoch_, 0, 0});
  }
  // Credit-resync and invariant-check chains follow the same epoch scheme.
  ++resyncEpoch_;
  resyncPeriod_ = linkFaults_ != nullptr ? linkFaults_->resyncPeriodNs() : 0;
  if (resyncPeriod_ > 0) {
    queue_.push(Event{now_ + resyncPeriod_, 0, EventKind::kCreditResync,
                      resyncEpoch_, 0, 0});
  }
  ++checkEpoch_;
  if (checker_ != nullptr && checkPeriod_ > 0) {
    queue_.push(Event{now_ + checkPeriod_, 0, EventKind::kInvariantCheck,
                      checkEpoch_, 0, 0});
  }

  while (!queue_.empty() && !stopRequested_) {
    if (queue_.top().time > limits.endTime) break;
    const Event ev = queue_.pop();
    now_ = ev.time;
    if (++counters_.events > limits.maxEvents) break;
    if (pool_.liveCount() > limits.maxLivePackets) {
      livePacketLimitHit_ = true;
      break;
    }
    dispatch(ev);
  }
}

void Fabric::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kHeaderArrive:
      handleHeaderArrive(static_cast<SwitchId>(ev.a), unpackPort(ev.b),
                         unpackVl(ev.b), ev.c);
      break;
    case EventKind::kArbitrate:
      arbitrate(static_cast<SwitchId>(ev.a));
      break;
    case EventKind::kCreditToSwitch:
      handleCreditToSwitch(static_cast<SwitchId>(ev.a), unpackPort(ev.b),
                           unpackVl(ev.b), static_cast<int>(ev.c));
      break;
    case EventKind::kCreditToNode:
      handleCreditToNode(static_cast<NodeId>(ev.a),
                         static_cast<VlIndex>(ev.b), static_cast<int>(ev.c));
      break;
    case EventKind::kNodeTryTx:
      handleNodeTryTx(static_cast<NodeId>(ev.a));
      break;
    case EventKind::kNodeGenerate:
      handleNodeGenerate(static_cast<NodeId>(ev.a));
      break;
    case EventKind::kNodeDeliver:
      handleNodeDeliver(static_cast<NodeId>(ev.a),
                        static_cast<VlIndex>(ev.b), ev.c);
      break;
    case EventKind::kWatchdog:
      handleWatchdog(ev.a);
      break;
    case EventKind::kCreditResync:
      handleCreditResync(ev.a);
      break;
    case EventKind::kInvariantCheck:
      handleInvariantCheck(ev.a);
      break;
    case EventKind::kNone:
      break;
  }
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

PacketRef Fabric::generatePacket(NodeId src) {
  const ITrafficSource::Spec spec = traffic_->makePacket(src, trafficRng_);
  if (spec.dst == kInvalidId) return kInvalidPacketRef;  // idle wake
  const PacketRef ref = pool_.alloc();
  Packet& pkt = pool_.get(ref);
  pkt.src = src;
  pkt.dst = spec.dst;
  pkt.sizeBytes = spec.sizeBytes;
  pkt.credits = creditsForBytes(spec.sizeBytes);
  pkt.sl = spec.sl;
  pkt.msgId = spec.msgId;
  pkt.segIndex = spec.segIndex;
  pkt.segCount = spec.segCount;
  pkt.e2eSeq = spec.e2eSeq;
  if (spec.pathOffset >= 0) {
    if (spec.pathOffset >= lids_.lidsPerNode()) {
      throw std::invalid_argument("Fabric: pathOffset beyond LID block");
    }
    // Source-multipath: the sender pins a specific address plane. Ordering
    // across planes is not guaranteed, so such packets count as adaptive
    // unless the source says otherwise.
    pkt.adaptive = spec.adaptive;
    pkt.dlid = lids_.lidForOption(spec.dst, spec.pathOffset);
  } else {
    pkt.adaptive = spec.adaptive && params_.lmc >= 1;
    pkt.dlid = pkt.adaptive ? lids_.adaptiveLid(spec.dst)
                            : lids_.deterministicLid(spec.dst);
  }
  pkt.genTime = now_;
  if (!pkt.adaptive) {
    auto& ctr = detSeqCounters_[static_cast<std::size_t>(src) *
                                    topo_.numNodes() +
                                static_cast<std::size_t>(spec.dst)];
    pkt.detSeq = ++ctr;
  }
  ++counters_.generated;
  if (observer_ != nullptr) observer_->onGenerated(pkt, now_);
  nodes_[static_cast<std::size_t>(src)].sendQueue.push_back(ref);
  return ref;
}

void Fabric::refillSaturationQueue(NodeId n) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  const int cap = traffic_->saturationQueueCap();
  while (static_cast<int>(nd.sendQueue.size()) < cap) {
    if (generatePacket(n) == kInvalidPacketRef) break;  // source declined
  }
}

void Fabric::handleNodeGenerate(NodeId n) {
  generatePacket(n);
  tryNodeTx(n);
  const SimTime next = traffic_->nextGenTime(n, now_, trafficRng_);
  if (next == kTimeNever) return;
  if (next <= generationEnd_) {
    queue_.push(Event{next, 0, EventKind::kNodeGenerate,
                      static_cast<std::uint32_t>(n), 0, 0});
  } else {
    // Beyond this run's horizon: park it; a later run() re-arms it.
    nodes_[static_cast<std::size_t>(n)].pendingGenTime = next;
  }
}

void Fabric::scheduleNodeTryTx(NodeId n, SimTime when) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  if (nd.lastTryTxScheduled == when) return;
  nd.lastTryTxScheduled = when;
  queue_.push(Event{when, 0, EventKind::kNodeTryTx,
                    static_cast<std::uint32_t>(n), 0, 0});
}

void Fabric::handleNodeTryTx(NodeId n) {
  tryNodeTx(n);
}

void Fabric::tryNodeTx(NodeId n) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  if (nd.sendQueue.empty() || nd.txBusyUntil > now_) return;
  const PacketRef ref = nd.sendQueue.front();
  Packet& pkt = pool_.get(ref);
  const VlIndex vl = static_cast<VlIndex>(pkt.sl % params_.numVls);
  if (nd.txCredits[static_cast<std::size_t>(vl)] < pkt.credits) return;

  nd.txCredits[static_cast<std::size_t>(vl)] -= pkt.credits;
  nd.wireCredits[static_cast<std::size_t>(vl)] += pkt.credits;
  const SimTime txEnd = now_ + static_cast<SimTime>(pkt.sizeBytes) *
                                   params_.nsPerByte;
  nd.txBusyUntil = txEnd;
  nd.sendQueue.pop_front();
  pkt.injectTime = now_;
  ++counters_.injected;
  if (observer_ != nullptr) observer_->onInjected(pkt, now_);

  const SwitchId sw = topo_.switchOfNode(n);
  const PortIndex port = topo_.portOfNode(n);
  queue_.push(Event{now_ + params_.linkPropagationNs, 0,
                    EventKind::kHeaderArrive, static_cast<std::uint32_t>(sw),
                    packPortVl(port, vl), ref});

  if (traffic_->saturationMode()) refillSaturationQueue(n);
  scheduleNodeTryTx(n, txEnd);
}

// ---------------------------------------------------------------------------
// Switch-side handlers
// ---------------------------------------------------------------------------

void Fabric::handleHeaderArrive(SwitchId swId, PortIndex port, VlIndex vl,
                                PacketRef ref) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  SwitchInputPort& in = sw.in[static_cast<std::size_t>(port)];
  const Packet& pkt = pool_.get(ref);

  // The packet is off the upstream wire and in this buffer now.
  if (in.upKind == PeerKind::kNode) {
    nodes_[static_cast<std::size_t>(in.upId)]
        .wireCredits[static_cast<std::size_t>(vl)] -= pkt.credits;
  } else {
    switches_[static_cast<std::size_t>(in.upId)]
        .out[static_cast<std::size_t>(in.upPort)]
        .wireCredits[static_cast<std::size_t>(vl)] -= pkt.credits;
  }

  // Transient bit errors on the hop just completed: a corruption the
  // VCRC/ICRC catches makes the receiver drop the frame silently — the
  // buffer space frees once the (garbled) tail has fully arrived, exactly
  // like a routing drop, and end-to-end retransmission recovers the loss.
  if (linkFaults_ != nullptr) {
    const auto verdict = linkFaults_->onPacketRx(pkt, vl, now_);
    if (verdict == ILinkFaultModel::RxVerdict::kCrcDrop) {
      ++counters_.crcDropped;
      const SimTime creditTime =
          now_ + static_cast<SimTime>(pkt.sizeBytes) * params_.nsPerByte +
          params_.linkPropagationNs;
      returnCreditUpstream(in, vl, pkt.credits, creditTime);
      pool_.release(ref);
      return;
    }
    // kSilentCorrupt frames sail through — the model counts them; the
    // simulator's symbolic payload is unaffected.
  }

  // Table access happens on header arrival, before the packet reaches the
  // head of the buffer; the options travel with the packet (paper §4.3).
  BufferedPacket bp;
  bp.packet = ref;
  bp.credits = pkt.credits;
  bp.routeReady = now_ + params_.routingDelayNs;
  bp.deterministic = !LidMapper::adaptiveBit(pkt.dlid);
  bp.options = sw.lft.lookup(pkt.dlid);
  if (!bp.options.valid()) {
    throw std::logic_error("Fabric: packet routed to unprogrammed LID");
  }
  if (params_.selectionTiming == SelectionTiming::kAtRouting &&
      bp.options.adaptiveRequested && sw.adaptiveCapable &&
      bp.options.numAdaptive > 0) {
    bp.committedPort = commitPortAtRouting(sw, port, bp.options, pkt);
  }
  in.vls[static_cast<std::size_t>(vl)].push(bp);
  ++in.buffered;
  in.vlOccupied |= 1u << vl;
  in.retryAt = 0;  // new candidate: failed-grant memo no longer holds
  scheduleArb(swId, bp.routeReady);
}

void Fabric::handleCreditToSwitch(SwitchId swId, PortIndex port, VlIndex vl,
                                  int credits) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  auto& op = sw.out[static_cast<std::size_t>(port)];
  op.pendingCredits[static_cast<std::size_t>(vl)] -= credits;
  // Flow-control corruption: a lost credit-update token leaks its credits
  // until the periodic resync notices the downstream total disagrees and
  // repairs the count (IBA flow-control packets carry absolute totals).
  if (linkFaults_ != nullptr && credits > 0) {
    const int stolen = linkFaults_->onCreditUpdateRx(credits, now_);
    if (stolen > 0) {
      op.lostCredits[static_cast<std::size_t>(vl)] += stolen;
      creditsLeaked_ += static_cast<std::uint64_t>(stolen);
      leakLedger_.push_back(LeakRecord{swId, port, vl, stolen,
                                       now_ + linkFaults_->resyncDetectNs()});
      credits -= stolen;
      if (credits == 0) return;  // whole token lost: nothing to arbitrate on
    }
  }
  op.credits[static_cast<std::size_t>(vl)] += credits;
  if (op.credits[static_cast<std::size_t>(vl)] >
      op.creditsMax[static_cast<std::size_t>(vl)]) {
    throw std::logic_error("Fabric: credit overflow (protocol bug)");
  }
  // Wake only the inputs whose failed pass was blocked on this output's
  // credits; memos blocked elsewhere stay valid.
  const std::uint64_t bit = 1ull << (port & 63);
  for (auto& inp : sw.in) {
    if ((inp.blockPorts & bit) != 0) inp.retryAt = 0;
  }
  scheduleArb(swId, now_);
}

void Fabric::handleCreditToNode(NodeId n, VlIndex vl, int credits) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  nd.pendingCredits[static_cast<std::size_t>(vl)] -= credits;
  nd.txCredits[static_cast<std::size_t>(vl)] += credits;
  if (nd.txCredits[static_cast<std::size_t>(vl)] > params_.bufferCredits) {
    throw std::logic_error("Fabric: node credit overflow (protocol bug)");
  }
  tryNodeTx(n);
}

void Fabric::handleNodeDeliver(NodeId n, VlIndex vl, PacketRef ref) {
  Packet& pkt = pool_.get(ref);
  const SwitchId sw = topo_.switchOfNode(n);
  const PortIndex port = topo_.portOfNode(n);
  switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .wireCredits[static_cast<std::size_t>(vl)] -= pkt.credits;

  // Transient bit errors on the final switch-to-CA hop: a CRC-caught
  // corruption drops the frame at the CA; buffer credits still return.
  if (linkFaults_ != nullptr &&
      linkFaults_->onPacketRx(pkt, vl, now_) ==
          ILinkFaultModel::RxVerdict::kCrcDrop) {
    ++counters_.crcDropped;
    scheduleCreditToSwitch(sw, port, vl, pkt.credits,
                           now_ + params_.linkPropagationNs);
    pool_.release(ref);
    return;
  }

  ++counters_.delivered;
  counters_.deliveredBytes += static_cast<std::uint64_t>(pkt.sizeBytes);
  counters_.hopSum += pkt.hops;
  if (observer_ != nullptr) observer_->onDelivered(pkt, now_);

  // The CA consumed the packet: return credits to the switch output port
  // that feeds this node.
  scheduleCreditToSwitch(sw, port, vl, pkt.credits,
                         now_ + params_.linkPropagationNs);
  pool_.release(ref);
}

void Fabric::scheduleCreditToSwitch(SwitchId sw, PortIndex port, VlIndex vl,
                                    int credits, SimTime when) {
  switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .pendingCredits[static_cast<std::size_t>(vl)] += credits;
  queue_.push(Event{when, 0, EventKind::kCreditToSwitch,
                    static_cast<std::uint32_t>(sw), packPortVl(port, vl),
                    static_cast<std::uint32_t>(credits)});
}

void Fabric::scheduleCreditToNode(NodeId n, VlIndex vl, int credits,
                                  SimTime when) {
  nodes_[static_cast<std::size_t>(n)]
      .pendingCredits[static_cast<std::size_t>(vl)] += credits;
  queue_.push(Event{when, 0, EventKind::kCreditToNode,
                    static_cast<std::uint32_t>(n),
                    static_cast<std::uint32_t>(vl),
                    static_cast<std::uint32_t>(credits)});
}

void Fabric::returnCreditUpstream(const SwitchInputPort& in, VlIndex vl,
                                  int credits, SimTime when) {
  if (in.upKind == PeerKind::kNode) {
    scheduleCreditToNode(in.upId, vl, credits, when);
  } else {
    scheduleCreditToSwitch(in.upId, in.upPort, vl, credits, when);
  }
}

void Fabric::handleCreditResync(std::uint32_t epoch) {
  if (epoch != resyncEpoch_) return;  // stale chain from an earlier run()
  applyResyncs(false);
  queue_.push(Event{now_ + resyncPeriod_, 0, EventKind::kCreditResync, epoch,
                    0, 0});
}

void Fabric::handleInvariantCheck(std::uint32_t epoch) {
  if (epoch != checkEpoch_) return;  // stale chain from an earlier run()
  checker_->check(*this, now_);
  if (!stopRequested_) {
    queue_.push(Event{now_ + checkPeriod_, 0, EventKind::kInvariantCheck,
                      epoch, 0, 0});
  }
}

void Fabric::handleWatchdog(std::uint32_t epoch) {
  if (epoch != watchdogEpoch_) return;  // stale chain from an earlier run()
  // Drops count as progress and as retirement: a packet discarded at a
  // failed link or by a receiver CRC check is no longer in flight.
  const std::uint64_t retired =
      counters_.delivered + counters_.dropped + counters_.crcDropped;
  const bool inFlight = counters_.injected > retired;
  if (inFlight && retired == watchdogLastDelivered_) {
    if (++watchdogStallCount_ >= watchdogStallLimit_) {
      deadlockSuspected_ = true;
      stopRequested_ = true;
      return;
    }
  } else {
    watchdogStallCount_ = 0;
  }
  watchdogLastDelivered_ = retired;
  queue_.push(Event{now_ + watchdogPeriod_, 0, EventKind::kWatchdog, epoch, 0,
                    0});
}

}  // namespace ibadapt
