//
// Windowed event engine, traffic bootstrap, and all non-arbitration event
// handlers. See the architecture note at the top of fabric/fabric.hpp: every
// kernel runs the same conservative-lookahead window loop, the sequential
// kernels being the one-shard special case, so the sharded kernel is
// bit-identical by construction rather than by a separate code path.
//
#include <algorithm>
#include <stdexcept>
#include <thread>

#include "fabric/fabric.hpp"
#include "util/epoch_barrier.hpp"

namespace ibadapt {

// ---------------------------------------------------------------------------
// Event routing
// ---------------------------------------------------------------------------

void Fabric::pushFrom(Shard& sh, Event ev) {
  // Only the two link-crossing kinds ever come through here — everything
  // else targets the producing shard by construction (nodes ride with their
  // attached switch) and goes through pushLocal with no shard lookup at
  // all. Both crossing kinds target a switch, so one flat-array read
  // resolves the destination shard.
  ev.seq = nextStamp(sh.producer);
  const int target = shardOfSwitch(static_cast<SwitchId>(ev.a));
  if (target == sh.index) {
    sh.queue.pushStamped(ev);
    return;
  }
  // Foreign shard: links impose >= the cut's lookahead latency, so the
  // event is due strictly after the current window — the barrier drain gets
  // it into the target queue in time.
  if (ev.kind == EventKind::kHeaderArrive) {
    MailboxEntry e;
    e.ev = ev;
    e.pkt = packet(ev.c);
    e.hasPacket = true;
    releasePacket(ev.c);  // payload moves pools: source slot is free now
    sh.outbox[static_cast<std::size_t>(target)].push(e);
    return;
  }
  if (ev.kind == EventKind::kCreditToSwitch) {
    sh.outbox[static_cast<std::size_t>(target)].push(
        MailboxEntry{ev, Packet{}, false});
    return;
  }
  throw std::logic_error("Fabric: unexpected cross-shard event kind");
}

void Fabric::pushCoord(Event ev) {
  ev.seq = nextStamp(0);
  switch (ev.kind) {
    case EventKind::kWatchdog:
    case EventKind::kCreditResync:
    case EventKind::kInvariantCheck:
      coordQueue_.pushStamped(ev);
      return;
    case EventKind::kHeaderArrive:
    case EventKind::kArbitrate:
    case EventKind::kCreditToSwitch:
    case EventKind::kWireDebit:
      shards_[static_cast<std::size_t>(
                  shardOfSwitch(static_cast<SwitchId>(ev.a)))]
          .queue.pushStamped(ev);
      return;
    case EventKind::kCreditToNode:
    case EventKind::kNodeTryTx:
    case EventKind::kNodeGenerate:
    case EventKind::kNodeDeliver:
      shards_[static_cast<std::size_t>(shardOfNode(static_cast<NodeId>(ev.a)))]
          .queue.pushStamped(ev);
      return;
    default:
      return;
  }
}

// ---------------------------------------------------------------------------
// Bootstrap and run
// ---------------------------------------------------------------------------

void Fabric::start() {
  if (started_) throw std::logic_error("Fabric::start called twice");
  if (traffic_ == nullptr) throw std::logic_error("Fabric: no traffic source");
  started_ = true;

  // windowsActive_ is false here, so the observer callbacks fired by the
  // bootstrap (saturation pre-fills generate packets) run inline, in node
  // order, identically for every shard count.
  if (traffic_->saturationMode()) {
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
      Shard& sh = shards_[static_cast<std::size_t>(shardOfNode(n))];
      sh.producer = producerOfNode(n);
      refillSaturationQueue(sh, n);
      scheduleNodeTryTx(sh, n, 0);
    }
  } else {
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
      const SimTime t = traffic_->firstGenTime(
          n, nodeRngs_[static_cast<std::size_t>(n)]);
      if (t != kTimeNever) {
        Shard& sh = shards_[static_cast<std::size_t>(shardOfNode(n))];
        sh.producer = producerOfNode(n);
        pushLocal(sh, Event{t, 0, EventKind::kNodeGenerate,
                            static_cast<std::uint32_t>(n), 0, 0});
      }
    }
  }
}

void Fabric::run(const RunLimits& limits) {
  if (!started_) throw std::logic_error("Fabric::run before start");
  generationEnd_ = limits.generationEndTime >= 0 ? limits.generationEndTime
                                                 : limits.endTime;
  // Re-arm generation chains parked past an earlier, shorter run.
  for (NodeId n = 0; n < topo_.numNodes(); ++n) {
    NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
    if (nd.pendingGenTime != kTimeNever &&
        nd.pendingGenTime <= generationEnd_) {
      pushCoord(Event{nd.pendingGenTime, 0, EventKind::kNodeGenerate,
                      static_cast<std::uint32_t>(n), 0, 0});
      nd.pendingGenTime = kTimeNever;
    }
  }
  watchdogPeriod_ = limits.watchdogPeriodNs;
  watchdogStallLimit_ = limits.watchdogStallLimit;
  {
    const FabricCounters c = counters();
    watchdogLastDelivered_ = c.delivered + c.dropped + c.crcDropped;
  }
  watchdogStallCount_ = 0;
  // A fresh epoch orphans watchdog chains queued by earlier run() calls
  // (multi-phase runs would otherwise stack one chain per phase and count
  // stalls several times per period).
  ++watchdogEpoch_;
  if (watchdogPeriod_ > 0) {
    pushCoord(Event{now_ + watchdogPeriod_, 0, EventKind::kWatchdog,
                    watchdogEpoch_, 0, 0});
  }
  // Credit-resync and invariant-check chains: started once and left to
  // self-perpetuate across run() calls (see the member comment — slices
  // shorter than the period would otherwise starve them).
  resyncPeriod_ = linkFaults_ != nullptr ? linkFaults_->resyncPeriodNs() : 0;
  if (resyncPeriod_ > 0 && !resyncChainLive_) {
    ++resyncEpoch_;
    resyncChainLive_ = true;
    pushCoord(Event{now_ + resyncPeriod_, 0, EventKind::kCreditResync,
                    resyncEpoch_, 0, 0});
  }
  if (checker_ != nullptr && checkPeriod_ > 0 && !checkChainLive_) {
    ++checkEpoch_;
    checkChainLive_ = true;
    pushCoord(Event{now_ + checkPeriod_, 0, EventKind::kInvariantCheck,
                    checkEpoch_, 0, 0});
  }

  runWindows(limits);
}

SimTime Fabric::nextEventTime() {
  SimTime t = kTimeNever;
  for (Shard& sh : shards_) {
    if (!sh.queue.empty() && sh.queue.top().time < t) t = sh.queue.top().time;
  }
  if (!coordQueue_.empty() && coordQueue_.top().time < t) {
    t = coordQueue_.top().time;
  }
  return t;
}

bool Fabric::controlChecks(const RunLimits& limits) {
  std::uint64_t events = coordEvents_;
  for (const Shard& sh : shards_) events += sh.counters.events;
  if (events > limits.maxEvents) return false;
  if (livePackets() > limits.maxLivePackets) {
    livePacketLimitHit_ = true;
    return false;
  }
  return true;
}

bool Fabric::postWindow(const RunLimits& limits) {
  drainMailboxes();
  harvestLeaks();
  replayObservers();
  for (const Shard& sh : shards_) now_ = std::max(now_, sh.now);
  return controlChecks(limits);
}

void Fabric::runWindows(const RunLimits& limits) {
  const int numShards = static_cast<int>(shards_.size());

  // One loop body for both paths. Returns false when the run is over. The
  // window plan is free to differ across shard counts and partitions — the
  // per-shard lookahead bounds below depend on both — because everything
  // the results are built from is plan-independent: the processed event set
  // is bounded by simulated time (endTime or the stop horizon), coordinator
  // events dispatch at their exact timestamps, and observer replay at each
  // barrier recreates the inline call order.
  const auto planWindow = [&](SimTime& wEnd) -> bool {
    for (;;) {
      // A stop with no horizon (coordinator aborts, external requestStop)
      // keeps its immediate semantics; a horizon-armed stop instead runs
      // the event set out to the horizon below.
      const bool stopNow = stopRequested_ && stopHorizon_ == kTimeNever;
      if (stopNow) return false;
      const SimTime tNext = nextEventTime();
      if (tNext == kTimeNever || tNext > limits.endTime) return false;
      if (tNext > stopHorizon_) return false;
      if (!coordQueue_.empty() && coordQueue_.top().time == tNext) {
        // Global events dispatch between windows, with every shard quiesced
        // at exactly their timestamp (shards have processed everything
        // earlier; their next events are at or after tNext).
        now_ = tNext;
        while (!coordQueue_.empty() && coordQueue_.top().time == tNext &&
               !(stopRequested_ && stopHorizon_ == kTimeNever)) {
          dispatchCoord(coordQueue_.pop());
        }
        continue;  // the dispatch may have queued work anywhere: replan
      }
      // Per-shard-pair lookahead: shard j's earliest possible cross-shard
      // effect is its queue top plus the minimum link latency crossing its
      // boundary, so the window may extend to the earliest such bound over
      // the non-empty shards — capped by windowCapEff_ so a run with few
      // (or no) constraining shards still barriers often enough for the
      // stop horizon and any attached transport's ack hand-off.
      wEnd = tNext + windowCapEff_;
      for (Shard& sh : shards_) {
        if (sh.lookOutNs == kTimeNever || sh.queue.empty()) continue;
        const SimTime bound = sh.queue.top().time + sh.lookOutNs;
        if (bound < wEnd) wEnd = bound;
      }
      if (!coordQueue_.empty() && coordQueue_.top().time < wEnd) {
        wEnd = coordQueue_.top().time;
      }
      if (limits.endTime + 1 < wEnd) wEnd = limits.endTime + 1;
      if (stopHorizon_ != kTimeNever && stopHorizon_ + 1 < wEnd) {
        wEnd = stopHorizon_ + 1;
      }
      ++windowsExecuted_;
      return true;
    }
  };

  if (numShards == 1) {
    Shard& sh = shards_[0];
    SimTime wEnd = 0;
    while (planWindow(wEnd)) {
      processShardWindow(sh, wEnd);
      if (!postWindow(limits)) break;
    }
    return;
  }

  // Parallel path: spawn numShards-1 workers for this run. Spawning per
  // run() keeps the engine free of persistent thread state; runs are long
  // (millions of events) so the spawn cost is noise.
  EpochBarrier barrier(numShards);
  runDone_ = false;
  windowsActive_ = true;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(numShards - 1));
  for (int i = 1; i < numShards; ++i) {
    workers.emplace_back([this, i, &barrier] {
      Shard& sh = shards_[static_cast<std::size_t>(i)];
      for (;;) {
        barrier.arriveAndWait();  // A: window published (or shutdown)
        if (runDone_) return;
        try {
          processShardWindow(sh, windowEnd_);
        } catch (...) {
          sh.error = std::current_exception();
        }
        barrier.arriveAndWait();  // B: window complete
      }
    });
  }

  std::exception_ptr fatal;
  try {
    SimTime wEnd = 0;
    while (planWindow(wEnd)) {
      windowEnd_ = wEnd;
      barrier.arriveAndWait();  // A
      try {
        processShardWindow(shards_[0], wEnd);
      } catch (...) {
        shards_[0].error = std::current_exception();
      }
      barrier.arriveAndWait();  // B
      for (Shard& sh : shards_) {
        if (sh.error != nullptr && fatal == nullptr) fatal = sh.error;
        sh.error = nullptr;
      }
      if (fatal != nullptr) break;
      if (!postWindow(limits)) break;
    }
  } catch (...) {
    // Thrown between barriers (coordinator dispatch, observer replay):
    // the workers are parked at barrier A, so the shutdown below is safe.
    fatal = std::current_exception();
  }
  runDone_ = true;
  barrier.arriveAndWait();
  for (std::thread& w : workers) w.join();
  windowsActive_ = false;
  if (fatal != nullptr) std::rethrow_exception(fatal);
}

void Fabric::processShardWindow(Shard& sh, SimTime windowEnd) {
  EventQueue& q = sh.queue;
  Event ev;
  while (q.popBefore(windowEnd, ev)) {
    sh.now = ev.time;
    ++sh.counters.events;
    dispatchShard(sh, ev);
  }
}

void Fabric::dispatchShard(Shard& sh, const Event& ev) {
  // Producer context: stamps for pushes and the replay key for observer
  // callbacks made while handling this event.
  sh.evTime = ev.time;
  sh.evSeq = ev.seq;
  sh.subIdx = 0;
  switch (ev.kind) {
    case EventKind::kHeaderArrive:
      sh.producer = producerOfSwitch(static_cast<SwitchId>(ev.a));
      handleHeaderArrive(sh, static_cast<SwitchId>(ev.a), unpackPort(ev.b),
                         unpackVl(ev.b), ev.c);
      break;
    case EventKind::kArbitrate: {
      sh.producer = producerOfSwitch(static_cast<SwitchId>(ev.a));
      // Consume the duplicate-suppression memo: a *later* event at this
      // same instant (e.g. a credit arrival ordered after us) must be able
      // to re-arm arbitration — its wake would otherwise be swallowed and
      // the input could strand with credits in hand.
      SwitchModel& s = switches_[static_cast<std::size_t>(ev.a)];
      if (s.lastArbScheduled == ev.time) s.lastArbScheduled = -1;
      arbitrate(sh, static_cast<SwitchId>(ev.a));
      break;
    }
    case EventKind::kCreditToSwitch:
      sh.producer = producerOfSwitch(static_cast<SwitchId>(ev.a));
      handleCreditToSwitch(sh, static_cast<SwitchId>(ev.a), unpackPort(ev.b),
                           unpackVl(ev.b), static_cast<int>(ev.c));
      break;
    case EventKind::kWireDebit:
      sh.producer = producerOfSwitch(static_cast<SwitchId>(ev.a));
      handleWireDebit(static_cast<SwitchId>(ev.a), unpackPort(ev.b),
                      unpackVl(ev.b), static_cast<int>(ev.c));
      break;
    case EventKind::kCreditToNode:
      sh.producer = producerOfNode(static_cast<NodeId>(ev.a));
      handleCreditToNode(sh, static_cast<NodeId>(ev.a),
                         static_cast<VlIndex>(ev.b), static_cast<int>(ev.c));
      break;
    case EventKind::kNodeTryTx: {
      sh.producer = producerOfNode(static_cast<NodeId>(ev.a));
      // Memo consumed on dispatch, same as kArbitrate above.
      NodeModel& nd = nodes_[static_cast<std::size_t>(ev.a)];
      if (nd.lastTryTxScheduled == ev.time) nd.lastTryTxScheduled = -1;
      handleNodeTryTx(sh, static_cast<NodeId>(ev.a));
      break;
    }
    case EventKind::kNodeGenerate:
      sh.producer = producerOfNode(static_cast<NodeId>(ev.a));
      handleNodeGenerate(sh, static_cast<NodeId>(ev.a));
      break;
    case EventKind::kNodeDeliver:
      sh.producer = producerOfNode(static_cast<NodeId>(ev.a));
      handleNodeDeliver(sh, static_cast<NodeId>(ev.a),
                        static_cast<VlIndex>(ev.b), ev.c);
      break;
    default:
      break;  // global kinds never land in shard queues
  }
}

void Fabric::dispatchCoord(const Event& ev) {
  ++coordEvents_;
  switch (ev.kind) {
    case EventKind::kWatchdog:
      handleWatchdog(ev.a);
      break;
    case EventKind::kCreditResync:
      handleCreditResync(ev.a);
      break;
    case EventKind::kInvariantCheck:
      handleInvariantCheck(ev.a);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Window barrier work (coordinator only, workers parked)
// ---------------------------------------------------------------------------

void Fabric::drainMailboxes() {
  const int numShards = static_cast<int>(shards_.size());
  if (numShards == 1) return;
  for (int src = 0; src < numShards; ++src) {
    for (int dst = 0; dst < numShards; ++dst) {
      auto& mb = shards_[static_cast<std::size_t>(src)]
                     .outbox[static_cast<std::size_t>(dst)];
      if (mb.empty()) {
        // Still close the edge's epoch: the capacity-release policy needs
        // to see idle windows so a one-off burst (fault storm) doesn't pin
        // slab memory on an edge that went quiet.
        mb.endEpoch();
        continue;
      }
      crossShardMessages_ += static_cast<std::uint64_t>(mb.size());
      Shard& dsh = shards_[static_cast<std::size_t>(dst)];
      // Whole-edge batch: materialize the run of events first (packet
      // copies + deferred ledger writes), then push them into the target
      // queue in one call that hoists the queue's per-push kind dispatch.
      drainScratch_.clear();
      for (const MailboxEntry& e : mb.entries()) {
        Event ev = e.ev;
        if (e.hasPacket) {
          const PacketRef ref = allocPacket(dsh);
          packetMut(ref) = e.pkt;
          ev.c = ref;
        } else if (ev.kind == EventKind::kCreditToSwitch) {
          // The pending-credit ledger entry was deferred from push time so
          // only threads owning the receiving switch ever write its cells.
          switches_[ev.a]
              .out[static_cast<std::size_t>(unpackPort(ev.b))]
              .pendingCredits[static_cast<std::size_t>(unpackVl(ev.b))] +=
              static_cast<int>(ev.c);
        }
        drainScratch_.push_back(ev);
      }
      dsh.queue.pushStampedBatch(drainScratch_.data(), drainScratch_.size());
      mb.endEpoch();
    }
  }
}

void Fabric::replayObservers() {
  bool any = false;
  for (const Shard& sh : shards_) any = any || !sh.obs.empty();
  if (!any) return;
  // K-way merge on (event time, event stamp, call ordinal): each shard's
  // buffer is already sorted (events process in stamp order, ordinals count
  // up within an event), and the merged order is exactly the inline call
  // order of the one-shard engine — same callbacks, same order, same
  // floating-point accumulation in the stats layer.
  const auto before = [](const ObsRecord& x, const ObsRecord& y) {
    if (x.evTime != y.evTime) return x.evTime < y.evTime;
    if (x.evSeq != y.evSeq) return x.evSeq < y.evSeq;
    return x.subIdx < y.subIdx;
  };
  std::vector<std::size_t> pos(shards_.size(), 0);
  for (;;) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      const Shard& sh = shards_[static_cast<std::size_t>(i)];
      if (pos[static_cast<std::size_t>(i)] >= sh.obs.size()) continue;
      if (best < 0 ||
          before(sh.obs[pos[static_cast<std::size_t>(i)]],
                 shards_[static_cast<std::size_t>(best)]
                     .obs[pos[static_cast<std::size_t>(best)]])) {
        best = i;
      }
    }
    if (best < 0) break;
    const ObsRecord& r = shards_[static_cast<std::size_t>(best)]
                             .obs[pos[static_cast<std::size_t>(best)]++];
    // Observer context: a requestStop() from inside the callback anchors
    // its stop horizon to the event that triggered the callback.
    obsCtxTime_ = r.evTime;
    switch (r.type) {
      case ObsType::kGenerated:
        observer_->onGenerated(r.pkt, r.now);
        break;
      case ObsType::kInjected:
        observer_->onInjected(r.pkt, r.now);
        break;
      case ObsType::kDelivered:
        observer_->onDelivered(r.pkt, r.now);
        break;
    }
  }
  obsCtxTime_ = -1;
  for (Shard& sh : shards_) sh.obs.clear();
}

void Fabric::notifyObserver(Shard& sh, ObsType type, const Packet& pkt) {
  if (observer_ == nullptr) return;
  // One shard (or bootstrap before any window): the inline call IS the
  // global order. Buffering the bootstrap would lose the node iteration
  // order (its records all stamp time 0 / pre-event context).
  if (shards_.size() == 1 || !windowsActive_) {
    // Inline calls only ever run on the coordinator thread (one shard, or
    // the pre-window bootstrap), so publishing the observer context for a
    // possible requestStop() inside the callback is race-free.
    obsCtxTime_ = sh.now;
    switch (type) {
      case ObsType::kGenerated:
        observer_->onGenerated(pkt, sh.now);
        break;
      case ObsType::kInjected:
        observer_->onInjected(pkt, sh.now);
        break;
      case ObsType::kDelivered:
        observer_->onDelivered(pkt, sh.now);
        break;
    }
    obsCtxTime_ = -1;
    return;
  }
  sh.obs.push_back(
      ObsRecord{sh.evTime, sh.evSeq, sh.subIdx++, type, sh.now, pkt});
}

// ---------------------------------------------------------------------------
// Traffic
// ---------------------------------------------------------------------------

PacketRef Fabric::generatePacket(Shard& sh, NodeId src) {
  const ITrafficSource::Spec spec =
      traffic_->makePacket(src, nodeRngs_[static_cast<std::size_t>(src)]);
  if (spec.dst == kInvalidId) return kInvalidPacketRef;  // idle wake
  const PacketRef ref = allocPacket(sh);
  Packet& pkt = packetMut(ref);
  pkt.src = src;
  pkt.dst = spec.dst;
  pkt.sizeBytes = spec.sizeBytes;
  pkt.credits = creditsForBytes(spec.sizeBytes);
  pkt.sl = spec.sl;
  pkt.msgId = spec.msgId;
  pkt.segIndex = spec.segIndex;
  pkt.segCount = spec.segCount;
  pkt.e2eSeq = spec.e2eSeq;
  pkt.retransmit = spec.retransmit;
  pkt.e2eFirstSent = spec.e2eFirstSent;
  if (spec.pathOffset >= 0) {
    if (spec.pathOffset >= lids_.lidsPerNode()) {
      throw std::invalid_argument("Fabric: pathOffset beyond LID block");
    }
    // Source-multipath: the sender pins a specific address plane. Ordering
    // across planes is not guaranteed, so such packets count as adaptive
    // unless the source says otherwise.
    pkt.adaptive = spec.adaptive;
    pkt.dlid = lids_.lidForOption(spec.dst, spec.pathOffset);
  } else {
    pkt.adaptive = spec.adaptive && params_.lmc >= 1;
    pkt.dlid = pkt.adaptive ? lids_.adaptiveLid(spec.dst)
                            : lids_.deterministicLid(spec.dst);
  }
  pkt.genTime = sh.now;
  if (!pkt.adaptive) {
    pkt.detSeq = ++detSeqCounters_.at(src, spec.dst);
  }
  ++sh.counters.generated;
  notifyObserver(sh, ObsType::kGenerated, pkt);
  nodes_[static_cast<std::size_t>(src)].sendQueue.push_back(ref);
  return ref;
}

void Fabric::refillSaturationQueue(Shard& sh, NodeId n) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  const int cap = traffic_->saturationQueueCap();
  while (static_cast<int>(nd.sendQueue.size()) < cap) {
    if (generatePacket(sh, n) == kInvalidPacketRef) break;  // declined
  }
}

void Fabric::handleNodeGenerate(Shard& sh, NodeId n) {
  generatePacket(sh, n);
  tryNodeTx(sh, n);
  const SimTime next = traffic_->nextGenTime(
      n, sh.now, nodeRngs_[static_cast<std::size_t>(n)]);
  if (next == kTimeNever) return;
  if (next <= generationEnd_) {
    pushLocal(sh, Event{next, 0, EventKind::kNodeGenerate,
                        static_cast<std::uint32_t>(n), 0, 0});
  } else {
    // Beyond this run's horizon: park it; a later run() re-arms it.
    nodes_[static_cast<std::size_t>(n)].pendingGenTime = next;
  }
}

void Fabric::scheduleNodeTryTx(Shard& sh, NodeId n, SimTime when) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  if (nd.lastTryTxScheduled == when) return;
  nd.lastTryTxScheduled = when;
  pushLocal(sh, Event{when, 0, EventKind::kNodeTryTx,
                      static_cast<std::uint32_t>(n), 0, 0});
}

void Fabric::handleNodeTryTx(Shard& sh, NodeId n) { tryNodeTx(sh, n); }

void Fabric::tryNodeTx(Shard& sh, NodeId n) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  // Reconfiguration drain gate: generation and queueing continue, but no
  // new packet enters the fabric. setInjectionPaused(false) re-wakes every
  // queued CA. Read-only during windows (coordinator writes between them).
  if (injectionPaused_) return;
  if (nd.sendQueue.empty() || nd.txBusyUntil > sh.now) return;
  const PacketRef ref = nd.sendQueue.front();
  Packet& pkt = packetMut(ref);
  const VlIndex vl = static_cast<VlIndex>(pkt.sl % params_.numVls);
  if (nd.txCredits[static_cast<std::size_t>(vl)] < pkt.credits) return;

  nd.txCredits[static_cast<std::size_t>(vl)] -= pkt.credits;
  nd.wireCredits[static_cast<std::size_t>(vl)] += pkt.credits;
  const SimTime txEnd =
      sh.now + static_cast<SimTime>(pkt.sizeBytes) * params_.nsPerByte;
  nd.txBusyUntil = txEnd;
  nd.sendQueue.pop_front();
  pkt.injectTime = sh.now;
  // Injection-epoch stamp: the routing-table version this packet rides for
  // its whole life, plus the in-flight ledger the reconfiguration protocol
  // drains old epochs with.
  pkt.epoch = injectionEpoch_;
  ++sh.epochInjected[pkt.epoch & 1];
  ++sh.counters.injected;
  notifyObserver(sh, ObsType::kInjected, pkt);

  const SwitchId sw = topo_.switchOfNode(n);
  const PortIndex port = topo_.portOfNode(n);
  // The injecting CA's own switch: same shard by construction.
  pushLocal(sh, Event{sh.now + params_.linkPropagationNs, 0,
                      EventKind::kHeaderArrive, static_cast<std::uint32_t>(sw),
                      packPortVl(port, vl), ref});

  if (traffic_->saturationMode()) refillSaturationQueue(sh, n);
  scheduleNodeTryTx(sh, n, txEnd);
}

// ---------------------------------------------------------------------------
// Switch-side handlers
// ---------------------------------------------------------------------------

void Fabric::handleHeaderArrive(Shard& sh, SwitchId swId, PortIndex port,
                                VlIndex vl, PacketRef ref) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  SwitchInputPort& in = sw.in[static_cast<std::size_t>(port)];
  const Packet& pkt = packet(ref);

  // The packet is off the upstream wire and in this buffer now. A CA
  // upstream lives on this shard (nodes ride with their switch), so its
  // ledger is debited inline; a *switch* upstream may be on another shard —
  // it debits its own ledger via the kWireDebit event it scheduled for
  // itself when it granted (sim/event.hpp).
  if (in.upKind == PeerKind::kNode) {
    nodes_[static_cast<std::size_t>(in.upId)]
        .wireCredits[static_cast<std::size_t>(vl)] -= pkt.credits;
  }

  // Transient bit errors on the hop just completed: a corruption the
  // VCRC/ICRC catches makes the receiver drop the frame silently — the
  // buffer space frees once the (garbled) tail has fully arrived, exactly
  // like a routing drop, and end-to-end retransmission recovers the loss.
  if (linkFaults_ != nullptr) {
    const auto verdict =
        linkFaults_->onPacketRx(pkt, vl, sh.now, static_cast<int>(swId));
    if (verdict == ILinkFaultModel::RxVerdict::kCrcDrop) {
      ++sh.counters.crcDropped;
      ++sh.epochRetired[pkt.epoch & 1];
      const SimTime creditTime =
          sh.now + static_cast<SimTime>(pkt.sizeBytes) * params_.nsPerByte +
          params_.linkPropagationNs;
      returnCreditUpstream(sh, in, vl, pkt.credits, creditTime);
      releasePacket(ref);
      return;
    }
    // kSilentCorrupt frames sail through — the model counts them; the
    // simulator's symbolic payload is unaffected.
  }

  // Table access happens on header arrival, before the packet reaches the
  // head of the buffer; the options travel with the packet (paper §4.3).
  BufferedPacket bp;
  bp.packet = ref;
  bp.credits = pkt.credits;
  bp.routeReady = sh.now + params_.routingDelayNs;
  bp.deterministic = !LidMapper::adaptiveBit(pkt.dlid);
  // Dual-table selection: the packet's injection-epoch stamp picks the
  // table version, so a mid-reconfiguration packet keeps resolving the
  // tables it was injected under at every remaining hop.
  bp.options = sw.lft.lookup(pkt.dlid, pkt.epoch);
  if (!bp.options.valid()) {
    throw std::logic_error("Fabric: packet routed to unprogrammed LID");
  }
  if (params_.selectionTiming == SelectionTiming::kAtRouting &&
      bp.options.adaptiveRequested && sw.adaptiveCapable &&
      bp.options.numAdaptive > 0) {
    bp.committedPort = commitPortAtRouting(swId, port, bp.options, pkt);
  }
  in.vls[static_cast<std::size_t>(vl)].push(bp);
  ++in.buffered;
  in.vlOccupied |= 1u << vl;
  in.retryAt = 0;  // new candidate: failed-grant memo no longer holds
  scheduleArb(&sh, swId, bp.routeReady);
}

void Fabric::handleCreditToSwitch(Shard& sh, SwitchId swId, PortIndex port,
                                  VlIndex vl, int credits) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  auto& op = sw.out[static_cast<std::size_t>(port)];
  op.pendingCredits[static_cast<std::size_t>(vl)] -= credits;
  // Flow-control corruption: a lost credit-update token leaks its credits
  // until the periodic resync notices the downstream total disagrees and
  // repairs the count (IBA flow-control packets carry absolute totals).
  if (linkFaults_ != nullptr && credits > 0) {
    const int stolen =
        linkFaults_->onCreditUpdateRx(credits, sh.now, static_cast<int>(swId));
    if (stolen > 0) {
      op.lostCredits[static_cast<std::size_t>(vl)] += stolen;
      sh.creditsLeaked += static_cast<std::uint64_t>(stolen);
      sh.leaks.push_back(LeakRecord{swId, port, vl, stolen,
                                    sh.now + linkFaults_->resyncDetectNs(),
                                    sh.evTime, sh.evSeq});
      credits -= stolen;
      if (credits == 0) return;  // whole token lost: nothing to arbitrate on
    }
  }
  op.credits[static_cast<std::size_t>(vl)] += credits;
  if (op.credits[static_cast<std::size_t>(vl)] >
      op.creditsMax[static_cast<std::size_t>(vl)]) {
    throw std::logic_error("Fabric: credit overflow (protocol bug)");
  }
  if (params_.congestion.enabled) {
    // Hysteresis exit / stall-episode close. Runs on every credit arrival
    // (the only place credits grow on the event path), so repairs from the
    // resync watchdog self-heal at the next arrival too.
    congestionAfterCredit(sh, op, vl);
  }
  // Wake only the inputs whose failed pass was blocked on this output's
  // credits; memos blocked elsewhere stay valid.
  const std::uint64_t bit = 1ull << (port & 63);
  for (auto& inp : sw.in) {
    if ((inp.blockPorts & bit) != 0) inp.retryAt = 0;
  }
  scheduleArb(&sh, swId, sh.now);
}

void Fabric::handleWireDebit(SwitchId swId, PortIndex port, VlIndex vl,
                             int credits) {
  switches_[static_cast<std::size_t>(swId)]
      .out[static_cast<std::size_t>(port)]
      .wireCredits[static_cast<std::size_t>(vl)] -= credits;
}

void Fabric::handleCreditToNode(Shard& sh, NodeId n, VlIndex vl,
                                int credits) {
  NodeModel& nd = nodes_[static_cast<std::size_t>(n)];
  nd.pendingCredits[static_cast<std::size_t>(vl)] -= credits;
  nd.txCredits[static_cast<std::size_t>(vl)] += credits;
  if (nd.txCredits[static_cast<std::size_t>(vl)] > params_.bufferCredits) {
    throw std::logic_error("Fabric: node credit overflow (protocol bug)");
  }
  tryNodeTx(sh, n);
}

void Fabric::handleNodeDeliver(Shard& sh, NodeId n, VlIndex vl,
                               PacketRef ref) {
  Packet& pkt = packetMut(ref);
  const SwitchId sw = topo_.switchOfNode(n);
  const PortIndex port = topo_.portOfNode(n);
  // The feeding switch is this node's own switch: same shard, inline debit.
  switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .wireCredits[static_cast<std::size_t>(vl)] -= pkt.credits;

  // Transient bit errors on the final switch-to-CA hop: a CRC-caught
  // corruption drops the frame at the CA; buffer credits still return.
  if (linkFaults_ != nullptr &&
      linkFaults_->onPacketRx(pkt, vl, sh.now,
                              topo_.numSwitches() + static_cast<int>(n)) ==
          ILinkFaultModel::RxVerdict::kCrcDrop) {
    ++sh.counters.crcDropped;
    ++sh.epochRetired[pkt.epoch & 1];
    scheduleCreditToSwitch(sh, sw, port, vl, pkt.credits,
                           sh.now + params_.linkPropagationNs);
    releasePacket(ref);
    return;
  }

  ++sh.counters.delivered;
  ++sh.epochRetired[pkt.epoch & 1];
  sh.counters.deliveredBytes += static_cast<std::uint64_t>(pkt.sizeBytes);
  sh.counters.hopSum += pkt.hops;
  notifyObserver(sh, ObsType::kDelivered, pkt);

  // The CA consumed the packet: return credits to the switch output port
  // that feeds this node.
  scheduleCreditToSwitch(sh, sw, port, vl, pkt.credits,
                         sh.now + params_.linkPropagationNs);
  releasePacket(ref);
}

void Fabric::scheduleCreditToSwitch(Shard& sh, SwitchId sw, PortIndex port,
                                    VlIndex vl, int credits, SimTime when) {
  // Cross-shard: the ledger entry is deferred to the barrier drain so only
  // threads owning the receiving switch write its pending-credit cells.
  if (shardOfSwitch(sw) == sh.index) {
    switches_[static_cast<std::size_t>(sw)]
        .out[static_cast<std::size_t>(port)]
        .pendingCredits[static_cast<std::size_t>(vl)] += credits;
  }
  pushFrom(sh, Event{when, 0, EventKind::kCreditToSwitch,
                     static_cast<std::uint32_t>(sw), packPortVl(port, vl),
                     static_cast<std::uint32_t>(credits)});
}

void Fabric::scheduleCreditToNode(Shard& sh, NodeId n, VlIndex vl,
                                  int credits, SimTime when) {
  nodes_[static_cast<std::size_t>(n)]
      .pendingCredits[static_cast<std::size_t>(vl)] += credits;
  // Credits flow to a CA only from its own switch: same shard.
  pushLocal(sh, Event{when, 0, EventKind::kCreditToNode,
                      static_cast<std::uint32_t>(n),
                      static_cast<std::uint32_t>(vl),
                      static_cast<std::uint32_t>(credits)});
}

void Fabric::returnCreditUpstream(Shard& sh, const SwitchInputPort& in,
                                  VlIndex vl, int credits, SimTime when) {
  if (in.upKind == PeerKind::kNode) {
    scheduleCreditToNode(sh, in.upId, vl, credits, when);
  } else {
    scheduleCreditToSwitch(sh, in.upId, in.upPort, vl, credits, when);
  }
}

// ---------------------------------------------------------------------------
// Coordinator chains (dispatched between windows)
// ---------------------------------------------------------------------------

void Fabric::handleCreditResync(std::uint32_t epoch) {
  if (epoch != resyncEpoch_) return;  // stale chain from an earlier run()
  applyResyncs(false);
  pushCoord(Event{now_ + resyncPeriod_, 0, EventKind::kCreditResync, epoch,
                  0, 0});
}

void Fabric::handleInvariantCheck(std::uint32_t epoch) {
  if (epoch != checkEpoch_) return;  // stale chain from an earlier run()
  checker_->check(*this, now_);
  if (!stopRequested_) {
    pushCoord(Event{now_ + checkPeriod_, 0, EventKind::kInvariantCheck, epoch,
                    0, 0});
  } else {
    checkChainLive_ = false;  // a later run() starts a fresh chain
  }
}

void Fabric::handleWatchdog(std::uint32_t epoch) {
  if (epoch != watchdogEpoch_) return;  // stale chain from an earlier run()
  // Drops count as progress and as retirement: a packet discarded at a
  // failed link or by a receiver CRC check is no longer in flight.
  const FabricCounters c = counters();
  const std::uint64_t retired = c.delivered + c.dropped + c.crcDropped;
  const bool inFlight = c.injected > retired;
  if (inFlight && retired == watchdogLastDelivered_) {
    if (++watchdogStallCount_ >= watchdogStallLimit_) {
      deadlockSuspected_ = true;
      stopRequested_ = true;
      return;
    }
  } else {
    watchdogStallCount_ = 0;
  }
  watchdogLastDelivered_ = retired;
  pushCoord(Event{now_ + watchdogPeriod_, 0, EventKind::kWatchdog, epoch, 0,
                  0});
}

}  // namespace ibadapt
