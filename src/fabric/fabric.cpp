#include "fabric/fabric.hpp"

#include <stdexcept>

namespace ibadapt {

SwitchModel::SwitchModel(int numPorts, int numVls, int bufferCredits,
                         int escapeReserve, int numBanks, Lid lidLimit)
    : lft(numBanks, lidLimit), slToVl(numPorts, numVls) {
  in.reserve(static_cast<std::size_t>(numPorts));
  out.resize(static_cast<std::size_t>(numPorts));
  for (int p = 0; p < numPorts; ++p) {
    SwitchInputPort ip;
    ip.vls.reserve(static_cast<std::size_t>(numVls));
    for (int v = 0; v < numVls; ++v) {
      ip.vls.emplace_back(bufferCredits, escapeReserve);
    }
    in.push_back(std::move(ip));
  }
}

Fabric::Fabric(Topology topo, FabricParams params)
    : topo_(std::move(topo)), params_(params), lids_(params.lmc) {
  params_.validate();
  if (!params_.adaptiveSwitchMask.empty() &&
      static_cast<int>(params_.adaptiveSwitchMask.size()) != topo_.numSwitches()) {
    throw std::invalid_argument("Fabric: adaptiveSwitchMask size mismatch");
  }
  selectionRng_ = Rng(params_.selectionSeed);
  buildSwitches();
  buildNodes();
  detSeqCounters_.assign(
      static_cast<std::size_t>(topo_.numNodes()) * topo_.numNodes(), 0);
}

void Fabric::buildSwitches() {
  const int numPorts = topo_.portsPerSwitch();
  const Lid lidLimit = lids_.lidLimit(topo_.numNodes());
  switches_.reserve(static_cast<std::size_t>(topo_.numSwitches()));
  for (SwitchId s = 0; s < topo_.numSwitches(); ++s) {
    switches_.emplace_back(numPorts, params_.numVls, params_.bufferCredits,
                           params_.escapeReserveCredits, params_.numOptions,
                           lidLimit);
    SwitchModel& sw = switches_.back();
    sw.adaptiveCapable = params_.adaptiveSwitchMask.empty()
                             ? params_.adaptiveSwitches
                             : params_.adaptiveSwitchMask[static_cast<std::size_t>(s)];
    for (PortIndex p = 0; p < numPorts; ++p) {
      const Peer& peer = topo_.peer(s, p);
      auto& ip = sw.in[static_cast<std::size_t>(p)];
      auto& op = sw.out[static_cast<std::size_t>(p)];
      switch (peer.kind) {
        case PeerKind::kUnused:
          break;
        case PeerKind::kNode:
          ip.upKind = PeerKind::kNode;
          ip.upId = peer.id;
          op.downKind = PeerKind::kNode;
          op.downId = peer.id;
          op.credits.assign(static_cast<std::size_t>(params_.numVls),
                            params_.caRecvCredits);
          op.creditsMax = op.credits;
          break;
        case PeerKind::kSwitch:
          ip.upKind = PeerKind::kSwitch;
          ip.upId = peer.id;
          ip.upPort = peer.port;
          op.downKind = PeerKind::kSwitch;
          op.downId = peer.id;
          op.downPort = peer.port;
          op.credits.assign(static_cast<std::size_t>(params_.numVls),
                            params_.bufferCredits);
          op.creditsMax = op.credits;
          break;
      }
    }
  }
}

void Fabric::buildNodes() {
  nodes_.resize(static_cast<std::size_t>(topo_.numNodes()));
  for (auto& n : nodes_) {
    n.txCredits.assign(static_cast<std::size_t>(params_.numVls),
                       params_.bufferCredits);
  }
}

void Fabric::setLftEntry(SwitchId sw, Lid lid, PortIndex port) {
  switches_[static_cast<std::size_t>(sw)].lft.setEntry(lid, port);
}

PortIndex Fabric::lftEntry(SwitchId sw, Lid lid) const {
  return switches_[static_cast<std::size_t>(sw)].lft.entry(lid);
}

void Fabric::setSlToVl(SwitchId sw, PortIndex inPort, PortIndex outPort,
                       int sl, VlIndex vl) {
  switches_[static_cast<std::size_t>(sw)].slToVl.set(inPort, outPort, sl, vl);
}

const Peer& Fabric::managementPeer(SwitchId sw, PortIndex port) const {
  return topo_.peer(sw, port);
}

void Fabric::failLink(SwitchId sw, PortIndex port) {
  const Peer peer = topo_.peer(sw, port);
  if (peer.kind != PeerKind::kSwitch) {
    throw std::invalid_argument("Fabric::failLink: not an inter-switch link");
  }
  topo_.removeLink(sw, port);  // management plane now reports the fault
  // Stop new transfers in both directions; leave the input sides wired so
  // in-flight bits drain and credit updates still find their way back.
  switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .downKind = PeerKind::kUnused;
  switches_[static_cast<std::size_t>(peer.id)]
      .out[static_cast<std::size_t>(peer.port)]
      .downKind = PeerKind::kUnused;
  // Buffered packets whose only routes died must be discarded eventually;
  // arbitration handles that, so wake both switches.
  if (started_) {
    scheduleArb(sw, now_);
    scheduleArb(peer.id, now_);
  }
}

void Fabric::attachTraffic(ITrafficSource* traffic, std::uint64_t trafficSeed) {
  traffic_ = traffic;
  trafficRng_ = Rng(trafficSeed);
}

int Fabric::outputCredits(SwitchId sw, PortIndex port, VlIndex vl) const {
  return switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .credits[static_cast<std::size_t>(vl)];
}

std::uint64_t Fabric::outputBytesSent(SwitchId sw, PortIndex port) const {
  return switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .bytesSent;
}

int Fabric::inputBufferOccupancy(SwitchId sw, PortIndex port, VlIndex vl) const {
  return switches_[static_cast<std::size_t>(sw)]
      .in[static_cast<std::size_t>(port)]
      .vls[static_cast<std::size_t>(vl)]
      .occupiedCredits();
}

std::size_t Fabric::nodeQueueLength(NodeId n) const {
  return nodes_[static_cast<std::size_t>(n)].sendQueue.size();
}

}  // namespace ibadapt
