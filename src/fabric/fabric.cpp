#include "fabric/fabric.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibadapt {

SwitchModel::SwitchModel(int numPorts, int numVls, int bufferCredits,
                         int escapeReserve, int numBanks, Lid lidLimit)
    : lft(numBanks, lidLimit), slToVl(numPorts, numVls) {
  in.reserve(static_cast<std::size_t>(numPorts));
  out.resize(static_cast<std::size_t>(numPorts));
  for (int p = 0; p < numPorts; ++p) {
    SwitchInputPort ip;
    ip.vls.reserve(static_cast<std::size_t>(numVls));
    for (int v = 0; v < numVls; ++v) {
      ip.vls.emplace_back(bufferCredits, escapeReserve);
    }
    in.push_back(std::move(ip));
  }
}

Fabric::Fabric(Topology topo, FabricParams params)
    : topo_(std::move(topo)),
      params_(params),
      lids_(params.lmc),
      fastArb_(params.kernel != SimKernel::kLegacyHeap) {
  params_.validate();
  if (!params_.adaptiveSwitchMask.empty() &&
      static_cast<int>(params_.adaptiveSwitchMask.size()) != topo_.numSwitches()) {
    throw std::invalid_argument("Fabric: adaptiveSwitchMask size mismatch");
  }
  buildShards();
  buildSwitches();
  buildNodes();
  // Per-switch selection streams: seeds depend only on the configured seed
  // and the switch index, never on consult order, so kRandom selection is
  // identical for every kernel and thread count.
  switchRngs_.reserve(static_cast<std::size_t>(topo_.numSwitches()));
  std::uint64_t chain = params_.selectionSeed;
  for (SwitchId s = 0; s < topo_.numSwitches(); ++s) {
    switchRngs_.emplace_back(splitmix64(chain));
  }
  detSeqCounters_.reset(topo_.numNodes(), topo_.numNodes());
  stampCounters_.assign(
      1 + static_cast<std::size_t>(topo_.numSwitches()) +
          static_cast<std::size_t>(topo_.numNodes()),
      0);
}

void Fabric::buildShards() {
  const int numSwitches = topo_.numSwitches();
  int t = 1;
  if (params_.kernel == SimKernel::kParallel) {
    t = std::min({params_.threads, numSwitches, kMaxShards});
    if (t < 1) t = 1;
    // Zero wire latency leaves no conservative lookahead to shard on.
    if (params_.linkPropagationNs < 1) t = 1;
  }
  // Queue geometry from fabric scale. The scheduling horizon (routing delay
  // / wire latency) sets the widest useful day; the expected event density
  // — roughly one live event per entity, spread over the horizon and over
  // the shards — narrows the day on big fabrics and sizes the wheel so
  // bucket chains stay short at 1024 switches. Geometry only tunes
  // constants: pop order is (time, seq) regardless, so results stay
  // bit-identical across kernels and thread counts.
  const SimTime horizon = params_.routingDelayNs + params_.linkPropagationNs;
  const std::size_t entities = static_cast<std::size_t>(topo_.numNodes()) +
                               static_cast<std::size_t>(topo_.numSwitches());
  const std::size_t perShardEntities =
      entities / static_cast<std::size_t>(t) + 1;
  const double eventsPerNs =
      static_cast<double>(perShardEntities) /
      static_cast<double>(horizon > 0 ? horizon : SimTime{1});
  const int dayShift = EventQueue::suggestDayShift(horizon, eventsPerNs);
  const int bucketShift = EventQueue::suggestBucketShift(perShardEntities);
  const SimKernel queueKind = params_.kernel == SimKernel::kLegacyHeap
                                  ? SimKernel::kLegacyHeap
                                  : SimKernel::kCalendar;
  shards_.reserve(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) {
    shards_.emplace_back(i, queueKind, dayShift, bucketShift);
  }
  for (Shard& sh : shards_) {
    sh.outbox.resize(static_cast<std::size_t>(t));
    // Typical live-packet population: a few per node queue plus in-flight
    // buffers; the pool doubles beyond this without harm.
    sh.pool.reserve(
        static_cast<std::size_t>(topo_.numNodes()) * 8 / static_cast<std::size_t>(t) + 8);
  }
  // Switch->shard assignment from the configured partition strategy
  // (topology/partition.hpp). Bit-identity does not depend on the mapping;
  // only the cross-shard mailbox traffic does.
  shardOfSwitch_.resize(static_cast<std::size_t>(numSwitches));
  partitionTotalLinks_ = static_cast<std::uint64_t>(topo_.numLinks());
  if (t == 1) {
    std::fill(shardOfSwitch_.begin(), shardOfSwitch_.end(), 0);
    partitionCutLinks_ = 0;
    partitionImbalance_ = 1.0;
  } else {
    const PartitionResult part =
        partitionSwitches(topo_, t, params_.partition);
    for (SwitchId s = 0; s < numSwitches; ++s) {
      shardOfSwitch_[static_cast<std::size_t>(s)] =
          static_cast<int>(part.shardOf[static_cast<std::size_t>(s)]);
    }
    partitionCutLinks_ = part.cutLinks;
    partitionImbalance_ = part.imbalance;
  }
  shardOfNode_.resize(static_cast<std::size_t>(topo_.numNodes()));
  for (NodeId n = 0; n < topo_.numNodes(); ++n) {
    shardOfNode_[static_cast<std::size_t>(n)] =
        shardOfSwitch_[static_cast<std::size_t>(topo_.switchOfNode(n))];
  }

  // Per-shard outbound lookahead: the minimum link latency crossing each
  // shard's boundary (today every link shares linkPropagationNs; the min
  // over actual cut links is where heterogeneous latencies would slot in).
  // A shard with no cut links keeps kTimeNever and never constrains the
  // window plan. failLink only removes links, so the build-time minimum
  // stays a valid lower bound for the whole fabric lifetime.
  const SimTime linkLat =
      params_.linkPropagationNs > 0 ? params_.linkPropagationNs : 1;
  if (t > 1) {
    const SwitchAdjacency adj(topo_);
    for (SwitchId s = 0; s < numSwitches; ++s) {
      const SwitchAdjacency::Span nb = adj.neighbors(s);
      const int mine = shardOfSwitch_[static_cast<std::size_t>(s)];
      for (int i = 0; i < nb.count; ++i) {
        if (shardOfSwitch_[static_cast<std::size_t>(nb.ids[i])] != mine) {
          Shard& sh = shards_[static_cast<std::size_t>(mine)];
          sh.lookOutNs = std::min(sh.lookOutNs, linkLat);
        }
      }
    }
  }

  // Window-width ceiling: explicit knob, or 8 lookaheads by default — wide
  // enough that a sequential run amortizes the per-window barrier work,
  // small enough that default transports (ackDelayNs >= 2 us) are safe.
  windowCapBase_ = params_.windowCapNs > 0
                       ? std::max<SimTime>(params_.windowCapNs, 1)
                       : 8 * linkLat;
  windowCapEff_ = windowCapBase_;
}

void Fabric::limitWindowCap(SimTime capNs) {
  if (capNs < 1) capNs = 1;
  if (capNs < windowCapEff_) windowCapEff_ = capNs;
}

void Fabric::buildSwitches() {
  const int numPorts = topo_.portsPerSwitch();
  const Lid lidLimit = lids_.lidLimit(topo_.numNodes());
  // Size the fabric-wide buffer slab from the wired port count. Every input
  // buffer has uniform capacity (bufferCredits slots — a packet occupies at
  // least one credit), and unused ports can never receive a packet (the
  // port map is fixed at build; recoverLink only restores originally-wired
  // links), so they get no slice at all.
  std::size_t wiredPorts = 0;
  for (SwitchId s = 0; s < topo_.numSwitches(); ++s) {
    for (PortIndex p = 0; p < numPorts; ++p) {
      if (topo_.peer(s, p).kind != PeerKind::kUnused) ++wiredPorts;
    }
  }
  bufferArena_.reserve(wiredPorts * static_cast<std::size_t>(params_.numVls) *
                       static_cast<std::size_t>(params_.bufferCredits));
  switches_.reserve(static_cast<std::size_t>(topo_.numSwitches()));
  for (SwitchId s = 0; s < topo_.numSwitches(); ++s) {
    switches_.emplace_back(numPorts, params_.numVls, params_.bufferCredits,
                           params_.escapeReserveCredits, params_.numOptions,
                           lidLimit);
    SwitchModel& sw = switches_.back();
    sw.adaptiveCapable = params_.adaptiveSwitchMask.empty()
                             ? params_.adaptiveSwitches
                             : params_.adaptiveSwitchMask[static_cast<std::size_t>(s)];
    for (PortIndex p = 0; p < numPorts; ++p) {
      const Peer& peer = topo_.peer(s, p);
      auto& ip = sw.in[static_cast<std::size_t>(p)];
      auto& op = sw.out[static_cast<std::size_t>(p)];
      switch (peer.kind) {
        case PeerKind::kUnused:
          break;
        case PeerKind::kNode:
          ip.upKind = PeerKind::kNode;
          ip.upId = peer.id;
          op.downKind = PeerKind::kNode;
          op.downId = peer.id;
          op.credits.assign(static_cast<std::size_t>(params_.numVls),
                            params_.caRecvCredits);
          op.creditsMax = op.credits;
          op.wireCredits.assign(static_cast<std::size_t>(params_.numVls), 0);
          op.pendingCredits = op.wireCredits;
          op.lostCredits = op.wireCredits;
          break;
        case PeerKind::kSwitch:
          ip.upKind = PeerKind::kSwitch;
          ip.upId = peer.id;
          ip.upPort = peer.port;
          op.downKind = PeerKind::kSwitch;
          op.downId = peer.id;
          op.downPort = peer.port;
          op.credits.assign(static_cast<std::size_t>(params_.numVls),
                            params_.bufferCredits);
          op.creditsMax = op.credits;
          op.wireCredits.assign(static_cast<std::size_t>(params_.numVls), 0);
          op.pendingCredits = op.wireCredits;
          op.lostCredits = op.wireCredits;
          break;
      }
      if (peer.kind != PeerKind::kUnused) {
        for (auto& vlBuf : ip.vls) {
          vlBuf.bind(bufferArena_.allocate(
              static_cast<std::size_t>(params_.bufferCredits)));
        }
      }
      if (params_.congestion.enabled && peer.kind != PeerKind::kUnused) {
        op.congested.assign(static_cast<std::size_t>(params_.numVls), 0);
        op.congSince.assign(static_cast<std::size_t>(params_.numVls), 0);
        op.stallSince.assign(static_cast<std::size_t>(params_.numVls), -1);
      }
    }
  }
}

void Fabric::buildNodes() {
  nodes_.resize(static_cast<std::size_t>(topo_.numNodes()));
  for (auto& n : nodes_) {
    n.txCredits.assign(static_cast<std::size_t>(params_.numVls),
                       params_.bufferCredits);
    n.wireCredits.assign(static_cast<std::size_t>(params_.numVls), 0);
    n.pendingCredits = n.wireCredits;
  }
}

void Fabric::setLftEntry(SwitchId sw, Lid lid, PortIndex port) {
  switches_[static_cast<std::size_t>(sw)].lft.setEntry(lid, port);
}

void Fabric::setLftBlock(SwitchId sw, Lid start, const std::uint8_t* bytes,
                         std::size_t count) {
  switches_[static_cast<std::size_t>(sw)].lft.setBlock(start, bytes, count);
}

PortIndex Fabric::lftEntry(SwitchId sw, Lid lid) const {
  return switches_[static_cast<std::size_t>(sw)].lft.entry(lid);
}

void Fabric::setSlToVl(SwitchId sw, PortIndex inPort, PortIndex outPort,
                       int sl, VlIndex vl) {
  const bool changed =
      switches_[static_cast<std::size_t>(sw)].slToVl.set(inPort, outPort, sl,
                                                         vl);
  // Remapping can redirect a blocked packet to a VL with credits — but only
  // a write that actually changed the mapping can alter grant feasibility.
  // The SM's standard sweep programs the identity mapping the table already
  // holds, and skipping the memo clear there removes an O(ports^3 x 16)
  // term per switch from every configure().
  if (changed) clearArbMemos(sw);
}

const Peer& Fabric::managementPeer(SwitchId sw, PortIndex port) const {
  return topo_.peer(sw, port);
}

void Fabric::stageLftBegin(SwitchId sw) {
  if (sw < 0 || sw >= topo_.numSwitches()) {
    throw std::invalid_argument("Fabric::stageLftBegin: switch out of range");
  }
  if (oldEpochInFlight() != 0) {
    // The shadow bank still serves packets of epoch injectionEpoch_-1; the
    // reconfiguration protocol must drain them before restaging.
    throw std::logic_error(
        "Fabric::stageLftBegin: previous epoch still in flight");
  }
  switches_[static_cast<std::size_t>(sw)].lft.stageBegin();
}

void Fabric::stageLftEntry(SwitchId sw, Lid lid, PortIndex port) {
  switches_[static_cast<std::size_t>(sw)].lft.stageEntry(lid, port);
}

void Fabric::stageLftBlock(SwitchId sw, Lid start, const std::uint8_t* bytes,
                           std::size_t count) {
  switches_[static_cast<std::size_t>(sw)].lft.stageBlock(start, bytes, count);
}

void Fabric::commitStagedLft(SwitchId sw, std::uint32_t epoch) {
  if (epoch != injectionEpoch_ + 1) {
    throw std::logic_error(
        "Fabric::commitStagedLft: epoch must be injectionEpoch()+1");
  }
  switches_[static_cast<std::size_t>(sw)].lft.commitStaged(epoch);
  // No memo clear / re-arbitration: buffered packets keep the route options
  // resolved at their header arrival, and no packet carries `epoch` yet, so
  // grant feasibility is unchanged until advanceInjectionEpoch.
}

void Fabric::advanceInjectionEpoch(std::uint32_t epoch) {
  if (epoch != injectionEpoch_ + 1) {
    throw std::logic_error(
        "Fabric::advanceInjectionEpoch: epoch must advance by one");
  }
  for (SwitchId s = 0; s < topo_.numSwitches(); ++s) {
    if (switches_[static_cast<std::size_t>(s)].lft.epoch() != epoch) {
      throw std::logic_error(
          "Fabric::advanceInjectionEpoch: switch has not committed the "
          "new epoch (missing install ack)");
    }
  }
  injectionEpoch_ = epoch;
}

std::uint64_t Fabric::oldEpochInFlight() const {
  if (injectionEpoch_ == 0) return 0;
  const std::size_t parity = (injectionEpoch_ - 1) & 1;
  std::uint64_t injected = 0;
  std::uint64_t retired = 0;
  for (const Shard& sh : shards_) {
    injected += sh.epochInjected[parity];
    retired += sh.epochRetired[parity];
  }
  return injected - retired;
}

std::uint64_t Fabric::inFlightPackets() const {
  std::uint64_t injected = 0;
  std::uint64_t retired = 0;
  for (const Shard& sh : shards_) {
    injected += sh.epochInjected[0] + sh.epochInjected[1];
    retired += sh.epochRetired[0] + sh.epochRetired[1];
  }
  return injected - retired;
}

void Fabric::setInjectionPaused(bool paused) {
  if (injectionPaused_ == paused) return;
  injectionPaused_ = paused;
  if (paused || !started_) return;
  // Unpausing: every CA with queued work stalled silently while the gate
  // was closed; wake them all. tryNodeTx is idempotent, so waking an idle
  // node is harmless.
  for (NodeId n = 0; n < topo_.numNodes(); ++n) {
    if (nodes_[static_cast<std::size_t>(n)].sendQueue.empty()) continue;
    Event ev;
    ev.time = now_;
    ev.kind = EventKind::kNodeTryTx;
    ev.a = static_cast<std::uint32_t>(n);
    pushCoord(ev);
  }
}

void Fabric::failLink(SwitchId sw, PortIndex port) {
  if (sw < 0 || sw >= topo_.numSwitches() || port < 0 ||
      port >= topo_.portsPerSwitch()) {
    throw std::invalid_argument("Fabric::failLink: switch/port out of range");
  }
  const Peer peer = topo_.peer(sw, port);
  if (peer.kind == PeerKind::kNode) {
    // Documented rejection: a CA has a single physical link, so its loss
    // partitions the host — nothing LMC/APM addressing or an SM sweep can
    // route around. Callers model host death by excluding the node from
    // traffic, not by failing its link.
    throw std::invalid_argument(
        "Fabric::failLink: CA-facing port — host-link faults cannot be "
        "masked by rerouting; exclude the node from traffic instead");
  }
  if (peer.kind != PeerKind::kSwitch) {
    throw std::invalid_argument(
        "Fabric::failLink: port has no live inter-switch link");
  }
  {
    FailedLink rec;
    rec.swA = sw < peer.id ? sw : peer.id;
    rec.portA = sw < peer.id ? port : peer.port;
    rec.swB = sw < peer.id ? peer.id : sw;
    rec.portB = sw < peer.id ? peer.port : port;
    failedLinks_.push_back(rec);
  }
  topo_.removeLink(sw, port);  // management plane now reports the fault
  // Stop new transfers in both directions; leave the input sides wired so
  // in-flight bits drain and credit updates still find their way back.
  switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .downKind = PeerKind::kUnused;
  switches_[static_cast<std::size_t>(peer.id)]
      .out[static_cast<std::size_t>(peer.port)]
      .downKind = PeerKind::kUnused;
  // Route liveness changed on both sides: failed-grant memos are stale
  // (dead options must be rediscovered so doomed packets get dropped).
  clearArbMemos(sw);
  clearArbMemos(peer.id);
  // Buffered packets whose only routes died must be discarded eventually;
  // arbitration handles that, so wake both switches.
  if (started_) {
    scheduleArb(nullptr, sw, now_);
    scheduleArb(nullptr, peer.id, now_);
  }
}

void Fabric::recoverLink(SwitchId sw, PortIndex port) {
  auto it = failedLinks_.begin();
  for (; it != failedLinks_.end(); ++it) {
    if ((it->swA == sw && it->portA == port) ||
        (it->swB == sw && it->portB == port)) {
      break;
    }
  }
  if (it == failedLinks_.end()) {
    throw std::invalid_argument(
        "Fabric::recoverLink: no failed link at this port");
  }
  const FailedLink rec = *it;
  failedLinks_.erase(it);
  topo_.restoreLink(rec.swA, rec.portA, rec.swB, rec.portB);
  // Re-wire the output sides; the input sides stayed wired through the
  // fault (failLink leaves them so credits keep draining back), and the
  // credit counts tracked the downstream buffers the whole time.
  auto& opA = switches_[static_cast<std::size_t>(rec.swA)]
                  .out[static_cast<std::size_t>(rec.portA)];
  opA.downKind = PeerKind::kSwitch;
  opA.downId = rec.swB;
  opA.downPort = rec.portB;
  auto& opB = switches_[static_cast<std::size_t>(rec.swB)]
                  .out[static_cast<std::size_t>(rec.portB)];
  opB.downKind = PeerKind::kSwitch;
  opB.downId = rec.swA;
  opB.downPort = rec.portA;
  clearArbMemos(rec.swA);
  clearArbMemos(rec.swB);
  if (started_) {
    scheduleArb(nullptr, rec.swA, now_);
    scheduleArb(nullptr, rec.swB, now_);
  }
}

void Fabric::reset() {
  // Recover every failed link first so the output-port wiring below starts
  // from the fully connected graph. started_ goes false up front: recovery
  // must not schedule arbitration into the queues we are about to clear.
  started_ = false;
  while (!failedLinks_.empty()) {
    const FailedLink rec = failedLinks_.front();
    recoverLink(rec.swA, rec.portA);
  }

  for (SwitchModel& sw : switches_) {
    for (SwitchInputPort& ip : sw.in) {
      for (VlBuffer& vlBuf : ip.vls) vlBuf.clear();
      ip.busyUntil = 0;
      ip.rrVl = 0;
      ip.buffered = 0;
      ip.vlOccupied = 0;
      ip.retryAt = 0;
      ip.blockPorts = 0;
    }
    for (SwitchOutputPort& op : sw.out) {
      op.credits = op.creditsMax;  // never-wired ports: both empty
      std::fill(op.wireCredits.begin(), op.wireCredits.end(), 0);
      std::fill(op.pendingCredits.begin(), op.pendingCredits.end(), 0);
      std::fill(op.lostCredits.begin(), op.lostCredits.end(), 0);
      std::fill(op.congested.begin(), op.congested.end(), std::uint8_t{0});
      std::fill(op.congSince.begin(), op.congSince.end(), SimTime{0});
      std::fill(op.stallSince.begin(), op.stallSince.end(), SimTime{-1});
      op.busyUntil = 0;
      op.bytesSent = 0;
    }
    sw.lft.resetEpochs();
    sw.slToVl.resetIdentity();
    sw.rrInput = 0;
    sw.lastArbScheduled = -1;
  }

  for (NodeModel& nd : nodes_) {
    nd.sendQueue.clear();
    nd.txBusyUntil = 0;
    std::fill(nd.txCredits.begin(), nd.txCredits.end(),
              params_.bufferCredits);
    std::fill(nd.wireCredits.begin(), nd.wireCredits.end(), 0);
    std::fill(nd.pendingCredits.begin(), nd.pendingCredits.end(), 0);
    nd.lastTryTxScheduled = -1;
    nd.pendingGenTime = kTimeNever;
  }

  for (Shard& sh : shards_) {
    sh.queue.clear();
    sh.pool.clear();
    sh.counters = FabricCounters{};
    sh.now = 0;
    sh.creditsLeaked = 0;
    sh.epochInjected = {};
    sh.epochRetired = {};
    sh.producer = 0;
    sh.evTime = 0;
    sh.evSeq = 0;
    sh.subIdx = 0;
    sh.leaks.clear();
    sh.obs.clear();
    for (auto& mb : sh.outbox) mb.reset();
    sh.error = nullptr;
  }
  coordQueue_.clear();
  coordEvents_ = 0;
  std::fill(stampCounters_.begin(), stampCounters_.end(), 0);
  windowsActive_ = false;
  windowEnd_ = 0;
  runDone_ = false;

  traffic_ = nullptr;
  observer_ = nullptr;
  linkFaults_ = nullptr;
  checker_ = nullptr;
  checkPeriod_ = 0;
  nodeRngs_.clear();
  // Re-seed the per-switch selection streams exactly like the constructor.
  switchRngs_.clear();
  std::uint64_t chain = params_.selectionSeed;
  for (SwitchId s = 0; s < topo_.numSwitches(); ++s) {
    switchRngs_.emplace_back(splitmix64(chain));
  }
  detSeqCounters_.reset(topo_.numNodes(), topo_.numNodes());

  injectionEpoch_ = 0;
  injectionPaused_ = false;
  now_ = 0;
  generationEnd_ = 0;
  windowCapEff_ = windowCapBase_;
  obsCtxTime_ = -1;
  stopHorizon_ = kTimeNever;
  windowsExecuted_ = 0;
  crossShardMessages_ = 0;
  stopRequested_ = false;
  deadlockSuspected_ = false;
  livePacketLimitHit_ = false;
  watchdogPeriod_ = 0;
  watchdogStallLimit_ = 0;
  watchdogLastDelivered_ = 0;
  watchdogStallCount_ = 0;
  watchdogEpoch_ = 0;
  resyncPeriod_ = 0;
  resyncEpoch_ = 0;
  resyncChainLive_ = false;
  checkEpoch_ = 0;
  checkChainLive_ = false;
  leakLedger_.clear();
  creditsResynced_ = 0;
}

void Fabric::attachTraffic(ITrafficSource* traffic, std::uint64_t trafficSeed) {
  traffic_ = traffic;
  // One traffic stream per node, chained from the seed exactly like the
  // fault-model lanes: identical draws for every kernel and thread count.
  nodeRngs_.clear();
  nodeRngs_.reserve(static_cast<std::size_t>(topo_.numNodes()));
  std::uint64_t chain = trafficSeed;
  for (NodeId n = 0; n < topo_.numNodes(); ++n) {
    nodeRngs_.emplace_back(splitmix64(chain));
  }
}

FabricCounters Fabric::counters() const {
  FabricCounters total;
  for (const Shard& sh : shards_) {
    total.generated += sh.counters.generated;
    total.injected += sh.counters.injected;
    total.delivered += sh.counters.delivered;
    total.deliveredBytes += sh.counters.deliveredBytes;
    total.hopSum += sh.counters.hopSum;
    total.adaptiveForwards += sh.counters.adaptiveForwards;
    total.escapeForwards += sh.counters.escapeForwards;
    total.dropped += sh.counters.dropped;
    total.crcDropped += sh.counters.crcDropped;
    total.events += sh.counters.events;
    total.fecnMarked += sh.counters.fecnMarked;
    total.congOnsets += sh.counters.congOnsets;
    total.congestedPortNs += sh.counters.congestedPortNs;
    total.zeroCreditNs += sh.counters.zeroCreditNs;
  }
  total.events += coordEvents_;
  return total;
}

std::size_t Fabric::livePackets() const {
  std::size_t live = 0;
  for (const Shard& sh : shards_) live += sh.pool.liveCount();
  return live;
}

std::uint64_t Fabric::creditsLeaked() const {
  std::uint64_t total = 0;
  for (const Shard& sh : shards_) total += sh.creditsLeaked;
  return total;
}

int Fabric::outputCredits(SwitchId sw, PortIndex port, VlIndex vl) const {
  const auto& credits = switches_[static_cast<std::size_t>(sw)]
                            .out[static_cast<std::size_t>(port)]
                            .credits;
  // Never-wired ports have no credit vector; report 0 so audits can scan
  // every (switch, port, vl) uniformly.
  if (static_cast<std::size_t>(vl) >= credits.size()) return 0;
  return credits[static_cast<std::size_t>(vl)];
}

int Fabric::outputCreditsMax(SwitchId sw, PortIndex port, VlIndex vl) const {
  const auto& max = switches_[static_cast<std::size_t>(sw)]
                        .out[static_cast<std::size_t>(port)]
                        .creditsMax;
  if (static_cast<std::size_t>(vl) >= max.size()) return 0;
  return max[static_cast<std::size_t>(vl)];
}

bool Fabric::outputCongested(SwitchId sw, PortIndex port, VlIndex vl) const {
  const auto& congested = switches_[static_cast<std::size_t>(sw)]
                              .out[static_cast<std::size_t>(port)]
                              .congested;
  if (static_cast<std::size_t>(vl) >= congested.size()) return false;
  return congested[static_cast<std::size_t>(vl)] != 0;
}

std::uint64_t Fabric::outputBytesSent(SwitchId sw, PortIndex port) const {
  return switches_[static_cast<std::size_t>(sw)]
      .out[static_cast<std::size_t>(port)]
      .bytesSent;
}

int Fabric::inputBufferOccupancy(SwitchId sw, PortIndex port, VlIndex vl) const {
  return switches_[static_cast<std::size_t>(sw)]
      .in[static_cast<std::size_t>(port)]
      .vls[static_cast<std::size_t>(vl)]
      .occupiedCredits();
}

std::size_t Fabric::nodeQueueLength(NodeId n) const {
  return nodes_[static_cast<std::size_t>(n)].sendQueue.size();
}

int Fabric::leakedCreditsOutstanding() const {
  int total = 0;
  for (const LeakRecord& rec : leakLedger_) total += rec.credits;
  // Leaks recorded since the last barrier harvest (only possible while a
  // window is open; external callers always see an empty shard ledger).
  for (const Shard& sh : shards_) {
    for (const LeakRecord& rec : sh.leaks) total += rec.credits;
  }
  return total;
}

void Fabric::harvestLeaks() {
  bool any = false;
  for (const Shard& sh : shards_) any = any || !sh.leaks.empty();
  if (!any) return;
  // Every record harvested now was created after everything already in the
  // ledger (windows never move backwards), so sorting the new batch by its
  // triggering-event stamp and appending keeps the ledger globally ordered
  // — the order the one-shard engine would have appended in.
  const std::size_t oldSize = leakLedger_.size();
  for (Shard& sh : shards_) {
    leakLedger_.insert(leakLedger_.end(), sh.leaks.begin(), sh.leaks.end());
    sh.leaks.clear();
  }
  std::sort(leakLedger_.begin() + static_cast<std::ptrdiff_t>(oldSize),
            leakLedger_.end(), [](const LeakRecord& x, const LeakRecord& y) {
              if (x.atTime != y.atTime) return x.atTime < y.atTime;
              return x.atSeq < y.atSeq;
            });
}

void Fabric::applyResyncs(bool force) {
  harvestLeaks();
  std::size_t kept = 0;
  for (const LeakRecord& rec : leakLedger_) {
    if (!force && rec.dueAt > now_) {
      leakLedger_[kept++] = rec;
      continue;
    }
    auto& op = switches_[static_cast<std::size_t>(rec.sw)]
                   .out[static_cast<std::size_t>(rec.port)];
    op.lostCredits[static_cast<std::size_t>(rec.vl)] -= rec.credits;
    op.credits[static_cast<std::size_t>(rec.vl)] += rec.credits;
    if (op.credits[static_cast<std::size_t>(rec.vl)] >
        op.creditsMax[static_cast<std::size_t>(rec.vl)]) {
      throw std::logic_error("Fabric: credit resync overflow (ledger bug)");
    }
    creditsResynced_ += static_cast<std::uint64_t>(rec.credits);
    // Restored credits can unblock memo-parked inputs, exactly like a
    // normal credit arrival at this output port.
    const std::uint64_t bit = 1ull << (rec.port & 63);
    for (auto& inp : switches_[static_cast<std::size_t>(rec.sw)].in) {
      if ((inp.blockPorts & bit) != 0) inp.retryAt = 0;
    }
    if (started_) scheduleArb(nullptr, rec.sw, now_);
  }
  leakLedger_.resize(kept);
}

void Fabric::forceCreditResync() { applyResyncs(true); }

void Fabric::repairOutputCredits(SwitchId sw, PortIndex port, VlIndex vl,
                                 int delta) {
  auto& op = switches_[static_cast<std::size_t>(sw)]
                 .out[static_cast<std::size_t>(port)];
  if (static_cast<std::size_t>(vl) >= op.credits.size()) {
    throw std::invalid_argument("Fabric::repairOutputCredits: unwired port");
  }
  op.credits[static_cast<std::size_t>(vl)] += delta;
  if (op.credits[static_cast<std::size_t>(vl)] < 0 ||
      op.credits[static_cast<std::size_t>(vl)] >
          op.creditsMax[static_cast<std::size_t>(vl)]) {
    throw std::invalid_argument(
        "Fabric::repairOutputCredits: repair leaves credits out of range");
  }
  const std::uint64_t bit = 1ull << (port & 63);
  for (auto& inp : switches_[static_cast<std::size_t>(sw)].in) {
    if ((inp.blockPorts & bit) != 0) inp.retryAt = 0;
  }
  if (started_) scheduleArb(nullptr, sw, now_);
}

}  // namespace ibadapt
