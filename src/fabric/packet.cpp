#include "fabric/packet.hpp"

namespace ibadapt {

void PacketPool::reserve(std::size_t n) {
  slots_.reserve(n);
  free_.reserve(n);
}

}  // namespace ibadapt
