#include "fabric/packet.hpp"

namespace ibadapt {

PacketRef PacketPool::alloc() {
  if (!free_.empty()) {
    const PacketRef ref = free_.back();
    free_.pop_back();
    slots_[ref] = Packet{};
    return ref;
  }
  slots_.emplace_back();
  return static_cast<PacketRef>(slots_.size() - 1);
}

void PacketPool::release(PacketRef ref) {
  free_.push_back(ref);
}

}  // namespace ibadapt
