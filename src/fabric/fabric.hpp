#pragma once
//
// The IBA subnet model: switches, links, channel adapters, and the
// discrete-event engine that moves packets through them.
//
// Model summary (paper §5.1):
//  * input-buffered switches; one split VL buffer (adaptive + escape
//    queues) per input port per VL; 100 ns routing delay from header
//    arrival; crossbar constraint of one active transfer per input port and
//    per output port; round-robin arbitration, re-run on every relevant
//    state change (event driven);
//  * virtual cut-through: forwarding may start once the header has arrived
//    and routing has completed, but only when the downstream buffer has
//    credits for the entire packet;
//  * credit-based flow control per VL, credits returned when a packet's
//    tail leaves a buffer, travelling back with wire latency;
//  * 1X serial links: 4 ns/byte serialization, 100 ns propagation.
//
// The Fabric exposes a management plane (setLftEntry / setSlToVl /
// managementPeer) used by the SubnetManager exactly the way a real SM
// programs switches, and a data plane driven by ITrafficSource.
//
// --- engine architecture ----------------------------------------------------
//
// Every kernel runs the same *windowed* event loop. The fabric's entities
// (switches plus their attached CAs) are partitioned into shards by a
// deterministic topology-aware partitioner (topology/partition.hpp); each
// shard owns a private event queue, packet pool, and counters. Simulated
// time advances in conservative-lookahead windows: within a window each
// shard processes its own events independently, because any event one
// entity schedules on an entity of another shard crosses a physical link
// and is therefore at least that link's latency in the future (packets and
// credit updates both ride links). The window bound is per-shard-pair: each
// shard carries the minimum link latency crossing its boundary (lookOutNs;
// today every link shares linkPropagationNs, so a crossed boundary
// contributes exactly that, and a shard with no cut links contributes
// nothing), and a window may extend to the earliest (shard top + lookOut)
// over the non-empty shards, up to a global cap (FabricParams::windowCapNs)
// that keeps windows under any attached transport's ack delay. Cross-shard
// events travel through per-edge mailboxes drained in batch at the window
// barrier in fixed (source shard, destination shard) order. "Global" events
// — watchdog, credit-resync, and invariant-check chains — live in a
// coordinator queue and are dispatched between windows, when every shard
// has quiesced at exactly their timestamp.
//
// The sequential kernels (kCalendar, kLegacyHeap) are the one-shard special
// case of the same loop, and every event is stamped with a producer-local
// sequence number (sim/event.hpp) whose values do not depend on the shard
// count. Together these make SimKernel::kParallel bit-identical to
// kCalendar for every thread count: identical event order per entity,
// identical RNG streams (one per node / switch / fault lane), identical
// observer callback order (buffered per shard and replayed at each barrier
// in global order), identical counters at every barrier.
//
// The window *plan* (how event time is chunked) is allowed to differ across
// kernels, thread counts, and partitions — what must not differ is the set
// of events processed and their per-entity order. The only place the plan
// used to leak into results was the stop path: a stats-driven requestStop()
// ended the run at the enclosing window's edge. It now arms a stop
// *horizon* instead — the triggering event's time plus the window cap, an
// upper bound on any window that could have contained the trigger — and
// the engine keeps processing exactly the events at or before the horizon.
// The processed event set is therefore a pure function of simulated time,
// independent of the window plan. Coordinator-context stops (watchdog
// deadlock aborts, invariant-checker aborts, external requestStop between
// runs) keep their immediate semantics, which are already canonical: every
// shard is quiesced at exactly the coordinator timestamp.
//
#include <cstdint>
#include <deque>
#include <exception>
#include <vector>

#include "core/forwarding_table.hpp"
#include "core/lid_map.hpp"
#include "core/sl_to_vl.hpp"
#include "core/vl_buffer.hpp"
#include "fabric/interfaces.hpp"
#include "fabric/packet.hpp"
#include "fabric/params.hpp"
#include "sim/event_queue.hpp"
#include "topology/topology.hpp"
#include "util/buffer_arena.hpp"
#include "util/flow_table.hpp"
#include "util/rng.hpp"
#include "util/spsc_mailbox.hpp"

namespace ibadapt {

struct SwitchInputPort {
  std::vector<VlBuffer> vls;
  SimTime busyUntil = 0;  // crossbar: one departing transfer at a time
  int rrVl = 0;           // VL round-robin pointer (VlSelection::kRoundRobin)
  // Arbitration work list (SimKernel::kCalendar): packets buffered across
  // all VLs of this port, and a bitmask of non-empty VLs, so arbitration
  // passes skip empty ports/VLs without touching their buffers. Maintained
  // unconditionally (cheap), consulted only by the fast kernels so the
  // legacy kernel keeps the seed's exact full-scan behavior.
  int buffered = 0;
  std::uint32_t vlOccupied = 0;
  // Failed-grant memo (fast kernels only): after a grant pass finds nothing
  // feasible here, the port is skipped until the earliest time-blocker
  // (routeReady / output busyUntil) passes, a credit arrives at one of the
  // output ports recorded in blockPorts, or link state / SL-to-VL mapping
  // changes (which clear every memo on the switch). Skipping is sound
  // because a failed pass has no side effects and nothing else can turn
  // the port grantable: credits only grow via credit events, busyUntil
  // only extends, and buffer pushes/removes reset the memo. retryAt = 0
  // means "no memo". blockPorts is a bitmask over output-port index & 63 —
  // aliasing on >64-port switches only causes extra retries, never misses.
  SimTime retryAt = 0;
  std::uint64_t blockPorts = 0;
  // Upstream entity holding this buffer's credits.
  PeerKind upKind = PeerKind::kUnused;
  std::int32_t upId = kInvalidId;
  PortIndex upPort = kInvalidPort;
};

struct SwitchOutputPort {
  std::vector<int> credits;     // per VL: credits left in the downstream buffer
  std::vector<int> creditsMax;  // per VL: downstream buffer capacity
  // Conservation ledger (always maintained; checked by src/check): per VL,
  // credits bound up in packets currently serializing toward the downstream
  // buffer, credit updates in flight back toward this port, and credits
  // stolen by a transient-fault model awaiting resync. Together with the
  // downstream buffer occupancy these must always sum to creditsMax.
  std::vector<int> wireCredits;
  std::vector<int> pendingCredits;
  std::vector<int> lostCredits;
  // Congestion-detection state per VL (src/congestion; sized only when
  // detection is enabled, empty otherwise). A VL is "congested" between the
  // hysteresis enter (free credits <= enter threshold, applied at grant)
  // and exit (free credits >= exit threshold, applied at credit return);
  // while congested every packet granted to it is FECN-marked. stallSince
  // tracks zero-free-credit episodes (-1 = not stalled).
  std::vector<std::uint8_t> congested;
  std::vector<SimTime> congSince;
  std::vector<SimTime> stallSince;
  SimTime busyUntil = 0;        // link serialization occupancy
  std::uint64_t bytesSent = 0;  // lifetime traffic (utilization accounting)
  PeerKind downKind = PeerKind::kUnused;
  std::int32_t downId = kInvalidId;
  PortIndex downPort = kInvalidPort;
};

struct SwitchModel {
  SwitchModel(int numPorts, int numVls, int bufferCredits, int escapeReserve,
              int numBanks, Lid lidLimit);

  std::vector<SwitchInputPort> in;
  std::vector<SwitchOutputPort> out;
  VersionedForwardingTable lft;
  SlToVlTable slToVl;
  bool adaptiveCapable = true;
  int rrInput = 0;                    // arbitration round-robin pointer
  SimTime lastArbScheduled = -1;      // duplicate-event suppression
};

struct NodeModel {
  std::deque<PacketRef> sendQueue;
  SimTime txBusyUntil = 0;
  std::vector<int> txCredits;  // per VL, toward the switch input buffer
  // Conservation ledger, mirroring SwitchOutputPort (the CA-side credit
  // path is modeled lossless, so there is no lostCredits here).
  std::vector<int> wireCredits;
  std::vector<int> pendingCredits;
  SimTime lastTryTxScheduled = -1;
  /// Open-loop generation time deferred past the current run's end; re-armed
  /// by the next run() call so multi-phase runs keep generating.
  SimTime pendingGenTime = kTimeNever;
};

struct RunLimits {
  SimTime endTime = 0;
  /// Open-loop sources stop generating after this time; -1 (default) means
  /// "generate until endTime". Set to 0 for pure drain runs.
  SimTime generationEndTime = -1;
  /// Deadlock watchdog: declare a stall after `watchdogStallLimit`
  /// consecutive periods with in-flight packets but zero deliveries.
  SimTime watchdogPeriodNs = 1'000'000;
  int watchdogStallLimit = 8;
  std::uint64_t maxEvents = ~0ULL;
  std::size_t maxLivePackets = 4'000'000;
};

struct FabricCounters {
  std::uint64_t generated = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t deliveredBytes = 0;
  std::uint64_t hopSum = 0;
  /// Switch forwards through an adaptive / the escape routing option.
  std::uint64_t adaptiveForwards = 0;
  std::uint64_t escapeForwards = 0;
  /// Packets discarded because every routing option pointed at failed
  /// links (the IBA analogue is the switch-lifetime/HOQ timeout discard).
  std::uint64_t dropped = 0;
  /// Packets a receiver discarded after a transient corruption was caught
  /// by VCRC/ICRC (end-to-end retransmission recovers them).
  std::uint64_t crcDropped = 0;
  std::uint64_t events = 0;
  // Congestion detection (src/congestion; all zero unless enabled).
  std::uint64_t fecnMarked = 0;      ///< packets granted with the FECN mark
  std::uint64_t congOnsets = 0;      ///< port/VL congested-state entries
  std::uint64_t congestedPortNs = 0; ///< summed completed congestion episodes
  std::uint64_t zeroCreditNs = 0;    ///< summed completed zero-credit stalls
};

class Fabric {
 public:
  Fabric(Topology topo, FabricParams params);

  // ---- management plane (SubnetManager) --------------------------------
  void setLftEntry(SwitchId sw, Lid lid, PortIndex port);
  /// Bulk LFT programming: write `count` consecutive entries starting at
  /// `start` from LFT-image row bytes (0xff = clear / not programmed). One
  /// call per switch row replaces tens of thousands of per-entry calls when
  /// the SM sweeps a 1024-switch fabric.
  void setLftBlock(SwitchId sw, Lid start, const std::uint8_t* bytes,
                   std::size_t count);
  PortIndex lftEntry(SwitchId sw, Lid lid) const;
  void setSlToVl(SwitchId sw, PortIndex inPort, PortIndex outPort, int sl,
                 VlIndex vl);
  /// Port-walk discovery, as an SMP Get(NodeInfo/PortInfo) would see it.
  const Peer& managementPeer(SwitchId sw, PortIndex port) const;

  /// Fail-stop fault on the inter-switch link at (sw, port): both ends stop
  /// accepting new transfers; bits already on the wire drain normally.
  /// Packets whose every routing option points at failed links are
  /// discarded (counted in counters().dropped). Call SubnetManager::
  /// configure() afterwards to route around the fault; until then senders
  /// can migrate to an alternate APM path set (paper §4.1).
  ///
  /// Only inter-switch links can fail. CA-facing ports are rejected with
  /// std::invalid_argument by design: a CA port owns exactly one physical
  /// link, so losing it partitions the host — no LMC path set or SM re-sweep
  /// can mask that (paper §4.1 assumes redundancy *between* switches).
  /// Model a dead host by excluding it from traffic instead. Unused ports
  /// and already-failed links are also rejected.
  void failLink(SwitchId sw, PortIndex port);

  /// Brings a previously failed inter-switch link back up — the inverse of
  /// failLink. `sw`/`port` may name either end of the failed link. The link
  /// is rewired on the same port pair it occupied before the fault and both
  /// switches re-arbitrate; credit state is preserved (credits kept flowing
  /// while the link was down, so the downstream counts are still exact).
  /// Throws std::invalid_argument when no such failed link exists.
  /// The forwarding tables are NOT touched: run a SubnetManager sweep to
  /// make the recovered link carry traffic again.
  void recoverLink(SwitchId sw, PortIndex port);

  /// One record per currently-failed inter-switch link (swA < swB).
  struct FailedLink {
    SwitchId swA = kInvalidId;
    PortIndex portA = kInvalidPort;
    SwitchId swB = kInvalidId;
    PortIndex portB = kInvalidPort;
  };
  const std::vector<FailedLink>& failedLinks() const { return failedLinks_; }

  // ---- live reconfiguration (epoch-based two-phase LFT swap) ------------
  //
  // Each switch holds two full LFT banks (VersionedForwardingTable). The
  // subnet manager stages a new image into every switch's shadow bank
  // (stageLftBegin / stageLftEntry), commits each switch at the modeled SMP
  // ack time (commitStagedLft), and — once every switch acked — advances
  // the fabric injection epoch. From that instant freshly injected packets
  // are stamped with the new epoch and route on the new tables, while
  // packets already in flight keep resolving the old bank at every
  // remaining hop. All of these are coordinator-context calls: legal before
  // start() or between run() slices, never mid-window.

  /// Open switch `sw`'s shadow LFT bank for a new image. The caller must
  /// have drained epoch (injectionEpoch()-1) first — the shadow bank still
  /// holds that epoch's table.
  void stageLftBegin(SwitchId sw);
  /// Program one entry of the staged image on `sw`.
  void stageLftEntry(SwitchId sw, Lid lid, PortIndex port);
  /// Bulk staged write, mirroring setLftBlock.
  void stageLftBlock(SwitchId sw, Lid start, const std::uint8_t* bytes,
                     std::size_t count);
  /// Commit `sw`'s staged image under `epoch` (must be injectionEpoch()+1).
  /// Forwarding behavior does not change yet: no packet carries `epoch`
  /// until advanceInjectionEpoch.
  void commitStagedLft(SwitchId sw, std::uint32_t epoch);
  /// Advance the fabric epoch: packets injected from now on are stamped
  /// `epoch` and route on the newly committed tables. Throws unless every
  /// switch has committed `epoch`.
  void advanceInjectionEpoch(std::uint32_t epoch);
  std::uint32_t injectionEpoch() const { return injectionEpoch_; }
  /// Packets of the previous epoch (injectionEpoch()-1) still in flight.
  /// Zero means the old tables are dead weight and the shadow banks may be
  /// restaged. Counts injected-but-not-yet-retired packets only; queued
  /// packets are stamped at injection and therefore never go stale.
  std::uint64_t oldEpochInFlight() const;
  /// Injected packets of any epoch still in flight (drain barrier for the
  /// stop-and-resweep baseline).
  std::uint64_t inFlightPackets() const;
  /// Gate new packet injection (CA -> switch transfer starts). Generation
  /// and host queueing continue; queued packets resume when unpaused.
  /// Coordinator context only.
  void setInjectionPaused(bool paused);
  bool injectionPaused() const { return injectionPaused_; }

  const LidMapper& lids() const { return lids_; }
  const Topology& topology() const { return topo_; }
  const FabricParams& params() const { return params_; }

  // ---- data plane -------------------------------------------------------
  void attachTraffic(ITrafficSource* traffic, std::uint64_t trafficSeed);
  void attachObserver(IDeliveryObserver* observer) { observer_ = observer; }

  /// Transient link-fault model (bit errors, credit-update loss). Consulted
  /// on every link hop and credit arrival; when its resyncPeriodNs() > 0 a
  /// periodic credit-resync chain repairs leaked credits. Attach before
  /// run(); pass nullptr to detach. The model's per-lane state is bound to
  /// this fabric's lane count (switches + CAs) here.
  void attachLinkFaults(ILinkFaultModel* faults) {
    linkFaults_ = faults;
    if (faults != nullptr) {
      faults->bindLanes(topo_.numSwitches() + topo_.numNodes());
    }
  }

  /// Runtime invariant checker, driven every `periodNs` as a simulator
  /// event (identical under every kernel). Attach before run().
  void attachChecker(IInvariantChecker* checker, SimTime periodNs) {
    checker_ = checker;
    checkPeriod_ = periodNs;
  }

  /// Schedule the initial events (traffic bootstrap). Call once, after
  /// attachTraffic and after the SubnetManager programmed the tables.
  void start();

  /// Warm-fabric reset: return every piece of dynamic state to its
  /// as-constructed value without rebuilding the topology or reallocating
  /// the big structures (buffer arena slices, event-queue wheels, packet
  /// pools, and credit vectors all keep their memory). Failed links are
  /// recovered, queues and flow tables are zeroed, RNG streams re-seed from
  /// the configured seeds, and the attached traffic / observer / fault /
  /// checker hooks are detached (re-attach before the next start()). The
  /// forwarding tables drop back to epoch 0 but keep their *contents* —
  /// callers that reconfigured or ran fault sweeps must reinstall their
  /// routing image (one setLftBlock row per switch) before running again.
  /// After reset + identical reprogramming + identical attachments, a run
  /// is bit-identical to one on a freshly constructed fabric. Only legal
  /// between runs (never mid-window).
  void reset();

  /// Process events until `limits.endTime`, a stop request, the watchdog,
  /// or an exhausted event queue.
  void run(const RunLimits& limits);

  /// Stop the run. From an observer callback (the stats collector ending
  /// its measurement) this arms a stop *horizon* — the triggering event's
  /// time plus the window cap — and the engine finishes every event at or
  /// before it, so the stopping point is independent of the window plan
  /// (see the architecture note). From coordinator context or between runs
  /// the stop is immediate, which is already canonical.
  void requestStop() {
    stopRequested_ = true;
    if (obsCtxTime_ >= 0) {
      const SimTime h = obsCtxTime_ + windowCapEff_;
      if (stopHorizon_ == kTimeNever || h < stopHorizon_) stopHorizon_ = h;
    }
  }
  bool stopRequested() const { return stopRequested_; }

  /// Run-scoped tightening of the window cap (e.g. to a transport's ack
  /// delay, whose hand-off must never become visible inside the window that
  /// generated it). Never loosens; reset() restores the params-derived cap.
  void limitWindowCap(SimTime capNs);

  // ---- deterministic parallel-kernel proxy metrics ----------------------
  /// Conservative-lookahead windows (barrier epochs) executed so far.
  std::uint64_t windowsExecuted() const { return windowsExecuted_; }
  /// Events that crossed a shard boundary through an SPSC mailbox (0 with
  /// one shard). Deterministic for a given partition and thread count.
  std::uint64_t crossShardMessages() const { return crossShardMessages_; }
  /// Inter-switch links crossing a shard boundary / total links, and the
  /// max-over-ideal shard weight ratio, from the partitioner (1-shard runs:
  /// cut 0, imbalance 1).
  std::uint64_t partitionCutLinks() const { return partitionCutLinks_; }
  std::uint64_t partitionTotalLinks() const { return partitionTotalLinks_; }
  double partitionImbalance() const { return partitionImbalance_; }

  SimTime now() const { return now_; }
  /// Counters merged over all shards (by value: the per-shard cells stay
  /// private to their owning threads). `const auto& c = fabric.counters()`
  /// keeps working via lifetime extension.
  FabricCounters counters() const;
  bool deadlockSuspected() const { return deadlockSuspected_; }
  bool livePacketLimitHit() const { return livePacketLimitHit_; }
  std::size_t livePackets() const;
  /// Shards (worker threads) the engine actually uses: params().threads
  /// clamped to the switch count and the packet-ref tag width; 1 for the
  /// sequential kernels.
  int shardCount() const { return static_cast<int>(shards_.size()); }

  /// Packets the attached traffic source is holding back under injection
  /// throttling (0 without congestion control). Lets the invariant watchdog
  /// tell throttle-induced idleness from deadlock.
  std::uint64_t throttledHeldPackets() const {
    return traffic_ == nullptr ? 0 : traffic_->throttledHeld();
  }

  // ---- introspection (tests / debugging / audits) -----------------------
  int outputCredits(SwitchId sw, PortIndex port, VlIndex vl) const;
  int outputCreditsMax(SwitchId sw, PortIndex port, VlIndex vl) const;
  /// True when output (sw, port) VL `vl` is currently in the congested
  /// state (always false when detection is disabled).
  bool outputCongested(SwitchId sw, PortIndex port, VlIndex vl) const;
  std::uint64_t outputBytesSent(SwitchId sw, PortIndex port) const;
  int inputBufferOccupancy(SwitchId sw, PortIndex port, VlIndex vl) const;
  std::size_t nodeQueueLength(NodeId n) const;
  /// Decode a (possibly shard-tagged) packet reference. Refs carried in
  /// events and buffers embed their owning shard in the top bits; with one
  /// shard the tag is zero, so refs equal raw pool indices.
  const Packet& packet(PacketRef ref) const {
    return shards_[ref >> kShardTagShift].pool.get(ref & kShardRefMask);
  }
  /// Read-only model state for the invariant watchdog and audits.
  const SwitchModel& switchModel(SwitchId sw) const {
    return switches_[static_cast<std::size_t>(sw)];
  }
  const NodeModel& nodeModel(NodeId n) const {
    return nodes_[static_cast<std::size_t>(n)];
  }

  // ---- credit-leak ledger (transient faults + resync watchdog) ----------
  /// Lifetime credits stolen from flow-control updates / restored by the
  /// resync watchdog. leaked == resynced means every leak healed.
  std::uint64_t creditsLeaked() const;
  std::uint64_t creditsResynced() const { return creditsResynced_; }
  /// Credits currently leaked and not yet repaired.
  int leakedCreditsOutstanding() const;
  /// Repair every outstanding leak immediately, without waiting for the
  /// detection window (used by WatchdogPolicy::kRecover and by drain code).
  void forceCreditResync();
  /// Directed credit repair for the invariant watchdog's kRecover policy:
  /// adds `delta` to the output port's credit count (books must end up in
  /// [0, creditsMax]) and re-arbitrates the switch.
  void repairOutputCredits(SwitchId sw, PortIndex port, VlIndex vl,
                           int delta);

 private:
  // --- sharding geometry --------------------------------------------------
  /// Packet refs carry their owning shard in the top bits; 28 bits of local
  /// index leave room for 268M live packets per shard (the engine caps live
  /// packets orders of magnitude below that).
  static constexpr int kShardTagShift = 28;
  static constexpr PacketRef kShardRefMask =
      (PacketRef{1} << kShardTagShift) - 1;
  /// Shard-count ceiling; well below the tag width so kInvalidPacketRef
  /// (tag 0xF) never aliases a real shard.
  static constexpr int kMaxShards = 8;

  enum class ObsType : std::uint8_t { kGenerated, kInjected, kDelivered };

  /// One buffered observer callback, replayed at the next window barrier in
  /// global (event time, event stamp, call ordinal) order — the order the
  /// one-shard engine makes the same calls inline.
  struct ObsRecord {
    SimTime evTime = 0;
    std::uint64_t evSeq = 0;
    std::uint32_t subIdx = 0;
    ObsType type = ObsType::kGenerated;
    SimTime now = 0;
    Packet pkt;
  };

  /// One entry per stolen credit-update token, repaired by the resync
  /// chain once `dueAt` passes (the IBA-style detection delay). Stamped
  /// with the triggering event so the coordinator can merge per-shard
  /// ledgers back into global event order.
  struct LeakRecord {
    SwitchId sw = kInvalidId;
    PortIndex port = kInvalidPort;
    VlIndex vl = 0;
    int credits = 0;
    SimTime dueAt = 0;
    SimTime atTime = 0;
    std::uint64_t atSeq = 0;
  };

  /// A cross-shard event in flight between two window barriers. Packet
  /// payloads move pools here: the source shard released its slot when it
  /// pushed the entry; the destination shard allocates one at drain.
  struct MailboxEntry {
    Event ev;
    Packet pkt;
    bool hasPacket = false;
  };

  /// Everything one worker thread owns: entities are partitioned into
  /// contiguous switch blocks (CAs ride with their attached switch), and
  /// within a window a shard touches only its own members plus its
  /// outboxes. The window barrier orders all cross-shard handoffs.
  struct Shard {
    Shard(int idx, SimKernel kind, int dayShift, int bucketShift)
        : index(idx), queue(kind, dayShift, bucketShift) {}

    int index;
    EventQueue queue;
    PacketPool pool;
    FabricCounters counters;
    SimTime now = 0;
    /// Minimum link latency crossing this shard's boundary (outbound
    /// lookahead): no cross-shard event this shard produces can be due
    /// sooner than its queue top plus lookOutNs. kTimeNever = no cut links,
    /// so this shard never constrains the window plan.
    SimTime lookOutNs = kTimeNever;
    std::uint64_t creditsLeaked = 0;
    // Injection-epoch in-flight ledger, indexed by epoch parity. Injections
    // count on the injecting shard, retirements (deliver / drop / CRC
    // discard) on the retiring shard; only the global sums matter, and at
    // most two epochs coexist, so parity discriminates exactly.
    std::array<std::uint64_t, 2> epochInjected{};
    std::array<std::uint64_t, 2> epochRetired{};
    // Producer context of the event being dispatched (stamping + replay).
    std::uint32_t producer = 0;
    SimTime evTime = 0;
    std::uint64_t evSeq = 0;
    std::uint32_t subIdx = 0;
    std::vector<LeakRecord> leaks;
    std::vector<ObsRecord> obs;
    std::vector<SpscMailbox<MailboxEntry>> outbox;  // one per peer shard
    std::exception_ptr error;  // first exception thrown by this shard
  };

  // construction
  void buildShards();
  void buildSwitches();
  void buildNodes();

  int shardOfSwitch(SwitchId sw) const {
    return shardOfSwitch_[static_cast<std::size_t>(sw)];
  }
  int shardOfNode(NodeId n) const {
    return shardOfNode_[static_cast<std::size_t>(n)];
  }
  std::uint32_t producerOfSwitch(SwitchId sw) const {
    return 1u + static_cast<std::uint32_t>(sw);
  }
  std::uint32_t producerOfNode(NodeId n) const {
    return 1u + static_cast<std::uint32_t>(topo_.numSwitches()) +
           static_cast<std::uint32_t>(n);
  }
  std::uint64_t nextStamp(std::uint32_t producer) {
    return makeStamp(producer,
                     stampCounters_[static_cast<std::size_t>(producer)]++);
  }

  Packet& packetMut(PacketRef ref) {
    return shards_[ref >> kShardTagShift].pool.get(ref & kShardRefMask);
  }
  PacketRef allocPacket(Shard& sh) {
    return (static_cast<PacketRef>(sh.index) << kShardTagShift) |
           sh.pool.alloc();
  }
  void releasePacket(PacketRef ref) {
    shards_[ref >> kShardTagShift].pool.release(ref & kShardRefMask);
  }

  // event routing (fabric_run.cpp)
  /// Stamp with the shard's current producer and route a *link-crossing*
  /// event (kHeaderArrive / kCreditToSwitch) to the target switch's queue;
  /// foreign shards get it through the outbox mailbox.
  void pushFrom(Shard& sh, Event ev);
  /// Stamp and push an event that provably targets this shard (every kind
  /// except the two link-crossing ones: nodes ride with their attached
  /// switch). Skips the per-event shard lookup on the hot dispatch path.
  void pushLocal(Shard& sh, Event ev) {
    ev.seq = nextStamp(sh.producer);
    sh.queue.pushStamped(ev);
  }
  /// Coordinator-context push (producer 0): management actions, start(),
  /// run() re-arms, and the periodic chains. Only legal between windows.
  void pushCoord(Event ev);

  // windowed engine (fabric_run.cpp)
  void runWindows(const RunLimits& limits);
  void processShardWindow(Shard& sh, SimTime windowEnd);
  /// Mailbox drain + ledger harvest + observer replay + control checks at a
  /// window barrier; false = stop the run.
  bool postWindow(const RunLimits& limits);
  void drainMailboxes();
  void harvestLeaks();
  void replayObservers();
  /// Earliest pending event over every shard and the coordinator queue.
  SimTime nextEventTime();
  bool controlChecks(const RunLimits& limits);

  void dispatchShard(Shard& sh, const Event& ev);
  void dispatchCoord(const Event& ev);

  void notifyObserver(Shard& sh, ObsType type, const Packet& pkt);

  // event handlers (fabric_run.cpp)
  void handleHeaderArrive(Shard& sh, SwitchId sw, PortIndex port, VlIndex vl,
                          PacketRef ref);
  void handleCreditToSwitch(Shard& sh, SwitchId sw, PortIndex port,
                            VlIndex vl, int credits);
  void handleWireDebit(SwitchId sw, PortIndex port, VlIndex vl, int credits);
  void handleCreditToNode(Shard& sh, NodeId n, VlIndex vl, int credits);
  void handleNodeTryTx(Shard& sh, NodeId n);
  void handleNodeGenerate(Shard& sh, NodeId n);
  void handleNodeDeliver(Shard& sh, NodeId n, VlIndex vl, PacketRef ref);
  void handleWatchdog(std::uint32_t epoch);
  void handleCreditResync(std::uint32_t epoch);
  void handleInvariantCheck(std::uint32_t epoch);

  // credit scheduling (keeps the pending-credit ledger exact)
  void scheduleCreditToSwitch(Shard& sh, SwitchId sw, PortIndex port,
                              VlIndex vl, int credits, SimTime when);
  void scheduleCreditToNode(Shard& sh, NodeId n, VlIndex vl, int credits,
                            SimTime when);
  void returnCreditUpstream(Shard& sh, const SwitchInputPort& in, VlIndex vl,
                            int credits, SimTime when);
  /// Restore ledger entries due by now (or all of them when `force`).
  void applyResyncs(bool force);

  // traffic helpers
  PacketRef generatePacket(Shard& sh, NodeId src);
  void refillSaturationQueue(Shard& sh, NodeId n);
  void tryNodeTx(Shard& sh, NodeId n);
  void scheduleNodeTryTx(Shard& sh, NodeId n, SimTime when);

  // arbitration (fabric_arbiter.cpp)
  /// `sh == nullptr` means coordinator context (management plane, resync).
  void scheduleArb(Shard* sh, SwitchId sw, SimTime when);
  void arbitrate(Shard& sh, SwitchId sw);
  bool tryGrantFromInput(Shard& sh, SwitchId swId, PortIndex ip);

  struct Option {
    PortIndex port = kInvalidPort;
    VlIndex vl = 0;
    bool escape = false;
    int spareCredits = 0;
  };
  /// Feasible options right now, adaptive (minimal) entries first. When
  /// `earliestUnblock` is non-null (fast kernels), options blocked only by
  /// a busy output lower it to their busyUntil so the failed-grant memo
  /// knows when a retry could first succeed; options blocked only by
  /// missing credits set their output port's bit in `creditBlockMask` so a
  /// credit arrival at that port (and only such an arrival) clears the memo.
  int feasibleOptions(const SwitchModel& sw, PortIndex inPort,
                      const BufferedPacket& bp, SimTime now,
                      std::array<Option, kMaxRouteOptions + 1>& out,
                      SimTime* earliestUnblock = nullptr,
                      std::uint64_t* creditBlockMask = nullptr) const;
  /// Drop every input port's failed-grant memo on `sw` — used when grant
  /// feasibility changes for reasons the memo cannot attribute to a single
  /// output port (link fail/recover, SL-to-VL reprogramming).
  void clearArbMemos(SwitchId sw);
  const Option& chooseOption(SwitchId swId,
                             const std::array<Option, kMaxRouteOptions + 1>& opts,
                             int count);
  void grant(Shard& sh, SwitchId swId, PortIndex ip, VlIndex vl, int idx,
             const Option& opt);
  bool allOptionsDead(const SwitchModel& sw, const BufferedPacket& bp) const;
  void dropPacket(Shard& sh, SwitchId swId, PortIndex ip, VlIndex vl,
                  int idx);

  // congestion detection (src/congestion). Both hooks run only from
  // handlers with kernel-identical call sequences — grant() after the
  // credit debit, handleCreditToSwitch() after the credit add — so the
  // congestion state transitions (and the FECN marks they cause) are
  // bit-identical across kernels and thread counts.
  void congestionAfterDebit(Shard& sh, SwitchOutputPort& op, VlIndex vl);
  void congestionAfterCredit(Shard& sh, SwitchOutputPort& op, VlIndex vl);

  /// Pick the adaptive port committed at routing time
  /// (SelectionTiming::kAtRouting).
  PortIndex commitPortAtRouting(SwitchId swId, PortIndex inPort,
                                const PackedRouteOptions& options,
                                const Packet& pkt);

  Topology topo_;
  FabricParams params_;
  LidMapper lids_;
  /// Fast arbitration: consult the active-port/VL work lists instead of
  /// scanning every port buffer (identical grants either way). On for every
  /// kernel except the legacy-heap reference.
  bool fastArb_ = true;

  /// Fabric-wide input-buffer slot storage: one contiguous slab carved into
  /// per-(wired input port, VL) slices at build time, replacing the ~135k
  /// individual buffer allocations that dominated the dragonfly heap at
  /// scale. Declared before switches_ so the slices outlive the VlBuffers
  /// bound to them.
  SlabArena<BufferedPacket> bufferArena_;
  std::vector<SwitchModel> switches_;
  std::vector<NodeModel> nodes_;

  std::vector<Shard> shards_;
  std::vector<int> shardOfSwitch_;
  std::vector<int> shardOfNode_;
  EventQueue coordQueue_;
  std::uint64_t coordEvents_ = 0;
  /// Per-producer stamp counters (0 = coordinator, then switches, then
  /// nodes); each cell is written only by the thread owning its producer.
  std::vector<std::uint64_t> stampCounters_;
  /// True while worker threads may be inside a window: observer callbacks
  /// buffer for barrier replay instead of running inline.
  bool windowsActive_ = false;
  /// Window bounds / shutdown flag shared with the workers; plain members
  /// because every access is ordered by the epoch barrier.
  SimTime windowEnd_ = 0;
  bool runDone_ = false;

  ITrafficSource* traffic_ = nullptr;
  IDeliveryObserver* observer_ = nullptr;
  ILinkFaultModel* linkFaults_ = nullptr;
  IInvariantChecker* checker_ = nullptr;
  /// One RNG stream per node (traffic) and per switch (adaptive selection):
  /// each stream is consulted only by its owning entity's handlers, so the
  /// draw sequences are identical for every kernel and thread count.
  std::vector<Rng> nodeRngs_;
  std::vector<Rng> switchRngs_;

  /// Deterministic per-flow sequence stamps, keyed (src, dst). Each flow's
  /// counter is touched only from its source node's owning shard (the
  /// FlowTable threading contract).
  FlowTable<std::uint32_t> detSeqCounters_;

  /// Current injection epoch (live reconfiguration). Written only in
  /// coordinator context between windows, read by shards during windows;
  /// plain member because every access is ordered by the epoch barrier,
  /// exactly like windowEnd_.
  std::uint32_t injectionEpoch_ = 0;
  /// Injection gate for the drain-and-resweep baseline; same write/read
  /// discipline as injectionEpoch_.
  bool injectionPaused_ = false;

  SimTime now_ = 0;
  SimTime generationEnd_ = 0;
  bool started_ = false;
  bool stopRequested_ = false;
  bool deadlockSuspected_ = false;
  bool livePacketLimitHit_ = false;

  // --- window plan state (see the architecture note) ----------------------
  /// Params-derived window-width ceiling and the run-effective value (the
  /// latter possibly tightened by limitWindowCap; restored by reset()).
  SimTime windowCapBase_ = 1;
  SimTime windowCapEff_ = 1;
  /// Simulated time of the event whose handling is currently driving
  /// observer callbacks (-1 outside observer context). Written only from
  /// coordinator context — the inline notify path and barrier replay — so
  /// a requestStop() arriving through an observer can anchor the stop
  /// horizon to the triggering event's time.
  SimTime obsCtxTime_ = -1;
  /// Armed by an observer-context requestStop(): the run keeps processing
  /// events at or before this time, then stops. kTimeNever = no horizon.
  SimTime stopHorizon_ = kTimeNever;
  /// Deterministic proxy metrics (see the public accessors).
  std::uint64_t windowsExecuted_ = 0;
  std::uint64_t crossShardMessages_ = 0;
  std::uint64_t partitionCutLinks_ = 0;
  std::uint64_t partitionTotalLinks_ = 0;
  double partitionImbalance_ = 1.0;
  /// Scratch for the batched mailbox drain (coordinator only).
  std::vector<Event> drainScratch_;

  // watchdog state; the epoch invalidates watchdog chains left in the queue
  // by earlier run() calls, so multi-phase runs (fault campaigns) keep one
  // live chain and exact stall semantics.
  SimTime watchdogPeriod_ = 0;
  int watchdogStallLimit_ = 0;
  std::uint64_t watchdogLastDelivered_ = 0;
  int watchdogStallCount_ = 0;
  std::uint32_t watchdogEpoch_ = 0;

  // Credit-resync and invariant-check chains. Epoch-guarded like the
  // watchdog so at most one chain of each is ever live, but — unlike the
  // per-run stall watchdog — a live chain PERSISTS across run() calls: a
  // fault campaign bounds its run slices by the next fault/sweep/reconfig
  // action, routinely closer than a period, and re-arming per slice would
  // park the first firing past every slice end so the chain never runs.
  SimTime resyncPeriod_ = 0;
  std::uint32_t resyncEpoch_ = 0;
  bool resyncChainLive_ = false;
  SimTime checkPeriod_ = 0;
  std::uint32_t checkEpoch_ = 0;
  bool checkChainLive_ = false;

  /// Coordinator-side leak ledger, merged from the shard ledgers at every
  /// window barrier, globally sorted by triggering-event stamp so resync
  /// repairs run in an order independent of the shard count.
  std::vector<LeakRecord> leakLedger_;
  std::uint64_t creditsResynced_ = 0;

  std::vector<FailedLink> failedLinks_;
};

}  // namespace ibadapt
