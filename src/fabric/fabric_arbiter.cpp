//
// Switch arbitration: event-driven realization of the paper's §4.3/§4.4
// output-port selection with credit gating.
//
// The pass is input-driven: input ports are scanned in round-robin order;
// each free input port offers its crossbar-visible buffer heads (adaptive
// head and, when allowed, escape head); for the first routable candidate the
// feasible routing options are computed from live credit state:
//   * an adaptive (minimal) option is feasible when the downstream adaptive
//     queue has credits for the whole packet and the output is idle;
//   * the escape option is feasible when the downstream VL has credits for
//     the whole packet (the packet may land in either logical queue);
// minimal options are preferred over the escape option (livelock rule),
// and the configured criterion breaks ties among adaptive options.
//
// Arbitration only ever runs on the shard owning the switch, so all state
// it touches — buffers, credits, memos, the per-switch selection RNG — is
// thread-private; the only shard-crossing side effects (downstream header
// arrival, upstream credit return) go through pushFrom's mailbox routing.
//
#include <stdexcept>

#include "core/credits.hpp"
#include "fabric/fabric.hpp"

namespace ibadapt {

void Fabric::scheduleArb(Shard* sh, SwitchId sw, SimTime when) {
  SwitchModel& s = switches_[static_cast<std::size_t>(sw)];
  if (s.lastArbScheduled == when) return;  // exact-duplicate suppression
  s.lastArbScheduled = when;
  Event ev{when, 0, EventKind::kArbitrate, static_cast<std::uint32_t>(sw), 0,
           0};
  if (sh != nullptr) {
    pushLocal(*sh, ev);  // a switch only re-arms its own arbitration
  } else {
    pushCoord(ev);  // management plane / resync: between windows
  }
}

void Fabric::clearArbMemos(SwitchId sw) {
  for (auto& ip : switches_[static_cast<std::size_t>(sw)].in) {
    ip.retryAt = 0;
  }
}

void Fabric::arbitrate(Shard& sh, SwitchId swId) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  const int numPorts = topo_.portsPerSwitch();
  int firstGranted = -1;
  for (int i = 0; i < numPorts; ++i) {
    const PortIndex ip = static_cast<PortIndex>((sw.rrInput + i) % numPorts);
    const SwitchInputPort& in = sw.in[static_cast<std::size_t>(ip)];
    // Fast kernel: skip ports that provably cannot grant — nothing
    // buffered, or a failed pass whose blockers (earliest routeReady /
    // output busyUntil, credit state on the blocking outputs) haven't
    // moved. Same outcome as the legacy full scan because failed passes
    // have no side effects.
    if (fastArb_) {
      if (in.buffered == 0) continue;
      if (sh.now < in.retryAt) continue;
    }
    if (in.upKind == PeerKind::kUnused) continue;
    if (in.busyUntil > sh.now) continue;
    if (tryGrantFromInput(sh, swId, ip) && firstGranted < 0) {
      firstGranted = ip;
    }
  }
  if (firstGranted >= 0) {
    sw.rrInput = (firstGranted + 1) % numPorts;
  }
}

bool Fabric::tryGrantFromInput(Shard& sh, SwitchId swId, PortIndex ip) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  SwitchInputPort& in = sw.in[static_cast<std::size_t>(ip)];
  const int vlBase = params_.vlSelection == VlSelection::kRoundRobin
                         ? in.rrVl
                         : 0;
  // Fast kernel: earliest future instant at which any blocked candidate
  // could become grantable (kTimeNever when only credits can unblock it),
  // and the set of output ports whose credit arrivals could unblock one.
  SimTime retryAt = kTimeNever;
  std::uint64_t blockMask = 0;
  for (int vlOff = 0; vlOff < params_.numVls; ++vlOff) {
    const VlIndex vl =
        static_cast<VlIndex>((vlBase + vlOff) % params_.numVls);
    if (fastArb_ && (in.vlOccupied & (1u << vl)) == 0) continue;
    VlBuffer& buf = in.vls[static_cast<std::size_t>(vl)];
    const auto cands = fastArb_ ? buf.candidateHeadsCached(params_.orderRule)
                                : buf.candidateHeads(params_.orderRule);
    for (int k = 0; k < cands.count; ++k) {
      const int idx = cands.index[static_cast<std::size_t>(k)];
      const BufferedPacket& bp = buf.at(idx);
      if (bp.routeReady > sh.now) {
        if (bp.routeReady < retryAt) retryAt = bp.routeReady;
        continue;
      }
      std::array<Option, kMaxRouteOptions + 1> options;
      const int count = feasibleOptions(sw, ip, bp, sh.now, options,
                                        fastArb_ ? &retryAt : nullptr,
                                        fastArb_ ? &blockMask : nullptr);
      if (count == 0) {
        if (allOptionsDead(sw, bp)) {
          // Every route points at a failed link: discard (IBA switches
          // time such packets out) and rescan with fresh indices.
          dropPacket(sh, swId, ip, vl, idx);
          return tryGrantFromInput(sh, swId, ip);
        }
        continue;
      }
      const Option opt = chooseOption(swId, options, count);
      grant(sh, swId, ip, vl, idx, opt);
      in.rrVl = (vl + 1) % params_.numVls;
      return true;  // input-port crossbar connection now busy
    }
  }
  if (fastArb_) {
    in.retryAt = retryAt;
    in.blockPorts = blockMask;
  }
  return false;
}

int Fabric::feasibleOptions(const SwitchModel& sw, PortIndex inPort,
                            const BufferedPacket& bp, SimTime now,
                            std::array<Option, kMaxRouteOptions + 1>& out,
                            SimTime* earliestUnblock,
                            std::uint64_t* creditBlockMask) const {
  const Packet& pkt = packet(bp.packet);
  int count = 0;

  const bool adaptiveEligible = bp.options.adaptiveRequested &&
                                sw.adaptiveCapable &&
                                bp.options.numAdaptive > 0;
  if (adaptiveEligible) {
    const bool committed = bp.committedPort != kInvalidPort;
    for (int i = 0; i < bp.options.numAdaptive; ++i) {
      const PortIndex p = bp.options.adaptivePorts[static_cast<std::size_t>(i)];
      if (committed && p != bp.committedPort) continue;
      const SwitchOutputPort& op = sw.out[static_cast<std::size_t>(p)];
      if (op.downKind == PeerKind::kUnused) continue;
      if (op.busyUntil > now) {
        if (earliestUnblock != nullptr && op.busyUntil < *earliestUnblock) {
          *earliestUnblock = op.busyUntil;
        }
        continue;
      }
      const VlIndex ovl = sw.slToVl.vl(inPort, p, pkt.sl);
      // Downstream CA buffers have no escape split; inter-switch links
      // reserve the escape queue.
      const int reserve = op.downKind == PeerKind::kNode
                              ? 0
                              : params_.escapeReserveCredits;
      const int avail = adaptiveCredits(
          op.credits[static_cast<std::size_t>(ovl)], reserve);
      if (avail >= pkt.credits) {
        out[static_cast<std::size_t>(count++)] =
            Option{p, ovl, false, avail - pkt.credits};
      } else if (creditBlockMask != nullptr) {
        *creditBlockMask |= 1ull << (p & 63);
      }
    }
  }

  // Escape option: usable by deterministic packets always and by adaptive
  // packets as the FA fallback; needs total credits for the whole packet.
  const PortIndex p0 = bp.options.escapePort;
  if (p0 != kInvalidPort) {
    const SwitchOutputPort& op = sw.out[static_cast<std::size_t>(p0)];
    if (op.downKind != PeerKind::kUnused) {
      if (op.busyUntil > now) {
        if (earliestUnblock != nullptr && op.busyUntil < *earliestUnblock) {
          *earliestUnblock = op.busyUntil;
        }
      } else {
        const VlIndex ovl = sw.slToVl.vl(inPort, p0, pkt.sl);
        const int avail = op.credits[static_cast<std::size_t>(ovl)];
        if (avail >= pkt.credits) {
          out[static_cast<std::size_t>(count++)] =
              Option{p0, ovl, true, avail - pkt.credits};
        } else if (creditBlockMask != nullptr) {
          *creditBlockMask |= 1ull << (p0 & 63);
        }
      }
    }
  }
  return count;
}

const Fabric::Option& Fabric::chooseOption(
    SwitchId swId, const std::array<Option, kMaxRouteOptions + 1>& opts,
    int count) {
  // Escape, when feasible, is always the last entry; minimal (adaptive)
  // options take precedence over it.
  const int adaptiveCount =
      count - (opts[static_cast<std::size_t>(count - 1)].escape ? 1 : 0);
  if (adaptiveCount <= 0) return opts[static_cast<std::size_t>(count - 1)];

  // Congested-port demotion (src/congestion): restrict the adaptive choice
  // to options whose output port/VL is not currently congested, so FA stops
  // feeding an established congestion tree. When every adaptive option is
  // congested the full set stays eligible — demotion never forces escape.
  // The candidate list is rebuilt here (not in feasibleOptions) so the
  // selection keeps exactly one RNG draw per forward under kRandom and the
  // read-only feasibility scan stays kernel-agnostic.
  std::array<int, kMaxRouteOptions + 1> cand;
  int candCount = adaptiveCount;
  for (int i = 0; i < adaptiveCount; ++i) cand[static_cast<std::size_t>(i)] = i;
  if (params_.congestion.enabled && params_.congestion.demoteCongestedPorts) {
    const SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
    int kept = 0;
    for (int i = 0; i < adaptiveCount; ++i) {
      const Option& o = opts[static_cast<std::size_t>(i)];
      const auto& congested =
          sw.out[static_cast<std::size_t>(o.port)].congested;
      if (static_cast<std::size_t>(o.vl) >= congested.size() ||
          congested[static_cast<std::size_t>(o.vl)] == 0) {
        cand[static_cast<std::size_t>(kept++)] = i;
      }
    }
    if (kept > 0) candCount = kept;
  }

  switch (params_.selectionCriterion) {
    case SelectionCriterion::kStatic:
      return opts[static_cast<std::size_t>(cand[0])];
    case SelectionCriterion::kRandom:
      // The per-switch stream keeps kRandom draws independent of how other
      // switches interleave (i.e. of the shard count).
      return opts[static_cast<std::size_t>(
          cand[switchRngs_[static_cast<std::size_t>(swId)].uniformIndex(
              static_cast<std::uint64_t>(candCount))])];
    case SelectionCriterion::kCreditAware:
    default: {
      int best = cand[0];
      for (int i = 1; i < candCount; ++i) {
        const int j = cand[static_cast<std::size_t>(i)];
        if (opts[static_cast<std::size_t>(j)].spareCredits >
            opts[static_cast<std::size_t>(best)].spareCredits) {
          best = j;
        }
      }
      return opts[static_cast<std::size_t>(best)];
    }
  }
}

void Fabric::congestionAfterDebit(Shard& sh, SwitchOutputPort& op,
                                  VlIndex vl) {
  const std::size_t v = static_cast<std::size_t>(vl);
  if (v >= op.congested.size()) return;
  const int credits = op.credits[v];
  if (op.congested[v] == 0) {
    const int enter = static_cast<int>(params_.congestion.enterFreeFraction *
                                       op.creditsMax[v]);
    if (credits <= enter) {
      op.congested[v] = 1;
      op.congSince[v] = sh.now;
      ++sh.counters.congOnsets;
    }
  }
  if (credits == 0 && op.stallSince[v] < 0) op.stallSince[v] = sh.now;
}

void Fabric::congestionAfterCredit(Shard& sh, SwitchOutputPort& op,
                                   VlIndex vl) {
  const std::size_t v = static_cast<std::size_t>(vl);
  if (v >= op.congested.size()) return;
  const int credits = op.credits[v];
  if (op.stallSince[v] >= 0 && credits > 0) {
    sh.counters.zeroCreditNs +=
        static_cast<std::uint64_t>(sh.now - op.stallSince[v]);
    op.stallSince[v] = -1;
  }
  if (op.congested[v] != 0 &&
      static_cast<double>(credits) >=
          params_.congestion.exitFreeFraction * op.creditsMax[v]) {
    sh.counters.congestedPortNs +=
        static_cast<std::uint64_t>(sh.now - op.congSince[v]);
    op.congested[v] = 0;
  }
}

bool Fabric::allOptionsDead(const SwitchModel& sw,
                            const BufferedPacket& bp) const {
  const bool adaptiveEligible = bp.options.adaptiveRequested &&
                                sw.adaptiveCapable &&
                                bp.options.numAdaptive > 0;
  if (adaptiveEligible) {
    for (int i = 0; i < bp.options.numAdaptive; ++i) {
      const PortIndex p = bp.options.adaptivePorts[static_cast<std::size_t>(i)];
      if (sw.out[static_cast<std::size_t>(p)].downKind != PeerKind::kUnused) {
        return false;
      }
    }
  }
  const PortIndex p0 = bp.options.escapePort;
  return p0 == kInvalidPort ||
         sw.out[static_cast<std::size_t>(p0)].downKind == PeerKind::kUnused;
}

void Fabric::dropPacket(Shard& sh, SwitchId swId, PortIndex ip, VlIndex vl,
                        int idx) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  SwitchInputPort& in = sw.in[static_cast<std::size_t>(ip)];
  VlBuffer& buf = in.vls[static_cast<std::size_t>(vl)];
  const BufferedPacket bp = buf.at(idx);
  const Packet& pkt = packet(bp.packet);
  buf.remove(idx);
  --in.buffered;
  if (buf.empty()) in.vlOccupied &= ~(1u << vl);
  in.retryAt = 0;  // buffer content changed: failed-grant memo stale
  ++sh.counters.dropped;
  ++sh.epochRetired[pkt.epoch & 1];
  // Free the buffer space upstream once the tail can no longer be arriving.
  const SimTime creditTime =
      sh.now + static_cast<SimTime>(pkt.sizeBytes) * params_.nsPerByte +
      params_.linkPropagationNs;
  if (in.upKind != PeerKind::kUnused) {
    returnCreditUpstream(sh, in, vl, pkt.credits, creditTime);
  }
  releasePacket(bp.packet);
}

PortIndex Fabric::commitPortAtRouting(SwitchId swId, PortIndex inPort,
                                      const PackedRouteOptions& options,
                                      const Packet& pkt) {
  const SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  // SelectionTiming::kAtRouting: pick the preferred adaptive option using
  // the (possibly stale) credit snapshot at table-access time. The escape
  // fallback stays available at arbitration so deadlock freedom holds.
  switch (params_.selectionCriterion) {
    case SelectionCriterion::kStatic:
      return options.adaptivePorts[0];
    case SelectionCriterion::kRandom:
      return options.adaptivePorts[
          switchRngs_[static_cast<std::size_t>(swId)].uniformIndex(
              static_cast<std::uint64_t>(options.numAdaptive))];
    case SelectionCriterion::kCreditAware:
    default: {
      int best = 0;
      int bestCredits = -1;
      for (int i = 0; i < options.numAdaptive; ++i) {
        const PortIndex p = options.adaptivePorts[static_cast<std::size_t>(i)];
        const SwitchOutputPort& op = sw.out[static_cast<std::size_t>(p)];
        if (op.downKind == PeerKind::kUnused) continue;
        const VlIndex ovl = sw.slToVl.vl(inPort, p, pkt.sl);
        const int reserve = op.downKind == PeerKind::kNode
                                ? 0
                                : params_.escapeReserveCredits;
        const int avail = adaptiveCredits(
            op.credits[static_cast<std::size_t>(ovl)], reserve);
        if (avail > bestCredits) {
          bestCredits = avail;
          best = i;
        }
      }
      return options.adaptivePorts[static_cast<std::size_t>(best)];
    }
  }
}

void Fabric::grant(Shard& sh, SwitchId swId, PortIndex ip, VlIndex vl,
                   int idx, const Option& opt) {
  SwitchModel& sw = switches_[static_cast<std::size_t>(swId)];
  SwitchInputPort& in = sw.in[static_cast<std::size_t>(ip)];
  VlBuffer& buf = in.vls[static_cast<std::size_t>(vl)];
  const BufferedPacket bp = buf.at(idx);
  Packet& pkt = packetMut(bp.packet);
  SwitchOutputPort& op = sw.out[static_cast<std::size_t>(opt.port)];

  const SimTime txEnd =
      sh.now + static_cast<SimTime>(pkt.sizeBytes) * params_.nsPerByte;
  op.busyUntil = txEnd;
  in.busyUntil = txEnd;
  op.bytesSent += static_cast<std::uint64_t>(pkt.sizeBytes);
  op.credits[static_cast<std::size_t>(opt.vl)] -= pkt.credits;
  op.wireCredits[static_cast<std::size_t>(opt.vl)] += pkt.credits;
  if (op.credits[static_cast<std::size_t>(opt.vl)] < 0) {
    throw std::logic_error("Fabric::grant: negative credits (bug)");
  }
  if (params_.congestion.enabled) {
    // Detection runs at the grant (the only place credits are debited), and
    // packets forwarded through a congested port/VL carry the FECN mark to
    // the destination CA. Must happen before the pushFrom calls below — a
    // cross-shard push moves the packet out of this shard's pool.
    congestionAfterDebit(sh, op, opt.vl);
    if (op.congested[static_cast<std::size_t>(opt.vl)] != 0 && !pkt.fecn) {
      pkt.fecn = true;
      ++sh.counters.fecnMarked;
    }
  }
  buf.remove(idx);
  --in.buffered;
  if (buf.empty()) in.vlOccupied &= ~(1u << vl);
  in.retryAt = 0;  // buffer content changed: failed-grant memo stale

  // Credits for this input buffer return to the upstream holder when the
  // packet's tail has left, plus wire latency for the credit update.
  returnCreditUpstream(sh, in, vl, pkt.credits,
                       txEnd + params_.linkPropagationNs);

  ++pkt.hops;
  if (opt.escape) {
    ++sh.counters.escapeForwards;
    if (pkt.adaptive) ++pkt.escapeHops;
  } else {
    ++sh.counters.adaptiveForwards;
  }

  if (op.downKind == PeerKind::kSwitch) {
    // This port's wire ledger is debited by a self-targeted event at header
    // arrival time, so the write stays on this shard whichever shard owns
    // the downstream switch. Scheduled before the header event — fixed
    // order, fixed stamps.
    pushLocal(sh, Event{sh.now + params_.linkPropagationNs, 0,
                        EventKind::kWireDebit,
                        static_cast<std::uint32_t>(swId),
                        packPortVl(opt.port, opt.vl),
                        static_cast<std::uint32_t>(pkt.credits)});
    // Virtual cut-through: the downstream header arrives one wire delay
    // after transmission starts. NOTE: a cross-shard push moves the packet
    // out of this pool — `pkt` must not be touched after this call.
    pushFrom(sh, Event{sh.now + params_.linkPropagationNs, 0,
                       EventKind::kHeaderArrive,
                       static_cast<std::uint32_t>(op.downId),
                       packPortVl(op.downPort, opt.vl), bp.packet});
  } else {
    // Tail reaches the CA one wire delay after serialization completes.
    // (CAs ride with this switch's shard; the ledger debit happens inline
    // at delivery.)
    pushLocal(sh, Event{txEnd + params_.linkPropagationNs, 0,
                        EventKind::kNodeDeliver,
                        static_cast<std::uint32_t>(op.downId),
                        static_cast<std::uint32_t>(opt.vl), bp.packet});
  }

  // The input and output ports free up at txEnd; re-arm arbitration.
  scheduleArb(&sh, swId, txEnd);
}

}  // namespace ibadapt
