#pragma once
//
// Packet record and pool. Packets are referenced by 32-bit pool indices in
// the event payloads; the pool recycles slots so long runs stay allocation
// free in steady state.
//
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ibadapt {

using PacketRef = std::uint32_t;

/// Sentinel returned when a traffic source declines to generate (idle wake).
inline constexpr PacketRef kInvalidPacketRef = 0xFFFFFFFFu;

struct Packet {
  NodeId src = kInvalidId;
  NodeId dst = kInvalidId;
  Lid dlid = kInvalidLid;
  std::int32_t sizeBytes = 0;
  std::int32_t credits = 0;
  std::uint8_t sl = 0;
  bool adaptive = false;
  SimTime genTime = 0;     // created at the source host
  SimTime injectTime = 0;  // first byte enters the fabric
  std::uint16_t hops = 0;        // switch traversals
  std::uint16_t escapeHops = 0;  // hops forwarded through the escape option
  std::uint32_t detSeq = 0;      // per-(src,dst) order stamp (deterministic)

  /// Fabric reconfiguration epoch stamped at injection: every switch on the
  /// path forwards this packet with the routing-table version matching the
  /// stamp, so one packet never mixes tables from two epochs (live
  /// reconfiguration, src/subnet/reconfig).
  std::uint32_t epoch = 0;

  // Host message-layer metadata (0/0/0 when the packet is not a segment).
  std::uint32_t msgId = 0;
  std::uint16_t segIndex = 0;
  std::uint16_t segCount = 0;

  /// End-to-end reliability sequence number, per (src, dst) flow, assigned
  /// by the host ReliableTransport (0 = untracked traffic). Retransmitted
  /// copies carry the original sequence so receivers can deduplicate.
  std::uint32_t e2eSeq = 0;
  /// True when this copy is a host-level retransmission. Carried in the
  /// packet (not transport-side state) so observer chains can classify the
  /// copy wherever and whenever the callback runs — the parallel kernel
  /// replays observers at epoch barriers, long after makePacket returned.
  bool retransmit = false;
  /// First transmission time of this packet's e2e sequence (== genTime for
  /// fresh copies); lets the receive side compute end-to-end latency without
  /// reaching into the sender's retransmit ledger.
  SimTime e2eFirstSent = 0;
  /// Forward explicit congestion notification: set by a switch whose chosen
  /// output port/VL is in the congested state (src/congestion). Travels to
  /// the destination CA, whose transport echoes it back to the source as a
  /// CNP-style notification.
  bool fecn = false;
};

class PacketPool {
 public:
  /// alloc/release are on the kernel hot path (one pair per packet
  /// lifetime), so they live in the header for inlining.
  PacketRef alloc() {
    if (!free_.empty()) {
      const PacketRef ref = free_.back();
      free_.pop_back();
      slots_[ref] = Packet{};
      return ref;
    }
    slots_.emplace_back();
    return static_cast<PacketRef>(slots_.size() - 1);
  }

  void release(PacketRef ref) { free_.push_back(ref); }

  /// Drop every slot (live or free) but keep both vectors' capacity — the
  /// warm-fabric reset path. Afterwards alloc() hands out index 0, 1, ...
  /// exactly like a freshly constructed pool, so re-runs stay bit-identical.
  void clear() {
    slots_.clear();
    free_.clear();
  }

  /// Pre-size both the slot and free vectors so steady-state runs never
  /// reallocate mid-simulation.
  void reserve(std::size_t n);

  Packet& get(PacketRef ref) { return slots_[ref]; }
  const Packet& get(PacketRef ref) const { return slots_[ref]; }

  std::size_t liveCount() const { return slots_.size() - free_.size(); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<Packet> slots_;
  std::vector<PacketRef> free_;
};

}  // namespace ibadapt
