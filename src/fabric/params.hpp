#pragma once
//
// Structural and timing parameters of the modeled IBA fabric. Defaults are
// the paper's evaluation constants (§5.1).
//
#include <stdexcept>
#include <vector>

#include "congestion/congestion.hpp"
#include "core/selection.hpp"
#include "sim/event_queue.hpp"
#include "topology/partition.hpp"
#include "util/types.hpp"

namespace ibadapt {

/// How a switch input port picks among its VLs when several hold routable
/// packets (a simplified IBA VLArbitration).
enum class VlSelection : std::uint8_t {
  kRoundRobin,     // fair rotation (default)
  kFixedPriority,  // lower VL index always wins (VL0 = highest priority)
};

struct FabricParams {
  // --- virtual lanes & buffering -------------------------------------
  int numVls = 1;  // data VLs (IBA supports up to 16)
  /// Credits (64 B units) per VL per input buffer: C_max. Default 8 = 512 B,
  /// so each half of the split buffer holds one 256 B MTU as §4.4 requires.
  int bufferCredits = 8;
  /// Escape queue size C0 in credits (paper: C_max / 2).
  int escapeReserveCredits = 4;
  /// escapeReserveCredits == 0 voids the paper's deadlock-freedom
  /// precondition (§4.4: each half of the split buffer must hold one full
  /// MTU, so the escape sub-network can always make progress). validate()
  /// rejects it unless this flag is set explicitly — then the run is only
  /// safe if something else (e.g. the invariant watchdog in kAbort mode)
  /// stands guard against the resulting deadlocks.
  bool allowUnsafeSplit = false;
  /// CA receive buffer, credits per VL.
  int caRecvCredits = 16;

  // --- timing (paper §5.1) --------------------------------------------
  SimTime routingDelayNs = 100;  // table access + arbitration + crossbar
  SimTime linkPropagationNs = 100;  // 20 m copper at 5 ns/m
  int nsPerByte = 4;  // 1X link: 2.5 Gbps signal, 8b/10b => 2.0 Gbps data

  // --- the paper's mechanism -------------------------------------------
  /// Routing options per destination = forwarding-table banks (power of 2).
  int numOptions = 2;
  /// LID Mask Control: 2^lmc addresses per CA port; needs 2^lmc >= numOptions.
  int lmc = 1;
  /// Switches expose adaptive capability at all (false = stock IBA switches:
  /// the tables are programmed identically but only the escape option is
  /// ever offered).
  bool adaptiveSwitches = true;
  /// Optional per-switch override for mixed fabrics (§4.2): empty = every
  /// switch follows `adaptiveSwitches`.
  std::vector<bool> adaptiveSwitchMask;

  SelectionTiming selectionTiming = SelectionTiming::kAtArbitration;
  SelectionCriterion selectionCriterion = SelectionCriterion::kCreditAware;
  EscapeOrderRule orderRule = EscapeOrderRule::kPaperStrict;
  VlSelection vlSelection = VlSelection::kRoundRobin;

  /// Seed for the (only) stochastic switch behavior: kRandom selection.
  std::uint64_t selectionSeed = 0x5eedULL;

  /// Switch-side congestion detection (hysteresis FECN marking, optional
  /// congested-port demotion in the adaptive selection). Off by default.
  CongestionDetectSpec congestion;

  /// Discrete-event kernel. kCalendar (default) is the fast indexed bucket
  /// queue plus active-port/VL arbitration work lists; kLegacyHeap is the
  /// seed binary-heap kernel with full port scans, kept as a bit-exact
  /// reference; kParallel shards switches and CAs across `threads` worker
  /// threads in conservative-lookahead epochs. All three produce identical
  /// event traces and SimResults (tests/kernel_equivalence_test.cpp),
  /// differing only in speed.
  SimKernel kernel = SimKernel::kCalendar;

  /// Worker threads for SimKernel::kParallel (ignored by the sequential
  /// kernels). The fabric clamps this to the switch count, and falls back
  /// to one shard when linkPropagationNs == 0 (no conservative lookahead).
  /// Results are bit-identical for every value.
  int threads = 1;

  /// Switch->shard assignment for SimKernel::kParallel. Results are
  /// bit-identical for every strategy; the choice only moves the
  /// cross-shard mailbox traffic (topology/partition.hpp).
  PartitionStrategy partition = PartitionStrategy::kTopology;

  /// Hard ceiling on the width of a conservative-lookahead window, in ns.
  /// 0 (default) = auto: 8 x max(1, linkPropagationNs). Windows are usually
  /// bounded by the per-shard-pair link lookahead anyway; the cap is what
  /// bounds them when no cross-shard edge constrains the plan (sequential
  /// kernels, shards with no cut links), and it is the quantity the stop
  /// horizon adds to the stop-triggering event time — so it must stay small
  /// enough that a run never overshoots a transport's ack delay (the engine
  /// additionally clamps the effective cap to the attached transport's
  /// ackDelayNs at run time).
  SimTime windowCapNs = 0;

  void validate() const {
    if (numVls < 1 || numVls > 15) {
      throw std::invalid_argument("FabricParams: numVls in [1,15]");
    }
    if (bufferCredits < 1 || escapeReserveCredits < 0 ||
        escapeReserveCredits > bufferCredits) {
      throw std::invalid_argument("FabricParams: buffer/escape credits");
    }
    if (escapeReserveCredits == 0 && !allowUnsafeSplit) {
      throw std::invalid_argument(
          "FabricParams: escapeReserveCredits == 0 removes the escape "
          "queue and with it the deadlock-freedom guarantee (paper §4.4); "
          "set allowUnsafeSplit to run anyway");
    }
    if (caRecvCredits < 1) {
      throw std::invalid_argument("FabricParams: caRecvCredits");
    }
    if (numOptions < 1 || (numOptions & (numOptions - 1)) != 0) {
      throw std::invalid_argument("FabricParams: numOptions must be 2^k");
    }
    if ((1 << lmc) < numOptions) {
      throw std::invalid_argument("FabricParams: 2^lmc < numOptions");
    }
    if (nsPerByte < 1 || routingDelayNs < 0 || linkPropagationNs < 0) {
      throw std::invalid_argument("FabricParams: timing");
    }
    if (threads < 1) {
      throw std::invalid_argument("FabricParams: threads >= 1");
    }
    if (windowCapNs < 0) {
      throw std::invalid_argument("FabricParams: windowCapNs >= 0");
    }
    congestion.validate();
  }
};

}  // namespace ibadapt
