#pragma once
//
// Callback interfaces decoupling the fabric engine from traffic generation
// and measurement. Implementations live in src/traffic and src/stats.
//
#include "fabric/packet.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ibadapt {

/// Supplies packets for every end node. Called from inside the event loop;
/// implementations must be deterministic given the Rng stream.
class ITrafficSource {
 public:
  virtual ~ITrafficSource() = default;

  struct Spec {
    NodeId dst = kInvalidId;
    int sizeBytes = 0;
    bool adaptive = false;
    std::uint8_t sl = 0;
    /// >= 0 selects an explicit address within the destination's LID block
    /// (source-multipath baseline); -1 derives the DLID from `adaptive`.
    int pathOffset = -1;
    /// Message-layer segment metadata (copied into the packet verbatim).
    std::uint32_t msgId = 0;
    std::uint16_t segIndex = 0;
    std::uint16_t segCount = 0;
    /// End-to-end reliability sequence (host ReliableTransport; 0 = none).
    std::uint32_t e2eSeq = 0;
  };

  /// Destination / size / class of the next packet from `src`. A source may
  /// decline to send at this wake by returning a Spec with
  /// `dst == kInvalidId` (used by the reliable transport for retransmit
  /// timers that were satisfied before they fired); the generation chain
  /// continues via nextGenTime as usual.
  virtual Spec makePacket(NodeId src, Rng& rng) = 0;

  /// Open loop: absolute time of node's first generation (>= 0).
  virtual SimTime firstGenTime(NodeId node, Rng& rng) = 0;

  /// Open loop: next generation time strictly after `now`.
  virtual SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) = 0;

  /// Saturation mode: sources are always backlogged; generation events are
  /// replaced by refilling each node's queue up to `saturationQueueCap()`.
  virtual bool saturationMode() const = 0;
  virtual int saturationQueueCap() const { return 4; }
};

/// Observes packet lifecycle milestones for measurement.
class IDeliveryObserver {
 public:
  virtual ~IDeliveryObserver() = default;
  virtual void onGenerated(const Packet& pkt, SimTime now) = 0;
  virtual void onInjected(const Packet& pkt, SimTime now) = 0;
  virtual void onDelivered(const Packet& pkt, SimTime now) = 0;
};

}  // namespace ibadapt
