#pragma once
//
// Callback interfaces decoupling the fabric engine from traffic generation
// and measurement. Implementations live in src/traffic and src/stats.
//
#include "fabric/packet.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ibadapt {

/// Supplies packets for every end node. Called from inside the event loop;
/// implementations must be deterministic given the Rng stream. The fabric
/// passes a per-node Rng, and under SimKernel::kParallel these calls run on
/// the shard thread owning `src`/`node` — so any mutable state must be
/// per-node (cross-node shared mutable state would race between shards).
/// Pure per-call state (reads of immutable config) is always fine.
class ITrafficSource {
 public:
  virtual ~ITrafficSource() = default;

  struct Spec {
    NodeId dst = kInvalidId;
    int sizeBytes = 0;
    bool adaptive = false;
    std::uint8_t sl = 0;
    /// >= 0 selects an explicit address within the destination's LID block
    /// (source-multipath baseline); -1 derives the DLID from `adaptive`.
    int pathOffset = -1;
    /// Message-layer segment metadata (copied into the packet verbatim).
    std::uint32_t msgId = 0;
    std::uint16_t segIndex = 0;
    std::uint16_t segCount = 0;
    /// End-to-end reliability sequence (host ReliableTransport; 0 = none).
    std::uint32_t e2eSeq = 0;
    /// Host-level retransmission marker + first-transmission time (see the
    /// matching Packet fields in fabric/packet.hpp).
    bool retransmit = false;
    SimTime e2eFirstSent = 0;
  };

  /// Destination / size / class of the next packet from `src`. A source may
  /// decline to send at this wake by returning a Spec with
  /// `dst == kInvalidId` (used by the reliable transport for retransmit
  /// timers that were satisfied before they fired); the generation chain
  /// continues via nextGenTime as usual.
  virtual Spec makePacket(NodeId src, Rng& rng) = 0;

  /// Open loop: absolute time of node's first generation (>= 0).
  virtual SimTime firstGenTime(NodeId node, Rng& rng) = 0;

  /// Open loop: next generation time strictly after `now`.
  virtual SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) = 0;

  /// Saturation mode: sources are always backlogged; generation events are
  /// replaced by refilling each node's queue up to `saturationQueueCap()`.
  virtual bool saturationMode() const = 0;
  virtual int saturationQueueCap() const { return 4; }

  /// Packets generated upstream but deliberately held back from the fabric
  /// (source-side congestion throttling). The invariant watchdog consults
  /// this to distinguish throttle-induced idleness from deadlock. Plain
  /// generators return 0.
  virtual std::uint64_t throttledHeld() const { return 0; }
};

/// Observes packet lifecycle milestones for measurement. Callbacks always
/// run on the coordinating thread in global (event time, event stamp, call
/// ordinal) order: the sequential kernels call inline, the parallel kernel
/// buffers per shard and replays at each epoch barrier — same order, same
/// floating-point accumulation, so observers need no synchronization.
class IDeliveryObserver {
 public:
  virtual ~IDeliveryObserver() = default;
  virtual void onGenerated(const Packet& pkt, SimTime now) = 0;
  virtual void onInjected(const Packet& pkt, SimTime now) = 0;
  virtual void onDelivered(const Packet& pkt, SimTime now) = 0;
};

/// Transient link-fault model consulted by the fabric on every link hop.
/// All randomness must be drawn inside these calls, which happen at event
/// handlers (identical across SimKernel choices), never from arbitration
/// scan paths (whose call counts differ between kernels) — that keeps fault
/// runs bit-identical under kCalendar, kLegacyHeap, and kParallel.
///
/// `lane` identifies the *receiving entity* of the hop: the switch id for
/// hops terminating at a switch input port or credit return, and
/// numSwitches + nodeId for final CA deliveries. Each lane is only ever
/// consulted by the shard that owns its entity, so implementations keep one
/// RNG stream (and stats cell) per lane and stay both thread-safe and
/// bit-identical for every thread count.
class ILinkFaultModel {
 public:
  virtual ~ILinkFaultModel() = default;

  enum class RxVerdict : std::uint8_t {
    kClean,          // frame arrived intact
    kCrcDrop,        // corrupted and caught by VCRC/ICRC: receiver drops it
    kSilentCorrupt,  // corrupted but both CRCs passed: delivered as-is
  };

  /// Called once by the fabric before the first hop is simulated, with the
  /// total lane count (numSwitches + numNodes). Implementations size their
  /// per-lane state here.
  virtual void bindLanes(int numLanes) { (void)numLanes; }

  /// Receiver-side verdict for a packet completing a link hop.
  virtual RxVerdict onPacketRx(const Packet& pkt, VlIndex vl, SimTime now,
                               int lane) = 0;

  /// Credits stolen from an arriving credit-update token (whole-token
  /// semantics: returns 0 or `credits`). Stolen credits leak until the
  /// periodic credit resync repairs them.
  virtual int onCreditUpdateRx(int credits, SimTime now, int lane) = 0;

  /// Period of the link-level credit-resync watchdog; 0 disables the chain.
  virtual SimTime resyncPeriodNs() const = 0;
  /// Age a leak must reach before a resync tick repairs it (detection takes
  /// a configurable number of sync periods).
  virtual SimTime resyncDetectNs() const = 0;
};

class Fabric;

/// Runtime invariant checker driven as a periodic simulator event
/// (EventKind::kInvariantCheck) — identical under both kernels. The
/// implementation lives in src/check.
class IInvariantChecker {
 public:
  virtual ~IInvariantChecker() = default;
  virtual void check(Fabric& fabric, SimTime now) = 0;
};

}  // namespace ibadapt
