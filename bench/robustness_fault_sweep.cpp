//
// Robustness sweep: how delivered fraction, retransmission effort, and
// recovery time respond to the link-failure rate. Each row runs a full
// stochastic fault campaign (exponential MTBF/MTTR) with the host-side
// reliable transport enabled, over several random irregular topologies.
//
// Delivered fraction counts unique transport-tracked packets; generation
// runs to the horizon, so a tail of in-flight packets keeps even the
// healthy baseline fractionally below 1.0 — compare rows, not absolutes.
//
// Usage: robustness_fault_sweep [--mode=quick|paper] [sizes=...]
//        [topologies=N] [horizon_us=N] [sweep_us=N]
//        [reconfig_mtbf_us=N] [json=BENCH_reconfig.json]
//
#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

struct Accum {
  double faults = 0, sweeps = 0, ttr = 0, degraded = 0;
  double dropped = 0, retx = 0, dups = 0, delivered = 0;
  int ttrRows = 0, rows = 0;

  void add(const SimResults& r, SimTime horizon) {
    const auto& rs = r.resilience;
    faults += rs.faultsInjected;
    sweeps += rs.smSweeps;
    if (rs.timeToRecovery.count() > 0) {
      ttr += rs.timeToRecovery.mean();
      ++ttrRows;
    }
    degraded += static_cast<double>(rs.degradedTimeNs) /
                static_cast<double>(horizon);
    dropped += static_cast<double>(r.dropped);
    retx += static_cast<double>(rs.retransmitsSent);
    dups += static_cast<double>(rs.duplicatesSuppressed);
    delivered += rs.deliveredFraction();
    ++rows;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{8},
                              /*paperSizes=*/{16}, /*quickTopos=*/2,
                              /*paperTopos=*/5);
  const SimTime horizon =
      static_cast<SimTime>(flags.integer("horizon_us", mode.paper ? 8000 : 3000)) *
      1'000;
  const SimTime sweepDelay =
      static_cast<SimTime>(flags.integer("sweep_us", 50)) * 1'000;
  const double creditLoss = flags.real("credit_loss", 0.005);
  warnUnknownFlags(flags);

  // MTBF in us; 0 = healthy baseline. MTTR fixed at MTBF / 3 (faults
  // overlap at the higher rates — the campaign handles that).
  const std::vector<int> mtbfUs = mode.paper
                                      ? std::vector<int>{0, 2000, 1000, 500, 250}
                                      : std::vector<int>{0, 1000, 400};

  std::printf("Fault-rate sweep: stochastic campaigns + reliable transport "
              "(horizon %lld us, SM sweep %lld us)\n",
              static_cast<long long>(horizon / 1'000),
              static_cast<long long>(sweepDelay / 1'000));
  printRule();
  std::printf("%4s %9s %7s %7s %10s %10s %9s %8s %7s %10s\n", "sw", "mtbf_us",
              "faults", "sweeps", "ttr_us", "degraded%", "dropped", "retx",
              "dups", "delivered");
  for (int size : mode.sizes) {
    for (int mtbf : mtbfUs) {
      Accum acc;
      for (int t = 0; t < mode.topologies; ++t) {
        SimParams p;
        p.numSwitches = size;
        p.linksPerSwitch = 4;
        p.topoSeed = static_cast<std::uint64_t>(100 + t);
        p.loadBytesPerNsPerNode = 0.02;
        p.warmupPackets = 100;
        p.measurePackets = ~0ULL >> 1;  // run to the horizon
        p.maxSimTimeNs = horizon;
        p.reliableTransport = true;
        p.sweepDelayNs = sweepDelay;
        if (mtbf > 0) {
          p.faultMtbfNs = static_cast<double>(mtbf) * 1'000.0;
          p.faultMttrNs = p.faultMtbfNs / 3.0;
          p.faultSeed = static_cast<std::uint64_t>(10 + t);
        }
        const SimResults r = runSimulation(p);
        acc.add(r, horizon);
      }
      const double n = acc.rows;
      std::printf("%4d %9d %7.1f %7.1f %10.1f %10.2f %9.1f %8.1f %7.1f %10.4f\n",
                  size, mtbf, acc.faults / n, acc.sweeps / n,
                  acc.ttrRows ? acc.ttr / acc.ttrRows / 1'000.0 : 0.0,
                  100.0 * acc.degraded / n, acc.dropped / n, acc.retx / n,
                  acc.dups / n, acc.delivered / n);
      std::fflush(stdout);
    }
    printRule();
  }
  std::printf("ttr_us: mean time from a link failure to the SM sweep that "
              "routes around it.\ndegraded%%: fraction of the horizon with "
              "at least one unswept fault outstanding.\n");

  // ---- corruption-rate axis ----------------------------------------------
  // Transient faults instead of fail-stop ones: a per-bit error rate on
  // every hop (CRC-caught drops recovered by retransmission) plus a fixed
  // credit-update loss rate healed by the periodic credit resync. The
  // invariant watchdog rides along; its violation count must stay 0.
  const std::vector<double> berAxis =
      mode.paper ? std::vector<double>{0.0, 1e-6, 5e-6, 2e-5, 1e-4}
                 : std::vector<double>{0.0, 5e-6, 5e-5};
  std::printf("\nCorruption-rate sweep: bit errors + credit-update loss "
              "(%.2g%% per token) + watchdog\n", 100.0 * creditLoss);
  printRule();
  std::printf("%4s %9s %9s %8s %7s %7s %7s %8s %10s %7s\n", "sw", "ber",
              "corrupt", "crcDrop", "silent", "leaked", "resync", "retx",
              "delivered", "wdViol");
  for (int size : mode.sizes) {
    for (double ber : berAxis) {
      double corrupt = 0, crcDrop = 0, silent = 0, leaked = 0, resynced = 0,
             retx = 0, delivered = 0, wdViol = 0;
      int rows = 0;
      for (int t = 0; t < mode.topologies; ++t) {
        SimParams p;
        p.numSwitches = size;
        p.linksPerSwitch = 4;
        p.topoSeed = static_cast<std::uint64_t>(100 + t);
        p.loadBytesPerNsPerNode = 0.02;
        p.warmupPackets = 100;
        p.measurePackets = ~0ULL >> 1;  // run to the horizon
        p.maxSimTimeNs = horizon;
        p.reliableTransport = true;
        p.berPerBit = ber;
        p.creditLossRate = ber > 0.0 ? creditLoss : 0.0;
        p.creditResyncPeriodNs = 50'000;  // short leak windows at this scale
        p.transientFaultSeed = static_cast<std::uint64_t>(20 + t);
        const SimResults r = runSimulation(p);
        const auto& rs = r.resilience;
        corrupt += static_cast<double>(rs.packetsCorrupted);
        crcDrop += static_cast<double>(rs.crcDrops);
        silent += static_cast<double>(rs.silentCorruptions);
        leaked += static_cast<double>(rs.creditsLeaked);
        resynced += static_cast<double>(rs.creditsResynced);
        retx += static_cast<double>(rs.retransmitsSent);
        delivered += rs.deliveredFraction();
        wdViol += static_cast<double>(r.invariants.violations());
        ++rows;
      }
      const double n = rows;
      std::printf("%4d %9.0e %9.1f %8.1f %7.1f %7.1f %7.1f %8.1f %10.4f %7.1f\n",
                  size, ber, corrupt / n, crcDrop / n, silent / n, leaked / n,
                  resynced / n, retx / n, delivered / n, wdViol / n);
      std::fflush(stdout);
    }
    printRule();
  }
  std::printf("silent: corrupted frames both CRCs missed (delivered as-is).\n"
              "leaked/resync: credits lost to flow-control corruption / "
              "restored by the periodic credit resync.\n"
              "wdViol: invariant-watchdog violations (must be 0).\n");

  // ---- reconfiguration axis ----------------------------------------------
  // Same stochastic campaign, three sweep-execution models (see
  // subnet/reconfig.hpp): the seed's zero-cost instant rewrite, the
  // stop-and-resweep baseline (pause, drain, compute, install, resume),
  // and the live epoch-based two-phase swap that reconfigures under
  // traffic. packets-lost counts unique transport packets not delivered by
  // the horizon; the stop-and-resweep pauses show up there as backlog the
  // fabric never works off.
  // Dense enough that sweeps overlap and the stop-and-resweep pauses
  // compound into real backlog — the regime live reconfiguration exists
  // for (>10% of links cycling per horizon at the quick size).
  const double reconfigMtbfUs = flags.real("reconfig_mtbf_us", 120.0);
  const std::string jsonPath = flags.str("json", "BENCH_reconfig.json");
  struct ModeRow {
    const char* name;
    ReconfigMode mode;
  };
  const std::vector<ModeRow> reconfigModes = {
      {"instant", ReconfigMode::kInstantSweep},
      {"drain", ReconfigMode::kDrainAndSweep},
      {"live", ReconfigMode::kLiveEpochSwap},
  };
  std::printf("\nReconfiguration sweep: sweep-execution models under the "
              "fault campaign (mtbf %.0f us)\n", reconfigMtbfUs);
  printRule();
  std::printf("%4s %8s %7s %7s %7s %9s %10s %9s %9s %7s\n", "sw", "mode",
              "faults", "sweeps", "epochs", "lost", "degraded%", "paused_us",
              "latn_us", "wdViol");
  std::vector<ReconfigBenchRecord> reconfigRecords;
  for (int size : mode.sizes) {
    for (const ModeRow& rm : reconfigModes) {
      ReconfigBenchRecord rec;
      rec.switches = size;
      rec.mode = rm.name;
      double faults = 0, sweeps = 0, epochs = 0, degraded = 0, pausedUs = 0,
             latencyUs = 0, wdViol = 0, lost = 0, sent = 0, droppedSwitch = 0;
      for (int t = 0; t < mode.topologies; ++t) {
        SimParams p;
        p.numSwitches = size;
        p.linksPerSwitch = 4;
        p.topoSeed = static_cast<std::uint64_t>(100 + t);
        p.loadBytesPerNsPerNode = 0.02;
        p.warmupPackets = 100;
        p.measurePackets = ~0ULL >> 1;  // run to the horizon
        p.maxSimTimeNs = horizon;
        p.reliableTransport = true;
        p.sweepDelayNs = sweepDelay;
        p.faultMtbfNs = reconfigMtbfUs * 1'000.0;
        p.faultMttrNs = p.faultMtbfNs / 3.0;
        p.faultSeed = static_cast<std::uint64_t>(10 + t);
        p.reconfig.mode = rm.mode;
        const SimResults r = runSimulation(p);
        const auto& rs = r.resilience;
        faults += rs.faultsInjected;
        sweeps += rs.smSweeps;
        epochs += rs.epochsInstalled;
        degraded += static_cast<double>(rs.degradedTimeNs) /
                    static_cast<double>(horizon);
        pausedUs += static_cast<double>(rs.injectionPausedNs) / 1'000.0;
        if (rs.smSweeps > 0) {
          latencyUs += static_cast<double>(rs.reconfigLatencyNs) /
                       static_cast<double>(rs.smSweeps) / 1'000.0;
        }
        wdViol += static_cast<double>(r.invariants.violations());
        lost += static_cast<double>(rs.uniqueSent - rs.uniqueDelivered);
        sent += static_cast<double>(rs.uniqueSent);
        droppedSwitch += static_cast<double>(r.dropped);
      }
      const double n = mode.topologies;
      rec.faults = faults / n;
      rec.sweeps = sweeps / n;
      rec.epochsInstalled = epochs / n;
      rec.packetsLost = lost / n;
      rec.lostFraction = sent > 0 ? lost / sent : 0.0;
      rec.droppedSwitch = droppedSwitch / n;
      rec.degradedPct = 100.0 * degraded / n;
      rec.pausedUs = pausedUs / n;
      rec.reconfigLatencyUs = latencyUs / n;
      rec.wdViolations = wdViol / n;
      reconfigRecords.push_back(rec);
      std::printf("%4d %8s %7.1f %7.1f %7.1f %9.1f %10.2f %9.1f %9.1f %7.1f\n",
                  size, rm.name, rec.faults, rec.sweeps, rec.epochsInstalled,
                  rec.packetsLost, rec.degradedPct, rec.pausedUs,
                  rec.reconfigLatencyUs, rec.wdViolations);
      std::fflush(stdout);
    }
    printRule();
  }
  std::printf("lost: unique transport packets undelivered at the horizon "
              "(per topology).\npaused_us: injection gated by the "
              "stop-and-resweep baseline.\nlatn_us: mean fault-noticed -> "
              "new-routes-active latency.\n");
  writeReconfigBenchJson(jsonPath, "robustness_fault_sweep",
                         mode.paper ? "paper" : "quick", reconfigRecords);
  std::printf("wrote %s\n", jsonPath.c_str());
  return 0;
}
