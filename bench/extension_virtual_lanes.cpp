//
// Extension / future work (paper §6): the authors propose combining the
// adaptive mechanism with strategies that exploit VLs unused by QoS to
// balance traffic further. We realize the simplest such scheme: spread
// traffic across k data VLs (each with its own split adaptive/escape
// buffer), forming k parallel virtual networks over the same wires, and
// measure knee throughput for deterministic and fully adaptive routing.
//
// Note the buffer trade-off: IBA switches have a fixed RAM budget, so more
// VLs mean smaller per-VL buffers. We report both regimes: constant per-VL
// buffers (more total RAM) and a constant total RAM split across VLs.
//
// Usage: extension_virtual_lanes [--mode=quick|paper] [sizes=...]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16}, /*paperSizes=*/{16, 32},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  std::printf("Extension: data VLs as parallel virtual networks (uniform, "
              "32 B, 4 links,\n%d topologies; knee throughput, "
              "bytes/ns/switch)\n\n",
              mode.topologies);
  std::printf("%4s %4s %8s   %14s %14s %8s\n", "sw", "VLs", "buf/VL", "det",
              "adaptive", "factor");

  for (int size : mode.sizes) {
    struct Config {
      int vls;
      int bufferCredits;  // per VL
      const char* note;
    };
    // 16 credits of total RAM per input port in the constant-RAM rows.
    const std::vector<Config> configs{
        {1, 8, ""},   // paper's configuration
        {2, 8, ""},   // double RAM
        {4, 8, ""},   // quadruple RAM
        {1, 16, ""},  // constant RAM baseline
        {2, 8, ""},   // constant RAM: 2 x 8
        {4, 4, ""},   // constant RAM: 4 x 4
    };
    for (const Config& cfg : configs) {
      double det = 0, fa = 0;
      for (int t = 0; t < mode.topologies; ++t) {
        SimParams base;
        base.numSwitches = size;
        base.topoSeed = static_cast<std::uint64_t>(t) + 1;
        base.fabric.numVls = cfg.vls;
        base.fabric.bufferCredits = cfg.bufferCredits;
        base.fabric.escapeReserveCredits = cfg.bufferCredits / 2;
        base.warmupPackets = mode.warmupPackets;
        base.measurePackets = mode.measurePackets;
        const Topology topo = buildTopology(base);
        const RampOptions ramp = defaultRamp(mode.paper);
        SimParams d = base;
        d.adaptiveFraction = 0.0;
        det += measurePeakThroughput(topo, d, ramp).peakAccepted;
        SimParams a = base;
        a.adaptiveFraction = 1.0;
        fa += measurePeakThroughput(topo, a, ramp).peakAccepted;
      }
      det /= mode.topologies;
      fa /= mode.topologies;
      std::printf("%4d %4d %8d   %14.4f %14.4f %7.2fx\n", size, cfg.vls,
                  cfg.bufferCredits, det, fa, det > 0 ? fa / det : 0.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Reading: rows 1-3 isolate the VL effect (per-VL RAM held "
              "constant); rows 4-6 hold\ntotal RAM constant — the regime a "
              "switch designer actually faces.\n");
  return 0;
}
