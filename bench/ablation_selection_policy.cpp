//
// Ablations A1/A2 (paper §4.3): output-port selection timing (at the
// forwarding-table access vs at crossbar arbitration) and criterion
// (credit-aware vs static vs random). The paper argues selection at
// arbitration with port-status information should perform best; this bench
// quantifies the gap.
//
// Usage: ablation_selection_policy [--mode=quick|paper] [sizes=...]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16}, /*paperSizes=*/{16, 32},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  struct Policy {
    const char* name;
    SelectionTiming timing;
    SelectionCriterion criterion;
  };
  const std::vector<Policy> policies{
      {"arbitration + credit-aware", SelectionTiming::kAtArbitration,
       SelectionCriterion::kCreditAware},
      {"arbitration + static", SelectionTiming::kAtArbitration,
       SelectionCriterion::kStatic},
      {"arbitration + random", SelectionTiming::kAtArbitration,
       SelectionCriterion::kRandom},
      {"routing-time + credit-aware", SelectionTiming::kAtRouting,
       SelectionCriterion::kCreditAware},
      {"routing-time + static", SelectionTiming::kAtRouting,
       SelectionCriterion::kStatic},
      {"routing-time + random", SelectionTiming::kAtRouting,
       SelectionCriterion::kRandom},
  };

  // Selection only matters when there is something to select among:
  // 6 links/switch and 4 table banks give up to 3 adaptive options.
  std::printf("Ablation A1/A2: output-port selection policy (uniform, 32 B, "
              "6 links, 4 options,\n100%% adaptive traffic; %d topologies; "
              "latency probed at a common near-knee load)\n\n",
              mode.topologies);
  std::printf("%-30s %4s   %12s %8s   %12s\n", "policy", "sw", "knee B/ns/sw",
              "vs best", "latency (ns)");

  RampOptions ramp = defaultRamp(mode.paper);
  ramp.bisectIterations = 5;

  for (int size : mode.sizes) {
    std::vector<double> peaks(policies.size(), 0.0);
    std::vector<double> lat(policies.size(), 0.0);
    for (int t = 0; t < mode.topologies; ++t) {
      SimParams base;
      base.numSwitches = size;
      base.linksPerSwitch = 6;
      base.fabric.numOptions = 4;
      base.fabric.lmc = 2;
      base.topoSeed = static_cast<std::uint64_t>(t) + 1;
      base.adaptiveFraction = 1.0;
      base.warmupPackets = mode.warmupPackets;
      base.measurePackets = mode.measurePackets;
      const Topology topo = buildTopology(base);
      // Common latency probe load: 85% of the default policy's knee.
      SimParams ref = base;
      const double kneeRef =
          measurePeakThroughput(topo, ref, ramp).peakAccepted;
      const double probeLoad = 0.85 * kneeRef / topo.nodesPerSwitch();
      for (std::size_t i = 0; i < policies.size(); ++i) {
        SimParams p = base;
        p.fabric.selectionTiming = policies[i].timing;
        p.fabric.selectionCriterion = policies[i].criterion;
        peaks[i] += measurePeakThroughput(topo, p, ramp).peakAccepted;
        SimParams q = p;
        q.loadBytesPerNsPerNode = probeLoad;
        lat[i] += runSimulationOn(topo, q).avgLatencyNs;
      }
    }
    for (auto& v : peaks) v /= mode.topologies;
    for (auto& v : lat) v /= mode.topologies;
    const double best = *std::max_element(peaks.begin(), peaks.end());
    for (std::size_t i = 0; i < policies.size(); ++i) {
      std::printf("%-30s %4d   %12.4f %7.1f%%   %12.0f\n", policies[i].name,
                  size, peaks[i], 100.0 * peaks[i] / best, lat[i]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
