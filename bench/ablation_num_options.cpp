//
// §5.2.2 claim / ablation A4: how much of the adaptive-routing gain do two
// routing options already deliver? The paper reports roughly 90 % of the
// maximum improvement with x = 2. We sweep x in {2, 4, 8} on well-connected
// networks (6 links/switch, where extra options matter most) and report the
// throughput factor over deterministic routing.
//
// Usage: ablation_num_options [--mode=quick|paper] [sizes=...] [topologies=N]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16}, /*paperSizes=*/{16, 32, 64},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  std::printf("Ablation A4: routing options x vs throughput factor\n"
              "(6 links/switch, uniform, 32 B packets, %d topologies)\n\n",
              mode.topologies);
  std::printf("%4s %8s   %6s %6s %6s   %s\n", "sw", "options", "min", "avg",
              "max", "share of best avg");

  for (int size : mode.sizes) {
    std::vector<double> avgs;
    const std::vector<int> optionCounts{2, 4, 8};
    for (int x : optionCounts) {
      SimParams base;
      base.numSwitches = size;
      base.linksPerSwitch = 6;
      base.fabric.numOptions = x;
      base.fabric.lmc = x > 4 ? 3 : (x > 2 ? 2 : 1);
      base.warmupPackets = mode.warmupPackets;
      base.measurePackets = mode.measurePackets;
      const ThroughputFactors f = measureThroughputFactors(
          base, mode.topologies, 1, defaultRamp(mode.paper), mode.threads);
      avgs.push_back(f.factor.avg);
      std::printf("%4d %8d   %6.2f %6.2f %6.2f", size, x, f.factor.min,
                  f.factor.avg, f.factor.max);
      std::printf("   (pending)\n");
      std::fflush(stdout);
    }
    const double best = *std::max_element(avgs.begin(), avgs.end());
    std::printf("  -> shares of best improvement at %d switches:", size);
    for (std::size_t i = 0; i < avgs.size(); ++i) {
      // Improvement share compares gains over the deterministic baseline
      // (factor 1.0), matching the paper's "90% of the maximum" phrasing.
      const double share =
          best > 1.0 ? (avgs[i] - 1.0) / (best - 1.0) * 100.0 : 100.0;
      std::printf("  x=%d: %.0f%%", optionCounts[i], share);
    }
    std::printf("\n\n");
  }
  return 0;
}
