//
// Motivation experiment (paper §1): "by using alternative paths selected at
// the source node, the overall network performance is hardly improved" —
// the claim that justifies switch-level adaptivity in the first place.
//
// We compare, on the same topologies:
//   * deterministic up*/down* (1 path),
//   * source multipath with 2 and 4 deterministic up*/down* planes chosen
//     per packet at the source (stock IBA switches, LMC addressing only),
//   * the paper's fully adaptive switch mechanism (2 options).
//
// Usage: motivation_source_multipath [--mode=quick|paper] [sizes=...]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16, 32},
                              /*paperSizes=*/{16, 32, 64},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  std::printf("Motivation: source-selected multipath vs switch adaptivity\n"
              "(uniform, 32 B packets, 4 links/switch, knee throughput "
              "averaged over %d topologies)\n\n",
              mode.topologies);
  std::printf("%4s   %14s %14s %14s %14s\n", "sw", "deterministic",
              "src-multi x2", "src-multi x4", "switch FA x2");

  for (int size : mode.sizes) {
    double det = 0, mp2 = 0, mp4 = 0, fa = 0;
    for (int t = 0; t < mode.topologies; ++t) {
      SimParams base;
      base.numSwitches = size;
      base.topoSeed = static_cast<std::uint64_t>(t) + 1;
      base.warmupPackets = mode.warmupPackets;
      base.measurePackets = mode.measurePackets;
      const Topology topo = buildTopology(base);
      const RampOptions ramp = defaultRamp(mode.paper);

      SimParams d = base;
      d.adaptiveFraction = 0.0;
      det += measurePeakThroughput(topo, d, ramp).peakAccepted;

      SimParams m2 = base;
      m2.sourceMultipathPlanes = 2;
      m2.fabric.numOptions = 1;
      m2.fabric.lmc = 1;
      mp2 += measurePeakThroughput(topo, m2, ramp).peakAccepted;

      SimParams m4 = base;
      m4.sourceMultipathPlanes = 4;
      m4.fabric.numOptions = 1;
      m4.fabric.lmc = 2;
      mp4 += measurePeakThroughput(topo, m4, ramp).peakAccepted;

      SimParams a = base;
      a.adaptiveFraction = 1.0;
      fa += measurePeakThroughput(topo, a, ramp).peakAccepted;
    }
    det /= mode.topologies;
    mp2 /= mode.topologies;
    mp4 /= mode.topologies;
    fa /= mode.topologies;
    std::printf("%4d   %14.4f %14.4f %14.4f %14.4f\n", size, det, mp2, mp4,
                fa);
    std::printf("%4s   %14s %13.2fx %13.2fx %13.2fx\n", "", "(baseline)",
                mp2 / det, mp4 / det, fa / det);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: the source-multipath columns barely move "
              "the needle while the\nswitch-adaptive column improves "
              "strongly — the paper's motivating observation.\n");
  return 0;
}
