//
// Congestion-management sweep: fully adaptive routing alone (FA) versus
// adaptive routing plus the congestion loop (FA+CC: hysteresis detection +
// FECN marking, CNP-style echo, AIMD source throttling) under hotspot and
// incast workloads, across topology families. Both arms run the identical
// open-loop offered load with the reliable transport enabled, so the only
// difference is the congestion loop itself.
//
// Emits BENCH_congestion.json (one case object per line). --gate runs the
// 64-switch hotspot acceptance check only: FA+CC must deliver at least the
// FA-alone throughput with a clean invariant watchdog, else exit 1.
//
// Usage: congestion_sweep [--mode=quick|paper] [--gate]
//        [load=0.02] [json=BENCH_congestion.json]
//
#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

// Same nominal-size mapping as perf_scale: the fat-tree lattice doesn't hit
// every power of two, so nominal 64 builds the 48-switch 4-ary 3-tree.
SimParams familyParams(const std::string& kind, int nominalSwitches) {
  SimParams p;
  p.nodesPerSwitch = 4;
  if (kind == "irregular") {
    p.topoKind = TopologyKind::kIrregular;
    p.numSwitches = nominalSwitches;
    p.linksPerSwitch = 4;
  } else if (kind == "fat-tree") {
    p.topoKind = TopologyKind::kFatTree;
    if (nominalSwitches <= 64) {
      p.fatTreeArity = 4;  // 3 x 16 = 48 switches / 64 hosts
      p.fatTreeLevels = 3;
    } else {
      p.fatTreeArity = 4;  // 4 x 64 = 256 switches / 256 hosts
      p.fatTreeLevels = 4;
    }
  } else if (kind == "dragonfly") {
    p.topoKind = TopologyKind::kDragonfly;
    if (nominalSwitches <= 64) {
      p.dragonflyRoutersPerGroup = 8;  // 8 x 8 = 64 switches / 256 hosts
      p.dragonflyGlobalPerRouter = 1;
      p.dragonflyGroups = 8;
    } else {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 16 = 256 switches
      p.dragonflyGlobalPerRouter = 2;
      p.dragonflyGroups = 16;
    }
  } else {
    throw std::invalid_argument("unknown kind: " + kind);
  }
  return p;
}

struct Scenario {
  const char* name;  // "hotspot-<pct>" | "incast"
  TrafficPattern pattern;
  double hotspotFraction = 0.0;  // hotspot severity (share of traffic)
};

/// Reaction tuning shared by every CC arm. The CNP loop under deep
/// congestion is slow (the marked packet has to reach the victim before
/// the echo fires), so recovery has to be patient: a rate decrease that
/// heals faster than the next notification can arrive is a no-op.
struct CcTuning {
  double mdFactor = 0.5;
  double aiStep = 0.01;
  // The rate floor must sit near each flow's fair share of the victim port
  // (~1/hosts of wire rate): higher and pacing can never bind — a hotspot
  // is many individually-tiny flows, not one fast one — while much lower
  // lets MD chains drive the aggregate below the victim's drain rate and
  // idle the very link the loop is protecting.
  double minRate = 0.005;
  SimTime recoveryPeriodUs = 50;
  SimTime minCnpGapUs = 20;
  double enterFree = 0.25;
  double exitFree = 0.5;
};

SimResults runArm(const std::string& kind, int size, const Scenario& sc,
                  bool cc, double load, std::uint64_t warmup,
                  std::uint64_t measure, const CcTuning& tune) {
  SimParams p = familyParams(kind, size);
  p.pattern = sc.pattern;
  p.hotspotFraction = sc.hotspotFraction;
  p.hotspotNode = 0;
  p.loadBytesPerNsPerNode = load;
  p.packetBytes = 128;
  p.warmupPackets = warmup;
  p.measurePackets = measure;
  p.maxSimTimeNs = 8'000'000;
  p.topoSeed = 11;
  p.trafficSeed = 7;
  p.reliableTransport = true;  // both arms: identical transport path
  p.congestionControl = cc;
  p.congestion.enterFreeFraction = tune.enterFree;
  p.congestion.exitFreeFraction = tune.exitFree;
  p.transport.throttle.mdFactor = tune.mdFactor;
  p.transport.throttle.aiStep = tune.aiStep;
  p.transport.throttle.minRateFactor = tune.minRate;
  p.transport.throttle.recoveryPeriodNs = tune.recoveryPeriodUs * 1'000;
  p.transport.throttle.minCnpGapNs = tune.minCnpGapUs * 1'000;
  return runSimulation(p);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool paper = flags.str("mode", "quick") == "paper";
  const bool gate = flags.boolean("gate", false);
  const double load = flags.real("load", 0.02);
  const std::string jsonPath = flags.str("json", "BENCH_congestion.json");
  const std::uint64_t warmup =
      static_cast<std::uint64_t>(flags.integer("warmup", paper ? 2000 : 800));
  const std::uint64_t measure = static_cast<std::uint64_t>(
      flags.integer("measure", paper ? 12000 : 5000));
  CcTuning tune;
  tune.mdFactor = flags.real("md", tune.mdFactor);
  tune.aiStep = flags.real("ai", tune.aiStep);
  tune.minRate = flags.real("minrate", tune.minRate);
  tune.recoveryPeriodUs =
      flags.integer("recovery_us", static_cast<int>(tune.recoveryPeriodUs));
  tune.minCnpGapUs =
      flags.integer("cnpgap_us", static_cast<int>(tune.minCnpGapUs));
  tune.enterFree = flags.real("enter", tune.enterFree);
  tune.exitFree = flags.real("exit", tune.exitFree);
  warnUnknownFlags(flags);

  const std::vector<Scenario> scenarios = {
      {"hotspot-10", TrafficPattern::kHotspot, 0.10},
      {"hotspot-25", TrafficPattern::kHotspot, 0.25},
      {"hotspot-50", TrafficPattern::kHotspot, 0.50},
      {"incast", TrafficPattern::kIncast, 0.0},
  };
  const std::vector<std::string> kinds = {"irregular", "fat-tree",
                                          "dragonfly"};
  const std::vector<int> sizes =
      paper ? std::vector<int>{64, 256} : std::vector<int>{64};

  if (gate) {
    // Acceptance: under a 64-switch hotspot, arming the congestion loop
    // must not cost delivered throughput, and the watchdog must stay clean.
    const Scenario sc{"hotspot-10", TrafficPattern::kHotspot, 0.10};
    const SimResults fa =
        runArm("irregular", 64, sc, false, load, warmup, measure, tune);
    const SimResults cc =
        runArm("irregular", 64, sc, true, load, warmup, measure, tune);
    std::printf("gate: FA accepted=%.5f B/ns/sw p99=%.1f ns | FA+CC "
                "accepted=%.5f B/ns/sw p99=%.1f ns wdViol=%llu\n",
                fa.acceptedBytesPerNsPerSwitch, fa.p99LatencyNs,
                cc.acceptedBytesPerNsPerSwitch, cc.p99LatencyNs,
                static_cast<unsigned long long>(cc.invariants.violations()));
    std::printf("gate: cc loop: onsets=%llu fecn=%llu cnp=%llu md=%llu "
                "throttled=%llu held=%llu | simEnd FA=%lld CC=%lld\n",
                static_cast<unsigned long long>(cc.congestion.congOnsets),
                static_cast<unsigned long long>(cc.congestion.fecnMarked),
                static_cast<unsigned long long>(cc.congestion.cnpsReceived),
                static_cast<unsigned long long>(cc.congestion.rateDecreases),
                static_cast<unsigned long long>(cc.congestion.packetsThrottled),
                static_cast<unsigned long long>(cc.congestion.heldAtEnd),
                static_cast<long long>(fa.simEndTimeNs),
                static_cast<long long>(cc.simEndTimeNs));
    std::printf("gate: retx FA=%llu dup=%llu | retx CC=%llu dup=%llu\n",
                static_cast<unsigned long long>(fa.resilience.retransmitsSent),
                static_cast<unsigned long long>(
                    fa.resilience.duplicatesSuppressed),
                static_cast<unsigned long long>(cc.resilience.retransmitsSent),
                static_cast<unsigned long long>(
                    cc.resilience.duplicatesSuppressed));
    const bool ok = cc.measurementComplete && !cc.deadlockSuspected &&
                    cc.invariants.violations() == 0 &&
                    cc.acceptedBytesPerNsPerSwitch >=
                        fa.acceptedBytesPerNsPerSwitch;
    std::printf("gate: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  std::printf("Congestion sweep: FA vs FA+CC, load %.3f B/ns/node, "
              "%s mode\n", load, paper ? "paper" : "quick");
  printRule();
  std::printf("%-10s %4s %-10s %3s %9s %9s %9s %9s %6s %6s %6s\n", "topo",
              "sw", "scenario", "cc", "acc/sw", "p50_ns", "p99_ns", "p999_ns",
              "fecn", "md", "wdV");
  std::vector<CongestionBenchRecord> records;
  for (const std::string& kind : kinds) {
    for (int size : sizes) {
      for (const Scenario& sc : scenarios) {
        for (const bool cc : {false, true}) {
          const SimResults r =
              runArm(kind, size, sc, cc, load, warmup, measure, tune);
          CongestionBenchRecord rec;
          rec.topo = kind;
          rec.switches = size;
          rec.scenario = sc.name;
          rec.cc = cc;
          rec.acceptedBytesPerNsPerSwitch = r.acceptedBytesPerNsPerSwitch;
          rec.p50LatencyNs = r.p50LatencyNs;
          rec.p99LatencyNs = r.p99LatencyNs;
          rec.p999LatencyNs = r.p999LatencyNs;
          rec.msgP99LatencyNs = r.msgP99LatencyNs;
          rec.fecnMarked = r.congestion.fecnMarked;
          rec.cnpsReceived = r.congestion.cnpsReceived;
          rec.rateDecreases = r.congestion.rateDecreases;
          rec.packetsThrottled = r.congestion.packetsThrottled;
          rec.wdViolations = r.invariants.violations();
          rec.complete = r.measurementComplete && !r.deadlockSuspected;
          records.push_back(rec);
          std::printf("%-10s %4d %-10s %3s %9.5f %9.0f %9.0f %9.0f %6llu "
                      "%6llu %6llu%s\n",
                      kind.c_str(), size, sc.name, cc ? "on" : "off",
                      rec.acceptedBytesPerNsPerSwitch, rec.p50LatencyNs,
                      rec.p99LatencyNs, rec.p999LatencyNs,
                      static_cast<unsigned long long>(rec.fecnMarked),
                      static_cast<unsigned long long>(rec.rateDecreases),
                      static_cast<unsigned long long>(rec.wdViolations),
                      rec.complete ? "" : " [INCOMPLETE]");
          std::fflush(stdout);
        }
      }
      printRule();
    }
  }

  // Strict-win summary: scenarios where arming the loop improved both
  // delivered throughput and tail latency.
  int wins = 0;
  for (std::size_t i = 0; i + 1 < records.size(); i += 2) {
    const CongestionBenchRecord& fa = records[i];
    const CongestionBenchRecord& cc = records[i + 1];
    if (cc.acceptedBytesPerNsPerSwitch > fa.acceptedBytesPerNsPerSwitch &&
        cc.p99LatencyNs < fa.p99LatencyNs) {
      std::printf("strict win: %s/%d %s (throughput %+.1f%%, p99 %+.1f%%)\n",
                  cc.topo.c_str(), cc.switches, cc.scenario.c_str(),
                  100.0 * (cc.acceptedBytesPerNsPerSwitch /
                               fa.acceptedBytesPerNsPerSwitch -
                           1.0),
                  100.0 * (cc.p99LatencyNs / fa.p99LatencyNs - 1.0));
      ++wins;
    }
  }
  std::printf("%d strict FA+CC wins (throughput AND p99) of %zu scenarios\n",
              wins, records.size() / 2);

  writeCongestionBenchJson(jsonPath, "congestion_sweep",
                           paper ? "paper" : "quick", records);
  std::printf("wrote %s\n", jsonPath.c_str());
  return 0;
}
