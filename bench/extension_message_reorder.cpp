//
// Extension (paper §1): "in-order packets could also use adaptive routing
// if packets were reordered at the destination host before being
// delivered." We segment multi-packet messages, route them either
// deterministically (arrive in order by construction) or fully adaptively
// (segments may reorder; a destination reorder buffer restores per-flow
// message order), and compare the *application-visible* message latency —
// reordering cost included.
//
// Usage: extension_message_reorder [--mode=quick|paper] [switches=16]
//
#include <memory>

#include "bench_common.hpp"
#include "host/message_layer.hpp"
#include "subnet/subnet_manager.hpp"

namespace {

using namespace ibadapt;

struct Result {
  double completionNs = 0;
  double appNs = 0;
  std::size_t maxHeld = 0;
  std::uint64_t messages = 0;
  bool deadlock = false;
};

Result runOne(const Topology& topo, bool adaptive, double gapNs,
              SimTime horizon) {
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  MessageTrafficSpec mspec;
  mspec.numNodes = topo.numNodes();
  mspec.messageBytes = 2048;  // 8 MTU segments
  mspec.adaptive = adaptive;
  mspec.meanMessageGapNs = gapNs;
  MessageTraffic traffic(mspec);
  MessageReassembler reassembler(topo.numNodes());
  fabric.attachTraffic(&traffic, 23);
  fabric.attachObserver(&reassembler);
  fabric.start();
  RunLimits gen;
  gen.endTime = horizon;
  fabric.run(gen);
  RunLimits drain;
  drain.endTime = horizon * 400;
  drain.generationEndTime = 0;
  fabric.run(drain);
  Result r;
  r.completionNs = reassembler.completionLatency().mean();
  r.appNs = reassembler.appLatency().mean();
  r.maxHeld = reassembler.maxReorderHeld();
  r.messages = reassembler.messagesDeliveredInOrder();
  r.deadlock = fabric.deadlockSuspected();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, {16}, {16, 32}, 1, 3);
  const int switches = flags.integer("switches", mode.sizes.front());
  warnUnknownFlags(flags);

  SimParams tp;
  tp.numSwitches = switches;
  const Topology topo = buildTopology(tp);
  const SimTime horizon = mode.paper ? 2'000'000 : 600'000;

  std::printf("Extension: application-ordered messages — deterministic vs "
              "adaptive + destination\nreorder buffer (%d switches, 2 KiB "
              "messages = 8 segments, uniform destinations)\n\n",
              switches);
  std::printf("%-14s | %12s | %12s %12s %9s | %s\n", "msg gap (ns)",
              "det app lat", "FA app lat", "FA complete", "max held",
              "FA vs det");

  for (double gapNs : {96'000.0, 64'000.0, 40'000.0, 24'000.0}) {
    const Result det = runOne(topo, /*adaptive=*/false, gapNs, horizon);
    const Result fa = runOne(topo, /*adaptive=*/true, gapNs, horizon);
    if (det.deadlock || fa.deadlock) {
      std::printf("%-14.0f | DEADLOCK\n", gapNs);
      continue;
    }
    std::printf("%-14.0f | %12.0f | %12.0f %12.0f %9zu | %.2fx faster\n",
                gapNs, det.appNs, fa.appNs, fa.completionNs, fa.maxHeld,
                fa.appNs > 0 ? det.appNs / fa.appNs : 0.0);
    std::fflush(stdout);
  }
  std::printf("\nReading: as load grows (smaller gaps), deterministic "
              "messages queue on the single\nup*/down* path while adaptive "
              "segments spread out; the reorder buffer's holding\ncost "
              "('max held' messages) stays small, so the application sees "
              "the win intact.\n");
  return 0;
}
