//
// Table 2: average percentage of routing options per destination at each
// switch, for MR (maximum routing options) of 2, 3, 4, with 4 and 6 links
// between switches. Pure static analysis over the routing tables — no
// simulation — so the full paper configuration runs by default.
//
// Usage: table2_routing_options [--mode=quick|paper] [sizes=...]
//        [topologies=N] [--family=irregular|fat-tree|dragonfly]
//
// --family extends the census to the hierarchical generators: sizes become
// nominal switch counts mapped through the perf_scale ladder, the
// links/switch axis disappears (the generator fixes the degree), and the
// topologies count collapses to 1 for the deterministic fat-tree (the
// dragonfly still varies its global-link shuffle seed per topology).
//
#include "analysis/option_census.hpp"
#include "bench_common.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "topology/generators.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{8, 16, 32, 64},
                              /*paperSizes=*/{8, 16, 32, 64},
                              /*quickTopos=*/10, /*paperTopos=*/10);
  const std::string family = flags.str("family", "irregular");
  warnUnknownFlags(flags);

  std::printf("Table 2: %% of (switch, destination) pairs offering k routing "
              "options\n(family=%s, averaged over %d topologies; MR = max "
              "options per destination)\n\n",
              family.c_str(), mode.topologies);

  if (family != "irregular") {
    const int topos = family == "fat-tree" ? 1 : mode.topologies;
    std::printf("%9s %3s | %7s %7s %7s %7s | %6s\n", "sw", "MR", "1 opt",
                "2 opts", "3 opts", "4 opts", "avg");
    for (int size : mode.sizes) {
      for (int mr : {2, 3, 4}) {
        std::array<double, 5> pct{};
        double avg = 0;
        int switches = 0;
        for (int t = 0; t < topos; ++t) {
          SimParams p = familyTopoParams(family, size);
          p.nodesPerSwitch = 2;
          p.topoSeed = static_cast<std::uint64_t>(t) + 1;
          const Topology topo = buildTopology(p);
          switches = topo.numSwitches();
          const UpDownRouting updown(topo);
          const MinimalAdaptiveRouting minimal(topo);
          const RouteSet routes(topo, updown, minimal);
          const OptionCensus c = routingOptionCensus(topo, routes, mr);
          for (int k = 1; k <= 4; ++k) {
            pct[static_cast<std::size_t>(k)] +=
                c.pct[static_cast<std::size_t>(k)];
          }
          avg += c.avgOptions;
        }
        for (auto& v : pct) v /= topos;
        avg /= topos;
        std::printf("%9d %3d | %6.2f%% %6.2f%% %6.2f%% %6.2f%% | %6.2f\n",
                    switches, mr, pct[1], pct[2], pct[3], pct[4], avg);
      }
    }
    return 0;
  }

  for (int links : {4, 6}) {
    std::printf("--- %d links/switch ---\n", links);
    std::printf("%4s %3s | %7s %7s %7s %7s | %6s\n", "sw", "MR", "1 opt",
                "2 opts", "3 opts", "4 opts", "avg");
    for (int size : mode.sizes) {
      for (int mr : {2, 3, 4}) {
        std::array<double, 5> pct{};
        double avg = 0;
        for (int t = 0; t < mode.topologies; ++t) {
          Rng rng(static_cast<std::uint64_t>(t) + 1);
          IrregularSpec spec;
          spec.numSwitches = size;
          spec.linksPerSwitch = links;
          const Topology topo = makeIrregular(spec, rng);
          const UpDownRouting updown(topo);
          const MinimalAdaptiveRouting minimal(topo);
          const RouteSet routes(topo, updown, minimal);
          const OptionCensus c = routingOptionCensus(topo, routes, mr);
          for (int k = 1; k <= 4; ++k) {
            pct[static_cast<std::size_t>(k)] +=
                c.pct[static_cast<std::size_t>(k)];
          }
          avg += c.avgOptions;
        }
        for (auto& v : pct) v /= mode.topologies;
        avg /= mode.topologies;
        std::printf("%4d %3d | %6.2f%% %6.2f%% %6.2f%% %6.2f%% | %6.2f\n",
                    size, mr, pct[1], pct[2], pct[3], pct[4], avg);
      }
    }
    std::printf("\n");
  }
  return 0;
}
