//
// Figure 3 (a-d): average packet latency vs accepted traffic while the
// percentage of adaptive traffic varies from 0 % (deterministic up*/down*)
// to 100 %, on random irregular networks — 2 routing options, 4 links
// between switches, uniform traffic, 32-byte packets.
//
// Prints one latency/accepted series per (network size, adaptive fraction)
// and a throughput summary showing the paper's headline trend: improvement
// grows with the adaptive share and with network size.
//
// Usage: fig3_adaptive_fraction [--mode=quick|paper] [sizes=8,16,...]
//        [fractions=0,25,50,75,100] [seed=1]
//        [--family=irregular|fat-tree|dragonfly]
//
// --family extends the paper's irregular-network sweep to the hierarchical
// generators: sizes become nominal switch counts mapped through the
// perf_scale ladder (nominal 64 -> the 48-switch 4-ary 3-tree, etc.), with
// 2 hosts per edge switch. The adaptive-vs-deterministic contrast is the
// same — up*/down* escape paths vs fully adaptive minimal options.
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{8, 16, 32, 64},
                              /*paperSizes=*/{8, 16, 32, 64},
                              /*quickTopos=*/1, /*paperTopos=*/1);
  const auto fractionPct = flags.intList(
      "fractions", std::vector<int>{0, 25, 50, 75, 100});
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.integer("seed", 1));
  const std::string family = flags.str("family", "irregular");
  warnUnknownFlags(flags);

  std::printf("Figure 3: latency vs accepted traffic, varying %% of adaptive "
              "traffic\n(%s topologies, 2 routing options, uniform, 32 B "
              "packets)\n\n",
              family.c_str());

  for (int size : mode.sizes) {
    SimParams base = familyTopoParams(family, size);
    if (family != "irregular") base.nodesPerSwitch = 2;
    base.fabric.numOptions = 2;
    base.fabric.lmc = 1;
    base.packetBytes = 32;
    base.pattern = TrafficPattern::kUniform;
    base.topoSeed = seed;
    base.warmupPackets = mode.warmupPackets;
    base.measurePackets = mode.measurePackets;
    const Topology topo = buildTopology(base);

    std::printf("=== %s, %d switches (%d nodes, topoSeed=%llu) ===\n",
                family.c_str(), topo.numSwitches(), topo.numNodes(),
                static_cast<unsigned long long>(seed));

    std::vector<double> peaks;
    for (int pct : fractionPct) {
      SimParams p = base;
      p.adaptiveFraction = pct / 100.0;
      const PeakThroughput curve =
          measurePeakThroughput(topo, p, defaultRamp(mode.paper));
      std::printf("  adaptive=%3d%%  (accepted B/ns/sw, avg latency ns):\n   ",
                  pct);
      for (const auto& cp : curve.curve) {
        std::printf(" (%.4f, %.0f)", cp.acceptedBytesPerNsPerSwitch,
                    cp.avgLatencyNs);
      }
      std::printf("\n    peak accepted = %.4f B/ns/sw\n", curve.peakAccepted);
      peaks.push_back(curve.peakAccepted);
    }

    printRule();
    std::printf("  throughput vs fraction of adaptive traffic:\n");
    for (std::size_t i = 0; i < fractionPct.size(); ++i) {
      const double factor = peaks[0] > 0 ? peaks[i] / peaks[0] : 0.0;
      std::printf("    %3d%% adaptive: %.4f B/ns/sw  (x%.2f vs 0%%)\n",
                  fractionPct[i], peaks[i], factor);
    }
    printRule();
    std::printf("\n");
  }
  return 0;
}
