//
// Ablation A5 (paper §4.4, last paragraph): the in-order pointer rule.
// kPaperStrict serves the oldest deterministic packet before anything in
// the escape queue; kDeterministicOnly lets adaptive packets bypass it.
// Relevant only for mixed traffic — we sweep the adaptive fraction and
// report peak throughput and deterministic-class latency for both rules.
//
// Usage: ablation_ordering_rule [--mode=quick|paper]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16}, /*paperSizes=*/{16, 32},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  std::printf("Ablation A5: escape-queue ordering rule under mixed traffic\n"
              "(uniform, 32 B packets, %d topologies; latency at ~70%% of "
              "peak load)\n\n",
              mode.topologies);
  std::printf("%-18s %10s   %12s %14s %14s\n", "rule", "adaptive%",
              "peak B/ns/sw", "det lat (ns)", "adpt lat (ns)");

  for (auto [rule, name] :
       {std::pair{EscapeOrderRule::kPaperStrict, "paper-strict"},
        std::pair{EscapeOrderRule::kDeterministicOnly, "relaxed"}}) {
    for (int pct : {25, 50, 75}) {
      double sumPeak = 0, sumDetLat = 0, sumAdptLat = 0;
      for (int t = 0; t < mode.topologies; ++t) {
        SimParams p;
        p.numSwitches = 16;
        p.topoSeed = static_cast<std::uint64_t>(t) + 1;
        p.fabric.orderRule = rule;
        p.adaptiveFraction = pct / 100.0;
        p.warmupPackets = mode.warmupPackets;
        p.measurePackets = mode.measurePackets;
        const Topology topo = buildTopology(p);
        const PeakThroughput peak =
            measurePeakThroughput(topo, p, defaultRamp(mode.paper));
        sumPeak += peak.peakAccepted;
        // Latency probe at ~70% of the measured peak.
        SimParams q = p;
        q.loadBytesPerNsPerNode =
            0.7 * peak.peakAccepted / topo.nodesPerSwitch();
        const SimResults r = runSimulationOn(topo, q);
        sumDetLat += r.avgLatencyDeterministicNs;
        sumAdptLat += r.avgLatencyAdaptiveNs;
      }
      std::printf("%-18s %9d%%   %12.4f %14.0f %14.0f\n", name, pct,
                  sumPeak / mode.topologies, sumDetLat / mode.topologies,
                  sumAdptLat / mode.topologies);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
