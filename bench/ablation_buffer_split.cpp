//
// Ablation A3 (paper §4.4): size of the escape reserve C0. The paper fixes
// C0 = C_max/2 (equal halves). Smaller reserves leave more room for
// adaptive traffic but throttle the escape network; larger reserves do the
// opposite. Each half must still hold a whole packet (VCT), bounding the
// sweep for 32 B packets to reserves in [1, C_max-1].
//
// Usage: ablation_buffer_split [--mode=quick|paper] [sizes=...]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16}, /*paperSizes=*/{16, 32},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  std::printf("Ablation A3: escape reserve C0 (C_max = 8 credits = 512 B; "
              "uniform, 32 B,\n100%% adaptive; peak throughput averaged over "
              "%d topologies)\n\n",
              mode.topologies);
  std::printf("%4s %8s %10s\n", "sw", "C0", "peak B/ns/sw");

  for (int size : mode.sizes) {
    for (int reserve : {1, 2, 4, 6, 7}) {
      double sum = 0;
      for (int t = 0; t < mode.topologies; ++t) {
        SimParams p;
        p.numSwitches = size;
        p.topoSeed = static_cast<std::uint64_t>(t) + 1;
        p.fabric.bufferCredits = 8;
        p.fabric.escapeReserveCredits = reserve;
        p.adaptiveFraction = 1.0;
        p.warmupPackets = mode.warmupPackets;
        p.measurePackets = mode.measurePackets;
        const Topology topo = buildTopology(p);
        sum += measurePeakThroughput(topo, p, defaultRamp(mode.paper))
                   .peakAccepted;
      }
      std::printf("%4d %8d %10.4f%s\n", size, reserve, sum / mode.topologies,
                  reserve == 4 ? "   <- paper (C_max/2)" : "");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
