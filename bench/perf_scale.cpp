// Topology-scale sweep: end-to-end simulator throughput and heap footprint
// as the fabric grows from workgroup size to 1024+ switches, on all three
// topology families (the paper's irregular networks plus the hierarchical
// fat-tree / dragonfly generators production fabrics actually use). Emits
// machine-readable BENCH_scale.json (bench_common.hpp record layout) so the
// committed baseline documents the memory-growth curve, and optionally
// gates on an absolute heap ceiling and on near-linear growth in fabric
// size (switches + hosts).
//
// Flags:
//   --sizes=64,256,1024    nominal switch counts (mapped per family to the
//                          nearest constructible size; records carry the
//                          actual switch count)
//   --kinds=irregular,fat-tree,dragonfly
//   --warmup=N --measure=N packet budget per run
//   --repeats=N            best-of-N wall time per case
//   --threads=N            parallel-kernel shard threads (0 = sequential
//                          calendar kernel)
//   --json=PATH            record path (default BENCH_scale.json)
//   --max-heap-kb=N        exits 1 when any case's heap peak exceeds N KiB
//                          (0 disables)
//   --max-growth=X         exits 1 when, within a family, heap grows more
//                          than X times faster than fabric size (switches +
//                          hosts) between the smallest and largest case
//                          (0 disables)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

// Maps a nominal size to a constructible spec of each family. The fat-tree
// lattice (levels x arity^(levels-1)) doesn't hit every power of two, so
// nominal 64 builds the nearest k-ary n-tree below it (48 switches).
SimParams familyParams(const std::string& kind, int nominalSwitches) {
  SimParams p;
  p.nodesPerSwitch = 4;
  p.pattern = TrafficPattern::kUniform;
  p.saturation = true;  // densest schedule: the kernel-bound regime
  if (kind == "irregular") {
    p.topoKind = TopologyKind::kIrregular;
    p.numSwitches = nominalSwitches;
    p.linksPerSwitch = 4;
  } else if (kind == "fat-tree") {
    p.topoKind = TopologyKind::kFatTree;
    if (nominalSwitches <= 64) {
      p.fatTreeArity = 4;  // 3 x 16 = 48 switches / 64 hosts
      p.fatTreeLevels = 3;
    } else if (nominalSwitches <= 256) {
      p.fatTreeArity = 4;  // 4 x 64 = 256 switches / 256 hosts
      p.fatTreeLevels = 4;
    } else {
      p.fatTreeArity = 2;  // 8 x 128 = 1024 switches (the scale gate)
      p.fatTreeLevels = 8;
      p.nodesPerSwitch = 2;  // hostsPerLeaf: 256 hosts
    }
  } else if (kind == "dragonfly") {
    p.topoKind = TopologyKind::kDragonfly;
    if (nominalSwitches <= 64) {
      p.dragonflyRoutersPerGroup = 8;  // 8 x 8 = 64 switches / 256 hosts
      p.dragonflyGlobalPerRouter = 1;
      p.dragonflyGroups = 8;
    } else if (nominalSwitches <= 256) {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 16 = 256 switches
      p.dragonflyGlobalPerRouter = 2;
      p.dragonflyGroups = 16;
    } else {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 64 = 1024 switches
      p.dragonflyGlobalPerRouter = 4;
      p.dragonflyGroups = 64;
    }
  } else {
    throw std::invalid_argument("unknown kind: " + kind);
  }
  return p;
}

struct CaseResult {
  KernelBenchRecord rec;
  int hosts = 0;
};

CaseResult runCase(const std::string& kind, int nominal, std::uint64_t warmup,
                   std::uint64_t measure, int repeats, int threads) {
  SimParams p = familyParams(kind, nominal);
  p.warmupPackets = warmup;
  p.measurePackets = measure;
  if (threads > 0) {
    p.fabric.kernel = SimKernel::kParallel;
    p.fabric.threads = threads;
  }
  const Topology topo = buildTopology(p);

  CaseResult best;
  SimResults sim;
  for (int rep = 0; rep < repeats; ++rep) {
    heap::resetPeak();
    const auto t0 = std::chrono::steady_clock::now();
    // The whole setup-and-run path is under the gauge on purpose: at 1024
    // switches the LFT image build and fabric construction are exactly the
    // allocations the scale work must keep linear.
    SimResults r = runSimulation(p);
    const auto t1 = std::chrono::steady_clock::now();
    const long heapKb = heap::peakKb();
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || wallMs < best.rec.wallMs) {
      best.rec.wallMs = wallMs;
      best.rec.heapPeakKb = heapKb;
      sim = r;
    }
  }
  best.rec.switches = topo.numSwitches();
  best.rec.kernel = kind;  // the family labels the record, not the kernel
  best.rec.threads = sim.threadsUsed;
  best.rec.events = sim.kernelEvents;
  best.rec.eventsPerSec =
      best.rec.wallMs > 0.0
          ? static_cast<double>(best.rec.events) / (best.rec.wallMs / 1000.0)
          : 0.0;
  best.rec.simulatedMs = static_cast<double>(sim.simEndTimeNs) / 1e6;
  best.rec.wallMsPerSimMs = best.rec.simulatedMs > 0.0
                                ? best.rec.wallMs / best.rec.simulatedMs
                                : 0.0;
  best.hosts = topo.numNodes();

  if (sim.deadlockSuspected || !sim.measurementComplete ||
      sim.invariants.violations() > 0) {
    std::fprintf(stderr, "FAIL: unhealthy run for %s/%d: %s\n", kind.c_str(),
                 nominal, sim.summary().c_str());
    std::exit(1);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::vector<int> sizes = flags.intList("sizes", {64, 256, 1024});
  std::vector<std::string> kinds;
  {
    std::stringstream ss(flags.str("kinds", "irregular,fat-tree,dragonfly"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) kinds.push_back(item);
    }
  }
  const auto warmup = static_cast<std::uint64_t>(flags.integer("warmup", 1000));
  const auto measure =
      static_cast<std::uint64_t>(flags.integer("measure", 6000));
  const int repeats = flags.integer("repeats", 1);
  const int threads = flags.integer("threads", 0);
  const std::string jsonPath = flags.str("json", "BENCH_scale.json");
  const long maxHeapKb = flags.integer("max-heap-kb", 0);
  const double maxGrowth = flags.real("max-growth", 0.0);
  warnUnknownFlags(flags);

  std::printf("topology-scale sweep: saturated uniform, warmup=%llu "
              "measure=%llu repeats=%d threads=%d\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(measure), repeats, threads);
  printRule();
  std::printf("%-10s  %9s  %7s  %12s  %9s  %12s  %9s\n", "family", "switches",
              "hosts", "events", "wall ms", "events/sec", "heap KiB");

  int rc = 0;
  std::vector<KernelBenchRecord> records;
  for (const std::string& kind : kinds) {
    CaseResult first;
    CaseResult last;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const CaseResult r =
          runCase(kind, sizes[si], warmup, measure, repeats, threads);
      std::printf("%-10s  %9d  %7d  %12llu  %9.1f  %12.0f  %9ld\n",
                  kind.c_str(), r.rec.switches, r.hosts,
                  static_cast<unsigned long long>(r.rec.events), r.rec.wallMs,
                  r.rec.eventsPerSec, r.rec.heapPeakKb);
      records.push_back(r.rec);
      if (si == 0) first = r;
      last = r;
      if (maxHeapKb > 0 && r.rec.heapPeakKb > maxHeapKb) {
        std::fprintf(stderr,
                     "FAIL: %s/%d heap peak %ld KiB exceeds ceiling %ld KiB\n",
                     kind.c_str(), r.rec.switches, r.rec.heapPeakKb, maxHeapKb);
        rc = 1;
      }
    }
    // Near-linear growth gate: heap may grow no more than `maxGrowth` times
    // faster than fabric size (switches + hosts — LFT memory is O(S x N),
    // so hosts must count). A superlinear blow-up here is exactly the bug
    // class the lazy-bank / batch-write work removes.
    if (maxGrowth > 0.0 && sizes.size() >= 2 && first.rec.heapPeakKb > 0) {
      const double heapRatio = static_cast<double>(last.rec.heapPeakKb) /
                               static_cast<double>(first.rec.heapPeakKb);
      const double sizeRatio =
          static_cast<double>(last.rec.switches + last.hosts) /
          static_cast<double>(first.rec.switches + first.hosts);
      std::printf("%-10s  growth: heap %.2fx over a %.2fx fabric "
                  "(%.2fx per unit)\n",
                  kind.c_str(), heapRatio, sizeRatio, heapRatio / sizeRatio);
      if (heapRatio > maxGrowth * sizeRatio) {
        std::fprintf(stderr,
                     "FAIL: %s heap grew %.2fx over a %.2fx fabric "
                     "(limit %.2fx per unit)\n",
                     kind.c_str(), heapRatio, sizeRatio, maxGrowth);
        rc = 1;
      }
    }
  }
  printRule();

  char config[160];
  std::snprintf(config, sizeof(config),
                "saturated uniform, warmup=%llu measure=%llu repeats=%d "
                "threads=%d cores=%u",
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(measure), repeats, threads,
                std::thread::hardware_concurrency());
  writeKernelBenchJson(jsonPath, "perf_scale", config, records);
  std::printf("wrote %s\n", jsonPath.c_str());
  return rc;
}
