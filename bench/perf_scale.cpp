// Topology-scale sweep: end-to-end simulator throughput and heap footprint
// as the fabric grows from workgroup size to 4096 switches, on all three
// topology families (the paper's irregular networks plus the hierarchical
// fat-tree / dragonfly generators production fabrics actually use). Emits
// machine-readable BENCH_scale.json (bench_common.hpp record layout) so the
// committed baseline documents the memory-growth curve, and optionally
// gates on an absolute heap ceiling and on near-linear growth in fabric
// size (switches + hosts).
//
// Each record carries the setup/plan/run wall-time phase breakdown, and the
// sweep closes with a warm-reuse measurement per family: a SimSession runs
// the same point twice, and the second (reset + reinstall) run's setup+plan
// cost is compared against the first (fresh build) run's.
//
// Flags:
//   --sizes=64,...,4096    nominal switch counts (mapped per family to the
//                          nearest constructible size; records carry the
//                          actual switch count)
//   --kinds=irregular,fat-tree,dragonfly
//   --warmup=N --measure=N packet budget per run. Floors, not absolutes:
//                          the effective budget is max(flag, hosts x
//                          per-host budget) so the measured interval does
//                          not collapse when one budget is spread over
//                          thousands of hosts.
//   --repeats=N            best-of-N wall time per case
//   --threads=N            parallel-kernel shard threads (0 = sequential
//                          calendar kernel)
//   --json=PATH            record path (default BENCH_scale.json)
//   --max-heap-kb=N        exits 1 when any case's heap peak exceeds N KiB
//                          (0 disables)
//   --max-growth=X         exits 1 when, within a family, heap minus the
//                          dense LFT block (an O(switches x LIDs) term by
//                          construction — every switch addresses every LID)
//                          grows more than X times faster than fabric size
//                          (wired switch ports + hosts) — checked end to
//                          end (smallest vs largest case) AND on every
//                          adjacent size step (0 disables)
//   --min-warm-speedup=X   exits 1 when a family's warm (setup+plan) cost is
//                          not at least X times below the fresh build's
//                          (0 disables)
//   --warm-size=N          nominal size of the warm-reuse measurement
//                          (default 1024; 0 disables the warm pass)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

// Maps a nominal size to a constructible spec of each family. The fat-tree
// lattice (levels x arity^(levels-1)) doesn't hit every power of two, so
// nominal 64 builds the nearest k-ary n-tree below it (48 switches),
// nominal 1024 the nearest 4-level tree (arity 6, 864 switches) and
// nominal 4096 the arity-10 4-level tree (4000 switches). Every family
// carries 2 hosts per edge switch at every size so the host axis scales
// with the switch axis and the growth curve has no preset discontinuities.
SimParams familyParams(const std::string& kind, int nominalSwitches) {
  SimParams p;
  p.nodesPerSwitch = 2;  // hosts per edge switch, all families and sizes
  p.pattern = TrafficPattern::kUniform;
  p.saturation = true;  // densest schedule: the kernel-bound regime
  if (kind == "irregular") {
    p.topoKind = TopologyKind::kIrregular;
    p.numSwitches = nominalSwitches;
    p.linksPerSwitch = 4;
  } else if (kind == "fat-tree") {
    p.topoKind = TopologyKind::kFatTree;
    if (nominalSwitches <= 64) {
      p.fatTreeArity = 4;  // 3 x 16 = 48 switches / 32 hosts
      p.fatTreeLevels = 3;
    } else if (nominalSwitches <= 256) {
      p.fatTreeArity = 4;  // 4 x 64 = 256 switches / 128 hosts
      p.fatTreeLevels = 4;
    } else if (nominalSwitches <= 1024) {
      p.fatTreeArity = 6;  // 4 x 216 = 864 switches / 432 hosts
      p.fatTreeLevels = 4;
    } else if (nominalSwitches <= 2048) {
      p.fatTreeArity = 8;  // 4 x 512 = 2048 switches / 1024 hosts
      p.fatTreeLevels = 4;
    } else {
      p.fatTreeArity = 10;  // 4 x 1000 = 4000 switches / 2000 hosts
      p.fatTreeLevels = 4;
    }
  } else if (kind == "dragonfly") {
    p.topoKind = TopologyKind::kDragonfly;
    if (nominalSwitches <= 64) {
      p.dragonflyRoutersPerGroup = 8;  // 8 x 8 = 64 switches
      p.dragonflyGlobalPerRouter = 1;
      p.dragonflyGroups = 8;
    } else if (nominalSwitches <= 256) {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 16 = 256 switches
      p.dragonflyGlobalPerRouter = 2;
      p.dragonflyGroups = 16;
    } else if (nominalSwitches <= 1024) {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 64 = 1024 switches
      p.dragonflyGlobalPerRouter = 4;
      p.dragonflyGroups = 64;
    } else if (nominalSwitches <= 2048) {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 128 = 2048 switches
      p.dragonflyGlobalPerRouter = 8;
      p.dragonflyGroups = 128;
    } else {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 256 = 4096 switches
      p.dragonflyGlobalPerRouter = 16;
      p.dragonflyGroups = 256;
    }
  } else {
    throw std::invalid_argument("unknown kind: " + kind);
  }
  return p;
}

// Per-host packet budgets backing the measurement-window floor. A flat
// --measure spread over 8k hosts used to shrink the measured interval to a
// few ns (simulatedMs 0.001 at dragonfly-1024), making wallMsPerSimMs and
// eventsPerSec meaningless at exactly the sizes the sweep exists for.
constexpr std::uint64_t kWarmupPerHost = 1;
constexpr std::uint64_t kMeasurePerHost = 6;

struct CaseResult {
  KernelBenchRecord rec;
  int hosts = 0;
  // Fabric size in the units that actually own memory: wired switch ports
  // (buffers, credit state, arena slots) plus hosts (LIDs, queues, RNG
  // lanes). Hierarchical families grow switch radix with scale — a
  // dragonfly router has 11 wired ports at 64 switches and 33 at 4096 — so
  // normalizing growth by switch count alone would book that physical
  // hardware growth as a memory regression.
  long units = 0;
};

long wiredPortsPlusHosts(const Topology& topo) {
  long wired = 0;
  for (SwitchId s = 0; s < topo.numSwitches(); ++s) {
    for (PortIndex p = 0; p < topo.portsPerSwitch(); ++p) {
      if (topo.peer(s, p).kind != PeerKind::kUnused) ++wired;
    }
  }
  return wired + topo.numNodes();
}

CaseResult runCase(const std::string& kind, int nominal, std::uint64_t warmup,
                   std::uint64_t measure, int repeats, int threads) {
  SimParams p = familyParams(kind, nominal);
  if (threads > 0) {
    p.fabric.kernel = SimKernel::kParallel;
    p.fabric.threads = threads;
  }
  const Topology topo = buildTopology(p);
  const auto hosts = static_cast<std::uint64_t>(topo.numNodes());
  p.warmupPackets = std::max(warmup, hosts * kWarmupPerHost);
  p.measurePackets = std::max(measure, hosts * kMeasurePerHost);

  CaseResult best;
  SimResults sim;
  for (int rep = 0; rep < repeats; ++rep) {
    heap::resetPeak();
    const auto t0 = std::chrono::steady_clock::now();
    // The whole setup-and-run path is under the gauge on purpose: at 4096
    // switches the LFT image build and fabric construction are exactly the
    // allocations the scale work must keep linear.
    SimResults r = runSimulation(p);
    const auto t1 = std::chrono::steady_clock::now();
    const long heapKb = heap::peakKb();
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || wallMs < best.rec.wallMs) {
      best.rec.wallMs = wallMs;
      best.rec.heapPeakKb = heapKb;
      sim = r;
    }
  }
  best.rec.switches = topo.numSwitches();
  best.rec.kernel = kind;  // the family labels the record, not the kernel
  best.rec.threads = sim.threadsUsed;
  best.rec.events = sim.kernelEvents;
  best.rec.eventsPerSec =
      best.rec.wallMs > 0.0
          ? static_cast<double>(best.rec.events) / (best.rec.wallMs / 1000.0)
          : 0.0;
  best.rec.simulatedMs = static_cast<double>(sim.simEndTimeNs) / 1e6;
  best.rec.wallMsPerSimMs = best.rec.simulatedMs > 0.0
                                ? best.rec.wallMs / best.rec.simulatedMs
                                : 0.0;
  best.rec.setupMs = sim.setupWallMs;
  best.rec.planMs = sim.planWallMs;
  best.rec.runMs = sim.runWallMs;
  best.hosts = topo.numNodes();
  best.units = wiredPortsPlusHosts(topo);
  best.rec.ports = best.units - best.hosts;
  // Dense LFT bytes: every switch holds one forwarding entry per LID, so
  // the table block is switches x (nodes + 1) << lmc by construction. The
  // growth gate subtracts this known O(S x N) hardware-table term and
  // checks that everything else — arena, credit state, queues, planner —
  // scales with the port+host count.
  best.rec.lftKb = static_cast<long>(
      (static_cast<long long>(topo.numSwitches()) *
       ((static_cast<long long>(topo.numNodes()) + 1) << p.fabric.lmc)) /
      1024);

  if (sim.deadlockSuspected || !sim.measurementComplete ||
      sim.invariants.violations() > 0) {
    std::fprintf(stderr, "FAIL: unhealthy run for %s/%d: %s\n", kind.c_str(),
                 nominal, sim.summary().c_str());
    std::exit(1);
  }
  return best;
}

// Warm-fabric reuse: run one parameter point twice through a SimSession and
// record both the fresh build's and the warm reset's setup+plan cost. The
// two runs must agree bit for bit — a warm fabric that drifts is a bug, not
// a faster fabric.
struct WarmResult {
  KernelBenchRecord fresh;
  KernelBenchRecord warm;
  double speedup = 0.0;
};

WarmResult runWarmCase(const std::string& kind, int nominal, int threads) {
  SimParams p = familyParams(kind, nominal);
  if (threads > 0) {
    p.fabric.kernel = SimKernel::kParallel;
    p.fabric.threads = threads;
  }
  // Short traffic window: the measurement target is setup+plan, not the run.
  p.warmupPackets = 200;
  p.measurePackets = 1000;

  SimSession session(p);
  const SimResults fresh = session.run();
  const SimResults warm = session.run();
  if (fresh.delivered != warm.delivered ||
      fresh.kernelEvents != warm.kernelEvents ||
      fresh.avgLatencyNs != warm.avgLatencyNs ||
      fresh.simEndTimeNs != warm.simEndTimeNs) {
    std::fprintf(stderr,
                 "FAIL: warm rerun diverged for %s/%d: %s vs %s\n",
                 kind.c_str(), nominal, fresh.summary().c_str(),
                 warm.summary().c_str());
    std::exit(1);
  }

  WarmResult out;
  auto fill = [&](KernelBenchRecord& rec, const SimResults& r,
                  const char* tag) {
    rec.switches = session.topology().numSwitches();
    rec.kernel = kind + tag;
    rec.threads = r.threadsUsed;
    rec.events = r.kernelEvents;
    rec.setupMs = r.setupWallMs;
    rec.planMs = r.planWallMs;
    rec.runMs = r.runWallMs;
    rec.wallMs = r.setupWallMs + r.planWallMs;  // the reused portion
    rec.simulatedMs = static_cast<double>(r.simEndTimeNs) / 1e6;
  };
  fill(out.fresh, fresh, "-fresh");
  fill(out.warm, warm, "-warm");
  out.speedup = out.warm.wallMs > 0.0 ? out.fresh.wallMs / out.warm.wallMs
                                      : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::vector<int> sizes =
      flags.intList("sizes", {64, 256, 1024, 2048, 4096});
  std::vector<std::string> kinds;
  {
    std::stringstream ss(flags.str("kinds", "irregular,fat-tree,dragonfly"));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) kinds.push_back(item);
    }
  }
  const auto warmup = static_cast<std::uint64_t>(flags.integer("warmup", 1000));
  const auto measure =
      static_cast<std::uint64_t>(flags.integer("measure", 6000));
  const int repeats = flags.integer("repeats", 1);
  const int threads = flags.integer("threads", 0);
  const std::string jsonPath = flags.str("json", "BENCH_scale.json");
  const long maxHeapKb = flags.integer("max-heap-kb", 0);
  const double maxGrowth = flags.real("max-growth", 0.0);
  const double minWarmSpeedup = flags.real("min-warm-speedup", 0.0);
  const int warmSize = flags.integer("warm-size", 1024);
  warnUnknownFlags(flags);

  std::printf("topology-scale sweep: saturated uniform, warmup>=%llu "
              "measure>=%llu (floors; scaled by hosts) repeats=%d threads=%d\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(measure), repeats, threads);
  printRule();
  std::printf("%-10s  %9s  %7s  %12s  %9s  %12s  %9s  %8s  %8s\n", "family",
              "switches", "hosts", "events", "wall ms", "events/sec",
              "heap KiB", "lft KiB", "plan ms");

  int rc = 0;
  std::vector<KernelBenchRecord> records;
  for (const std::string& kind : kinds) {
    std::vector<CaseResult> results;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const CaseResult r =
          runCase(kind, sizes[si], warmup, measure, repeats, threads);
      std::printf("%-10s  %9d  %7d  %12llu  %9.1f  %12.0f  %9ld  %8ld  "
                  "%8.1f\n",
                  kind.c_str(), r.rec.switches, r.hosts,
                  static_cast<unsigned long long>(r.rec.events), r.rec.wallMs,
                  r.rec.eventsPerSec, r.rec.heapPeakKb, r.rec.lftKb,
                  r.rec.planMs);
      records.push_back(r.rec);
      results.push_back(r);
      if (maxHeapKb > 0 && r.rec.heapPeakKb > maxHeapKb) {
        std::fprintf(stderr,
                     "FAIL: %s/%d heap peak %ld KiB exceeds ceiling %ld KiB\n",
                     kind.c_str(), r.rec.switches, r.rec.heapPeakKb, maxHeapKb);
        rc = 1;
      }
    }
    // Near-linear growth gate, normalized by wired ports + hosts (the units
    // that own buffers, credit state and LIDs; see wiredPortsPlusHosts).
    // The dense LFT block — switches x LIDs, one byte per entry — is
    // subtracted first: it is O(S x N) by construction (every switch
    // addresses every LID), so it would read as "superlinear growth" in any
    // fixed-radix family no matter how lean the simulator is. What remains
    // is exactly the overhead this gate exists to bound: arena slots,
    // credit vectors, queues, planner scratch, pool capacity.
    // Two checks per family, both against the same `maxGrowth` slope:
    // end-to-end (smallest vs largest case) and the steepest adjacent step,
    // so a superlinear blow-up localized to one size step — the signature
    // of a reintroduced per-pair table or per-port malloc storm — cannot
    // hide inside a benign end-to-end average.
    const auto overheadKb = [](const CaseResult& r) {
      return static_cast<double>(r.rec.heapPeakKb - r.rec.lftKb);
    };
    if (maxGrowth > 0.0 && results.size() >= 2 &&
        overheadKb(results.front()) > 0) {
      const CaseResult& first = results.front();
      const CaseResult& last = results.back();
      const double rawRatio = static_cast<double>(last.rec.heapPeakKb) /
                              static_cast<double>(first.rec.heapPeakKb);
      const double heapRatio = overheadKb(last) / overheadKb(first);
      const double sizeRatio = static_cast<double>(last.units) /
                               static_cast<double>(first.units);
      double worstStep = 0.0;
      int worstAt = 0;
      for (std::size_t si = 1; si < results.size(); ++si) {
        const CaseResult& a = results[si - 1];
        const CaseResult& b = results[si];
        if (overheadKb(a) <= 0 || a.units <= 0 || b.units <= a.units) {
          continue;
        }
        const double step = (overheadKb(b) / overheadKb(a)) /
                            (static_cast<double>(b.units) /
                             static_cast<double>(a.units));
        if (step > worstStep) {
          worstStep = step;
          worstAt = b.rec.switches;
        }
      }
      std::printf("%-10s  growth: heap %.2fx raw, %.2fx minus LFT tables, "
                  "over a %.2fx fabric (%.2fx per port+host unit; worst "
                  "step %.2fx at %d)\n",
                  kind.c_str(), rawRatio, heapRatio, sizeRatio,
                  heapRatio / sizeRatio, worstStep, worstAt);
      if (heapRatio > maxGrowth * sizeRatio) {
        std::fprintf(stderr,
                     "FAIL: %s non-table heap grew %.2fx over a %.2fx "
                     "fabric (limit %.2fx per unit)\n",
                     kind.c_str(), heapRatio, sizeRatio, maxGrowth);
        rc = 1;
      }
      if (worstStep > maxGrowth) {
        std::fprintf(stderr,
                     "FAIL: %s non-table heap grew %.2fx per unit on the "
                     "step to %d switches (limit %.2fx)\n",
                     kind.c_str(), worstStep, worstAt, maxGrowth);
        rc = 1;
      }
    }
  }
  printRule();

  if (warmSize > 0) {
    std::printf("warm-fabric reuse at nominal %d (setup+plan ms, bit-checked "
                "rerun)\n", warmSize);
    std::printf("%-10s  %9s  %12s  %12s  %8s\n", "family", "switches",
                "fresh ms", "warm ms", "speedup");
    for (const std::string& kind : kinds) {
      const WarmResult w = runWarmCase(kind, warmSize, threads);
      std::printf("%-10s  %9d  %12.1f  %12.2f  %7.1fx\n", kind.c_str(),
                  w.fresh.switches, w.fresh.wallMs, w.warm.wallMs, w.speedup);
      records.push_back(w.fresh);
      records.push_back(w.warm);
      if (minWarmSpeedup > 0.0 && w.speedup < minWarmSpeedup) {
        std::fprintf(stderr,
                     "FAIL: %s warm reuse %.1fx below required %.1fx\n",
                     kind.c_str(), w.speedup, minWarmSpeedup);
        rc = 1;
      }
    }
    printRule();
  }

  char config[200];
  std::snprintf(config, sizeof(config),
                "saturated uniform, warmup>=%llu measure>=%llu (per-host "
                "floors %llu/%llu) repeats=%d threads=%d cores=%u",
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(measure),
                static_cast<unsigned long long>(kWarmupPerHost),
                static_cast<unsigned long long>(kMeasurePerHost), repeats,
                threads, std::thread::hardware_concurrency());
  writeKernelBenchJson(jsonPath, "perf_scale", config, records);
  std::printf("wrote %s\n", jsonPath.c_str());
  return rc;
}
