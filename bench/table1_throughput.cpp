//
// Table 1: minimum / average / maximum factor of throughput increase
// (100 % adaptive traffic vs deterministic) over random irregular
// topologies, for several network sizes, packet sizes and traffic patterns.
//
// Left block:  4 links between switches, 2 routing options.
// Right block: 6 links between switches, up to 4 routing options.
//
// Usage: table1_throughput [--mode=quick|paper] [sizes=...] [topologies=N]
//
#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

struct Row {
  const char* label;
  TrafficPattern pattern;
  double hotspotFraction;
  int packetBytes;
};

void runBlock(const Mode& mode, int linksPerSwitch, int numOptions,
              const std::vector<Row>& rows) {
  std::printf("--- %d links/switch, up to %d routing options ---\n",
              linksPerSwitch, numOptions);
  std::printf("%-28s %4s   %6s %6s %6s\n", "traffic", "sw", "min", "avg",
              "max");
  for (int size : mode.sizes) {
    for (const Row& row : rows) {
      SimParams base;
      base.numSwitches = size;
      base.linksPerSwitch = linksPerSwitch;
      base.fabric.numOptions = numOptions;
      base.fabric.lmc = numOptions > 2 ? 2 : 1;
      base.packetBytes = row.packetBytes;
      base.pattern = row.pattern;
      base.hotspotFraction = row.hotspotFraction;
      base.warmupPackets = mode.warmupPackets;
      base.measurePackets = mode.measurePackets;
      const ThroughputFactors f = measureThroughputFactors(
          base, mode.topologies, /*seedBase=*/1, defaultRamp(mode.paper),
          mode.threads);
      std::printf("%-28s %4d   %6.2f %6.2f %6.2f\n", row.label, size,
                  f.factor.min, f.factor.avg, f.factor.max);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{8, 16, 32, 64},
                              /*paperSizes=*/{8, 16, 32, 64},
                              /*quickTopos=*/3, /*paperTopos=*/10);
  warnUnknownFlags(flags);

  std::printf("Table 1: factor of network throughput increase, "
              "100%% adaptive vs deterministic\n(min/avg/max over %d random "
              "topologies per size)\n\n",
              mode.topologies);

  std::vector<Row> left{
      {"uniform, 32B", TrafficPattern::kUniform, 0.0, 32},
      {"uniform, 256B", TrafficPattern::kUniform, 0.0, 256},
      {"bit-reversal, 32B", TrafficPattern::kBitReversal, 0.0, 32},
      {"hot-spot 5%, 32B", TrafficPattern::kHotspot, 0.05, 32},
      {"hot-spot 10%, 32B", TrafficPattern::kHotspot, 0.10, 32},
      {"hot-spot 20%, 32B", TrafficPattern::kHotspot, 0.20, 32},
  };
  if (!mode.paper) {
    // Quick mode: trim to the patterns that carry the table's story.
    left = {
        {"uniform, 32B", TrafficPattern::kUniform, 0.0, 32},
        {"uniform, 256B", TrafficPattern::kUniform, 0.0, 256},
        {"bit-reversal, 32B", TrafficPattern::kBitReversal, 0.0, 32},
        {"hot-spot 10%, 32B", TrafficPattern::kHotspot, 0.10, 32},
    };
  }
  runBlock(mode, /*linksPerSwitch=*/4, /*numOptions=*/2, left);

  const std::vector<Row> right{
      {"uniform, 32B", TrafficPattern::kUniform, 0.0, 32},
      {"uniform, 256B", TrafficPattern::kUniform, 0.0, 256},
  };
  runBlock(mode, /*linksPerSwitch=*/6, /*numOptions=*/4,
           mode.paper ? right
                      : std::vector<Row>{{"uniform, 32B",
                                          TrafficPattern::kUniform, 0.0, 32}});
  return 0;
}
