#pragma once
//
// Shared plumbing for the paper-reproduction benches: quick/paper mode
// selection, table formatting, and the machine-readable JSON records the
// perf baseline uses to detect kernel regressions.
//
// Every bench accepts:
//   --mode=quick   (default) small sweep sized for a laptop-class machine
//   --mode=paper   the paper's full configuration (10 topologies, all sizes)
// plus bench-specific key=value overrides.
//
#include <malloc.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "util/flags.hpp"

namespace ibadapt::bench {

// ---- per-case heap gauge --------------------------------------------------
//
// getrusage's ru_maxrss is a process-lifetime high-water mark: in a bench
// running many cases back to back, every case at or after the hungriest one
// reports the same number. The benches instead meter the heap directly —
// the global allocator (replaced below; bench binaries are single-TU, so
// the replacement covers the whole executable) keeps a live-byte counter
// with a high-water mark that each case resets on entry. Aligned-new
// allocations pass through untracked; the simulator doesn't use them on
// the hot path.

namespace heap {

inline std::atomic<long long>& liveBytes() {
  static std::atomic<long long> v{0};
  return v;
}
inline std::atomic<long long>& peakBytes() {
  static std::atomic<long long> v{0};
  return v;
}
inline void onAlloc(long long n) {
  const long long now = liveBytes().fetch_add(n, std::memory_order_relaxed) + n;
  long long p = peakBytes().load(std::memory_order_relaxed);
  while (now > p && !peakBytes().compare_exchange_weak(
                        p, now, std::memory_order_relaxed)) {
  }
}
inline void onFree(long long n) {
  liveBytes().fetch_sub(n, std::memory_order_relaxed);
}
/// Start a measurement interval: the next peakKb() reports the high-water
/// mark of live heap bytes since this call (seeded with what is live now).
inline void resetPeak() {
  peakBytes().store(liveBytes().load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}
inline long peakKb() {
  return static_cast<long>(peakBytes().load(std::memory_order_relaxed) / 1024);
}

}  // namespace heap
}  // namespace ibadapt::bench

// Replaceable global allocation functions. The tracked size is the actual
// usable block size (malloc_usable_size), so the gauge reflects allocator
// rounding the same way RSS would.
inline void* ibadaptBenchAlloc(std::size_t n) {
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  ibadapt::bench::heap::onAlloc(
      static_cast<long long>(malloc_usable_size(p)));
  return p;
}
inline void ibadaptBenchFree(void* p) noexcept {
  if (p == nullptr) return;
  ibadapt::bench::heap::onFree(
      static_cast<long long>(malloc_usable_size(p)));
  std::free(p);
}
void* operator new(std::size_t n) { return ibadaptBenchAlloc(n); }
void* operator new[](std::size_t n) { return ibadaptBenchAlloc(n); }
void operator delete(void* p) noexcept { ibadaptBenchFree(p); }
void operator delete[](void* p) noexcept { ibadaptBenchFree(p); }
void operator delete(void* p, std::size_t) noexcept { ibadaptBenchFree(p); }
void operator delete[](void* p, std::size_t) noexcept { ibadaptBenchFree(p); }

namespace ibadapt::bench {

struct Mode {
  bool paper = false;
  std::vector<int> sizes;       // switch counts
  int topologies = 0;           // random topologies per configuration
  std::uint64_t warmupPackets = 0;
  std::uint64_t measurePackets = 0;
  int threads = 0;
};

inline Mode parseMode(const Flags& flags, std::vector<int> quickSizes,
                      std::vector<int> paperSizes, int quickTopos,
                      int paperTopos) {
  Mode m;
  m.paper = flags.str("mode", "quick") == "paper";
  m.sizes = flags.intList("sizes", m.paper ? paperSizes : quickSizes);
  m.topologies = flags.integer("topologies", m.paper ? paperTopos : quickTopos);
  m.warmupPackets = static_cast<std::uint64_t>(
      flags.integer("warmup", m.paper ? 4000 : 1500));
  m.measurePackets = static_cast<std::uint64_t>(
      flags.integer("measure", m.paper ? 20000 : 6000));
  m.threads = flags.integer("threads", 0);
  return m;
}

/// Topology-only nominal-size mapping for the paper sweeps' --family axis:
/// sets the generator kind and spec, nothing else (no hosts-per-switch,
/// pattern, or saturation policy — those stay with each bench). The
/// fat-tree lattice doesn't hit every power of two, so nominal 64 builds
/// the 48-switch 4-ary 3-tree and nominal 1024 the 864-switch arity-6
/// 4-level tree, same convention as perf_scale.
inline SimParams familyTopoParams(const std::string& family,
                                  int nominalSwitches) {
  SimParams p;
  if (family == "irregular") {
    p.topoKind = TopologyKind::kIrregular;
    p.numSwitches = nominalSwitches;
    p.linksPerSwitch = 4;
  } else if (family == "fat-tree") {
    p.topoKind = TopologyKind::kFatTree;
    if (nominalSwitches <= 64) {
      p.fatTreeArity = 4;  // 3 x 16 = 48 switches
      p.fatTreeLevels = 3;
    } else if (nominalSwitches <= 256) {
      p.fatTreeArity = 4;  // 4 x 64 = 256 switches
      p.fatTreeLevels = 4;
    } else {
      p.fatTreeArity = 6;  // 4 x 216 = 864 switches
      p.fatTreeLevels = 4;
    }
  } else if (family == "dragonfly") {
    p.topoKind = TopologyKind::kDragonfly;
    if (nominalSwitches <= 64) {
      p.dragonflyRoutersPerGroup = 8;  // 8 x 8 = 64 switches
      p.dragonflyGlobalPerRouter = 1;
      p.dragonflyGroups = 8;
    } else if (nominalSwitches <= 256) {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 16 = 256 switches
      p.dragonflyGlobalPerRouter = 2;
      p.dragonflyGroups = 16;
    } else {
      p.dragonflyRoutersPerGroup = 16;  // 16 x 64 = 1024 switches
      p.dragonflyGlobalPerRouter = 4;
      p.dragonflyGroups = 64;
    }
  } else {
    throw std::invalid_argument("unknown family: " + family);
  }
  return p;
}

inline void warnUnknownFlags(const Flags& flags) {
  for (const auto& key : flags.unknownKeys()) {
    std::fprintf(stderr, "warning: unrecognized flag '%s'\n", key.c_str());
  }
}

inline const char* patternName(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kBitReversal:
      return "bit-reversal";
    case TrafficPattern::kHotspot:
      return "hot-spot";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kShuffle:
      return "shuffle";
    case TrafficPattern::kLocality:
      return "locality";
    case TrafficPattern::kIncast:
      return "incast";
    case TrafficPattern::kPermStorm:
      return "perm-storm";
  }
  return "?";
}

inline RampOptions defaultRamp(bool paper) {
  RampOptions r;
  r.startLoadPerNode = 0.004;
  r.growth = paper ? 1.35 : 1.5;
  return r;
}

inline void printRule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

// ---- machine-readable kernel-perf records ---------------------------------
//
// One record per (switch count, kernel) macro-bench run. The writer emits a
// stable JSON layout (one case object per line) so the committed baseline
// diffs cleanly; the reader is deliberately naive — it only understands the
// writer's own output, which is all a regression check needs.

struct KernelBenchRecord {
  int switches = 0;
  std::string kernel;  // "calendar" | "legacy-heap" | "parallel"
  int threads = 1;     // engine shard threads (1 for sequential kernels)
  std::uint64_t events = 0;
  double wallMs = 0.0;
  double eventsPerSec = 0.0;
  double simulatedMs = 0.0;
  double wallMsPerSimMs = 0.0;
  /// Case-local heap high-water mark (live bytes over the case, KiB) — see
  /// the heap gauge above; NOT the process-lifetime RSS.
  long heapPeakKb = 0;
  /// Phase breakdown of wallMs (SimResults wall-clock metadata): fabric
  /// construction, routing plan + LFT install, event-loop execution.
  double setupMs = 0.0;
  double planMs = 0.0;
  double runMs = 0.0;
  /// Wired switch ports in the fabric (0 = not recorded). The scale sweep
  /// emits it so the committed growth curve can be normalized by the units
  /// that own buffers and credit state, not by switch count alone.
  long ports = 0;
  /// Dense forwarding-table bytes (switches x LID limit, KiB; 0 = not
  /// recorded). The LFT is O(switches x nodes) by construction — every
  /// switch addresses every LID — so the scale sweep reports it as its own
  /// term and gates near-linearity on heapPeakKb minus this hardware-table
  /// floor.
  long lftKb = 0;
  /// Deterministic parallel-kernel proxy metrics (0/absent = not recorded;
  /// see SimResults). Identical on every host for a fixed shard count and
  /// partition strategy, which is what lets the partition gate run on
  /// 1-core CI machines where wall-clock speedup is meaningless.
  std::uint64_t crossShardMessages = 0;
  std::uint64_t windows = 0;
  std::uint64_t cutLinks = 0;
  std::uint64_t totalLinks = 0;
  double imbalance = 0.0;
};

inline void writeKernelBenchJson(const std::string& path,
                                 const std::string& benchName,
                                 const std::string& config,
                                 const std::vector<KernelBenchRecord>& cases) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"" << benchName << "\",\n";
  out << "  \"config\": \"" << config << "\",\n";
  // Host cores are part of the measurement context: wall times from a
  // machine that couldn't exercise the parallel paths aren't comparable.
  out << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const KernelBenchRecord& r = cases[i];
    char line[1024];
    char portsField[96] = "";
    if (r.ports > 0) {
      std::snprintf(portsField, sizeof(portsField),
                    ", \"ports\": %ld, \"lftKb\": %ld", r.ports, r.lftKb);
    }
    char shardField[224] = "";
    if (r.windows > 0) {
      std::snprintf(shardField, sizeof(shardField),
                    ", \"crossShardMessages\": %llu, \"windows\": %llu, "
                    "\"cutLinks\": %llu, \"totalLinks\": %llu, "
                    "\"imbalance\": %.4f",
                    static_cast<unsigned long long>(r.crossShardMessages),
                    static_cast<unsigned long long>(r.windows),
                    static_cast<unsigned long long>(r.cutLinks),
                    static_cast<unsigned long long>(r.totalLinks),
                    r.imbalance);
    }
    std::snprintf(line, sizeof(line),
                  "    {\"switches\": %d, \"kernel\": \"%s\", "
                  "\"threads\": %d, \"events\": %llu, \"wallMs\": %.3f, "
                  "\"eventsPerSec\": %.1f, \"simulatedMs\": %.3f, "
                  "\"wallMsPerSimMs\": %.4f, \"heapPeakKb\": %ld, "
                  "\"setupMs\": %.3f, \"planMs\": %.3f, \"runMs\": %.3f%s%s}",
                  r.switches, r.kernel.c_str(), r.threads,
                  static_cast<unsigned long long>(r.events), r.wallMs,
                  r.eventsPerSec, r.simulatedMs, r.wallMsPerSimMs,
                  r.heapPeakKb, r.setupMs, r.planMs, r.runMs, portsField,
                  shardField);
    out << line << (i + 1 < cases.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

// ---- reconfiguration-comparison records -----------------------------------
//
// One record per (switch count, sweep-execution mode) of the robustness
// bench's reconfiguration axis. Same one-object-per-line layout as the
// kernel records so the committed BENCH_reconfig.json diffs cleanly.

struct ReconfigBenchRecord {
  int switches = 0;
  std::string mode;  // "instant" | "drain" | "live"
  double faults = 0.0;
  double sweeps = 0.0;
  double epochsInstalled = 0.0;
  /// Unique transport packets undelivered at the horizon (mean/topology).
  double packetsLost = 0.0;
  double lostFraction = 0.0;
  /// Raw switch drops (stale-route discards), mean per topology.
  double droppedSwitch = 0.0;
  /// Percent of the horizon with an uncovered fault outstanding.
  double degradedPct = 0.0;
  double pausedUs = 0.0;
  double reconfigLatencyUs = 0.0;
  double wdViolations = 0.0;
};

inline void writeReconfigBenchJson(
    const std::string& path, const std::string& benchName,
    const std::string& config, const std::vector<ReconfigBenchRecord>& cases) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"" << benchName << "\",\n";
  out << "  \"config\": \"" << config << "\",\n";
  out << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ReconfigBenchRecord& r = cases[i];
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    {\"switches\": %d, \"mode\": \"%s\", \"faults\": %.2f, "
        "\"sweeps\": %.2f, \"epochsInstalled\": %.2f, \"packetsLost\": %.2f, "
        "\"lostFraction\": %.5f, \"droppedSwitch\": %.2f, "
        "\"degradedPct\": %.3f, \"pausedUs\": %.2f, "
        "\"reconfigLatencyUs\": %.2f, \"wdViolations\": %.2f}",
        r.switches, r.mode.c_str(), r.faults, r.sweeps, r.epochsInstalled,
        r.packetsLost, r.lostFraction, r.droppedSwitch, r.degradedPct,
        r.pausedUs, r.reconfigLatencyUs, r.wdViolations);
    out << line << (i + 1 < cases.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

// ---- congestion-management records -----------------------------------------
//
// One record per (topology, size, scenario, CC arm) of the congestion
// sweep. Same one-object-per-line layout as the other committed baselines.

struct CongestionBenchRecord {
  std::string topo;      // "irregular" | "fat-tree" | "dragonfly"
  int switches = 0;      // nominal size (see the bench's familyParams)
  std::string scenario;  // "hotspot-<pct>" | "incast"
  bool cc = false;       // false = FA alone, true = FA + congestion loop
  double acceptedBytesPerNsPerSwitch = 0.0;
  double p50LatencyNs = 0.0;
  double p99LatencyNs = 0.0;
  double p999LatencyNs = 0.0;
  double msgP99LatencyNs = 0.0;
  std::uint64_t fecnMarked = 0;
  std::uint64_t cnpsReceived = 0;
  std::uint64_t rateDecreases = 0;
  std::uint64_t packetsThrottled = 0;
  std::uint64_t wdViolations = 0;
  bool complete = false;  // measurement finished, no deadlock suspected
};

inline void writeCongestionBenchJson(
    const std::string& path, const std::string& benchName,
    const std::string& config,
    const std::vector<CongestionBenchRecord>& cases) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"bench\": \"" << benchName << "\",\n";
  out << "  \"config\": \"" << config << "\",\n";
  out << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CongestionBenchRecord& r = cases[i];
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "    {\"topo\": \"%s\", \"switches\": %d, \"scenario\": \"%s\", "
        "\"cc\": %s, \"acceptedBytesPerNsPerSwitch\": %.6f, "
        "\"p50LatencyNs\": %.1f, \"p99LatencyNs\": %.1f, "
        "\"p999LatencyNs\": %.1f, \"msgP99LatencyNs\": %.1f, "
        "\"fecnMarked\": %llu, \"cnpsReceived\": %llu, "
        "\"rateDecreases\": %llu, \"packetsThrottled\": %llu, "
        "\"wdViolations\": %llu, \"complete\": %s}",
        r.topo.c_str(), r.switches, r.scenario.c_str(),
        r.cc ? "true" : "false", r.acceptedBytesPerNsPerSwitch,
        r.p50LatencyNs, r.p99LatencyNs, r.p999LatencyNs, r.msgP99LatencyNs,
        static_cast<unsigned long long>(r.fecnMarked),
        static_cast<unsigned long long>(r.cnpsReceived),
        static_cast<unsigned long long>(r.rateDecreases),
        static_cast<unsigned long long>(r.packetsThrottled),
        static_cast<unsigned long long>(r.wdViolations),
        r.complete ? "true" : "false");
    out << line << (i + 1 < cases.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

namespace detail {
inline bool extractJsonField(const std::string& obj, const std::string& key,
                             std::string& out) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  auto start = pos + needle.size();
  bool quoted = start < obj.size() && obj[start] == '"';
  if (quoted) ++start;
  auto end = start;
  while (end < obj.size() && obj[end] != (quoted ? '"' : ',') &&
         obj[end] != '}') {
    ++end;
  }
  out = obj.substr(start, end - start);
  return true;
}
}  // namespace detail

/// Reads records back from writeKernelBenchJson output. Returns an empty
/// vector when the file is missing or not in the writer's layout.
inline std::vector<KernelBenchRecord> readKernelBenchJson(
    const std::string& path) {
  std::vector<KernelBenchRecord> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"switches\"") == std::string::npos) continue;
    KernelBenchRecord r;
    std::string v;
    if (!detail::extractJsonField(line, "switches", v)) continue;
    r.switches = std::stoi(v);
    if (!detail::extractJsonField(line, "kernel", v)) continue;
    r.kernel = v;
    if (detail::extractJsonField(line, "threads", v)) r.threads = std::stoi(v);
    if (detail::extractJsonField(line, "events", v)) {
      r.events = std::stoull(v);
    }
    if (detail::extractJsonField(line, "wallMs", v)) r.wallMs = std::stod(v);
    if (detail::extractJsonField(line, "eventsPerSec", v)) {
      r.eventsPerSec = std::stod(v);
    }
    if (detail::extractJsonField(line, "simulatedMs", v)) {
      r.simulatedMs = std::stod(v);
    }
    if (detail::extractJsonField(line, "wallMsPerSimMs", v)) {
      r.wallMsPerSimMs = std::stod(v);
    }
    if (detail::extractJsonField(line, "heapPeakKb", v)) {
      r.heapPeakKb = std::stol(v);
    }
    if (detail::extractJsonField(line, "setupMs", v)) r.setupMs = std::stod(v);
    if (detail::extractJsonField(line, "planMs", v)) r.planMs = std::stod(v);
    if (detail::extractJsonField(line, "runMs", v)) r.runMs = std::stod(v);
    if (detail::extractJsonField(line, "ports", v)) r.ports = std::stol(v);
    if (detail::extractJsonField(line, "lftKb", v)) r.lftKb = std::stol(v);
    if (detail::extractJsonField(line, "crossShardMessages", v)) {
      r.crossShardMessages = std::stoull(v);
    }
    if (detail::extractJsonField(line, "windows", v)) {
      r.windows = std::stoull(v);
    }
    if (detail::extractJsonField(line, "cutLinks", v)) {
      r.cutLinks = std::stoull(v);
    }
    if (detail::extractJsonField(line, "totalLinks", v)) {
      r.totalLinks = std::stoull(v);
    }
    if (detail::extractJsonField(line, "imbalance", v)) {
      r.imbalance = std::stod(v);
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace ibadapt::bench
