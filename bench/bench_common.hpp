#pragma once
//
// Shared plumbing for the paper-reproduction benches: quick/paper mode
// selection and table formatting.
//
// Every bench accepts:
//   --mode=quick   (default) small sweep sized for a laptop-class machine
//   --mode=paper   the paper's full configuration (10 topologies, all sizes)
// plus bench-specific key=value overrides.
//
#include <cstdio>
#include <string>
#include <vector>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "util/flags.hpp"

namespace ibadapt::bench {

struct Mode {
  bool paper = false;
  std::vector<int> sizes;       // switch counts
  int topologies = 0;           // random topologies per configuration
  std::uint64_t warmupPackets = 0;
  std::uint64_t measurePackets = 0;
  int threads = 0;
};

inline Mode parseMode(const Flags& flags, std::vector<int> quickSizes,
                      std::vector<int> paperSizes, int quickTopos,
                      int paperTopos) {
  Mode m;
  m.paper = flags.str("mode", "quick") == "paper";
  m.sizes = flags.intList("sizes", m.paper ? paperSizes : quickSizes);
  m.topologies = flags.integer("topologies", m.paper ? paperTopos : quickTopos);
  m.warmupPackets = static_cast<std::uint64_t>(
      flags.integer("warmup", m.paper ? 4000 : 1500));
  m.measurePackets = static_cast<std::uint64_t>(
      flags.integer("measure", m.paper ? 20000 : 6000));
  m.threads = flags.integer("threads", 0);
  return m;
}

inline void warnUnknownFlags(const Flags& flags) {
  for (const auto& key : flags.unknownKeys()) {
    std::fprintf(stderr, "warning: unrecognized flag '%s'\n", key.c_str());
  }
}

inline const char* patternName(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniform:
      return "uniform";
    case TrafficPattern::kBitReversal:
      return "bit-reversal";
    case TrafficPattern::kHotspot:
      return "hot-spot";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kShuffle:
      return "shuffle";
    case TrafficPattern::kLocality:
      return "locality";
  }
  return "?";
}

inline RampOptions defaultRamp(bool paper) {
  RampOptions r;
  r.startLoadPerNode = 0.004;
  r.growth = paper ? 1.35 : 1.5;
  return r;
}

inline void printRule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace ibadapt::bench
