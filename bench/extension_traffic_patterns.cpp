//
// Extension: throughput-improvement factors across a wider pattern sweep
// than the paper's Table 1 — the paper's three patterns plus transpose,
// shuffle and locality. The paper's reasoning predicts the ordering:
// patterns that spread load (uniform, permutations with long paths) gain
// the most from adaptivity; locality gains the least (short, rarely
// conflicting paths); hot spots sit at the bottom (endpoint-bound).
//
// Usage: extension_traffic_patterns [--mode=quick|paper] [sizes=...]
//
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ibadapt;
  using namespace ibadapt::bench;
  const Flags flags(argc, argv);
  const Mode mode = parseMode(flags, /*quickSizes=*/{16}, /*paperSizes=*/{16, 32, 64},
                              /*quickTopos=*/2, /*paperTopos=*/5);
  warnUnknownFlags(flags);

  struct Row {
    const char* label;
    TrafficPattern pattern;
    double hotspotFraction;
    int localityWindow;
  };
  const std::vector<Row> rows{
      {"uniform", TrafficPattern::kUniform, 0, 0},
      {"bit-reversal", TrafficPattern::kBitReversal, 0, 0},
      {"transpose", TrafficPattern::kTranspose, 0, 0},
      {"shuffle", TrafficPattern::kShuffle, 0, 0},
      {"locality (w=8)", TrafficPattern::kLocality, 0, 8},
      {"hot-spot 10%", TrafficPattern::kHotspot, 0.10, 0},
  };

  std::printf("Extension: throughput factors across traffic patterns\n"
              "(4 links/switch, 2 options, 32 B packets, %d topologies)\n\n",
              mode.topologies);
  std::printf("%-18s %4s   %6s %6s %6s\n", "pattern", "sw", "min", "avg",
              "max");

  for (int size : mode.sizes) {
    for (const Row& row : rows) {
      SimParams base;
      base.numSwitches = size;
      base.pattern = row.pattern;
      base.hotspotFraction = row.hotspotFraction;
      if (row.localityWindow > 0) base.localityWindow = row.localityWindow;
      base.warmupPackets = mode.warmupPackets;
      base.measurePackets = mode.measurePackets;
      const ThroughputFactors f = measureThroughputFactors(
          base, mode.topologies, 1, defaultRamp(mode.paper), mode.threads);
      std::printf("%-18s %4d   %6.2f %6.2f %6.2f\n", row.label, size,
                  f.factor.min, f.factor.avg, f.factor.max);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
