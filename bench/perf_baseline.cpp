// Kernel perf baseline: end-to-end simulator throughput (events/sec) for the
// calendar kernel vs the seed's binary-heap kernel, plus the strong-scaling
// axis of the sharded parallel kernel, on saturated uniform traffic at
// 8/16/32/64 switches. Emits machine-readable BENCH_kernel.json and
// BENCH_parallel.json (see bench_common.hpp for the record layout) so
// scripts/run_perf_baseline.sh can fail the build when either kernel
// regresses.
//
// Flags:
//   --sizes=8,16,32,64     switch counts
//   --warmup=N --measure=N packet budget per run
//   --repeats=N            take the best-of-N wall time per case
//   --json=PATH            sequential record path (default BENCH_kernel.json)
//   --parallel-json=PATH   parallel record path (default BENCH_parallel.json)
//   --threads=1,2,4,8      parallel-kernel thread counts ("" skips the axis)
//   --baseline=PATH        committed record to compare against; exits 1 when
//                          any calendar case loses >10% events/sec
//   --min-speedup=X        exits 1 when the 32-switch calendar/legacy ratio
//                          falls below X (0 disables; default 0)
//   --min-parallel-speedup=X
//                          exits 1 when the largest-size 4-thread parallel
//                          speedup over calendar falls below X (0 disables)
//   --partition-gate=X     core-count-INDEPENDENT partition-quality gate:
//                          on a 1024-switch fat-tree and dragonfly at 4
//                          shards, the topology-aware partitioner must move
//                          at least fraction X fewer events through
//                          cross-shard mailboxes than round-robin, in
//                          fewer-or-equal windows (0 disables). The gate
//                          reads deterministic simulation counters, so it
//                          holds on 1-core CI machines where wall-clock
//                          speedup is unmeasurable; the comparison cases are
//                          also appended to the parallel JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

SimParams baseParams(int switches, SimKernel kernel, std::uint64_t warmup,
                     std::uint64_t measure, int threads) {
  SimParams p;
  p.topoKind = TopologyKind::kIrregular;
  p.numSwitches = switches;
  p.linksPerSwitch = 4;
  p.nodesPerSwitch = 4;
  p.pattern = TrafficPattern::kUniform;
  p.saturation = true;  // densest event schedule: the kernel-bound regime
  p.warmupPackets = warmup;
  p.measurePackets = measure;
  p.fabric.kernel = kernel;
  p.fabric.threads = threads;
  return p;
}

struct CaseResult {
  KernelBenchRecord rec;
  SimResults sim;
};

CaseResult runCase(int switches, SimKernel kernel, std::uint64_t warmup,
                   std::uint64_t measure, int repeats, int threads) {
  const SimParams p = baseParams(switches, kernel, warmup, measure, threads);
  CaseResult best;
  for (int rep = 0; rep < repeats; ++rep) {
    heap::resetPeak();
    const auto t0 = std::chrono::steady_clock::now();
    SimResults r = runSimulation(p);
    const auto t1 = std::chrono::steady_clock::now();
    const long heapKb = heap::peakKb();
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || wallMs < best.rec.wallMs) {
      best.rec.wallMs = wallMs;
      best.rec.heapPeakKb = heapKb;
      best.sim = r;
    }
  }
  best.rec.switches = switches;
  best.rec.kernel = kernel == SimKernel::kCalendar    ? "calendar"
                    : kernel == SimKernel::kLegacyHeap ? "legacy-heap"
                                                       : "parallel";
  best.rec.threads = best.sim.threadsUsed;
  best.rec.events = best.sim.kernelEvents;
  best.rec.eventsPerSec = best.rec.wallMs > 0.0
                              ? static_cast<double>(best.rec.events) /
                                    (best.rec.wallMs / 1000.0)
                              : 0.0;
  best.rec.simulatedMs =
      static_cast<double>(best.sim.simEndTimeNs) / 1e6;
  best.rec.wallMsPerSimMs = best.rec.simulatedMs > 0.0
                                ? best.rec.wallMs / best.rec.simulatedMs
                                : 0.0;
  best.rec.crossShardMessages = best.sim.crossShardMessages;
  best.rec.windows = best.sim.windowsExecuted;
  best.rec.cutLinks = best.sim.shardCutLinks;
  best.rec.totalLinks = best.sim.shardTotalLinks;
  best.rec.imbalance = best.sim.shardImbalance;
  return best;
}

// ---- partition proxy gate (core-count independent) ------------------------

// The 1024-switch hierarchical families the scale axis committed to:
// fat-tree (arity 2 x 8 levels) and dragonfly (a=16, h=4, g=64). Open-loop
// load sized so one case runs in seconds; the gate compares deterministic
// counters, not wall time, so the budget only affects bench runtime.
SimParams partitionGateParams(bool dragonfly, PartitionStrategy strategy) {
  SimParams p;
  if (dragonfly) {
    p.topoKind = TopologyKind::kDragonfly;
    p.dragonflyRoutersPerGroup = 16;
    p.dragonflyGlobalPerRouter = 4;
    p.dragonflyGroups = 64;
  } else {
    p.topoKind = TopologyKind::kFatTree;
    p.fatTreeArity = 2;
    p.fatTreeLevels = 8;
  }
  p.nodesPerSwitch = 2;
  p.pattern = TrafficPattern::kUniform;
  p.loadBytesPerNsPerNode = 0.02;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  p.fabric.kernel = SimKernel::kParallel;
  p.fabric.threads = 4;
  p.fabric.partition = strategy;
  return p;
}

KernelBenchRecord partitionGateRecord(const char* label, const SimResults& r,
                                      double wallMs) {
  KernelBenchRecord rec;
  rec.switches = 1024;
  rec.kernel = label;  // e.g. "parallel-ft-topology"
  rec.threads = r.threadsUsed;
  rec.events = r.kernelEvents;
  rec.wallMs = wallMs;
  rec.eventsPerSec =
      wallMs > 0.0 ? static_cast<double>(r.kernelEvents) / (wallMs / 1000.0)
                   : 0.0;
  rec.simulatedMs = static_cast<double>(r.simEndTimeNs) / 1e6;
  rec.wallMsPerSimMs =
      rec.simulatedMs > 0.0 ? wallMs / rec.simulatedMs : 0.0;
  rec.setupMs = r.setupWallMs;
  rec.planMs = r.planWallMs;
  rec.runMs = r.runWallMs;
  rec.crossShardMessages = r.crossShardMessages;
  rec.windows = r.windowsExecuted;
  rec.cutLinks = r.shardCutLinks;
  rec.totalLinks = r.shardTotalLinks;
  rec.imbalance = r.shardImbalance;
  return rec;
}

const KernelBenchRecord* findCase(const std::vector<KernelBenchRecord>& v,
                                  int switches, const std::string& kernel) {
  for (const auto& r : v) {
    if (r.switches == switches && r.kernel == kernel) return &r;
  }
  return nullptr;
}

bool sameDecisions(const SimResults& a, const SimResults& b) {
  return a.kernelEvents == b.kernelEvents && a.delivered == b.delivered &&
         a.avgLatencyNs == b.avgLatencyNs &&
         a.acceptedBytesPerNsPerSwitch == b.acceptedBytesPerNsPerSwitch &&
         a.simEndTimeNs == b.simEndTimeNs;
}

void printRecord(const KernelBenchRecord& r) {
  std::printf("%9d  %-11s  %7d  %12llu  %9.1f  %12.0f  %10.4f  %9ld\n",
              r.switches, r.kernel.c_str(), r.threads,
              static_cast<unsigned long long>(r.events), r.wallMs,
              r.eventsPerSec, r.wallMsPerSimMs, r.heapPeakKb);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::vector<int> sizes = flags.intList("sizes", {8, 16, 32, 64});
  const auto warmup =
      static_cast<std::uint64_t>(flags.integer("warmup", 2000));
  const auto measure =
      static_cast<std::uint64_t>(flags.integer("measure", 12000));
  const int repeats = flags.integer("repeats", 3);
  const std::string jsonPath = flags.str("json", "BENCH_kernel.json");
  const std::string parallelJsonPath =
      flags.str("parallel-json", "BENCH_parallel.json");
  const std::vector<int> threadCounts = flags.intList("threads", {1, 2, 4, 8});
  const std::string baselinePath = flags.str("baseline", "");
  const double minSpeedup = flags.real("min-speedup", 0.0);
  const double minParallelSpeedup = flags.real("min-parallel-speedup", 0.0);
  const double partitionGate = flags.real("partition-gate", 0.0);
  warnUnknownFlags(flags);

  std::printf("kernel perf baseline: saturated uniform, warmup=%llu "
              "measure=%llu repeats=%d\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(measure), repeats);
  printRule();
  std::printf("%9s  %-11s  %7s  %12s  %9s  %12s  %10s  %9s\n", "switches",
              "kernel", "threads", "events", "wall ms", "events/sec",
              "ms/sim-ms", "heap KiB");

  std::vector<KernelBenchRecord> records;
  std::vector<CaseResult> calendarBySize;  // index-matched with `sizes`
  double speedup32 = 0.0;
  bool identical = true;
  for (int n : sizes) {
    const CaseResult fast =
        runCase(n, SimKernel::kCalendar, warmup, measure, repeats, 1);
    const CaseResult ref =
        runCase(n, SimKernel::kLegacyHeap, warmup, measure, repeats, 1);
    // The two kernels must agree event-for-event; a mismatch means the
    // calendar queue broke determinism and the numbers are meaningless.
    if (!sameDecisions(fast.sim, ref.sim)) identical = false;
    printRecord(fast.rec);
    printRecord(ref.rec);
    records.push_back(fast.rec);
    records.push_back(ref.rec);
    const double ratio = ref.rec.eventsPerSec > 0.0
                             ? fast.rec.eventsPerSec / ref.rec.eventsPerSec
                             : 0.0;
    std::printf("%9s  speedup %.2fx\n", "", ratio);
    if (n == 32) speedup32 = ratio;
    calendarBySize.push_back(fast);
  }
  printRule();

  // The host core count travels with the record: parallel-kernel speedups
  // are only meaningful relative to the cores the measuring machine had.
  char config[192];
  std::snprintf(config, sizeof(config),
                "saturated uniform, warmup=%llu measure=%llu repeats=%d "
                "partition=%s cores=%u",
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(measure), repeats,
                partitionStrategyName(SimParams{}.fabric.partition),
                std::thread::hardware_concurrency());
  writeKernelBenchJson(jsonPath, "perf_baseline", config, records);
  std::printf("wrote %s\n", jsonPath.c_str());

  // ---- parallel kernel: strong scaling over the calendar baseline --------
  double largest4ThreadSpeedup = 0.0;
  std::vector<KernelBenchRecord> parRecords;
  if (!threadCounts.empty()) {
    std::printf("\nparallel kernel strong scaling (speedup vs calendar, "
                "same saturated workload)\n");
    printRule();
    std::printf("%9s  %-11s  %7s  %12s  %9s  %12s  %10s  %9s\n", "switches",
                "kernel", "threads", "events", "wall ms", "events/sec",
                "ms/sim-ms", "heap KiB");
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const int n = sizes[si];
      const CaseResult& cal = calendarBySize[si];
      for (int t : threadCounts) {
        const CaseResult par =
            runCase(n, SimKernel::kParallel, warmup, measure, repeats, t);
        // Bit-identity is the parallel kernel's contract; enforce it on
        // every bench case so the scaling numbers can be trusted.
        if (!sameDecisions(par.sim, cal.sim)) identical = false;
        printRecord(par.rec);
        parRecords.push_back(par.rec);
        const double sp = par.rec.wallMs > 0.0
                              ? cal.rec.wallMs / par.rec.wallMs
                              : 0.0;
        std::printf("%9s  speedup %.2fx (threads used: %d)\n", "", sp,
                    par.rec.threads);
        if (t == 4 && n == sizes.back()) largest4ThreadSpeedup = sp;
      }
    }
    printRule();
  }

  // ---- partition proxy gate: topology-aware vs round-robin at 4 shards ---
  bool partitionGateFailed = false;
  if (partitionGate > 0.0) {
    std::printf("\npartition proxy gate: 1024-switch families, 4 shards, "
                "topology vs round-robin (deterministic counters)\n");
    printRule();
    std::printf("%-12s  %-12s  %14s  %9s  %9s  %9s  %9s\n", "family",
                "partition", "xshard msgs", "windows", "cut", "links",
                "imbal");
    struct GateFamily {
      const char* name;
      bool dragonfly;
      const char* topoLabel;
      const char* rrLabel;
    };
    const GateFamily families[] = {
        {"fat-tree", false, "parallel-ft-topology", "parallel-ft-round-robin"},
        {"dragonfly", true, "parallel-df-topology", "parallel-df-round-robin"},
    };
    for (const GateFamily& f : families) {
      SimResults bySt[2];
      const PartitionStrategy strategies[] = {PartitionStrategy::kTopology,
                                              PartitionStrategy::kRoundRobin};
      const char* labels[] = {f.topoLabel, f.rrLabel};
      for (int i = 0; i < 2; ++i) {
        const SimParams p = partitionGateParams(f.dragonfly, strategies[i]);
        const auto t0 = std::chrono::steady_clock::now();
        bySt[i] = runSimulation(p);
        const double wallMs = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
        parRecords.push_back(partitionGateRecord(labels[i], bySt[i], wallMs));
        std::printf("%-12s  %-12s  %14llu  %9llu  %9llu  %9llu  %9.3f\n",
                    f.name, partitionStrategyName(strategies[i]),
                    static_cast<unsigned long long>(
                        bySt[i].crossShardMessages),
                    static_cast<unsigned long long>(bySt[i].windowsExecuted),
                    static_cast<unsigned long long>(bySt[i].shardCutLinks),
                    static_cast<unsigned long long>(bySt[i].shardTotalLinks),
                    bySt[i].shardImbalance);
      }
      const SimResults& topo = bySt[0];
      const SimResults& rr = bySt[1];
      const double reduction =
          rr.crossShardMessages > 0
              ? 1.0 - static_cast<double>(topo.crossShardMessages) /
                          static_cast<double>(rr.crossShardMessages)
              : 0.0;
      std::printf("%-12s  mailbox traffic reduction %.1f%% (gate >= %.1f%%), "
                  "windows %llu vs %llu\n",
                  f.name, reduction * 100.0, partitionGate * 100.0,
                  static_cast<unsigned long long>(topo.windowsExecuted),
                  static_cast<unsigned long long>(rr.windowsExecuted));
      if (reduction < partitionGate) {
        std::fprintf(stderr,
                     "FAIL: %s cross-shard traffic reduction %.1f%% below "
                     "required %.1f%%\n",
                     f.name, reduction * 100.0, partitionGate * 100.0);
        partitionGateFailed = true;
      }
      if (topo.windowsExecuted > rr.windowsExecuted) {
        std::fprintf(stderr,
                     "FAIL: %s topology partition ran more windows than "
                     "round-robin (%llu > %llu)\n",
                     f.name,
                     static_cast<unsigned long long>(topo.windowsExecuted),
                     static_cast<unsigned long long>(rr.windowsExecuted));
        partitionGateFailed = true;
      }
    }
    printRule();
  }

  if (!parRecords.empty()) {
    writeKernelBenchJson(parallelJsonPath, "perf_baseline_parallel", config,
                         parRecords);
    std::printf("wrote %s\n", parallelJsonPath.c_str());
  }

  int rc = 0;
  if (partitionGateFailed) rc = 1;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: kernels diverged — results are not bit-identical\n");
    rc = 1;
  }
  if (minSpeedup > 0.0 && speedup32 < minSpeedup) {
    std::fprintf(stderr,
                 "FAIL: 32-switch calendar speedup %.2fx below required "
                 "%.2fx\n",
                 speedup32, minSpeedup);
    rc = 1;
  }
  if (minParallelSpeedup > 0.0 &&
      largest4ThreadSpeedup < minParallelSpeedup) {
    std::fprintf(stderr,
                 "FAIL: %d-switch 4-thread parallel speedup %.2fx below "
                 "required %.2fx\n",
                 sizes.empty() ? 0 : sizes.back(), largest4ThreadSpeedup,
                 minParallelSpeedup);
    rc = 1;
  }
  if (!baselinePath.empty()) {
    const auto baseline = readKernelBenchJson(baselinePath);
    if (baseline.empty()) {
      std::fprintf(stderr, "note: no readable baseline at %s — skipping "
                           "regression check\n",
                   baselinePath.c_str());
    }
    for (const auto& r : records) {
      if (r.kernel != "calendar") continue;
      const KernelBenchRecord* b = findCase(baseline, r.switches, r.kernel);
      if (b == nullptr || b->eventsPerSec <= 0.0) continue;
      const double rel = r.eventsPerSec / b->eventsPerSec;
      if (rel < 0.90) {
        std::fprintf(stderr,
                     "FAIL: %d-switch calendar events/sec regressed to "
                     "%.0f (%.0f%% of baseline %.0f)\n",
                     r.switches, r.eventsPerSec, rel * 100.0,
                     b->eventsPerSec);
        rc = 1;
      }
    }
  }
  return rc;
}
