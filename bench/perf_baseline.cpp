// Kernel perf baseline: end-to-end simulator throughput (events/sec) for the
// calendar kernel vs the seed's binary-heap kernel, on saturated uniform
// traffic at 8/16/32/64 switches. Emits machine-readable BENCH_kernel.json
// (see bench_common.hpp for the record layout) so scripts/run_perf_baseline.sh
// can fail the build when the fast kernel regresses.
//
// Flags:
//   --sizes=8,16,32,64     switch counts
//   --warmup=N --measure=N packet budget per run
//   --repeats=N            take the best-of-N wall time per case
//   --json=PATH            output record path (default BENCH_kernel.json)
//   --baseline=PATH        committed record to compare against; exits 1 when
//                          any calendar case loses >10% events/sec
//   --min-speedup=X        exits 1 when the 32-switch calendar/legacy ratio
//                          falls below X (0 disables; default 0)
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace ibadapt;
using namespace ibadapt::bench;

long peakRssKb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

SimParams baseParams(int switches, SimKernel kernel, std::uint64_t warmup,
                     std::uint64_t measure) {
  SimParams p;
  p.topoKind = TopologyKind::kIrregular;
  p.numSwitches = switches;
  p.linksPerSwitch = 4;
  p.nodesPerSwitch = 4;
  p.pattern = TrafficPattern::kUniform;
  p.saturation = true;  // densest event schedule: the kernel-bound regime
  p.warmupPackets = warmup;
  p.measurePackets = measure;
  p.fabric.kernel = kernel;
  return p;
}

struct CaseResult {
  KernelBenchRecord rec;
  SimResults sim;
};

CaseResult runCase(int switches, SimKernel kernel, std::uint64_t warmup,
                   std::uint64_t measure, int repeats) {
  const SimParams p = baseParams(switches, kernel, warmup, measure);
  CaseResult best;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    SimResults r = runSimulation(p);
    const auto t1 = std::chrono::steady_clock::now();
    const double wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || wallMs < best.rec.wallMs) {
      best.rec.wallMs = wallMs;
      best.sim = r;
    }
  }
  best.rec.switches = switches;
  best.rec.kernel =
      kernel == SimKernel::kCalendar ? "calendar" : "legacy-heap";
  best.rec.events = best.sim.kernelEvents;
  best.rec.eventsPerSec = best.rec.wallMs > 0.0
                              ? static_cast<double>(best.rec.events) /
                                    (best.rec.wallMs / 1000.0)
                              : 0.0;
  best.rec.simulatedMs =
      static_cast<double>(best.sim.simEndTimeNs) / 1e6;
  best.rec.wallMsPerSimMs = best.rec.simulatedMs > 0.0
                                ? best.rec.wallMs / best.rec.simulatedMs
                                : 0.0;
  best.rec.peakRssKb = peakRssKb();
  return best;
}

const KernelBenchRecord* findCase(const std::vector<KernelBenchRecord>& v,
                                  int switches, const std::string& kernel) {
  for (const auto& r : v) {
    if (r.switches == switches && r.kernel == kernel) return &r;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::vector<int> sizes = flags.intList("sizes", {8, 16, 32, 64});
  const auto warmup =
      static_cast<std::uint64_t>(flags.integer("warmup", 2000));
  const auto measure =
      static_cast<std::uint64_t>(flags.integer("measure", 12000));
  const int repeats = flags.integer("repeats", 3);
  const std::string jsonPath = flags.str("json", "BENCH_kernel.json");
  const std::string baselinePath = flags.str("baseline", "");
  const double minSpeedup = flags.real("min-speedup", 0.0);
  warnUnknownFlags(flags);

  std::printf("kernel perf baseline: saturated uniform, warmup=%llu "
              "measure=%llu repeats=%d\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(measure), repeats);
  printRule();
  std::printf("%9s  %-11s  %12s  %9s  %12s  %10s  %9s\n", "switches",
              "kernel", "events", "wall ms", "events/sec", "ms/sim-ms",
              "rss KiB");

  std::vector<KernelBenchRecord> records;
  double speedup32 = 0.0;
  bool identical = true;
  for (int n : sizes) {
    const CaseResult fast =
        runCase(n, SimKernel::kCalendar, warmup, measure, repeats);
    const CaseResult ref =
        runCase(n, SimKernel::kLegacyHeap, warmup, measure, repeats);
    // The two kernels must agree event-for-event; a mismatch means the
    // calendar queue broke determinism and the numbers are meaningless.
    if (fast.sim.kernelEvents != ref.sim.kernelEvents ||
        fast.sim.delivered != ref.sim.delivered ||
        fast.sim.avgLatencyNs != ref.sim.avgLatencyNs) {
      identical = false;
    }
    for (const KernelBenchRecord* r : {&fast.rec, &ref.rec}) {
      std::printf("%9d  %-11s  %12llu  %9.1f  %12.0f  %10.4f  %9ld\n",
                  r->switches, r->kernel.c_str(),
                  static_cast<unsigned long long>(r->events), r->wallMs,
                  r->eventsPerSec, r->wallMsPerSimMs, r->peakRssKb);
      records.push_back(*r);
    }
    const double ratio = ref.rec.eventsPerSec > 0.0
                             ? fast.rec.eventsPerSec / ref.rec.eventsPerSec
                             : 0.0;
    std::printf("%9s  speedup %.2fx\n", "", ratio);
    if (n == 32) speedup32 = ratio;
  }
  printRule();

  char config[128];
  std::snprintf(config, sizeof(config),
                "saturated uniform, warmup=%llu measure=%llu repeats=%d",
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(measure), repeats);
  writeKernelBenchJson(jsonPath, "perf_baseline", config, records);
  std::printf("wrote %s\n", jsonPath.c_str());

  int rc = 0;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: calendar and legacy-heap kernels diverged — results "
                 "are not bit-identical\n");
    rc = 1;
  }
  if (minSpeedup > 0.0 && speedup32 < minSpeedup) {
    std::fprintf(stderr,
                 "FAIL: 32-switch calendar speedup %.2fx below required "
                 "%.2fx\n",
                 speedup32, minSpeedup);
    rc = 1;
  }
  if (!baselinePath.empty()) {
    const auto baseline = readKernelBenchJson(baselinePath);
    if (baseline.empty()) {
      std::fprintf(stderr, "note: no readable baseline at %s — skipping "
                           "regression check\n",
                   baselinePath.c_str());
    }
    for (const auto& r : records) {
      if (r.kernel != "calendar") continue;
      const KernelBenchRecord* b = findCase(baseline, r.switches, r.kernel);
      if (b == nullptr || b->eventsPerSec <= 0.0) continue;
      const double rel = r.eventsPerSec / b->eventsPerSec;
      if (rel < 0.90) {
        std::fprintf(stderr,
                     "FAIL: %d-switch calendar events/sec regressed to "
                     "%.0f (%.0f%% of baseline %.0f)\n",
                     r.switches, r.eventsPerSec, rel * 100.0,
                     b->eventsPerSec);
        rc = 1;
      }
    }
  }
  return rc;
}
