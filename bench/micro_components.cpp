//
// Microbenchmarks (google-benchmark) for the building blocks on the
// simulator's hot path: interleaved forwarding-table lookups, split-buffer
// operations, event-queue churn, route computation, and whole-fabric event
// throughput.
//
#include <benchmark/benchmark.h>

#include "api/simulation.hpp"
#include "core/forwarding_table.hpp"
#include "core/lid_map.hpp"
#include "core/vl_buffer.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "sim/event_queue.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibadapt;

void BM_ForwardingTableLookup(benchmark::State& state) {
  const int banks = static_cast<int>(state.range(0));
  const LidMapper lids(3);
  AdaptiveForwardingTable t(banks, lids.lidLimit(256));
  for (NodeId n = 0; n < 256; ++n) {
    for (int k = 0; k < banks; ++k) {
      t.setEntry(lids.lidForOption(n, k), (n + k) % 8);
    }
  }
  Lid dlid = lids.adaptiveLid(0);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const RouteOptions opts = t.lookup(dlid);
    sum += static_cast<std::uint64_t>(opts.escapePort);
    dlid += 8;
    if (dlid >= lids.lidLimit(255)) dlid = lids.adaptiveLid(0);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardingTableLookup)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_VlBufferPushCandidatesRemove(benchmark::State& state) {
  VlBuffer buf(8, 4);
  BufferedPacket bp;
  bp.credits = 1;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      bp.deterministic = (i % 3) == 0;
      buf.push(bp);
    }
    while (!buf.empty()) {
      const auto c = buf.candidateHeads(EscapeOrderRule::kPaperStrict);
      buf.remove(c.index[c.count - 1]);
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_VlBufferPushCandidatesRemove);

void BM_EventQueueChurn(benchmark::State& state) {
  // Arg 0 selects the kernel: calendar (fast) vs the seed's binary heap.
  const auto kernel = static_cast<SimKernel>(state.range(0));
  EventQueue q(kernel);
  Rng rng(7);
  Event ev;
  ev.kind = EventKind::kArbitrate;
  SimTime now = 0;
  // Steady-state population of ~1k events, push/pop mix as in simulation.
  for (int i = 0; i < 1000; ++i) {
    ev.time = static_cast<SimTime>(rng.uniformIndex(10000));
    q.push(ev);
  }
  for (auto _ : state) {
    now = q.pop().time;
    ev.time = now + 1 + static_cast<SimTime>(rng.uniformIndex(500));
    q.push(ev);
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kernel == SimKernel::kCalendar ? "calendar" : "legacy-heap");
}
BENCHMARK(BM_EventQueueChurn)
    ->Arg(static_cast<int>(SimKernel::kCalendar))
    ->Arg(static_cast<int>(SimKernel::kLegacyHeap));

void BM_EventQueueSameTimeBurst(benchmark::State& state) {
  // Arbitration rounds schedule bursts at one timestamp; the tie-break path
  // (bucket sorted-insert vs heap sift) dominates here.
  const auto kernel = static_cast<SimKernel>(state.range(0));
  EventQueue q(kernel);
  Event ev;
  ev.kind = EventKind::kArbitrate;
  SimTime now = 0;
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      ev.time = now + 100;
      q.push(ev);
    }
    for (int i = 0; i < 32; ++i) now = q.pop().time;
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations() * 32);
  state.SetLabel(kernel == SimKernel::kCalendar ? "calendar" : "legacy-heap");
}
BENCHMARK(BM_EventQueueSameTimeBurst)
    ->Arg(static_cast<int>(SimKernel::kCalendar))
    ->Arg(static_cast<int>(SimKernel::kLegacyHeap));

void BM_UpDownConstruction(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(5);
  IrregularSpec spec;
  spec.numSwitches = size;
  spec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);
  for (auto _ : state) {
    const UpDownRouting ud(topo);
    benchmark::DoNotOptimize(ud.root());
  }
}
BENCHMARK(BM_UpDownConstruction)->Arg(16)->Arg(64);

void BM_MinimalRoutingConstruction(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(5);
  IrregularSpec spec;
  spec.numSwitches = size;
  spec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);
  for (auto _ : state) {
    const MinimalAdaptiveRouting mr(topo);
    benchmark::DoNotOptimize(mr.distance(0, size - 1));
  }
}
BENCHMARK(BM_MinimalRoutingConstruction)->Arg(16)->Arg(64);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Whole-stack cost per delivered packet at moderate load; the second arg
  // picks the kernel so the old/new hot paths are directly comparable.
  const int size = static_cast<int>(state.range(0));
  const auto kernel = static_cast<SimKernel>(state.range(1));
  for (auto _ : state) {
    SimParams p;
    p.numSwitches = size;
    p.loadBytesPerNsPerNode = 0.05;
    p.warmupPackets = 200;
    p.measurePackets = 2000;
    p.fabric.kernel = kernel;
    const SimResults r = runSimulation(p);
    benchmark::DoNotOptimize(r.delivered);
  }
  state.SetItemsProcessed(state.iterations() * 2200);
  state.SetLabel(kernel == SimKernel::kCalendar ? "calendar" : "legacy-heap");
}
BENCHMARK(BM_EndToEndSimulation)
    ->Args({8, static_cast<int>(SimKernel::kCalendar)})
    ->Args({8, static_cast<int>(SimKernel::kLegacyHeap)})
    ->Args({32, static_cast<int>(SimKernel::kCalendar)})
    ->Args({32, static_cast<int>(SimKernel::kLegacyHeap)})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
