//
// Microbenchmarks (google-benchmark) for the building blocks on the
// simulator's hot path: interleaved forwarding-table lookups, split-buffer
// operations, event-queue churn, route computation, and whole-fabric event
// throughput.
//
#include <benchmark/benchmark.h>

#include "api/simulation.hpp"
#include "core/forwarding_table.hpp"
#include "core/lid_map.hpp"
#include "core/vl_buffer.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "sim/event_queue.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibadapt;

void BM_ForwardingTableLookup(benchmark::State& state) {
  const int banks = static_cast<int>(state.range(0));
  const LidMapper lids(3);
  AdaptiveForwardingTable t(banks, lids.lidLimit(256));
  for (NodeId n = 0; n < 256; ++n) {
    for (int k = 0; k < banks; ++k) {
      t.setEntry(lids.lidForOption(n, k), (n + k) % 8);
    }
  }
  Lid dlid = lids.adaptiveLid(0);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const RouteOptions opts = t.lookup(dlid);
    sum += static_cast<std::uint64_t>(opts.escapePort);
    dlid += 8;
    if (dlid >= lids.lidLimit(255)) dlid = lids.adaptiveLid(0);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardingTableLookup)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_VlBufferPushCandidatesRemove(benchmark::State& state) {
  VlBuffer buf(8, 4);
  BufferedPacket bp;
  bp.credits = 1;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      bp.deterministic = (i % 3) == 0;
      buf.push(bp);
    }
    while (!buf.empty()) {
      const auto c = buf.candidateHeads(EscapeOrderRule::kPaperStrict);
      buf.remove(c.index[c.count - 1]);
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_VlBufferPushCandidatesRemove);

void BM_EventQueueChurn(benchmark::State& state) {
  EventQueue q;
  Rng rng(7);
  Event ev;
  ev.kind = EventKind::kArbitrate;
  SimTime now = 0;
  // Steady-state heap of ~1k events, push/pop mix as in simulation.
  for (int i = 0; i < 1000; ++i) {
    ev.time = static_cast<SimTime>(rng.uniformIndex(10000));
    q.push(ev);
  }
  for (auto _ : state) {
    now = q.pop().time;
    ev.time = now + 1 + static_cast<SimTime>(rng.uniformIndex(500));
    q.push(ev);
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn);

void BM_UpDownConstruction(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(5);
  IrregularSpec spec;
  spec.numSwitches = size;
  spec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);
  for (auto _ : state) {
    const UpDownRouting ud(topo);
    benchmark::DoNotOptimize(ud.root());
  }
}
BENCHMARK(BM_UpDownConstruction)->Arg(16)->Arg(64);

void BM_MinimalRoutingConstruction(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Rng rng(5);
  IrregularSpec spec;
  spec.numSwitches = size;
  spec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);
  for (auto _ : state) {
    const MinimalAdaptiveRouting mr(topo);
    benchmark::DoNotOptimize(mr.distance(0, size - 1));
  }
}
BENCHMARK(BM_MinimalRoutingConstruction)->Arg(16)->Arg(64);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Whole-stack cost per delivered packet at moderate load.
  const int size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SimParams p;
    p.numSwitches = size;
    p.loadBytesPerNsPerNode = 0.05;
    p.warmupPackets = 200;
    p.measurePackets = 2000;
    const SimResults r = runSimulation(p);
    benchmark::DoNotOptimize(r.delivered);
  }
  state.SetItemsProcessed(state.iterations() * 2200);
  state.SetLabel("items = delivered packets");
}
BENCHMARK(BM_EndToEndSimulation)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
