#!/usr/bin/env bash
#
# Refresh the committed kernel perf baselines (BENCH_kernel.json and
# BENCH_parallel.json).
#
# Builds Release, runs bench/perf_baseline (calendar vs legacy-heap kernels
# plus the parallel kernel's strong-scaling axis, saturated uniform traffic
# at 8/16/32/64 switches), and compares the fresh numbers against the
# committed BENCH_kernel.json: any calendar case losing more than 10%
# events/sec fails the script with a non-zero exit, BEFORE the committed
# files are replaced. On success the fresh records overwrite the committed
# ones.
#
# The parallel-kernel speedup gate (4-thread speedup over calendar at the
# largest size must reach 1.8x) only applies when the machine actually has
# >= 4 cores: strong scaling is physically impossible on fewer, so on a
# small box the bench still runs — and still enforces bit-identity — but
# the wall-clock ratio is recorded rather than gated.
#
# The partition proxy gate runs UNCONDITIONALLY: on 1024-switch fat-tree
# and dragonfly fabrics at 4 shards, the topology-aware partitioner must
# move >= 30% fewer events through cross-shard mailboxes than round-robin,
# in no more windows. Those counters are deterministic functions of the
# partition — identical on a 1-core CI box and a 64-core workstation — so
# this gate guards the partitioner's quality even where wall-clock cannot.
#
# Usage: scripts/run_perf_baseline.sh [build-dir] [extra perf_baseline flags]
# e.g.   scripts/run_perf_baseline.sh build --repeats=5 --min-speedup=1.5
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target perf_baseline

baseline="${repo_root}/BENCH_kernel.json"
parallel_baseline="${repo_root}/BENCH_parallel.json"
fresh="$(mktemp /tmp/BENCH_kernel.XXXXXX.json)"
fresh_parallel="$(mktemp /tmp/BENCH_parallel.XXXXXX.json)"
trap 'rm -f "${fresh}" "${fresh_parallel}"' EXIT

baseline_flag=()
if [[ -f "${baseline}" ]]; then
  baseline_flag=(--baseline="${baseline}")
fi

cores="$(nproc 2>/dev/null || echo 1)"
parallel_gate=()
if [[ "${cores}" -ge 4 ]]; then
  parallel_gate=(--min-parallel-speedup=1.8)
else
  echo "parallel gate skipped: ${cores} cores (need >= 4 for strong" \
       "scaling; bit-identity still enforced)"
fi

"${build_dir}/bench/perf_baseline" \
  --json="${fresh}" --parallel-json="${fresh_parallel}" \
  --partition-gate=0.30 \
  "${baseline_flag[@]}" "${parallel_gate[@]}" "$@"

mv "${fresh}" "${baseline}"
mv "${fresh_parallel}" "${parallel_baseline}"
trap - EXIT
echo "refreshed ${baseline} and ${parallel_baseline}"
