#!/usr/bin/env bash
#
# Refresh the committed kernel perf baseline (BENCH_kernel.json).
#
# Builds Release, runs bench/perf_baseline (calendar vs legacy-heap kernels,
# saturated uniform traffic at 8/16/32/64 switches), and compares the fresh
# numbers against the committed BENCH_kernel.json: any calendar case losing
# more than 10% events/sec fails the script with a non-zero exit, BEFORE the
# committed file is replaced. On success the fresh record overwrites the
# committed one.
#
# Usage: scripts/run_perf_baseline.sh [build-dir] [extra perf_baseline flags]
# e.g.   scripts/run_perf_baseline.sh build --repeats=5 --min-speedup=1.5
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target perf_baseline

baseline="${repo_root}/BENCH_kernel.json"
fresh="$(mktemp /tmp/BENCH_kernel.XXXXXX.json)"
trap 'rm -f "${fresh}"' EXIT

baseline_flag=()
if [[ -f "${baseline}" ]]; then
  baseline_flag=(--baseline="${baseline}")
fi

"${build_dir}/bench/perf_baseline" --json="${fresh}" "${baseline_flag[@]}" "$@"

mv "${fresh}" "${baseline}"
trap - EXIT
echo "refreshed ${baseline}"
