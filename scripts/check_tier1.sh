#!/usr/bin/env bash
#
# Tier-1 gate: the ROADMAP verify line (configure, build, full ctest) plus a
# sanitized build of the kernel-sensitive suites. Run before merging any
# change that touches the simulator hot path.
#
# Usage: scripts/check_tier1.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

echo "== tier-1: configure + build + ctest =="
cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j

echo "== tier-1: sanitized kernel suites (ASan+UBSan) =="
asan_dir="${repo_root}/build-asan"
cmake -B "${asan_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIBADAPT_SANITIZE=ON
cmake --build "${asan_dir}" -j
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1"
# The suites most exposed to the hot-path overhaul: event kernel, fabric,
# stats, traffic, util (thread pool), api (sweep exception path), plus the
# slab arena and warm-reset reuse paths (raw slices + recycled fabrics).
ctest --test-dir "${asan_dir}" --output-on-failure -j \
  -R 'KernelEquivalence|EventQueue|ThreadPool|StatsCollector|SyntheticTraffic|Sweep|Fabric|SlabArena|VlBufferArena|WarmSession'

echo "== tier-1: sanitized chaos smoke (transient faults + watchdog) =="
# Robustness stack under ASan/UBSan: mixed fault classes on random
# topologies with the invariant watchdog standing guard, including the
# kAbort acceptance campaign and the ring-deadlock negative test.
ctest --test-dir "${asan_dir}" --output-on-failure -j \
  -R 'ChaosProperty|InvariantWatchdog|TransientFault'

echo "== tier-1: sanitized live-reconfiguration smoke =="
# The epoch-based LFT swap under ASan/UBSan: dual-bank table selection,
# faults racing an in-flight compute/install, and the live campaign with
# the cross-epoch deadlock check — the paths where a stale-bank read or a
# mis-freed staged image would surface as a memory error.
ctest --test-dir "${asan_dir}" --output-on-failure -j \
  -R 'VersionedTable|ReconfigManager|LiveReconfig'

echo "== tier-1: topology-scale smoke (fat-tree heap gate) =="
# The hierarchical generators at real scale: a saturated 256-switch
# fat-tree (arity-4, 4 levels) must finish healthy under a hard heap-peak
# ceiling (~4x the measured ~4.3 MiB), nominal 1024 (the arity-6 4-level
# tree, 864 switches, measured ~16 MiB) under 48 MiB, and the 2048-switch
# arity-8 4-level tree (measured ~49 MiB) under 96 MiB — the cases that
# catch any reintroduced superlinear table in the setup-and-run path.
# The 256 invocation also gates warm-fabric reuse: a SimSession rerun must
# be bit-identical and at least 10x cheaper in setup+plan than the fresh
# build.
"${build_dir}/bench/perf_scale" --kinds=fat-tree --sizes=256 \
  --warmup=500 --measure=2000 --max-heap-kb=16384 \
  --warm-size=256 --min-warm-speedup=10 \
  --json="${build_dir}/BENCH_scale_smoke.json"
"${build_dir}/bench/perf_scale" --kinds=fat-tree --sizes=1024 \
  --warmup=500 --measure=2000 --max-heap-kb=49152 --warm-size=0 \
  --json="${build_dir}/BENCH_scale_smoke.json"
"${build_dir}/bench/perf_scale" --kinds=fat-tree --sizes=2048 \
  --warmup=500 --measure=2000 --max-heap-kb=98304 --warm-size=0 \
  --json="${build_dir}/BENCH_scale_smoke.json"

echo "== tier-1: congestion-management smoke (FA+CC vs FA hotspot gate) =="
# The full congestion loop (FECN marking, CNP echo, AIMD source pacing)
# under a 64-switch irregular hotspot: arming the loop must not cost
# delivered throughput against adaptive routing alone, and the invariant
# watchdog must stay clean — throttle-induced idleness must never read as
# deadlock.
"${build_dir}/bench/congestion_sweep" --gate

echo "== tier-1: TSan parallel-kernel smoke (2-thread bit-identity) =="
# The parallel kernel's data-sharing discipline (epoch barriers + SPSC
# mailboxes) under ThreadSanitizer: the 2-thread bit-identity suite drives
# real cross-shard traffic, and the thread-pool suite hammers submit from
# many threads. TSan and ASan cannot share a build, hence the third tree.
tsan_dir="${repo_root}/build-tsan"
cmake -B "${tsan_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIBADAPT_SANITIZE=thread
cmake --build "${tsan_dir}" -j
export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "${tsan_dir}" --output-on-failure -j \
  -R 'ParallelKernel|ThreadPool|Sweep'

echo "tier-1 gate passed"
