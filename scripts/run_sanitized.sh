#!/usr/bin/env bash
#
# Build the library and run the tier-1 test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (the IBADAPT_SANITIZE CMake option). Any leak,
# heap error, or UB aborts the offending test.
#
# Usage: scripts/run_sanitized.sh [build-dir] [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
shift || true

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DIBADAPT_SANITIZE=ON
cmake --build "${build_dir}" -j

export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="print_stacktrace=1"
ctest --test-dir "${build_dir}" --output-on-failure -j "$@"

# Always re-run the slab-arena / bound-buffer / warm-reset suites, even when
# the caller filtered the main pass: raw-slice carving, VlBuffer binds, and
# Fabric::reset reuse are exactly where an off-by-one or stale pointer
# surfaces as a heap error rather than a test failure.
ctest --test-dir "${build_dir}" --output-on-failure -j \
  -R 'SlabArena|VlBufferArena|PackedRouteOptions|WarmSession'
