# Empty dependencies file for extension_traffic_patterns.
# This may be replaced when dependencies are built.
