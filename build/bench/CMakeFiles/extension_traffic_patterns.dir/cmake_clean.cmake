file(REMOVE_RECURSE
  "CMakeFiles/extension_traffic_patterns.dir/extension_traffic_patterns.cpp.o"
  "CMakeFiles/extension_traffic_patterns.dir/extension_traffic_patterns.cpp.o.d"
  "extension_traffic_patterns"
  "extension_traffic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
