# Empty dependencies file for fig3_adaptive_fraction.
# This may be replaced when dependencies are built.
