file(REMOVE_RECURSE
  "CMakeFiles/ablation_ordering_rule.dir/ablation_ordering_rule.cpp.o"
  "CMakeFiles/ablation_ordering_rule.dir/ablation_ordering_rule.cpp.o.d"
  "ablation_ordering_rule"
  "ablation_ordering_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ordering_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
