# Empty compiler generated dependencies file for ablation_ordering_rule.
# This may be replaced when dependencies are built.
