file(REMOVE_RECURSE
  "CMakeFiles/table2_routing_options.dir/table2_routing_options.cpp.o"
  "CMakeFiles/table2_routing_options.dir/table2_routing_options.cpp.o.d"
  "table2_routing_options"
  "table2_routing_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_routing_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
