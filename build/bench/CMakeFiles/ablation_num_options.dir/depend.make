# Empty dependencies file for ablation_num_options.
# This may be replaced when dependencies are built.
