file(REMOVE_RECURSE
  "CMakeFiles/ablation_num_options.dir/ablation_num_options.cpp.o"
  "CMakeFiles/ablation_num_options.dir/ablation_num_options.cpp.o.d"
  "ablation_num_options"
  "ablation_num_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_num_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
