file(REMOVE_RECURSE
  "CMakeFiles/extension_virtual_lanes.dir/extension_virtual_lanes.cpp.o"
  "CMakeFiles/extension_virtual_lanes.dir/extension_virtual_lanes.cpp.o.d"
  "extension_virtual_lanes"
  "extension_virtual_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_virtual_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
