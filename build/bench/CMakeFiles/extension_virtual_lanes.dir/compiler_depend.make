# Empty compiler generated dependencies file for extension_virtual_lanes.
# This may be replaced when dependencies are built.
