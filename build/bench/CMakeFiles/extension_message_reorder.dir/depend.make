# Empty dependencies file for extension_message_reorder.
# This may be replaced when dependencies are built.
