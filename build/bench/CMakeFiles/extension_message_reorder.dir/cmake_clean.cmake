file(REMOVE_RECURSE
  "CMakeFiles/extension_message_reorder.dir/extension_message_reorder.cpp.o"
  "CMakeFiles/extension_message_reorder.dir/extension_message_reorder.cpp.o.d"
  "extension_message_reorder"
  "extension_message_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_message_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
