# Empty dependencies file for ablation_buffer_split.
# This may be replaced when dependencies are built.
