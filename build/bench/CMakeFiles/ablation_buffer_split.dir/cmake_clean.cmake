file(REMOVE_RECURSE
  "CMakeFiles/ablation_buffer_split.dir/ablation_buffer_split.cpp.o"
  "CMakeFiles/ablation_buffer_split.dir/ablation_buffer_split.cpp.o.d"
  "ablation_buffer_split"
  "ablation_buffer_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buffer_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
