
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_buffer_split.cpp" "bench/CMakeFiles/ablation_buffer_split.dir/ablation_buffer_split.cpp.o" "gcc" "bench/CMakeFiles/ablation_buffer_split.dir/ablation_buffer_split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/ibadapt_api.dir/DependInfo.cmake"
  "/root/repo/build/src/subnet/CMakeFiles/ibadapt_subnet.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ibadapt_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ibadapt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ibadapt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/iba/CMakeFiles/ibadapt_iba.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ibadapt_host.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ibadapt_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/ibadapt_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibadapt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ibadapt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
