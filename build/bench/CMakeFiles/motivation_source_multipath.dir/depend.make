# Empty dependencies file for motivation_source_multipath.
# This may be replaced when dependencies are built.
