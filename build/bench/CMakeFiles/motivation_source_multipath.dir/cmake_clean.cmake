file(REMOVE_RECURSE
  "CMakeFiles/motivation_source_multipath.dir/motivation_source_multipath.cpp.o"
  "CMakeFiles/motivation_source_multipath.dir/motivation_source_multipath.cpp.o.d"
  "motivation_source_multipath"
  "motivation_source_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_source_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
