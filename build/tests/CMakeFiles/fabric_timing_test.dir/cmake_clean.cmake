file(REMOVE_RECURSE
  "CMakeFiles/fabric_timing_test.dir/fabric_timing_test.cpp.o"
  "CMakeFiles/fabric_timing_test.dir/fabric_timing_test.cpp.o.d"
  "fabric_timing_test"
  "fabric_timing_test.pdb"
  "fabric_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
