# Empty dependencies file for fabric_timing_test.
# This may be replaced when dependencies are built.
