file(REMOVE_RECURSE
  "CMakeFiles/subnet_manager_test.dir/subnet_manager_test.cpp.o"
  "CMakeFiles/subnet_manager_test.dir/subnet_manager_test.cpp.o.d"
  "subnet_manager_test"
  "subnet_manager_test.pdb"
  "subnet_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subnet_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
