# Empty dependencies file for subnet_manager_test.
# This may be replaced when dependencies are built.
