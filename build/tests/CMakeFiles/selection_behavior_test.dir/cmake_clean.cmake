file(REMOVE_RECURSE
  "CMakeFiles/selection_behavior_test.dir/selection_behavior_test.cpp.o"
  "CMakeFiles/selection_behavior_test.dir/selection_behavior_test.cpp.o.d"
  "selection_behavior_test"
  "selection_behavior_test.pdb"
  "selection_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
