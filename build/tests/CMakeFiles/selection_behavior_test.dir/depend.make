# Empty dependencies file for selection_behavior_test.
# This may be replaced when dependencies are built.
