# Empty compiler generated dependencies file for apm_fault_test.
# This may be replaced when dependencies are built.
