file(REMOVE_RECURSE
  "CMakeFiles/apm_fault_test.dir/apm_fault_test.cpp.o"
  "CMakeFiles/apm_fault_test.dir/apm_fault_test.cpp.o.d"
  "apm_fault_test"
  "apm_fault_test.pdb"
  "apm_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apm_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
