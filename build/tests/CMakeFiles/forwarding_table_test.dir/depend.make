# Empty dependencies file for forwarding_table_test.
# This may be replaced when dependencies are built.
