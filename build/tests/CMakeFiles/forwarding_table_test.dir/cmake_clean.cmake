file(REMOVE_RECURSE
  "CMakeFiles/forwarding_table_test.dir/forwarding_table_test.cpp.o"
  "CMakeFiles/forwarding_table_test.dir/forwarding_table_test.cpp.o.d"
  "forwarding_table_test"
  "forwarding_table_test.pdb"
  "forwarding_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forwarding_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
