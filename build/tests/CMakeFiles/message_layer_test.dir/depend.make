# Empty dependencies file for message_layer_test.
# This may be replaced when dependencies are built.
