file(REMOVE_RECURSE
  "CMakeFiles/message_layer_test.dir/message_layer_test.cpp.o"
  "CMakeFiles/message_layer_test.dir/message_layer_test.cpp.o.d"
  "message_layer_test"
  "message_layer_test.pdb"
  "message_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
