# Empty dependencies file for vl_buffer_test.
# This may be replaced when dependencies are built.
