file(REMOVE_RECURSE
  "CMakeFiles/vl_buffer_test.dir/vl_buffer_test.cpp.o"
  "CMakeFiles/vl_buffer_test.dir/vl_buffer_test.cpp.o.d"
  "vl_buffer_test"
  "vl_buffer_test.pdb"
  "vl_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
