# Empty compiler generated dependencies file for sl_to_vl_test.
# This may be replaced when dependencies are built.
