file(REMOVE_RECURSE
  "CMakeFiles/sl_to_vl_test.dir/sl_to_vl_test.cpp.o"
  "CMakeFiles/sl_to_vl_test.dir/sl_to_vl_test.cpp.o.d"
  "sl_to_vl_test"
  "sl_to_vl_test.pdb"
  "sl_to_vl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sl_to_vl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
