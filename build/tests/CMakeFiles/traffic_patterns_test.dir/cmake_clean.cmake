file(REMOVE_RECURSE
  "CMakeFiles/traffic_patterns_test.dir/traffic_patterns_test.cpp.o"
  "CMakeFiles/traffic_patterns_test.dir/traffic_patterns_test.cpp.o.d"
  "traffic_patterns_test"
  "traffic_patterns_test.pdb"
  "traffic_patterns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
