# Empty dependencies file for traffic_patterns_test.
# This may be replaced when dependencies are built.
