# Empty dependencies file for vl_arbitration_test.
# This may be replaced when dependencies are built.
