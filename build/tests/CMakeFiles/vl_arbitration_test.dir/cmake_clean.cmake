file(REMOVE_RECURSE
  "CMakeFiles/vl_arbitration_test.dir/vl_arbitration_test.cpp.o"
  "CMakeFiles/vl_arbitration_test.dir/vl_arbitration_test.cpp.o.d"
  "vl_arbitration_test"
  "vl_arbitration_test.pdb"
  "vl_arbitration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_arbitration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
