file(REMOVE_RECURSE
  "CMakeFiles/iba_wire_test.dir/iba_wire_test.cpp.o"
  "CMakeFiles/iba_wire_test.dir/iba_wire_test.cpp.o.d"
  "iba_wire_test"
  "iba_wire_test.pdb"
  "iba_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iba_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
