# Empty dependencies file for iba_wire_test.
# This may be replaced when dependencies are built.
