# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/apm_fault_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_flow_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_timing_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_table_test[1]_include.cmake")
include("/root/repo/build/tests/iba_wire_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/message_layer_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/multipath_test[1]_include.cmake")
include("/root/repo/build/tests/routing_test[1]_include.cmake")
include("/root/repo/build/tests/selection_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/sl_to_vl_test[1]_include.cmake")
include("/root/repo/build/tests/smp_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/subnet_manager_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_patterns_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/updown_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vl_arbitration_test[1]_include.cmake")
include("/root/repo/build/tests/vl_buffer_test[1]_include.cmake")
