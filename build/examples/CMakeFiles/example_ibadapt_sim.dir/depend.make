# Empty dependencies file for example_ibadapt_sim.
# This may be replaced when dependencies are built.
