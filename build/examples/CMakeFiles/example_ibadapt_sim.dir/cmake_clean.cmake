file(REMOVE_RECURSE
  "CMakeFiles/example_ibadapt_sim.dir/ibadapt_sim.cpp.o"
  "CMakeFiles/example_ibadapt_sim.dir/ibadapt_sim.cpp.o.d"
  "example_ibadapt_sim"
  "example_ibadapt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ibadapt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
