# Empty compiler generated dependencies file for example_fault_recovery.
# This may be replaced when dependencies are built.
