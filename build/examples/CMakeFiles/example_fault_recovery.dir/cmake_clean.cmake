file(REMOVE_RECURSE
  "CMakeFiles/example_fault_recovery.dir/fault_recovery.cpp.o"
  "CMakeFiles/example_fault_recovery.dir/fault_recovery.cpp.o.d"
  "example_fault_recovery"
  "example_fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
