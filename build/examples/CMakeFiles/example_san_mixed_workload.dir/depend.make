# Empty dependencies file for example_san_mixed_workload.
# This may be replaced when dependencies are built.
