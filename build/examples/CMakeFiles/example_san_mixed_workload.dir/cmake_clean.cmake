file(REMOVE_RECURSE
  "CMakeFiles/example_san_mixed_workload.dir/san_mixed_workload.cpp.o"
  "CMakeFiles/example_san_mixed_workload.dir/san_mixed_workload.cpp.o.d"
  "example_san_mixed_workload"
  "example_san_mixed_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_san_mixed_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
