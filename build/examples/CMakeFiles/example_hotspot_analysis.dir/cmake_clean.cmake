file(REMOVE_RECURSE
  "CMakeFiles/example_hotspot_analysis.dir/hotspot_analysis.cpp.o"
  "CMakeFiles/example_hotspot_analysis.dir/hotspot_analysis.cpp.o.d"
  "example_hotspot_analysis"
  "example_hotspot_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hotspot_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
