# Empty compiler generated dependencies file for example_hotspot_analysis.
# This may be replaced when dependencies are built.
