file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_routing.dir/minimal.cpp.o"
  "CMakeFiles/ibadapt_routing.dir/minimal.cpp.o.d"
  "CMakeFiles/ibadapt_routing.dir/route_set.cpp.o"
  "CMakeFiles/ibadapt_routing.dir/route_set.cpp.o.d"
  "CMakeFiles/ibadapt_routing.dir/updown.cpp.o"
  "CMakeFiles/ibadapt_routing.dir/updown.cpp.o.d"
  "libibadapt_routing.a"
  "libibadapt_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
