# Empty dependencies file for ibadapt_routing.
# This may be replaced when dependencies are built.
