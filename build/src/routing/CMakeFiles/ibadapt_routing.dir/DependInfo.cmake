
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/minimal.cpp" "src/routing/CMakeFiles/ibadapt_routing.dir/minimal.cpp.o" "gcc" "src/routing/CMakeFiles/ibadapt_routing.dir/minimal.cpp.o.d"
  "/root/repo/src/routing/route_set.cpp" "src/routing/CMakeFiles/ibadapt_routing.dir/route_set.cpp.o" "gcc" "src/routing/CMakeFiles/ibadapt_routing.dir/route_set.cpp.o.d"
  "/root/repo/src/routing/updown.cpp" "src/routing/CMakeFiles/ibadapt_routing.dir/updown.cpp.o" "gcc" "src/routing/CMakeFiles/ibadapt_routing.dir/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/ibadapt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
