file(REMOVE_RECURSE
  "libibadapt_routing.a"
)
