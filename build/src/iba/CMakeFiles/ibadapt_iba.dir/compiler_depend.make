# Empty compiler generated dependencies file for ibadapt_iba.
# This may be replaced when dependencies are built.
