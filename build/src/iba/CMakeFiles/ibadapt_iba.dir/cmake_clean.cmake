file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_iba.dir/crc.cpp.o"
  "CMakeFiles/ibadapt_iba.dir/crc.cpp.o.d"
  "CMakeFiles/ibadapt_iba.dir/headers.cpp.o"
  "CMakeFiles/ibadapt_iba.dir/headers.cpp.o.d"
  "libibadapt_iba.a"
  "libibadapt_iba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_iba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
