
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iba/crc.cpp" "src/iba/CMakeFiles/ibadapt_iba.dir/crc.cpp.o" "gcc" "src/iba/CMakeFiles/ibadapt_iba.dir/crc.cpp.o.d"
  "/root/repo/src/iba/headers.cpp" "src/iba/CMakeFiles/ibadapt_iba.dir/headers.cpp.o" "gcc" "src/iba/CMakeFiles/ibadapt_iba.dir/headers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
