file(REMOVE_RECURSE
  "libibadapt_iba.a"
)
