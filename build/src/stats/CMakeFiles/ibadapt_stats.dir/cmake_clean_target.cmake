file(REMOVE_RECURSE
  "libibadapt_stats.a"
)
