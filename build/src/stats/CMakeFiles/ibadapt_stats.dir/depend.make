# Empty dependencies file for ibadapt_stats.
# This may be replaced when dependencies are built.
