file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_stats.dir/collector.cpp.o"
  "CMakeFiles/ibadapt_stats.dir/collector.cpp.o.d"
  "CMakeFiles/ibadapt_stats.dir/in_order.cpp.o"
  "CMakeFiles/ibadapt_stats.dir/in_order.cpp.o.d"
  "CMakeFiles/ibadapt_stats.dir/latency.cpp.o"
  "CMakeFiles/ibadapt_stats.dir/latency.cpp.o.d"
  "libibadapt_stats.a"
  "libibadapt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
