file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_fabric.dir/fabric.cpp.o"
  "CMakeFiles/ibadapt_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/ibadapt_fabric.dir/fabric_arbiter.cpp.o"
  "CMakeFiles/ibadapt_fabric.dir/fabric_arbiter.cpp.o.d"
  "CMakeFiles/ibadapt_fabric.dir/fabric_run.cpp.o"
  "CMakeFiles/ibadapt_fabric.dir/fabric_run.cpp.o.d"
  "CMakeFiles/ibadapt_fabric.dir/packet.cpp.o"
  "CMakeFiles/ibadapt_fabric.dir/packet.cpp.o.d"
  "libibadapt_fabric.a"
  "libibadapt_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
