file(REMOVE_RECURSE
  "libibadapt_fabric.a"
)
