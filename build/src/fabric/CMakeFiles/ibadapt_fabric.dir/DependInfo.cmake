
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cpp" "src/fabric/CMakeFiles/ibadapt_fabric.dir/fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/ibadapt_fabric.dir/fabric.cpp.o.d"
  "/root/repo/src/fabric/fabric_arbiter.cpp" "src/fabric/CMakeFiles/ibadapt_fabric.dir/fabric_arbiter.cpp.o" "gcc" "src/fabric/CMakeFiles/ibadapt_fabric.dir/fabric_arbiter.cpp.o.d"
  "/root/repo/src/fabric/fabric_run.cpp" "src/fabric/CMakeFiles/ibadapt_fabric.dir/fabric_run.cpp.o" "gcc" "src/fabric/CMakeFiles/ibadapt_fabric.dir/fabric_run.cpp.o.d"
  "/root/repo/src/fabric/packet.cpp" "src/fabric/CMakeFiles/ibadapt_fabric.dir/packet.cpp.o" "gcc" "src/fabric/CMakeFiles/ibadapt_fabric.dir/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ibadapt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ibadapt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
