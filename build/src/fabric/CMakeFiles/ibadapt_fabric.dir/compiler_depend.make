# Empty compiler generated dependencies file for ibadapt_fabric.
# This may be replaced when dependencies are built.
