file(REMOVE_RECURSE
  "libibadapt_api.a"
)
