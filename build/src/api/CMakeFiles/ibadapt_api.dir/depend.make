# Empty dependencies file for ibadapt_api.
# This may be replaced when dependencies are built.
