file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_api.dir/simulation.cpp.o"
  "CMakeFiles/ibadapt_api.dir/simulation.cpp.o.d"
  "CMakeFiles/ibadapt_api.dir/sweep.cpp.o"
  "CMakeFiles/ibadapt_api.dir/sweep.cpp.o.d"
  "libibadapt_api.a"
  "libibadapt_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
