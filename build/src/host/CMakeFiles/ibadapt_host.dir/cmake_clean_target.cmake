file(REMOVE_RECURSE
  "libibadapt_host.a"
)
