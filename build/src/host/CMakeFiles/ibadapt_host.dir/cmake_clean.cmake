file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_host.dir/message_layer.cpp.o"
  "CMakeFiles/ibadapt_host.dir/message_layer.cpp.o.d"
  "libibadapt_host.a"
  "libibadapt_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
