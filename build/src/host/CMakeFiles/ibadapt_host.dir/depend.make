# Empty dependencies file for ibadapt_host.
# This may be replaced when dependencies are built.
