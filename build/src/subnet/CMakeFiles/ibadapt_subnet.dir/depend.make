# Empty dependencies file for ibadapt_subnet.
# This may be replaced when dependencies are built.
