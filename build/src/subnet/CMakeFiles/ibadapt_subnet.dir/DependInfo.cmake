
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subnet/smp.cpp" "src/subnet/CMakeFiles/ibadapt_subnet.dir/smp.cpp.o" "gcc" "src/subnet/CMakeFiles/ibadapt_subnet.dir/smp.cpp.o.d"
  "/root/repo/src/subnet/subnet_manager.cpp" "src/subnet/CMakeFiles/ibadapt_subnet.dir/subnet_manager.cpp.o" "gcc" "src/subnet/CMakeFiles/ibadapt_subnet.dir/subnet_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/ibadapt_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/ibadapt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ibadapt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibadapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ibadapt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
