file(REMOVE_RECURSE
  "libibadapt_subnet.a"
)
