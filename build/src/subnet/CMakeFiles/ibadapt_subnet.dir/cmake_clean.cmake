file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_subnet.dir/smp.cpp.o"
  "CMakeFiles/ibadapt_subnet.dir/smp.cpp.o.d"
  "CMakeFiles/ibadapt_subnet.dir/subnet_manager.cpp.o"
  "CMakeFiles/ibadapt_subnet.dir/subnet_manager.cpp.o.d"
  "libibadapt_subnet.a"
  "libibadapt_subnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_subnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
