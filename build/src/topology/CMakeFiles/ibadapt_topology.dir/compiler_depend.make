# Empty compiler generated dependencies file for ibadapt_topology.
# This may be replaced when dependencies are built.
