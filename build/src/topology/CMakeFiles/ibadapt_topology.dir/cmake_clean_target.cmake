file(REMOVE_RECURSE
  "libibadapt_topology.a"
)
