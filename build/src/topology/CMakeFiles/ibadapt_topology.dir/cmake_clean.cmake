file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_topology.dir/generators.cpp.o"
  "CMakeFiles/ibadapt_topology.dir/generators.cpp.o.d"
  "CMakeFiles/ibadapt_topology.dir/topology.cpp.o"
  "CMakeFiles/ibadapt_topology.dir/topology.cpp.o.d"
  "libibadapt_topology.a"
  "libibadapt_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
