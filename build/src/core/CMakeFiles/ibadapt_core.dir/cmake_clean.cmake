file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_core.dir/forwarding_table.cpp.o"
  "CMakeFiles/ibadapt_core.dir/forwarding_table.cpp.o.d"
  "CMakeFiles/ibadapt_core.dir/sl_to_vl.cpp.o"
  "CMakeFiles/ibadapt_core.dir/sl_to_vl.cpp.o.d"
  "CMakeFiles/ibadapt_core.dir/vl_buffer.cpp.o"
  "CMakeFiles/ibadapt_core.dir/vl_buffer.cpp.o.d"
  "libibadapt_core.a"
  "libibadapt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
