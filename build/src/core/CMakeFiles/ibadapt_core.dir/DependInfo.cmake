
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/forwarding_table.cpp" "src/core/CMakeFiles/ibadapt_core.dir/forwarding_table.cpp.o" "gcc" "src/core/CMakeFiles/ibadapt_core.dir/forwarding_table.cpp.o.d"
  "/root/repo/src/core/sl_to_vl.cpp" "src/core/CMakeFiles/ibadapt_core.dir/sl_to_vl.cpp.o" "gcc" "src/core/CMakeFiles/ibadapt_core.dir/sl_to_vl.cpp.o.d"
  "/root/repo/src/core/vl_buffer.cpp" "src/core/CMakeFiles/ibadapt_core.dir/vl_buffer.cpp.o" "gcc" "src/core/CMakeFiles/ibadapt_core.dir/vl_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
