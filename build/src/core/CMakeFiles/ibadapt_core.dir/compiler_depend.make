# Empty compiler generated dependencies file for ibadapt_core.
# This may be replaced when dependencies are built.
