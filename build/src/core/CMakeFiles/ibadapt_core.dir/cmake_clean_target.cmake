file(REMOVE_RECURSE
  "libibadapt_core.a"
)
