file(REMOVE_RECURSE
  "libibadapt_analysis.a"
)
