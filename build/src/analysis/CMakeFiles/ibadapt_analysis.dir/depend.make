# Empty dependencies file for ibadapt_analysis.
# This may be replaced when dependencies are built.
