file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_analysis.dir/option_census.cpp.o"
  "CMakeFiles/ibadapt_analysis.dir/option_census.cpp.o.d"
  "libibadapt_analysis.a"
  "libibadapt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
