
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/option_census.cpp" "src/analysis/CMakeFiles/ibadapt_analysis.dir/option_census.cpp.o" "gcc" "src/analysis/CMakeFiles/ibadapt_analysis.dir/option_census.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/ibadapt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ibadapt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ibadapt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
