file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ibadapt_sim.dir/event_queue.cpp.o.d"
  "libibadapt_sim.a"
  "libibadapt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
