file(REMOVE_RECURSE
  "libibadapt_sim.a"
)
