# Empty compiler generated dependencies file for ibadapt_sim.
# This may be replaced when dependencies are built.
