file(REMOVE_RECURSE
  "libibadapt_traffic.a"
)
