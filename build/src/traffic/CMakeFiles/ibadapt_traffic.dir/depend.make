# Empty dependencies file for ibadapt_traffic.
# This may be replaced when dependencies are built.
