file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_traffic.dir/synthetic.cpp.o"
  "CMakeFiles/ibadapt_traffic.dir/synthetic.cpp.o.d"
  "CMakeFiles/ibadapt_traffic.dir/trace.cpp.o"
  "CMakeFiles/ibadapt_traffic.dir/trace.cpp.o.d"
  "libibadapt_traffic.a"
  "libibadapt_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
