file(REMOVE_RECURSE
  "libibadapt_util.a"
)
