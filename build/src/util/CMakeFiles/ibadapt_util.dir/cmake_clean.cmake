file(REMOVE_RECURSE
  "CMakeFiles/ibadapt_util.dir/flags.cpp.o"
  "CMakeFiles/ibadapt_util.dir/flags.cpp.o.d"
  "CMakeFiles/ibadapt_util.dir/rng.cpp.o"
  "CMakeFiles/ibadapt_util.dir/rng.cpp.o.d"
  "CMakeFiles/ibadapt_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ibadapt_util.dir/thread_pool.cpp.o.d"
  "libibadapt_util.a"
  "libibadapt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibadapt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
