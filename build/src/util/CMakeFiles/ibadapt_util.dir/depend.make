# Empty dependencies file for ibadapt_util.
# This may be replaced when dependencies are built.
