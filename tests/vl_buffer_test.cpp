//
// The paper's core mechanism, part 2: split VL buffer (Fig. 2) and the
// credit arithmetic of §4.4.
//
#include <gtest/gtest.h>

#include "core/credits.hpp"
#include "core/vl_buffer.hpp"

namespace ibadapt {
namespace {

BufferedPacket pkt(std::uint32_t id, int credits, bool deterministic = false) {
  BufferedPacket bp;
  bp.packet = id;
  bp.credits = credits;
  bp.deterministic = deterministic;
  return bp;
}

// ---------------------------------------------------------------------------
// Credit arithmetic (paper formulas)
// ---------------------------------------------------------------------------

TEST(Credits, PaperFormulas) {
  // C_max = 8, C0 = 4 (halves). C = available credits.
  EXPECT_EQ(adaptiveCredits(8, 4), 4);
  EXPECT_EQ(adaptiveCredits(5, 4), 1);
  EXPECT_EQ(adaptiveCredits(4, 4), 0);
  EXPECT_EQ(adaptiveCredits(0, 4), 0);
  EXPECT_EQ(escapeCredits(8, 4), 4);
  EXPECT_EQ(escapeCredits(3, 4), 3);
  EXPECT_EQ(escapeCredits(0, 4), 0);
}

class CreditPartitionTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CreditPartitionTest, AdaptivePlusEscapeEqualsAvailable) {
  const auto [cmax, reserve] = GetParam();
  for (int c = 0; c <= cmax; ++c) {
    EXPECT_TRUE(creditsPartitionExactly(c, reserve));
    EXPECT_EQ(adaptiveCredits(c, reserve) + escapeCredits(c, reserve), c);
    EXPECT_GE(adaptiveCredits(c, reserve), 0);
    EXPECT_LE(escapeCredits(c, reserve), reserve);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CreditPartitionTest,
    ::testing::Values(std::pair{8, 4}, std::pair{8, 2}, std::pair{8, 6},
                      std::pair{16, 8}, std::pair{4, 2}, std::pair{2, 1},
                      std::pair{8, 0}, std::pair{8, 8}));

// ---------------------------------------------------------------------------
// VlBuffer structure
// ---------------------------------------------------------------------------

TEST(VlBuffer, ConstructionValidation) {
  EXPECT_THROW(VlBuffer(0, 0), std::invalid_argument);
  EXPECT_THROW(VlBuffer(4, 5), std::invalid_argument);
  EXPECT_THROW(VlBuffer(4, -1), std::invalid_argument);
  const VlBuffer b(8, 4);
  EXPECT_EQ(b.adaptiveRegionCredits(), 4);
  EXPECT_EQ(b.freeCredits(), 8);
}

TEST(VlBuffer, PushTracksOccupancy) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 4));
  EXPECT_EQ(b.occupiedCredits(), 4);
  b.push(pkt(2, 4));
  EXPECT_EQ(b.occupiedCredits(), 8);
  EXPECT_EQ(b.freeCredits(), 0);
  EXPECT_EQ(b.size(), 2);
}

TEST(VlBuffer, OverflowIsInvariantViolation) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 8));
  EXPECT_THROW(b.push(pkt(2, 1)), std::logic_error);
}

TEST(VlBuffer, RemoveMiddleCompacts) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 2));
  b.push(pkt(2, 2));
  b.push(pkt(3, 2));
  b.remove(1);
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.at(0).packet, 1u);
  EXPECT_EQ(b.at(1).packet, 3u);
  EXPECT_EQ(b.occupiedCredits(), 4);
  EXPECT_THROW(b.remove(5), std::out_of_range);
}

TEST(VlBuffer, EscapeHeadBoundary) {
  // Capacity 8, reserve 4 => adaptive region = credits [0,4).
  VlBuffer b(8, 4);
  EXPECT_EQ(b.escapeHeadIndex(), -1);  // empty
  b.push(pkt(1, 4));                   // occupies [0,4): adaptive region
  EXPECT_EQ(b.escapeHeadIndex(), -1);
  b.push(pkt(2, 4));  // starts at offset 4: first escape-region packet
  EXPECT_EQ(b.escapeHeadIndex(), 1);
}

TEST(VlBuffer, EscapeHeadWithSmallPackets) {
  VlBuffer b(8, 4);
  for (std::uint32_t i = 0; i < 8; ++i) b.push(pkt(i, 1));
  EXPECT_EQ(b.escapeHeadIndex(), 4);  // offsets 0..7; first >= 4 is index 4
  b.remove(0);                        // everyone advances
  EXPECT_EQ(b.escapeHeadIndex(), 4);  // the packet now at offset 4
}

TEST(VlBuffer, EscapeToAdaptiveTransition) {
  // A packet initially in the escape region becomes the adaptive head once
  // packets ahead of it leave (paper: escape -> adaptive queue transition).
  VlBuffer b(8, 4);
  b.push(pkt(1, 4));
  b.push(pkt(2, 4));
  EXPECT_EQ(b.escapeHeadIndex(), 1);
  b.remove(0);
  EXPECT_EQ(b.escapeHeadIndex(), -1);  // pkt 2 advanced into adaptive region
  EXPECT_EQ(b.at(0).packet, 2u);
}

TEST(VlBuffer, ZeroReserveMeansNoEscapeQueue) {
  VlBuffer b(8, 0);
  b.push(pkt(1, 2));
  b.push(pkt(2, 2));
  // Region boundary at 8: nothing ever starts at or beyond it... except the
  // boundary equals capacity, so escapeHeadIndex stays -1.
  EXPECT_EQ(b.escapeHeadIndex(), -1);
}

TEST(VlBuffer, FullReserveMakesFrontTheOnlyHead) {
  VlBuffer b(8, 8);  // adaptive region empty
  b.push(pkt(1, 2));
  b.push(pkt(2, 2));
  // First packet starts at offset 0 >= boundary 0 => escape head is index 0,
  // which coincides with the adaptive head; only one candidate results.
  const auto c = b.candidateHeads(EscapeOrderRule::kPaperStrict);
  EXPECT_EQ(c.count, 1);
  EXPECT_EQ(c.index[0], 0);
}

// ---------------------------------------------------------------------------
// Candidate heads & ordering rules (paper §4.4 last paragraph)
// ---------------------------------------------------------------------------

TEST(VlBuffer, TwoCandidatesWhenEscapeHeadDistinct) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 4, /*det=*/false));
  b.push(pkt(2, 4, /*det=*/false));
  const auto c = b.candidateHeads(EscapeOrderRule::kPaperStrict);
  ASSERT_EQ(c.count, 2);
  EXPECT_EQ(c.index[0], 0);
  EXPECT_EQ(c.index[1], 1);
}

TEST(VlBuffer, StrictRuleBlocksEscapeBehindDeterministic) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 4, /*det=*/true));   // deterministic in adaptive region
  b.push(pkt(2, 4, /*det=*/false));  // adaptive packet at escape head
  const auto strict = b.candidateHeads(EscapeOrderRule::kPaperStrict);
  EXPECT_EQ(strict.count, 1);  // escape head blocked by the det pointer
  const auto relaxed = b.candidateHeads(EscapeOrderRule::kDeterministicOnly);
  EXPECT_EQ(relaxed.count, 2);  // adaptive packets may still bypass
}

TEST(VlBuffer, BothRulesBlockDeterministicBypassingDeterministic) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 4, /*det=*/true));
  b.push(pkt(2, 4, /*det=*/true));  // younger det packet at escape head
  for (auto rule : {EscapeOrderRule::kPaperStrict,
                    EscapeOrderRule::kDeterministicOnly}) {
    const auto c = b.candidateHeads(rule);
    EXPECT_EQ(c.count, 1) << "younger det packet must not overtake";
    EXPECT_EQ(c.index[0], 0);
  }
}

TEST(VlBuffer, AdaptiveAheadDoesNotBlockEscape) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 4, /*det=*/false));  // adaptive ahead
  b.push(pkt(2, 4, /*det=*/true));   // deterministic at escape head
  for (auto rule : {EscapeOrderRule::kPaperStrict,
                    EscapeOrderRule::kDeterministicOnly}) {
    const auto c = b.candidateHeads(rule);
    EXPECT_EQ(c.count, 2) << "no deterministic packet ahead: nothing blocks";
  }
}

TEST(VlBuffer, StrictRuleRedirectsEscapeConnectionToMidQueueDet) {
  // Adaptive front, deterministic packet mid-queue (adaptive region),
  // adaptive packet at the escape head. The paper's pointer rule must make
  // the escape connection serve the deterministic packet directly — it is
  // selectable from RAM — rather than stall the escape queue (stalling
  // would break the escape network's drain guarantee).
  VlBuffer b(8, 4);
  b.push(pkt(1, 2, /*det=*/false));  // front, offsets [0,2)
  b.push(pkt(2, 2, /*det=*/true));   // mid adaptive region, offsets [2,4)
  b.push(pkt(3, 4, /*det=*/false));  // escape head, offsets [4,8)
  EXPECT_EQ(b.escapeHeadIndex(), 2);
  const auto strict = b.candidateHeads(EscapeOrderRule::kPaperStrict);
  ASSERT_EQ(strict.count, 2);
  EXPECT_EQ(strict.index[0], 0);
  EXPECT_EQ(strict.index[1], 1);  // redirected to the deterministic packet
  const auto relaxed = b.candidateHeads(EscapeOrderRule::kDeterministicOnly);
  ASSERT_EQ(relaxed.count, 2);
  EXPECT_EQ(relaxed.index[1], 2);  // adaptive escape head may bypass
}

TEST(VlBuffer, RelaxedRuleRedirectsWhenEscapeHeadIsDeterministic) {
  VlBuffer b(8, 4);
  b.push(pkt(1, 2, /*det=*/false));
  b.push(pkt(2, 2, /*det=*/true));  // older deterministic, mid-queue
  b.push(pkt(3, 4, /*det=*/true));  // deterministic escape head
  const auto relaxed = b.candidateHeads(EscapeOrderRule::kDeterministicOnly);
  ASSERT_EQ(relaxed.count, 2);
  EXPECT_EQ(relaxed.index[1], 1)
      << "det-det order: the older det packet must be served first";
}

TEST(VlBuffer, EmptyBufferHasNoCandidates) {
  VlBuffer b(8, 4);
  EXPECT_EQ(b.candidateHeads(EscapeOrderRule::kPaperStrict).count, 0);
}

}  // namespace
}  // namespace ibadapt
