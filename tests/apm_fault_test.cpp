//
// APM path-set coexistence (paper §4.1) and link-fault behaviour: the LID
// block carries several complete routing configurations; endpoints migrate
// between them by changing the DLID sub-block, with no subnet-manager round.
//
#include <gtest/gtest.h>

#include "api/simulation.hpp"
#include "fabric/fabric.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

TEST(Apm, BlockLayoutHoldsAllSets) {
  const Topology topo = irregular(16, 6, 71);
  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 2;  // 4 addresses: 2 sets x 2 options
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.apmPathSets = 2;
  const auto report = sm.configure(sp);
  EXPECT_EQ(report.lftEntriesWritten,
            static_cast<std::size_t>(16) * topo.numNodes() * 4);

  const LidMapper& lids = fabric.lids();
  int setsDiffer = 0;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = lids.baseLid(n);
      for (int k = 0; k < 4; ++k) {
        ASSERT_NE(fabric.lftEntry(sw, base + static_cast<Lid>(k)),
                  kInvalidPort);
      }
      if (fabric.lftEntry(sw, base) != fabric.lftEntry(sw, base + 2)) {
        ++setsDiffer;  // set-1 escape plane picked a different tie
      }
    }
  }
  EXPECT_GT(setsDiffer, 0);
}

TEST(Apm, RejectsOverfullBlock) {
  const Topology topo = irregular(8, 4, 72);
  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 1;  // block of 2: no room for 2 sets x 2 options
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.apmPathSets = 2;
  EXPECT_THROW(sm.configure(sp), std::invalid_argument);
}

TEST(Apm, AlternateSetDeliversEndToEnd) {
  SimParams p;
  p.numSwitches = 16;
  p.fabric.numOptions = 2;
  p.fabric.lmc = 2;
  p.apmPathSets = 2;
  p.apmActiveSet = 1;  // everyone on the alternate set
  p.adaptiveFraction = 1.0;
  p.warmupPackets = 500;
  p.measurePackets = 4000;
  const SimResults r = runSimulation(p);
  EXPECT_TRUE(r.measurementComplete);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(Apm, MixedSetsStayDeadlockFree) {
  // Half the hosts on set 0, half on set 1, saturated: the union of both
  // escape planes must stay live. We emulate the mix by running the
  // fabric directly with a scripted per-node set choice.
  const Topology topo = irregular(16, 4, 73);
  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 2;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.apmPathSets = 2;
  sm.configure(sp);

  testing::ScriptedTraffic traffic;
  Rng rng(5);
  for (NodeId src = 0; src < topo.numNodes(); ++src) {
    const int setOffset = (src % 2) * fp.numOptions;
    for (int i = 0; i < 60; ++i) {
      NodeId dst = static_cast<NodeId>(
          rng.uniformIndex(static_cast<std::uint64_t>(topo.numNodes() - 1)));
      if (dst >= src) ++dst;
      traffic.add(src, i * 200, dst, 32, /*adaptive=*/true);
    }
    (void)setOffset;
  }
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 100'000'000;
  fabric.run(limits);
  EXPECT_FALSE(fabric.deadlockSuspected());
  EXPECT_EQ(obs.deliveries.size(),
            static_cast<std::size_t>(topo.numNodes()) * 60);
}

// ---------------------------------------------------------------------------
// Link faults
// ---------------------------------------------------------------------------

TEST(FailLink, ManagementPlaneSeesTheFault) {
  const Topology topo = irregular(8, 4, 74);
  FabricParams fp;
  Fabric fabric(topo, fp);
  const auto nbs = topo.switchNeighbors(0);
  ASSERT_FALSE(nbs.empty());
  const auto [peerSw, port] = nbs.front();
  fabric.failLink(0, port);
  EXPECT_EQ(fabric.managementPeer(0, port).kind, PeerKind::kUnused);
  SubnetManager sm(fabric);
  const auto d = sm.discover();
  EXPECT_TRUE(d.consistent);
  EXPECT_EQ(static_cast<int>(d.links.size()), topo.numLinks() - 1);
  (void)peerSw;
}

TEST(FailLink, RejectsNodePorts) {
  const Topology topo = irregular(8, 4, 75);
  Fabric fabric(topo, FabricParams{});
  EXPECT_THROW(fabric.failLink(0, 0), std::invalid_argument);  // CA port
}

TEST(FailLink, StrandedDeterministicPacketsAreDropped) {
  // Line 0-1-2: deterministic packets 0 -> switch-2 node must cross both
  // links. Fail the 1-2 link mid-run: packets at switch 1 have a single
  // dead escape option and must be discarded, freeing their buffers.
  Topology topo = testing::lineTopology(2);
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  testing::ScriptedTraffic traffic;
  for (int i = 0; i < 20; ++i) {
    traffic.add(0, i * 200, /*dst=*/5, 32, /*adaptive=*/false);
  }
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 1'200;  // a couple of packets get through
  fabric.run(limits);
  const auto delivered = obs.deliveries.size();

  // Find switch 1's port toward switch 2 and kill it.
  PortIndex toSw2 = kInvalidPort;
  for (const auto& [nb, port] : fabric.topology().switchNeighbors(1)) {
    if (nb == 2) toSw2 = port;
  }
  ASSERT_NE(toSw2, kInvalidPort);
  fabric.failLink(1, toSw2);

  limits.endTime = 50'000'000;
  limits.watchdogPeriodNs = 100'000;
  fabric.run(limits);
  EXPECT_FALSE(fabric.deadlockSuspected())
      << "dropping must keep buffers live";
  EXPECT_GT(fabric.counters().dropped, 0u);
  EXPECT_EQ(obs.deliveries.size() - delivered + fabric.counters().dropped,
            20u - delivered);
}

TEST(FailLink, SubnetManagerReroutesAroundFault) {
  // Diamond 0-{1,2}-3: fail 0-1; reconfiguration must push everything via
  // switch 2 and traffic flows again with no further drops.
  Topology topo(4, 6, 2);
  topo.addLink(0, 1);
  topo.addLink(0, 2);
  topo.addLink(1, 3);
  topo.addLink(2, 3);
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  PortIndex toSw1 = kInvalidPort;
  for (const auto& [nb, port] : fabric.topology().switchNeighbors(0)) {
    if (nb == 1) toSw1 = port;
  }
  ASSERT_NE(toSw1, kInvalidPort);
  fabric.failLink(0, toSw1);
  sm.configure();  // SM sweep reroutes around the dead link

  testing::ScriptedTraffic traffic;
  for (int i = 0; i < 50; ++i) {
    traffic.add(0, i * 300, /*dst=*/6, 32, /*adaptive=*/false);
  }
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 60'000'000;
  fabric.run(limits);
  EXPECT_EQ(obs.deliveries.size(), 50u);
  EXPECT_EQ(fabric.counters().dropped, 0u);
  EXPECT_FALSE(fabric.deadlockSuspected());
}

TEST(FailLink, ApmMigrationAvoidsFaultWhenAlternateSetDiffers) {
  // End-to-end: program 2 path sets, fail a link used by set 0 for some
  // destination where set 1 goes elsewhere, and verify set-1 senders are
  // unaffected while set-0 senders lose packets until reconfiguration.
  const Topology topoOrig = irregular(16, 6, 76);
  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 2;
  Fabric fabric(topoOrig, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.apmPathSets = 2;
  sm.configure(sp);

  // Locate a (switch, dest) whose set-0 and set-1 escape hops differ.
  const LidMapper& lids = fabric.lids();
  SwitchId atSw = kInvalidId;
  NodeId dest = kInvalidId;
  PortIndex deadPort = kInvalidPort;
  for (SwitchId sw = 0; sw < topoOrig.numSwitches() && atSw == kInvalidId;
       ++sw) {
    for (NodeId n = 0; n < topoOrig.numNodes(); ++n) {
      if (topoOrig.switchOfNode(n) == sw) continue;
      const PortIndex e0 = fabric.lftEntry(sw, lids.baseLid(n));
      const PortIndex e1 = fabric.lftEntry(sw, lids.baseLid(n) + 2);
      if (e0 != e1) {
        atSw = sw;
        dest = n;
        deadPort = e0;
        break;
      }
    }
  }
  ASSERT_NE(atSw, kInvalidId) << "planes never differ? salt broken";
  ASSERT_EQ(topoOrig.peer(atSw, deadPort).kind, PeerKind::kSwitch);
  fabric.failLink(atSw, deadPort);

  // Set-1's escape hop at atSw must still be alive...
  const PortIndex e1 = fabric.lftEntry(atSw, lids.baseLid(dest) + 2);
  EXPECT_NE(fabric.managementPeer(atSw, e1).kind, PeerKind::kUnused);

  // ...and deterministic probes pinned to path set 1 (pathOffset = 2) must
  // all arrive, while probes on the broken primary set are discarded at
  // atSw. (Probes start at a node of atSw so the dead hop is first.)
  const NodeId src = topoOrig.nodeAt(atSw, 0);
  testing::ScriptedTraffic traffic;
  for (int i = 0; i < 10; ++i) {
    traffic.add(src, i * 800, dest, 32, false, 0, /*pathOffset=*/0);
    traffic.add(src, i * 800 + 400, dest, 32, false, 0, /*pathOffset=*/2);
  }
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 80'000'000;
  fabric.run(limits);
  EXPECT_FALSE(fabric.deadlockSuspected());
  int viaSet1 = 0;
  for (const auto& d : obs.deliveries) {
    EXPECT_EQ(d.pkt.dlid, lids.baseLid(dest) + 2)
        << "only path-set-1 probes can arrive";
    ++viaSet1;
  }
  EXPECT_EQ(viaSet1, 10);
  EXPECT_EQ(fabric.counters().dropped, 10u);
}

}  // namespace
}  // namespace ibadapt
