//
// Trace capture / replay: file-format round trips, replay fidelity, and
// cross-configuration comparison on identical offered traffic.
//
#include <gtest/gtest.h>

#include <sstream>

#include "fabric/fabric.hpp"
#include "stats/collector.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"
#include "traffic/synthetic.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

TEST(TraceFormat, RoundTripsThroughText) {
  std::vector<TraceRecord> records{
      {0, 0, 5, 32, true, 0},
      {100, 3, 1, 256, false, 2},
      {250, 0, 2, 64, true, 1},
  };
  std::stringstream ss;
  writeTrace(ss, records);
  const auto back = readTrace(ss);
  EXPECT_EQ(back, records);
}

TEST(TraceFormat, SkipsCommentsAndBlanks) {
  std::stringstream ss("# header\n\n10 0 1 32 1 0\n   \n20 1 0 32 0 0 # tail\n");
  const auto records = readTrace(ss);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].genTime, 10);
  EXPECT_EQ(records[1].genTime, 20);
  EXPECT_FALSE(records[1].adaptive);
}

TEST(TraceFormat, RejectsMalformedLines) {
  std::stringstream truncated("10 0 1 32\n");
  EXPECT_THROW(readTrace(truncated), std::runtime_error);
  std::stringstream badSize("10 0 1 0 1 0\n");
  EXPECT_THROW(readTrace(badSize), std::runtime_error);
  std::stringstream badSl("10 0 1 32 1 99\n");
  EXPECT_THROW(readTrace(badSl), std::runtime_error);
}

Topology smallTopo() {
  Rng rng(81);
  IrregularSpec spec;
  spec.numSwitches = 8;
  spec.linksPerSwitch = 4;
  return makeIrregular(spec, rng);
}

/// Captures a synthetic run and returns the trace + delivered count.
std::vector<TraceRecord> captureRun(const Topology& topo,
                                    std::uint64_t* delivered = nullptr) {
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.loadBytesPerNsPerNode = 0.03;
  ts.adaptiveFraction = 0.5;
  SyntheticTraffic traffic(ts, 9);
  TraceCapture capture;
  fabric.attachTraffic(&traffic, 9);
  fabric.attachObserver(&capture);
  fabric.start();
  RunLimits limits;
  limits.endTime = 400'000;
  fabric.run(limits);
  if (delivered != nullptr) *delivered = fabric.counters().delivered;
  return capture.records();
}

TEST(TraceReplay, ReproducesTheCapturedRunExactly) {
  const Topology topo = smallTopo();
  std::uint64_t deliveredOriginal = 0;
  const auto trace = captureRun(topo, &deliveredOriginal);
  ASSERT_GT(trace.size(), 100u);

  // Replay on an identical fabric: same generation times, same deliveries.
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  TraceTraffic replay(trace);
  TraceCapture recapture;
  fabric.attachTraffic(&replay, /*seed irrelevant*/ 1);
  fabric.attachObserver(&recapture);
  fabric.start();
  RunLimits limits;
  limits.endTime = 400'000;
  fabric.run(limits);
  EXPECT_EQ(recapture.records(), trace);
  EXPECT_EQ(fabric.counters().delivered, deliveredOriginal);
}

TEST(TraceReplay, SameTraceDifferentRoutingConfigs) {
  // The point of traces: compare configurations on identical offered
  // traffic. Adaptive switches must deliver the same packets (counted by
  // trace length) as deterministic ones, with both runs completing.
  const Topology topo = smallTopo();
  const auto trace = captureRun(topo);

  auto runWith = [&](bool adaptiveSwitches) {
    FabricParams fp;
    fp.adaptiveSwitches = adaptiveSwitches;
    Fabric fabric(topo, fp);
    SubnetManager sm(fabric);
    sm.configure();
    TraceTraffic replay(trace);
    fabric.attachTraffic(&replay, 1);
    fabric.start();
    RunLimits limits;
    limits.endTime = 100'000'000;
    fabric.run(limits);
    EXPECT_FALSE(fabric.deadlockSuspected());
    return fabric.counters().delivered;
  };
  const auto withAdaptive = runWith(true);
  const auto withoutAdaptive = runWith(false);
  EXPECT_EQ(withAdaptive, trace.size());
  EXPECT_EQ(withoutAdaptive, trace.size());
}

TEST(TraceReplay, PerNodeOrderPreserved) {
  std::vector<TraceRecord> records{
      {300, 0, 1, 32, false, 0},
      {100, 0, 2, 32, false, 0},  // out of order in the file
      {200, 0, 3, 32, false, 0},
  };
  TraceTraffic replay(records);
  Rng rng(1);
  EXPECT_EQ(replay.firstGenTime(0, rng), 100);
  EXPECT_EQ(replay.makePacket(0, rng).dst, 2);
  EXPECT_EQ(replay.nextGenTime(0, 100, rng), 200);
  EXPECT_EQ(replay.makePacket(0, rng).dst, 3);
  EXPECT_EQ(replay.makePacket(0, rng).dst, 1);
  EXPECT_EQ(replay.nextGenTime(0, 300, rng), kTimeNever);
  EXPECT_EQ(replay.firstGenTime(7, rng), kTimeNever);  // silent node
}

TEST(ObserverFanout, BroadcastsToAll) {
  testing::RecordingObserver a;
  testing::RecordingObserver b;
  ObserverFanout fan;
  fan.add(&a);
  fan.add(&b);
  Packet pkt;
  pkt.src = 1;
  pkt.dst = 2;
  pkt.sizeBytes = 32;
  fan.onDelivered(pkt, 123);
  EXPECT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(a.deliveries[0].at, 123);
}

TEST(TraceWithStats, FanoutCombinesCaptureAndMeasurement) {
  const Topology topo = smallTopo();
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.loadBytesPerNsPerNode = 0.03;
  SyntheticTraffic traffic(ts, 5);
  TraceCapture capture;
  StatsCollector::Config sc;
  sc.warmupPackets = 100;
  sc.measurePackets = 500;
  StatsCollector stats(sc, topo.numNodes());
  stats.bindFabric(&fabric);
  ObserverFanout fan;
  fan.add(&capture);
  fan.add(&stats);
  fabric.attachTraffic(&traffic, 5);
  fabric.attachObserver(&fan);
  fabric.start();
  RunLimits limits;
  limits.endTime = 100'000'000;
  fabric.run(limits);
  EXPECT_TRUE(stats.measurementComplete());
  EXPECT_GE(capture.records().size(), 600u);
}

}  // namespace
}  // namespace ibadapt
