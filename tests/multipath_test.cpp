//
// Source-multipath baseline (paper §1 motivation): per-plane deterministic
// up*/down* tables selected by DLID at the source.
//
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "api/simulation.hpp"
#include "api/sweep.hpp"
#include "routing/updown.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

TEST(UpDownSalt, EveryPlaneIsLegalAndCoherent) {
  const Topology topo = irregular(16, 4, 61);
  for (unsigned salt : {0u, 1u, 2u, 3u}) {
    const UpDownRouting ud(topo, RootSelection::kHighestDegree, salt);
    for (SwitchId from = 0; from < topo.numSwitches(); ++from) {
      for (SwitchId to = 0; to < topo.numSwitches(); ++to) {
        if (from == to) continue;
        const auto path = ud.tableRoute(from, to);
        ASSERT_FALSE(path.empty()) << "salt " << salt;
        EXPECT_TRUE(ud.legalPath(path)) << "salt " << salt;
      }
    }
  }
}

TEST(UpDownSalt, PlanesActuallyDiffer) {
  const Topology topo = irregular(16, 6, 62);
  const UpDownRouting p0(topo, RootSelection::kHighestDegree, 0);
  const UpDownRouting p1(topo, RootSelection::kHighestDegree, 1);
  int differs = 0;
  for (SwitchId from = 0; from < topo.numSwitches(); ++from) {
    for (SwitchId to = 0; to < topo.numSwitches(); ++to) {
      if (from == to) continue;
      if (p0.nextHopPort(from, to) != p1.nextHopPort(from, to)) ++differs;
    }
  }
  EXPECT_GT(differs, 0) << "salted plane should pick different ties";
}

TEST(UpDownSalt, UnionOfPlanesIsDeadlockFree) {
  // The union of all planes' channel dependencies must stay acyclic — all
  // planes route along legal up*-then-down* paths, so the global ordering
  // argument covers their union.
  const Topology topo = irregular(16, 4, 63);
  const int s = topo.numSwitches();
  std::vector<std::vector<int>> chanIndex(
      static_cast<std::size_t>(s), std::vector<int>(static_cast<std::size_t>(s), -1));
  int numChannels = 0;
  for (SwitchId a = 0; a < s; ++a) {
    for (const auto& [b, port] : topo.switchNeighbors(a)) {
      (void)port;
      chanIndex[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          numChannels++;
    }
  }
  std::vector<std::set<int>> deps(static_cast<std::size_t>(numChannels));
  for (unsigned salt : {0u, 1u, 2u, 3u}) {
    const UpDownRouting ud(topo, RootSelection::kHighestDegree, salt);
    for (SwitchId from = 0; from < s; ++from) {
      for (SwitchId to = 0; to < s; ++to) {
        if (from == to) continue;
        const auto path = ud.tableRoute(from, to);
        for (std::size_t i = 2; i < path.size(); ++i) {
          const int c1 = chanIndex[static_cast<std::size_t>(path[i - 2])]
                                  [static_cast<std::size_t>(path[i - 1])];
          const int c2 = chanIndex[static_cast<std::size_t>(path[i - 1])]
                                  [static_cast<std::size_t>(path[i])];
          deps[static_cast<std::size_t>(c1)].insert(c2);
        }
      }
    }
  }
  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> mark(static_cast<std::size_t>(numChannels), Mark::kWhite);
  std::function<bool(int)> hasCycle = [&](int u) {
    mark[static_cast<std::size_t>(u)] = Mark::kGray;
    for (int v : deps[static_cast<std::size_t>(u)]) {
      if (mark[static_cast<std::size_t>(v)] == Mark::kGray) return true;
      if (mark[static_cast<std::size_t>(v)] == Mark::kWhite && hasCycle(v)) {
        return true;
      }
    }
    mark[static_cast<std::size_t>(u)] = Mark::kBlack;
    return false;
  };
  for (int c = 0; c < numChannels; ++c) {
    if (mark[static_cast<std::size_t>(c)] == Mark::kWhite) {
      EXPECT_FALSE(hasCycle(c));
    }
  }
}

TEST(SourceMultipath, SubnetManagerProgramsDistinctPlanes) {
  const Topology topo = irregular(16, 6, 64);
  FabricParams fp;
  fp.numOptions = 1;
  fp.lmc = 2;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.sourceMultipathPlanes = 4;
  sm.configure(sp);

  const LidMapper& lids = fabric.lids();
  int plainDiffers = 0;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = lids.baseLid(n);
      for (int k = 0; k < 4; ++k) {
        const PortIndex p = fabric.lftEntry(sw, base + static_cast<Lid>(k));
        ASSERT_NE(p, kInvalidPort);
        if (topo.switchOfNode(n) == sw) {
          EXPECT_EQ(p, topo.portOfNode(n));
        } else if (k > 0 &&
                   p != fabric.lftEntry(sw, base)) {
          ++plainDiffers;
        }
      }
    }
  }
  EXPECT_GT(plainDiffers, 0) << "planes must differ somewhere";
}

TEST(SourceMultipath, RequiresPlainLinearTables) {
  const Topology topo = irregular(8, 4, 65);
  FabricParams fp;
  fp.numOptions = 2;  // adaptive banks: incompatible
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sp.sourceMultipathPlanes = 2;
  EXPECT_THROW(sm.configure(sp), std::invalid_argument);
}

TEST(SourceMultipath, EndToEndDeliversWithoutDeadlock) {
  SimParams p;
  p.numSwitches = 16;
  p.sourceMultipathPlanes = 4;
  p.fabric.numOptions = 1;
  p.fabric.lmc = 2;
  p.saturation = true;
  p.warmupPackets = 500;
  p.measurePackets = 4000;
  const SimResults r = runSimulation(p);
  EXPECT_TRUE(r.measurementComplete);
  EXPECT_FALSE(r.deadlockSuspected);
  EXPECT_GT(r.acceptedBytesPerNsPerSwitch, 0.0);
  // Multipath packets never see switch-adaptive options.
  EXPECT_DOUBLE_EQ(r.adaptiveForwardFraction, 0.0);
}

TEST(SourceMultipath, SinglePlaneEqualsDeterministicBaseline) {
  SimParams det;
  det.numSwitches = 8;
  det.adaptiveFraction = 0.0;
  det.fabric.numOptions = 1;
  det.fabric.lmc = 1;
  det.warmupPackets = 500;
  det.measurePackets = 3000;
  det.loadBytesPerNsPerNode = 0.04;

  SimParams mp = det;
  mp.sourceMultipathPlanes = 1;

  const SimResults a = runSimulation(det);
  const SimResults b = runSimulation(mp);
  // Same routes, same traffic stream: identical dynamics.
  EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs);
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(SourceMultipath, SwitchAdaptivityBeatsSourceMultipath) {
  // The motivating claim, spot-checked at 16 switches: switch-level FA
  // must outperform 4-plane source multipath by a clear margin.
  SimParams base;
  base.numSwitches = 16;
  base.warmupPackets = 500;
  base.measurePackets = 4000;
  const Topology topo = buildTopology(base);
  RampOptions ramp;
  ramp.growth = 1.5;

  SimParams mp = base;
  mp.sourceMultipathPlanes = 4;
  mp.fabric.numOptions = 1;
  mp.fabric.lmc = 2;
  const double tmp = measurePeakThroughput(topo, mp, ramp).peakAccepted;

  SimParams fa = base;
  fa.adaptiveFraction = 1.0;
  const double tfa = measurePeakThroughput(topo, fa, ramp).peakAccepted;

  EXPECT_GT(tfa, tmp * 1.1);
}

}  // namespace
}  // namespace ibadapt
