//
// Transient fault classes: per-link bit errors caught (or missed) by the
// receiver's VCRC/ICRC, and flow-control corruption that leaks credits
// until the periodic link-level credit resync repairs them.
//
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <tuple>

#include "api/simulation.hpp"
#include "fault/fault_audit.hpp"
#include "fault/fault_campaign.hpp"
#include "fault/transient.hpp"
#include "host/reliable_transport.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

TEST(TransientFaultSpec, ValidateRejectsBadKnobs) {
  TransientFaultSpec ok;
  ok.berPerBit = 1e-5;
  ok.creditLossRate = 0.1;
  EXPECT_NO_THROW(ok.validate());

  TransientFaultSpec s = ok;
  s.berPerBit = -1e-9;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.berPerBit = 1.0;  // must stay < 1
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.creditLossRate = 1.5;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.resyncPeriodNs = 0;  // required while creditLossRate > 0
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.resyncDetectPeriods = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.maxFlipsPerCorruption = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.maxFlipsPerCorruption = 65;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  // Disabled spec: the resync knobs are irrelevant.
  TransientFaultSpec off;
  off.resyncPeriodNs = 0;
  EXPECT_NO_THROW(off.validate());
}

TEST(TransientFaultSpec, ResyncOnlyArmedWhenCreditLossIsOn) {
  TransientFaultSpec s;
  s.berPerBit = 1e-4;  // corruption alone needs no credit resync
  TransientLinkFaults berOnly(s);
  EXPECT_EQ(berOnly.resyncPeriodNs(), 0);

  s.creditLossRate = 0.05;
  TransientLinkFaults both(s);
  EXPECT_EQ(both.resyncPeriodNs(), 100'000);
  EXPECT_EQ(both.resyncDetectNs(), 200'000);
}

TEST(TransientFaults, BitErrorsAreCaughtByCrcAndRecoveredEndToEnd) {
  // 3-switch line, deterministic cross-fabric flows under the reliable
  // transport. A high BER corrupts a visible fraction of the hops; every
  // CRC-caught drop must be retransmitted into exactly-once delivery.
  const Topology topo = testing::lineTopology(2);  // 6 nodes
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  FaultCampaignSpec spec;
  spec.transient.berPerBit = 1e-4;
  spec.transient.seed = 5;
  FaultCampaign campaign(fabric, sm, spec);

  testing::ScriptedTraffic inner;
  const NodeId n = topo.numNodes();
  const int perNode = 40;
  for (NodeId src = 0; src < n; ++src) {
    for (int i = 0; i < perNode; ++i) {
      inner.add(src, src * 97 + static_cast<SimTime>(i) * 4'000,
                (src + n / 2) % n, 32, /*adaptive=*/false);
    }
  }
  ReliableTransportSpec rts;
  rts.baseRtoNs = 30'000;
  rts.maxRtoNs = 480'000;
  ReliableTransport rt(inner, n, rts);
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();

  RunLimits limits;
  limits.endTime = static_cast<SimTime>(perNode) * 4'000 + 8'000'000;
  campaign.run(limits);

  const ResilienceStats& rs = campaign.stats();
  // ~0.045 corruption probability per 58-byte hop over 240 packets x 2-4
  // hops: corruption must have happened, and CRC must have caught drops.
  EXPECT_GT(rs.packetsCorrupted, 0u);
  EXPECT_GT(rs.crcDrops, 0u);
  EXPECT_EQ(rs.crcDrops + rs.silentCorruptions, rs.packetsCorrupted);
  EXPECT_EQ(fabric.counters().crcDropped, rs.crcDrops);
  // No credit loss configured: the credit books never leak.
  EXPECT_EQ(rs.creditUpdatesLost, 0u);
  EXPECT_EQ(rs.creditsLeaked, 0u);

  // End-to-end retransmission turned every drop into exactly-once delivery.
  EXPECT_GT(rt.retransmitsSent(), 0u);
  EXPECT_EQ(rt.uniqueSent(), static_cast<std::uint64_t>(n) * perNode);
  EXPECT_EQ(rt.uniqueDelivered(), rt.uniqueSent());
  EXPECT_EQ(rt.abandoned(), 0u);
  EXPECT_EQ(rt.outstanding(), 0u);
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
  for (const auto& d : obs.deliveries) {
    ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
  }
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);

  // Drops returned their credits: the drained fabric holds none hostage.
  const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(audit.ok()) << audit.detail;
}

TEST(TransientFaults, CreditLossLeaksAndResyncHeals) {
  // Flow-control corruption only: packets are never dropped, but lost
  // credit-update tokens strand credits until the periodic resync notices
  // the discrepancy (after resyncDetectPeriods windows) and repairs it.
  const Topology topo = testing::twoSwitchTopology(2);  // 4 nodes
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  FaultCampaignSpec spec;
  spec.transient.creditLossRate = 0.25;
  spec.transient.resyncPeriodNs = 50'000;
  spec.transient.resyncDetectPeriods = 2;
  spec.transient.seed = 9;
  FaultCampaign campaign(fabric, sm, spec);

  testing::ScriptedTraffic traffic;
  for (int i = 0; i < 30; ++i) {
    traffic.add(0, static_cast<SimTime>(i) * 2'000, 2, 32, /*adaptive=*/true);
    traffic.add(1, 500 + static_cast<SimTime>(i) * 2'000, 3, 32,
                /*adaptive=*/true);
  }
  testing::RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();

  RunLimits limits;
  limits.endTime = 2'000'000;  // >> last generation + detection window
  campaign.run(limits);

  const ResilienceStats& rs = campaign.stats();
  EXPECT_GT(rs.creditUpdatesLost, 0u);
  EXPECT_GT(rs.creditsLeaked, 0u);
  // Every leak detected and repaired before the horizon.
  EXPECT_EQ(rs.creditsResynced, rs.creditsLeaked);
  EXPECT_EQ(fabric.leakedCreditsOutstanding(), 0);
  // Corruption off: no packet was touched, all 60 arrive exactly once.
  EXPECT_EQ(rs.packetsCorrupted, 0u);
  EXPECT_EQ(obs.deliveries.size(), 60u);

  // Post-resync, the drained credit books are full again everywhere.
  const AuditReport audit = auditFabric(fabric, /*expectQuiescent=*/true);
  EXPECT_TRUE(audit.ok()) << audit.detail;
  for (VlIndex vl = 0; vl < fabric.params().numVls; ++vl) {
    EXPECT_EQ(fabric.outputCredits(0, 2, vl), fabric.outputCreditsMax(0, 2, vl));
    EXPECT_EQ(fabric.outputCredits(1, 2, vl), fabric.outputCreditsMax(1, 2, vl));
  }
}

TEST(TransientFaults, ApiRunIsDeterministicInTheSeeds) {
  // Same knobs, same seeds -> bit-identical results, including every
  // transient-fault and watchdog counter.
  auto mk = [] {
    SimParams p;
    p.numSwitches = 8;
    p.loadBytesPerNsPerNode = 0.02;
    p.warmupPackets = 100;
    p.measurePackets = 800;
    p.maxSimTimeNs = 5'000'000;
    p.berPerBit = 2e-5;
    p.creditLossRate = 0.05;
    p.creditResyncPeriodNs = 50'000;
    p.reliableTransport = true;
    return runSimulation(p);
  };
  const SimResults a = mk();
  const SimResults b = mk();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.kernelEvents, b.kernelEvents);
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs);
  EXPECT_EQ(a.resilience.packetsCorrupted, b.resilience.packetsCorrupted);
  EXPECT_EQ(a.resilience.crcDrops, b.resilience.crcDrops);
  EXPECT_EQ(a.resilience.creditUpdatesLost, b.resilience.creditUpdatesLost);
  EXPECT_EQ(a.resilience.creditsLeaked, b.resilience.creditsLeaked);
  EXPECT_EQ(a.resilience.creditsResynced, b.resilience.creditsResynced);
  EXPECT_EQ(a.resilience.retransmitsSent, b.resilience.retransmitsSent);
  EXPECT_EQ(a.invariants.checksRun, b.invariants.checksRun);
  EXPECT_EQ(a.invariants.violations(), b.invariants.violations());
  EXPECT_GT(a.resilience.packetsCorrupted, 0u);
  EXPECT_GT(a.resilience.creditUpdatesLost, 0u);
}

}  // namespace
}  // namespace ibadapt
