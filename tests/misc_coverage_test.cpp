//
// Edge cases and smaller components: packet pool recycling, topology
// mutation paths, up*/down* path-length properties, census on analytic
// topologies, and API validation paths.
//
#include <gtest/gtest.h>

#include "analysis/option_census.hpp"
#include "api/simulation.hpp"
#include "fabric/fabric.hpp"
#include "fabric/packet.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

TEST(PacketPool, RecyclesSlots) {
  PacketPool pool;
  const PacketRef a = pool.alloc();
  const PacketRef b = pool.alloc();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.liveCount(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.liveCount(), 1u);
  const PacketRef c = pool.alloc();
  EXPECT_EQ(c, a);  // LIFO reuse
  EXPECT_EQ(pool.capacity(), 2u);
}

TEST(PacketPool, ReusedSlotIsCleared) {
  PacketPool pool;
  const PacketRef a = pool.alloc();
  pool.get(a).hops = 99;
  pool.get(a).msgId = 7;
  pool.release(a);
  const PacketRef b = pool.alloc();
  EXPECT_EQ(pool.get(b).hops, 0);
  EXPECT_EQ(pool.get(b).msgId, 0u);
}

TEST(Topology, RemoveLinkClearsBothEnds) {
  Topology topo(3, 6, 2);
  topo.addLink(0, 1);
  topo.addLink(1, 2);
  const auto nbs = topo.switchNeighbors(0);
  ASSERT_EQ(nbs.size(), 1u);
  topo.removeLink(0, nbs[0].second);
  EXPECT_EQ(topo.numLinks(), 1);
  EXPECT_FALSE(topo.linked(0, 1));
  EXPECT_TRUE(topo.linked(1, 2));
  EXPECT_EQ(topo.interSwitchDegree(0), 0);
  // Node ports cannot be removed.
  EXPECT_THROW(topo.removeLink(0, 0), std::invalid_argument);
  // The freed port is reusable.
  EXPECT_TRUE(topo.addLink(0, 2));
}

TEST(Topology, DescribeMentionsEveryNeighbor) {
  const Topology topo = makeRing(4, 2);
  const std::string d = topo.describe();
  EXPECT_NE(d.find("4 switches"), std::string::npos);
  EXPECT_NE(d.find("sw0"), std::string::npos);
  EXPECT_NE(d.find("sw3"), std::string::npos);
}

TEST(UpDown, TableRoutesNeverShorterThanShortestPath) {
  Rng rng(401);
  IrregularSpec spec;
  spec.numSwitches = 32;
  spec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);
  const UpDownRouting ud(topo);
  const auto dist = allPairsDistances(topo);
  double stretchSum = 0;
  int pairs = 0;
  for (SwitchId a = 0; a < 32; ++a) {
    for (SwitchId b = 0; b < 32; ++b) {
      if (a == b) continue;
      const int hops = ud.tableRouteHops(a, b);
      const int shortest = dist[static_cast<std::size_t>(a)]
                               [static_cast<std::size_t>(b)];
      EXPECT_GE(hops, shortest);
      stretchSum += static_cast<double>(hops) / shortest;
      ++pairs;
    }
  }
  // The paper's diagnosis: up*/down* takes non-minimal paths. The average
  // stretch must show it (strictly > 1) but stay structurally sane.
  const double stretch = stretchSum / pairs;
  EXPECT_GT(stretch, 1.0);
  EXPECT_LT(stretch, 2.5);
}

TEST(OptionCensus, HypercubeMatchesAnalyticCounts) {
  // From any switch, a destination k bits away has exactly k minimal ports.
  // With MR=4 the distinct-option count is min(4, k + (escape not among
  // minimal ? 1 : 0)) — but on a hypercube the up*/down* escape hop is
  // always one of the minimal ports? Not necessarily; just verify the
  // lower/upper bounds analytically derivable: count >= min(MR, k).
  const Topology topo = makeHypercube(4, 1);
  const UpDownRouting ud(topo);
  const MinimalAdaptiveRouting mr(topo);
  const RouteSet routes(topo, ud, mr);
  for (SwitchId dest = 1; dest < 16; ++dest) {
    const int k = __builtin_popcount(static_cast<unsigned>(dest));
    const auto capped = routes.cappedAdaptivePorts(0, topo.nodeAt(dest, 0), 4);
    EXPECT_EQ(static_cast<int>(capped.size()), std::min(3, k));
  }
}

TEST(Api, RejectsInvalidFabricParams) {
  SimParams p;
  p.fabric.numOptions = 3;  // not a power of two
  EXPECT_THROW(runSimulation(p), std::invalid_argument);
  SimParams q;
  q.fabric.numOptions = 4;
  q.fabric.lmc = 1;  // 2^1 < 4
  EXPECT_THROW(runSimulation(q), std::invalid_argument);
  SimParams r;
  r.fabric.escapeReserveCredits = 99;
  EXPECT_THROW(runSimulation(r), std::invalid_argument);
}

TEST(FabricParams, ZeroEscapeReserveNeedsExplicitUnsafeOptIn) {
  // Regression: escapeReserveCredits == 0 deletes the escape queue and with
  // it the §4.4 deadlock-freedom precondition; it used to validate quietly.
  FabricParams fp;
  fp.escapeReserveCredits = 0;
  EXPECT_THROW(fp.validate(), std::invalid_argument);

  // The explicit opt-in (e.g. for watchdog deadlock experiments) passes.
  fp.allowUnsafeSplit = true;
  EXPECT_NO_THROW(fp.validate());

  // The flag gates only the zero-reserve case; other bounds still hold.
  fp.escapeReserveCredits = fp.bufferCredits + 1;
  EXPECT_THROW(fp.validate(), std::invalid_argument);

  // A normal split ignores the flag entirely.
  FabricParams ok;
  ok.allowUnsafeSplit = true;
  EXPECT_NO_THROW(ok.validate());
}

TEST(Api, OfferedLoadReportedInPaperUnits) {
  SimParams p;
  p.numSwitches = 8;
  p.loadBytesPerNsPerNode = 0.05;
  p.warmupPackets = 100;
  p.measurePackets = 500;
  const SimResults r = runSimulation(p);
  EXPECT_DOUBLE_EQ(r.offeredBytesPerNsPerSwitch, 0.2);  // 4 nodes x 0.05
}

TEST(Fabric, StartRequiresTrafficAndRunRequiresStart) {
  const Topology topo = makeRing(4, 2);
  Fabric fabric(topo, FabricParams{});
  EXPECT_THROW(fabric.start(), std::logic_error);
  RunLimits limits;
  limits.endTime = 1000;
  EXPECT_THROW(fabric.run(limits), std::logic_error);
}

TEST(Fabric, AdaptiveSwitchMaskSizeValidated) {
  const Topology topo = makeRing(4, 2);
  FabricParams fp;
  fp.adaptiveSwitchMask = {true, false};  // 2 entries for 4 switches
  EXPECT_THROW(Fabric(topo, fp), std::invalid_argument);
}

}  // namespace
}  // namespace ibadapt
