//
// LFT output pinning: the routing setup path was restructured for scale
// (shared adjacency snapshots, hoisted BFS scratch, lazy route sets), and
// none of it may change a single table byte. These FNV-1a digests were
// captured from the pre-refactor per-destination implementation on fixed
// irregular topologies spanning every root-selection mode, multipath planes,
// APM path sets, and LMC widths; any routing change that alters an LFT entry
// or the chosen root flips a digest.
//
#include <gtest/gtest.h>

#include <cstdint>

#include "routing/lft_image.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hashImage(const LftImage& img) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& row : img.entries) h = fnv1a(h, row.data(), row.size());
  const auto root = static_cast<std::uint64_t>(img.root);
  h = fnv1a(h, reinterpret_cast<const std::uint8_t*>(&root), sizeof(root));
  return h;
}

struct PinnedCase {
  std::uint64_t topoSeed;
  int numSwitches;
  int links;
  RootSelection rootSel;
  int planes;  // sourceMultipathPlanes
  int sets;    // apmPathSets
  int numOptions;
  int lmc;
  std::uint64_t hash;
};

class LftImagePinning : public ::testing::TestWithParam<PinnedCase> {};

TEST_P(LftImagePinning, DigestMatchesPreRefactorCapture) {
  const PinnedCase c = GetParam();
  Rng rng(c.topoSeed);
  IrregularSpec ispec;
  ispec.numSwitches = c.numSwitches;
  ispec.linksPerSwitch = c.links;
  const Topology topo = makeIrregular(ispec, rng);

  LftPlanSpec spec;
  spec.lmc = c.lmc;
  spec.numOptions = c.numOptions;
  spec.rootSelection = c.rootSel;
  spec.sourceMultipathPlanes = c.planes;
  spec.apmPathSets = c.sets;
  const LftImage img = buildLftImage(topo, spec);
  EXPECT_EQ(hashImage(img), c.hash)
      << "LFT bytes changed for seed " << c.topoSeed << " ("
      << c.numSwitches << " switches)";
}

INSTANTIATE_TEST_SUITE_P(
    PreRefactorDigests, LftImagePinning,
    ::testing::Values(
        PinnedCase{1ull, 8, 4, RootSelection::kHighestDegree, 0, 1, 2, 1,
                   0x42d7330e5a7ede08ull},
        PinnedCase{2ull, 16, 4, RootSelection::kMinEccentricity, 0, 1, 4, 2,
                   0x2918198b15627c79ull},
        PinnedCase{3ull, 16, 6, RootSelection::kHighestDegree, 0, 2, 2, 2,
                   0x81ec27e78a257647ull},
        PinnedCase{4ull, 12, 4, RootSelection::kLowestId, 4, 1, 1, 2,
                   0x850cdee201111af3ull},
        PinnedCase{5ull, 32, 6, RootSelection::kHighestDegree, 0, 1, 2, 1,
                   0xa774451c528a07c6ull}));

// The adjacency-sharing constructor is the scale path's workhorse: it must
// agree with the self-building one on every table and the selected root.
TEST(LftImagePinning, SharedAdjacencyCtorMatchesSelfBuilt) {
  Rng rng(6);
  IrregularSpec ispec;
  ispec.numSwitches = 24;
  ispec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(ispec, rng);
  const SwitchAdjacency adj(topo);

  for (const RootSelection sel :
       {RootSelection::kLowestId, RootSelection::kHighestDegree,
        RootSelection::kMinEccentricity}) {
    EXPECT_EQ(selectRoot(topo, sel), selectRoot(adj, sel));
    const UpDownRouting self(topo, sel, /*tieBreakSalt=*/3);
    const UpDownRouting shared(topo, adj, sel, /*tieBreakSalt=*/3);
    EXPECT_EQ(self.root(), shared.root());
    for (SwitchId at = 0; at < topo.numSwitches(); ++at) {
      EXPECT_EQ(self.level(at), shared.level(at));
      for (SwitchId dest = 0; dest < topo.numSwitches(); ++dest) {
        if (at == dest) continue;
        ASSERT_EQ(self.nextHopPort(at, dest), shared.nextHopPort(at, dest))
            << "sel=" << static_cast<int>(sel) << " at=" << at
            << " dest=" << dest;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel planning: worker-count independence, pinned at scale
// ---------------------------------------------------------------------------

// The planner chunks per-destination (up*/down*) and per-source (minimal
// BFS) work over a thread pool; every write lands in a disjoint slice and
// no RNG is involved, so any thread count must reproduce the serial image
// byte for byte. Hash the whole image (plus root) rather than spot-check:
// a single reordered candidate pick anywhere flips the digest.
TEST(LftImagePinning, ThreadedPlanningMatchesSerialAcrossSizes) {
  for (const int numSwitches : {64, 256, 1024}) {
    Rng rng(11);
    IrregularSpec ispec;
    ispec.numSwitches = numSwitches;
    ispec.linksPerSwitch = 6;
    const Topology topo = makeIrregular(ispec, rng);

    LftPlanSpec spec;
    spec.lmc = 1;
    spec.numOptions = 2;
    spec.rootSelection = RootSelection::kHighestDegree;
    const std::uint64_t serial = [&] {
      LftPlanSpec s = spec;
      s.threads = 1;
      return hashImage(buildLftImage(topo, s));
    }();
    for (const int threads : {2, 4, 0 /* hardware_concurrency */}) {
      LftPlanSpec s = spec;
      s.threads = threads;
      EXPECT_EQ(hashImage(buildLftImage(topo, s)), serial)
          << numSwitches << " switches, threads=" << threads;
    }
    // Repeat determinism: the same threaded plan twice in a row (fresh
    // pools, different interleavings) must not wobble.
    LftPlanSpec s4 = spec;
    s4.threads = 4;
    EXPECT_EQ(hashImage(buildLftImage(topo, s4)), serial)
        << numSwitches << " switches, threads=4 repeat";
  }
}

// Multipath planes build several salted up*/down* instances back to back on
// the same pool; each plane's salt-dependent tie-breaks must survive
// threading too.
TEST(LftImagePinning, ThreadedMultipathAndApmMatchSerial) {
  Rng rng(12);
  IrregularSpec ispec;
  ispec.numSwitches = 128;
  ispec.linksPerSwitch = 6;
  const Topology topo = makeIrregular(ispec, rng);

  for (const int planes : {0, 4}) {
    LftPlanSpec spec;
    spec.lmc = 3;
    spec.numOptions = planes ? 1 : 2;
    spec.rootSelection = RootSelection::kMinEccentricity;
    spec.sourceMultipathPlanes = planes;
    spec.apmPathSets = planes ? 1 : 2;
    LftPlanSpec threaded = spec;
    threaded.threads = 4;
    EXPECT_EQ(hashImage(buildLftImage(topo, spec)),
              hashImage(buildLftImage(topo, threaded)))
        << "planes=" << planes;
  }
}

// The streaming planner (LftPlanner::fillRow, the SM configure() path) must
// produce exactly the rows the materialized image holds.
TEST(LftImagePinning, StreamingFillRowMatchesMaterializedImage) {
  Rng rng(13);
  IrregularSpec ispec;
  ispec.numSwitches = 96;
  ispec.linksPerSwitch = 5;
  const Topology topo = makeIrregular(ispec, rng);

  LftPlanSpec spec;
  spec.lmc = 1;
  spec.numOptions = 2;
  spec.rootSelection = RootSelection::kHighestDegree;
  spec.threads = 4;
  const LftImage img = buildLftImage(topo, spec);

  const LftPlanner planner(topo, spec);
  EXPECT_EQ(planner.root(), img.root);
  std::vector<std::uint8_t> row;
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    planner.fillRow(sw, row);
    EXPECT_EQ(row, img.entries[static_cast<std::size_t>(sw)]) << "sw=" << sw;
  }
}

}  // namespace
}  // namespace ibadapt
