//
// The paper's core mechanism, part 1: LMC virtual addressing and the
// interleaved forwarding table (Fig. 1).
//
#include <gtest/gtest.h>

#include "core/forwarding_table.hpp"
#include "core/lid_map.hpp"

namespace ibadapt {
namespace {

// ---------------------------------------------------------------------------
// LidMapper
// ---------------------------------------------------------------------------

TEST(LidMapper, BlocksAreAlignedAndDisjoint) {
  for (int lmc = 0; lmc <= 3; ++lmc) {
    const LidMapper m(lmc);
    const int per = 1 << lmc;
    EXPECT_EQ(m.lidsPerNode(), per);
    Lid prevEnd = 0;
    for (NodeId n = 0; n < 10; ++n) {
      const Lid base = m.baseLid(n);
      EXPECT_EQ(base % per, 0u) << "block not aligned";
      EXPECT_GE(base, prevEnd);  // disjoint, ascending
      EXPECT_NE(base, 0u);       // LID 0 reserved
      prevEnd = base + static_cast<Lid>(per);
      for (int k = 0; k < per; ++k) {
        EXPECT_EQ(m.nodeOfLid(base + static_cast<Lid>(k)), n);
        EXPECT_EQ(m.alignedBase(base + static_cast<Lid>(k)), base);
      }
    }
  }
}

TEST(LidMapper, AdaptiveBitIsLsb) {
  const LidMapper m(1);
  for (NodeId n = 0; n < 8; ++n) {
    EXPECT_FALSE(LidMapper::adaptiveBit(m.deterministicLid(n)));
    EXPECT_TRUE(LidMapper::adaptiveBit(m.adaptiveLid(n)));
    EXPECT_EQ(m.adaptiveLid(n), m.deterministicLid(n) + 1);
  }
}

TEST(LidMapper, AdaptiveLidNeedsLmc) {
  const LidMapper m(0);
  EXPECT_THROW(m.adaptiveLid(0), std::logic_error);
}

TEST(LidMapper, RejectsBadLmc) {
  EXPECT_THROW(LidMapper(-1), std::invalid_argument);
  EXPECT_THROW(LidMapper(8), std::invalid_argument);
}

TEST(LidMapper, LidLimitCoversAllBlocks) {
  const LidMapper m(2);
  const Lid limit = m.lidLimit(10);
  for (NodeId n = 0; n < 10; ++n) {
    EXPECT_LT(m.lidForOption(n, 3), limit);
  }
}

// ---------------------------------------------------------------------------
// AdaptiveForwardingTable
// ---------------------------------------------------------------------------

TEST(ForwardingTable, LinearInterfaceRoundTrips) {
  AdaptiveForwardingTable t(2, 64);
  for (Lid lid = 1; lid < 64; ++lid) {
    t.setEntry(lid, static_cast<PortIndex>(lid % 7));
  }
  for (Lid lid = 1; lid < 64; ++lid) {
    EXPECT_EQ(t.entry(lid), static_cast<PortIndex>(lid % 7));
  }
}

TEST(ForwardingTable, UnprogrammedReadsInvalid) {
  AdaptiveForwardingTable t(2, 16);
  EXPECT_EQ(t.entry(4), kInvalidPort);
  EXPECT_FALSE(t.lookup(4).valid());
}

TEST(ForwardingTable, InterleavedLookupReturnsAllBanks) {
  // Destination block at LIDs 8..11 with 4 banks: escape at 8,
  // adaptive options at 9, 10, 11.
  AdaptiveForwardingTable t(4, 32);
  t.setEntry(8, 5);
  t.setEntry(9, 1);
  t.setEntry(10, 2);
  t.setEntry(11, 3);
  for (Lid dlid = 8; dlid < 12; ++dlid) {
    const RouteOptions opts = t.lookup(dlid);
    EXPECT_EQ(opts.escapePort, 5);
    ASSERT_EQ(opts.numAdaptive, 3);
    EXPECT_EQ(opts.adaptivePorts[0], 1);
    EXPECT_EQ(opts.adaptivePorts[1], 2);
    EXPECT_EQ(opts.adaptivePorts[2], 3);
  }
}

TEST(ForwardingTable, AdaptiveBitDecodedFromDlid) {
  AdaptiveForwardingTable t(2, 16);
  t.setEntry(4, 0);
  t.setEntry(5, 1);
  EXPECT_FALSE(t.lookup(4).adaptiveRequested);  // address d
  EXPECT_TRUE(t.lookup(5).adaptiveRequested);   // address d+1
}

TEST(ForwardingTable, DuplicateAdaptiveEntriesDeduplicated) {
  AdaptiveForwardingTable t(4, 16);
  t.setEntry(4, 7);
  t.setEntry(5, 2);
  t.setEntry(6, 2);  // duplicate of bank 1
  t.setEntry(7, 3);
  const RouteOptions opts = t.lookup(5);
  EXPECT_EQ(opts.numAdaptive, 2);
  EXPECT_EQ(opts.adaptivePorts[0], 2);
  EXPECT_EQ(opts.adaptivePorts[1], 3);
}

TEST(ForwardingTable, PartiallyProgrammedBanksSkipped) {
  AdaptiveForwardingTable t(4, 16);
  t.setEntry(4, 7);
  t.setEntry(6, 1);  // bank 2 only
  const RouteOptions opts = t.lookup(5);
  EXPECT_EQ(opts.escapePort, 7);
  EXPECT_EQ(opts.numAdaptive, 1);
  EXPECT_EQ(opts.adaptivePorts[0], 1);
}

TEST(ForwardingTable, SingleBankIsPlainLinearTable) {
  AdaptiveForwardingTable t(1, 16);
  t.setEntry(4, 3);
  t.setEntry(5, 3);
  const RouteOptions d = t.lookup(4);
  const RouteOptions a = t.lookup(5);
  EXPECT_EQ(d.escapePort, 3);
  EXPECT_EQ(d.numAdaptive, 0);
  // Address d+1 maps to its own row in a 1-bank table; the deterministic
  // switch still yields exactly one option.
  EXPECT_EQ(a.escapePort, 3);
  EXPECT_EQ(a.numAdaptive, 0);
  EXPECT_TRUE(a.adaptiveRequested);
}

TEST(ForwardingTable, RejectsBadConstruction) {
  EXPECT_THROW(AdaptiveForwardingTable(3, 16), std::invalid_argument);
  EXPECT_THROW(AdaptiveForwardingTable(16, 16), std::invalid_argument);
  EXPECT_THROW(AdaptiveForwardingTable(0, 16), std::invalid_argument);
}

TEST(ForwardingTable, RangeAndPortValidation) {
  AdaptiveForwardingTable t(2, 16);
  EXPECT_THROW(t.setEntry(16, 0), std::out_of_range);
  EXPECT_THROW(t.entry(16), std::out_of_range);
  EXPECT_THROW(t.lookup(16), std::out_of_range);
  EXPECT_THROW(t.setEntry(4, -1), std::invalid_argument);
  EXPECT_THROW(t.setEntry(4, 255), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Block writes (the SM's whole-row programming path at scale)
// ---------------------------------------------------------------------------

TEST(ForwardingTable, SetBlockMatchesPerEntryWritesOnFreshTable) {
  AdaptiveForwardingTable byBlock(2, 128);
  AdaptiveForwardingTable byEntry(2, 128);
  std::vector<std::uint8_t> row(128, 0xff);
  for (Lid lid = 1; lid < 128; ++lid) {
    if (lid % 5 == 0) continue;  // leave holes unprogrammed
    row[lid] = static_cast<std::uint8_t>(lid % 9);
  }
  byBlock.setBlock(0, row.data(), row.size());
  for (Lid lid = 0; lid < 128; ++lid) {
    if (row[lid] != 0xff) byEntry.setEntry(lid, row[lid]);
  }
  for (Lid lid = 0; lid < 128; ++lid) {
    EXPECT_EQ(byBlock.entry(lid), byEntry.entry(lid)) << "lid " << lid;
    EXPECT_EQ(byBlock.lookup(lid).escapePort, byEntry.lookup(lid).escapePort);
  }
}

TEST(ForwardingTable, SetBlockSupportsPartialRangesAndClears) {
  AdaptiveForwardingTable t(2, 64);
  for (Lid lid = 0; lid < 64; ++lid) {
    t.setEntry(lid, 1);
  }
  // Mid-table block: programs 8..11, and its 0xff byte clears entry 10.
  const std::uint8_t patch[] = {2, 3, 0xff, 4};
  t.setBlock(8, patch, sizeof(patch));
  EXPECT_EQ(t.entry(7), 1);
  EXPECT_EQ(t.entry(8), 2);
  EXPECT_EQ(t.entry(9), 3);
  EXPECT_EQ(t.entry(10), kInvalidPort);
  EXPECT_EQ(t.entry(11), 4);
  EXPECT_EQ(t.entry(12), 1);
}

TEST(ForwardingTable, SetBlockValidatesRange) {
  AdaptiveForwardingTable t(2, 16);
  const std::uint8_t bytes[8] = {};
  t.setBlock(8, bytes, 8);  // exactly to the end: fine
  EXPECT_NO_THROW(t.setBlock(0, bytes, 0));
  EXPECT_THROW(t.setBlock(9, bytes, 8), std::out_of_range);
  EXPECT_THROW(t.setBlock(16, bytes, 1), std::out_of_range);
  EXPECT_THROW(t.setBlock(20, bytes, 1), std::out_of_range);
}

class BankSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(BankSweepTest, LinearAndInterleavedViewsAgree) {
  const int banks = GetParam();
  const LidMapper m(3);  // 8 addresses per node >= any bank count here
  AdaptiveForwardingTable t(banks, m.lidLimit(6));
  // Program node blocks with distinct per-address ports.
  for (NodeId n = 0; n < 6; ++n) {
    for (int k = 0; k < banks; ++k) {
      t.setEntry(m.lidForOption(n, k), static_cast<PortIndex>((n + k) % 5));
    }
  }
  for (NodeId n = 0; n < 6; ++n) {
    const RouteOptions opts = t.lookup(m.lidForOption(n, banks > 1 ? 1 : 0));
    EXPECT_EQ(opts.escapePort, t.entry(m.baseLid(n)));
    // Every adaptive port must equal some linear entry of the block.
    for (int i = 0; i < opts.numAdaptive; ++i) {
      bool found = false;
      for (int k = 1; k < banks; ++k) {
        if (t.entry(m.lidForOption(n, k)) == opts.adaptivePorts[i]) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Banks, BankSweepTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ibadapt
