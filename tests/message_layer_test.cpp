//
// Host message layer: segmentation, reassembly, and the destination reorder
// buffer that lets adaptive routing carry application-ordered traffic
// (paper §1).
//
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "host/message_layer.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

TEST(MessageTraffic, SegmentationArithmetic) {
  MessageTrafficSpec spec;
  spec.numNodes = 8;
  spec.messageBytes = 1000;
  spec.mtuBytes = 256;
  MessageTraffic t(spec);
  EXPECT_EQ(t.segmentsPerMessage(), 4);  // 256+256+256+232

  Rng rng(1);
  int bytes = 0;
  std::uint16_t idx = 0;
  for (int i = 0; i < 4; ++i) {
    const auto s = t.makePacket(0, rng);
    EXPECT_EQ(s.msgId, 1u);
    EXPECT_EQ(s.segCount, 4);
    EXPECT_EQ(s.segIndex, idx++);
    bytes += s.sizeBytes;
  }
  EXPECT_EQ(bytes, 1000);
  // Next packet starts a new message; ids count per flow, so it is 2 when
  // the destination repeats and 1 otherwise.
  const auto next = t.makePacket(0, rng);
  EXPECT_GE(next.msgId, 1u);
  EXPECT_LE(next.msgId, 2u);
  EXPECT_EQ(next.segIndex, 0);
}

TEST(MessageTraffic, SegmentsOfferedBackToBack) {
  MessageTrafficSpec spec;
  spec.numNodes = 8;
  spec.messageBytes = 512;
  MessageTraffic t(spec);
  Rng rng(1);
  (void)t.makePacket(0, rng);  // first segment out
  EXPECT_EQ(t.nextGenTime(0, 5000, rng), 5000);  // second immediately
  (void)t.makePacket(0, rng);
  EXPECT_GT(t.nextGenTime(0, 5000, rng), 5000);  // then an exponential gap
}

TEST(MessageTraffic, Validation) {
  MessageTrafficSpec bad;
  bad.numNodes = 1;
  EXPECT_THROW(MessageTraffic{bad}, std::invalid_argument);
  MessageTrafficSpec bad2;
  bad2.numNodes = 4;
  bad2.messageBytes = 0;
  EXPECT_THROW(MessageTraffic{bad2}, std::invalid_argument);
}

TEST(MessageReassembler, CompletesAndOrders) {
  MessageReassembler r(8);
  auto seg = [](NodeId src, NodeId dst, std::uint32_t msg, std::uint16_t idx,
                std::uint16_t cnt) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.msgId = msg;
    p.segIndex = idx;
    p.segCount = cnt;
    p.sizeBytes = 256;
    return p;
  };
  // Message 1 and 2 of flow 0->1, completed out of order.
  r.onGenerated(seg(0, 1, 1, 0, 2), 0);
  r.onGenerated(seg(0, 1, 2, 0, 2), 10);
  r.onDelivered(seg(0, 1, 2, 0, 2), 100);
  r.onDelivered(seg(0, 1, 2, 1, 2), 120);  // message 2 complete first
  EXPECT_EQ(r.messagesCompleted(), 1u);
  EXPECT_EQ(r.messagesDeliveredInOrder(), 0u);  // held: waiting for msg 1
  EXPECT_EQ(r.maxReorderHeld(), 1u);
  r.onDelivered(seg(0, 1, 1, 1, 2), 150);
  r.onDelivered(seg(0, 1, 1, 0, 2), 160);  // message 1 complete
  EXPECT_EQ(r.messagesCompleted(), 2u);
  EXPECT_EQ(r.messagesDeliveredInOrder(), 2u);  // both released in order
  // Msg 1: released at completion (160 - 0). Msg 2: held until msg 1
  // filled in, so its app latency is 160 - 10 = 150.
  EXPECT_DOUBLE_EQ(r.appLatency().max(), 160.0);
  EXPECT_DOUBLE_EQ(r.appLatency().mean(), (160.0 + 150.0) / 2);
  EXPECT_DOUBLE_EQ(r.completionLatency().max(), 160.0);  // msg1: 160-0
  EXPECT_EQ(r.staleSegments(), 0u);
}

TEST(MessageReassembler, FlowsAreIndependent) {
  MessageReassembler r(8);
  Packet a;
  a.src = 0;
  a.dst = 1;
  a.msgId = 1;
  a.segIndex = 0;
  a.segCount = 1;
  Packet b = a;
  b.dst = 2;
  r.onGenerated(a, 0);
  r.onGenerated(b, 0);
  r.onDelivered(b, 50);  // other flow: releases immediately
  EXPECT_EQ(r.messagesDeliveredInOrder(), 1u);
  r.onDelivered(a, 80);
  EXPECT_EQ(r.messagesDeliveredInOrder(), 2u);
}

TEST(MessageReassembler, DuplicateSegmentsCounted) {
  MessageReassembler r(4);
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.msgId = 1;
  p.segIndex = 0;
  p.segCount = 2;
  r.onGenerated(p, 0);
  r.onDelivered(p, 10);
  r.onDelivered(p, 20);  // duplicate
  EXPECT_EQ(r.staleSegments(), 1u);
}

struct EndToEnd {
  explicit EndToEnd(bool adaptive, double meanGapNs = 6'000.0) {
    Rng rng(91);
    IrregularSpec tspec;
    tspec.numSwitches = 16;
    tspec.linksPerSwitch = 4;
    topo = makeIrregular(tspec, rng);
    MessageTrafficSpec mspec;
    mspec.numNodes = topo.numNodes();
    mspec.messageBytes = 1024;
    mspec.adaptive = adaptive;
    mspec.meanMessageGapNs = meanGapNs;
    traffic = std::make_unique<MessageTraffic>(mspec);
    reassembler = std::make_unique<MessageReassembler>(topo.numNodes());
    fabric = std::make_unique<Fabric>(topo, FabricParams{});
    SubnetManager sm(*fabric);
    sm.configure();
    fabric->attachTraffic(traffic.get(), 17);
    fabric->attachObserver(reassembler.get());
    fabric->start();
    RunLimits gen;
    gen.endTime = 500'000;
    fabric->run(gen);
    RunLimits drain;
    drain.endTime = 200'000'000;
    drain.generationEndTime = 0;
    fabric->run(drain);
  }

  Topology topo{1, 1, 0};
  std::unique_ptr<MessageTraffic> traffic;
  std::unique_ptr<MessageReassembler> reassembler;
  std::unique_ptr<Fabric> fabric;
};

TEST(MessageLayerEndToEnd, AllMessagesCompleteAndRelease) {
  EndToEnd e(/*adaptive=*/true);
  EXPECT_FALSE(e.fabric->deadlockSuspected());
  EXPECT_GT(e.reassembler->messagesCompleted(), 100u);
  // After full drain, nothing stays held.
  EXPECT_EQ(e.reassembler->messagesCompleted(),
            e.reassembler->messagesDeliveredInOrder());
  EXPECT_EQ(e.reassembler->staleSegments(), 0u);
}

TEST(MessageLayerEndToEnd, DeterministicNeverHoldsMessages) {
  // Deterministic segments arrive in order; messages of a flow complete in
  // msgId order, so the reorder buffer holds at most the one message whose
  // segments are mid-flight... which releases immediately on completion.
  EndToEnd e(/*adaptive=*/false);
  EXPECT_EQ(e.reassembler->maxReorderHeld(), 1u);
  EXPECT_EQ(e.reassembler->messagesCompleted(),
            e.reassembler->messagesDeliveredInOrder());
}

TEST(MessageLayerEndToEnd, AdaptiveMayReorderButAppOrderHolds) {
  EndToEnd e(/*adaptive=*/true, /*meanGapNs=*/3'000.0);
  // The app-facing latency can only exceed completion latency.
  EXPECT_GE(e.reassembler->appLatency().mean(),
            e.reassembler->completionLatency().mean());
  EXPECT_EQ(e.reassembler->messagesCompleted(),
            e.reassembler->messagesDeliveredInOrder());
}

}  // namespace
}  // namespace ibadapt
