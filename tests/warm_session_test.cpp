#include <gtest/gtest.h>

#include <cstdint>

#include "api/simulation.hpp"

namespace ibadapt {
namespace {

// SimSession's contract: a warm run (Fabric::reset + image reinstall) is
// bit-identical to a run on a freshly constructed fabric at the same
// parameter point. Every numeric field compared with ==, never NEAR — the
// only fields excluded are setupWallMs / planWallMs / runWallMs, which are
// wall-clock measurement metadata and explicitly non-deterministic.
void expectBitIdentical(const SimResults& a, const SimResults& b,
                        const char* what) {
  EXPECT_EQ(a.avgLatencyNs, b.avgLatencyNs) << what;
  EXPECT_EQ(a.minLatencyNs, b.minLatencyNs) << what;
  EXPECT_EQ(a.maxLatencyNs, b.maxLatencyNs) << what;
  EXPECT_EQ(a.stddevLatencyNs, b.stddevLatencyNs) << what;
  EXPECT_EQ(a.p50LatencyNs, b.p50LatencyNs) << what;
  EXPECT_EQ(a.p95LatencyNs, b.p95LatencyNs) << what;
  EXPECT_EQ(a.p99LatencyNs, b.p99LatencyNs) << what;
  EXPECT_EQ(a.p999LatencyNs, b.p999LatencyNs) << what;
  EXPECT_EQ(a.avgLatencyAdaptiveNs, b.avgLatencyAdaptiveNs) << what;
  EXPECT_EQ(a.avgLatencyDeterministicNs, b.avgLatencyDeterministicNs) << what;
  EXPECT_EQ(a.msgP50LatencyNs, b.msgP50LatencyNs) << what;
  EXPECT_EQ(a.msgP99LatencyNs, b.msgP99LatencyNs) << what;
  EXPECT_EQ(a.messagesMeasured, b.messagesMeasured) << what;
  EXPECT_EQ(a.acceptedBytesPerNsPerSwitch, b.acceptedBytesPerNsPerSwitch)
      << what;
  EXPECT_EQ(a.offeredBytesPerNsPerSwitch, b.offeredBytesPerNsPerSwitch)
      << what;
  EXPECT_EQ(a.generated, b.generated) << what;
  EXPECT_EQ(a.injected, b.injected) << what;
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.measured, b.measured) << what;
  EXPECT_EQ(a.kernelEvents, b.kernelEvents) << what;
  EXPECT_EQ(a.avgHops, b.avgHops) << what;
  EXPECT_EQ(a.adaptiveForwardFraction, b.adaptiveForwardFraction) << what;
  EXPECT_EQ(a.escapeForwardFraction, b.escapeForwardFraction) << what;
  EXPECT_EQ(a.maxLinkUtilization, b.maxLinkUtilization) << what;
  EXPECT_EQ(a.meanLinkUtilization, b.meanLinkUtilization) << what;
  EXPECT_EQ(a.measurementComplete, b.measurementComplete) << what;
  EXPECT_EQ(a.deadlockSuspected, b.deadlockSuspected) << what;
  EXPECT_EQ(a.livePacketLimitHit, b.livePacketLimitHit) << what;
  EXPECT_EQ(a.inOrderViolations, b.inOrderViolations) << what;
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs) << what;
  EXPECT_EQ(a.threadsUsed, b.threadsUsed) << what;
  EXPECT_EQ(a.e2eLatencyNs, b.e2eLatencyNs) << what;
  EXPECT_EQ(a.faultCampaignRan, b.faultCampaignRan) << what;
  EXPECT_EQ(a.resilience.faultsInjected, b.resilience.faultsInjected) << what;
  EXPECT_EQ(a.resilience.linksRecovered, b.resilience.linksRecovered) << what;
  EXPECT_EQ(a.resilience.smSweeps, b.resilience.smSweeps) << what;
  EXPECT_EQ(a.resilience.packetsCorrupted, b.resilience.packetsCorrupted)
      << what;
  EXPECT_EQ(a.resilience.crcDrops, b.resilience.crcDrops) << what;
  EXPECT_EQ(a.resilience.creditUpdatesLost, b.resilience.creditUpdatesLost)
      << what;
  EXPECT_EQ(a.resilience.creditsLeaked, b.resilience.creditsLeaked) << what;
  EXPECT_EQ(a.resilience.creditsResynced, b.resilience.creditsResynced)
      << what;
  EXPECT_EQ(a.resilience.retransmitsSent, b.resilience.retransmitsSent)
      << what;
  EXPECT_EQ(a.resilience.duplicatesSuppressed,
            b.resilience.duplicatesSuppressed)
      << what;
  EXPECT_EQ(a.resilience.uniqueSent, b.resilience.uniqueSent) << what;
  EXPECT_EQ(a.resilience.uniqueDelivered, b.resilience.uniqueDelivered)
      << what;
  EXPECT_EQ(a.invariants.checksRun, b.invariants.checksRun) << what;
  EXPECT_EQ(a.invariants.violations(), b.invariants.violations()) << what;
}

struct WarmCase {
  TopologyKind kind;
  SimKernel kernel;
  int threads;
};

std::string caseName(const ::testing::TestParamInfo<WarmCase>& info) {
  std::string s;
  switch (info.param.kind) {
    case TopologyKind::kIrregular: s = "Irregular"; break;
    case TopologyKind::kFatTree: s = "FatTree"; break;
    case TopologyKind::kDragonfly: s = "Dragonfly"; break;
    default: s = "Other"; break;
  }
  s += info.param.kernel == SimKernel::kParallel ? "Parallel" : "Calendar";
  s += std::to_string(info.param.threads);
  return s;
}

SimParams warmParams(const WarmCase& c) {
  SimParams p;
  p.topoKind = c.kind;
  switch (c.kind) {
    case TopologyKind::kIrregular:
      p.numSwitches = 16;
      p.linksPerSwitch = 4;
      p.nodesPerSwitch = 2;
      break;
    case TopologyKind::kFatTree:
      p.fatTreeArity = 4;
      p.fatTreeLevels = 3;  // 48 switches / 64 hosts
      p.nodesPerSwitch = 4;
      break;
    default:  // dragonfly
      p.dragonflyRoutersPerGroup = 8;
      p.dragonflyGlobalPerRouter = 1;
      p.dragonflyGroups = 8;  // 64 switches
      p.nodesPerSwitch = 2;
      break;
  }
  p.pattern = TrafficPattern::kUniform;
  p.loadBytesPerNsPerNode = 0.03;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  p.fabric.kernel = c.kernel;
  p.fabric.threads = c.threads;
  return p;
}

class WarmSessionTest : public ::testing::TestWithParam<WarmCase> {};

TEST_P(WarmSessionTest, WarmRunsBitIdenticalToFreshBuilds) {
  const SimParams base = warmParams(GetParam());

  SimSession session(base);
  // First run() takes the fresh path (builds the fabric + image).
  const SimResults s1 = session.run();
  EXPECT_EQ(session.runsCompleted(), 1);
  expectBitIdentical(s1, runSimulation(base), "fresh session vs fresh run");

  // Second run() at the same point: warm reset, same bits.
  const SimResults s2 = session.run();
  EXPECT_EQ(session.runsCompleted(), 2);
  expectBitIdentical(s2, s1, "warm repeat vs first run");

  // Warm run at a different traffic point must match a fresh build there —
  // no state from the previous parameter point may leak through the reset.
  SimParams hot = base;
  hot.loadBytesPerNsPerNode = 0.06;
  hot.pattern = TrafficPattern::kHotspot;
  hot.hotspotFraction = 0.2;
  hot.trafficSeed = base.trafficSeed ^ 0x5a5aULL;
  const SimResults s3 = session.run(hot);
  expectBitIdentical(s3, runSimulation(hot), "warm hotspot vs fresh hotspot");
}

INSTANTIATE_TEST_SUITE_P(
    Families, WarmSessionTest,
    ::testing::Values(
        WarmCase{TopologyKind::kIrregular, SimKernel::kCalendar, 1},
        WarmCase{TopologyKind::kIrregular, SimKernel::kParallel, 4},
        WarmCase{TopologyKind::kFatTree, SimKernel::kCalendar, 1},
        WarmCase{TopologyKind::kFatTree, SimKernel::kParallel, 4},
        WarmCase{TopologyKind::kDragonfly, SimKernel::kCalendar, 1},
        WarmCase{TopologyKind::kDragonfly, SimKernel::kParallel, 4}),
    caseName);

TEST(WarmSession, ResetAfterFaultCampaignRestoresCleanFabric) {
  // A fault campaign fails links mid-run and the SM resweeps routing around
  // them — both the link state and the forwarding tables diverge from the
  // original image. The warm path must recover the links and reinstall the
  // cached image, so the next run is indistinguishable from a fresh fabric.
  SimParams clean;
  clean.topoKind = TopologyKind::kIrregular;
  clean.numSwitches = 16;
  clean.linksPerSwitch = 4;
  clean.nodesPerSwitch = 2;
  clean.loadBytesPerNsPerNode = 0.02;
  clean.warmupPackets = 200;
  clean.measurePackets = 1500;

  SimParams faulty = clean;
  faulty.measurePackets = 1'000'000;  // never reached: run to the horizon
  faulty.maxSimTimeNs = 2'500'000;
  faulty.faultMtbfNs = 300'000;
  faulty.faultMttrNs = 10'000'000;  // faults stay down: links left failed
  faulty.faultSeed = 7;
  faulty.sweepDelayNs = 30'000;

  SimSession session(clean);
  const SimResults f1 = session.run(faulty);  // fresh path, with campaign
  ASSERT_TRUE(f1.faultCampaignRan);
  ASSERT_GT(f1.resilience.faultsInjected, 0u);
  ASSERT_GT(f1.resilience.smSweeps, 0u);

  // Warm clean run after the campaign trashed links + tables.
  const SimResults c2 = session.run(clean);
  expectBitIdentical(c2, runSimulation(clean), "post-campaign warm clean run");

  // Warm faulty run repeats the campaign bit-for-bit.
  const SimResults f3 = session.run(faulty);
  expectBitIdentical(f3, f1, "warm campaign repeat");
  EXPECT_EQ(session.runsCompleted(), 3);
}

TEST(WarmSession, StructuralKnobsPinnedToConstructionPoint) {
  // run(p) must honor only per-run knobs; structural fields silently follow
  // the construction point (the fabric they describe was already built).
  SimParams base;
  base.topoKind = TopologyKind::kIrregular;
  base.numSwitches = 8;
  base.linksPerSwitch = 3;
  base.nodesPerSwitch = 2;
  base.loadBytesPerNsPerNode = 0.02;
  base.warmupPackets = 100;
  base.measurePackets = 800;
  base.fabric.numVls = 2;

  SimSession session(base);
  (void)session.run();

  SimParams divergent = base;
  divergent.fabric.numVls = 4;        // structural: must be ignored
  divergent.fabric.threads = 8;       // structural: must be ignored
  divergent.trafficSeed ^= 0x77ULL;   // per-run: must be honored
  const SimResults w = session.run(divergent);

  SimParams pinned = base;            // what the session actually ran
  pinned.trafficSeed ^= 0x77ULL;
  expectBitIdentical(w, runSimulation(pinned), "pinned structural knobs");
}

}  // namespace
}  // namespace ibadapt
