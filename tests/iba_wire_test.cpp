//
// IBA wire format: CRC check values, LRH/BTH field packing, frame assembly,
// and agreement between the symbolic simulator packets and the byte-exact
// encoding (the DLID on the wire is the DLID the tables are indexed with).
//
#include <gtest/gtest.h>

#include <cstring>

#include "core/lid_map.hpp"
#include "iba/crc.hpp"
#include "iba/headers.hpp"

namespace ibadapt::iba {
namespace {

std::span<const std::uint8_t> bytesOf(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)};
}

TEST(Crc, StandardCheckValues) {
  // "123456789": CRC-16/XMODEM = 0x31C3, CRC-32 (IEEE) = 0xCBF43926.
  EXPECT_EQ(crc16(bytesOf("123456789")), 0x31C3);
  EXPECT_EQ(crc32(bytesOf("123456789")), 0xCBF43926u);
}

TEST(Crc, EmptyAndIncremental) {
  EXPECT_EQ(crc16({}), 0);
  EXPECT_EQ(crc32({}), 0u);
  // crc16 supports chaining through the init parameter.
  const auto all = crc16(bytesOf("123456789"));
  const auto part = crc16(bytesOf("6789"), crc16(bytesOf("12345")));
  EXPECT_EQ(all, part);
}

TEST(Crc, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xA5);
  const auto c16 = crc16(data);
  const auto c32 = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc16(data), c16);
  EXPECT_NE(crc32(data), c32);
}

TEST(Lrh, RoundTripAllFields) {
  Lrh lrh;
  lrh.vl = 7;
  lrh.lver = 0;
  lrh.sl = 11;
  lrh.lnh = NextHeader::kBth;
  lrh.dlid = 0xBEEF;
  lrh.pktLenWords = 0x5A5;
  lrh.slid = 0x1234;
  const auto bytes = encodeLrh(lrh);
  EXPECT_EQ(decodeLrh(bytes), lrh);
}

TEST(Lrh, KnownEncoding) {
  Lrh lrh;
  lrh.vl = 1;
  lrh.sl = 2;
  lrh.lnh = NextHeader::kBth;
  lrh.dlid = 0x0102;
  lrh.pktLenWords = 9;
  lrh.slid = 0x0304;
  const auto b = encodeLrh(lrh);
  EXPECT_EQ(b[0], 0x10);  // VL=1, LVer=0
  EXPECT_EQ(b[1], 0x22);  // SL=2, LNH=2
  EXPECT_EQ(b[2], 0x01);
  EXPECT_EQ(b[3], 0x02);
  EXPECT_EQ(b[4], 0x00);
  EXPECT_EQ(b[5], 0x09);
  EXPECT_EQ(b[6], 0x03);
  EXPECT_EQ(b[7], 0x04);
}

TEST(Lrh, RejectsOutOfRangeAndReservedBits) {
  Lrh lrh;
  lrh.vl = 16;
  EXPECT_THROW(encodeLrh(lrh), std::invalid_argument);
  lrh.vl = 0;
  lrh.pktLenWords = 0x800;
  EXPECT_THROW(encodeLrh(lrh), std::invalid_argument);

  std::array<std::uint8_t, kLrhBytes> bytes{};
  bytes[1] = 0x04;  // reserved bit
  EXPECT_THROW(decodeLrh(bytes), std::invalid_argument);
}

TEST(Bth, RoundTripAllFields) {
  Bth bth;
  bth.opCode = 0x04;  // RC SEND only
  bth.solicitedEvent = true;
  bth.migReq = true;
  bth.padCount = 3;
  bth.tver = 0;
  bth.pKey = 0x8001;
  bth.destQp = 0xABCDEF;
  bth.ackReq = true;
  bth.psn = 0x123456;
  EXPECT_EQ(decodeBth(encodeBth(bth)), bth);
}

TEST(Bth, RejectsOutOfRange) {
  Bth bth;
  bth.destQp = 0x1000000;
  EXPECT_THROW(encodeBth(bth), std::invalid_argument);
  bth.destQp = 0;
  bth.padCount = 4;
  EXPECT_THROW(encodeBth(bth), std::invalid_argument);
}

TEST(Frame, BuildParseRoundTripWithValidCrcs) {
  Lrh lrh;
  lrh.vl = 0;
  lrh.sl = 0;
  lrh.dlid = 66;
  lrh.slid = 12;
  Bth bth;
  bth.opCode = 0x04;
  bth.destQp = 7;
  bth.psn = 42;
  std::vector<std::uint8_t> payload(32);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 3);
  }
  const auto frame = buildFrame(lrh, bth, payload);
  EXPECT_EQ(frame.size(), 8u + 12u + 32u + 4u + 2u);

  const ParsedFrame parsed = parseFrame(frame);
  EXPECT_TRUE(parsed.icrcOk);
  EXPECT_TRUE(parsed.vcrcOk);
  EXPECT_EQ(parsed.lrh.dlid, 66);
  EXPECT_EQ(parsed.bth.psn, 42u);
  EXPECT_EQ(parsed.payload, payload);
  EXPECT_EQ(parsed.lrh.pktLenWords, (frame.size() - 2) / 4);
}

TEST(Frame, CorruptionFlagsTheRightCrc) {
  const auto frame = buildFrame(Lrh{}, Bth{}, std::vector<std::uint8_t>(8));
  // Flip a payload bit: both CRCs fail.
  auto f1 = frame;
  f1[kLrhBytes + kBthBytes + 2] ^= 1;
  EXPECT_FALSE(parseFrame(f1).icrcOk);
  EXPECT_FALSE(parseFrame(f1).vcrcOk);
  // Flip an LRH bit (mutable region): VCRC fails, ICRC still holds —
  // exactly the invariant/variant split IBA relies on when switches
  // rewrite link fields.
  auto f2 = frame;
  f2[3] ^= 1;  // DLID low byte
  EXPECT_TRUE(parseFrame(f2).icrcOk);
  EXPECT_FALSE(parseFrame(f2).vcrcOk);
}

TEST(Frame, RejectsShortOrMisalignedInput) {
  EXPECT_THROW(parseFrame(std::vector<std::uint8_t>(10)),
               std::invalid_argument);
  EXPECT_THROW(buildFrame(Lrh{}, Bth{}, std::vector<std::uint8_t>(3)),
               std::invalid_argument);
}

TEST(Frame, SimulatorDlidsEncodeLosslessly) {
  // Every DLID the LMC addressing scheme can produce survives the wire
  // encoding — including the adaptive bit in the LSB (paper §4.2).
  const LidMapper lids(3);
  for (NodeId n = 0; n < 200; ++n) {
    for (int opt = 0; opt < lids.lidsPerNode(); ++opt) {
      Lrh lrh;
      lrh.dlid = static_cast<std::uint16_t>(lids.lidForOption(n, opt));
      const Lrh back = decodeLrh(encodeLrh(lrh));
      EXPECT_EQ(back.dlid, lids.lidForOption(n, opt));
      EXPECT_EQ(LidMapper::adaptiveBit(back.dlid), (opt & 1) != 0);
      EXPECT_EQ(lids.nodeOfLid(back.dlid), n);
    }
  }
}

}  // namespace
}  // namespace ibadapt::iba
