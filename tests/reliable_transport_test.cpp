//
// Host-side end-to-end reliability: sequence tracking, timeout +
// retransmit with exponential backoff, and receive-side duplicate
// suppression, exercised against real link faults.
//
#include <gtest/gtest.h>

#include <map>

#include "fabric/fabric.hpp"
#include "host/reliable_transport.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"

namespace ibadapt {
namespace {

/// Minimal saturation source (the transport must refuse to wrap one).
class SaturationStub final : public ITrafficSource {
 public:
  Spec makePacket(NodeId, Rng&) override { return Spec{1, 32, true}; }
  SimTime firstGenTime(NodeId, Rng&) override { return 0; }
  SimTime nextGenTime(NodeId, SimTime, Rng&) override { return kTimeNever; }
  bool saturationMode() const override { return true; }
};

/// Exactly-once assertion: every (src, dst, seq) delivered precisely once.
void expectExactlyOnce(const testing::RecordingObserver& obs,
                       std::size_t expected) {
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>, int> seen;
  for (const auto& d : obs.deliveries) {
    ASSERT_NE(d.pkt.e2eSeq, 0u) << "untracked packet leaked past transport";
    ++seen[{d.pkt.src, d.pkt.dst, d.pkt.e2eSeq}];
  }
  EXPECT_EQ(obs.deliveries.size(), expected);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "seq " << std::get<2>(key) << " delivered "
                        << count << " times";
  }
}

TEST(ReliableTransport, SpecValidation) {
  testing::ScriptedTraffic inner;
  ReliableTransportSpec bad;
  bad.baseRtoNs = 0;
  EXPECT_THROW(ReliableTransport(inner, 4, bad), std::invalid_argument);
  bad = ReliableTransportSpec{};
  bad.maxRtoNs = bad.baseRtoNs - 1;
  EXPECT_THROW(ReliableTransport(inner, 4, bad), std::invalid_argument);
  bad = ReliableTransportSpec{};
  bad.backoffFactor = 0.5;
  EXPECT_THROW(ReliableTransport(inner, 4, bad), std::invalid_argument);
}

TEST(ReliableTransport, RejectsSaturationSources) {
  SaturationStub sat;
  EXPECT_THROW(ReliableTransport(sat, 4, ReliableTransportSpec{}),
               std::invalid_argument);
}

TEST(ReliableTransport, ExactlyOnceOnHealthyFabricNoRetransmits) {
  const Topology topo = testing::twoSwitchTopology(2);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  testing::ScriptedTraffic inner;
  for (int i = 0; i < 20; ++i) {
    inner.add(0, i * 1'000, /*dst=*/2, 32, /*adaptive=*/false);
    inner.add(1, i * 1'000 + 500, /*dst=*/3, 32, /*adaptive=*/false);
  }
  ReliableTransport rt(inner, topo.numNodes(), ReliableTransportSpec{});
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();
  RunLimits limits;
  limits.endTime = 5'000'000;
  fabric.run(limits);

  EXPECT_EQ(rt.uniqueSent(), 40u);
  EXPECT_EQ(rt.uniqueDelivered(), 40u);
  EXPECT_EQ(rt.retransmitsSent(), 0u) << "RTO fired on a healthy fabric";
  EXPECT_EQ(rt.duplicatesSuppressed(), 0u);
  EXPECT_EQ(rt.abandoned(), 0u);
  EXPECT_EQ(rt.outstanding(), 0u);
  expectExactlyOnce(obs, 40);
  EXPECT_GT(rt.endToEndLatency().count(), 0u);
}

TEST(ReliableTransport, RetransmitsAcrossFaultAndRecovery) {
  // Line 0-1-2: the only route from node 0 to switch-2's nodes crosses the
  // 1-2 link. Fail it after the tables are built: every copy is dropped at
  // switch 1 until the link recovers, then retransmission delivers all.
  const Topology topo = testing::lineTopology(2);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  PortIndex toSw2 = kInvalidPort;
  for (const auto& [nb, port] : fabric.topology().switchNeighbors(1)) {
    if (nb == 2) toSw2 = port;
  }
  ASSERT_NE(toSw2, kInvalidPort);
  fabric.failLink(1, toSw2);

  testing::ScriptedTraffic inner;
  for (int i = 0; i < 10; ++i) {
    inner.add(0, i * 500, /*dst=*/4, 32, /*adaptive=*/false);
  }
  ReliableTransportSpec spec;
  spec.baseRtoNs = 20'000;
  spec.maxRtoNs = 160'000;
  spec.ackDelayNs = 1'000;
  ReliableTransport rt(inner, topo.numNodes(), spec);
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();

  RunLimits limits;
  limits.endTime = 60'000;  // a few RTOs expire against the dead link
  fabric.run(limits);
  EXPECT_GT(fabric.counters().dropped, 0u);
  EXPECT_EQ(rt.uniqueDelivered(), 0u);
  EXPECT_GT(rt.retransmitsSent(), 0u);

  fabric.recoverLink(1, toSw2);  // tables still point at this port

  limits.endTime = 5'000'000;
  fabric.run(limits);
  EXPECT_FALSE(fabric.deadlockSuspected());
  EXPECT_EQ(rt.uniqueSent(), 10u);
  EXPECT_EQ(rt.uniqueDelivered(), 10u);
  EXPECT_EQ(rt.abandoned(), 0u);
  EXPECT_EQ(rt.outstanding(), 0u);
  expectExactlyOnce(obs, 10);
}

TEST(ReliableTransport, DuplicateSuppressionDeliversOnceUpward) {
  // An RTO far below the round trip makes the transport retransmit packets
  // that are not lost; the receiver must suppress every extra copy.
  const Topology topo = testing::twoSwitchTopology(2);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();

  testing::ScriptedTraffic inner;
  for (int i = 0; i < 5; ++i) {
    inner.add(0, i * 20'000, /*dst=*/2, 32, /*adaptive=*/false);
  }
  ReliableTransportSpec spec;
  spec.baseRtoNs = 300;  // < round trip: spurious retransmissions guaranteed
  spec.maxRtoNs = 2'000;
  spec.minRtoNs = 300;
  spec.adaptiveRto = false;  // keep the RTO pinned below the round trip
  spec.ackDelayNs = 5'000;
  ReliableTransport rt(inner, topo.numNodes(), spec);
  testing::RecordingObserver obs;
  rt.attachObserver(&obs);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();
  RunLimits limits;
  limits.endTime = 5'000'000;
  fabric.run(limits);

  EXPECT_GT(rt.retransmitsSent(), 0u);
  EXPECT_GT(rt.duplicatesSuppressed(), 0u);
  EXPECT_EQ(rt.uniqueDelivered(), 5u);
  expectExactlyOnce(obs, 5);
}

TEST(ReliableTransport, BackoffCapsAndAbandonsOnPermanentFault) {
  // Permanent fault, no re-sweep: after maxRetries the transport gives the
  // packet up instead of retrying forever.
  const Topology topo = testing::lineTopology(2);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  sm.configure();
  PortIndex toSw2 = kInvalidPort;
  for (const auto& [nb, port] : fabric.topology().switchNeighbors(1)) {
    if (nb == 2) toSw2 = port;
  }
  ASSERT_NE(toSw2, kInvalidPort);
  fabric.failLink(1, toSw2);

  testing::ScriptedTraffic inner;
  inner.add(0, 0, /*dst=*/4, 32, /*adaptive=*/false);
  ReliableTransportSpec spec;
  spec.baseRtoNs = 1'000;
  spec.maxRtoNs = 4'000;
  spec.maxRetries = 3;
  ReliableTransport rt(inner, topo.numNodes(), spec);
  fabric.attachTraffic(&rt, 1);
  fabric.attachObserver(&rt);
  fabric.start();
  RunLimits limits;
  limits.endTime = 1'000'000;
  fabric.run(limits);

  EXPECT_EQ(rt.retransmitsSent(), 3u);  // exactly maxRetries copies
  EXPECT_EQ(rt.abandoned(), 1u);
  EXPECT_EQ(rt.outstanding(), 0u);
  EXPECT_EQ(rt.uniqueDelivered(), 0u);
}

}  // namespace
}  // namespace ibadapt
