#include <gtest/gtest.h>

#include <cmath>

#include "analysis/option_census.hpp"
#include "routing/minimal.hpp"
#include "routing/updown.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

RouteSet makeRoutes(const Topology& topo) {
  static thread_local std::vector<std::unique_ptr<UpDownRouting>> keepUd;
  static thread_local std::vector<std::unique_ptr<MinimalAdaptiveRouting>> keepMr;
  keepUd.push_back(std::make_unique<UpDownRouting>(topo));
  keepMr.push_back(std::make_unique<MinimalAdaptiveRouting>(topo));
  return RouteSet(topo, *keepUd.back(), *keepMr.back());
}

TEST(OptionCensus, PercentagesSumToHundred) {
  Rng rng(51);
  IrregularSpec spec;
  spec.numSwitches = 16;
  spec.linksPerSwitch = 4;
  const Topology topo = makeIrregular(spec, rng);
  const RouteSet routes = makeRoutes(topo);
  for (int mr : {2, 3, 4}) {
    const OptionCensus c = routingOptionCensus(topo, routes, mr);
    double sum = 0;
    for (int k = 1; k <= OptionCensus::kMaxCensusOptions; ++k) {
      sum += c.pct[static_cast<std::size_t>(k)];
      if (k > mr) {
        EXPECT_DOUBLE_EQ(c.pct[static_cast<std::size_t>(k)], 0.0)
            << "cannot exceed MR options";
      }
    }
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_EQ(c.pairs, 16L * 15L);
    EXPECT_GE(c.avgOptions, 1.0);
    EXPECT_LE(c.avgOptions, mr);
  }
}

TEST(OptionCensus, RingHasLimitedAdaptivity) {
  // On a ring, most destinations have a unique minimal direction; only the
  // antipode (even rings) offers two. With MR=2 nearly all pairs still
  // show >= 1 option, and the 2-option share equals the antipode share
  // plus pairs where escape differs from the minimal hop.
  const Topology topo = makeRing(8, 2);
  const RouteSet routes = makeRoutes(topo);
  const OptionCensus c = routingOptionCensus(topo, routes, 2);
  EXPECT_GT(c.pct[1], 0.0);
  EXPECT_GT(c.pct[2], 0.0);
  EXPECT_NEAR(c.pct[1] + c.pct[2], 100.0, 1e-9);
}

TEST(OptionCensus, MoreConnectivityMoreOptions) {
  // The paper's Table 2 trend: 6 links/switch gives a larger share of
  // multi-option pairs than 4 links/switch.
  auto avgFor = [](int links) {
    double sum = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng rng(seed);
      IrregularSpec spec;
      spec.numSwitches = 16;
      spec.linksPerSwitch = links;
      const Topology topo = makeIrregular(spec, rng);
      const RouteSet routes = makeRoutes(topo);
      sum += routingOptionCensus(topo, routes, 4).avgOptions;
    }
    return sum / 5;
  };
  EXPECT_GT(avgFor(6), avgFor(4));
}

TEST(OptionCensus, HigherMrNeverReducesOptions) {
  Rng rng(52);
  IrregularSpec spec;
  spec.numSwitches = 16;
  spec.linksPerSwitch = 6;
  const Topology topo = makeIrregular(spec, rng);
  const RouteSet routes = makeRoutes(topo);
  double prev = 0;
  for (int mr : {1, 2, 3, 4}) {
    const double avg = routingOptionCensus(topo, routes, mr).avgOptions;
    EXPECT_GE(avg, prev);
    prev = avg;
  }
}

TEST(OptionCensus, SkipsTransitOnlySwitchesOnHierarchicalFabrics) {
  // Fat-tree upper tiers host no CAs, so they are not destinations: the
  // census must count only pairs targeting CA-bearing switches (it used to
  // call nodeAt on node-less switches and read past the node table).
  FatTreeSpec spec;
  spec.arity = 2;
  spec.levels = 4;  // 32 switches, 8 CA-bearing leaves
  spec.hostsPerLeaf = 2;
  const Topology topo = makeFatTree(spec);
  const RouteSet routes = makeRoutes(topo);
  const OptionCensus c = routingOptionCensus(topo, routes, 2);
  // 32 sources x 8 leaf destinations, minus the 8 self pairs.
  EXPECT_EQ(c.pairs, 32L * 8L - 8L);
  EXPECT_GE(c.avgOptions, 1.0);
  double sum = 0;
  for (int k = 1; k <= OptionCensus::kMaxCensusOptions; ++k) {
    sum += c.pct[static_cast<std::size_t>(k)];
  }
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(OptionCensus, RejectsBadMr) {
  const Topology topo = makeRing(4, 2);
  const RouteSet routes = makeRoutes(topo);
  EXPECT_THROW(routingOptionCensus(topo, routes, 0), std::invalid_argument);
  EXPECT_THROW(routingOptionCensus(topo, routes, 99), std::invalid_argument);
}

}  // namespace
}  // namespace ibadapt
