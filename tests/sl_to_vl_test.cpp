#include <gtest/gtest.h>

#include "core/sl_to_vl.hpp"

namespace ibadapt {
namespace {

TEST(SlToVl, DefaultIsIdentityModulo) {
  const SlToVlTable t(4, 2);
  for (PortIndex in = 0; in < 4; ++in) {
    for (PortIndex out = 0; out < 4; ++out) {
      for (int sl = 0; sl < kMaxServiceLevels; ++sl) {
        EXPECT_EQ(t.vl(in, out, sl), sl % 2);
      }
    }
  }
}

TEST(SlToVl, SetOverridesSingleTriple) {
  SlToVlTable t(4, 4);
  t.set(1, 2, 5, 3);
  EXPECT_EQ(t.vl(1, 2, 5), 3);
  EXPECT_EQ(t.vl(1, 2, 4), 0);  // neighbors untouched
  EXPECT_EQ(t.vl(2, 1, 5), 1);
}

TEST(SlToVl, DependsOnAllThreeInputs) {
  SlToVlTable t(3, 4);
  t.set(0, 1, 0, 1);
  t.set(0, 2, 0, 2);
  t.set(1, 2, 0, 3);
  EXPECT_EQ(t.vl(0, 1, 0), 1);
  EXPECT_EQ(t.vl(0, 2, 0), 2);
  EXPECT_EQ(t.vl(1, 2, 0), 3);
}

TEST(SlToVl, Validation) {
  EXPECT_THROW(SlToVlTable(0, 1), std::invalid_argument);
  EXPECT_THROW(SlToVlTable(4, 0), std::invalid_argument);
  EXPECT_THROW(SlToVlTable(4, 17), std::invalid_argument);
  SlToVlTable t(4, 2);
  EXPECT_THROW(t.set(0, 0, 0, 5), std::invalid_argument);
  EXPECT_THROW(t.vl(4, 0, 0), std::out_of_range);
  EXPECT_THROW(t.vl(0, 0, 16), std::out_of_range);
}

}  // namespace
}  // namespace ibadapt
