//
// Whole-stack integration: random and regular fabrics under sustained
// traffic must deliver, stay deadlock-free, preserve deterministic order,
// and behave reproducibly.
//
#include <gtest/gtest.h>

#include <sstream>

#include "api/simulation.hpp"
#include "api/sweep.hpp"

namespace ibadapt {
namespace {

SimParams quickParams() {
  SimParams p;
  p.warmupPackets = 500;
  p.measurePackets = 4000;
  p.maxSimTimeNs = 500'000'000;
  return p;
}

void expectHealthy(const SimResults& r, const char* what) {
  EXPECT_TRUE(r.measurementComplete) << what;
  EXPECT_FALSE(r.deadlockSuspected) << what;
  EXPECT_EQ(r.inOrderViolations, 0u) << what;
  EXPECT_GT(r.delivered, 0u) << what;
  EXPECT_GT(r.acceptedBytesPerNsPerSwitch, 0.0) << what;
  EXPECT_GT(r.avgLatencyNs, 0.0) << what;
}

struct IntegrationCase {
  const char* name;
  TopologyKind kind;
  int switches;       // irregular / ring
  int links;          // irregular
  double adaptiveFraction;
  TrafficPattern pattern;
  bool saturation;
  int packetBytes;
};

class IntegrationTest : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(IntegrationTest, DeliversWithoutDeadlockOrReordering) {
  const auto& c = GetParam();
  SimParams p = quickParams();
  p.topoKind = c.kind;
  p.numSwitches = c.switches;
  p.linksPerSwitch = c.links;
  p.meshWidth = 4;
  p.meshHeight = 4;
  p.hypercubeDim = 4;
  p.adaptiveFraction = c.adaptiveFraction;
  p.pattern = c.pattern;
  p.saturation = c.saturation;
  p.packetBytes = c.packetBytes;
  p.loadBytesPerNsPerNode = 0.04;
  const SimResults r = runSimulation(p);
  expectHealthy(r, c.name);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationTest,
    ::testing::Values(
        IntegrationCase{"irr8_det_uniform", TopologyKind::kIrregular, 8, 4,
                        0.0, TrafficPattern::kUniform, false, 32},
        IntegrationCase{"irr8_fa_uniform", TopologyKind::kIrregular, 8, 4,
                        1.0, TrafficPattern::kUniform, false, 32},
        IntegrationCase{"irr8_mixed_uniform", TopologyKind::kIrregular, 8, 4,
                        0.5, TrafficPattern::kUniform, false, 32},
        IntegrationCase{"irr16_fa_bitrev", TopologyKind::kIrregular, 16, 4,
                        1.0, TrafficPattern::kBitReversal, false, 32},
        IntegrationCase{"irr16_fa_hotspot", TopologyKind::kIrregular, 16, 4,
                        1.0, TrafficPattern::kHotspot, false, 32},
        IntegrationCase{"irr16_d6_fa", TopologyKind::kIrregular, 16, 6, 1.0,
                        TrafficPattern::kUniform, false, 32},
        IntegrationCase{"irr8_fa_256B", TopologyKind::kIrregular, 8, 4, 1.0,
                        TrafficPattern::kUniform, false, 256},
        IntegrationCase{"irr8_fa_saturated", TopologyKind::kIrregular, 8, 4,
                        1.0, TrafficPattern::kUniform, true, 32},
        IntegrationCase{"irr8_det_saturated", TopologyKind::kIrregular, 8, 4,
                        0.0, TrafficPattern::kUniform, true, 32},
        IntegrationCase{"irr32_fa_uniform", TopologyKind::kIrregular, 32, 4,
                        1.0, TrafficPattern::kUniform, false, 32},
        IntegrationCase{"torus_fa_saturated", TopologyKind::kTorus2D, 0, 0,
                        1.0, TrafficPattern::kUniform, true, 32},
        IntegrationCase{"torus_mixed", TopologyKind::kTorus2D, 0, 0, 0.5,
                        TrafficPattern::kUniform, false, 32},
        IntegrationCase{"mesh_fa", TopologyKind::kMesh2D, 0, 0, 1.0,
                        TrafficPattern::kUniform, false, 32},
        IntegrationCase{"ring_fa", TopologyKind::kRing, 6, 0, 1.0,
                        TrafficPattern::kUniform, false, 32},
        IntegrationCase{"cube_fa_saturated", TopologyKind::kHypercube, 0, 0,
                        1.0, TrafficPattern::kUniform, true, 32}),
    [](const ::testing::TestParamInfo<IntegrationCase>& info) {
      return info.param.name;
    });

// Stress: minimal buffers, saturation, many seeds — the classic deadlock
// hunting ground for escape-channel schemes.
class DeadlockStressTest : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockStressTest, SaturatedTinyBuffersStayLive) {
  SimParams p = quickParams();
  p.topoSeed = static_cast<std::uint64_t>(GetParam());
  p.trafficSeed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
  p.numSwitches = 16;
  p.saturation = true;
  p.adaptiveFraction = 1.0;
  p.fabric.bufferCredits = 2;  // one 32B packet per logical queue
  p.fabric.escapeReserveCredits = 1;
  p.measurePackets = 3000;
  const SimResults r = runSimulation(p);
  expectHealthy(r, "tiny-buffer saturation");
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlockStressTest,
                         ::testing::Range(1, 11));

TEST(Integration, MixedSaturatedTrafficKeepsDeterministicOrder) {
  SimParams p = quickParams();
  p.numSwitches = 16;
  p.saturation = true;
  p.adaptiveFraction = 0.5;
  p.measurePackets = 8000;
  const SimResults r = runSimulation(p);
  expectHealthy(r, "mixed saturated");
  EXPECT_EQ(r.inOrderViolations, 0u);
}

TEST(Integration, DeterministicRunsAreBitReproducible) {
  SimParams p = quickParams();
  p.numSwitches = 16;
  p.adaptiveFraction = 1.0;
  p.loadBytesPerNsPerNode = 0.06;
  const SimResults a = runSimulation(p);
  const SimResults b = runSimulation(p);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.simEndTimeNs, b.simEndTimeNs);
  EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs);
  EXPECT_DOUBLE_EQ(a.acceptedBytesPerNsPerSwitch,
                   b.acceptedBytesPerNsPerSwitch);
}

TEST(Integration, DifferentTrafficSeedsDiffer) {
  SimParams p = quickParams();
  p.numSwitches = 8;
  p.loadBytesPerNsPerNode = 0.06;
  SimParams q = p;
  q.trafficSeed = p.trafficSeed + 1;
  const SimResults a = runSimulation(p);
  const SimResults b = runSimulation(q);
  EXPECT_NE(a.avgLatencyNs, b.avgLatencyNs);
}

TEST(Integration, AdaptiveNeverSlowerAtSaturationOn32Switches) {
  // The paper's headline claim, spot-checked: peak throughput with FA
  // routing must beat deterministic up*/down* on a 32-switch network.
  SimParams p = quickParams();
  p.numSwitches = 32;
  p.measurePackets = 6000;
  const Topology topo = buildTopology(p);
  SimParams det = p;
  det.adaptiveFraction = 0.0;
  SimParams fa = p;
  fa.adaptiveFraction = 1.0;
  RampOptions ramp;
  ramp.startLoadPerNode = 0.01;
  ramp.growth = 1.5;
  const double td = measurePeakThroughput(topo, det, ramp).peakAccepted;
  const double ta = measurePeakThroughput(topo, fa, ramp).peakAccepted;
  EXPECT_GT(ta, td * 1.2) << "FA should clearly beat up*/down* at 32 switches";
}

TEST(Integration, EscapePathsCarryTrafficUnderLoad) {
  SimParams p = quickParams();
  p.numSwitches = 16;
  p.saturation = true;
  p.adaptiveFraction = 1.0;
  const SimResults r = runSimulation(p);
  // Under saturation adaptive queues fill, so the escape fallback must be
  // exercised — this is what keeps the network deadlock-free.
  EXPECT_GT(r.escapeForwardFraction, 0.0);
  EXPECT_GT(r.adaptiveForwardFraction, 0.0);
}

TEST(Integration, ZeroLoadLatencyDominatedByPathLength) {
  SimParams p = quickParams();
  p.numSwitches = 8;
  p.loadBytesPerNsPerNode = 0.001;  // nearly idle
  p.warmupPackets = 100;
  p.measurePackets = 1000;
  const SimResults r = runSimulation(p);
  expectHealthy(r, "zero load");
  // Min possible latency (1 hop local): 428 ns; generous upper bound for
  // an idle 8-switch subnet.
  EXPECT_GT(r.avgLatencyNs, 428.0);
  EXPECT_LT(r.avgLatencyNs, 3000.0);
}

TEST(Integration, SummaryStringMentionsAnomalies) {
  SimResults r;
  r.deadlockSuspected = true;
  r.inOrderViolations = 3;
  const std::string s = r.summary();
  EXPECT_NE(s.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(s.find("OOO=3"), std::string::npos);
}

}  // namespace
}  // namespace ibadapt
