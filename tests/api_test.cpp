#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "api/simulation.hpp"
#include "api/sweep.hpp"

namespace ibadapt {
namespace {

TEST(ApiTopology, BuildsEveryKind) {
  SimParams p;
  p.topoKind = TopologyKind::kIrregular;
  EXPECT_EQ(buildTopology(p).numSwitches(), 8);
  p.topoKind = TopologyKind::kRing;
  p.numSwitches = 6;
  EXPECT_EQ(buildTopology(p).numSwitches(), 6);
  p.topoKind = TopologyKind::kMesh2D;
  p.meshWidth = 3;
  p.meshHeight = 5;
  EXPECT_EQ(buildTopology(p).numSwitches(), 15);
  p.topoKind = TopologyKind::kTorus2D;
  p.meshWidth = 4;
  p.meshHeight = 4;
  EXPECT_EQ(buildTopology(p).numSwitches(), 16);
  p.topoKind = TopologyKind::kHypercube;
  p.hypercubeDim = 5;
  EXPECT_EQ(buildTopology(p).numSwitches(), 32);
}

TEST(ApiTopology, IrregularDeterministicInSeed) {
  SimParams p;
  p.numSwitches = 16;
  EXPECT_EQ(buildTopology(p).describe(), buildTopology(p).describe());
  SimParams q = p;
  q.topoSeed = 2;
  EXPECT_NE(buildTopology(p).describe(), buildTopology(q).describe());
}

TEST(Sweep, RunsAllAndKeepsOrder) {
  std::vector<SimParams> params;
  for (int i = 0; i < 3; ++i) {
    SimParams p;
    p.warmupPackets = 200;
    p.measurePackets = 1000;
    p.loadBytesPerNsPerNode = 0.02 + 0.02 * i;
    params.push_back(p);
  }
  const auto results = runSweep(params, 2);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.measurementComplete);
  }
  // Higher offered load -> higher accepted (all below saturation here).
  EXPECT_LT(results[0].acceptedBytesPerNsPerSwitch,
            results[2].acceptedBytesPerNsPerSwitch);
}

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<SimParams> params(2);
  for (auto& p : params) {
    p.warmupPackets = 200;
    p.measurePackets = 1000;
  }
  params[1].trafficSeed = 99;
  const auto serial = runSweep(params, 1);
  const auto parallel = runSweep(params, 4);
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].avgLatencyNs, parallel[i].avgLatencyNs);
    EXPECT_EQ(serial[i].delivered, parallel[i].delivered);
  }
}

TEST(Sweep, WorkerExceptionPropagatesToCaller) {
  // Regression: a point whose construction throws inside a pool worker used
  // to kill the process (exception escaping workerLoop -> std::terminate)
  // or deadlock wait(). It must surface to the runSweep caller.
  std::vector<SimParams> params(2);
  params[0].warmupPackets = 100;
  params[0].measurePackets = 200;
  params[1] = params[0];
  params[1].packetBytes = -1;  // SyntheticTraffic rejects this in the worker
  EXPECT_THROW(runSweep(params, 2), std::invalid_argument);
}

TEST(Sweep, SummarizeMinAvgMax) {
  const MinAvgMax s = summarize({2.0, 4.0, 9.0});
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.avg, 5.0);
  const MinAvgMax e = summarize({});
  EXPECT_DOUBLE_EQ(e.avg, 0.0);
}

TEST(Sweep, PeakThroughputCurveShape) {
  SimParams p;
  p.numSwitches = 8;
  p.warmupPackets = 500;
  p.measurePackets = 3000;
  p.adaptiveFraction = 1.0;
  const Topology topo = buildTopology(p);
  RampOptions ramp;
  ramp.growth = 1.6;
  const PeakThroughput peak = measurePeakThroughput(topo, p, ramp);
  ASSERT_GE(peak.curve.size(), 3u);
  EXPECT_GT(peak.peakAccepted, 0.0);
  // The returned curve is sorted by offered load.
  for (std::size_t i = 1; i < peak.curve.size(); ++i) {
    EXPECT_GE(peak.curve[i].offeredBytesPerNsPerSwitch,
              peak.curve[i - 1].offeredBytesPerNsPerSwitch);
  }
  // The knee is the best *stable* point on the curve.
  double bestStable = 0.0;
  bool sawSaturated = false;
  for (const auto& cp : peak.curve) {
    if (!cp.saturated) {
      bestStable = std::max(bestStable, cp.acceptedBytesPerNsPerSwitch);
    } else {
      sawSaturated = true;
    }
  }
  EXPECT_DOUBLE_EQ(peak.peakAccepted, bestStable);
  EXPECT_TRUE(sawSaturated) << "ramp should push past the knee";
}

TEST(Sweep, ThroughputFactorsPositive) {
  SimParams p;
  p.numSwitches = 8;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  RampOptions ramp;
  ramp.growth = 1.7;
  const ThroughputFactors f = measureThroughputFactors(p, 2, 1, ramp, 1);
  ASSERT_EQ(f.adaptiveThroughput.size(), 2u);
  EXPECT_GT(f.factor.min, 0.0);
  EXPECT_GE(f.factor.max, f.factor.avg);
  EXPECT_GE(f.factor.avg, f.factor.min);
  for (double v : f.deterministicThroughput) EXPECT_GT(v, 0.0);
}

TEST(Api, MeasureSaturationThroughputRuns) {
  SimParams p;
  p.numSwitches = 8;
  p.warmupPackets = 300;
  p.measurePackets = 2000;
  const Topology topo = buildTopology(p);
  EXPECT_GT(measureSaturationThroughput(topo, p), 0.0);
}

}  // namespace
}  // namespace ibadapt
