//
// Flow control and adaptive-mechanism behaviour: credit blocking, adaptive
// vs escape option usage, deterministic in-order delivery, mixed fabrics,
// and the selection policies.
//
#include <gtest/gtest.h>

#include <map>

#include "fabric/fabric.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"
#include "topology/generators.hpp"

namespace ibadapt {
namespace {

using testing::RecordingObserver;
using testing::ScriptedTraffic;

struct Harness {
  explicit Harness(Topology t, FabricParams fp = {})
      : fabric(std::move(t), fp) {
    SubnetManager sm(fabric);
    sm.configure();
    fabric.attachObserver(&observer);
  }

  void run(SimTime until = 10'000'000) {
    fabric.attachTraffic(&traffic, /*seed=*/1);
    fabric.start();
    RunLimits limits;
    limits.endTime = until;
    fabric.run(limits);
  }

  Fabric fabric;
  ScriptedTraffic traffic;
  RecordingObserver observer;
};

/// Diamond: 0 - {1,2} - 3, so switch 0 has two minimal ports toward 3.
Topology diamondTopology(int nodesPerSwitch = 2) {
  Topology topo(4, nodesPerSwitch + 2, nodesPerSwitch);
  topo.addLink(0, 1);
  topo.addLink(0, 2);
  topo.addLink(1, 3);
  topo.addLink(2, 3);
  return topo;
}

TEST(FabricFlow, CreditExhaustionBlocksWithoutOverflow) {
  // Tiny buffers: 2 credits per VL, reserve 1. Blast ten 32-byte packets
  // from one CA to a remote node; flow control must pace them and every
  // packet must arrive (any overflow throws inside the fabric).
  FabricParams fp;
  fp.bufferCredits = 2;
  fp.escapeReserveCredits = 1;
  Harness h(testing::lineTopology(2), fp);
  for (int i = 0; i < 10; ++i) h.traffic.add(0, 0, 5, 32, false);
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 10u);
}

TEST(FabricFlow, VctRequiresWholePacketCredits) {
  // 256-byte packet = 4 credits; a 2-credit buffer can never accept it.
  // Construction is fine; the packet must simply never be injected, and the
  // run ends with it stuck at the source (watchdog off for this check).
  FabricParams fp;
  fp.bufferCredits = 2;
  fp.escapeReserveCredits = 1;
  Harness h(testing::twoSwitchTopology(2), fp);
  h.traffic.add(0, 0, 2, 256, false);
  h.fabric.attachTraffic(&h.traffic, 1);
  h.fabric.start();
  RunLimits limits;
  limits.endTime = 1'000'000;
  limits.watchdogPeriodNs = 0;  // disabled
  h.fabric.run(limits);
  EXPECT_EQ(h.observer.deliveries.size(), 0u);
  EXPECT_EQ(h.fabric.counters().injected, 0u);
  EXPECT_EQ(h.fabric.nodeQueueLength(0), 1u);
}

TEST(FabricFlow, CreditsRestoredAfterDrain) {
  Harness h(testing::lineTopology(2));
  for (int i = 0; i < 6; ++i) h.traffic.add(0, 0, 5, 256, false);
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 6u);
  // All buffers drained: every output port must be back to full credit.
  const FabricParams& fp = h.fabric.params();
  for (SwitchId sw = 0; sw < 3; ++sw) {
    for (PortIndex p = 0; p < h.fabric.topology().portsPerSwitch(); ++p) {
      const Peer& peer = h.fabric.topology().peer(sw, p);
      if (peer.kind == PeerKind::kSwitch) {
        EXPECT_EQ(h.fabric.outputCredits(sw, p, 0), fp.bufferCredits);
      } else if (peer.kind == PeerKind::kNode) {
        EXPECT_EQ(h.fabric.outputCredits(sw, p, 0), fp.caRecvCredits);
      }
    }
  }
}

TEST(FabricFlow, AdaptivePacketsUseMultipleMinimalPaths) {
  // Saturate the diamond with adaptive traffic 0->dest on switch 3: with
  // credit-aware selection both middle switches must carry packets.
  Harness h(diamondTopology());
  const NodeId dst = 6;  // first node of switch 3
  for (int i = 0; i < 200; ++i) {
    h.traffic.add(0, i * 16, dst, 32, /*adaptive=*/true);
  }
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 200u);
  // Both adaptive forwards happened, and (given contention) some packets
  // must have taken each middle switch. We infer usage from the forward
  // counters: 200 packets x 3 hops, all offered adaptive options.
  const auto& c = h.fabric.counters();
  EXPECT_GT(c.adaptiveForwards, 0u);
}

TEST(FabricFlow, DeterministicTrafficNeverUsesAdaptiveOptions) {
  Harness h(diamondTopology());
  for (int i = 0; i < 100; ++i) {
    h.traffic.add(0, i * 200, 6, 32, /*adaptive=*/false);
  }
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 100u);
  EXPECT_EQ(h.fabric.counters().adaptiveForwards, 0u);
  EXPECT_GT(h.fabric.counters().escapeForwards, 0u);
}

TEST(FabricFlow, DeterministicDeliveredInOrder) {
  // Heavy deterministic stream across a contended fabric must arrive in
  // generation order per (src,dst).
  Harness h(diamondTopology());
  for (int i = 0; i < 300; ++i) {
    h.traffic.add(0, i * 8, 6, 32, false);   // deliberately over-offered
    h.traffic.add(1, i * 8, 6, 32, false);   // cross traffic, same dest
  }
  h.run(50'000'000);
  ASSERT_EQ(h.observer.deliveries.size(), 600u);
  std::map<NodeId, std::uint32_t> lastSeq;
  for (const auto& d : h.observer.deliveries) {
    if (d.pkt.adaptive) continue;
    auto& last = lastSeq[d.pkt.src];
    EXPECT_GT(d.pkt.detSeq, last) << "out-of-order deterministic delivery";
    last = d.pkt.detSeq;
  }
}

TEST(FabricFlow, MixedTrafficPreservesDeterministicOrder) {
  FabricParams fp;
  fp.orderRule = EscapeOrderRule::kPaperStrict;
  Harness h(diamondTopology(), fp);
  for (int i = 0; i < 200; ++i) {
    h.traffic.add(0, i * 10, 6, 32, /*adaptive=*/(i % 2) == 0);
    h.traffic.add(2, i * 10, 6, 32, /*adaptive=*/(i % 3) == 0);
  }
  h.run(50'000'000);
  ASSERT_EQ(h.observer.deliveries.size(), 400u);
  std::map<NodeId, std::uint32_t> lastSeq;
  for (const auto& d : h.observer.deliveries) {
    if (d.pkt.adaptive) continue;
    auto& last = lastSeq[d.pkt.src];
    EXPECT_GT(d.pkt.detSeq, last);
    last = d.pkt.detSeq;
  }
}

TEST(FabricFlow, RelaxedOrderRuleAlsoPreservesDetOrder) {
  FabricParams fp;
  fp.orderRule = EscapeOrderRule::kDeterministicOnly;
  Harness h(diamondTopology(), fp);
  for (int i = 0; i < 200; ++i) {
    h.traffic.add(0, i * 10, 6, 32, /*adaptive=*/(i % 2) == 0);
  }
  h.run(50'000'000);
  ASSERT_EQ(h.observer.deliveries.size(), 200u);
  std::map<NodeId, std::uint32_t> lastSeq;
  for (const auto& d : h.observer.deliveries) {
    if (d.pkt.adaptive) continue;
    auto& last = lastSeq[d.pkt.src];
    EXPECT_GT(d.pkt.detSeq, last);
    last = d.pkt.detSeq;
  }
}

TEST(FabricFlow, NonAdaptiveSwitchesOfferOnlyEscape) {
  FabricParams fp;
  fp.adaptiveSwitches = false;  // stock IBA switches everywhere
  Harness h(diamondTopology(), fp);
  for (int i = 0; i < 100; ++i) {
    h.traffic.add(0, i * 50, 6, 32, /*adaptive=*/true);
  }
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 100u);
  EXPECT_EQ(h.fabric.counters().adaptiveForwards, 0u);
}

TEST(FabricFlow, MixedFabricOnlyAdaptiveSwitchesAdapt) {
  // §4.2: adaptive and deterministic switches can coexist. Make only
  // switch 0 adaptive; packets still arrive, and adaptive forwards occur
  // only at switch 0 (we can't observe per-switch directly, but with only
  // one adaptive-capable switch the count is bounded by packets injected
  // there).
  FabricParams fp;
  fp.adaptiveSwitchMask = {true, false, false, false};
  Harness h(diamondTopology(), fp);
  for (int i = 0; i < 50; ++i) {
    h.traffic.add(0, i * 100, 6, 32, true);   // passes switch 0 first
    h.traffic.add(6, i * 100, 0, 32, true);   // reverse direction
  }
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 100u);
  EXPECT_LE(h.fabric.counters().adaptiveForwards, 100u);
}

TEST(FabricFlow, SelectionPoliciesAllDeliver) {
  for (auto timing : {SelectionTiming::kAtArbitration,
                      SelectionTiming::kAtRouting}) {
    for (auto crit : {SelectionCriterion::kCreditAware,
                      SelectionCriterion::kStatic,
                      SelectionCriterion::kRandom}) {
      FabricParams fp;
      fp.selectionTiming = timing;
      fp.selectionCriterion = crit;
      Harness h(diamondTopology(), fp);
      for (int i = 0; i < 100; ++i) {
        h.traffic.add(0, i * 20, 6, 32, true);
        h.traffic.add(1, i * 20, 7, 32, true);
      }
      h.run();
      EXPECT_EQ(h.observer.deliveries.size(), 200u)
          << "timing=" << static_cast<int>(timing)
          << " crit=" << static_cast<int>(crit);
    }
  }
}

TEST(FabricFlow, FourRoutingOptionsWork) {
  FabricParams fp;
  fp.numOptions = 4;
  fp.lmc = 2;
  Harness h(diamondTopology(), fp);
  for (int i = 0; i < 100; ++i) h.traffic.add(0, i * 20, 6, 32, true);
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 100u);
}

TEST(FabricFlow, MultipleVirtualLanes) {
  FabricParams fp;
  fp.numVls = 4;
  Harness h(diamondTopology(), fp);
  for (int i = 0; i < 100; ++i) {
    h.traffic.add(0, i * 20, 6, 32, true, /*sl=*/static_cast<std::uint8_t>(i % 4));
  }
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 100u);
}

TEST(FabricFlow, LargePacketsWithSmallMtuBuffers) {
  // MTU-sized packets exactly fill each half of the default split buffer.
  Harness h(diamondTopology());
  for (int i = 0; i < 60; ++i) h.traffic.add(0, i * 100, 6, 256, true);
  h.run();
  EXPECT_EQ(h.observer.deliveries.size(), 60u);
}

TEST(FabricFlow, UnprogrammedLidThrows) {
  // Bypass the subnet manager: routing to a LID nobody programmed is an
  // invariant violation, not silent misrouting.
  Topology topo = testing::twoSwitchTopology();
  FabricParams fp;
  Fabric fabric(topo, fp);  // tables left unprogrammed
  ScriptedTraffic traffic;
  traffic.add(0, 0, 4, 32, false);
  fabric.attachTraffic(&traffic, 1);
  fabric.start();
  RunLimits limits;
  limits.endTime = 10'000;
  EXPECT_THROW(fabric.run(limits), std::logic_error);
}

TEST(FabricFlow, WatchdogDoesNotFireOnHealthyRun) {
  Harness h(diamondTopology());
  for (int i = 0; i < 100; ++i) h.traffic.add(0, i * 500, 6, 32, true);
  h.run(60'000'000);
  EXPECT_FALSE(h.fabric.deadlockSuspected());
}

}  // namespace
}  // namespace ibadapt
