#pragma once
//
// Shared fixtures for the test suite: scripted traffic sources and
// recording observers so fabric behaviour can be asserted packet by packet.
//
#include <map>
#include <vector>

#include "fabric/interfaces.hpp"
#include "topology/topology.hpp"

namespace ibadapt::testing {

/// Injects an explicit script of packets: each node gets an ordered list of
/// (generation time, spec). Useful for exact-timing and ordering tests.
class ScriptedTraffic final : public ITrafficSource {
 public:
  struct Item {
    SimTime at = 0;
    Spec spec;
  };

  void add(NodeId src, SimTime at, NodeId dst, int bytes, bool adaptive,
           std::uint8_t sl = 0, int pathOffset = -1) {
    script_[src].push_back(Item{at, Spec{dst, bytes, adaptive, sl, pathOffset}});
  }

  Spec makePacket(NodeId src, Rng& rng) override {
    (void)rng;
    auto& items = script_[src];
    const Spec s = items[cursor_[src]].spec;
    ++cursor_[src];
    return s;
  }

  SimTime firstGenTime(NodeId node, Rng& rng) override {
    (void)rng;
    auto it = script_.find(node);
    if (it == script_.end() || it->second.empty()) return kTimeNever;
    return it->second.front().at;
  }

  SimTime nextGenTime(NodeId node, SimTime now, Rng& rng) override {
    (void)now;
    (void)rng;
    const auto& items = script_[node];
    const std::size_t next = cursor_[node];
    if (next >= items.size()) return kTimeNever;
    return items[next].at;
  }

  bool saturationMode() const override { return false; }

 private:
  std::map<NodeId, std::vector<Item>> script_;
  std::map<NodeId, std::size_t> cursor_;
};

/// Records every delivery (packet copy + time) for later assertions.
class RecordingObserver final : public IDeliveryObserver {
 public:
  struct Delivery {
    Packet pkt;
    SimTime at = 0;
  };

  void onGenerated(const Packet&, SimTime) override {}
  void onInjected(const Packet&, SimTime) override {}
  void onDelivered(const Packet& pkt, SimTime now) override {
    deliveries.push_back(Delivery{pkt, now});
  }

  std::vector<Delivery> deliveries;
};

/// Two switches, one link, `nodesPerSwitch` CAs each — the smallest fabric
/// with an inter-switch hop.
inline Topology twoSwitchTopology(int nodesPerSwitch = 4) {
  Topology topo(2, nodesPerSwitch + 1, nodesPerSwitch);
  topo.addLink(0, 1);
  return topo;
}

/// Three switches in a line: 0 - 1 - 2.
inline Topology lineTopology(int nodesPerSwitch = 4) {
  Topology topo(3, nodesPerSwitch + 2, nodesPerSwitch);
  topo.addLink(0, 1);
  topo.addLink(1, 2);
  return topo;
}

}  // namespace ibadapt::testing
