//
// Subnet-management packets: attribute encodings, the switch-side SMP
// agent, and equivalence of SMP-based subnet bring-up with the direct path.
//
#include <gtest/gtest.h>

#include "api/simulation.hpp"
#include "subnet/smp.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

TEST(SmpEncoding, NodeInfoRoundTrip) {
  NodeInfoAttr v;
  v.numPorts = 10;
  v.nodeType = 2;
  std::array<std::uint8_t, 64> p{};
  encodeNodeInfo(v, p);
  const NodeInfoAttr back = decodeNodeInfo(p);
  EXPECT_EQ(back.numPorts, 10);
  EXPECT_EQ(back.nodeType, 2);
}

TEST(SmpEncoding, PortInfoRoundTrip) {
  PortInfoAttr v;
  v.peerKind = 2;
  v.peerId = 31;
  v.peerPort = 7;
  std::array<std::uint8_t, 64> p{};
  encodePortInfo(v, p);
  const PortInfoAttr back = decodePortInfo(p);
  EXPECT_EQ(back.peerKind, 2);
  EXPECT_EQ(back.peerId, 31);
  EXPECT_EQ(back.peerPort, 7);
}

TEST(SmpAgent, NodeInfoAndPortInfoGets) {
  const Topology topo = irregular(8, 4, 201);
  Fabric fabric(topo, FabricParams{});
  Smp req;
  req.method = SmpMethod::kGet;
  req.attr = SmpAttr::kNodeInfo;
  const Smp resp = processSmp(fabric, 0, req);
  EXPECT_EQ(resp.method, SmpMethod::kGetResp);
  EXPECT_EQ(resp.status, SmpStatus::kOk);
  EXPECT_EQ(decodeNodeInfo(resp.payload).numPorts, 8);

  Smp preq;
  preq.method = SmpMethod::kGet;
  preq.attr = SmpAttr::kPortInfo;
  preq.attrMod = 0;  // a CA port
  const Smp presp = processSmp(fabric, 0, preq);
  EXPECT_EQ(presp.status, SmpStatus::kOk);
  EXPECT_EQ(decodePortInfo(presp.payload).peerKind,
            static_cast<std::uint8_t>(PeerKind::kNode));
}

TEST(SmpAgent, ErrorStatuses) {
  const Topology topo = irregular(8, 4, 202);
  Fabric fabric(topo, FabricParams{});
  Smp badPort;
  badPort.method = SmpMethod::kGet;
  badPort.attr = SmpAttr::kPortInfo;
  badPort.attrMod = 99;
  EXPECT_EQ(processSmp(fabric, 0, badPort).status, SmpStatus::kBadModifier);

  Smp setNodeInfo;
  setNodeInfo.method = SmpMethod::kSet;
  setNodeInfo.attr = SmpAttr::kNodeInfo;
  EXPECT_EQ(processSmp(fabric, 0, setNodeInfo).status,
            SmpStatus::kBadMethod);

  Smp badLftBlock;
  badLftBlock.method = SmpMethod::kSet;
  badLftBlock.attr = SmpAttr::kLinearForwardingTable;
  badLftBlock.attrMod = 0xFFFF;
  EXPECT_EQ(processSmp(fabric, 0, badLftBlock).status,
            SmpStatus::kBadModifier);

  Smp badEntry;
  badEntry.method = SmpMethod::kSet;
  badEntry.attr = SmpAttr::kLinearForwardingTable;
  badEntry.attrMod = 0;
  badEntry.payload.fill(kLftNoPort);
  badEntry.payload[2] = 200;  // port out of range
  EXPECT_EQ(processSmp(fabric, 0, badEntry).status, SmpStatus::kBadField);
}

TEST(SmpAgent, LftBlockSetThenGetRoundTrips) {
  const Topology topo = irregular(8, 4, 203);
  Fabric fabric(topo, FabricParams{});
  Smp setReq;
  setReq.method = SmpMethod::kSet;
  setReq.attr = SmpAttr::kLinearForwardingTable;
  setReq.attrMod = 0;
  setReq.payload.fill(kLftNoPort);
  setReq.payload[2] = 3;
  setReq.payload[5] = 1;
  ASSERT_EQ(processSmp(fabric, 4, setReq).status, SmpStatus::kOk);

  Smp getReq = setReq;
  getReq.method = SmpMethod::kGet;
  const Smp resp = processSmp(fabric, 4, getReq);
  ASSERT_EQ(resp.status, SmpStatus::kOk);
  EXPECT_EQ(resp.payload[2], 3);
  EXPECT_EQ(resp.payload[5], 1);
  EXPECT_EQ(resp.payload[7], kLftNoPort);
  EXPECT_EQ(fabric.lftEntry(4, 2), 3);
}

TEST(SubnetViaSmp, DiscoveryMatchesDirect) {
  const Topology topo = irregular(16, 4, 204);
  Fabric fabric(topo, FabricParams{});
  SubnetManager sm(fabric);
  const DiscoveredSubnet direct = sm.discover();
  const DiscoveredSubnet smp = sm.discoverViaSmp();
  EXPECT_TRUE(smp.consistent);
  EXPECT_EQ(smp.numNodes, direct.numNodes);
  EXPECT_EQ(smp.links, direct.links);
  EXPECT_EQ(smp.nodeAttach, direct.nodeAttach);
}

TEST(SubnetViaSmp, ProgramsIdenticalTables) {
  const Topology topo = irregular(16, 6, 205);
  FabricParams fp;
  fp.numOptions = 2;
  fp.lmc = 2;
  Fabric direct(topo, fp);
  Fabric viaSmp(topo, fp);
  SubnetParams sp;
  sp.apmPathSets = 2;
  SubnetManager smDirect(direct);
  SubnetManager smSmp(viaSmp);
  const auto r1 = smDirect.configure(sp);
  const auto r2 = smSmp.configureViaSmp(sp);
  EXPECT_EQ(r1.lftEntriesWritten, r2.lftEntriesWritten);
  EXPECT_GT(r2.smpsSent, 0u);
  const Lid limit = direct.lids().lidLimit(topo.numNodes());
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (Lid lid = 0; lid < limit; ++lid) {
      ASSERT_EQ(direct.lftEntry(sw, lid), viaSmp.lftEntry(sw, lid))
          << "sw " << sw << " lid " << lid;
    }
  }
}

TEST(SubnetViaSmp, EndToEndSimulationWorks) {
  const Topology topo = irregular(8, 4, 206);
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configureViaSmp();
  TrafficSpec ts;
  ts.numNodes = topo.numNodes();
  ts.loadBytesPerNsPerNode = 0.03;
  SyntheticTraffic traffic(ts, 11);
  fabric.attachTraffic(&traffic, 11);
  fabric.start();
  RunLimits limits;
  limits.endTime = 400'000;
  fabric.run(limits);
  EXPECT_GT(fabric.counters().delivered, 200u);
  EXPECT_FALSE(fabric.deadlockSuspected());
}

}  // namespace
}  // namespace ibadapt
