//
// Subnet manager: discovery sweep consistency, and cross-checking every
// programmed forwarding-table entry against the routing oracle.
//
#include <gtest/gtest.h>

#include <algorithm>

#include "routing/minimal.hpp"
#include "routing/route_set.hpp"
#include "routing/updown.hpp"
#include "subnet/subnet_manager.hpp"
#include "topology/generators.hpp"
#include "util/rng.hpp"

namespace ibadapt {
namespace {

Topology irregular(int switches, int links, std::uint64_t seed) {
  Rng rng(seed);
  IrregularSpec spec;
  spec.numSwitches = switches;
  spec.linksPerSwitch = links;
  spec.nodesPerSwitch = 4;
  return makeIrregular(spec, rng);
}

TEST(SubnetManager, DiscoveryMatchesTopology) {
  const Topology topo = irregular(16, 4, 41);
  FabricParams fp;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  const DiscoveredSubnet d = sm.discover();
  EXPECT_TRUE(d.consistent);
  EXPECT_EQ(d.numSwitches, 16);
  EXPECT_EQ(d.numNodes, 64);
  EXPECT_EQ(static_cast<int>(d.links.size()), topo.numLinks());
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    EXPECT_EQ(d.nodeAttach[static_cast<std::size_t>(n)].first,
              topo.switchOfNode(n));
    EXPECT_EQ(d.nodeAttach[static_cast<std::size_t>(n)].second,
              topo.portOfNode(n));
  }
}

TEST(SubnetManager, ReportContents) {
  const Topology topo = irregular(8, 4, 42);
  FabricParams fp;  // numOptions=2, lmc=1
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  const auto report = sm.configure();
  EXPECT_TRUE(report.discoveryConsistent);
  EXPECT_EQ(report.switchesProgrammed, 8);
  EXPECT_EQ(report.lidsPerNode, 2);
  // 8 switches x 32 nodes x 2 addresses.
  EXPECT_EQ(report.lftEntriesWritten, 8u * 32u * 2u);
  EXPECT_GE(report.root, 0);
}

class SubnetProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(SubnetProgramTest, TablesMatchRoutingOracle) {
  const int numOptions = GetParam();
  const Topology topo = irregular(16, 6, 43);
  FabricParams fp;
  fp.numOptions = numOptions;
  fp.lmc = 3;  // 8 addresses per node, enough for every option count
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  SubnetParams sp;
  sm.configure(sp);

  const UpDownRouting updown(topo, sp.rootSelection);
  const MinimalAdaptiveRouting minimal(topo);
  const RouteSet routes(topo, updown, minimal);
  const LidMapper& lids = fabric.lids();

  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = lids.baseLid(n);
      const auto& spec = routes.options(sw, n);
      // Address d: escape hop.
      EXPECT_EQ(fabric.lftEntry(sw, base), spec.escapePort);
      // Addresses d+1..d+x-1: minimal adaptive ports.
      for (int k = 1; k < numOptions; ++k) {
        const PortIndex p = fabric.lftEntry(sw, base + static_cast<Lid>(k));
        ASSERT_NE(p, kInvalidPort);
        if (topo.switchOfNode(n) == sw || spec.adaptivePorts.empty()) {
          EXPECT_EQ(p, spec.escapePort);
        } else {
          EXPECT_NE(std::find(spec.adaptivePorts.begin(),
                              spec.adaptivePorts.end(), p),
                    spec.adaptivePorts.end())
              << "programmed adaptive entry is not a minimal port";
        }
      }
      // Spare addresses (x .. 2^lmc-1): escape fallback.
      for (int k = numOptions; k < lids.lidsPerNode(); ++k) {
        EXPECT_EQ(fabric.lftEntry(sw, base + static_cast<Lid>(k)),
                  spec.escapePort);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Options, SubnetProgramTest, ::testing::Values(1, 2, 4));

TEST(SubnetManager, DeterministicSwitchesGetEscapeEverywhere) {
  const Topology topo = irregular(8, 4, 44);
  FabricParams fp;
  fp.numOptions = 2;
  fp.adaptiveSwitches = false;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();
  const LidMapper& lids = fabric.lids();
  for (SwitchId sw = 0; sw < topo.numSwitches(); ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Lid base = lids.baseLid(n);
      EXPECT_EQ(fabric.lftEntry(sw, base),
                fabric.lftEntry(sw, base + 1))
          << "deterministic switch must store one port at all addresses";
    }
  }
}

TEST(SubnetManager, LookupSeesProgrammedOptions) {
  // End-to-end through the interleaved table: a lookup at a switch away
  // from the destination returns the up*/down* escape and minimal options.
  const Topology topo = irregular(8, 4, 45);
  FabricParams fp;
  fp.numOptions = 2;
  Fabric fabric(topo, fp);
  SubnetManager sm(fabric);
  sm.configure();

  const UpDownRouting updown(topo);
  const MinimalAdaptiveRouting minimal(topo);
  const LidMapper& lids = fabric.lids();
  int remoteChecked = 0;
  for (SwitchId sw = 0; sw < topo.numSwitches() && remoteChecked < 20; ++sw) {
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      if (topo.switchOfNode(n) == sw) continue;
      const PortIndex esc = fabric.lftEntry(sw, lids.deterministicLid(n));
      EXPECT_EQ(esc, updown.nextHopPort(sw, topo.switchOfNode(n)));
      const PortIndex adapt = fabric.lftEntry(sw, lids.adaptiveLid(n));
      const auto& mins = minimal.minimalPorts(sw, topo.switchOfNode(n));
      EXPECT_NE(std::find(mins.begin(), mins.end(), adapt), mins.end());
      ++remoteChecked;
    }
  }
  EXPECT_GT(remoteChecked, 0);
}

}  // namespace
}  // namespace ibadapt
