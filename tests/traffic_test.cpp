#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "traffic/synthetic.hpp"

namespace ibadapt {
namespace {

TEST(BitReverse, KnownValues) {
  EXPECT_EQ(bitReverse(0, 5), 0);
  EXPECT_EQ(bitReverse(1, 5), 16);
  EXPECT_EQ(bitReverse(0b00110, 5), 0b01100);
  EXPECT_EQ(bitReverse(0b11111, 5), 0b11111);
}

TEST(BitReverse, Involution) {
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(bitReverse(bitReverse(v, 6), 6), v);
  }
}

TrafficSpec baseSpec(TrafficPattern p, int nodes = 32) {
  TrafficSpec s;
  s.pattern = p;
  s.numNodes = nodes;
  s.packetBytes = 32;
  s.loadBytesPerNsPerNode = 0.05;
  return s;
}

TEST(SyntheticTraffic, UniformNeverSelfAndCoversAll) {
  SyntheticTraffic t(baseSpec(TrafficPattern::kUniform), 1);
  Rng rng(2);
  std::map<NodeId, int> hits;
  for (int i = 0; i < 20000; ++i) {
    const auto s = t.makePacket(5, rng);
    EXPECT_NE(s.dst, 5);
    EXPECT_GE(s.dst, 0);
    EXPECT_LT(s.dst, 32);
    ++hits[s.dst];
  }
  EXPECT_EQ(hits.size(), 31u);
  for (const auto& [dst, count] : hits) {
    (void)dst;
    EXPECT_NEAR(count, 20000.0 / 31.0, 200.0);
  }
}

TEST(SyntheticTraffic, BitReversalFixedMapping) {
  SyntheticTraffic t(baseSpec(TrafficPattern::kBitReversal), 1);
  Rng rng(2);
  EXPECT_EQ(t.makePacket(1, rng).dst, 16);   // 00001 -> 10000
  EXPECT_EQ(t.makePacket(6, rng).dst, 12);   // 00110 -> 01100
  // Palindromes redirect across the machine instead of self-sending.
  EXPECT_EQ(t.makePacket(0, rng).dst, 16);
  EXPECT_EQ(t.makePacket(31, rng).dst, 15);  // 31 is its own reversal
}

TEST(SyntheticTraffic, BitReversalRequiresPowerOfTwo) {
  EXPECT_THROW(SyntheticTraffic(baseSpec(TrafficPattern::kBitReversal, 24), 1),
               std::invalid_argument);
}

TEST(SyntheticTraffic, HotspotFractionRespected) {
  auto spec = baseSpec(TrafficPattern::kHotspot);
  spec.hotspotFraction = 0.2;
  spec.hotspotNode = 7;
  SyntheticTraffic t(spec, 1);
  Rng rng(3);
  int toHotspot = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (t.makePacket(3, rng).dst == 7) ++toHotspot;
  }
  // 20% direct + ~1/31 of the remaining uniform share.
  const double expected = 0.2 + 0.8 / 31.0;
  EXPECT_NEAR(static_cast<double>(toHotspot) / n, expected, 0.01);
}

TEST(SyntheticTraffic, HotspotPickedDeterministicallyFromSeed) {
  auto spec = baseSpec(TrafficPattern::kHotspot);
  SyntheticTraffic a(spec, 77), b(spec, 77), c(spec, 78);
  EXPECT_EQ(a.hotspotNode(), b.hotspotNode());
  (void)c;  // may or may not differ; only determinism is guaranteed
  EXPECT_GE(a.hotspotNode(), 0);
  EXPECT_LT(a.hotspotNode(), 32);
}

TEST(SyntheticTraffic, HotspotSourceRedirectsToUniform) {
  auto spec = baseSpec(TrafficPattern::kHotspot);
  spec.hotspotFraction = 1.0;  // everything aimed at the hotspot
  spec.hotspotNode = 7;
  SyntheticTraffic t(spec, 1);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(t.makePacket(7, rng).dst, 7);  // never self
  }
}

TEST(SyntheticTraffic, AdaptiveFractionMarking) {
  for (double frac : {0.0, 0.25, 0.75, 1.0}) {
    auto spec = baseSpec(TrafficPattern::kUniform);
    spec.adaptiveFraction = frac;
    SyntheticTraffic t(spec, 1);
    Rng rng(5);
    int adaptive = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      if (t.makePacket(0, rng).adaptive) ++adaptive;
    }
    EXPECT_NEAR(static_cast<double>(adaptive) / n, frac, 0.02);
  }
}

TEST(SyntheticTraffic, InterarrivalMeanMatchesLoad) {
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.packetBytes = 32;
  spec.loadBytesPerNsPerNode = 0.1;  // => mean gap 320 ns
  SyntheticTraffic t(spec, 1);
  EXPECT_DOUBLE_EQ(t.meanInterarrivalNs(), 320.0);
  Rng rng(6);
  SimTime now = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) now = t.nextGenTime(0, now, rng);
  EXPECT_NEAR(static_cast<double>(now) / n, 320.0, 10.0);
}

TEST(SyntheticTraffic, NextGenStrictlyAdvances) {
  SyntheticTraffic t(baseSpec(TrafficPattern::kUniform), 1);
  Rng rng(9);
  SimTime now = 1000;
  for (int i = 0; i < 100; ++i) {
    const SimTime next = t.nextGenTime(0, now, rng);
    EXPECT_GT(next, now);
    now = next;
  }
}

TEST(SyntheticTraffic, SaturationModeFlag) {
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.saturation = true;
  spec.saturationQueueCap = 7;
  SyntheticTraffic t(spec, 1);
  EXPECT_TRUE(t.saturationMode());
  EXPECT_EQ(t.saturationQueueCap(), 7);
}

TEST(SyntheticTraffic, SaturationModeRejectsGapQueries) {
  // Regression: in saturation mode the rate members are never assigned, so
  // firstGenTime used to draw exponential(0) and silently return 0 for
  // every node. Backlogged sources have no interarrival process; asking for
  // one is a caller bug and must be loud.
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.saturation = true;
  SyntheticTraffic t(spec, 1);
  Rng rng(3);
  EXPECT_THROW(t.firstGenTime(0, rng), std::logic_error);
  EXPECT_THROW(t.nextGenTime(0, 100, rng), std::logic_error);
}

TEST(SyntheticTraffic, FirstGapFollowsBurstModel) {
  // Regression: firstGenTime drew from meanGapNs_ even when burstiness > 0,
  // so the first interarrival came from a different law (and a different
  // mean base rate) than every later one. It must mirror nextGenTime:
  // exponential(baseGapNs_) plus the occasional burst pause, preserving the
  // configured average rate from the very first packet.
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.packetBytes = 32;
  spec.loadBytesPerNsPerNode = 0.1;  // mean gap 320 ns
  spec.burstiness = 0.25;
  spec.burstGapMeanNs = 400.0;  // base gap = 320 - 0.25*400 = 220 ns
  SyntheticTraffic t(spec, 1);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) + 1);  // fresh stream per "node"
    sum += static_cast<double>(t.firstGenTime(0, rng));
  }
  EXPECT_NEAR(sum / n, 320.0, 10.0);
}

TEST(SyntheticTraffic, FirstGapMatchesPlainPoissonWhenNotBursty) {
  // With burstiness == 0 the fix must be stream-identical to the old
  // behaviour: one exponential draw of mean meanGapNs_ (== baseGapNs_).
  auto spec = baseSpec(TrafficPattern::kUniform);
  spec.packetBytes = 32;
  spec.loadBytesPerNsPerNode = 0.1;
  SyntheticTraffic t(spec, 1);
  Rng a(42);
  Rng b(42);
  const SimTime got = t.firstGenTime(0, a);
  const auto want = static_cast<SimTime>(b.exponential(320.0));
  EXPECT_EQ(got, want);
}

TEST(SyntheticTraffic, Validation) {
  auto bad = baseSpec(TrafficPattern::kUniform);
  bad.numNodes = 1;
  EXPECT_THROW(SyntheticTraffic(bad, 1), std::invalid_argument);
  auto badLoad = baseSpec(TrafficPattern::kUniform);
  badLoad.loadBytesPerNsPerNode = 0.0;
  EXPECT_THROW(SyntheticTraffic(badLoad, 1), std::invalid_argument);
  auto badFrac = baseSpec(TrafficPattern::kUniform);
  badFrac.adaptiveFraction = 1.5;
  EXPECT_THROW(SyntheticTraffic(badFrac, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ibadapt
