//
// Virtual-lane arbitration (simplified IBA VLArbitration): round-robin VL
// service vs fixed priority, exercised with two service levels mapped to
// two VLs.
//
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "subnet/subnet_manager.hpp"
#include "test_helpers.hpp"

namespace ibadapt {
namespace {

using testing::RecordingObserver;
using testing::ScriptedTraffic;

/// VL selection is a per-input-port choice, so the two service levels must
/// share one input port while the output link is oversubscribed: CA 0 sends
/// an interleaved SL0/SL1 stream (its packets land in the two VL buffers of
/// the same switch input port) and CA 1 floods the shared inter-switch link
/// so a backlog builds in both VL buffers.
struct TwoVlHarness {
  explicit TwoVlHarness(VlSelection vlSel) : fabric(makeFabric(vlSel)) {
    SubnetManager sm(fabric);
    sm.configure();
    for (int i = 0; i < 100; ++i) {
      traffic.add(/*src=*/0, i * 128, /*dst=*/4, 32, false,
                  /*sl=*/static_cast<std::uint8_t>(i % 2));
      traffic.add(/*src=*/1, i * 128, /*dst=*/5, 32, false, /*sl=*/0);
    }
    fabric.attachTraffic(&traffic, 1);
    fabric.attachObserver(&observer);
    fabric.start();
    RunLimits limits;
    limits.endTime = 100'000'000;
    fabric.run(limits);
  }

  static Fabric makeFabric(VlSelection vlSel) {
    FabricParams fp;
    fp.numVls = 2;
    fp.vlSelection = vlSel;
    return Fabric(testing::twoSwitchTopology(), fp);
  }

  /// Last delivery time of CA 0's packets on the given SL.
  SimTime lastDeliveryOfSl(int sl) const {
    SimTime last = 0;
    for (const auto& d : observer.deliveries) {
      if (d.pkt.src == 0 && d.pkt.sl == sl) last = std::max(last, d.at);
    }
    return last;
  }

  Fabric fabric;
  ScriptedTraffic traffic;
  RecordingObserver observer;
};

TEST(VlArbitration, RoundRobinSharesTheInputPortFairly) {
  TwoVlHarness h(VlSelection::kRoundRobin);
  ASSERT_EQ(h.observer.deliveries.size(), 200u);
  const SimTime sl0 = h.lastDeliveryOfSl(0);
  const SimTime sl1 = h.lastDeliveryOfSl(1);
  // Fair interleaving: both classes finish at roughly the same time.
  EXPECT_LT(std::llabs(sl0 - sl1), 2'000);
}

TEST(VlArbitration, FixedPriorityFavorsVl0) {
  TwoVlHarness h(VlSelection::kFixedPriority);
  ASSERT_EQ(h.observer.deliveries.size(), 200u);
  const SimTime sl0 = h.lastDeliveryOfSl(0);
  const SimTime sl1 = h.lastDeliveryOfSl(1);
  // CA 0's VL0 packets clear out well before its VL1 packets.
  EXPECT_LT(sl0 + 2'000, sl1);
}

TEST(VlArbitration, FixedPriorityDoesNotStarveForever) {
  TwoVlHarness h(VlSelection::kFixedPriority);
  int sl1Count = 0;
  for (const auto& d : h.observer.deliveries) {
    if (d.pkt.sl == 1) ++sl1Count;
  }
  EXPECT_EQ(sl1Count, 50);  // eventually everything drains
}

TEST(VlArbitration, VlsIsolateCreditStalls) {
  // Stall VL1 by filling the destination CA of its flow... not directly
  // possible with infinite-sink CAs; instead check independence: a burst on
  // VL1 does not delay a lone VL0 packet beyond one packet's worth of
  // crossbar/link occupancy.
  FabricParams fp;
  fp.numVls = 2;
  fp.vlSelection = VlSelection::kRoundRobin;
  Fabric fabric(testing::twoSwitchTopology(), fp);
  SubnetManager sm(fabric);
  sm.configure();
  ScriptedTraffic traffic;
  for (int i = 0; i < 50; ++i) {
    traffic.add(0, i * 128, 4, 32, false, /*sl=*/1);  // VL1 burst, src CA 0
  }
  traffic.add(1, 3'000, 5, 32, false, /*sl=*/0);  // lone VL0 packet, CA 1
  RecordingObserver obs;
  fabric.attachTraffic(&traffic, 1);
  fabric.attachObserver(&obs);
  fabric.start();
  RunLimits limits;
  limits.endTime = 100'000'000;
  fabric.run(limits);
  SimTime loneAt = 0;
  for (const auto& d : obs.deliveries) {
    if (d.pkt.sl == 0) loneAt = d.at;
  }
  ASSERT_GT(loneAt, 0);
  // Unloaded latency would be 3'000 + 628; allow a few packets of skew from
  // sharing the physical link, but far less than waiting out the burst.
  EXPECT_LT(loneAt, 3'000 + 628 + 10 * 128);
}

}  // namespace
}  // namespace ibadapt
