#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/flags.hpp"
#include "util/flow_table.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace ibadapt {
namespace {

TEST(FlowTable, DenseAndSparseLayoutsAgree) {
  // Same key sequence against a small (dense) and huge (sparse) table plus
  // a reference map: every layout must read back the same values and read
  // zero for untouched flows.
  FlowTable<std::uint32_t> small(64, 64);
  FlowTable<std::uint32_t> big(8192, 8192);
  ASSERT_TRUE(small.dense());
  ASSERT_FALSE(big.dense());

  std::uint64_t state = 777;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<std::uint32_t> ref(64 * 64, 0);
  for (int i = 0; i < 5000; ++i) {
    const int src = static_cast<int>(next() % 64);
    const int dst = static_cast<int>(next() % 64);
    ++small.at(src, dst);
    ++big.at(src, dst);
    ++ref[static_cast<std::size_t>(src) * 64 + dst];
  }
  for (int src = 0; src < 64; ++src) {
    for (int dst = 0; dst < 64; ++dst) {
      ASSERT_EQ(small.at(src, dst), ref[static_cast<std::size_t>(src) * 64 + dst]);
      ASSERT_EQ(big.at(src, dst), ref[static_cast<std::size_t>(src) * 64 + dst]);
    }
  }
}

TEST(FlowTable, ResetZeroesAndReshapes) {
  FlowTable<std::uint32_t> t(16, 16);
  t.at(3, 4) = 9;
  t.reset(16, 16);
  EXPECT_EQ(t.at(3, 4), 0u);
  // Crossing the dense cell limit flips the layout, values still zero.
  t.reset(8192, 8192);
  EXPECT_FALSE(t.dense());
  EXPECT_EQ(t.at(8191, 8191), 0u);
  t.at(8191, 8191) = 5;
  t.reset(8, 8);
  EXPECT_TRUE(t.dense());
  EXPECT_EQ(t.at(7, 7), 0u);
}

TEST(FlowTable, ThresholdSelectsLayout) {
  // 1024 x 1024 = 2^20 cells sits exactly at the dense limit.
  EXPECT_TRUE(FlowTable<std::uint32_t>(1024, 1024).dense());
  EXPECT_FALSE(FlowTable<std::uint32_t>(1024, 1025).dense());
}

TEST(Types, CreditsForBytes) {
  EXPECT_EQ(creditsForBytes(1), 1);
  EXPECT_EQ(creditsForBytes(32), 1);
  EXPECT_EQ(creditsForBytes(64), 1);
  EXPECT_EQ(creditsForBytes(65), 2);
  EXPECT_EQ(creditsForBytes(256), 4);
  EXPECT_EQ(creditsForBytes(4096), 64);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformIndex(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(Rng, BernoulliFraction) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(5);
  Rng c1(parent.fork());
  Rng c2(parent.fork());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniformInt(0, 1 << 30) == c2.uniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Splitmix, KnownNonZeroAndDistinct) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndexSpace) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  parallelForIndex(pool, 50, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWait) {
  // Regression: an exception used to escape workerLoop (std::terminate) and
  // the inFlight_ decrement was skipped, so wait() deadlocked. Now the
  // first exception is captured and rethrown from wait().
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, PoolStaysUsableAfterThrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("first batch"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error must be cleared: a clean second batch completes and a second
  // wait() returns normally.
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, MixedBatchRunsEveryNonThrowingTask) {
  // Sibling tasks keep running after one throws; only the exception report
  // is first-wins.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 30; ++i) {
    if (i == 7) {
      pool.submit([] { throw std::runtime_error("one bad task"); });
    } else {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(count.load(), 29);
}

TEST(ThreadPool, ConcurrentSubmittersFromManyThreads) {
  // submit() is documented safe from any thread: hammer it from several
  // external producers at once (as runSweep and the parallel kernel do) and
  // check nothing is lost or double-run.
  ThreadPool pool(3);
  constexpr int kProducers = 8;
  constexpr int kTasksEach = 500;
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.wait();
  EXPECT_EQ(count.load(), kProducers * kTasksEach);
}

TEST(ThreadPool, SubmitDuringDestructionThrowsLogicError) {
  // Once ~ThreadPool has set stopping_, a late submit must fail loudly
  // (std::logic_error) instead of queueing a task that may never run. The
  // probe task keeps submitting no-ops from inside a worker while the main
  // thread destroys the pool; its own execution blocks the join until it
  // has observed the throw.
  std::atomic<bool> started{false};
  std::atomic<bool> sawLogicError{false};
  {
    ThreadPool pool(2);
    pool.submit([&pool, &started, &sawLogicError] {
      started.store(true);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (std::chrono::steady_clock::now() < deadline) {
        try {
          pool.submit([] {});
        } catch (const std::logic_error&) {
          sawLogicError.store(true);
          return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    while (!started.load()) std::this_thread::yield();
    // Destructor runs here: sets stopping_, then joins — which cannot
    // complete until the probe task has seen submit() throw and returned.
  }
  EXPECT_TRUE(sawLogicError.load());
}

TEST(ThreadPool, ParallelForPropagatesTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallelForIndex(pool, 10,
                                [](std::size_t i) {
                                  if (i == 3) {
                                    throw std::invalid_argument("index 3");
                                  }
                                }),
               std::invalid_argument);
}

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--mode=paper", "sizes=8,16,32", "verbose"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.str("mode", "quick"), "paper");
  EXPECT_TRUE(f.boolean("verbose", false));
  EXPECT_EQ(f.intList("sizes", {}), (std::vector<int>{8, 16, 32}));
  EXPECT_EQ(f.integer("absent", 5), 5);
  EXPECT_DOUBLE_EQ(f.real("absent2", 1.5), 1.5);
}

TEST(Flags, UnknownKeysReported) {
  const char* argv[] = {"prog", "typo=1", "used=2"};
  Flags f(3, const_cast<char**>(argv));
  (void)f.integer("used", 0);
  const auto unknown = f.unknownKeys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "a=1", "b=true", "c=yes", "d=0", "e=false"};
  Flags f(6, const_cast<char**>(argv));
  EXPECT_TRUE(f.boolean("a", false));
  EXPECT_TRUE(f.boolean("b", false));
  EXPECT_TRUE(f.boolean("c", false));
  EXPECT_FALSE(f.boolean("d", true));
  EXPECT_FALSE(f.boolean("e", true));
}

}  // namespace
}  // namespace ibadapt
